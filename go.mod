module rskip

go 1.22
