// Command rskipfi runs a statistical fault-injection campaign (§7.2)
// for one benchmark across protection schemes and prints the outcome
// distribution with 95% Wilson confidence intervals.
//
// The campaign engine is resilient: Ctrl-C cancels cleanly (with
// -checkpoint, progress is saved and a re-run resumes where it left
// off to bit-identical counts), -timeout bounds each run by wall-clock
// time, and -target-ci stops a scheme early once the protection-rate
// interval is tight enough.
//
// Usage:
//
//	rskipfi -bench sgemm [-n 1000] [-ar 0.2] [-schemes unsafe,swiftr,rskip] [-seed N]
//	        [-fault-kind seu|skip|multibit] [-skip-width N] [-bit-width N] [-exhaustive]
//	        [-stratify] [-incremental] [-result-cache-dir dir]
//	        [-backend compiled|fast|reference]
//	        [-advise] [-advice-dir dir]
//	        [-json] [-checkpoint path] [-timeout 30s] [-target-ci 2.0] [-workers N]
//	        [-trace out.jsonl] [-trace-tree] [-metrics out.json] [-pprof addr]
//
// -fault-kind selects the threat model: the default "seu" is the
// paper's single-event-upset mix; "skip" injects instruction-skip
// bursts of -skip-width consecutive instructions (Moro et al.);
// "multibit" flips -bit-width adjacent bits. -exhaustive replaces
// statistical sampling with one run per fault site (every in-region
// instruction for skip, every instruction × starting bit for
// multibit) — meant for the micro-kernels (musum, mudot, mumax) and
// the swiftrhard scheme, whose single-skip immunity it proves.
//
// -stratify allocates the n replicas across instruction-class strata
// (ALU, float, memory, ...) in proportion to the profiled stream, so
// rare classes are sampled deliberately and the protection CI uses
// the weighted stratified estimator. -incremental switches to the
// compositional analyzer: one campaign of n replicas per
// candidate-loop region, composed into program-level figures; with
// -result-cache-dir, per-region results persist content-addressed, so
// after a source edit only the edited region's campaign re-runs.
//
// -advise prints an advisory forecast per scheme before the campaigns
// run (protection rate, interval, wall estimate from the corpus of
// past outcomes) and a calibration line after each — forecast vs
// realized, so the advisor's accuracy is auditable in place. With
// -advice-dir the outcome corpus and scored predictions persist
// across runs; without it forecasts fall back to per-scheme priors.
// Predictions advise, never influence: the campaign engine cannot
// read them, so a -advise run is bit-identical to one without.
//
// Each campaign's row (table and -json alike) carries a metrics
// summary — the pipeline counters that moved during that campaign —
// so injection counts, contained panics and interpreter work are
// auditable per scheme without a separate metrics run.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"rskip/internal/advice"
	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/fabric"
	fabcamp "rskip/internal/fabric/campaign"
	"rskip/internal/fault"
	"rskip/internal/machine"
	"rskip/internal/obs"
	"rskip/internal/result"
	"rskip/internal/stats"
)

// campaignJSON is the machine-readable form of one campaign, for
// downstream tooling and bench trajectory files.
type campaignJSON struct {
	Bench        string `json:"bench"`
	Scheme       string `json:"scheme"`
	N            int    `json:"n"`
	Requested    int    `json:"requested"`
	EarlyStopped bool   `json:"early_stopped,omitempty"`
	FaultModel   string `json:"fault_model,omitempty"`
	Exhaustive   bool   `json:"exhaustive,omitempty"`
	// Incremental marks a compositional per-region analysis; Regions,
	// CacheHits and CacheMisses describe its cache traffic.
	Incremental bool `json:"incremental,omitempty"`
	Regions     int  `json:"regions,omitempty"`
	CacheHits   int  `json:"cache_hits,omitempty"`
	CacheMisses int  `json:"cache_misses,omitempty"`
	// Strata is the per-instruction-class breakdown of a -stratify
	// campaign.
	Strata       []strataJSON              `json:"strata,omitempty"`
	Counts       map[string]int            `json:"counts"`
	Rates        map[string]float64        `json:"rates"`
	CI95         map[string][2]float64     `json:"ci95"`
	Protection   float64                   `json:"protection_rate"`
	ProtectionCI [2]float64                `json:"protection_ci95"`
	Fired        int                       `json:"fired"`
	FalseNeg     int                       `json:"false_neg"`
	FalseNegRate float64                   `json:"false_neg_rate"`
	Recovered    int                       `json:"recovered"`
	Errors       map[string]map[string]int `json:"errors,omitempty"`
	// Metrics holds the pipeline counters that moved during this
	// campaign (after-minus-before snapshot deltas).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Advice is the advisory forecast recorded before this campaign
	// ran, with its realized error — present only with -advise. The
	// campaign never read it.
	Advice *adviceJSON `json:"advice,omitempty"`
}

// adviceJSON is one scheme's advisory loop: the pre-campaign forecast
// and how it compared to the realized outcome.
type adviceJSON struct {
	Advisory   bool       `json:"advisory"`
	Source     string     `json:"source"`
	Confidence string     `json:"confidence"`
	CorpusSize int        `json:"corpus_size"`
	Protection float64    `json:"protection_rate"`
	CI         [2]float64 `json:"protection_ci95"`
	WallEst    float64    `json:"wall_seconds_est,omitempty"`
	AbsErr     float64    `json:"abs_err_pts"`
	CIHit      bool       `json:"ci_hit"`
}

// schemePlan carries one scheme's pre-campaign forecast to the
// post-campaign scoring step.
type schemePlan struct {
	label string
	feat  advice.Features
	fc    advice.Forecast
	id    string
}

// observeAdvice closes the advisory loop for one finished campaign:
// the realized outcome is fed back to the advisor, scoring the
// forecast recorded before the campaign ran. It returns the JSON form
// and the calibration line for the table footer. Wall actuals go to
// stderr so stdout stays a pure function of the flags.
func observeAdvice(advisor *advice.Advisor, pl schemePlan, r fault.Result, wall float64) (adviceJSON, string) {
	oc, scored, err := advisor.Observe(pl.id, pl.feat, advice.ResultLabels(r, wall))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rskipfi: advice:", err)
	}
	fmt.Fprintf(os.Stderr, "rskipfi: %s campaign wall %.2fs\n", pl.label, wall)
	aj := adviceJSON{
		Advisory: true, Source: pl.fc.Source, Confidence: pl.fc.Confidence,
		CorpusSize: pl.fc.CorpusSize,
		Protection: pl.fc.Protection,
		CI:         [2]float64{pl.fc.CILo, pl.fc.CIHi},
	}
	if pl.fc.WallKnown {
		aj.WallEst = pl.fc.WallSeconds
	}
	if !scored {
		return aj, ""
	}
	aj.AbsErr, aj.CIHit = oc.AbsErr, oc.CIHit
	hit := "missed"
	if oc.CIHit {
		hit = "hit"
	}
	line := fmt.Sprintf("  %-14s forecast %.1f%%  realized %.1f%%  |err| %.1f pts  interval %s",
		pl.label, pl.fc.Protection, r.ProtectionRate(), oc.AbsErr, hit)
	return aj, line
}

// strataJSON is one instruction-class stratum of a -stratify campaign.
type strataJSON struct {
	Class     string  `json:"class"`
	Weight    float64 `json:"weight"`
	N         int     `json:"n"`
	Protected int     `json:"protected"`
}

func toJSON(benchName, label string, r fault.Result) campaignJSON {
	j := campaignJSON{
		Bench: benchName, Scheme: label,
		N: r.N, Requested: r.Requested, EarlyStopped: r.EarlyStopped,
		Counts: map[string]int{}, Rates: map[string]float64{}, CI95: map[string][2]float64{},
		Protection: r.ProtectionRate(),
		Fired:      r.Fired, FalseNeg: r.FalseNeg, FalseNegRate: r.FalseNegRate(),
		Recovered: r.Recovered,
	}
	plo, phi := r.ProtectionCI()
	j.ProtectionCI = [2]float64{plo, phi}
	for c := fault.Correct; c < fault.NumClasses; c++ {
		j.Counts[c.String()] = r.Counts[c]
		j.Rates[c.String()] = r.Rate(c)
		lo, hi := r.CI(c)
		j.CI95[c.String()] = [2]float64{lo, hi}
	}
	for cls, byMsg := range r.Errors {
		if j.Errors == nil {
			j.Errors = map[string]map[string]int{}
		}
		j.Errors[cls.String()] = byMsg
	}
	for _, st := range r.Strata {
		j.Strata = append(j.Strata, strataJSON{
			Class: st.Class.String(), Weight: st.Weight,
			N: st.N, Protected: st.Protected,
		})
	}
	return j
}

// schemeCheckpoint derives a per-scheme checkpoint path from the base
// flag so one -checkpoint value covers a multi-scheme sweep.
func schemeCheckpoint(base string, s core.Scheme) string {
	if base == "" {
		return ""
	}
	slug := strings.ToLower(s.String())
	return strings.TrimSuffix(base, ".json") + "." + slug + ".json"
}

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark name")
		n         = flag.Int("n", 1000, "number of injected faults per scheme (cap when -target-ci is set)")
		ar        = flag.Float64("ar", 0.2, "acceptable range for the rskip scheme")
		schemes   = flag.String("schemes", "unsafe,swiftr,rskip", "comma-separated schemes")
		seed      = flag.Int64("seed", 20200222, "fault sampling seed")
		faultKind = flag.String("fault-kind", "seu", "threat model: seu (paper's single-event-upset mix), skip (instruction-skip bursts) or multibit (adjacent-bit upsets)")
		backend   = flag.String("backend", "compiled", "execution engine: fast, compiled or reference (all bit-identical; compiled is the campaign default)")
		skipWidth = flag.Int("skip-width", 1, "consecutive instructions suppressed per skip fault")
		bitWidth  = flag.Int("bit-width", 2, "adjacent bits flipped per multibit fault")
		exhaust   = flag.Bool("exhaustive", false, "enumerate every fault site instead of sampling n faults (skip/multibit only; -n is ignored)")
		stratify  = flag.Bool("stratify", false, "allocate the n replicas across instruction-class strata in proportion to the profiled stream (tighter CIs at equal n)")
		increment = flag.Bool("incremental", false, "compositional per-region analysis: one campaign of n replicas per candidate-loop region, composed to program-level figures (pairs with -result-cache-dir)")
		cacheDir  = flag.String("result-cache-dir", "", "content-addressed per-region result cache for -incremental: unedited regions are served from cache across runs")
		advise    = flag.Bool("advise", false, "print an advisory forecast per scheme before the campaigns and a calibration line after (never steers the campaigns)")
		adviceDir = flag.String("advice-dir", "", "persist the advisory outcome corpus and prediction log here (requires -advise; empty = priors only, nothing persists)")
		trainN    = flag.Int("train", 3, "number of training inputs")
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON instead of the table")
		ckBase    = flag.String("checkpoint", "", "checkpoint file base path (per-scheme files derive from it); an interrupted sweep resumes from it")
		timeout   = flag.Duration("timeout", 0, "per-run wall-clock deadline (0 = none; timed-out runs classify as Hang)")
		targetCI  = flag.Float64("target-ci", 0, "adaptive sampling: stop once the 95% CI on the protection rate is this many percentage points wide or less (0 = off)")
		batch     = flag.Int("batch", 0, "runs per adaptive/checkpoint batch (0 = default)")
		workers   = flag.Int("workers", 0, "campaign parallelism (0 = GOMAXPROCS)")
		fabricN   = flag.Int("fabric", 0, "run each campaign through the in-process fabric with this many simulated nodes, each with its own executor — a differential check of the distributed path (0 = off; conflicts with -checkpoint, -timeout and -target-ci)")
		tracePath = flag.String("trace", "", "write spans as JSON lines to this file")
		traceTree = flag.Bool("trace-tree", false, "print the span tree to stderr at exit")
		metrics   = flag.String("metrics", "", "write the metrics registry as JSON to this file")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	// The incremental analyzer owns its sampling discipline (fixed
	// replicas per region, region-keyed seeds), so the knobs that
	// reshape a monolithic campaign's plan list conflict with it.
	if *increment {
		switch {
		case *exhaust:
			fatal(errors.New("-incremental and -exhaustive conflict: exhaustive enumeration is already per-site; there is nothing to compose or cache"))
		case *targetCI > 0:
			fatal(errors.New("-incremental and -target-ci conflict: early stopping would make cached per-region counts depend on when a previous run stopped"))
		case *stratify:
			fatal(errors.New("-incremental and -stratify conflict: the incremental analyzer already stratifies by region; per-class strata inside a region are not cacheable yet"))
		case *ckBase != "":
			fatal(errors.New("-incremental and -checkpoint conflict: the result cache is the incremental analyzer's persistence"))
		}
	}
	if *cacheDir != "" && !*increment {
		fatal(errors.New("-result-cache-dir only applies to -incremental analyses"))
	}
	if *advise && *increment {
		fatal(errors.New("-advise and -incremental conflict: cached regions replay at zero wall cost, which would poison the corpus' timing labels — the daemon's advisory loop handles incremental campaigns"))
	}
	if *adviceDir != "" && !*advise {
		fatal(errors.New("-advice-dir only applies with -advise"))
	}

	cli, err := obs.SetupCLI(obs.CLIConfig{
		TracePath: *tracePath, TraceTree: *traceTree,
		MetricsPath: *metrics, PprofAddr: *pprofAddr,
	})
	if err != nil {
		fatal(err)
	}
	defer closeObs(cli)
	// rskipfi always collects metrics — the per-campaign summary rides
	// on snapshot deltas even when no -metrics file was requested.
	o := cli.O()
	if o == nil {
		o = &obs.Obs{Metrics: obs.NewMetrics()}
	} else if o.Metrics == nil {
		o.Metrics = obs.NewMetrics()
	}

	// Ctrl-C / SIGTERM cancel the sweep; with -checkpoint the progress
	// survives for a resuming re-run.
	ctx, cancelSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancelSignals()
	ctx = obs.Into(ctx, o)

	mix, err := fault.ModelMix(*faultKind)
	if err != nil {
		fatal(err)
	}
	b, err := bench.ByName(*benchName)
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.AR = *ar
	cfg.Backend, err = machine.ParseBackend(*backend)
	if err != nil {
		fatal(err)
	}
	p, err := core.BuildContext(ctx, b, cfg)
	if err != nil {
		fatal(err)
	}
	seeds := make([]int64, *trainN)
	for i := range seeds {
		seeds[i] = bench.TrainSeed(i)
	}
	if err := p.Train(seeds, bench.ScaleFI); err != nil {
		fatal(err)
	}
	inst := b.Gen(bench.TestSeed(0), bench.ScaleFI)

	// The default-SEU title is the original sampled-campaign wording;
	// the other threat models describe themselves.
	faultDesc := "single bit flips inside the detected loops"
	switch *faultKind {
	case "skip":
		faultDesc = "instruction skips inside the detected loops"
		if *skipWidth > 1 {
			faultDesc = fmt.Sprintf("%d-instruction skip bursts inside the detected loops", *skipWidth)
		}
	case "multibit":
		faultDesc = fmt.Sprintf("%d adjacent bit flips inside the detected loops", *bitWidth)
	}
	title := fmt.Sprintf("fault injection — %s, up to %d faults per scheme (%s; 95%% Wilson CIs)", b.Name, *n, faultDesc)
	if *exhaust {
		title = fmt.Sprintf("fault injection — %s, exhaustive enumeration per scheme (%s; 95%% Wilson CIs)", b.Name, faultDesc)
	}
	headers := []string{"scheme", "runs", "Correct", "SDC", "Segfault", "Core dump", "Hang", "Detected", "protection [95% CI]", "false neg", "recovered"}
	var resultCache *result.Cache
	if *increment {
		title = fmt.Sprintf("fault injection — %s, incremental per-region analysis, %d replicas per region (%s; weighted 95%% CIs)", b.Name, *n, faultDesc)
		headers = []string{"scheme", "regions", "cached", "runs", "Correct", "SDC", "Segfault", "Core dump", "Hang", "Detected", "protection [95% CI]"}
		if *cacheDir != "" {
			if resultCache, err = result.Open(*cacheDir); err != nil {
				fatal(err)
			}
		}
	}
	type schemeSel struct {
		s     core.Scheme
		label string
	}
	var sels []schemeSel
	for _, name := range strings.Split(*schemes, ",") {
		var s core.Scheme
		switch strings.TrimSpace(name) {
		case "unsafe":
			s = core.Unsafe
		case "swift":
			s = core.SWIFT
		case "swiftr":
			s = core.SWIFTR
		case "rskip":
			s = core.RSkip
		case "swiftrhard", "swift-r-hard":
			s = core.SWIFTRHard
		default:
			fatal(fmt.Errorf("unknown scheme %q", name))
		}
		label := s.String()
		if s == core.RSkip {
			label = fmt.Sprintf("RSkip AR%.0f", *ar*100)
		}
		sels = append(sels, schemeSel{s: s, label: label})
	}

	// The advisory pass: one forecast per scheme, recorded before any
	// campaign runs so the prediction provably predates the outcome.
	// Feature extraction is a single traced fault-free run — read-only
	// with respect to the program, so the campaigns stay bit-identical
	// to a run without -advise (the inertness tests pin this).
	var advisor *advice.Advisor
	plans := map[string]schemePlan{}
	if *advise {
		var warn error
		advisor, warn = advice.New(*adviceDir)
		if advisor == nil {
			fatal(warn)
		}
		if warn != nil {
			fmt.Fprintln(os.Stderr, "rskipfi: advice:", warn)
		}
		reqN := *n
		if *exhaust {
			reqN = 0 // the enumerator derives the count from the region
		}
		at := stats.NewTable(
			fmt.Sprintf("advisory forecasts — %s (predictions advise, never influence)", b.Name),
			"scheme", "source", "confidence", "corpus", "protection [interval]", "wall est")
		for _, sel := range sels {
			sh := advice.Shape{Mix: mix, SkipWidth: *skipWidth, BitWidth: *bitWidth, Requested: reqN}
			f, err := advice.ExtractFeatures(ctx, p, sel.s, inst, sh)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rskipfi: advice:", err)
			}
			fc, id, err := advisor.Forecast(f)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rskipfi: advice:", err)
			}
			wallEst := "-"
			if fc.WallKnown {
				wallEst = fmt.Sprintf("%.1fs", fc.WallSeconds)
			}
			at.Row(sel.label, fc.Source, fc.Confidence, fmt.Sprintf("%d", fc.CorpusSize),
				fmt.Sprintf("%.1f%% [%.1f, %.1f]", fc.Protection, fc.CILo, fc.CIHi), wallEst)
			plans[sel.label] = schemePlan{label: sel.label, feat: f, fc: fc, id: id}
		}
		if !*jsonOut {
			fmt.Print(at.String())
		}
	}

	t := stats.NewTable(title, headers...)
	var jsonRows []campaignJSON
	var summaries []string
	var calLines []string
	for _, sel := range sels {
		s, label := sel.s, sel.label
		if *increment {
			before := o.M().Snapshot()
			rep, err := result.Analyze(ctx, p, s, inst, result.Options{
				Cache: resultCache, PerRegionN: *n, Seed: *seed,
				InstKey: "test0/fi", Mix: mix,
				SkipWidth: *skipWidth, BitWidth: *bitWidth,
				Workers: *workers,
			})
			if err != nil {
				fatal(err)
			}
			delta := obs.Delta(before, o.M().Snapshot())
			r := rep.Composed
			if *jsonOut {
				row := toJSON(b.Name, label, r)
				row.FaultModel = *faultKind
				row.Incremental = true
				row.Regions = len(rep.Regions)
				row.CacheHits, row.CacheMisses = rep.CacheHits, rep.CacheMisses
				// The weighted program-level figures replace the pooled
				// ones (pooling weights regions by replica count).
				row.Protection = rep.Protection
				row.ProtectionCI = rep.ProtectionCI
				row.Metrics = delta
				jsonRows = append(jsonRows, row)
				continue
			}
			summaries = append(summaries, metricsSummary(label, delta))
			t.Row(label,
				fmt.Sprintf("%d", len(rep.Regions)),
				fmt.Sprintf("%d", rep.CacheHits),
				fmt.Sprintf("%d", r.N),
				fmt.Sprintf("%.1f%%", r.Rate(fault.Correct)),
				fmt.Sprintf("%.1f%%", r.Rate(fault.SDC)),
				fmt.Sprintf("%.1f%%", r.Rate(fault.Segfault)),
				fmt.Sprintf("%.1f%%", r.Rate(fault.CoreDump)),
				fmt.Sprintf("%.1f%%", r.Rate(fault.Hang)),
				fmt.Sprintf("%.1f%%", r.Rate(fault.Detected)),
				fmt.Sprintf("%.1f%% [%.1f, %.1f]", rep.Protection, rep.ProtectionCI[0], rep.ProtectionCI[1]))
			continue
		}
		fcfg := fault.Config{
			N: *n, Seed: *seed, Workers: *workers, Batch: *batch,
			RunTimeout: *timeout, TargetCI: *targetCI,
			CheckpointPath: schemeCheckpoint(*ckBase, s),
			Mix:            mix,
			SkipWidth:      *skipWidth, BitWidth: *bitWidth,
			Exhaustive: *exhaust, Stratify: *stratify,
		}
		if *exhaust {
			fcfg.N = 0 // the enumerator derives the count from the region
		}
		before := o.M().Snapshot()
		start := time.Now()
		var r fault.Result
		var err error
		if *fabricN > 0 {
			r, err = runFabric(ctx, p, s, inst, fcfg, *fabricN)
		} else {
			r, err = fault.Campaign(ctx, p, s, inst, fcfg)
		}
		wall := time.Since(start).Seconds()
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "rskipfi: interrupted after %d/%d %s runs", r.N, r.Requested, s)
			if fcfg.CheckpointPath != "" {
				fmt.Fprintf(os.Stderr, "; progress saved to %s — re-run the same command to resume", fcfg.CheckpointPath)
			}
			fmt.Fprintln(os.Stderr)
			closeObs(cli)
			os.Exit(130)
		}
		if err != nil {
			fatal(err)
		}
		delta := obs.Delta(before, o.M().Snapshot())
		var adv *adviceJSON
		if advisor != nil {
			aj, line := observeAdvice(advisor, plans[label], r, wall)
			adv = &aj
			if line != "" {
				calLines = append(calLines, line)
			}
		}
		if *jsonOut {
			row := toJSON(b.Name, label, r)
			row.FaultModel = *faultKind
			row.Exhaustive = r.Exhaustive
			row.Metrics = delta
			row.Advice = adv
			jsonRows = append(jsonRows, row)
			continue
		}
		summaries = append(summaries, metricsSummary(label, delta))
		runs := fmt.Sprintf("%d", r.N)
		if r.EarlyStopped {
			runs += "*"
		}
		plo, phi := r.ProtectionCI()
		t.Row(label, runs,
			fmt.Sprintf("%.1f%%", r.Rate(fault.Correct)),
			fmt.Sprintf("%.1f%%", r.Rate(fault.SDC)),
			fmt.Sprintf("%.1f%%", r.Rate(fault.Segfault)),
			fmt.Sprintf("%.1f%%", r.Rate(fault.CoreDump)),
			fmt.Sprintf("%.1f%%", r.Rate(fault.Hang)),
			fmt.Sprintf("%.1f%%", r.Rate(fault.Detected)),
			fmt.Sprintf("%.1f%% [%.1f, %.1f]", r.ProtectionRate(), plo, phi),
			fmt.Sprintf("%.1f%%", r.FalseNegRate()),
			fmt.Sprintf("%d", r.Recovered))
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonRows); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(t.String())
	if *targetCI > 0 {
		fmt.Println("* adaptive sampling stopped early at the target CI width")
	}
	fmt.Println("per-campaign metrics:")
	for _, s := range summaries {
		fmt.Println(s)
	}
	if len(calLines) > 0 {
		fmt.Println("advisory calibration (forecast vs realized; the campaigns never read their forecasts):")
		for _, l := range calLines {
			fmt.Println(l)
		}
	}
}

// runFabric runs one campaign through the in-process fabric with
// `nodes` simulated nodes. Each node owns its own executor — its own
// build, profile run and record array — and drives one lease loop, so
// the shards of the campaign interleave across nodes exactly as they
// would across machines. The merged result must be bit-identical to
// fault.Campaign with the same config; this is the CLI-reachable
// differential check of the distributed path.
func runFabric(ctx context.Context, p *core.Program, s core.Scheme, inst bench.Instance, fcfg fault.Config, nodes int) (fault.Result, error) {
	// The executor rejects single-node-only options (adaptive stop,
	// checkpoints, per-run timeouts); surface that as a flag conflict.
	xc, err := fault.NewExecutor(ctx, p, s, inst, fcfg)
	if err != nil {
		return fault.Result{}, err
	}
	merger := fabcamp.NewMerger(xc)
	shard := fcfg.Batch
	if shard <= 0 {
		shard = 100
	}
	coord := fabric.NewCoordinator(
		fabric.Plan{Key: xc.Key(), N: xc.N(), ShardSize: shard},
		fabric.Options{OnComplete: merger.Add},
	)
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		xi, err := fault.NewExecutor(ctx, p, s, inst, fcfg)
		if err != nil {
			coord.Abort(err)
			break
		}
		wg.Add(1)
		go func(i int, xi *fault.Executor) {
			defer wg.Done()
			_ = fabric.RunLocal(ctx, coord, 1, fmt.Sprintf("node%d", i), fabcamp.NewRunner(xi, 0))
		}(i, xi)
	}
	err = coord.Wait(ctx)
	wg.Wait()
	if err != nil {
		return fault.Result{}, err
	}
	return merger.Result()
}

// metricsSummary renders the counters a campaign moved as one compact
// line per scheme, most-relevant keys first.
func metricsSummary(label string, delta map[string]float64) string {
	lead := []string{
		"fault_injections_total", "fault_fired_total",
		"fault_injections_skipped_total", "fault_panics_contained_total",
		"machine_runs_total", "machine_instrs_total",
	}
	inLead := map[string]bool{}
	var parts []string
	add := func(k string, v float64) {
		parts = append(parts, fmt.Sprintf("%s=%g", strings.TrimSuffix(k, "_total"), v))
	}
	for _, k := range lead {
		inLead[k] = true
		if v, ok := delta[k]; ok {
			add(k, v)
		}
	}
	var rest []string
	for k := range delta {
		// Arena-pool reuse depends on which worker claims which batch
		// (each worker builds one pooled machine per batch it runs), so
		// those counters are scheduling noise here — the summary must
		// stay a pure function of the flags. They remain in -metrics.
		if strings.HasPrefix(k, "machine_arena_pool_") {
			continue
		}
		if !inLead[k] && !strings.Contains(k, "_bucket") {
			rest = append(rest, k)
		}
	}
	sort.Strings(rest)
	for _, k := range rest {
		add(k, delta[k])
	}
	return fmt.Sprintf("  %-14s %s", label, strings.Join(parts, " "))
}

func closeObs(cli *obs.CLI) {
	if err := cli.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "rskipfi:", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rskipfi:", err)
	os.Exit(1)
}
