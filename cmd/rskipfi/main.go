// Command rskipfi runs a statistical fault-injection campaign (§7.2)
// for one benchmark across protection schemes and prints the outcome
// distribution.
//
// Usage:
//
//	rskipfi -bench sgemm [-n 1000] [-ar 0.2] [-schemes unsafe,swiftr,rskip] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/fault"
	"rskip/internal/stats"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark name")
		n         = flag.Int("n", 1000, "number of injected faults per scheme")
		ar        = flag.Float64("ar", 0.2, "acceptable range for the rskip scheme")
		schemes   = flag.String("schemes", "unsafe,swiftr,rskip", "comma-separated schemes")
		seed      = flag.Int64("seed", 20200222, "fault sampling seed")
		trainN    = flag.Int("train", 3, "number of training inputs")
	)
	flag.Parse()

	b, err := bench.ByName(*benchName)
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.AR = *ar
	p, err := core.Build(b, cfg)
	if err != nil {
		fatal(err)
	}
	seeds := make([]int64, *trainN)
	for i := range seeds {
		seeds[i] = bench.TrainSeed(i)
	}
	if err := p.Train(seeds, bench.ScaleFI); err != nil {
		fatal(err)
	}
	inst := b.Gen(bench.TestSeed(0), bench.ScaleFI)

	t := stats.NewTable(
		fmt.Sprintf("fault injection — %s, %d faults per scheme (single bit flips inside the detected loops)", b.Name, *n),
		"scheme", "Correct", "SDC", "Segfault", "Core dump", "Hang", "Detected", "false neg", "recovered")
	for _, name := range strings.Split(*schemes, ",") {
		var s core.Scheme
		switch strings.TrimSpace(name) {
		case "unsafe":
			s = core.Unsafe
		case "swift":
			s = core.SWIFT
		case "swiftr":
			s = core.SWIFTR
		case "rskip":
			s = core.RSkip
		default:
			fatal(fmt.Errorf("unknown scheme %q", name))
		}
		r, err := fault.Campaign(p, s, inst, fault.Config{N: *n, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		label := s.String()
		if s == core.RSkip {
			label = fmt.Sprintf("RSkip AR%.0f", *ar*100)
		}
		t.Row(label,
			fmt.Sprintf("%.1f%%", r.Rate(fault.Correct)),
			fmt.Sprintf("%.1f%%", r.Rate(fault.SDC)),
			fmt.Sprintf("%.1f%%", r.Rate(fault.Segfault)),
			fmt.Sprintf("%.1f%%", r.Rate(fault.CoreDump)),
			fmt.Sprintf("%.1f%%", r.Rate(fault.Hang)),
			fmt.Sprintf("%.1f%%", r.Rate(fault.Detected)),
			fmt.Sprintf("%.1f%%", r.FalseNegRate()),
			fmt.Sprintf("%d", r.Recovered))
	}
	fmt.Print(t.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rskipfi:", err)
	os.Exit(1)
}
