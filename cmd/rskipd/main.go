// Command rskipd is the RSkip service daemon: the compile → profile →
// protect pipeline served over HTTP JSON, so many clients share one
// warm build cache and one bounded fault-injection worker pool.
//
// Usage:
//
//	rskipd [-addr :8321] [-workers 2] [-queue 16] [-sync 4]
//	       [-max-body 1048576] [-checkpoint-dir dir] [-result-cache-dir dir]
//	       [-advice-dir dir]
//	       [-compile-timeout 30s] [-run-timeout 30s] [-max-run-timeout 2m]
//	       [-drain-timeout 30s] [-lease-ttl 10s]
//	       [-trace out.jsonl] [-trace-tree] [-metrics out.json]
//
//	rskipd -worker -join http://host:8321 [-worker-name id] [-poll 2s] [-workers n]
//
// Endpoints: POST /v1/compile, POST /v1/run, POST/GET/DELETE
// /v1/campaigns (with /{id} and /{id}/stream), POST /v1/advise,
// POST /v1/fabric/{lease,heartbeat,complete}, GET /healthz, GET
// /metrics, GET /debug/pprof/ — all on one listener.
//
// -advice-dir persists the advisory prediction corpus (campaign
// outcomes and scored forecasts). Forecasts are served either way;
// predictions advise, never influence — no campaign reads them.
//
// With -worker, the process runs as a fabric worker instead of a
// server: it pulls shard leases of distributed campaigns from the
// coordinator named by -join, executes them locally, and streams
// results back. SIGINT/SIGTERM stops the worker mid-shard; the
// coordinator's lease TTL reassigns its unfinished work.
//
// SIGINT/SIGTERM drain gracefully: submissions are refused, running
// campaigns checkpoint and stop, and a daemon restarted with the same
// -checkpoint-dir resumes them to bit-identical results.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rskip/internal/obs"
	"rskip/internal/server"
)

func main() {
	var (
		addr           = flag.String("addr", ":8321", "listen address")
		workers        = flag.Int("workers", 2, "campaign worker pool size")
		queue          = flag.Int("queue", 16, "campaign queue depth (429 beyond it)")
		syncLimit      = flag.Int("sync", 0, "concurrent synchronous compile/run slots (0 = 2×workers)")
		maxBody        = flag.Int64("max-body", 1<<20, "request body size limit in bytes")
		ckDir          = flag.String("checkpoint-dir", "", "persist jobs + campaign checkpoints here (resumable across restarts)")
		resultDir      = flag.String("result-cache-dir", "", "content-addressed per-region campaign results here (enables incremental campaigns)")
		adviceDir      = flag.String("advice-dir", "", "persist the advisory corpus and prediction log here (empty = forecasts work, nothing persists)")
		compileTimeout = flag.Duration("compile-timeout", 30*time.Second, "per-request build timeout")
		runTimeout     = flag.Duration("run-timeout", 30*time.Second, "default /v1/run wall-clock timeout")
		maxRunTimeout  = flag.Duration("max-run-timeout", 2*time.Minute, "cap on client-requested run timeouts")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
		leaseTTL       = flag.Duration("lease-ttl", 10*time.Second, "distributed-campaign shard lease TTL (silent workers lose their shards after this)")
		workerMode     = flag.Bool("worker", false, "run as a fabric worker pulling shard leases from -join instead of serving")
		join           = flag.String("join", "", "coordinator base URL for -worker mode (e.g. http://host:8321)")
		workerName     = flag.String("worker-name", "", "stable worker identity for -worker mode (default hostname-pid)")
		poll           = flag.Duration("poll", 2*time.Second, "idle lease poll interval for -worker mode")
		tracePath      = flag.String("trace", "", "write spans as JSON lines to this file (retains spans in memory; debugging only)")
		traceTree      = flag.Bool("trace-tree", false, "print the span tree to stderr at exit")
		metricsPath    = flag.String("metrics", "", "also write the metrics registry as JSON to this file at exit")
	)
	flag.Parse()

	cli, err := obs.SetupCLI(obs.CLIConfig{
		TracePath: *tracePath, TraceTree: *traceTree, MetricsPath: *metricsPath,
	})
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := cli.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "rskipd:", err)
		}
	}()
	// The daemon always carries a metrics registry — /metrics serves
	// it — but only opts into span retention when tracing was asked
	// for explicitly (a Tracer keeps every span for tree rendering,
	// which an always-on daemon must not do by default).
	o := cli.O()
	if o == nil {
		o = &obs.Obs{Metrics: obs.NewMetrics()}
	} else if o.Metrics == nil {
		o.Metrics = obs.NewMetrics()
	}

	if *workerMode {
		wk, err := server.NewWorker(server.WorkerConfig{
			Join: *join, Name: *workerName, Poll: *poll, Workers: *workers, Obs: o,
		})
		if err != nil {
			fatal(err)
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := wk.Run(ctx); err != nil && ctx.Err() == nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "rskipd: worker stopped")
		return
	}

	srv, err := server.New(server.Config{
		Workers: *workers, QueueDepth: *queue, SyncLimit: *syncLimit,
		MaxBodyBytes:   *maxBody,
		CompileTimeout: *compileTimeout, DefaultRunTimeout: *runTimeout,
		MaxRunTimeout:  *maxRunTimeout,
		CheckpointDir:  *ckDir,
		ResultCacheDir: *resultDir,
		AdviceDir:      *adviceDir,
		LeaseTTL:       *leaseTTL,
		Obs:            o,
	})
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "rskipd: serving on http://%s\n", ln.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fatal(err)
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "rskipd: %v — draining (budget %v)\n", got, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain first (jobs checkpoint, streams end), then close the HTTP
	// side so in-flight responses finish.
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "rskipd:", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "rskipd: shutdown:", err)
	}
	fmt.Fprintln(os.Stderr, "rskipd: drained")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rskipd:", err)
	os.Exit(1)
}
