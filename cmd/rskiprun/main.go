// Command rskiprun executes one benchmark under a protection scheme
// and reports performance and protection statistics: simulated cycles,
// dynamic instructions, IPC, and — for RSkip — per-loop skip rates and
// run-time management activity.
//
// Usage:
//
//	rskiprun -bench lud [-scheme rskip] [-ar 0.2] [-seed 0] [-scale perf|fi|tiny]
//	         [-backend fast|compiled|reference] [-no-memo] [-no-di] [-cp] [-train 3]
//	         [-trace out.jsonl] [-trace-tree] [-metrics out.json] [-pprof addr]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/ir"
	"rskip/internal/machine"
	"rskip/internal/obs"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark name (see rskiprun -list)")
		list      = flag.Bool("list", false, "list benchmarks")
		scheme    = flag.String("scheme", "rskip", "unsafe, swift, swiftr, rskip, swiftrhard")
		ar        = flag.Float64("ar", 0.2, "acceptable range (0.2 = AR20)")
		seed      = flag.Int("seed", 0, "test input index")
		scaleName = flag.String("scale", "perf", "input scale: perf, fi, tiny")
		backend   = flag.String("backend", "", "execution engine: fast, compiled or reference (all bit-identical; default fast)")
		noMemo    = flag.Bool("no-memo", false, "disable approximate memoization")
		noDI      = flag.Bool("no-di", false, "disable dynamic interpolation")
		forceCP   = flag.Bool("cp", false, "force conventional-protection emulation in PP loops")
		trainN    = flag.Int("train", 3, "number of training inputs")
		saveProf  = flag.String("save-profile", "", "write the trained profile (QoS + memo) to this JSON file")
		loadProf  = flag.String("load-profile", "", "load a trained profile instead of training")
		traceN    = flag.Uint64("trace-instrs", 0, "dump the first N executed instructions to stderr")
		tracePath = flag.String("trace", "", "write spans as JSON lines to this file")
		traceTree = flag.Bool("trace-tree", false, "print the span tree to stderr at exit")
		metrics   = flag.String("metrics", "", "write the metrics registry as JSON to this file")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	cli, err := obs.SetupCLI(obs.CLIConfig{
		TracePath: *tracePath, TraceTree: *traceTree,
		MetricsPath: *metrics, PprofAddr: *pprofAddr,
	})
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := cli.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "rskiprun:", err)
		}
	}()
	ctx := obs.Into(context.Background(), cli.O())

	if *list {
		for _, b := range bench.All() {
			fmt.Printf("%-13s %s — %s\n", b.Name, b.Domain, b.Description)
		}
		return
	}
	b, err := bench.ByName(*benchName)
	if err != nil {
		fatal(err)
	}
	var scale bench.Scale
	switch *scaleName {
	case "perf":
		scale = bench.ScalePerf
	case "fi":
		scale = bench.ScaleFI
	case "tiny":
		scale = bench.ScaleTiny
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleName))
	}
	var s core.Scheme
	switch *scheme {
	case "unsafe":
		s = core.Unsafe
	case "swift":
		s = core.SWIFT
	case "swiftr":
		s = core.SWIFTR
	case "rskip":
		s = core.RSkip
	case "swiftrhard", "swift-r-hard":
		s = core.SWIFTRHard
	default:
		fatal(fmt.Errorf("unknown scheme %q", *scheme))
	}

	cfg := core.DefaultConfig()
	cfg.AR = *ar
	cfg.Backend, err = machine.ParseBackend(*backend)
	if err != nil {
		fatal(err)
	}
	cfg.DisableMemo = *noMemo
	cfg.DisableDI = *noDI
	cfg.ForceCP = *forceCP
	p, err := core.BuildContext(ctx, b, cfg)
	if err != nil {
		fatal(err)
	}
	if s == core.RSkip {
		if *loadProf != "" {
			if err := p.LoadProfile(*loadProf); err != nil {
				fatal(err)
			}
		} else {
			seeds := make([]int64, *trainN)
			for i := range seeds {
				seeds[i] = bench.TrainSeed(i)
			}
			if err := p.Train(seeds, scale); err != nil {
				fatal(err)
			}
		}
		if *saveProf != "" {
			if err := p.SaveProfile(*saveProf); err != nil {
				fatal(err)
			}
		}
	}

	inst := b.Gen(bench.TestSeed(*seed), scale)
	golden := p.Run(core.Unsafe, inst, core.RunOpts{})
	if golden.Err != nil {
		fatal(golden.Err)
	}
	o := p.Run(s, inst, core.RunOpts{Trace: os.Stderr, TraceLimit: *traceN})
	if o.Err != nil {
		fatal(fmt.Errorf("%s run failed: %w", s, o.Err))
	}

	same := len(o.Output) == len(golden.Output)
	if same {
		for i := range o.Output {
			if o.Output[i] != golden.Output[i] {
				same = false
				break
			}
		}
	}
	fmt.Printf("benchmark       %s (seed %d, %s scale)\n", b.Name, *seed, *scaleName)
	fmt.Printf("scheme          %s\n", s)
	fmt.Printf("instructions    %d (%.2fx unprotected)\n",
		o.Result.Instrs, float64(o.Result.Instrs)/float64(golden.Result.Instrs))
	fmt.Printf("cycles          %d (%.2fx unprotected)\n",
		o.Result.Cycles, float64(o.Result.Cycles)/float64(golden.Result.Cycles))
	fmt.Printf("IPC             %.2f (unprotected %.2f)\n", o.Result.IPC(), golden.Result.IPC())
	fmt.Printf("output matches  %v\n", same)
	fmt.Printf("instruction mix (top 8 opcodes):\n")
	type oc struct {
		op ir.Op
		n  uint64
	}
	var mix []oc
	for op, n := range o.Result.Counter.OpsMap() {
		mix = append(mix, oc{op, n})
	}
	// Tie-break equal counts by opcode so the report is stable across
	// runs (OpsMap iteration order is random).
	sort.Slice(mix, func(i, j int) bool {
		if mix[i].n != mix[j].n {
			return mix[i].n > mix[j].n
		}
		return mix[i].op < mix[j].op
	})
	if len(mix) > 8 {
		mix = mix[:8]
	}
	for _, m := range mix {
		fmt.Printf("  %-8s %10d (%.1f%%)\n", m.op, m.n,
			100*float64(m.n)/float64(o.Result.Instrs))
	}
	if s == core.RSkip {
		fmt.Printf("skip rate       %.2f%% (DI %.2f%%)\n", 100*o.SkipRate(), 100*o.DISkipRate())
		ids := make([]int, 0, len(o.Stats))
		for id := range o.Stats {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			st := o.Stats[id]
			li := p.Module(core.RSkip).LoopByID(id)
			fmt.Printf("  loop %d (%s): observed=%d skipDI=%d skipAM=%d recomputed=%d mispredicted=%d phases=%d adjusts=%d\n",
				id, li.Name, st.Observed, st.SkippedDI, st.SkippedAM,
				st.Recomputed, st.Mispredicted, st.Phases, st.Adjusts)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rskiprun:", err)
	os.Exit(1)
}
