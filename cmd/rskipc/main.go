// Command rskipc is the RSkip compiler front door: it compiles MiniC
// source and reports what the protection pipeline does with it —
// detected candidate loops, the transformed IR of any scheme, and the
// static cost analysis.
//
// Usage:
//
//	rskipc [-scheme unsafe|swift|swiftr|rskip|swiftrhard] [-candidates] [-print] file.mc
//	rskipc -bench conv1d -candidates        # use a built-in benchmark
//	rskipc -passes "optimize,swift,cfc" file.mc   # explicit pass pipeline
//	rskipc [-print-after] [-time-passes] ...
//	rskipc [-trace out.jsonl] [-trace-tree] [-metrics out.json] [-pprof addr] ...
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"rskip/internal/analysis"
	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/lang"
	"rskip/internal/lower"
	"rskip/internal/obs"
	"rskip/internal/pass"
	"rskip/internal/transform"
)

func main() {
	var (
		scheme     = flag.String("scheme", "rskip", "protection scheme: unsafe, swift, swiftr, rskip, swiftrhard")
		passSpec   = flag.String("passes", "", "run this comma-separated pass pipeline instead of a -scheme (e.g. \"optimize,swift,cfc\")")
		candidates = flag.Bool("candidates", false, "report detected candidate loops")
		print      = flag.Bool("print", false, "print the (transformed) IR")
		printAfter = flag.Bool("print-after", false, "print the module after every pass (stderr)")
		timePasses = flag.Bool("time-passes", false, "report per-pass wall time at exit (stderr)")
		benchName  = flag.String("bench", "", "compile a built-in benchmark instead of a file")
		threshold  = flag.Int("threshold", 0, "candidate cost threshold (0 = default)")
		optimize   = flag.Bool("O", false, "run scalar optimizations before protection")
		emit       = flag.String("emit", "", "write the (transformed) module to this .rir file")
		cfc        = flag.Bool("cfc", false, "add control-flow checking (block signatures) after protection")
		format     = flag.Bool("fmt", false, "pretty-print the parsed MiniC source and exit")
		tracePath  = flag.String("trace", "", "write spans as JSON lines to this file")
		traceTree  = flag.Bool("trace-tree", false, "print the span tree to stderr at exit")
		metrics    = flag.String("metrics", "", "write the metrics registry as JSON to this file")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	cli, err := obs.SetupCLI(obs.CLIConfig{
		TracePath: *tracePath, TraceTree: *traceTree,
		MetricsPath: *metrics, PprofAddr: *pprofAddr,
	})
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := cli.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "rskipc:", err)
		}
	}()
	ctx := obs.Into(context.Background(), cli.O())

	var name, src string
	switch {
	case *benchName != "":
		b, err := bench.ByName(*benchName)
		if err != nil {
			fatal(err)
		}
		name, src = b.Name, b.Source
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		name, src = flag.Arg(0), string(data)
	default:
		fmt.Fprintln(os.Stderr, "rskipc: need a source file or -bench name")
		flag.Usage()
		os.Exit(2)
	}

	if *format {
		prog, err := lang.Parse(src)
		if err != nil {
			fatal(err)
		}
		fmt.Print(lang.Format(prog))
		return
	}
	_, spc := obs.Start(ctx, "rskipc/compile")
	spc.SetAttr("source", name)
	mod, err := lower.Compile(name, src)
	spc.End()
	if err != nil {
		fatal(err)
	}
	opt := analysis.Options{CostThreshold: *threshold}

	pm := &pass.Manager{VerifyEach: true}
	if *printAfter {
		pm.PrintAfter = os.Stderr
	}
	if *timePasses {
		pm.TimePasses = os.Stderr
	}
	runPipeline := func(spanName string, pipeline []pass.Pass) {
		pm.Passes = pipeline
		pctx, sp := obs.Start(ctx, spanName)
		err := pm.Run(pctx, mod, opt)
		sp.End()
		if err != nil {
			fatal(err)
		}
	}

	// Resolve the protection pipeline: either the explicit -passes
	// text, or the -scheme's registered pipeline with -cfc appended.
	// -O runs as its own pipeline first, so the -candidates report
	// below sees the optimized (but not yet protected) module, as it
	// always has.
	var pipeline []pass.Pass
	if *passSpec != "" {
		pipeline, err = pass.Parse(*passSpec)
		if err != nil {
			fatal(err)
		}
	} else {
		var extra []string
		if *cfc {
			if *scheme == "unsafe" {
				fatal(fmt.Errorf("-cfc requires a protection scheme"))
			}
			extra = append(extra, "cfc")
		}
		pipeline, err = pass.SchemePipeline(*scheme, extra...)
		if err != nil {
			fatal(err)
		}
		if *optimize {
			o, _ := pass.Lookup("optimize")
			runPipeline("rskipc/optimize", []pass.Pass{o})
		}
	}

	if *candidates {
		cands := transform.Candidates(mod, opt)
		if len(cands) == 0 {
			fmt.Println("no candidate loops detected")
		}
		for _, c := range cands {
			pattern := "inner loop"
			if c.HasCall {
				pattern = "user call"
			}
			vt := "int"
			if c.ValueFloat {
				vt = "float"
			}
			fmt.Printf("candidate %s: header=b%d latch=b%d store=b%d/%d value=%s via %s cost=%d iv=%v step=%d invariants=%d\n",
				c.Name(mod), c.Header, c.Latch, c.StoreBlock, c.StoreIdx,
				vt, pattern, c.Cost, c.IV, c.Step, len(c.Invariants))
		}
	}

	runPipeline("rskipc/transform", pipeline)

	if *emit != "" {
		f, err := os.Create(*emit)
		if err != nil {
			fatal(err)
		}
		if err := mod.MarshalText(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *print {
		fmt.Print(mod.String())
	} else if !*candidates {
		funcs := 0
		instrs := 0
		for _, f := range mod.Funcs {
			funcs++
			for bi := range f.Blocks {
				instrs += len(f.Blocks[bi].Instrs)
			}
		}
		what := "scheme=" + *scheme
		if *passSpec != "" {
			what = "passes=" + *passSpec
		}
		fmt.Printf("%s: %s functions=%d static instructions=%d pp-loops=%d\n",
			name, what, funcs, instrs, len(mod.Loops))
	}
	_ = core.DefaultConfig // keep core linked for doc reference
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rskipc:", err)
	os.Exit(1)
}
