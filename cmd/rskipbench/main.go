// Command rskipbench regenerates the paper's tables and figures.
//
// Usage:
//
//	rskipbench [-exp all|table1|fig2|fig7|fig8a|fig8b|fig9|costs|memo|frontier|ablation]
//	           [-n 1000] [-train 3] [-quick] [-seed N]
//	           [-trace out.jsonl] [-trace-tree] [-metrics out.json] [-pprof addr]
//
// Each experiment prints a text rendering of the corresponding table
// or figure with the paper's reference numbers in the caption, so
// paper-vs-measured comparison is immediate. EXPERIMENTS.md records a
// full run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rskip/internal/experiments"
	"rskip/internal/obs"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: all, table1, fig2, fig6, fig7, fig8a, fig8b, fig9, costs, memo, frontier, ablation")
		n      = flag.Int("n", 1000, "fault injections per campaign (fig9)")
		train  = flag.Int("train", 3, "training inputs per benchmark")
		quick  = flag.Bool("quick", false, "small inputs and campaigns (smoke run)")
		seed   = flag.Int64("seed", 20200222, "fault sampling seed")
		silent = flag.Bool("silent", false, "suppress progress notes")

		tracePath = flag.String("trace", "", "write spans as JSON lines to this file")
		traceTree = flag.Bool("trace-tree", false, "print the span tree to stderr at exit")
		metrics   = flag.String("metrics", "", "write the metrics registry as JSON to this file")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	cli, err := obs.SetupCLI(obs.CLIConfig{
		TracePath: *tracePath, TraceTree: *traceTree,
		MetricsPath: *metrics, PprofAddr: *pprofAddr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rskipbench:", err)
		os.Exit(1)
	}
	defer func() {
		if err := cli.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "rskipbench:", err)
		}
	}()

	c := experiments.New()
	c.FaultN = *n
	c.TrainSeeds = *train
	c.Quick = *quick
	c.Seed = *seed
	c.Obs = cli.O()
	if !*silent {
		c.Out = os.Stderr
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	start := time.Now()
	emit := func(title, body string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "rskipbench: %s: %v\n", title, err)
			os.Exit(1)
		}
		fmt.Println(strings.Repeat("=", 78))
		fmt.Println(body)
	}

	if want("table1") {
		body, err := c.Table1()
		emit("table1", body, err)
	}
	if want("fig2") {
		body, err := c.Fig2()
		emit("fig2", body, err)
	}
	var perf []experiments.PerfRow
	if want("fig7") || want("frontier") {
		rows, body, err := c.Fig7()
		perf = rows
		if want("fig7") {
			emit("fig7", body, err)
		} else if err != nil {
			emit("fig7", "", err)
		}
	}
	if want("fig6") {
		body, err := c.Fig6()
		emit("fig6", body, err)
	}
	if want("fig8a") {
		body, err := c.Fig8a()
		emit("fig8a", body, err)
	}
	if want("fig8b") {
		body, err := c.Fig8b()
		emit("fig8b", body, err)
	}
	var rel []experiments.ReliabilityRow
	if want("fig9") || want("frontier") {
		rows, body, err := c.Fig9()
		rel = rows
		if want("fig9") {
			emit("fig9", body, err)
		} else if err != nil {
			emit("fig9", "", err)
		}
	}
	if want("costs") {
		body, err := c.CostRatio()
		emit("costs", body, err)
	}
	if want("memo") {
		body, err := c.Memo()
		emit("memo", body, err)
	}
	if want("frontier") {
		emit("frontier", c.Frontier(perf, rel), nil)
	}
	if want("ablation") {
		body, err := c.Ablation()
		emit("ablation", body, err)
	}
	fmt.Fprintf(os.Stderr, "rskipbench: done in %.1fs\n", time.Since(start).Seconds())
}
