// Package rskip's top-level benchmarks regenerate the paper's
// evaluation through `go test -bench`. Each Benchmark* corresponds to
// a table or figure (see DESIGN.md's per-experiment index); the custom
// metrics (skip%, x-slowdown, prot%) carry the paper-comparable
// numbers, while ns/op measures the harness itself. cmd/rskipbench
// prints the full tables.
package rskip_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/experiments"
	"rskip/internal/fault"
	"rskip/internal/lower"
	"rskip/internal/machine"
	"rskip/internal/predict"
	"rskip/internal/train"
)

// built caches trained programs across benchmark functions.
var (
	builtMu sync.Mutex
	builtM  = map[string]*core.Program{}
)

func trained(b *testing.B, name string, mut func(*core.Config)) *core.Program {
	b.Helper()
	cfg := core.DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	key := name + "|" + cfg.Key()
	builtMu.Lock()
	defer builtMu.Unlock()
	if p, ok := builtM[key]; ok {
		return p
	}
	bm, err := bench.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.Build(bm, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := p.Train([]int64{bench.TrainSeed(0), bench.TrainSeed(1)}, bench.ScaleFI); err != nil {
		b.Fatal(err)
	}
	builtM[key] = p
	return p
}

func runScheme(b *testing.B, p *core.Program, s core.Scheme) (core.Outcome, core.Outcome) {
	b.Helper()
	inst := p.Bench.Gen(bench.TestSeed(0), bench.ScaleFI)
	golden := p.Run(core.Unsafe, inst, core.RunOpts{})
	if golden.Err != nil {
		b.Fatal(golden.Err)
	}
	o := p.Run(s, inst, core.RunOpts{})
	if o.Err != nil {
		b.Fatal(o.Err)
	}
	return golden, o
}

// BenchmarkFig7SkipRate exercises one full RSkip AR20 run per
// iteration and reports the skip rate (Fig. 7a).
func BenchmarkFig7SkipRate(b *testing.B) {
	p := trained(b, "sgemm", nil)
	var skip float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, o := runScheme(b, p, core.RSkip)
		skip = o.SkipRate()
	}
	b.ReportMetric(100*skip, "skip%")
}

// BenchmarkFig7Time reports RSkip's normalized execution time
// (Fig. 7b) on the simulated core.
func BenchmarkFig7Time(b *testing.B) {
	p := trained(b, "sgemm", nil)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, o := runScheme(b, p, core.RSkip)
		ratio = float64(o.Result.Cycles) / float64(g.Result.Cycles)
	}
	b.ReportMetric(ratio, "x-slowdown")
}

// BenchmarkFig7SwiftR reports the baseline's slowdown and instruction
// growth (Fig. 7b/7c).
func BenchmarkFig7SwiftR(b *testing.B) {
	p := trained(b, "sgemm", nil)
	var tRatio, iRatio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, o := runScheme(b, p, core.SWIFTR)
		tRatio = float64(o.Result.Cycles) / float64(g.Result.Cycles)
		iRatio = float64(o.Result.Instrs) / float64(g.Result.Instrs)
	}
	b.ReportMetric(tRatio, "x-slowdown")
	b.ReportMetric(iRatio, "x-instrs")
}

// BenchmarkFig8aBlackscholes measures the two-level predictor
// (Fig. 8a): skip rate with AM enabled.
func BenchmarkFig8aBlackscholes(b *testing.B) {
	p := trained(b, "blackscholes", nil)
	var skip float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, o := runScheme(b, p, core.RSkip)
		skip = o.SkipRate()
	}
	b.ReportMetric(100*skip, "skip%")
}

// BenchmarkFig8bLud measures lud at AR20 across rotating inputs
// (Fig. 8b's diversity study).
func BenchmarkFig8bLud(b *testing.B) {
	p := trained(b, "lud", nil)
	var skip float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst := p.Bench.Gen(bench.TestSeed(i%20), bench.ScaleFI)
		o := p.Run(core.RSkip, inst, core.RunOpts{})
		if o.Err != nil {
			b.Fatal(o.Err)
		}
		skip = o.SkipRate()
	}
	b.ReportMetric(100*skip, "skip%")
}

// BenchmarkFig9aInjection runs a burst of fault injections per
// iteration and reports the protection rate (Fig. 9a).
func BenchmarkFig9aInjection(b *testing.B) {
	p := trained(b, "conv1d", nil)
	inst := p.Bench.Gen(bench.TestSeed(0), bench.ScaleFI)
	var prot float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := fault.Campaign(context.Background(), p, core.RSkip, inst,
			fault.Config{N: 32, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		prot = r.ProtectionRate()
	}
	b.ReportMetric(prot, "prot%")
}

// BenchmarkFig2Coverage runs the predictability analysis (Fig. 2).
func BenchmarkFig2Coverage(b *testing.B) {
	p := trained(b, "conv1d", nil)
	inst := p.Bench.Gen(bench.TestSeed(0), bench.ScaleFI)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := train.Collect(p.Module(core.RSkip), p.Kernel, inst.Setup); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostRatio measures the §2 DI:AM:recompute per-element cost
// measurement path.
func BenchmarkCostRatio(b *testing.B) {
	c := experiments.New()
	c.Quick = true
	c.TrainSeeds = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CostRatio(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPhase compares dynamic phase slicing against a
// fixed stride (the DESIGN.md ablation).
func BenchmarkAblationPhase(b *testing.B) {
	dynamic := trained(b, "kde", nil)
	fixed := trained(b, "kde", func(cfg *core.Config) { cfg.FixedStride = 16 })
	var dSkip, fSkip float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, od := runScheme(b, dynamic, core.RSkip)
		_, of := runScheme(b, fixed, core.RSkip)
		dSkip, fSkip = od.SkipRate(), of.SkipRate()
	}
	b.ReportMetric(100*dSkip, "dyn-skip%")
	b.ReportMetric(100*fSkip, "fixed-skip%")
}

// BenchmarkAblationTP compares the trained QoS model against an
// untrained default tuning parameter.
func BenchmarkAblationTP(b *testing.B) {
	p := trained(b, "conv2d", nil)
	untrainedCfg := core.DefaultConfig()
	bm, _ := bench.ByName("conv2d")
	untrained, err := core.Build(bm, untrainedCfg)
	if err != nil {
		b.Fatal(err)
	}
	var tSkip, uSkip float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ot := runScheme(b, p, core.RSkip)
		inst := bm.Gen(bench.TestSeed(0), bench.ScaleFI)
		ou := untrained.Run(core.RSkip, inst, core.RunOpts{})
		if ou.Err != nil {
			b.Fatal(ou.Err)
		}
		tSkip, uSkip = ot.SkipRate(), ou.SkipRate()
	}
	b.ReportMetric(100*tSkip, "trained-skip%")
	b.ReportMetric(100*uSkip, "untrained-skip%")
}

// BenchmarkMachineThroughput measures raw interpreter speed
// (simulated instructions per second drive every experiment's cost).
func BenchmarkMachineThroughput(b *testing.B) {
	mod, err := lower.Compile("tput", `
int kernel(int n) {
	int s = 0;
	for (int i = 0; i < n; i = i + 1) { s = s + i * 3 - (s / 7); }
	return s;
}`)
	if err != nil {
		b.Fatal(err)
	}
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := machine.New(mod, machine.Config{TraceFn: -1})
		res, err := m.Run(0, []uint64{10000})
		if err != nil {
			b.Fatal(err)
		}
		instrs = res.Instrs
	}
	b.ReportMetric(float64(instrs), "sim-instrs/op")
}

// BenchmarkCompile measures the whole compilation pipeline: parse,
// check, lower, candidate detection, rskip transform, SWIFT-R.
func BenchmarkCompile(b *testing.B) {
	bm, _ := bench.ByName("lud")
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(bm, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpObserve measures the dynamic-interpolation hot path.
func BenchmarkInterpObserve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	points := make([]predict.Point, 4096)
	v := 0.0
	for i := range points {
		v += rng.Float64()
		points[i] = predict.Point{Iter: int64(i), V: v}
	}
	it := predict.NewInterp(0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := points[i%len(points)]
		if i%len(points) == 0 {
			it.Reset()
		}
		it.Observe(p)
	}
}

// BenchmarkMemoLookup measures the quantized table probe.
func BenchmarkMemoLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 4096
	in := make([][]float64, n)
	out := make([]float64, n)
	for i := range in {
		in[i] = []float64{float64(rng.Intn(8)), float64(rng.Intn(8)) * 10}
		out[i] = in[i][0] * in[i][1]
	}
	table, err := predict.BuildMemo(in, out, predict.MemoConfig{AddressBits: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table.Lookup(in[i%n])
	}
}
