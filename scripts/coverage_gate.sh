#!/bin/sh
# Coverage gate: every internal/ package changed relative to the base
# commit must hold statement coverage at or above the floor.
#
# Usage: scripts/coverage_gate.sh [base-ref]
#   base-ref  commit to diff against; defaults to the merge base with
#             origin/main, falling back to HEAD~1.
#   FLOOR     override the percentage floor (default 70).
#
# Command packages (cmd/*) are exercised end to end by the CLI smoke
# paths, not unit tests, and are intentionally out of scope here.
set -eu

FLOOR=${FLOOR:-70}
BASE=${1:-}
if [ -z "$BASE" ]; then
	BASE=$(git merge-base origin/main HEAD 2>/dev/null || git rev-parse HEAD~1)
fi
echo "coverage gate: diffing against $BASE (floor ${FLOOR}%)"

# The pass manager is the compile pipeline's spine, the server is the
# daemon surface clients build against, the result cache decides
# whether stale campaign figures get served as fresh, and the advice
# package turns corpus records into forecasts whose inertness contract
# the tests prove; gate all four on every run, changed or not, so a
# regression in their tests never slips through a PR that only touches
# their callers.
ALWAYS="internal/pass internal/server internal/result internal/advice"

pkgs=$(
	{
		git diff --name-only "$BASE" HEAD -- '*.go' | grep '^internal/' |
			xargs -rn1 dirname
		for d in $ALWAYS; do
			[ -d "$d" ] && echo "$d"
		done
	} | sort -u
)
if [ -z "$pkgs" ]; then
	echo "coverage gate: no changed internal packages"
	exit 0
fi

fail=0
for d in $pkgs; do
	[ -d "$d" ] || continue # package deleted by the change
	if ! ls "$d"/*_test.go >/dev/null 2>&1; then
		echo "FAIL  $d: changed but has no tests"
		fail=1
		continue
	fi
	profile=$(mktemp)
	if ! go test -coverprofile="$profile" "./$d" >/dev/null; then
		echo "FAIL  $d: tests failed"
		fail=1
		rm -f "$profile"
		continue
	fi
	pct=$(go tool cover -func="$profile" | awk '/^total:/ {gsub("%",""); print $NF}')
	rm -f "$profile"
	if awk -v p="$pct" -v f="$FLOOR" 'BEGIN { exit !(p < f) }'; then
		echo "FAIL  $d: ${pct}% < ${FLOOR}%"
		fail=1
	else
		echo "ok    $d: ${pct}%"
	fi
done
exit $fail
