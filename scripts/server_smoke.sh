#!/bin/sh
# Server smoke: boot the real rskipd binary, drive one request through
# each endpoint family, then SIGTERM it and require a clean drain.
# This exercises the wiring httptest cannot — flags, the TCP listener,
# signal handling, process exit — in a few seconds.
set -eu

ADDR=${ADDR:-127.0.0.1:18321}
DIR=$(mktemp -d)
LOG="$DIR/rskipd.log"
trap 'kill $PID 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o "$DIR/rskipd" ./cmd/rskipd
"$DIR/rskipd" -addr "$ADDR" -checkpoint-dir "$DIR/ck" -advice-dir "$DIR/advice" 2>"$LOG" &
PID=$!

# Wait for the listener.
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -gt 50 ]; then
		echo "FAIL: rskipd never became healthy"
		cat "$LOG"
		exit 1
	fi
	sleep 0.2
done
echo "ok    healthz"

curl -fsS -X POST "http://$ADDR/v1/compile" \
	-d '{"bench":"conv1d"}' | grep -q '"candidates"'
echo "ok    compile"

curl -fsS -X POST "http://$ADDR/v1/run" \
	-d '{"bench":"conv1d","scheme":"rskip","scale":"tiny","train":1}' |
	grep -q '"output_matches": *true'
echo "ok    run"

ID=$(curl -fsS -X POST "http://$ADDR/v1/campaigns" \
	-d '{"bench":"conv1d","scheme":"unsafe","n":100,"batch":25}' |
	sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1)
[ -n "$ID" ]
i=0
until curl -fsS "http://$ADDR/v1/campaigns/$ID" | grep -q '"state": *"done"'; do
	i=$((i + 1))
	if [ "$i" -gt 150 ]; then
		echo "FAIL: campaign $ID never finished"
		curl -fsS "http://$ADDR/v1/campaigns/$ID" || true
		cat "$LOG"
		exit 1
	fi
	sleep 0.2
done
echo "ok    campaign"

# Skip-model leg: an exhaustive instruction-skip campaign over a
# micro-kernel under the hardened scheme must finish at exactly 100%
# protection, and an unknown model must 400 with its dedicated code.
SKIP_ID=$(curl -fsS -X POST "http://$ADDR/v1/campaigns" \
	-d '{"bench":"musum","scheme":"swiftrhard","fault_model":"skip","exhaustive":true}' |
	sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1)
[ -n "$SKIP_ID" ]
i=0
until curl -fsS "http://$ADDR/v1/campaigns/$SKIP_ID" | grep -q '"state": *"done"'; do
	i=$((i + 1))
	if [ "$i" -gt 300 ]; then
		echo "FAIL: skip campaign $SKIP_ID never finished"
		curl -fsS "http://$ADDR/v1/campaigns/$SKIP_ID" || true
		cat "$LOG"
		exit 1
	fi
	sleep 0.2
done
curl -fsS "http://$ADDR/v1/campaigns/$SKIP_ID" | grep -q '"protection_rate": *100' || {
	echo "FAIL: hardened scheme below 100% under exhaustive skips"
	curl -fsS "http://$ADDR/v1/campaigns/$SKIP_ID" || true
	exit 1
}
# -f would abort on the expected 400; read the body instead.
curl -sS -X POST "http://$ADDR/v1/campaigns" \
	-d '{"bench":"conv1d","scheme":"unsafe","fault_model":"cosmic-ray"}' |
	grep -q '"unknown_fault_model"'
echo "ok    skip model"

# Advisory leg: after the campaigns above, /v1/advise answers from the
# persisted outcome corpus, a fresh submission carries an advisory
# forecast block, and the scored predictions live in their own file —
# separate from the corpus, never read by the engine.
curl -fsS -X POST "http://$ADDR/v1/advise" \
	-d '{"bench":"musum","scheme":"swiftrhard","fault_model":"skip"}' |
	grep -q '"advisory": *true'
ADV_ID=$(curl -fsS -X POST "http://$ADDR/v1/campaigns" \
	-d '{"bench":"conv1d","scheme":"unsafe","n":100,"batch":25}' |
	tee "$DIR/advised_submit.json" |
	sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1)
[ -n "$ADV_ID" ]
grep -q '"advice"' "$DIR/advised_submit.json" || {
	echo "FAIL: campaign submission carries no advice block"
	cat "$DIR/advised_submit.json"
	exit 1
}
i=0
until curl -fsS "http://$ADDR/v1/campaigns/$ADV_ID" | grep -q '"state": *"done"'; do
	i=$((i + 1))
	if [ "$i" -gt 150 ]; then
		echo "FAIL: advised campaign $ADV_ID never finished"
		cat "$LOG"
		exit 1
	fi
	sleep 0.2
done
i=0
until grep -q '"outcome"' "$DIR/advice/predictions.jsonl" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -gt 50 ]; then
		echo "FAIL: no scored prediction landed in predictions.jsonl"
		ls -l "$DIR/advice" || true
		exit 1
	fi
	sleep 0.2
done
echo "ok    advise"

curl -fsS "http://$ADDR/metrics" >"$DIR/metrics.json"
grep -q 'server_requests_total' "$DIR/metrics.json"
grep -q 'advice_queries_total' "$DIR/metrics.json"
echo "ok    metrics"

# Graceful drain on SIGTERM.
kill -TERM $PID
i=0
while kill -0 $PID 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "FAIL: rskipd did not exit after SIGTERM"
		cat "$LOG"
		exit 1
	fi
	sleep 0.2
done
wait $PID || {
	echo "FAIL: rskipd exited non-zero"
	cat "$LOG"
	exit 1
}
grep -q 'drained' "$LOG" || {
	echo "FAIL: no drain message in the log"
	cat "$LOG"
	exit 1
}
echo "ok    drain"
echo "server smoke: all checks passed"
