#!/bin/sh
# Fabric smoke: boot a real coordinator daemon plus two worker
# processes, run a distributed campaign across them, SIGKILL one
# worker mid-run, and require (a) the coordinator reassigns its
# leases, and (b) the merged counts are bit-identical to a
# single-node rskipfi reference of the same campaign. This exercises
# the wiring the in-process differential tests cannot: flags, the
# HTTP wire protocol, real process death.
set -eu

ADDR=${ADDR:-127.0.0.1:18322}
N=${N:-2000}
SEED=99
DIR=$(mktemp -d)
LOG="$DIR/coord.log"
trap 'kill $COORD $W1 $W2 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o "$DIR/rskipd" ./cmd/rskipd
go build -o "$DIR/rskipfi" ./cmd/rskipfi

# Single-node reference, straight through the fault engine.
"$DIR/rskipfi" -bench conv1d -schemes unsafe -n "$N" -seed "$SEED" -json \
	>"$DIR/ref.json" 2>/dev/null
echo "ok    single-node reference"

# Coordinator with a short lease TTL (so a killed worker's shards come
# back quickly) and two fabric workers joined to it.
"$DIR/rskipd" -addr "$ADDR" -checkpoint-dir "$DIR/ck" -lease-ttl 1s \
	2>"$LOG" &
COORD=$!
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -gt 50 ]; then
		echo "FAIL: coordinator never became healthy"
		cat "$LOG"
		exit 1
	fi
	sleep 0.2
done
"$DIR/rskipd" -worker -join "http://$ADDR" -worker-name w1 -poll 100ms \
	2>"$DIR/w1.log" &
W1=$!
"$DIR/rskipd" -worker -join "http://$ADDR" -worker-name w2 -poll 100ms \
	2>"$DIR/w2.log" &
W2=$!
echo "ok    coordinator + 2 workers up"

# Pure-coordinator job: every shard must be executed by w1 or w2.
ID=$(curl -fsS -X POST "http://$ADDR/v1/campaigns" \
	-d "{\"bench\":\"conv1d\",\"scheme\":\"unsafe\",\"n\":$N,\"seed\":$SEED,\"distributed\":true,\"shard_size\":100,\"local_workers\":-1}" |
	sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1)
[ -n "$ID" ]

# Let the campaign make real progress, then SIGKILL one worker
# mid-shard. No drain, no goodbye: the lease TTL is the only thing
# that can give its unfinished shards back.
i=0
until curl -fsS "http://$ADDR/v1/campaigns/$ID" | grep -q '"done": *[1-9]'; do
	i=$((i + 1))
	if [ "$i" -gt 150 ]; then
		echo "FAIL: campaign $ID made no progress"
		curl -fsS "http://$ADDR/v1/campaigns/$ID" || true
		cat "$LOG" "$DIR/w1.log" "$DIR/w2.log"
		exit 1
	fi
	sleep 0.2
done
kill -KILL $W1
echo "ok    SIGKILLed worker w1 mid-run"

i=0
until curl -fsS "http://$ADDR/v1/campaigns/$ID" | grep -q '"state": *"done"'; do
	i=$((i + 1))
	if [ "$i" -gt 300 ]; then
		echo "FAIL: campaign $ID never finished after the kill"
		curl -fsS "http://$ADDR/v1/campaigns/$ID" || true
		cat "$LOG" "$DIR/w1.log" "$DIR/w2.log"
		exit 1
	fi
	sleep 0.2
done
curl -fsS "http://$ADDR/v1/campaigns/$ID" >"$DIR/dist.json"
echo "ok    campaign survived the worker death"

# The merged counts must equal the single-node reference exactly.
python3 - "$DIR/ref.json" "$DIR/dist.json" <<'PY'
import json, sys
ref = json.load(open(sys.argv[1]))[0]["counts"]
dist = json.load(open(sys.argv[2]))["result"]["counts"]
ref = {k: v for k, v in ref.items() if v}
dist = {k: v for k, v in dist.items() if v}
if ref != dist:
    sys.exit(f"FAIL: merged counts {dist} != single-node reference {ref}")
print("ok    merged counts bit-identical to single-node reference")
PY

# The coordinator must have reclaimed at least one of w1's leases.
curl -fsS "http://$ADDR/metrics" >"$DIR/metrics.json"
python3 - "$DIR/metrics.json" <<'PY'
import json, sys
m = json.load(open(sys.argv[1]))
reassigned = m.get("fabric_leases_reassigned_total", {}).get("value", 0)
if not reassigned or reassigned < 1:
    sys.exit(f"FAIL: fabric_leases_reassigned_total = {reassigned}, want >= 1")
print(f"ok    coordinator reassigned {int(reassigned)} lease(s)")
PY

kill -TERM $W2 $COORD
wait $COORD || true
echo "fabric smoke: all checks passed"
