// Quickstart: protect a MiniC program with RSkip end to end.
//
// The program below is an ordinary unprotected kernel — a smoothing
// filter over a sensor trace. This example compiles it, lets the
// compiler detect the prediction-protection candidate loop, trains the
// run-time management system on a couple of inputs, and then runs the
// unprotected and protected executables side by side.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/machine"
)

const source = `
// A weighted smoothing filter: each output is a short reduction over a
// window of the input — exactly the loop shape RSkip targets.
void kernel(float trace[], float weights[], float out[], int n, int w) {
	for (int i = 0; i < n - w + 1; i = i + 1) {
		float acc = 0.0;
		for (int j = 0; j < w; j = j + 1) {
			acc = acc + trace[i + j] * weights[j];
		}
		out[i] = acc;
	}
}
`

func main() {
	// Wrap the source as a benchmark so the core pipeline can generate
	// inputs for training and testing.
	n, w := 2048, 10
	gen := func(seed int64, _ bench.Scale) bench.Instance {
		rng := rand.New(rand.NewSource(seed))
		trace := make([]float64, n)
		v, slope := 20.0, 0.02
		for i := range trace {
			if rng.Float64() < 0.01 {
				slope = (rng.Float64() - 0.5) * 0.1 // trend break
			}
			v += slope
			trace[i] = v + 0.05*(rng.Float64()-0.5)
		}
		weights := make([]float64, w)
		for j := range weights {
			weights[j] = 1.0 / float64(w)
		}
		outLen := n - w + 1
		return bench.Instance{
			Elements: outLen,
			Setup: func(mem *machine.Memory) []uint64 {
				tb := mem.Alloc(int64(n))
				mem.CopyFloats(tb, trace)
				wb := mem.Alloc(int64(w))
				mem.CopyFloats(wb, weights)
				ob := mem.Alloc(int64(outLen))
				return []uint64{uint64(tb), uint64(wb), uint64(ob),
					uint64(int64(n)), uint64(int64(w))}
			},
			Output: func(mem *machine.Memory) []uint64 {
				out := make([]uint64, outLen)
				for i := range out {
					f := mem.GetFloat(int64(n + w + i))
					out[i] = math.Float64bits(f)
				}
				return out
			},
		}
	}
	b := bench.Benchmark{
		Name: "smoother", Kernel: "kernel", Source: source,
		Domain: "example", Gen: gen,
	}

	// 1. Compile. The pipeline builds UNSAFE, SWIFT, SWIFT-R and RSkip
	//    variants and reports the candidate loops it found.
	prog, err := core.Build(b, core.DefaultConfig()) // AR20
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected %d candidate loop(s):\n", len(prog.Candidates))
	for _, c := range prog.Candidates {
		fmt.Printf("  %s (static cost %d, %d invariant live-ins)\n",
			c.Name(prog.Module(core.Unsafe)), c.Cost, len(c.Invariants))
	}

	// 2. Offline training: sample loop outputs, sweep the tuning
	//    parameter, build the QoS model.
	if err := prog.Train([]int64{1, 2, 3}, bench.ScalePerf); err != nil {
		log.Fatal(err)
	}

	// 3. Run a fresh test input under each scheme.
	inst := b.Gen(99, bench.ScalePerf)
	golden := prog.Run(core.Unsafe, inst, core.RunOpts{})
	if golden.Err != nil {
		log.Fatal(golden.Err)
	}
	for _, s := range []core.Scheme{core.SWIFTR, core.RSkip} {
		o := prog.Run(s, inst, core.RunOpts{})
		if o.Err != nil {
			log.Fatal(o.Err)
		}
		match := "outputs match bit for bit"
		for i := range golden.Output {
			if o.Output[i] != golden.Output[i] {
				match = "OUTPUT MISMATCH"
				break
			}
		}
		fmt.Printf("\n%s:\n", s)
		fmt.Printf("  slowdown      %.2fx (instructions %.2fx)\n",
			float64(o.Result.Cycles)/float64(golden.Result.Cycles),
			float64(o.Result.Instrs)/float64(golden.Result.Instrs))
		if s == core.RSkip {
			fmt.Printf("  skip rate     %.1f%% of re-computation bypassed\n", 100*o.SkipRate())
		}
		fmt.Printf("  correctness   %s\n", match)
	}

	// 4. Inject a fault into the protected run and watch recovery.
	fmt.Println("\ninjecting one bit flip into the detected loop of the protected run:")
	plan := &machine.FaultPlan{Kind: machine.FaultResultBit, Target: golden.Result.Region / 2, Bit: 13}
	o := prog.Run(core.RSkip, inst, core.RunOpts{Fault: plan})
	if o.Err != nil {
		log.Fatalf("protected run crashed: %v", o.Err)
	}
	clean := true
	for i := range golden.Output {
		if o.Output[i] != golden.Output[i] {
			clean = false
			break
		}
	}
	recovered := 0
	for _, st := range o.Stats {
		recovered += st.Recovered
	}
	fmt.Printf("  fault fired: %v, elements repaired: %d, output correct: %v\n",
		o.FaultFired, recovered, clean)
}
