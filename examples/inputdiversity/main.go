// Input-diversity study on lud (Fig. 8b).
//
// The run-time management system exists because skip rates depend on
// the data: phases stretch on smooth inputs and shatter on jagged
// ones. This example runs LU decomposition on twenty distinct test
// matrices at AR20 and reports the spread of slowdowns and skip rates,
// along with the context-signature adjustments the QoS model made.
//
//	go run ./examples/inputdiversity
package main

import (
	"fmt"
	"log"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/stats"
)

func main() {
	b, err := bench.ByName("lud")
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.Build(b, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Train([]int64{bench.TrainSeed(0), bench.TrainSeed(1), bench.TrainSeed(2)}, bench.ScalePerf); err != nil {
		log.Fatal(err)
	}
	for id, q := range p.Trained.QoS {
		fmt.Printf("loop %d QoS model: default TP %.2f, %d signature entries\n",
			id, q.Default, len(q.BySig))
	}

	var times, skips []float64
	fmt.Println("\ninput   slowdown   skip     adjustments")
	fmt.Println("-----   --------   ------   -----------")
	for i := 0; i < 20; i++ {
		inst := b.Gen(bench.TestSeed(i), bench.ScalePerf)
		golden := p.Run(core.Unsafe, inst, core.RunOpts{})
		o := p.Run(core.RSkip, inst, core.RunOpts{})
		if golden.Err != nil || o.Err != nil {
			log.Fatal(golden.Err, o.Err)
		}
		slow := float64(o.Result.Cycles) / float64(golden.Result.Cycles)
		times = append(times, slow)
		skips = append(skips, o.SkipRate())
		adjusts := 0
		for _, st := range o.Stats {
			adjusts += st.Adjusts
		}
		fmt.Printf("%5d   %.2fx      %5.1f%%   %d\n", i+1, slow, 100*o.SkipRate(), adjusts)
	}
	mnT, mxT := stats.MinMax(times)
	mnS, mxS := stats.MinMax(skips)
	fmt.Printf("\nmedian %.2fx / %.1f%%; best %.2fx / %.1f%%; worst %.2fx / %.1f%%\n",
		stats.Median(times), 100*stats.Median(skips), mnT, 100*mxS, mxT, 100*mnS)
	fmt.Println("(paper, Fig. 8b: mostly ~1.15x/90%, best 1.07x/97.15%, worst 1.59x/55%)")
}
