// Two-level prediction walkthrough on blackscholes (§4.2, Fig. 8a).
//
// Option prices computed from independent market quotes carry no
// iteration-to-iteration trend, so dynamic interpolation alone skips
// little. The pure pricing call, however, is ideal for approximate
// memoization: a profile-quantized lookup table answers nearly every
// validation. This example trains both predictors and compares
// DI-only against DI+AM across acceptable ranges, then peeks inside
// the trained lookup table.
//
//	go run ./examples/blackscholes
package main

import (
	"fmt"
	"log"

	"rskip/internal/bench"
	"rskip/internal/core"
)

func main() {
	b, err := bench.ByName("blackscholes")
	if err != nil {
		log.Fatal(err)
	}
	seeds := []int64{bench.TrainSeed(0), bench.TrainSeed(1), bench.TrainSeed(2)}

	fmt.Println("config          norm.time   skip     DI-part")
	fmt.Println("--------------  ---------   ------   -------")
	for _, ar := range []float64{0.2, 0.5, 0.8, 1.0} {
		for _, memoOff := range []bool{true, false} {
			cfg := core.DefaultConfig()
			cfg.AR = ar
			cfg.DisableMemo = memoOff
			p, err := core.Build(b, cfg)
			if err != nil {
				log.Fatal(err)
			}
			if err := p.Train(seeds, bench.ScalePerf); err != nil {
				log.Fatal(err)
			}
			inst := b.Gen(bench.TestSeed(0), bench.ScalePerf)
			golden := p.Run(core.Unsafe, inst, core.RunOpts{})
			o := p.Run(core.RSkip, inst, core.RunOpts{})
			if golden.Err != nil || o.Err != nil {
				log.Fatal(golden.Err, o.Err)
			}
			label := fmt.Sprintf("AR%-3.0f DI+AM", ar*100)
			if memoOff {
				label = fmt.Sprintf("AR%-3.0f DI only", ar*100)
			}
			fmt.Printf("%-14s  %.2fx       %5.1f%%   %5.1f%%\n", label,
				float64(o.Result.Cycles)/float64(golden.Result.Cycles),
				100*o.SkipRate(), 100*o.DISkipRate())
		}
	}

	// Inspect the trained lookup table.
	cfg := core.DefaultConfig()
	p, err := core.Build(b, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Train(seeds, bench.ScalePerf); err != nil {
		log.Fatal(err)
	}
	for id, table := range p.Trained.Memo {
		li := p.Module(core.RSkip).LoopByID(id)
		callee := p.Module(core.RSkip).Funcs[li.MemoFn]
		fmt.Printf("\nlookup table for %s (validation accuracy %.2f%%):\n",
			callee.Name, 100*p.Trained.MemoAccuracy[id])
		fmt.Printf("  address bits per input: %v (%d of %d inputs encoded)\n",
			table.Bits, table.EncodedInputs(), len(table.Bits))
		filled := 0
		for _, f := range table.Filled {
			if f {
				filled++
			}
		}
		fmt.Printf("  table cells: %d total, %d populated by training\n",
			len(table.Values), filled)
	}
}
