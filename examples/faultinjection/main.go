// Statistical fault injection walkthrough (§7.2).
//
// This example runs a small SFI campaign on sgemm: hundreds of runs,
// each with one single-event upset injected at a random dynamic
// instruction inside the detected loop, under three protection
// schemes. It prints the outcome distribution the way Fig. 9a does,
// and shows the trade-off the acceptable range buys (Fig. 9b's false
// negatives).
//
//	go run ./examples/faultinjection
package main

import (
	"context"
	"fmt"
	"log"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/fault"
	"rskip/internal/stats"
)

func main() {
	const injections = 400

	b, err := bench.ByName("sgemm")
	if err != nil {
		log.Fatal(err)
	}
	inst := b.Gen(bench.TestSeed(0), bench.ScaleFI)
	seeds := []int64{bench.TrainSeed(0), bench.TrainSeed(1)}

	t := stats.NewTable(
		fmt.Sprintf("sgemm — %d injected faults per scheme", injections),
		"scheme", "Correct", "SDC", "Segfault", "Core dump", "Hang", "false neg", "recovered")
	row := func(label string, r fault.Result) {
		t.Row(label,
			fmt.Sprintf("%.1f%%", r.Rate(fault.Correct)),
			fmt.Sprintf("%.1f%%", r.Rate(fault.SDC)),
			fmt.Sprintf("%.1f%%", r.Rate(fault.Segfault)),
			fmt.Sprintf("%.1f%%", r.Rate(fault.CoreDump)),
			fmt.Sprintf("%.1f%%", r.Rate(fault.Hang)),
			fmt.Sprintf("%.1f%%", r.FalseNegRate()),
			fmt.Sprintf("%d", r.Recovered))
	}

	base, err := core.Build(b, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := base.Train(seeds, bench.ScaleFI); err != nil {
		log.Fatal(err)
	}
	for _, s := range []core.Scheme{core.Unsafe, core.SWIFTR} {
		r, err := fault.Campaign(context.Background(), base, s, inst, fault.Config{N: injections, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		row(s.String(), r)
	}
	for _, ar := range []float64{0.2, 1.0} {
		cfg := core.DefaultConfig()
		cfg.AR = ar
		p, err := core.Build(b, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := p.Train(seeds, bench.ScaleFI); err != nil {
			log.Fatal(err)
		}
		r, err := fault.Campaign(context.Background(), p, core.RSkip, inst, fault.Config{N: injections, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		row(fmt.Sprintf("RSkip AR%.0f", ar*100), r)
	}
	fmt.Print(t.String())
	fmt.Println("\nReading the table: SWIFT-R and RSkip both push SDCs toward zero;")
	fmt.Println("RSkip trades a controlled number of false negatives (fuzzy validation")
	fmt.Println("accepting a small corruption) for skipping most re-computation.")
}
