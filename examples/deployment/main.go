// Deployment workflow: compile once, train once, ship the artifacts,
// run many times.
//
// This example walks the full production path a user of RSkip would
// take: a MiniC source with a per-loop pragma, control-flow checking
// layered on top, offline training persisted to a JSON profile, the
// transformed module serialized to .rir, and a fresh process reloading
// both artifacts and running without retraining.
//
//	go run ./examples/deployment
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/ir"
	"rskip/internal/machine"
)

const source = `
// Telemetry pipeline: a smoothing pass (prediction-protected) and a
// safety-critical threshold count pinned to exact validation.
void kernel(float samples[], float smooth[], int alarms[], int n, float limit) {
	for (int i = 0; i < n - 4; i++) {
		float s = 0.0;
		for (int j = 0; j < 4; j++) { s += samples[i + j]; }
		smooth[i] = s / 4.0;
	}
	#pragma rskip ar(0)
	for (int i = 0; i < n - 4; i++) {
		int hit = 0;
		for (int j = 0; j < 3; j++) {
			if (smooth[i] * float(j + 1) > limit) { hit++; }
		}
		alarms[i] = hit;
	}
}
`

func gen(seed int64, _ bench.Scale) bench.Instance {
	rng := rand.New(rand.NewSource(seed))
	n := 1024
	samples := make([]float64, n)
	v := 20.0
	for i := range samples {
		v += 0.05 + 0.02*(rng.Float64()-0.5)
		samples[i] = v
	}
	return bench.Instance{
		Elements: 2 * (n - 4),
		Setup: func(mem *machine.Memory) []uint64 {
			sb := mem.Alloc(int64(n))
			mem.CopyFloats(sb, samples)
			sm := mem.Alloc(int64(n))
			al := mem.Alloc(int64(n))
			return []uint64{uint64(sb), uint64(sm), uint64(al),
				uint64(int64(n)), 0} // limit patched by withLimit
		},
		Output: func(mem *machine.Memory) []uint64 {
			out := make([]uint64, n-4)
			for i := range out {
				out[i] = uint64(mem.GetInt(int64(2*n + i)))
			}
			return out
		},
	}
}

func main() {
	dir, err := os.MkdirTemp("", "rskip-deploy")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	b := bench.Benchmark{
		Name: "telemetry", Kernel: "kernel", Source: source,
		Domain: "example", Gen: withLimit(gen, 60.0),
	}
	cfg := core.DefaultConfig()
	cfg.EnableCFC = true

	// --- Build side: compile, train, persist artifacts. ---
	prog, err := core.Build(b, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d candidate loops, %d with ar(0) pragma\n",
		len(prog.Candidates), countOverrides(prog))
	if err := prog.Train([]int64{1, 2, 3}, bench.ScalePerf); err != nil {
		log.Fatal(err)
	}
	profilePath := filepath.Join(dir, "telemetry.profile.json")
	if err := prog.SaveProfile(profilePath); err != nil {
		log.Fatal(err)
	}
	modulePath := filepath.Join(dir, "telemetry.rir")
	mf, err := os.Create(modulePath)
	if err != nil {
		log.Fatal(err)
	}
	if err := prog.Module(core.RSkip).MarshalText(mf); err != nil {
		log.Fatal(err)
	}
	mf.Close()
	fmt.Printf("artifacts: %s, %s\n", filepath.Base(modulePath), filepath.Base(profilePath))

	// --- Deploy side: fresh build, reload the profile, run. ---
	fresh, err := core.Build(b, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := fresh.LoadProfile(profilePath); err != nil {
		log.Fatal(err)
	}
	// Sanity: the serialized module reloads and verifies.
	rf, err := os.Open(modulePath)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ir.UnmarshalText(rf); err != nil {
		log.Fatal(err)
	}
	rf.Close()

	inst := b.Gen(42, bench.ScalePerf)
	golden := fresh.Run(core.Unsafe, inst, core.RunOpts{})
	o := fresh.Run(core.RSkip, inst, core.RunOpts{})
	if golden.Err != nil || o.Err != nil {
		log.Fatal(golden.Err, o.Err)
	}
	sw := fresh.Run(core.SWIFTR, inst, core.RunOpts{})
	if sw.Err != nil {
		log.Fatal(sw.Err)
	}
	match := true
	for i := range golden.Output {
		match = match && o.Output[i] == golden.Output[i]
	}
	fmt.Printf("deployed run: %.2fx slowdown (SWIFT-R+CFC: %.2fx), %.1f%% skip, outputs match: %v\n",
		float64(o.Result.Cycles)/float64(golden.Result.Cycles),
		float64(sw.Result.Cycles)/float64(golden.Result.Cycles),
		100*o.SkipRate(), match)
	for id, st := range o.Stats {
		li := fresh.Module(core.RSkip).LoopByID(id)
		mode := "AR from config"
		if li.HasAROverride {
			mode = fmt.Sprintf("pragma ar(%g): exact validation", li.AROverride)
		}
		fmt.Printf("  loop %-18s skip %5.1f%%  (%s)\n", li.Name, 100*st.SkipRate(), mode)
	}
}

func countOverrides(p *core.Program) int {
	n := 0
	for _, li := range p.Module(core.RSkip).Loops {
		if li.HasAROverride {
			n++
		}
	}
	return n
}

// withLimit patches the scalar limit argument into the instance.
func withLimit(g func(int64, bench.Scale) bench.Instance, limit float64) func(int64, bench.Scale) bench.Instance {
	return func(seed int64, s bench.Scale) bench.Instance {
		inst := g(seed, s)
		setup := inst.Setup
		inst.Setup = func(mem *machine.Memory) []uint64 {
			args := setup(mem)
			args[len(args)-1] = math.Float64bits(limit)
			return args
		}
		return inst
	}
}
