package clitest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenUpdateRoundTrip exercises the -update write path against
// a scratch testdata dir: an update followed by a compare of the same
// content must pass.
func TestGoldenUpdateRoundTrip(t *testing.T) {
	orig, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(orig); err != nil {
			t.Fatal(err)
		}
	}()

	Golden(t, "roundtrip", "hello golden\n", true)
	data, err := os.ReadFile(filepath.Join("testdata", "roundtrip.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello golden\n" {
		t.Fatalf("update wrote %q", data)
	}
	Golden(t, "roundtrip", "hello golden\n", false)

	// A second update overwrites in place.
	Golden(t, "roundtrip", "revised\n", true)
	Golden(t, "roundtrip", "revised\n", false)
}

func TestDiffLines(t *testing.T) {
	if d := diffLines("a\nb\n", "a\nb\n"); d != "" {
		t.Errorf("identical inputs produced a diff: %q", d)
	}
	d := diffLines("a\nb\nc\n", "a\nX\nc\n")
	if !strings.Contains(d, "line 2") || !strings.Contains(d, `want: "b"`) || !strings.Contains(d, `got:  "X"`) {
		t.Errorf("diff misses the changed line: %q", d)
	}
	if strings.Contains(d, "line 1") || strings.Contains(d, "line 3") {
		t.Errorf("diff reports unchanged lines: %q", d)
	}
	// Length mismatch: the extra tail shows up against empty lines.
	d = diffLines("a\n", "a\nextra\n")
	if !strings.Contains(d, `got:  "extra"`) {
		t.Errorf("diff misses the extra trailing line: %q", d)
	}
}

// TestBinaryReuse checks the harness builds each tool once and hands
// back the same executable on the second request.
func TestBinaryReuse(t *testing.T) {
	first := Binary(t, "rskipc")
	second := Binary(t, "rskipc")
	if first != second {
		t.Errorf("Binary rebuilt: %q then %q", first, second)
	}
	if _, err := os.Stat(first); err != nil {
		t.Errorf("built binary missing: %v", err)
	}
}
