package clitest

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

func TestMain(m *testing.M) {
	flag.Parse()
	code := m.Run()
	Cleanup()
	os.Exit(code)
}

// TestRskipcCandidates pins the candidate-loop report of the
// prediction analysis on a built-in benchmark.
func TestRskipcCandidates(t *testing.T) {
	bin := Binary(t, "rskipc")
	res := Run(t, bin, "-bench", "conv1d", "-candidates")
	if res.Code != 0 {
		t.Fatalf("exit %d\n%s", res.Code, res.Stderr)
	}
	Golden(t, "rskipc_conv1d_candidates", res.Stdout, *update)
}

// TestRskipcSchemeSummaries pins the static summary line of every
// scheme pipeline — the instruction-count deltas between UNSAFE,
// SWIFT, SWIFT-R and RSkip are the compile-side paper story.
func TestRskipcSchemeSummaries(t *testing.T) {
	bin := Binary(t, "rskipc")
	var sb strings.Builder
	for _, scheme := range []string{"unsafe", "swift", "swiftr", "rskip"} {
		res := Run(t, bin, "-bench", "conv1d", "-scheme", scheme)
		if res.Code != 0 {
			t.Fatalf("scheme %s: exit %d\n%s", scheme, res.Code, res.Stderr)
		}
		sb.WriteString(res.Stdout)
	}
	Golden(t, "rskipc_conv1d_schemes", sb.String(), *update)
}

// TestRskipcFormat pins the MiniC pretty-printer round trip.
func TestRskipcFormat(t *testing.T) {
	bin := Binary(t, "rskipc")
	src := filepath.Join(t.TempDir(), "fmt.mc")
	err := os.WriteFile(src, []byte(
		"void kernel(int a[],int out[],int n){for(int i=0;i<n;i=i+1){out[i]=a[i]*2+1;}}\n"), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(t, bin, "-fmt", src)
	if res.Code != 0 {
		t.Fatalf("exit %d\n%s", res.Code, res.Stderr)
	}
	Golden(t, "rskipc_fmt", res.Stdout, *update)
}

// TestRskipcBadSource checks the compiler front door fails loudly and
// with a diagnostic, not a zero exit.
func TestRskipcBadSource(t *testing.T) {
	bin := Binary(t, "rskipc")
	src := filepath.Join(t.TempDir(), "bad.mc")
	if err := os.WriteFile(src, []byte("void kernel( {"), 0o644); err != nil {
		t.Fatal(err)
	}
	res := Run(t, bin, src)
	if res.Code == 0 {
		t.Fatalf("malformed source exited 0\nstdout: %s", res.Stdout)
	}
	if !strings.Contains(res.Stderr, "rskipc:") {
		t.Errorf("stderr lacks the rskipc: prefix: %q", res.Stderr)
	}
}

// TestRskiprunGolden pins the full execution report — instruction
// counts, mix table, skip rates and per-loop management stats — and
// checks it is reproducible run over run (the mix and per-loop
// sections are sorted with full tie-breaks, so two invocations must
// be byte-identical).
func TestRskiprunGolden(t *testing.T) {
	bin := Binary(t, "rskiprun")
	args := []string{"-bench", "conv1d", "-scale", "tiny", "-scheme", "rskip", "-train", "2"}
	first := Run(t, bin, args...)
	if first.Code != 0 {
		t.Fatalf("exit %d\n%s", first.Code, first.Stderr)
	}
	second := Run(t, bin, args...)
	if second.Code != 0 {
		t.Fatalf("second run: exit %d\n%s", second.Code, second.Stderr)
	}
	if first.Stdout != second.Stdout {
		t.Errorf("two identical invocations differ:\n%s", diffLines(first.Stdout, second.Stdout))
	}
	Golden(t, "rskiprun_conv1d_tiny_rskip", first.Stdout, *update)
}

// TestRskiprunUnsafe pins the baseline (no protection) report shape.
func TestRskiprunUnsafe(t *testing.T) {
	bin := Binary(t, "rskiprun")
	res := Run(t, bin, "-bench", "conv1d", "-scale", "tiny", "-scheme", "unsafe")
	if res.Code != 0 {
		t.Fatalf("exit %d\n%s", res.Code, res.Stderr)
	}
	Golden(t, "rskiprun_conv1d_tiny_unsafe", res.Stdout, *update)
}

// TestRskipfiTable pins a small deterministic fault-injection sweep:
// the outcome table plus the per-campaign metrics summary. The
// campaign draws its fault plans from -seed, the simulator is
// instruction-counted, and no wall-clock timeout is set, so the whole
// report is a pure function of the flags.
func TestRskipfiTable(t *testing.T) {
	bin := Binary(t, "rskipfi")
	res := Run(t, bin, "-bench", "conv1d", "-n", "40", "-seed", "123",
		"-schemes", "unsafe,rskip", "-train", "2", "-workers", "2")
	if res.Code != 0 {
		t.Fatalf("exit %d\n%s", res.Code, res.Stderr)
	}
	Golden(t, "rskipfi_conv1d_table", res.Stdout, *update)
}

// TestRskipfiSkipTable pins a sampled instruction-skip campaign — the
// -fault-kind knob end to end, including the per-kind metrics counters
// in the summary lines.
func TestRskipfiSkipTable(t *testing.T) {
	bin := Binary(t, "rskipfi")
	res := Run(t, bin, "-bench", "conv1d", "-n", "30", "-seed", "123",
		"-fault-kind", "skip", "-schemes", "unsafe,swiftr,swiftrhard",
		"-train", "2", "-workers", "2")
	if res.Code != 0 {
		t.Fatalf("exit %d\n%s", res.Code, res.Stderr)
	}
	Golden(t, "rskipfi_conv1d_skip_table", res.Stdout, *update)
}

// TestRskipfiExhaustiveMicro pins the exhaustive skip-verification
// story on a micro-kernel: every single-skip site enumerated, the
// hardened scheme at 100% protection, plain SWIFT below it.
func TestRskipfiExhaustiveMicro(t *testing.T) {
	bin := Binary(t, "rskipfi")
	res := Run(t, bin, "-bench", "musum", "-fault-kind", "skip", "-exhaustive",
		"-schemes", "swift,swiftrhard", "-train", "2", "-workers", "2")
	if res.Code != 0 {
		t.Fatalf("exit %d\n%s", res.Code, res.Stderr)
	}
	Golden(t, "rskipfi_musum_skip_exhaustive", res.Stdout, *update)
}

// TestRskipfiUnknownFaultKind checks the threat-model front door fails
// loudly with the model vocabulary in the diagnostic.
func TestRskipfiUnknownFaultKind(t *testing.T) {
	bin := Binary(t, "rskipfi")
	res := Run(t, bin, "-bench", "conv1d", "-fault-kind", "cosmic-ray")
	if res.Code == 0 {
		t.Fatal("unknown fault model exited 0")
	}
	if !strings.Contains(res.Stderr, "unknown fault model") || !strings.Contains(res.Stderr, "multibit") {
		t.Errorf("stderr %q does not explain the fault-model vocabulary", res.Stderr)
	}
}

// TestRskipfiJSON checks the machine-readable form agrees with the
// table on the headline numbers without pinning the whole document
// (the metrics block is environment-stable but verbose).
func TestRskipfiJSON(t *testing.T) {
	bin := Binary(t, "rskipfi")
	res := Run(t, bin, "-bench", "conv1d", "-n", "40", "-seed", "123",
		"-schemes", "rskip", "-train", "2", "-workers", "2", "-json")
	if res.Code != 0 {
		t.Fatalf("exit %d\n%s", res.Code, res.Stderr)
	}
	out := res.Stdout
	for _, want := range []string{`"bench": "conv1d"`, `"scheme": "RSkip AR20"`, `"n": 40`, `"protection_rate"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output lacks %s\n%s", want, out)
		}
	}
}

// TestRskipfiIncrementalColdWarm pins the incremental analysis report
// across a cold and a warm run against the same result cache. The two
// tables must carry identical figures — the warm run differs only in
// its cached column and in the metrics block, which shrinks to the
// single profile run that fingerprints the regions.
func TestRskipfiIncrementalColdWarm(t *testing.T) {
	bin := Binary(t, "rskipfi")
	cache := filepath.Join(t.TempDir(), "results")
	args := []string{"-bench", "conv1d", "-n", "40", "-seed", "123",
		"-schemes", "unsafe,rskip", "-train", "2", "-workers", "2",
		"-incremental", "-result-cache-dir", cache}
	cold := Run(t, bin, args...)
	if cold.Code != 0 {
		t.Fatalf("cold run: exit %d\n%s", cold.Code, cold.Stderr)
	}
	warm := Run(t, bin, args...)
	if warm.Code != 0 {
		t.Fatalf("warm run: exit %d\n%s", warm.Code, warm.Stderr)
	}
	Golden(t, "rskipfi_conv1d_incremental",
		cold.Stdout+"=== warm re-run against the same cache ===\n"+warm.Stdout, *update)
}

// TestRskipfiIncrementalJSON checks the machine-readable incremental
// report exposes the cache traffic that proves incrementality.
func TestRskipfiIncrementalJSON(t *testing.T) {
	bin := Binary(t, "rskipfi")
	cache := filepath.Join(t.TempDir(), "results")
	args := []string{"-bench", "conv1d", "-n", "40", "-seed", "123",
		"-schemes", "rskip", "-train", "2", "-workers", "2", "-json",
		"-incremental", "-result-cache-dir", cache}
	cold := Run(t, bin, args...)
	if cold.Code != 0 {
		t.Fatalf("cold run: exit %d\n%s", cold.Code, cold.Stderr)
	}
	for _, want := range []string{`"incremental": true`, `"regions": 1`, `"cache_misses": 1`} {
		if !strings.Contains(cold.Stdout, want) {
			t.Errorf("cold JSON lacks %s\n%s", want, cold.Stdout)
		}
	}
	warm := Run(t, bin, args...)
	if warm.Code != 0 {
		t.Fatalf("warm run: exit %d\n%s", warm.Code, warm.Stderr)
	}
	if !strings.Contains(warm.Stdout, `"cache_hits": 1`) {
		t.Errorf("warm JSON lacks \"cache_hits\": 1\n%s", warm.Stdout)
	}
	if strings.Contains(warm.Stdout, `"cache_misses"`) {
		t.Errorf("warm JSON still reports cache misses\n%s", warm.Stdout)
	}
}

// TestRskipfiAdviseTable pins the advisory sweep: the forecast table
// (cold corpus → per-scheme priors, no wall estimate), the campaign
// table — byte-identical to what the same flags produce without
// -advise, fault-wise — and the calibration footer scoring each
// forecast against its realized outcome. Cold-corpus forecasts come
// from the fixed prior table and the campaigns are seeded, so the
// whole report is a pure function of the flags.
func TestRskipfiAdviseTable(t *testing.T) {
	bin := Binary(t, "rskipfi")
	res := Run(t, bin, "-bench", "musum", "-n", "40", "-seed", "123",
		"-fault-kind", "skip", "-schemes", "unsafe,rskip",
		"-train", "2", "-workers", "2", "-advise")
	if res.Code != 0 {
		t.Fatalf("exit %d\n%s", res.Code, res.Stderr)
	}
	Golden(t, "rskipfi_musum_advise_table", res.Stdout, *update)
}

// TestRskipfiAdviseWarmCorpus checks -advice-dir persistence: the
// second run against the same directory forecasts from the corpus the
// first run grew — source flips from priors to corpus and a wall
// estimate appears — while the campaign figures stay identical, since
// predictions advise but never influence.
func TestRskipfiAdviseWarmCorpus(t *testing.T) {
	bin := Binary(t, "rskipfi")
	dir := filepath.Join(t.TempDir(), "advice")
	args := []string{"-bench", "musum", "-n", "40", "-seed", "123",
		"-fault-kind", "skip", "-schemes", "swift",
		"-train", "2", "-workers", "2", "-advise", "-advice-dir", dir}
	cold := Run(t, bin, args...)
	if cold.Code != 0 {
		t.Fatalf("cold run: exit %d\n%s", cold.Code, cold.Stderr)
	}
	if !strings.Contains(cold.Stdout, "priors") {
		t.Errorf("cold forecast not priors-sourced\n%s", cold.Stdout)
	}
	warm := Run(t, bin, args...)
	if warm.Code != 0 {
		t.Fatalf("warm run: exit %d\n%s", warm.Code, warm.Stderr)
	}
	if !strings.Contains(warm.Stdout, "corpus") {
		t.Errorf("warm forecast not corpus-sourced\n%s", warm.Stdout)
	}
	if _, err := os.Stat(filepath.Join(dir, "corpus.jsonl")); err != nil {
		t.Errorf("advice corpus did not persist: %v", err)
	}
	// The campaign section must not move when the forecast does: strip
	// the advisory table and footer and compare what the engine printed.
	campaign := func(out string) string {
		i := strings.Index(out, "fault injection —")
		j := strings.Index(out, "advisory calibration")
		if i < 0 || j < 0 {
			t.Fatalf("report missing campaign or calibration section\n%s", out)
		}
		return out[i:j]
	}
	if c, w := campaign(cold.Stdout), campaign(warm.Stdout); c != w {
		t.Errorf("campaign section changed between cold and warm advisory runs:\n%s", diffLines(c, w))
	}
}

// TestRskipfiStratifyTable pins a stratified sweep: allocation by
// instruction class changes which replicas run, so the table differs
// from the plain sampled golden under the same seed.
func TestRskipfiStratifyTable(t *testing.T) {
	bin := Binary(t, "rskipfi")
	res := Run(t, bin, "-bench", "conv1d", "-n", "60", "-seed", "123",
		"-schemes", "unsafe,swift", "-train", "2", "-workers", "2", "-stratify")
	if res.Code != 0 {
		t.Fatalf("exit %d\n%s", res.Code, res.Stderr)
	}
	Golden(t, "rskipfi_conv1d_stratify_table", res.Stdout, *update)
}

// TestRskipfiIncrementalFlagConflicts checks the option-conflict front
// door: each rejected combination exits nonzero with a diagnostic that
// names both flags.
func TestRskipfiIncrementalFlagConflicts(t *testing.T) {
	bin := Binary(t, "rskipfi")
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"incremental+exhaustive",
			[]string{"-bench", "musum", "-fault-kind", "skip", "-incremental", "-exhaustive"},
			"-incremental and -exhaustive"},
		{"incremental+target-ci",
			[]string{"-bench", "conv1d", "-incremental", "-target-ci", "0.05"},
			"-incremental and -target-ci"},
		{"incremental+stratify",
			[]string{"-bench", "conv1d", "-incremental", "-stratify"},
			"-incremental and -stratify"},
		{"incremental+checkpoint",
			[]string{"-bench", "conv1d", "-incremental", "-checkpoint", "ck.json"},
			"-incremental and -checkpoint"},
		{"cache dir without incremental",
			[]string{"-bench", "conv1d", "-result-cache-dir", "results"},
			"-result-cache-dir"},
		{"advise+incremental",
			[]string{"-bench", "conv1d", "-incremental", "-advise"},
			"-advise and -incremental"},
		{"advice dir without advise",
			[]string{"-bench", "conv1d", "-advice-dir", "advice"},
			"-advice-dir"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := Run(t, bin, tc.args...)
			if res.Code == 0 {
				t.Fatalf("conflicting flags exited 0\nstdout: %s", res.Stdout)
			}
			if !strings.Contains(res.Stderr, tc.want) {
				t.Errorf("stderr %q does not name the conflict %q", res.Stderr, tc.want)
			}
		})
	}
}
