// Package clitest is the integration harness for the rskip command
// line tools: it builds the real binaries with the host go toolchain
// and pins their stdout against golden files in testdata/.
//
// Goldens regenerate with:
//
//	go test ./internal/clitest -update
//
// Every output these tests pin is deterministic by construction — the
// simulator counts instructions rather than wall-clock time, fault
// plans are pre-drawn from a seed, and report ordering is fully
// specified — so a golden mismatch means behavior changed, not that
// the test is flaky.
package clitest

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildMu   sync.Mutex
	buildDir  string
	buildErr  error
	buildOnce = map[string]bool{}
)

// Binary builds cmd/<name> once per test process and returns the
// executable path. Subsequent calls for the same name reuse the build.
func Binary(t *testing.T, name string) string {
	t.Helper()
	buildMu.Lock()
	defer buildMu.Unlock()
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	if buildDir == "" {
		dir, err := os.MkdirTemp("", "rskip-clitest-")
		if err != nil {
			t.Fatal(err)
		}
		buildDir = dir
	}
	bin := filepath.Join(buildDir, name)
	if !buildOnce[name] {
		cmd := exec.Command("go", "build", "-o", bin, "rskip/cmd/"+name)
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("building %s: %v\n%s", name, err, out)
			t.Fatal(buildErr)
		}
		buildOnce[name] = true
	}
	return bin
}

// Cleanup removes the shared build directory (call from TestMain).
func Cleanup() {
	buildMu.Lock()
	defer buildMu.Unlock()
	if buildDir != "" {
		os.RemoveAll(buildDir)
		buildDir = ""
		buildOnce = map[string]bool{}
	}
}

// Result is one finished CLI invocation.
type Result struct {
	Stdout string
	Stderr string
	Code   int
}

// Run executes a built binary and captures both streams.
func Run(t *testing.T, bin string, args ...string) Result {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %s %s: %v", filepath.Base(bin), strings.Join(args, " "), err)
	}
	return Result{Stdout: stdout.String(), Stderr: stderr.String(), Code: code}
}

// Golden compares got against testdata/<name>.golden, rewriting the
// file instead when -update is set.
func Golden(t *testing.T, name, got string, update bool) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate goldens with: go test ./internal/clitest -update)", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (run with -update after intentional changes)\n%s",
			path, diffLines(string(want), got))
	}
}

// diffLines renders a minimal line diff for golden mismatches.
func diffLines(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	var sb strings.Builder
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w == g {
			continue
		}
		fmt.Fprintf(&sb, "line %d:\n  want: %q\n  got:  %q\n", i+1, w, g)
	}
	return sb.String()
}
