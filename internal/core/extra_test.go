package core

import (
	"path/filepath"
	"testing"

	"rskip/internal/bench"
	"rskip/internal/ir"
)

func buildTiny(t *testing.T, name string, mut func(*Config)) *Program {
	t.Helper()
	b, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	p, err := Build(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSchemeModulesAreIndependent(t *testing.T) {
	p := buildTiny(t, "conv1d", nil)
	// The four variants must be distinct modules; mutating one must not
	// leak into another.
	mods := []*ir.Module{p.Module(Unsafe), p.Module(SWIFT), p.Module(SWIFTR), p.Module(RSkip)}
	for i := range mods {
		for j := i + 1; j < len(mods); j++ {
			if mods[i] == mods[j] {
				t.Fatalf("modules %d and %d are the same pointer", i, j)
			}
		}
	}
	if len(p.Module(Unsafe).Loops) != 0 {
		t.Error("unprotected module has PP loops")
	}
	if len(p.Module(RSkip).Loops) == 0 {
		t.Error("rskip module has no PP loops")
	}
}

func TestBlockIndexesStableAcrossSchemes(t *testing.T) {
	// Fault-injection region marking depends on every variant keeping
	// the unprotected module's block structure (transforms insert
	// instructions, never blocks).
	p := buildTiny(t, "lud", nil)
	for _, m := range []*ir.Module{p.Module(SWIFT), p.Module(SWIFTR), p.Module(RSkip)} {
		for fi, f := range p.Module(Unsafe).Funcs {
			if len(m.Funcs[fi].Blocks) != len(f.Blocks) {
				t.Fatalf("func %s: %d blocks vs unprotected %d",
					f.Name, len(m.Funcs[fi].Blocks), len(f.Blocks))
			}
			if m.Funcs[fi].Name != f.Name {
				t.Fatalf("func %d renamed: %s vs %s", fi, m.Funcs[fi].Name, f.Name)
			}
		}
	}
}

func TestRegionCoversCandidates(t *testing.T) {
	p := buildTiny(t, "sgemm", nil)
	for _, c := range p.Candidates {
		rb := p.RegionBlocks[c.Func]
		if rb == nil || !rb[c.Header] || !rb[c.Latch] {
			t.Fatalf("region does not cover candidate loop %+v", c)
		}
		for blk := range c.Region {
			if !rb[blk] {
				t.Fatalf("region missing body block %d", blk)
			}
		}
	}
	for _, li := range p.Module(RSkip).Loops {
		if !p.RegionFuncs[li.RecomputeFn] {
			t.Fatalf("recompute fn %d not in region funcs", li.RecomputeFn)
		}
	}
}

func TestProfileRoundTripThroughCore(t *testing.T) {
	p := buildTiny(t, "sgemm", nil)
	if err := p.Train([]int64{bench.TrainSeed(0)}, bench.ScaleTiny); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.json")
	if err := p.SaveProfile(path); err != nil {
		t.Fatal(err)
	}
	fresh := buildTiny(t, "sgemm", nil)
	if err := fresh.LoadProfile(path); err != nil {
		t.Fatal(err)
	}
	inst := p.Bench.Gen(bench.TestSeed(0), bench.ScaleTiny)
	a := p.Run(RSkip, inst, RunOpts{})
	b := fresh.Run(RSkip, inst, RunOpts{})
	if a.Err != nil || b.Err != nil {
		t.Fatal(a.Err, b.Err)
	}
	if a.SkipRate() != b.SkipRate() || a.Result.Instrs != b.Result.Instrs {
		t.Errorf("loaded profile behaves differently: %v/%d vs %v/%d",
			a.SkipRate(), a.Result.Instrs, b.SkipRate(), b.Result.Instrs)
	}
}

func TestSaveProfileWithoutTraining(t *testing.T) {
	p := buildTiny(t, "sgemm", nil)
	if err := p.SaveProfile(filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Error("expected error saving an untrained profile")
	}
}

func TestSkipRateRoughlyMonotoneInAR(t *testing.T) {
	// Wider acceptable ranges accept strictly more interiors; the
	// end-to-end skip rate should not drop materially.
	var prev float64 = -1
	for _, ar := range []float64{0.2, 1.0} {
		p := buildTiny(t, "kde", func(c *Config) { c.AR = ar })
		if err := p.Train([]int64{bench.TrainSeed(0)}, bench.ScaleFI); err != nil {
			t.Fatal(err)
		}
		inst := p.Bench.Gen(bench.TestSeed(0), bench.ScaleFI)
		o := p.Run(RSkip, inst, RunOpts{})
		if o.Err != nil {
			t.Fatal(o.Err)
		}
		if o.SkipRate() < prev-0.05 {
			t.Errorf("skip rate dropped from %.3f to %.3f as AR widened", prev, o.SkipRate())
		}
		prev = o.SkipRate()
	}
}

func TestForceCPSkipsNothing(t *testing.T) {
	p := buildTiny(t, "conv1d", func(c *Config) { c.ForceCP = true })
	if err := p.Train([]int64{bench.TrainSeed(0)}, bench.ScaleTiny); err != nil {
		t.Fatal(err)
	}
	inst := p.Bench.Gen(bench.TestSeed(0), bench.ScaleTiny)
	o := p.Run(RSkip, inst, RunOpts{})
	if o.Err != nil {
		t.Fatal(o.Err)
	}
	if o.SkipRate() != 0 {
		t.Errorf("ForceCP skipped %.1f%%", 100*o.SkipRate())
	}
}

func TestSchemeStrings(t *testing.T) {
	for s, want := range map[Scheme]string{
		Unsafe: "UNSAFE", SWIFT: "SWIFT", SWIFTR: "SWIFT-R", RSkip: "RSkip",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestConfigKeyDistinguishes(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	b.AR = 0.5
	c := DefaultConfig()
	c.DisableMemo = true
	keys := map[string]bool{a.Key(): true, b.Key(): true, c.Key(): true}
	if len(keys) != 3 {
		t.Errorf("config keys collide: %v", keys)
	}
}

func TestEnableCFCPreservesOutputs(t *testing.T) {
	p := buildTiny(t, "conv1d", func(c *Config) { c.EnableCFC = true })
	if err := p.Train([]int64{bench.TrainSeed(0)}, bench.ScaleTiny); err != nil {
		t.Fatal(err)
	}
	inst := p.Bench.Gen(bench.TestSeed(0), bench.ScaleTiny)
	golden := p.Run(Unsafe, inst, RunOpts{})
	if golden.Err != nil {
		t.Fatal(golden.Err)
	}
	for _, s := range []Scheme{SWIFT, SWIFTR, RSkip} {
		o := p.Run(s, inst, RunOpts{})
		if o.Err != nil {
			t.Fatalf("%v with CFC failed: %v", s, o.Err)
		}
		for i := range golden.Output {
			if o.Output[i] != golden.Output[i] {
				t.Fatalf("%v with CFC corrupted output[%d]", s, i)
			}
		}
		if o.Result.Instrs <= golden.Result.Instrs {
			t.Errorf("%v with CFC should cost instructions", s)
		}
	}
}
