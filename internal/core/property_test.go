package core_test

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/machine"
)

// This file holds the pipeline's central correctness property: with
// faults disabled, every protection scheme — SWIFT's detection
// shadowing, SWIFT-R's TMR voting, RSkip's prediction machinery
// (including its misprediction recomputation paths) — is semantically
// invisible. Outputs must be bit-identical to the unprotected build,
// for arbitrary kernels, not just the nine curated benchmarks.

// genKernel emits a random but well-formed MiniC program: an optional
// helper function and a reduction kernel whose output loop is shaped
// like the paper's candidates (out[i] = reduction over a window).
// Generated programs avoid division and out-of-bounds indexing so
// every run is trap-free and deterministic; everything else — operator
// mix, expression depth, window size, value type, helper calls, AR
// pragmas — varies with the seed.
func genKernel(rng *rand.Rand) (src string, k int, isFloat bool) {
	k = 2 + rng.Intn(4) // window size baked into the source
	isFloat = rng.Intn(2) == 0
	ty := "int"
	if isFloat {
		ty = "float"
	}

	var sb strings.Builder
	hasHelper := isFloat && rng.Intn(2) == 0
	if hasHelper {
		fmt.Fprintf(&sb, "float helper(float x) { return x * %.1f + %.1f; }\n",
			0.5+rng.Float64(), rng.Float64())
	}

	// Random expression over in-bounds terminals. Depth-limited;
	// division-free; sqrt always behind fabs.
	var expr func(depth int) string
	expr = func(depth int) string {
		if depth <= 0 || rng.Intn(3) == 0 {
			switch rng.Intn(3) {
			case 0:
				return fmt.Sprintf("a[i + %d]", rng.Intn(k))
			case 1:
				return "b[j]"
			default:
				if isFloat {
					return fmt.Sprintf("%.2f", rng.Float64()*4)
				}
				return fmt.Sprintf("%d", 1+rng.Intn(7))
			}
		}
		switch rng.Intn(5) {
		case 0:
			return fmt.Sprintf("(%s + %s)", expr(depth-1), expr(depth-1))
		case 1:
			return fmt.Sprintf("(%s - %s)", expr(depth-1), expr(depth-1))
		case 2:
			return fmt.Sprintf("(%s * %s)", expr(depth-1), expr(depth-1))
		case 3:
			if isFloat {
				return fmt.Sprintf("sqrt(fabs(%s))", expr(depth-1))
			}
			return fmt.Sprintf("(%s + %s)", expr(depth-1), expr(depth-1))
		default:
			if hasHelper {
				return fmt.Sprintf("helper(%s)", expr(depth-1))
			}
			return fmt.Sprintf("(%s * %s)", expr(depth-1), expr(depth-1))
		}
	}

	fmt.Fprintf(&sb, "void kernel(%s a[], %s b[], %s out[], int n) {\n", ty, ty, ty)
	if rng.Intn(3) == 0 {
		fmt.Fprintf(&sb, "\t#pragma rskip ar(%.1f)\n", float64(rng.Intn(10))/10)
	}
	fmt.Fprintf(&sb, "\tfor (int i = 0; i < n; i = i + 1) {\n")
	zero := "0"
	if isFloat {
		zero = "0.0"
	}
	fmt.Fprintf(&sb, "\t\t%s acc = %s;\n", ty, zero)
	fmt.Fprintf(&sb, "\t\tfor (int j = 0; j < %d; j = j + 1) {\n", k)
	fmt.Fprintf(&sb, "\t\t\tacc = acc + %s;\n", expr(2+rng.Intn(2)))
	fmt.Fprintf(&sb, "\t\t}\n")
	fmt.Fprintf(&sb, "\t\tout[i] = acc;\n")
	fmt.Fprintf(&sb, "\t}\n}\n")
	return sb.String(), k, isFloat
}

// genBenchmark wraps a generated kernel as a bench.Benchmark so the
// full pipeline (build, train, run) treats it like a Table 1 entry.
func genBenchmark(name string, rng *rand.Rand) bench.Benchmark {
	src, k, isFloat := genKernel(rng)
	return bench.Benchmark{
		Name:   name,
		Kernel: "kernel",
		Source: src,
		Gen: func(seed int64, scale bench.Scale) bench.Instance {
			irng := rand.New(rand.NewSource(seed))
			n := 24
			// Inputs are drawn here, once — Setup runs once per scheme
			// run and must copy identical data every time.
			draw := func(ln int) []uint64 {
				ws := make([]uint64, ln)
				for i := range ws {
					if isFloat {
						ws[i] = math.Float64bits(irng.Float64() * 4)
					} else {
						ws[i] = uint64(int64(irng.Intn(64)))
					}
				}
				return ws
			}
			aData, bData := draw(n+k), draw(k)
			return bench.Instance{
				Elements: n,
				Setup: func(mem *machine.Memory) []uint64 {
					a := mem.Alloc(int64(len(aData)))
					b := mem.Alloc(int64(len(bData)))
					out := mem.Alloc(int64(n))
					copyWords := func(base int64, ws []uint64) {
						for i, w := range ws {
							if err := mem.StoreWord(base+int64(i), w); err != nil {
								panic(err)
							}
						}
					}
					copyWords(a, aData)
					copyWords(b, bData)
					return []uint64{uint64(a), uint64(b), uint64(out), uint64(int64(n))}
				},
				Output: func(mem *machine.Memory) []uint64 {
					// out is the third allocation: after a (n+k) and b (k).
					words := make([]uint64, n)
					for i := range words {
						w, err := mem.LoadWord(int64(n + k + k + i))
						if err != nil {
							panic(err)
						}
						words[i] = w
					}
					return words
				},
			}
		},
	}
}

// TestSchemesFaultFreeBitIdentical is the property: for randomized
// kernels and inputs, every protection scheme's fault-free output is
// bit-identical to the unprotected run, both before and after
// training (which deploys TP tables and, where eligible, memo tables).
func TestSchemesFaultFreeBitIdentical(t *testing.T) {
	const kernels = 12
	for ki := 0; ki < kernels; ki++ {
		ki := ki
		t.Run(fmt.Sprintf("kernel%02d", ki), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(1000 + ki)))
			b := genBenchmark(fmt.Sprintf("prop%02d", ki), rng)
			p, err := core.Build(b, core.DefaultConfig())
			if err != nil {
				t.Fatalf("build failed for generated kernel:\n%s\nerror: %v", b.Source, err)
			}
			if err := p.Train([]int64{bench.TrainSeed(0), bench.TrainSeed(1)}, bench.ScaleTiny); err != nil {
				t.Fatalf("train failed for generated kernel:\n%s\nerror: %v", b.Source, err)
			}
			for seed := 0; seed < 3; seed++ {
				inst := b.Gen(bench.TestSeed(seed), bench.ScaleTiny)
				golden := p.Run(core.Unsafe, inst, core.RunOpts{})
				if golden.Err != nil {
					t.Fatalf("unprotected run failed:\n%s\nerror: %v", b.Source, golden.Err)
				}
				for _, s := range []core.Scheme{core.SWIFT, core.SWIFTR, core.RSkip} {
					o := p.Run(s, inst, core.RunOpts{})
					if o.Err != nil {
						t.Fatalf("%s run failed (seed %d):\n%s\nerror: %v", s, seed, b.Source, o.Err)
					}
					if len(o.Output) != len(golden.Output) {
						t.Fatalf("%s output length %d != unprotected %d (seed %d)\n%s",
							s, len(o.Output), len(golden.Output), seed, b.Source)
					}
					for i := range o.Output {
						if o.Output[i] != golden.Output[i] {
							t.Fatalf("%s output[%d] = %#x != unprotected %#x (seed %d)\nkernel:\n%s",
								s, i, o.Output[i], golden.Output[i], seed, b.Source)
						}
					}
				}
			}
		})
	}
}
