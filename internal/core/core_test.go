package core

import (
	"testing"

	"rskip/internal/bench"
)

// TestPipelineSmoke builds every benchmark at tiny scale, trains,
// runs all schemes on a fresh test input, and demands bitwise-equal
// outputs with a detected candidate loop and a positive skip rate.
func TestPipelineSmoke(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p, err := Build(b, DefaultConfig())
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if len(p.Candidates) == 0 {
				t.Fatalf("no candidate loops detected")
			}
			if len(p.Module(RSkip).Loops) == 0 {
				t.Fatalf("no PP loops in transformed module")
			}
			if err := p.Train([]int64{bench.TrainSeed(0), bench.TrainSeed(1)}, bench.ScaleTiny); err != nil {
				t.Fatalf("Train: %v", err)
			}
			inst := b.Gen(bench.TestSeed(0), bench.ScaleTiny)
			golden, gres, err := p.Golden(inst)
			if err != nil {
				t.Fatalf("golden run: %v", err)
			}
			if gres.Instrs == 0 || gres.Region == 0 {
				t.Fatalf("golden run counted no instructions (instrs=%d region=%d)",
					gres.Instrs, gres.Region)
			}
			for _, s := range []Scheme{SWIFT, SWIFTR, RSkip} {
				o := p.Run(s, b.Gen(bench.TestSeed(0), bench.ScaleTiny), RunOpts{})
				if o.Err != nil {
					t.Fatalf("%s run failed: %v", s, o.Err)
				}
				if len(o.Output) != len(golden) {
					t.Fatalf("%s output length %d != %d", s, len(o.Output), len(golden))
				}
				for i := range golden {
					if o.Output[i] != golden[i] {
						t.Fatalf("%s output[%d] = %#x, want %#x", s, i, o.Output[i], golden[i])
					}
				}
				if o.Result.Instrs <= gres.Instrs {
					t.Errorf("%s executed %d instrs, expected more than unprotected %d",
						s, o.Result.Instrs, gres.Instrs)
				}
				if s == RSkip {
					total := 0
					for _, st := range o.Stats {
						total += st.Observed
					}
					if total == 0 {
						t.Fatalf("RSkip observed no elements")
					}
					t.Logf("%s: skip=%.2f%% instrs=%.2fx cycles=%.2fx",
						b.Name, 100*o.SkipRate(),
						float64(o.Result.Instrs)/float64(gres.Instrs),
						float64(o.Result.Cycles)/float64(gres.Cycles))
				}
			}
		})
	}
}
