// Package core is RSkip's public pipeline facade: compile MiniC source
// once, derive the protected module variants (UNSAFE, SWIFT, SWIFT-R,
// prediction-based), run the offline training phase, and execute
// instances under any scheme with full measurement — dynamic
// instructions, simulated cycles/IPC, skip rates, and optional fault
// injection. Everything the command-line tools, examples, tests and
// benchmark harness do goes through this package.
package core

import (
	"context"
	"fmt"
	"io"
	"sync"

	"rskip/internal/analysis"
	"rskip/internal/bench"
	"rskip/internal/ir"
	"rskip/internal/lower"
	"rskip/internal/machine"
	"rskip/internal/obs"
	"rskip/internal/pass"
	"rskip/internal/rtm"
	"rskip/internal/train"
)

// Scheme names a protection configuration.
type Scheme int

// Schemes.
const (
	Unsafe     Scheme = iota // no protection
	SWIFT                    // detection-only duplication
	SWIFTR                   // TMR duplication (baseline)
	RSkip                    // prediction-based protection
	SWIFTRHard               // skip-hardened TMR + control-flow checking
)

func (s Scheme) String() string {
	switch s {
	case Unsafe:
		return "UNSAFE"
	case SWIFT:
		return "SWIFT"
	case SWIFTR:
		return "SWIFT-R"
	case RSkip:
		return "RSkip"
	case SWIFTRHard:
		return "SWIFT-R-HARD"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Config parameterizes a build.
type Config struct {
	// AR is the acceptable range as a fraction (0.2 = the paper's
	// AR20).
	AR float64
	// CostThreshold gates candidate loops (0 = default).
	CostThreshold int
	// Window is the run-time observe/adjust period.
	Window int
	// MemoBits is the memo-table address width.
	MemoBits int
	// DisableMemo turns off the second-level predictor (Fig. 8a's
	// DI-only configuration).
	DisableMemo bool
	// DisableDI routes everything to the second-level predictor.
	DisableDI bool
	// ForceCP runs every PP loop under emulated conventional
	// protection.
	ForceCP bool
	// MemoUniform selects prior work's uniform quantization.
	MemoUniform bool
	// FixedStride replaces dynamic phase slicing with fixed-length
	// phases (ablation).
	FixedStride int
	// IssueWidth overrides the simulated core's issue width.
	IssueWidth int
	// EnableCFC adds control-flow checking (block signatures) to the
	// SWIFT, SWIFT-R and RSkip variants — the companion technique that
	// fail-stops illegal control transfers.
	EnableCFC bool
	// Backend selects the default execution engine for this program's
	// runs (fast pre-decoded interpreter, compiled closure-threaded
	// code, or the seed reference interpreter); RunOpts.Backend
	// overrides it per run. It is a run-time choice only — all
	// backends execute the same build artifacts bit-identically — so
	// it is deliberately excluded from Key and never affects the build
	// cache or the build goldens.
	Backend machine.Backend
}

// DefaultConfig returns the paper's AR20 deployment.
func DefaultConfig() Config { return Config{AR: 0.2} }

// Key returns a string identifying every build-affecting field, for
// caching compiled programs.
func (c Config) Key() string {
	return fmt.Sprintf("ar=%g|ct=%d|w=%d|mb=%d|dm=%v|dd=%v|cp=%v|mu=%v|fs=%d|iw=%d|cfc=%v",
		c.AR, c.CostThreshold, c.Window, c.MemoBits, c.DisableMemo,
		c.DisableDI, c.ForceCP, c.MemoUniform, c.FixedStride, c.IssueWidth, c.EnableCFC)
}

// Program is one benchmark compiled under every registered scheme.
type Program struct {
	Bench  bench.Benchmark
	Cfg    Config
	Kernel int // kernel function index (identical across variants)

	// Candidates are the detected loops (computed on the unprotected
	// module; block indexes are stable across variants).
	Candidates []analysis.Candidate
	// RegionBlocks marks the detected-loop blocks per function for
	// fault-injection targeting.
	RegionBlocks map[int]map[int]bool
	// RegionFuncs marks the outlined recompute slices of the RSkip
	// variant, which execute in-region wherever they are called from.
	RegionFuncs map[int]bool
	// RegionOwner maps each outlined recompute slice back to the
	// function its loop lives in, so region traces attribute the
	// slice's execution to the owning region.
	RegionOwner map[int]int

	Trained *train.Result

	// variants maps each scheme to its transformed module and the
	// pre-decoded code compiled at Build time, so concurrent campaign
	// workers share it instead of re-decoding on every Run. The map is
	// immutable after Build and may be shared between Programs through
	// the build cache.
	variants map[Scheme]*Variant

	// obs is the observability handle every Run and Train feeds; nil
	// (the default for plain Build) disables all telemetry. Set it at
	// build time by passing an obs-carrying context to BuildContext,
	// or later with Observe.
	obs *obs.Obs
	// met caches the run-time-management instrument handles.
	met *rtmMetrics
}

// schemeOrder is the canonical variant list a build derives.
var schemeOrder = []Scheme{Unsafe, SWIFT, SWIFTR, RSkip, SWIFTRHard}

// pipelineName maps the scheme enum to its registered pass pipeline.
func (s Scheme) pipelineName() string {
	switch s {
	case SWIFT:
		return "swift"
	case SWIFTR:
		return "swiftr"
	case RSkip:
		return "rskip"
	case SWIFTRHard:
		return "swiftrhard"
	}
	return "unsafe"
}

// schemeExtras returns the config-dependent passes appended to a
// scheme's registered pipeline: CFC protects the protected variants
// only (the unprotected baseline must stay untouched, and the
// hardened pipeline already ends in cfc).
func schemeExtras(s Scheme, cfg Config) []string {
	if cfg.EnableCFC && s != Unsafe && s != SWIFTRHard {
		return []string{"cfc"}
	}
	return nil
}

// PipelineSig is the content signature of the pass pipeline that
// produces scheme s under cfg — the same signature the build cache
// keys on. The campaign-result cache includes it so results computed
// under one pipeline implementation never masquerade as another's.
func PipelineSig(s Scheme, cfg Config) string {
	return pass.PipelineSignature(s.pipelineName(), schemeExtras(s, cfg)...)
}

// rtmMetrics are the prediction counters fed after every RSkip run.
type rtmMetrics struct {
	observed, skippedDI, skippedAM *obs.Counter
	recomputed, mispredicted       *obs.Counter
	detected, recovered            *obs.Counter
	mispredictRate                 *obs.Gauge
}

// Observe attaches an observability handle: spans for train phases
// and metrics fed from every subsequent Run. A nil handle (or nil
// argument) turns telemetry back off.
func (p *Program) Observe(o *obs.Obs) {
	p.obs = o
	p.met = nil
	if m := o.M(); m != nil {
		p.met = &rtmMetrics{
			observed:     m.Counter("rtm_observed_total", "loop elements subject to validation"),
			skippedDI:    m.Counter("rtm_skipped_di_total", "elements accepted by dynamic interpolation"),
			skippedAM:    m.Counter("rtm_skipped_am_total", "elements accepted by approximate memoization"),
			recomputed:   m.Counter("rtm_recomputed_total", "elements exactly validated by re-computation"),
			mispredicted: m.Counter("rtm_mispredicted_total", "recomputations that matched the original (no fault)"),
			detected:     m.Counter("rtm_detected_total", "recomputation mismatches (possible faults)"),
			recovered:    m.Counter("rtm_recovered_total", "elements repaired by majority vote"),
			mispredictRate: m.Gauge("rtm_mispredict_rate",
				"cumulative mispredicted/observed across instrumented runs"),
		}
	}
}

// Build compiles the benchmark and derives all protected variants,
// without telemetry. It is BuildContext on a background context.
func Build(b bench.Benchmark, cfg Config) (*Program, error) {
	return BuildContext(context.Background(), b, cfg)
}

// BuildContext compiles the benchmark and derives all protected
// variants by running each scheme's registered pass pipeline, with
// ir.Verify after every pass and per-scheme derivation parallelized
// across goroutines. Results are served from the content-addressed
// build cache when an identical (source, config, pipelines) build
// already ran in this process. An obs.Obs carried by ctx traces the
// build phases (compile, candidate detection, per-scheme pipeline)
// and becomes the Program's telemetry handle for later Train and Run
// calls; a plain context builds silently.
func BuildContext(ctx context.Context, b bench.Benchmark, cfg Config) (*Program, error) {
	p, _, err := BuildContextCached(ctx, b, cfg)
	return p, err
}

// BuildContextCached is BuildContext plus a report of whether the
// artifacts were served from the build cache (including coalescing
// onto another goroutine's identical in-flight build) rather than
// compiled by this call — the bit rskipd returns to clients so build
// deduplication is observable per request.
func BuildContextCached(ctx context.Context, b bench.Benchmark, cfg Config) (*Program, bool, error) {
	ctx, sp := obs.Start(ctx, "core/build")
	sp.SetAttr("bench", b.Name)
	defer sp.End()
	o := obs.From(ctx)
	o.M().Counter("core_builds_total", "programs built").Inc()

	key := buildCacheKey(b, cfg)
	art, cached, err := buildCache.getOrBuild(key, func() (*artifacts, error) {
		return buildArtifacts(ctx, b, cfg)
	})
	if cached {
		o.M().Counter("core_build_cache_hits_total", "builds served from the build cache").Inc()
		sp.SetAttr("cache", "hit")
	} else {
		o.M().Counter("core_build_cache_misses_total", "builds compiled from source").Inc()
		sp.SetAttr("cache", "miss")
	}
	if err != nil {
		return nil, false, err
	}
	p := newProgram(b, cfg, art)
	p.Observe(o)
	return p, cached, nil
}

// newProgram wraps (possibly shared) build artifacts as a Program.
// Mutable per-use state — the trained profile, telemetry — is fresh.
func newProgram(b bench.Benchmark, cfg Config, art *artifacts) *Program {
	return &Program{
		Bench: b, Cfg: cfg, Kernel: art.kernel,
		Candidates:   art.candidates,
		RegionBlocks: art.regionBlocks,
		RegionFuncs:  art.regionFuncs,
		RegionOwner:  art.regionOwner,
		variants:     art.variants,
	}
}

// buildArtifacts compiles the benchmark once and derives every
// registered scheme variant through its pass pipeline.
func buildArtifacts(ctx context.Context, b bench.Benchmark, cfg Config) (*artifacts, error) {
	_, spc := obs.Start(ctx, "build/compile")
	mod, err := lower.Compile(b.Name, b.Source)
	spc.End()
	if err != nil {
		return nil, fmt.Errorf("core: compiling %s: %w", b.Name, err)
	}
	kernel := mod.FuncByName(b.Kernel)
	if kernel < 0 {
		return nil, fmt.Errorf("core: %s has no kernel function %q", b.Name, b.Kernel)
	}
	opt := analysis.Options{CostThreshold: cfg.CostThreshold}
	baseAM := analysis.NewManager(mod)
	_, spa := obs.Start(ctx, "build/candidates")
	cands := baseAM.Candidates(opt)
	spa.SetAttr("candidates", len(cands))
	spa.End()

	// Every variant pipeline is independent once candidates are known:
	// each goroutine clones the base module (cloning a shared module
	// concurrently is safe — it only reads the source) and runs its
	// scheme's registered passes, then pre-decodes the result.
	ctx, spt := obs.Start(ctx, "build/transform")
	variants := make([]*Variant, len(schemeOrder))
	errs := make([]error, len(schemeOrder))
	var wg sync.WaitGroup
	for i, s := range schemeOrder {
		wg.Add(1)
		go func(i int, s Scheme) {
			defer wg.Done()
			variants[i], errs[i] = buildVariant(ctx, b.Name, mod, s, cfg, opt, cands)
		}(i, s)
	}
	wg.Wait()
	spt.End()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	art := &artifacts{
		kernel:       kernel,
		candidates:   cands,
		regionBlocks: map[int]map[int]bool{},
		regionFuncs:  map[int]bool{},
		variants:     map[Scheme]*Variant{},
	}
	for i, s := range schemeOrder {
		art.variants[s] = variants[i]
	}
	for _, c := range cands {
		rb := art.regionBlocks[c.Func]
		if rb == nil {
			rb = map[int]bool{}
			art.regionBlocks[c.Func] = rb
		}
		rb[c.Header] = true
		rb[c.Latch] = true
		for blk := range c.Region {
			rb[blk] = true
		}
	}
	art.regionOwner = map[int]int{}
	for _, li := range art.variants[RSkip].Mod.Loops {
		art.regionFuncs[li.RecomputeFn] = true
		art.regionOwner[li.RecomputeFn] = li.Func
	}
	return art, nil
}

// buildVariant runs one scheme's pass pipeline over a clone of the
// base module and pre-decodes the result. Candidates already detected
// on the base module are seeded into the clone's analysis manager —
// a clone shares block and register indexes with its source, so the
// RSkip fixpoint's first iteration reuses them instead of rescanning.
func buildVariant(ctx context.Context, name string, base *ir.Module, s Scheme,
	cfg Config, opt analysis.Options, cands []analysis.Candidate) (*Variant, error) {

	ctx, sp := obs.Start(ctx, "build/variant")
	sp.SetAttr("scheme", s.String())
	defer sp.End()

	passes, err := pass.SchemePipeline(s.pipelineName(), schemeExtras(s, cfg)...)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", name, err)
	}
	m := base
	if s != Unsafe {
		m = base.Clone()
	}
	am := analysis.NewManager(m)
	am.SeedCandidates(opt, cands)
	pm := &pass.Manager{Passes: passes, VerifyEach: true}
	if err := pm.RunWith(ctx, m, opt, am); err != nil {
		return nil, fmt.Errorf("core: %s pipeline for %s: %w", s, name, err)
	}
	st := am.Stats()
	mm := obs.From(ctx).M()
	mm.Counter("core_analysis_cache_hits_total", "analysis-manager cache hits during builds").Add(st.Hits)
	mm.Counter("core_analysis_cache_misses_total", "analysis-manager cache misses during builds").Add(st.Misses)
	return &Variant{Mod: m, Code: machine.CompileCode(m)}, nil
}

// Code returns the pre-decoded form of a scheme's module variant,
// compiled at Build time.
func (p *Program) Code(s Scheme) *machine.Code {
	if v, ok := p.variants[s]; ok {
		return v.Code
	}
	return p.variants[Unsafe].Code
}

// Module returns the IR variant for a scheme; unknown schemes fall
// back to the unprotected module.
func (p *Program) Module(s Scheme) *ir.Module {
	if v, ok := p.variants[s]; ok {
		return v.Mod
	}
	return p.variants[Unsafe].Mod
}

// Train runs the offline training phase over the given training
// seeds. When the program carries an observability handle (built via
// BuildContext or attached with Observe), the phase is traced as
// core/train with per-instance and per-loop child spans.
func (p *Program) Train(seeds []int64, scale bench.Scale) error {
	ctx := obs.Into(context.Background(), p.obs)
	ctx, sp := obs.Start(ctx, "core/train")
	sp.SetAttr("bench", p.Bench.Name)
	sp.SetAttr("seeds", len(seeds))
	defer sp.End()
	var setups []func(mem *machine.Memory) []uint64
	for _, s := range seeds {
		inst := p.Bench.Gen(s, scale)
		setups = append(setups, inst.Setup)
	}
	tr, err := train.RunContext(ctx, p.Module(RSkip), p.Kernel, setups, train.Config{
		AR:          p.Cfg.AR,
		Window:      p.Cfg.Window,
		MemoBits:    p.Cfg.MemoBits,
		MemoUniform: p.Cfg.MemoUniform,
	})
	if err != nil {
		return err
	}
	p.Trained = tr
	return nil
}

// SaveProfile persists the trained deployment profile (QoS model and
// memo tables) as JSON.
func (p *Program) SaveProfile(path string) error {
	if p.Trained == nil {
		return fmt.Errorf("core: %s has no trained profile to save", p.Bench.Name)
	}
	return p.Trained.SaveFile(path)
}

// LoadProfile replaces the trained deployment profile with one read
// from disk, skipping re-training.
func (p *Program) LoadProfile(path string) error {
	tr, err := train.LoadFile(path)
	if err != nil {
		return err
	}
	p.Trained = tr
	return nil
}

// RunOpts tune one execution.
type RunOpts struct {
	Fault     *machine.FaultPlan
	MaxInstrs uint64
	// Cancel, when non-nil, stops the execution with a
	// *machine.CancelError once the channel closes — pass a
	// context.Done() to bound a run by wall-clock time or cancel a
	// whole campaign.
	Cancel <-chan struct{}
	// Trace/TraceLimit dump executed instructions (debugging).
	Trace      io.Writer
	TraceLimit uint64
	// Reference runs the seed per-instruction interpreter instead of
	// the pre-decoded fast path; used by the golden-counters
	// differential test and speedup benchmarks. It overrides Backend.
	Reference bool
	// Backend selects the execution engine for this run; the zero
	// value (BackendAuto) falls back to the program's Config.Backend,
	// and that falling back to the fast interpreter.
	Backend machine.Backend
	// RegionTrace, when non-nil, records the owner/class layout of the
	// in-region instruction stream. Tracing lives in the reference
	// interpreter, so setting it forces Reference for this run; since
	// all backends count regions bit-identically, the recorded layout
	// holds for every backend.
	RegionTrace *machine.RegionTrace
}

// Outcome reports one execution.
type Outcome struct {
	Result machine.RunResult
	Output []uint64
	// Stats holds per-loop run-time management statistics (RSkip runs
	// only).
	Stats map[int]*rtm.LoopStats
	// Err is the abnormal-termination error, if any (Segfault, Trap,
	// Hang, Detect).
	Err error
	// FaultFired reports whether an armed fault was actually injected.
	FaultFired bool
	// FaultTag is the protection tag of the instruction (or register)
	// the fault hit.
	FaultTag ir.InstrTag
	// FaultOp is that instruction's opcode.
	FaultOp ir.Op
	// FaultInValueSlice reports whether the fault landed in
	// prediction-covered code: a TagValue site or an unprotected
	// value-slice callee.
	FaultInValueSlice bool
}

// SkipRate aggregates the skip rate over all PP loops of the run.
func (o *Outcome) SkipRate() float64 {
	tot, skip := 0, 0
	for _, s := range o.Stats {
		tot += s.Observed
		skip += s.SkippedDI + s.SkippedAM
	}
	if tot == 0 {
		return 0
	}
	return float64(skip) / float64(tot)
}

// DISkipRate aggregates the first-level predictor's skip contribution.
func (o *Outcome) DISkipRate() float64 {
	tot, skip := 0, 0
	for _, s := range o.Stats {
		tot += s.Observed
		skip += s.SkippedDI
	}
	if tot == 0 {
		return 0
	}
	return float64(skip) / float64(tot)
}

// machineConfig assembles the machine configuration (and, for RSkip,
// the per-run rtm manager) for one execution of scheme s.
func (p *Program) machineConfig(s Scheme, mod *ir.Module, opts RunOpts) (machine.Config, *rtm.Manager) {
	backend := opts.Backend
	if backend == machine.BackendAuto {
		backend = p.Cfg.Backend
	}
	mcfg := machine.Config{
		MaxInstrs:    opts.MaxInstrs,
		Fault:        opts.Fault,
		Cancel:       opts.Cancel,
		RegionBlocks: p.RegionBlocks,
		IssueWidth:   p.Cfg.IssueWidth,
		TraceFn:      -1,
		Code:         p.Code(s),
		Backend:      backend,
		Reference:    opts.Reference,
		Metrics:      p.obs.M(),
	}
	if opts.RegionTrace != nil {
		mcfg.RegionTrace = opts.RegionTrace
		mcfg.Reference = true
		mcfg.RegionOwner = p.RegionOwner
	}
	if opts.Trace != nil && opts.TraceLimit > 0 {
		mcfg.Trace = opts.Trace
		mcfg.TraceLimit = opts.TraceLimit
	}
	var mgr *rtm.Manager
	if s == RSkip {
		mcfg.RegionFuncs = p.RegionFuncs
		rcfg := rtm.DefaultConfig(p.Cfg.AR)
		rcfg.Window = p.Cfg.Window
		if rcfg.Window == 0 {
			rcfg.Window = 32
		}
		rcfg.DisableMemo = p.Cfg.DisableMemo
		rcfg.DisableDI = p.Cfg.DisableDI
		rcfg.FixedStride = p.Cfg.FixedStride
		if p.Cfg.ForceCP {
			rcfg.ForceCP = map[int]bool{}
			for _, li := range mod.Loops {
				rcfg.ForceCP[li.ID] = true
			}
		}
		if p.Trained != nil {
			rcfg.QoS = p.Trained.QoS
			rcfg.Memo = p.Trained.Memo
		}
		mgr = rtm.NewManager(mod, rcfg)
		mcfg = mgr.MachineConfig(mcfg)
	}
	return mcfg, mgr
}

// runOn executes one instance on an already-configured machine and
// assembles the outcome. Shared by Run (one machine per call) and
// Injector.Run (one pooled machine across many replicas).
func (p *Program) runOn(m *machine.Machine, mod *ir.Module, mgr *rtm.Manager, inst bench.Instance) Outcome {
	args := inst.Setup(m.Mem)
	res, err := m.Run(p.Kernel, args)
	out := Outcome{Result: res, Err: err, FaultFired: m.FaultFired()}
	var faultFn int
	out.FaultTag, out.FaultOp, faultFn = m.FaultSite()
	if out.FaultFired {
		out.FaultInValueSlice = out.FaultTag == ir.TagValue ||
			(faultFn >= 0 && faultFn < len(mod.Funcs) && mod.Funcs[faultFn].Internal)
	}
	if mgr != nil {
		out.Stats = mgr.Stats
		if p.met != nil {
			p.feedRTM(out.Stats)
		}
	}
	if err == nil {
		out.Output = inst.Output(m.Mem)
	}
	return out
}

// Run executes one instance under the scheme. The returned outcome
// always carries counters, even for abnormal terminations.
func (p *Program) Run(s Scheme, inst bench.Instance, opts RunOpts) Outcome {
	mod := p.Module(s)
	mcfg, mgr := p.machineConfig(s, mod, opts)
	m := machine.New(mod, mcfg)
	defer m.Release()
	return p.runOn(m, mod, mgr, inst)
}

// Injector executes many runs of one scheme through a single pooled
// machine: the decoded (and, under the compiled backend, closure-
// threaded) code object, the memory arena and the frame register
// slabs are all reused across replicas via machine.Reset, so a fault
// campaign pays construction cost once per worker instead of once per
// injection. Results are bit-identical to calling Run per replica —
// the replica-equality test in core proves it.
//
// An Injector is single-goroutine (campaign workers own one each);
// Close releases the pooled arena.
type Injector struct {
	p   *Program
	s   Scheme
	mod *ir.Module
	m   *machine.Machine
}

// NewInjector returns a pooled runner for one scheme's replicas.
func (p *Program) NewInjector(s Scheme) *Injector {
	return &Injector{p: p, s: s, mod: p.Module(s)}
}

// Run executes one replica, reusing the pooled machine. Every RunOpts
// field is honored per call except that opts.Reference and
// opts.Backend must not change between calls (the engine is fixed at
// the first Run; a changed engine needs a fresh Injector).
func (in *Injector) Run(inst bench.Instance, opts RunOpts) Outcome {
	mcfg, mgr := in.p.machineConfig(in.s, in.mod, opts)
	if in.m == nil {
		in.m = machine.New(in.mod, mcfg)
	} else {
		in.m.Reset(mcfg)
	}
	return in.p.runOn(in.m, in.mod, mgr, inst)
}

// Discard drops the pooled machine without releasing its arena back
// to the pool — the contained-panic path, where per-run state may be
// arbitrarily corrupt. The next Run builds a fresh machine.
func (in *Injector) Discard() { in.m = nil }

// Close releases the pooled machine's arena. The Injector must not be
// used afterwards.
func (in *Injector) Close() {
	if in.m != nil {
		in.m.Release()
		in.m = nil
	}
}

// feedRTM folds one RSkip run's loop statistics into the prediction
// counters and refreshes the cumulative mispredict-rate gauge.
func (p *Program) feedRTM(stats map[int]*rtm.LoopStats) {
	for _, st := range stats {
		p.met.observed.Add(uint64(st.Observed))
		p.met.skippedDI.Add(uint64(st.SkippedDI))
		p.met.skippedAM.Add(uint64(st.SkippedAM))
		p.met.recomputed.Add(uint64(st.Recomputed))
		p.met.mispredicted.Add(uint64(st.Mispredicted))
		p.met.detected.Add(uint64(st.Detected))
		p.met.recovered.Add(uint64(st.Recovered))
	}
	if obsTotal := p.met.observed.Value(); obsTotal > 0 {
		p.met.mispredictRate.Set(float64(p.met.mispredicted.Value()) / float64(obsTotal))
	}
}

// Golden runs the unprotected module without faults and returns the
// reference output.
func (p *Program) Golden(inst bench.Instance) ([]uint64, machine.RunResult, error) {
	o := p.Run(Unsafe, inst, RunOpts{})
	return o.Output, o.Result, o.Err
}
