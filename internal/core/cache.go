package core

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"rskip/internal/analysis"
	"rskip/internal/bench"
	"rskip/internal/ir"
	"rskip/internal/machine"
	"rskip/internal/pass"
)

// The build cache. Fault campaigns, the experiment figures and the
// benchmark harness all build the same benchmark × config variants
// over and over; compilation is pure, so the result can be computed
// once and shared. Entries are content-addressed — keyed by the
// sha256 of the MiniC source plus every build-affecting config field
// and the resolved pass pipelines — so two benchmarks that happen to
// share a name never collide, and a registry change invalidates
// naturally.
//
// Cached artifacts are safe to share between Programs and goroutines
// because everything a build produces is immutable afterwards:
// modules are never mutated post-build, machine.Code is read-only by
// construction, and the candidate/region tables are only read at Run
// time. Mutable per-use state (training results, telemetry handles)
// lives on the Program, not in the cache.

// Variant is one scheme's compiled form: the transformed module and
// its pre-decoded machine code.
type Variant struct {
	Mod  *ir.Module
	Code *machine.Code
}

// artifacts bundles the immutable products of one build.
type artifacts struct {
	kernel       int
	candidates   []analysis.Candidate
	regionBlocks map[int]map[int]bool
	regionFuncs  map[int]bool
	variants     map[Scheme]*Variant
}

// buildCacheCap bounds the in-process cache: the full experiment
// suite touches 9 benchmarks × a handful of configs, so 64 entries
// hold everything with room for property-test churn.
const buildCacheCap = 64

type buildCacheState struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used; values *cacheEntry
}

type cacheEntry struct {
	key string
	art *artifacts
}

var (
	buildCache = &buildCacheState{
		entries: map[string]*list.Element{},
		order:   list.New(),
	}
	buildCacheHits   atomic.Uint64
	buildCacheMisses atomic.Uint64
)

// buildCacheKey content-addresses one build.
func buildCacheKey(b bench.Benchmark, cfg Config) string {
	src := sha256.Sum256([]byte(b.Source))
	var sigs []string
	for _, s := range schemeOrder {
		sigs = append(sigs, pass.PipelineSignature(s.pipelineName(), schemeExtras(s, cfg)...))
	}
	return fmt.Sprintf("%x|%s|%s|%s|%s",
		src, b.Name, b.Kernel, cfg.Key(), strings.Join(sigs, ";"))
}

func (c *buildCacheState) get(key string) (*artifacts, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		buildCacheMisses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	buildCacheHits.Add(1)
	return el.Value.(*cacheEntry).art, true
}

func (c *buildCacheState) put(key string, art *artifacts) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A concurrent build of the same key won the race; keep the
		// existing entry so every caller shares one artifact set.
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, art: art})
	for c.order.Len() > buildCacheCap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

func (c *buildCacheState) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*list.Element{}
	c.order = list.New()
}

func (c *buildCacheState) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// BuildCacheStats reports the process-lifetime hit/miss counts and
// the current entry count of the build cache.
func BuildCacheStats() (hits, misses uint64, entries int) {
	return buildCacheHits.Load(), buildCacheMisses.Load(), buildCache.len()
}

// ResetBuildCache empties the build cache (benchmarks use it to
// measure cold builds). The hit/miss counters are left running.
func ResetBuildCache() { buildCache.reset() }
