package core

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"rskip/internal/analysis"
	"rskip/internal/bench"
	"rskip/internal/ir"
	"rskip/internal/machine"
	"rskip/internal/pass"
)

// The build cache. Fault campaigns, the experiment figures and the
// benchmark harness all build the same benchmark × config variants
// over and over; compilation is pure, so the result can be computed
// once and shared. Entries are content-addressed — keyed by the
// sha256 of the MiniC source plus every build-affecting config field
// and the resolved pass pipelines — so two benchmarks that happen to
// share a name never collide, and a registry change invalidates
// naturally.
//
// Cached artifacts are safe to share between Programs and goroutines
// because everything a build produces is immutable afterwards:
// modules are never mutated post-build, machine.Code is read-only by
// construction, and the candidate/region tables are only read at Run
// time. Mutable per-use state (training results, telemetry handles)
// lives on the Program, not in the cache.

// Variant is one scheme's compiled form: the transformed module and
// its pre-decoded machine code.
type Variant struct {
	Mod  *ir.Module
	Code *machine.Code
}

// artifacts bundles the immutable products of one build.
type artifacts struct {
	kernel       int
	candidates   []analysis.Candidate
	regionBlocks map[int]map[int]bool
	regionFuncs  map[int]bool
	regionOwner  map[int]int
	variants     map[Scheme]*Variant
}

// buildCacheCap bounds the in-process cache: the full experiment
// suite touches 9 benchmarks × a handful of configs, so 64 entries
// hold everything with room for property-test churn.
const buildCacheCap = 64

type buildCacheState struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used; values *cacheEntry
	// inflight tracks builds currently compiling, keyed like entries.
	// Concurrent requests for an identical build wait on the leader's
	// done channel instead of duplicating the work (singleflight).
	inflight map[string]*inflightBuild
}

type cacheEntry struct {
	key string
	art *artifacts
}

// inflightBuild is one in-progress compilation other callers can wait
// on. art and err are written exactly once, before done is closed.
type inflightBuild struct {
	done chan struct{}
	art  *artifacts
	err  error
}

var (
	buildCache = &buildCacheState{
		entries:  map[string]*list.Element{},
		order:    list.New(),
		inflight: map[string]*inflightBuild{},
	}
	buildCacheHits   atomic.Uint64
	buildCacheMisses atomic.Uint64
)

// buildCacheKey content-addresses one build.
func buildCacheKey(b bench.Benchmark, cfg Config) string {
	src := sha256.Sum256([]byte(b.Source))
	var sigs []string
	for _, s := range schemeOrder {
		sigs = append(sigs, pass.PipelineSignature(s.pipelineName(), schemeExtras(s, cfg)...))
	}
	return fmt.Sprintf("%x|%s|%s|%s|%s",
		src, b.Name, b.Kernel, cfg.Key(), strings.Join(sigs, ";"))
}

// getOrBuild returns the artifacts for key, compiling them with build
// on a miss. Identical concurrent misses are coalesced: the first
// caller becomes the leader and builds; the rest wait on its result
// (cached=true for them — they did not pay for a build). If the
// leader fails, each waiter retries, so a transient leader failure
// (e.g. its context was cancelled mid-build) never poisons other
// callers; a deterministic failure surfaces to everyone, at worst one
// sequential build per waiter — the pre-singleflight cost.
func (c *buildCacheState) getOrBuild(key string, build func() (*artifacts, error)) (art *artifacts, cached bool, err error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.order.MoveToFront(el)
			c.mu.Unlock()
			buildCacheHits.Add(1)
			return el.Value.(*cacheEntry).art, true, nil
		}
		if fl, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			<-fl.done
			if fl.err != nil {
				continue
			}
			buildCacheHits.Add(1)
			return fl.art, true, nil
		}
		fl := &inflightBuild{done: make(chan struct{})}
		c.inflight[key] = fl
		c.mu.Unlock()
		buildCacheMisses.Add(1)

		fl.art, fl.err = build()
		c.mu.Lock()
		delete(c.inflight, key)
		if fl.err == nil {
			c.putLocked(key, fl.art)
		}
		c.mu.Unlock()
		close(fl.done)
		return fl.art, false, fl.err
	}
}

// putLocked inserts an entry; the caller holds c.mu.
func (c *buildCacheState) putLocked(key string, art *artifacts) {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, art: art})
	for c.order.Len() > buildCacheCap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

func (c *buildCacheState) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*list.Element{}
	c.order = list.New()
}

func (c *buildCacheState) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// BuildCacheStats reports the process-lifetime hit/miss counts and
// the current entry count of the build cache. A miss means this
// process compiled from source; callers coalesced onto another
// caller's identical in-flight build count as hits, so concurrent
// identical builds report exactly one miss.
func BuildCacheStats() (hits, misses uint64, entries int) {
	return buildCacheHits.Load(), buildCacheMisses.Load(), buildCache.len()
}

// ResetBuildCache empties the build cache (benchmarks use it to
// measure cold builds). The hit/miss counters are left running.
func ResetBuildCache() { buildCache.reset() }
