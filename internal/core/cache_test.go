package core

import (
	"fmt"
	"sync"
	"testing"

	"rskip/internal/bench"
)

// tinyBench wraps a parameterized kernel so cache tests can mint
// arbitrarily many distinct sources (and identically named ones).
func tinyBench(name string, k int) bench.Benchmark {
	src := fmt.Sprintf(`
void kernel(int a[], int out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		int acc = 0;
		for (int j = 0; j < 4; j = j + 1) {
			acc = acc + a[i + j] * %d;
		}
		out[i] = acc;
	}
}
`, k)
	return bench.Benchmark{Name: name, Kernel: "kernel", Source: src}
}

func TestBuildCacheHitSharesArtifacts(t *testing.T) {
	ResetBuildCache()
	b := tinyBench("cachehit", 3)
	p1, err := Build(b, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hits0, _, _ := BuildCacheStats()
	p2, err := Build(b, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hits1, _, entries := BuildCacheStats()
	if hits1 != hits0+1 {
		t.Errorf("second identical build did not hit the cache (hits %d -> %d)", hits0, hits1)
	}
	if entries != 1 {
		t.Errorf("cache holds %d entries, want 1", entries)
	}
	for _, s := range schemeOrder {
		if p1.Module(s) != p2.Module(s) {
			t.Errorf("%s modules not shared across cache hit", s)
		}
		if p1.Code(s) != p2.Code(s) {
			t.Errorf("%s codes not shared across cache hit", s)
		}
	}
	// Mutable per-use state must NOT be shared: the cache returns
	// fresh Programs around shared artifacts.
	if p1 == p2 {
		t.Error("cache returned the same Program value, not a fresh wrapper")
	}
}

func TestBuildCacheIsContentAddressed(t *testing.T) {
	ResetBuildCache()
	// Same name, different source: must not collide.
	p1, err := Build(tinyBench("samename", 3), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Build(tinyBench("samename", 5), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p1.Module(Unsafe) == p2.Module(Unsafe) {
		t.Error("different sources under one name shared an artifact")
	}
	// Same source, different build config: must not collide.
	cfc := DefaultConfig()
	cfc.EnableCFC = true
	p3, err := Build(tinyBench("samename", 3), cfc)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Module(SWIFT) == p3.Module(SWIFT) {
		t.Error("different configs shared an artifact")
	}
	if _, _, entries := BuildCacheStats(); entries != 3 {
		t.Errorf("cache holds %d entries, want 3", entries)
	}
}

// TestBuildCacheSingleflight is the regression test for the
// duplicate-build window: concurrent identical misses must coalesce
// onto one compilation (one cache miss), with every caller sharing the
// leader's artifacts.
func TestBuildCacheSingleflight(t *testing.T) {
	ResetBuildCache()
	b := tinyBench("singleflight", 7)
	hits0, miss0, _ := BuildCacheStats()

	const callers = 16
	start := make(chan struct{})
	progs := make([]*Program, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			progs[i], errs[i] = Build(b, DefaultConfig())
		}(i)
	}
	close(start)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	hits1, miss1, entries := BuildCacheStats()
	if miss1-miss0 != 1 {
		t.Errorf("%d concurrent identical builds compiled %d times, want 1", callers, miss1-miss0)
	}
	if hits1-hits0 != callers-1 {
		t.Errorf("hits %d, want %d (every non-leader coalesces or hits)", hits1-hits0, callers-1)
	}
	if entries != 1 {
		t.Errorf("cache holds %d entries, want 1", entries)
	}
	for i := 1; i < callers; i++ {
		if progs[i].Module(Unsafe) != progs[0].Module(Unsafe) {
			t.Fatalf("caller %d did not share the leader's artifacts", i)
		}
	}
}

// A failing leader must not poison concurrent waiters into deadlock or
// a cached error: every caller gets the (deterministic) build error.
func TestBuildCacheSingleflightError(t *testing.T) {
	ResetBuildCache()
	b := tinyBench("sferror", 3)
	b.Kernel = "nope" // buildArtifacts fails after compile

	const callers = 8
	start := make(chan struct{})
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, errs[i] = Build(b, DefaultConfig())
		}(i)
	}
	close(start)
	wg.Wait()

	for i, err := range errs {
		if err == nil {
			t.Fatalf("caller %d: want kernel-missing error, got nil", i)
		}
	}
	if _, _, entries := BuildCacheStats(); entries != 0 {
		t.Errorf("failed build left %d cache entries, want 0", entries)
	}
}

func TestBuildCacheEviction(t *testing.T) {
	ResetBuildCache()
	for i := 0; i < buildCacheCap+8; i++ {
		if _, err := Build(tinyBench(fmt.Sprintf("evict%03d", i), i+2), DefaultConfig()); err != nil {
			t.Fatal(err)
		}
	}
	_, _, entries := BuildCacheStats()
	if entries != buildCacheCap {
		t.Errorf("cache holds %d entries, want the %d-entry cap", entries, buildCacheCap)
	}
	// The oldest entry was evicted: rebuilding it must miss.
	_, miss0, _ := BuildCacheStats()
	if _, err := Build(tinyBench("evict000", 2), DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, miss1, _ := BuildCacheStats(); miss1 != miss0+1 {
		t.Error("evicted entry was served from the cache")
	}
	// The most recent entry is still resident.
	hits0, _, _ := BuildCacheStats()
	last := fmt.Sprintf("evict%03d", buildCacheCap+7)
	if _, err := Build(tinyBench(last, buildCacheCap+9), DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if hits1, _, _ := BuildCacheStats(); hits1 != hits0+1 {
		t.Error("resident entry missed the cache")
	}
}
