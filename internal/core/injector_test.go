package core

import (
	"testing"

	"rskip/internal/bench"
	"rskip/internal/machine"
)

// TestInjectorReplicaEquality is the proof promised by the Injector
// doc: running many replicas through one pooled machine (shared
// decode, arena and register slabs reused via Reset) is bit-identical
// to constructing a fresh machine per replica. The plan sweep mixes
// clean runs, error-producing strikes and multi-instruction bursts so
// Reset is exercised after both normal and abnormal termination.
func TestInjectorReplicaEquality(t *testing.T) {
	b, err := bench.ByName("conv1d")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(b, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train([]int64{bench.TrainSeed(0)}, bench.ScaleTiny); err != nil {
		t.Fatal(err)
	}
	inst := b.Gen(bench.TestSeed(1), bench.ScaleTiny)
	_, gres, err := p.Golden(inst)
	if err != nil {
		t.Fatal(err)
	}
	budget := 3 * gres.Instrs

	plans := []*machine.FaultPlan{
		nil, // clean replica between injections
		{Kind: machine.FaultResultBit, Target: 5, Bit: 3},
		{Kind: machine.FaultSourceBit, Target: gres.Region / 3, Bit: 31, Pick: 1},
		{Kind: machine.FaultOpcode, Target: gres.Region / 2, Bit: 7},
		{Kind: machine.FaultRegFile, Target: gres.Region / 4, Bit: 12, Pick: 3},
		{Kind: machine.FaultSkip, Target: 9, Width: 3},
		{Kind: machine.FaultMultiBit, Target: gres.Region - 1, Bit: 31, Width: 2},
		nil,
		{Kind: machine.FaultResultBit, Target: 5, Bit: 3}, // repeat: same plan, later replica
	}

	for _, be := range []machine.Backend{machine.BackendFast, machine.BackendCompiled} {
		for _, s := range []Scheme{Unsafe, RSkip} {
			inj := p.NewInjector(s)
			for i, plan := range plans {
				opts := RunOpts{Fault: plan, MaxInstrs: budget, Backend: be}
				fresh := p.Run(s, inst, opts)
				pooled := inj.Run(inst, opts)
				ctx := func() string {
					return s.String() + "/" + be.String()
				}
				if (fresh.Err == nil) != (pooled.Err == nil) ||
					(fresh.Err != nil && fresh.Err.Error() != pooled.Err.Error()) {
					t.Fatalf("%s plan %d: err %v (fresh) vs %v (pooled)", ctx(), i, fresh.Err, pooled.Err)
				}
				if fresh.Result != pooled.Result {
					t.Fatalf("%s plan %d: result %+v (fresh) vs %+v (pooled)", ctx(), i, fresh.Result, pooled.Result)
				}
				if fresh.FaultFired != pooled.FaultFired ||
					fresh.FaultTag != pooled.FaultTag ||
					fresh.FaultOp != pooled.FaultOp ||
					fresh.FaultInValueSlice != pooled.FaultInValueSlice {
					t.Fatalf("%s plan %d: fault attribution diverged", ctx(), i)
				}
				if len(fresh.Output) != len(pooled.Output) {
					t.Fatalf("%s plan %d: output length %d vs %d", ctx(), i, len(fresh.Output), len(pooled.Output))
				}
				for j := range fresh.Output {
					if fresh.Output[j] != pooled.Output[j] {
						t.Fatalf("%s plan %d: output[%d] = %#x (fresh) vs %#x (pooled)",
							ctx(), i, j, fresh.Output[j], pooled.Output[j])
					}
				}
			}
			inj.Close()
		}
	}
}

// TestInjectorDiscard pins the contained-panic protocol: after
// Discard, the next Run builds a fresh machine and still produces
// results identical to a fresh-machine run.
func TestInjectorDiscard(t *testing.T) {
	b, err := bench.ByName("blackscholes")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(b, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train([]int64{bench.TrainSeed(0)}, bench.ScaleTiny); err != nil {
		t.Fatal(err)
	}
	inst := b.Gen(bench.TestSeed(2), bench.ScaleTiny)

	inj := p.NewInjector(Unsafe)
	defer inj.Close()
	first := inj.Run(inst, RunOpts{})
	inj.Discard()
	second := inj.Run(inst, RunOpts{})
	fresh := p.Run(Unsafe, inst, RunOpts{})
	if first.Result != fresh.Result || second.Result != fresh.Result {
		t.Fatalf("post-discard results diverged: %+v / %+v / fresh %+v",
			first.Result, second.Result, fresh.Result)
	}
}
