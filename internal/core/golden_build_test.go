package core_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"rskip/internal/bench"
	"rskip/internal/core"
)

// The differential build test: the pass-manager pipeline must emit,
// for every benchmark × scheme × build-affecting config knob, modules
// and pre-decoded code tables bit-identical to the monolithic seed
// builder. The golden hashes in testdata/build_golden.json were
// generated from the pre-refactor builder (go test -run TestGoldenBuild
// -update at the seed commit); any refactor of the compile stack must
// reproduce them exactly.

var updateGolden = flag.Bool("update", false, "rewrite testdata/build_golden.json from the current builder")

const goldenPath = "testdata/build_golden.json"

// goldenEntry records one build variant: the sha256 of the module's
// .rir serialization and the machine.Code fingerprint.
type goldenEntry struct {
	RIR  string `json:"rir"`
	Code string `json:"code"`
}

// goldenConfigs is the build-affecting knob matrix from the issue:
// acceptable range, CFC, predictor ablations, forced conventional
// protection. Keys must stay stable — they are part of the golden map.
func goldenConfigs() []struct {
	Name string
	Cfg  core.Config
} {
	ar := func(v float64) core.Config { c := core.DefaultConfig(); c.AR = v; return c }
	with := func(mut func(*core.Config)) core.Config {
		c := core.DefaultConfig()
		mut(&c)
		return c
	}
	return []struct {
		Name string
		Cfg  core.Config
	}{
		{"default", core.DefaultConfig()},
		{"ar100", ar(1.0)},
		{"cfc", with(func(c *core.Config) { c.EnableCFC = true })},
		{"nomemo", with(func(c *core.Config) { c.DisableMemo = true })},
		{"nodi", with(func(c *core.Config) { c.DisableDI = true })},
		{"forcecp", with(func(c *core.Config) { c.ForceCP = true })},
	}
}

func buildGoldenMap(t *testing.T) (map[string]goldenEntry, time.Duration) {
	t.Helper()
	got := map[string]goldenEntry{}
	var buildTime time.Duration
	for _, cc := range goldenConfigs() {
		for _, b := range bench.All() {
			start := time.Now()
			p, err := core.Build(b, cc.Cfg)
			buildTime += time.Since(start)
			if err != nil {
				t.Fatalf("build %s/%s: %v", b.Name, cc.Name, err)
			}
			for _, s := range []core.Scheme{core.Unsafe, core.SWIFT, core.SWIFTR, core.RSkip, core.SWIFTRHard} {
				var rir bytes.Buffer
				if err := p.Module(s).MarshalText(&rir); err != nil {
					t.Fatalf("marshal %s/%s/%s: %v", b.Name, cc.Name, s, err)
				}
				key := fmt.Sprintf("%s|%s|%s", b.Name, cc.Name, s)
				got[key] = goldenEntry{
					RIR:  fmt.Sprintf("%x", sha256.Sum256(rir.Bytes())),
					Code: p.Code(s).Fingerprint(),
				}
			}
		}
	}
	return got, buildTime
}

func TestGoldenBuild(t *testing.T) {
	got, buildTime := buildGoldenMap(t)
	nBuilds := len(goldenConfigs()) * len(bench.All())
	t.Logf("built %d programs in %v (%.1fms avg)", nBuilds, buildTime,
		float64(buildTime.Milliseconds())/float64(nBuilds))

	if *updateGolden {
		var keys []string
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]goldenEntry, len(got))
		for _, k := range keys {
			ordered[k] = got[k]
		}
		data, err := json.MarshalIndent(ordered, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d entries to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update at a known-good commit): %v", err)
	}
	var want map[string]goldenEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}
	if len(want) != len(got) {
		t.Errorf("golden has %d entries, current build produced %d", len(want), len(got))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: missing from current build", key)
			continue
		}
		if g.RIR != w.RIR {
			t.Errorf("%s: .rir hash diverged from seed builder\n  want %s\n  got  %s", key, w.RIR, g.RIR)
		}
		if g.Code != w.Code {
			t.Errorf("%s: machine code fingerprint diverged from seed builder\n  want %s\n  got  %s", key, w.Code, g.Code)
		}
	}
}
