// Package rtm is RSkip's run-time management system: it services the
// machine's prediction-protection hooks, drives dynamic interpolation
// and approximate memoization, performs fuzzy validation against the
// acceptable range, triggers re-computation and recovery for suspected
// faults, and adapts the tuning parameter from context signatures
// using the QoS model built during offline training.
package rtm

import (
	"sort"
	"strings"
)

// SigThresholds bound the slope-change histogram bins a context
// signature summarizes: "flat trend", "gentle", "bumpy", "chaotic".
var SigThresholds = []float64{0.05, 0.25, 1.0}

// NumSigBins is the histogram size (len(SigThresholds)+1).
const NumSigBins = 4

// Signature summarizes recent slope changes into a context signature:
// the histogram bins listed most-populated first, e.g. "3120". The
// paper's example "312" encodes exactly this ranking.
func Signature(changes []float64) string {
	var counts [NumSigBins]int
	for _, c := range changes {
		counts[sigBin(c)]++
	}
	order := []int{0, 1, 2, 3}
	sort.SliceStable(order, func(i, j int) bool {
		return counts[order[i]] > counts[order[j]]
	})
	var sb strings.Builder
	for _, b := range order {
		sb.WriteByte(byte('0' + b))
	}
	return sb.String()
}

func sigBin(c float64) int {
	for i, t := range SigThresholds {
		if c <= t {
			return i
		}
	}
	return NumSigBins - 1
}

// QoSModel maps context signatures to the best tuning parameter the
// trainer found; Default covers unseen signatures.
type QoSModel struct {
	Default float64
	BySig   map[string]float64
}

// TPFor returns the tuning parameter for a signature.
func (q *QoSModel) TPFor(sig string) float64 {
	if q == nil {
		return 0
	}
	if tp, ok := q.BySig[sig]; ok {
		return tp
	}
	return q.Default
}
