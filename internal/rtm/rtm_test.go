package rtm

import (
	"math"
	"strings"
	"testing"

	"rskip/internal/analysis"
	"rskip/internal/ir"
	"rskip/internal/lower"
	"rskip/internal/machine"
	"rskip/internal/transform"
)

func TestSignature(t *testing.T) {
	// All changes tiny: bin 0 dominates.
	sig := Signature([]float64{0.01, 0.02, 0.03, 0.0})
	if !strings.HasPrefix(sig, "0") {
		t.Errorf("flat changes signature = %q, want leading 0", sig)
	}
	// All chaotic: bin 3 dominates.
	sig = Signature([]float64{5, 9, 2, 100})
	if !strings.HasPrefix(sig, "3") {
		t.Errorf("chaotic signature = %q, want leading 3", sig)
	}
	if len(sig) != NumSigBins {
		t.Errorf("signature length %d, want %d", len(sig), NumSigBins)
	}
	// Deterministic.
	if Signature([]float64{0.1, 0.5}) != Signature([]float64{0.1, 0.5}) {
		t.Error("signature not deterministic")
	}
	// Empty input is stable.
	if got := Signature(nil); len(got) != NumSigBins {
		t.Errorf("empty signature %q", got)
	}
}

func TestQoSModel(t *testing.T) {
	q := &QoSModel{Default: 0.25, BySig: map[string]float64{"0123": 1.5}}
	if q.TPFor("0123") != 1.5 {
		t.Error("known signature ignored")
	}
	if q.TPFor("3210") != 0.25 {
		t.Error("unknown signature should fall back to default")
	}
	var nilQ *QoSModel
	if nilQ.TPFor("x") != 0 {
		t.Error("nil model should return 0")
	}
}

// buildPP compiles a kernel and returns its PP module + kernel index.
func buildPP(t *testing.T, src string) (*ir.Module, int) {
	t.Helper()
	mod, err := lower.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	rsk, err := transform.ApplyRSkip(mod, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rsk.Loops) == 0 {
		t.Fatal("no PP loops")
	}
	return rsk, rsk.FuncByName("kernel")
}

const rampSrc = `
void kernel(float a[], float out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		float s = 0.0;
		for (int j = 0; j < 4; j = j + 1) {
			s = s + a[i + j];
		}
		out[i] = s;
	}
}
`

// runManaged executes the PP kernel under a Manager over a linear ramp
// input (highly predictable).
func runManaged(t *testing.T, cfg Config) (*Manager, *machine.Machine, []float64) {
	t.Helper()
	rsk, fi := buildPP(t, rampSrc)
	mgr := NewManager(rsk, cfg)
	m := machine.New(rsk, mgr.MachineConfig(machine.Config{}))
	n := 64
	a := m.Mem.Alloc(int64(n + 4))
	for i := 0; i < n+4; i++ {
		m.Mem.SetFloat(a+int64(i), float64(i)) // perfect ramp
	}
	out := m.Mem.Alloc(int64(n))
	if _, err := m.Run(fi, []uint64{uint64(a), uint64(out), uint64(n)}); err != nil {
		t.Fatal(err)
	}
	return mgr, m, m.Mem.ReadFloats(out, n)
}

func TestManagerSkipsOnLinearTrend(t *testing.T) {
	mgr, _, out := runManaged(t, DefaultConfig(0.2))
	var st *LoopStats
	for _, s := range mgr.Stats {
		st = s
	}
	if st == nil || st.Observed == 0 {
		t.Fatal("nothing observed")
	}
	if st.SkipRate() < 0.8 {
		t.Errorf("linear ramp skip rate %.2f, want > 0.8", st.SkipRate())
	}
	if st.Detected != 0 {
		t.Errorf("fault-free run detected %d faults", st.Detected)
	}
	// Output must be the ramp's 4-window sums.
	for i := 0; i < len(out); i++ {
		want := float64(4*i + 6)
		if math.Abs(out[i]-want) > 1e-9 {
			t.Fatalf("out[%d] = %g, want %g", i, out[i], want)
		}
	}
}

func TestManagerCountsEveryElementOnce(t *testing.T) {
	mgr, _, out := runManaged(t, DefaultConfig(0.2))
	total := 0
	for _, s := range mgr.Stats {
		total += s.Observed
	}
	if total != len(out) {
		t.Errorf("observed %d elements, want %d", total, len(out))
	}
	for _, s := range mgr.Stats {
		accounted := s.SkippedDI + s.SkippedAM + s.SkippedFB + s.Recomputed
		if accounted != s.Observed {
			t.Errorf("element accounting: %d skipped/recomputed vs %d observed",
				accounted, s.Observed)
		}
	}
}

func TestManagerForceCPRecomputesAll(t *testing.T) {
	rsk, _ := buildPP(t, rampSrc)
	id := rsk.Loops[0].ID
	cfg := DefaultConfig(0.2)
	cfg.ForceCP = map[int]bool{id: true}
	mgr, _, _ := runManagedWith(t, rsk, cfg)
	st := mgr.Stats[id]
	if st.SkippedDI+st.SkippedAM != 0 {
		t.Error("CP mode must not skip")
	}
	if st.Recomputed != st.Observed {
		t.Errorf("CP mode recomputed %d of %d", st.Recomputed, st.Observed)
	}
	if st.Detected != 0 {
		t.Errorf("fault-free CP run detected %d", st.Detected)
	}
}

func runManagedWith(t *testing.T, rsk *ir.Module, cfg Config) (*Manager, *machine.Machine, []float64) {
	t.Helper()
	fi := rsk.FuncByName("kernel")
	mgr := NewManager(rsk, cfg)
	m := machine.New(rsk, mgr.MachineConfig(machine.Config{}))
	n := 64
	a := m.Mem.Alloc(int64(n + 4))
	for i := 0; i < n+4; i++ {
		m.Mem.SetFloat(a+int64(i), float64(i))
	}
	out := m.Mem.Alloc(int64(n))
	if _, err := m.Run(fi, []uint64{uint64(a), uint64(out), uint64(n)}); err != nil {
		t.Fatal(err)
	}
	return mgr, m, m.Mem.ReadFloats(out, n)
}

func TestManagerFixedStride(t *testing.T) {
	rsk, _ := buildPP(t, rampSrc)
	cfg := DefaultConfig(0.2)
	cfg.FixedStride = 8
	mgr, _, _ := runManagedWith(t, rsk, cfg)
	var st *LoopStats
	for _, s := range mgr.Stats {
		st = s
	}
	if st.Phases != 8 { // 64 elements / 8 per phase
		t.Errorf("fixed stride produced %d phases, want 8", st.Phases)
	}
	if st.SkipRate() == 0 {
		t.Error("fixed stride on a ramp should still skip interiors")
	}
}

func TestManagerRecoversInjectedCorruption(t *testing.T) {
	// Corrupt one stored element mid-run via a fault plan targeting the
	// value slice; the manager must detect the deviation, recompute,
	// and repair memory.
	rsk, fi := buildPP(t, rampSrc)
	mgr := NewManager(rsk, DefaultConfig(0.2))

	// Find the Target index of a value-tagged instruction: run once
	// fault-free with region marked and a probe plan far away.
	region := map[int]bool{}
	for bi := range rsk.Funcs[fi].Blocks {
		region[bi] = true
	}
	baseCfg := machine.Config{RegionBlocks: map[int]map[int]bool{fi: region}}

	recovered := false
	for target := uint64(20); target < 400 && !recovered; target += 13 {
		mgr2 := NewManager(rsk, DefaultConfig(0.2))
		cfg := mgr2.MachineConfig(baseCfg)
		cfg.Fault = &machine.FaultPlan{Kind: machine.FaultResultBit, Target: target, Bit: 61}
		m := machine.New(rsk, cfg)
		n := 64
		a := m.Mem.Alloc(int64(n + 4))
		for i := 0; i < n+4; i++ {
			m.Mem.SetFloat(a+int64(i), float64(i))
		}
		out := m.Mem.Alloc(int64(n))
		if _, err := m.Run(fi, []uint64{uint64(a), uint64(out), uint64(n)}); err != nil {
			continue
		}
		for _, st := range mgr2.Stats {
			if st.Recovered > 0 {
				recovered = true
				// Memory must hold the corrected ramp sums.
				vals := m.Mem.ReadFloats(out, n)
				for i := range vals {
					if math.Abs(vals[i]-float64(4*i+6)) > 1e-9 {
						t.Fatalf("recovery left out[%d] = %g", i, vals[i])
					}
				}
			}
		}
	}
	if !recovered {
		t.Error("no injected fault was detected and recovered")
	}
	_ = mgr
}

func TestPredictorCostsOrdering(t *testing.T) {
	di, am := PredictorCosts(6)
	if di.Instrs() == 0 || am.Instrs() <= di.Instrs() {
		t.Errorf("cost ordering wrong: di=%d am=%d", di.Instrs(), am.Instrs())
	}
	ratio := float64(am.Instrs()) / float64(di.Instrs())
	if ratio < 1.2 || ratio > 3.5 {
		t.Errorf("AM/DI cost ratio %.2f far from the paper's 1.84", ratio)
	}
}
