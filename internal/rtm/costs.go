package rtm

import "rskip/internal/machine"

// Runtime-library operation costs, charged to the machine so predictor
// overhead is visible in execution time and instruction counts. The
// constants are calibrated so blackscholes reproduces the paper's
// DI : AM : re-computation cost ratio of roughly 1 : 1.84 : 4.18
// (§2); BenchmarkCostRatio checks the calibration.

// costObserve is charged per loop iteration: read the pre-store value,
// buffer the point (value, address, iteration, pre-store word),
// compute the slope change and compare it to TP, maintain the phase
// bookkeeping.
var costObserve = machine.Cost{IntOps: 2, FpOps: 4, MemOps: 5, Branches: 3}

// costMemoSave is charged per iteration when memoization is armed for
// the loop: the call inputs are stashed for possible later lookup.
func costMemoSave(n int) machine.Cost { return machine.Cost{MemOps: n} }

// costValidate is charged per interior point at a phase cut: reload
// the buffered point, compute the linear prediction, and run the fuzzy
// comparison.
var costValidate = machine.Cost{IntOps: 2, FpOps: 6, MemOps: 1, Branches: 3}

// costMemoLookup is charged per table probe: quantize each input
// (binary search a handful of edges), form the address, load.
func costMemoLookup(n int) machine.Cost {
	return machine.Cost{IntOps: 2 * n, Branches: n, MemOps: 2 + n/2, FpOps: 2}
}

// costCutAdmin is charged once per phase cut for list management.
var costCutAdmin = machine.Cost{IntOps: 2, MemOps: 1}

// costAdjust is charged per observe/adjust cycle: build the histogram
// signature and consult the QoS table.
var costAdjust = machine.Cost{IntOps: 8, MemOps: 2, Branches: 4}

// costRecoverFix is charged when recovery rewrites a corrupted element.
var costRecoverFix = machine.Cost{MemOps: 1, Branches: 1}

// PredictorCosts reports the per-element instruction cost of a
// DI-skipped element and an AM-skipped element (which pays the failed
// first-level prediction too), for the §2 cost-ratio experiment.
func PredictorCosts(memoInputs int) (di, am machine.Cost) {
	di = costObserve.Add(costValidate)
	am = di.Add(costMemoSave(memoInputs)).Add(costMemoLookup(memoInputs))
	return di, am
}
