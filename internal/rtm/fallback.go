package rtm

import (
	"rskip/internal/machine"
	"rskip/internal/predict"
)

// FallbackPredictor is a pluggable approximation model tried after
// dynamic interpolation rejects an interior element, before the
// built-in approximate memoization and re-computation (cheapest
// first). The paper notes RSkip's "applicability can be broadened
// with new approximation technique that has a wider target" — this is
// that extension point.
//
// A fallback sees the full phase and the index of the element under
// validation; it returns a predicted value and whether it has one.
// Predictions are only ever used for validation, so an inaccurate
// fallback costs time (extra re-computation on disagreement), never
// correctness beyond the AR-bounded false-negative trade-off every
// fuzzy validation makes.
type FallbackPredictor interface {
	// Name labels the predictor in statistics.
	Name() string
	// Predict estimates phase[idx]'s value, or reports it cannot.
	Predict(loopID int, phase []predict.Point, idx int) (float64, bool)
	// Cost is charged per probe.
	Cost() machine.Cost
}

// NeighborPredictor predicts each element as its phase predecessor —
// the "trend" estimator of the paper's Figure 2 motivation study.
// Useful for step-wise data where values repeat exactly but slopes
// flip at every step (which shreds interpolation phases).
type NeighborPredictor struct{}

// Name implements FallbackPredictor.
func (NeighborPredictor) Name() string { return "neighbor" }

// Predict implements FallbackPredictor.
func (NeighborPredictor) Predict(_ int, phase []predict.Point, idx int) (float64, bool) {
	if idx <= 0 || idx >= len(phase) {
		return 0, false
	}
	return phase[idx-1].V, true
}

// Cost implements FallbackPredictor: one compare and one load.
func (NeighborPredictor) Cost() machine.Cost {
	return machine.Cost{FpOps: 1, MemOps: 1, Branches: 1}
}

// MeanPredictor predicts each element as the mean of the phase's
// endpoints — a crude whole-phase estimator that tolerates a single
// interior spike better than the chord when the phase is flat.
type MeanPredictor struct{}

// Name implements FallbackPredictor.
func (MeanPredictor) Name() string { return "mean" }

// Predict implements FallbackPredictor.
func (MeanPredictor) Predict(_ int, phase []predict.Point, idx int) (float64, bool) {
	if len(phase) < 2 || idx <= 0 || idx >= len(phase)-1 {
		return 0, false
	}
	return (phase[0].V + phase[len(phase)-1].V) / 2, true
}

// Cost implements FallbackPredictor.
func (MeanPredictor) Cost() machine.Cost {
	return machine.Cost{FpOps: 2, Branches: 1}
}
