package rtm

import (
	"testing"

	"rskip/internal/machine"
	"rskip/internal/predict"
)

func TestNeighborPredictor(t *testing.T) {
	fb := NeighborPredictor{}
	phase := []predict.Point{{V: 1}, {V: 2}, {V: 3}}
	if v, ok := fb.Predict(0, phase, 1); !ok || v != 1 {
		t.Errorf("Predict(1) = %g, %v", v, ok)
	}
	if _, ok := fb.Predict(0, phase, 0); ok {
		t.Error("first element has no neighbor")
	}
	if _, ok := fb.Predict(0, phase, 3); ok {
		t.Error("out of range must miss")
	}
	if fb.Cost().Instrs() == 0 || fb.Name() == "" {
		t.Error("metadata missing")
	}
}

func TestMeanPredictor(t *testing.T) {
	fb := MeanPredictor{}
	phase := []predict.Point{{V: 2}, {V: 100}, {V: 4}}
	if v, ok := fb.Predict(0, phase, 1); !ok || v != 3 {
		t.Errorf("Predict(1) = %g, %v", v, ok)
	}
	if _, ok := fb.Predict(0, phase, 0); ok {
		t.Error("endpoints are not predictable")
	}
}

// TestFallbackRescuesStepData builds a step signal: flat runs with
// sudden jumps. The chord across a phase containing a step misses the
// flat values, but the neighbor predictor nails them.
func TestFallbackRescuesStepData(t *testing.T) {
	rsk, _ := buildPP(t, rampSrc)
	fi := rsk.FuncByName("kernel")
	run := func(cfg Config) *LoopStats {
		mgr := NewManager(rsk, cfg)
		m := machine.New(rsk, mgr.MachineConfig(machine.Config{}))
		n := 96
		a := m.Mem.Alloc(int64(n + 4))
		for i := 0; i < n+4; i++ {
			// Steps: blocks of 6 equal values, each block jumping 40%.
			m.Mem.SetFloat(a+int64(i), float64(10*(1+i/6)))
		}
		out := m.Mem.Alloc(int64(n))
		if _, err := m.Run(fi, []uint64{uint64(a), uint64(out), uint64(n)}); err != nil {
			t.Fatal(err)
		}
		var st *LoopStats
		for _, s := range mgr.Stats {
			st = s
		}
		return st
	}
	// Fixed-stride phases straddle the steps, so the chord misses the
	// flat interiors on either side — exactly the case a neighbor
	// predictor rescues. (Dynamic slicing cuts at the steps, making
	// the failing points endpoints that fallbacks do not cover.)
	baseCfg := DefaultConfig(0.1)
	baseCfg.FixedStride = 8
	base := run(baseCfg)
	cfg := DefaultConfig(0.1)
	cfg.FixedStride = 8
	cfg.Fallbacks = []FallbackPredictor{NeighborPredictor{}}
	with := run(cfg)
	if with.SkippedFB == 0 {
		t.Fatalf("neighbor fallback never accepted an element (base skip %.2f, with %.2f)",
			base.SkipRate(), with.SkipRate())
	}
	if with.SkipRate() < base.SkipRate() {
		t.Errorf("fallback lowered the skip rate: %.3f -> %.3f",
			base.SkipRate(), with.SkipRate())
	}
	if with.Detected != 0 {
		t.Error("fault-free run detected faults")
	}
}
