package rtm

import (
	"fmt"
	"math"

	"rskip/internal/ir"
	"rskip/internal/machine"
	"rskip/internal/predict"
)

// Config parameterizes the run-time management system.
type Config struct {
	// AR is the acceptable range as a relative fraction (0.2 = AR20).
	AR float64
	// DefaultTP seeds the tuning parameter before any QoS adjustment.
	DefaultTP float64
	// Window is the observe/adjust period in elements (Figure 6); 0
	// disables periodic adjustment.
	Window int
	// QoS holds per-loop signature→TP models from offline training.
	QoS map[int]*QoSModel
	// Memo holds per-loop memoization tables (deployed by training for
	// loops whose value is a pure user call).
	Memo map[int]*predict.MemoTable
	// ForceCP runs the listed loops under emulated conventional
	// protection: every element is re-computed and compared, no
	// prediction. Used when PP is expected to have no benefit and for
	// ablations.
	ForceCP map[int]bool
	// DisableMemo turns the second-level predictor off (the Fig. 8a
	// DI-only configuration).
	DisableMemo bool
	// DisableDI routes every element straight to the second-level
	// predictor / re-computation (AM-only ablation).
	DisableDI bool
	// FixedStride replaces redundancy-guided phase slicing with fixed
	// K-element phases (the ablation of the paper's dynamic slicing).
	FixedStride int
	// Fallbacks are extra approximation models tried, in order, after
	// dynamic interpolation and memoization reject an interior element
	// and before re-computation (the §2 extensibility point).
	Fallbacks []FallbackPredictor
}

// DefaultConfig returns the deployment defaults.
func DefaultConfig(ar float64) Config {
	return Config{AR: ar, DefaultTP: 0.25, Window: 32}
}

// LoopStats aggregates one loop's protection activity.
type LoopStats struct {
	Observed     int // elements subject to validation
	SkippedDI    int // accepted by dynamic interpolation
	SkippedAM    int // accepted by approximate memoization
	SkippedFB    int // accepted by a plug-in fallback predictor
	Recomputed   int // exactly validated by re-computation
	Mispredicted int // recomputation matched the original (no fault)
	Detected     int // recomputation mismatched: possible fault
	Recovered    int // majority vote repaired the element
	Unrecovered  int // three-way disagreement
	Phases       int
	Adjusts      int
	// TPTrace/SigTrace record the tuning parameter and context
	// signature chosen at each observe/adjust cycle (Figure 6's
	// trajectory).
	TPTrace    []float64
	SigTrace   []string
	AMProbes   int
	AMWrong    int
	DIDisabled bool
	AMDisabled bool
}

// SkipRate returns the fraction of elements whose re-computation was
// skipped — the paper's headline metric (Fig. 7a).
func (s *LoopStats) SkipRate() float64 {
	if s.Observed == 0 {
		return 0
	}
	return float64(s.SkippedDI+s.SkippedAM+s.SkippedFB) / float64(s.Observed)
}

// DISkipRate returns the first-level predictor's contribution alone.
func (s *LoopStats) DISkipRate() float64 {
	if s.Observed == 0 {
		return 0
	}
	return float64(s.SkippedDI) / float64(s.Observed)
}

type loopState struct {
	info       *ir.LoopInfo
	interp     *predict.Interp
	invariants []uint64
	fixed      []predict.Point // buffered points under FixedStride
	sinceAdj   int
	active     bool
}

// Manager implements machine.Hooks.
type Manager struct {
	cfg   Config
	mod   *ir.Module
	loops map[int]*loopState
	Stats map[int]*LoopStats
	// memoParamTypes caches the traced function's parameter types for
	// raw-bits conversion.
	memoFn         int
	memoParamTypes []ir.Type
	// pendingMemoArgs holds the most recent traced memo-function call's
	// inputs, consumed by the next Observe.
	pendingMemoArgs []float64
}

// NewManager creates a manager for the transformed module.
func NewManager(mod *ir.Module, cfg Config) *Manager {
	if cfg.DefaultTP == 0 {
		cfg.DefaultTP = 0.25
	}
	m := &Manager{
		cfg:    cfg,
		mod:    mod,
		loops:  map[int]*loopState{},
		Stats:  map[int]*LoopStats{},
		memoFn: -1,
	}
	for i := range mod.Loops {
		li := &mod.Loops[i]
		m.Stats[li.ID] = &LoopStats{}
		if li.MemoFn >= 0 && cfg.Memo[li.ID] != nil && !cfg.DisableMemo {
			m.memoFn = li.MemoFn
			f := mod.Funcs[li.MemoFn]
			m.memoParamTypes = make([]ir.Type, len(f.Params))
			for pi, p := range f.Params {
				m.memoParamTypes[pi] = p.Type
			}
		}
	}
	return m
}

// MachineConfig wires the manager into a machine configuration.
func (m *Manager) MachineConfig(base machine.Config) machine.Config {
	base.Hooks = m
	base.TraceFn = -1
	if m.memoFn >= 0 {
		base.TraceFn = m.memoFn
		base.CallTracer = m.traceMemoCall
	}
	return base
}

func (m *Manager) traceMemoCall(args []uint64, ret uint64) {
	in := make([]float64, len(args))
	for i, a := range args {
		if i < len(m.memoParamTypes) && m.memoParamTypes[i] == ir.Float {
			in[i] = math.Float64frombits(a)
		} else {
			in[i] = float64(int64(a))
		}
	}
	m.pendingMemoArgs = in
}

// LoopEnter implements machine.Hooks.
func (m *Manager) LoopEnter(mc *machine.Machine, id int, invariants []uint64) error {
	info := m.mod.LoopByID(id)
	if info == nil {
		return fmt.Errorf("rtm: unknown loop id %d", id)
	}
	ls := m.loops[id]
	if ls == nil {
		ls = &loopState{info: info, interp: predict.NewInterp(m.tpFor(id, ""))}
		m.loops[id] = ls
	}
	ls.interp.Reset()
	ls.invariants = append(ls.invariants[:0], invariants...)
	ls.sinceAdj = 0
	ls.active = true
	m.pendingMemoArgs = nil
	return nil
}

// arFor returns the loop's effective acceptable range: the source
// pragma's override when present (§3 footnote 5), the deployment
// configuration otherwise.
func (m *Manager) arFor(ls *loopState) float64 {
	if ls.info.HasAROverride {
		return ls.info.AROverride
	}
	return m.cfg.AR
}

func (m *Manager) tpFor(id int, sig string) float64 {
	if q := m.cfg.QoS[id]; q != nil {
		if tp := q.TPFor(sig); tp > 0 {
			return tp
		}
	}
	return m.cfg.DefaultTP
}

// toTrend converts raw stored bits into trend space.
func toTrend(bits uint64, isFloat bool) float64 {
	if isFloat {
		return math.Float64frombits(bits)
	}
	return float64(int64(bits))
}

// Observe implements machine.Hooks: called just before the hot store.
func (m *Manager) Observe(mc *machine.Machine, id int, iter int64, value uint64, addr int64) error {
	ls := m.loops[id]
	st := m.Stats[id]
	if ls == nil || !ls.active {
		return fmt.Errorf("rtm: observe for inactive loop %d", id)
	}
	mc.Charge(costObserve)
	old, err := mc.Mem.LoadWord(addr) // pre-store value for recompute
	if err != nil {
		return err
	}
	p := predict.Point{
		Iter: iter,
		V:    toTrend(value, ls.info.ValueIsFloat),
		Bits: value,
		Addr: addr,
		Old:  old,
	}
	memo := m.memoTable(id)
	if memo != nil && !st.AMDisabled {
		mc.Charge(costMemoSave(len(m.memoParamTypes)))
		p.MemoIn = m.pendingMemoArgs
		m.pendingMemoArgs = nil
	}
	if m.cfg.ForceCP[id] || st.DIDisabled {
		// Conventional protection emulation: exact-validate right away.
		return m.exactValidate(mc, ls, st, p, false)
	}
	if m.cfg.DisableDI {
		return m.secondLevel(mc, ls, st, p)
	}
	if m.cfg.FixedStride > 0 {
		ls.fixed = append(ls.fixed, p)
		if len(ls.fixed) >= m.cfg.FixedStride {
			phase := ls.fixed
			ls.fixed = nil
			st.Phases++
			mc.Charge(costCutAdmin)
			return m.validatePhase(mc, ls, st, phase)
		}
		return nil
	}
	phase, cut := ls.interp.Observe(p)
	if cut {
		mc.Charge(costCutAdmin)
		st.Phases++
		if err := m.validatePhase(mc, ls, st, phase); err != nil {
			return err
		}
	}
	// Periodic observe/adjust cycle (Figure 6).
	ls.sinceAdj++
	if m.cfg.Window > 0 && ls.sinceAdj >= m.cfg.Window {
		ls.sinceAdj = 0
		st.Adjusts++
		mc.Charge(costAdjust)
		sig := Signature(ls.interp.Changes)
		ls.interp.Changes = ls.interp.Changes[:0]
		ls.interp.TP = m.tpFor(id, sig)
		st.SigTrace = append(st.SigTrace, sig)
		st.TPTrace = append(st.TPTrace, ls.interp.TP)
		m.checkDisable(st)
	}
	return nil
}

// checkDisable applies the QoS model's safety valves: predictors that
// perform badly at run time are switched off (§5). The thresholds are
// deliberately loose; the paper never observed DI disabling either.
func (m *Manager) checkDisable(st *LoopStats) {
	if st.Observed > 256 && !st.DIDisabled {
		bad := float64(st.Mispredicted) / float64(st.Observed)
		if bad > 0.95 {
			st.DIDisabled = true
		}
	}
	if st.AMProbes > 64 && !st.AMDisabled {
		if float64(st.AMWrong)/float64(st.AMProbes) > 0.5 {
			st.AMDisabled = true
		}
	}
}

// LoopExit implements machine.Hooks.
func (m *Manager) LoopExit(mc *machine.Machine, id int) error {
	ls := m.loops[id]
	st := m.Stats[id]
	if ls == nil || !ls.active {
		return nil // exit block reached without entering (zero-trip or outer path)
	}
	ls.active = false
	var phase []predict.Point
	if m.cfg.FixedStride > 0 {
		phase = ls.fixed
		ls.fixed = nil
	} else {
		phase = ls.interp.Flush()
	}
	if len(phase) == 0 {
		return nil
	}
	st.Phases++
	return m.validatePhase(mc, ls, st, phase)
}

// validatePhase fuzzy-validates a completed phase: interiors against
// the linear interpolant, endpoints (which interpolation cannot
// estimate) through the second-level predictor or re-computation.
func (m *Manager) validatePhase(mc *machine.Machine, ls *loopState, st *LoopStats, phase []predict.Point) error {
	if len(phase) == 0 {
		return nil
	}
	first, last := phase[0], phase[len(phase)-1]
	for i, p := range phase {
		if p.Validated {
			continue // endpoint shared with the previous phase
		}
		interior := i > 0 && i < len(phase)-1
		if interior {
			mc.Charge(costValidate)
			pred := predict.Predict(first, last, p.Iter)
			if predict.RelDiff(p.V, pred) <= m.arFor(ls) {
				st.Observed++
				st.SkippedDI++
				continue
			}
		}
		if interior && m.tryFallbacks(mc, ls, st, phase, i) {
			continue
		}
		if err := m.secondLevel(mc, ls, st, p); err != nil {
			return err
		}
	}
	return nil
}

// tryFallbacks probes the plug-in predictors for an interior element
// dynamic interpolation rejected; an in-range prediction accepts the
// element (fuzzy validation with the same AR semantics).
func (m *Manager) tryFallbacks(mc *machine.Machine, ls *loopState, st *LoopStats, phase []predict.Point, idx int) bool {
	for _, fb := range m.cfg.Fallbacks {
		mc.Charge(fb.Cost())
		v, ok := fb.Predict(ls.info.ID, phase, idx)
		if !ok {
			continue
		}
		if predict.RelDiff(phase[idx].V, v) <= m.arFor(ls) {
			st.Observed++
			st.SkippedFB++
			return true
		}
	}
	return false
}

// secondLevel tries approximate memoization, then falls back to exact
// validation by re-computation.
func (m *Manager) secondLevel(mc *machine.Machine, ls *loopState, st *LoopStats, p predict.Point) error {
	memo := m.memoTable(ls.info.ID)
	if memo != nil && !st.AMDisabled && p.MemoIn != nil {
		mc.Charge(costMemoLookup(len(p.MemoIn)))
		st.AMProbes++
		if v, ok := memo.Lookup(p.MemoIn); ok {
			if predict.RelDiff(p.V, v) <= m.arFor(ls) {
				st.Observed++
				st.SkippedAM++
				return nil
			}
			st.AMWrong++
		}
	}
	return m.exactValidate(mc, ls, st, p, true)
}

func (m *Manager) memoTable(id int) *predict.MemoTable {
	if m.cfg.DisableMemo {
		return nil
	}
	return m.cfg.Memo[id]
}

// exactValidate re-computes the element; a mismatch means a possible
// fault, answered with a second re-computation and TMR-style majority
// (§2's recovery via re-computation). fromPrediction marks elements
// that reached here after a failed prediction (mispredictions).
func (m *Manager) exactValidate(mc *machine.Machine, ls *loopState, st *LoopStats, p predict.Point, fromPrediction bool) error {
	st.Observed++
	st.Recomputed++
	r1, err := mc.CallRecompute(ls.info, p.Iter, ls.invariants, true, p.Addr, p.Old)
	if err != nil {
		return err
	}
	if r1 == p.Bits {
		if fromPrediction {
			st.Mispredicted++
		}
		return nil
	}
	// Possible fault: second re-computation and majority vote.
	st.Detected++
	r2, err := mc.CallRecompute(ls.info, p.Iter, ls.invariants, true, p.Addr, p.Old)
	if err != nil {
		return err
	}
	mc.Charge(costRecoverFix)
	switch {
	case r1 == r2:
		// The original copy was corrupted: repair memory.
		if err := mc.Mem.StoreWord(p.Addr, r1); err != nil {
			return err
		}
		st.Recovered++
	case p.Bits == r2:
		// The first re-computation was corrupted; the original stands.
		st.Recovered++
	default:
		st.Unrecovered++
	}
	return nil
}
