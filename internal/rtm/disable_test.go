package rtm

import (
	"testing"

	"rskip/internal/machine"
	"rskip/internal/predict"
)

func TestCheckDisableDI(t *testing.T) {
	m := &Manager{cfg: DefaultConfig(0.2)}
	st := &LoopStats{Observed: 300, Mispredicted: 299}
	m.checkDisable(st)
	if !st.DIDisabled {
		t.Error("pathological misprediction rate did not disable DI")
	}
	st2 := &LoopStats{Observed: 300, Mispredicted: 30}
	m.checkDisable(st2)
	if st2.DIDisabled {
		t.Error("healthy loop was disabled")
	}
	// Below the evidence threshold nothing happens.
	st3 := &LoopStats{Observed: 100, Mispredicted: 100}
	m.checkDisable(st3)
	if st3.DIDisabled {
		t.Error("disabled without enough evidence")
	}
}

func TestCheckDisableAM(t *testing.T) {
	m := &Manager{cfg: DefaultConfig(0.2)}
	st := &LoopStats{AMProbes: 100, AMWrong: 80}
	m.checkDisable(st)
	if !st.AMDisabled {
		t.Error("inaccurate memo table not disabled")
	}
	st2 := &LoopStats{AMProbes: 100, AMWrong: 10}
	m.checkDisable(st2)
	if st2.AMDisabled {
		t.Error("accurate memo table disabled")
	}
}

func TestDisableDIRoutesToRecompute(t *testing.T) {
	rsk, _ := buildPP(t, rampSrc)
	cfg := DefaultConfig(0.2)
	cfg.DisableDI = true
	mgr, _, _ := runManagedWith(t, rsk, cfg)
	for _, st := range mgr.Stats {
		if st.SkippedDI != 0 {
			t.Error("DisableDI still skipped via interpolation")
		}
		if st.Recomputed != st.Observed {
			t.Errorf("recomputed %d of %d with DI disabled", st.Recomputed, st.Observed)
		}
	}
}

func TestLoopStatsRates(t *testing.T) {
	st := &LoopStats{Observed: 100, SkippedDI: 40, SkippedAM: 20, SkippedFB: 10}
	if st.SkipRate() != 0.7 {
		t.Errorf("SkipRate = %g", st.SkipRate())
	}
	if st.DISkipRate() != 0.4 {
		t.Errorf("DISkipRate = %g", st.DISkipRate())
	}
	empty := &LoopStats{}
	if empty.SkipRate() != 0 || empty.DISkipRate() != 0 {
		t.Error("empty stats should rate 0")
	}
}

func TestObserveInactiveLoopErrors(t *testing.T) {
	rsk, _ := buildPP(t, rampSrc)
	mgr := NewManager(rsk, DefaultConfig(0.2))
	m := machine.New(rsk, machine.Config{TraceFn: -1})
	if err := mgr.Observe(m, 99, 0, 0, 0); err == nil {
		t.Error("observe for unknown loop should error")
	}
}

func TestLoopExitWithoutEnterIsBenign(t *testing.T) {
	rsk, _ := buildPP(t, rampSrc)
	mgr := NewManager(rsk, DefaultConfig(0.2))
	m := machine.New(rsk, machine.Config{TraceFn: -1})
	if err := mgr.LoopExit(m, rsk.Loops[0].ID); err != nil {
		t.Errorf("zero-trip loop exit errored: %v", err)
	}
}

func TestToTrendConversion(t *testing.T) {
	if toTrend(5, false) != 5 {
		t.Error("int bits conversion wrong")
	}
	neg := int64(-3)
	if toTrend(uint64(neg), false) != -3 {
		t.Error("negative int conversion wrong")
	}
	bits := predict.Point{}.Bits // zero
	if toTrend(bits, true) != 0 {
		t.Error("float zero conversion wrong")
	}
}
