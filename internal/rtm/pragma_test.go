package rtm

import (
	"math/rand"
	"testing"

	"rskip/internal/analysis"
	"rskip/internal/lower"
	"rskip/internal/machine"
	"rskip/internal/transform"
)

// TestPragmaZeroARDisablesFuzzyAcceptance runs the same noisy kernel
// with and without `#pragma rskip ar(0)`. Under AR0 only bit-exact
// interpolation survives fuzzy validation, so the noisy loop's skip
// rate must collapse while the unannotated build keeps skipping.
func TestPragmaZeroARDisablesFuzzyAcceptance(t *testing.T) {
	const body = `
void kernel(float a[], float out[], int n) {
	%s
	for (int i = 0; i < n; i = i + 1) {
		float s = 0.0;
		for (int j = 0; j < 4; j = j + 1) { s = s + a[i + j]; }
		out[i] = s;
	}
}
`
	run := func(pragma string) float64 {
		src := ""
		if pragma == "" {
			src = `
void kernel(float a[], float out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		float s = 0.0;
		for (int j = 0; j < 4; j = j + 1) { s = s + a[i + j]; }
		out[i] = s;
	}
}`
		} else {
			src = `
void kernel(float a[], float out[], int n) {
	#pragma rskip ar(0)
	for (int i = 0; i < n; i = i + 1) {
		float s = 0.0;
		for (int j = 0; j < 4; j = j + 1) { s = s + a[i + j]; }
		out[i] = s;
	}
}`
		}
		mod, err := lower.Compile("t", src)
		if err != nil {
			t.Fatal(err)
		}
		rsk, err := transform.ApplyRSkip(mod, analysis.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(rsk.Loops) != 1 {
			t.Fatal("no PP loop")
		}
		mgr := NewManager(rsk, DefaultConfig(0.2))
		m := machine.New(rsk, mgr.MachineConfig(machine.Config{}))
		rng := rand.New(rand.NewSource(4))
		n := 128
		a := m.Mem.Alloc(int64(n + 4))
		for i := 0; i < n+4; i++ {
			// Noisy ramp: interiors deviate a few percent from the chord.
			m.Mem.SetFloat(a+int64(i), float64(i)+rng.Float64()*0.3)
		}
		out := m.Mem.Alloc(int64(n))
		fi := rsk.FuncByName("kernel")
		if _, err := m.Run(fi, []uint64{uint64(a), uint64(out), uint64(n)}); err != nil {
			t.Fatal(err)
		}
		var rate float64
		for _, st := range mgr.Stats {
			rate = st.SkipRate()
			if st.Detected != 0 {
				t.Fatalf("fault-free run flagged %d detections", st.Detected)
			}
		}
		return rate
	}
	free := run("")
	strict := run("#pragma rskip ar(0)")
	if strict >= free {
		t.Errorf("ar(0) pragma skip %.3f should be below default %.3f", strict, free)
	}
	if strict > 0.02 {
		t.Errorf("ar(0) pragma still skipped %.1f%% of noisy elements", 100*strict)
	}
	_ = body
}

// TestPragmaOverrideRecordedInLoopInfo checks the metadata plumbed from
// source to the run-time system.
func TestPragmaOverrideRecordedInLoopInfo(t *testing.T) {
	src := `
void kernel(float a[], float out[], int n) {
	#pragma rskip ar(0.35)
	for (int i = 0; i < n; i = i + 1) {
		float s = 0.0;
		for (int j = 0; j < 4; j = j + 1) { s = s + a[i + j]; }
		out[i] = s;
	}
}`
	mod, err := lower.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	rsk, err := transform.ApplyRSkip(mod, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	li := rsk.Loops[0]
	if !li.HasAROverride || li.AROverride != 0.35 {
		t.Fatalf("override not recorded: %+v", li)
	}
	mgr := NewManager(rsk, DefaultConfig(0.2))
	ls := &loopState{info: &li}
	if got := mgr.arFor(ls); got != 0.35 {
		t.Errorf("arFor = %g, want 0.35", got)
	}
	li.HasAROverride = false
	if got := mgr.arFor(&loopState{info: &li}); got != 0.2 {
		t.Errorf("arFor without override = %g, want config AR", got)
	}
}
