package predict

import (
	"math"
	"sort"
)

// Quantizer maps one input dimension to a small number of levels.
// Edges[k] is the lower boundary of level k; a value v falls into the
// last level whose edge is <= v (values below Edges[0] clamp to level
// 0). Levels = len(Edges).
type Quantizer struct {
	Edges []float64
}

// Level returns the quantization level for v.
func (q *Quantizer) Level(v float64) int {
	if len(q.Edges) == 0 {
		return 0
	}
	// Binary search for the rightmost edge <= v.
	lo, hi := 0, len(q.Edges)-1
	if v < q.Edges[0] {
		return 0
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if q.Edges[mid] <= v {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Levels returns the number of levels.
func (q *Quantizer) Levels() int { return len(q.Edges) }

// UniformQuantizer builds the prior work's quantizer: the [min,max]
// range split into 'levels' equal-width levels (Samadi et al.'s
// uniform assumption, kept for the §4.2 accuracy comparison).
func UniformQuantizer(samples []float64, levels int) *Quantizer {
	if levels < 1 {
		levels = 1
	}
	mn, mx := minMax(samples)
	if mx <= mn {
		return &Quantizer{Edges: []float64{mn}}
	}
	edges := make([]float64, levels)
	w := (mx - mn) / float64(levels)
	for k := range edges {
		edges[k] = mn + float64(k)*w
	}
	return &Quantizer{Edges: edges}
}

// HistogramQuantizer builds this paper's quantizer: a fine uniform
// histogram whose adjacent least-crowded bins are merged until only
// 'levels' remain, concentrating resolution where the training inputs
// actually live.
func HistogramQuantizer(samples []float64, levels, fineBins int) *Quantizer {
	if levels < 1 {
		levels = 1
	}
	if fineBins < levels {
		fineBins = levels * 4
	}
	mn, mx := minMax(samples)
	if mx <= mn || len(samples) == 0 {
		return &Quantizer{Edges: []float64{mn}}
	}
	type bin struct {
		lo    float64
		count int
		sum   float64
	}
	w := (mx - mn) / float64(fineBins)
	bins := make([]bin, fineBins)
	for k := range bins {
		bins[k].lo = mn + float64(k)*w
	}
	for _, v := range samples {
		// Non-finite samples carry no range information and a single
		// NaN would poison every bin mean (and so every merge cost)
		// downstream.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		k := int((v - mn) / w)
		if k >= fineBins {
			k = fineBins - 1
		}
		if k < 0 {
			k = 0
		}
		bins[k].count++
		bins[k].sum += v
	}
	// Gradually combine nearby less-crowded bins: the merge cost is the
	// within-level variance increase (Ward's criterion),
	// nA*nB/(nA+nB) * (meanA-meanB)^2, so empty and sparse bins merge
	// freely while boundaries between populated value clusters survive —
	// resolution concentrates where the inputs actually live.
	mergeCost := func(a, b bin) float64 {
		if a.count == 0 || b.count == 0 {
			return 0
		}
		ma := a.sum / float64(a.count)
		mb := b.sum / float64(b.count)
		na, nb := float64(a.count), float64(b.count)
		d := ma - mb
		return na * nb / (na + nb) * d * d
	}
	for len(bins) > levels {
		best, bestCost := 0, math.Inf(1)
		for k := 0; k+1 < len(bins); k++ {
			c := mergeCost(bins[k], bins[k+1])
			if c < bestCost {
				best, bestCost = k, c
			}
		}
		bins[best].count += bins[best+1].count
		bins[best].sum += bins[best+1].sum
		bins = append(bins[:best+1], bins[best+2:]...)
	}
	edges := make([]float64, len(bins))
	for k := range bins {
		edges[k] = bins[k].lo
	}
	return &Quantizer{Edges: edges}
}

// minMax returns the range of the finite samples. NaN and ±Inf
// observations (a kernel dividing by zero on a degenerate input) are
// ignored: a single NaN would otherwise propagate into every quantizer
// edge and collapse all lookups to level 0, and an Inf would stretch
// the range until every finite value shares one level.
func minMax(vs []float64) (mn, mx float64) {
	seen := false
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if !seen {
			mn, mx = v, v
			seen = true
			continue
		}
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

// quantileEdges is a helper exposed for tests: the k/levels quantiles
// of the sample distribution, which histogram merging approximates.
func quantileEdges(samples []float64, levels int) []float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	edges := make([]float64, levels)
	for k := range edges {
		idx := k * len(s) / levels
		if idx >= len(s) {
			idx = len(s) - 1
		}
		edges[k] = s[idx]
	}
	return edges
}
