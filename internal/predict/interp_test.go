package predict

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func pts(vs ...float64) []Point {
	out := make([]Point, len(vs))
	for i, v := range vs {
		out[i] = Point{Iter: int64(i), V: v}
	}
	return out
}

func feed(it *Interp, points []Point) (phases [][]Point) {
	for _, p := range points {
		if ph, cut := it.Observe(p); cut {
			phases = append(phases, ph)
		}
	}
	if ph := it.Flush(); len(ph) > 0 {
		phases = append(phases, ph)
	}
	return phases
}

func TestSlopeChange(t *testing.T) {
	cases := []struct {
		prev, cur, value, want float64
	}{
		{1, 1, 10, 0},
		{1, 2, 10, 1},   // |2-1|/|1|
		{2, 1, 10, 0.5}, // |1-2|/|2|
		{1, -1, 10, 2},  // sign flip
		{0, 0, 10, 0},   // flat trend stays flat
		{-2, -2, 10, 0},
		{0.5, -160, 200, 321}, // a jump after a shallow slope reads huge
	}
	for _, tt := range cases {
		if got := SlopeChange(tt.prev, tt.cur, tt.value); math.Abs(got-tt.want) > 1e-6*tt.want+1e-9 {
			t.Errorf("SlopeChange(%g, %g, %g) = %g, want %g", tt.prev, tt.cur, tt.value, got, tt.want)
		}
	}
	// Plateau: slopes that are float noise relative to the value do not
	// register as trend breaks.
	if got := SlopeChange(1e-13, 5e-13, 1.0); got > 0.01 {
		t.Errorf("plateau noise produced change %g", got)
	}
}

func TestLinearSeriesOnePhase(t *testing.T) {
	it := NewInterp(0.1)
	phases := feed(it, pts(1, 2, 3, 4, 5, 6, 7, 8))
	if len(phases) != 1 {
		t.Fatalf("perfectly linear series split into %d phases", len(phases))
	}
	o := ScorePhase(phases[0], 0.01)
	if o.Skippable != 6 || o.Exact != 2 {
		t.Errorf("linear phase: skippable=%d exact=%d, want 6/2", o.Skippable, o.Exact)
	}
}

func TestTrendBreakCuts(t *testing.T) {
	// Figure 5's sketch: rising trend, then a sharp break at iter 4.
	series := pts(1, 2, 3, 4, 1, -2, -5)
	it := NewInterp(0.2)
	phases := feed(it, series)
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2 (cut at the break): %+v", len(phases), phases)
	}
	if phases[0][len(phases[0])-1].Iter != 3 {
		t.Errorf("first phase should end at iter 3, ends at %d",
			phases[0][len(phases[0])-1].Iter)
	}
}

func TestHigherTPExtendsPhases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	series := make([]Point, 200)
	v := 0.0
	for i := range series {
		v += 1 + 0.3*rng.Float64() // noisy rising trend
		series[i] = Point{Iter: int64(i), V: v}
	}
	low := feed(NewInterp(0.05), append([]Point(nil), series...))
	high := feed(NewInterp(1.0), append([]Point(nil), series...))
	if len(high) >= len(low) {
		t.Errorf("higher TP should produce fewer phases: tp=1.0 %d phases, tp=0.05 %d phases",
			len(high), len(low))
	}
}

// Property: every observed point appears in exactly one phase as a
// countable element (endpoints shared between phases are marked
// Validated in the successor phase and skipped by scoring).
func TestEveryPointValidatedOnce(t *testing.T) {
	check := func(seed int64, tpRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tp := 0.05 + float64(tpRaw)/64.0
		n := 20 + rng.Intn(200)
		it := NewInterp(tp)
		counted := 0
		count := func(ph []Point) {
			for _, p := range ph {
				if !p.Validated {
					counted++
				}
			}
		}
		for i := 0; i < n; i++ {
			p := Point{Iter: int64(i), V: rng.NormFloat64() * 10}
			if ph, cut := it.Observe(p); cut {
				count(ph)
			}
		}
		count(it.Flush())
		return counted == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a phase's skippable points really are within AR of the
// interpolant (ScorePhase and Predict agree).
func TestScorePhaseConsistent(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		phase := make([]Point, n)
		for i := range phase {
			phase[i] = Point{Iter: int64(i * 2), V: rng.Float64()*100 - 50}
		}
		ar := 0.25
		o := ScorePhase(phase, ar)
		skippable := 0
		first, last := phase[0], phase[n-1]
		for i := 1; i < n-1; i++ {
			if RelDiff(phase[i].V, Predict(first, last, phase[i].Iter)) <= ar {
				skippable++
			}
		}
		return o.Skippable == skippable && o.Skippable+o.Exact == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictEndpointsExact(t *testing.T) {
	first := Point{Iter: 10, V: 3}
	last := Point{Iter: 20, V: 13}
	if Predict(first, last, 10) != 3 || Predict(first, last, 20) != 13 {
		t.Error("interpolant must pass through endpoints")
	}
	if Predict(first, last, 15) != 8 {
		t.Errorf("midpoint = %g, want 8", Predict(first, last, 15))
	}
	// Degenerate zero-length phase.
	if Predict(first, first, 10) != 3 {
		t.Error("degenerate phase prediction")
	}
}

func TestRelDiff(t *testing.T) {
	if RelDiff(10, 10) != 0 {
		t.Error("identical values must have zero diff")
	}
	if got := RelDiff(12, 10); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("RelDiff(12,10) = %g, want 0.2", got)
	}
	if got := RelDiff(1, 0); got < 1e6 {
		t.Errorf("diff against zero prediction should be huge, got %g", got)
	}
	if RelDiff(0, 0) != 0 {
		t.Error("both zero should be zero diff")
	}
}

func TestResetClearsState(t *testing.T) {
	it := NewInterp(0.5)
	feed(it, pts(1, 5, 2, 8, 3))
	it.Reset()
	if it.Pending() != 0 || len(it.Changes) != 0 {
		t.Error("Reset left state behind")
	}
	phases := feed(it, pts(1, 2, 3))
	if len(phases) != 1 {
		t.Errorf("fresh series after Reset: %d phases", len(phases))
	}
}

func TestFlushEmpty(t *testing.T) {
	it := NewInterp(0.5)
	if ph := it.Flush(); ph != nil {
		t.Errorf("empty flush returned %v", ph)
	}
}

func TestSeedCarriesValidatedFlag(t *testing.T) {
	it := NewInterp(0.1)
	// Break the trend so a cut happens; the next phase's first point
	// must be marked Validated (it was the previous phase's endpoint).
	var phases [][]Point
	for _, p := range pts(1, 2, 3, 10, 20, 30, -5) {
		if ph, cut := it.Observe(p); cut {
			phases = append(phases, ph)
		}
	}
	if len(phases) < 2 {
		t.Fatalf("expected at least 2 cuts, got %d", len(phases))
	}
	second := phases[1]
	if !second[0].Validated {
		t.Error("phase seed point must carry the Validated flag")
	}
}
