package predict

import (
	"fmt"
)

// MemoTable is the approximate-memoization predictor: a lookup table
// indexed by the quantized inputs of a pure function. Construction
// (§4.2) distributes a fixed address-bit budget across the inputs by
// measured output impact (bit tuning) and quantizes each input with
// either the histogram method (this paper) or the uniform method
// (prior work).
type MemoTable struct {
	Bits   []int        // address bits assigned to each input
	Quants []*Quantizer // one per input
	Values []float64    // 1<<totalBits entries
	Filled []bool
}

// MemoConfig parameterizes table construction.
type MemoConfig struct {
	// AddressBits is the total address width (the paper uses 15).
	AddressBits int
	// FineBins is the initial histogram resolution per input.
	FineBins int
	// Uniform selects the prior work's equal-width quantization for
	// the §4.2 comparison.
	Uniform bool
	// TuneRounds caps greedy bit-tuning passes; 0 means AddressBits.
	TuneRounds int
}

// DefaultMemoConfig mirrors the paper's blackscholes setup.
func DefaultMemoConfig() MemoConfig {
	return MemoConfig{AddressBits: 15, FineBins: 256}
}

// BuildMemo constructs a table from training pairs. inputs[k] is the
// k-th sample's input vector; outputs[k] its result. The bit budget is
// assigned greedily: each round adds one bit to whichever input most
// reduces the training prediction error — the "bit tuning process"
// that lets high-impact inputs differentiate their values.
func BuildMemo(inputs [][]float64, outputs []float64, cfg MemoConfig) (*MemoTable, error) {
	if len(inputs) == 0 || len(inputs) != len(outputs) {
		return nil, fmt.Errorf("predict: memo training needs matching input/output samples")
	}
	nin := len(inputs[0])
	if nin == 0 {
		return nil, fmt.Errorf("predict: memo function has no inputs")
	}
	if cfg.AddressBits <= 0 {
		cfg.AddressBits = 15
	}
	if cfg.FineBins == 0 {
		cfg.FineBins = 256
	}
	cols := make([][]float64, nin)
	for i := range cols {
		cols[i] = make([]float64, len(inputs))
		for k := range inputs {
			cols[i][k] = inputs[k][i]
		}
	}
	bits := make([]int, nin)
	build := func(bits []int) *MemoTable {
		t := &MemoTable{Bits: append([]int(nil), bits...)}
		t.Quants = make([]*Quantizer, nin)
		for i := range t.Quants {
			levels := 1 << bits[i]
			if cfg.Uniform {
				t.Quants[i] = UniformQuantizer(cols[i], levels)
			} else {
				t.Quants[i] = HistogramQuantizer(cols[i], levels, cfg.FineBins)
			}
		}
		t.fill(inputs, outputs)
		return t
	}
	rounds := cfg.TuneRounds
	if rounds == 0 {
		rounds = cfg.AddressBits
	}
	// Greedy bit tuning, scored on a held-out tuning slice so that
	// over-splitting (cold cells the training data cannot fill) is
	// penalized. Tuning stops early once no input's extra bit helps.
	tuneCut := len(inputs) * 4 / 5
	if tuneCut == len(inputs) {
		tuneCut = len(inputs) - 1
	}
	buildIn, buildOut := inputs[:tuneCut], outputs[:tuneCut]
	tuneIn, tuneOut := inputs[tuneCut:], outputs[tuneCut:]
	tuneBuild := func(bits []int) *MemoTable {
		t := &MemoTable{Bits: append([]int(nil), bits...), Quants: make([]*Quantizer, nin)}
		for i := range t.Quants {
			levels := 1 << bits[i]
			if cfg.Uniform {
				t.Quants[i] = UniformQuantizer(cols[i], levels)
			} else {
				t.Quants[i] = HistogramQuantizer(cols[i], levels, cfg.FineBins)
			}
		}
		t.fill(buildIn, buildOut)
		return t
	}
	curErr := tuneBuild(bits).trainError(tuneIn, tuneOut)
	for round := 0; round < rounds && sum(bits) < cfg.AddressBits; round++ {
		bestInput, bestErr := -1, curErr
		for i := 0; i < nin; i++ {
			trial := append([]int(nil), bits...)
			trial[i]++
			e := tuneBuild(trial).trainError(tuneIn, tuneOut)
			if e < bestErr {
				bestInput, bestErr = i, e
			}
		}
		if bestInput == -1 {
			break // no extra bit improves held-out accuracy
		}
		bits[bestInput]++
		curErr = bestErr
	}
	return build(bits), nil
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// fill populates table cells with the mean training output per cell.
func (t *MemoTable) fill(inputs [][]float64, outputs []float64) {
	size := 1 << sum(t.Bits)
	t.Values = make([]float64, size)
	t.Filled = make([]bool, size)
	counts := make([]int, size)
	for k := range inputs {
		idx := t.Index(inputs[k])
		t.Values[idx] += outputs[k]
		counts[idx]++
	}
	for i := range t.Values {
		if counts[i] > 0 {
			t.Values[i] /= float64(counts[i])
			t.Filled[i] = true
		}
	}
}

// trainError is the mean relative prediction error over the training
// set (misses count as full error), the objective bit tuning descends.
func (t *MemoTable) trainError(inputs [][]float64, outputs []float64) float64 {
	var e float64
	for k := range inputs {
		v, ok := t.Lookup(inputs[k])
		if !ok {
			e += 1
			continue
		}
		e += RelDiff(outputs[k], v)
	}
	return e / float64(len(inputs))
}

// Index computes the table index for an input vector by concatenating
// per-input quantization levels into the address bits.
func (t *MemoTable) Index(in []float64) int {
	idx := 0
	for i, q := range t.Quants {
		idx = idx<<t.Bits[i] | q.Level(in[i])
	}
	return idx
}

// Lookup predicts the function output for the inputs; ok is false on a
// cold cell.
func (t *MemoTable) Lookup(in []float64) (v float64, ok bool) {
	idx := t.Index(in)
	if !t.Filled[idx] {
		return 0, false
	}
	return t.Values[idx], true
}

// Accuracy measures the fraction of test samples predicted within the
// acceptable range (the metric behind the paper's 96.5% → >99%
// improvement claim).
func (t *MemoTable) Accuracy(inputs [][]float64, outputs []float64, ar float64) float64 {
	if len(inputs) == 0 {
		return 0
	}
	good := 0
	for k := range inputs {
		if v, ok := t.Lookup(inputs[k]); ok && RelDiff(outputs[k], v) <= ar {
			good++
		}
	}
	return float64(good) / float64(len(inputs))
}

// EncodedInputs reports how many inputs received at least one address
// bit (the paper contrasts 3/6 uniform vs 6/6 histogram on
// blackscholes' 15-bit address).
func (t *MemoTable) EncodedInputs() int {
	n := 0
	for _, b := range t.Bits {
		if b > 0 {
			n++
		}
	}
	return n
}
