// Package predict implements RSkip's two approximation models:
// dynamic interpolation (a phase-sliced linear value predictor driven
// by the redundant computation stream) and approximate memoization (a
// profile-quantized lookup table for pure function calls). Both are
// pure algorithms shared by the run-time management system and the
// offline trainer, which "simulates the algorithm on samples" exactly
// as the paper describes.
package predict

import "math"

// Point is one observed loop output element.
type Point struct {
	Iter int64   // iteration ordinal within the loop invocation
	V    float64 // value in trend space (ints are converted)
	Bits uint64  // raw stored bits
	Addr int64   // destination address of the hot store
	Old  uint64  // pre-store memory bits (for read-modify-write slices)
	// Validated marks a point that was already exactly validated as
	// the endpoint of the previous phase, so it must not be validated
	// (or counted) again.
	Validated bool
	// MemoIn carries the iteration's memo-function inputs when the
	// second-level predictor is armed for the loop.
	MemoIn []float64
}

// SlopeChange returns the relative change between consecutive slopes,
// the quantity compared against the tuning parameter (TP) in Figure 5:
// |cur-prev| / |prev|, the paper's formula. The denominator is floored
// at a tiny fraction of the value's magnitude so plateaus (slopes that
// are pure floating-point noise) read as unchanged instead of dividing
// by noise, while a genuine jump after a shallow slope still reads as
// an enormous change and cuts the phase.
func SlopeChange(prev, cur, value float64) float64 {
	d := math.Abs(cur - prev)
	den := math.Abs(prev)
	if floor := 1e-9 + 1e-7*math.Abs(value); den < floor {
		den = floor
	}
	return d / den
}

// Interp is the dynamic interpolation phase slicer. Feed points with
// Observe; when the slope change exceeds TP the current phase is cut
// and returned for validation. Flush returns the final partial phase.
type Interp struct {
	// TP is the tuning parameter: the maximum relative slope change a
	// phase tolerates before it is cut. Run-time management adjusts it
	// per context signature.
	TP float64

	pts       []Point
	prevSlope float64
	haveSlope bool

	// Changes records the recent slope-change magnitudes; the run-time
	// management system summarizes them into context signatures.
	Changes []float64
}

// NewInterp returns a slicer with the given tuning parameter.
func NewInterp(tp float64) *Interp {
	return &Interp{TP: tp}
}

// Reset clears phase state for a new loop invocation, keeping TP.
func (it *Interp) Reset() {
	it.pts = it.pts[:0]
	it.haveSlope = false
	it.Changes = it.Changes[:0]
}

// Pending returns the number of buffered (not yet validated) points.
func (it *Interp) Pending() int { return len(it.pts) }

// Observe feeds the next point. When the trend breaks, it returns the
// completed phase (cut=true); the slicer keeps the phase's last point
// (already validated as an endpoint) plus p as the seed of the next
// phase, exactly as Figure 5d sketches.
func (it *Interp) Observe(p Point) (phase []Point, cut bool) {
	n := len(it.pts)
	if n == 0 {
		it.pts = append(it.pts, p)
		return nil, false
	}
	last := it.pts[n-1]
	slope := p.V - last.V
	if !it.haveSlope {
		it.prevSlope = slope
		it.haveSlope = true
		it.pts = append(it.pts, p)
		return nil, false
	}
	change := SlopeChange(it.prevSlope, slope, p.V)
	it.Changes = append(it.Changes, change)
	if change <= it.TP {
		it.prevSlope = slope
		it.pts = append(it.pts, p)
		return nil, false
	}
	// Cut: the buffered points form a phase; the next phase starts at
	// the previous endpoint and extends with the outlier.
	phase = append([]Point(nil), it.pts...)
	seed := last
	seed.Validated = true // will be exactly validated as this phase's endpoint
	it.pts = it.pts[:0]
	it.pts = append(it.pts, seed, p)
	it.prevSlope = p.V - seed.V
	it.haveSlope = true
	return phase, true
}

// Flush returns the remaining buffered points as a final phase at loop
// exit. The slicer is left empty.
func (it *Interp) Flush() []Point {
	if len(it.pts) == 0 {
		return nil
	}
	phase := append([]Point(nil), it.pts...)
	it.pts = it.pts[:0]
	it.haveSlope = false
	return phase
}

// Predict returns the linear interpolation of iteration iter between
// the phase's endpoints.
func Predict(first, last Point, iter int64) float64 {
	if last.Iter == first.Iter {
		return first.V
	}
	t := float64(iter-first.Iter) / float64(last.Iter-first.Iter)
	return first.V + (last.V-first.V)*t
}

// RelDiff returns the relative difference |orig-pred| / |pred| used by
// fuzzy validation; the denominator is epsilon-guarded so exact-zero
// predictions compare absolutely.
func RelDiff(orig, pred float64) float64 {
	den := math.Abs(pred)
	if den < 1e-12 {
		den = 1e-12
	}
	return math.Abs(orig-pred) / den
}

// PhaseOutcome classifies the points of a completed phase for a given
// acceptable range without performing exact validation: interior
// points whose relative difference from the interpolant is within AR
// are skippable; endpoints and out-of-range interiors need a second
// predictor or re-computation. The offline trainer uses it to score
// tuning parameters.
type PhaseOutcome struct {
	Skippable int // interior points accepted by fuzzy validation
	Exact     int // points requiring exact validation (endpoints, rejects)
}

// ScorePhase evaluates one phase under the acceptable range ar
// (relative, e.g. 0.2 for AR20).
func ScorePhase(phase []Point, ar float64) PhaseOutcome {
	var out PhaseOutcome
	if len(phase) == 0 {
		return out
	}
	first, last := phase[0], phase[len(phase)-1]
	for i, p := range phase {
		if p.Validated {
			continue // endpoint shared with the previous phase
		}
		if i == 0 || i == len(phase)-1 {
			out.Exact++
			continue
		}
		if RelDiff(p.V, Predict(first, last, p.Iter)) <= ar {
			out.Skippable++
		} else {
			out.Exact++
		}
	}
	return out
}
