package predict

import (
	"math"
	"testing"
)

// A single NaN training sample must not poison the quantizer: minMax
// used to propagate it into every edge, after which Level collapsed to
// 0 for all inputs and the memo table degenerated to one entry.
func TestQuantizerIgnoresNaNSamples(t *testing.T) {
	samples := []float64{math.NaN(), 0, 2.5, 5, 7.5, 10}
	for name, q := range map[string]*Quantizer{
		"uniform":   UniformQuantizer(samples, 4),
		"histogram": HistogramQuantizer(samples, 4, 64),
	} {
		for _, e := range q.Edges {
			if math.IsNaN(e) || math.IsInf(e, 0) {
				t.Fatalf("%s: non-finite edge %v in %v", name, e, q.Edges)
			}
		}
		if got := q.Level(10); got != q.Levels()-1 {
			t.Errorf("%s: Level(10) = %d, want top level %d (edges %v)",
				name, got, q.Levels()-1, q.Edges)
		}
		if q.Level(0) == q.Level(9) {
			t.Errorf("%s: all lookups collapsed to one level (edges %v)",
				name, q.Edges)
		}
	}
}

// An Inf sample (a kernel overflowing on a degenerate input) must not
// stretch the range until every finite value shares level 0.
func TestQuantizerIgnoresInfSamples(t *testing.T) {
	samples := []float64{math.Inf(1), math.Inf(-1), 0, 2.5, 5, 7.5, 10}
	for name, q := range map[string]*Quantizer{
		"uniform":   UniformQuantizer(samples, 4),
		"histogram": HistogramQuantizer(samples, 4, 64),
	} {
		for _, e := range q.Edges {
			if math.IsNaN(e) || math.IsInf(e, 0) {
				t.Fatalf("%s: non-finite edge %v in %v", name, e, q.Edges)
			}
		}
		if q.Level(0) == q.Level(9) {
			t.Errorf("%s: all lookups collapsed to one level (edges %v)",
				name, q.Edges)
		}
	}
}

// All-non-finite samples degrade to the single-level degenerate
// quantizer instead of producing NaN edges.
func TestQuantizerAllNonFinite(t *testing.T) {
	samples := []float64{math.NaN(), math.Inf(1)}
	for name, q := range map[string]*Quantizer{
		"uniform":   UniformQuantizer(samples, 4),
		"histogram": HistogramQuantizer(samples, 4, 64),
	} {
		if q.Levels() != 1 {
			t.Errorf("%s: levels = %d, want 1", name, q.Levels())
		}
		if math.IsNaN(q.Edges[0]) {
			t.Errorf("%s: NaN edge", name)
		}
	}
}

// Level on an empty quantizer returns 0 instead of indexing Edges[0].
func TestLevelEmptyEdges(t *testing.T) {
	q := &Quantizer{}
	if got := q.Level(3.7); got != 0 {
		t.Errorf("Level on empty quantizer = %d, want 0", got)
	}
}

// Level on a NaN lookup value clamps to level 0 rather than walking
// the search off the edge array.
func TestLevelNaNValue(t *testing.T) {
	q := UniformQuantizer([]float64{0, 10}, 4)
	if got := q.Level(math.NaN()); got < 0 || got >= q.Levels() {
		t.Errorf("Level(NaN) = %d, out of range [0,%d)", got, q.Levels())
	}
}
