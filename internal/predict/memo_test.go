package predict

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestUniformQuantizerEdges(t *testing.T) {
	q := UniformQuantizer([]float64{0, 10}, 4)
	if q.Levels() != 4 {
		t.Fatalf("levels = %d", q.Levels())
	}
	cases := []struct {
		v    float64
		want int
	}{
		{-5, 0}, {0, 0}, {2.4, 0}, {2.6, 1}, {5.1, 2}, {7.6, 3}, {10, 3}, {99, 3},
	}
	for _, tt := range cases {
		if got := q.Level(tt.v); got != tt.want {
			t.Errorf("Level(%g) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestQuantizerDegenerate(t *testing.T) {
	q := UniformQuantizer([]float64{5, 5, 5}, 8)
	if q.Levels() != 1 || q.Level(5) != 0 || q.Level(100) != 0 {
		t.Error("constant samples should collapse to one level")
	}
	h := HistogramQuantizer(nil, 4, 64)
	if h.Levels() != 1 {
		t.Error("empty samples should collapse to one level")
	}
}

// Property: Level is monotone non-decreasing in the value.
func TestLevelMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = rng.NormFloat64() * 10
	}
	for _, q := range []*Quantizer{
		UniformQuantizer(samples, 8),
		HistogramQuantizer(samples, 8, 128),
	} {
		check := func(a, b float64) bool {
			if a > b {
				a, b = b, a
			}
			return q.Level(a) <= q.Level(b)
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHistogramQuantizerFindsClusters(t *testing.T) {
	// Three well-separated clusters must land in three distinct levels
	// with boundaries inside the gaps.
	rng := rand.New(rand.NewSource(7))
	var samples []float64
	centers := []float64{10, 50, 90}
	for i := 0; i < 900; i++ {
		samples = append(samples, centers[i%3]+rng.Float64()*2-1)
	}
	q := HistogramQuantizer(samples, 3, 256)
	levels := map[int]bool{}
	for _, c := range centers {
		lo, hi := q.Level(c-1), q.Level(c+1)
		if lo != hi {
			t.Errorf("cluster %g straddles levels %d and %d", c, lo, hi)
		}
		levels[lo] = true
	}
	if len(levels) != 3 {
		t.Errorf("clusters share levels: %v", levels)
	}
}

func TestHistogramBeatsUniformOnClusteredData(t *testing.T) {
	// Log-spaced clusters: uniform min/max wastes levels on the gaps.
	rng := rand.New(rand.NewSource(11))
	centers := []float64{0.1, 0.3, 1, 3, 10, 30}
	n := 3000
	in := make([][]float64, n)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		x := centers[rng.Intn(len(centers))] * (1 + 0.01*(rng.Float64()*2-1))
		in[i] = []float64{x}
		out[i] = x * x
	}
	cut := n * 3 / 4
	hist, err := BuildMemo(in[:cut], out[:cut], MemoConfig{AddressBits: 3, FineBins: 256})
	if err != nil {
		t.Fatal(err)
	}
	uni, err := BuildMemo(in[:cut], out[:cut], MemoConfig{AddressBits: 3, FineBins: 256, Uniform: true})
	if err != nil {
		t.Fatal(err)
	}
	ha := hist.Accuracy(in[cut:], out[cut:], 0.05)
	ua := uni.Accuracy(in[cut:], out[cut:], 0.05)
	if ha <= ua {
		t.Errorf("histogram accuracy %.3f should beat uniform %.3f on clustered data", ha, ua)
	}
	if ha < 0.95 {
		t.Errorf("histogram accuracy %.3f too low for separable clusters", ha)
	}
}

func TestBuildMemoLookupRoundTrip(t *testing.T) {
	// A function of two clustered inputs: table hits must predict
	// within tolerance; unseen regions must miss, not lie confidently.
	rng := rand.New(rand.NewSource(5))
	n := 2000
	in := make([][]float64, n)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(1 + rng.Intn(4))
		y := float64(10 * (1 + rng.Intn(3)))
		in[i] = []float64{x, y}
		out[i] = x*y + x
	}
	table, err := BuildMemo(in, out, MemoConfig{AddressBits: 6, FineBins: 64})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := table.Lookup([]float64{2, 20})
	if !ok {
		t.Fatal("miss on a trained input")
	}
	if RelDiff(42, v) > 0.05 {
		t.Errorf("Lookup(2,20) = %g, want ~42", v)
	}
	if acc := table.Accuracy(in, out, 0.05); acc < 0.99 {
		t.Errorf("training accuracy %.3f on exactly-clustered data", acc)
	}
}

func TestBuildMemoBitBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 1000
	in := make([][]float64, n)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 100 // only input that matters
		noise := rng.Float64()   // irrelevant input
		in[i] = []float64{x, noise}
		out[i] = 3 * x
	}
	table, err := BuildMemo(in, out, MemoConfig{AddressBits: 8, FineBins: 128})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range table.Bits {
		total += b
	}
	if total > 8 {
		t.Errorf("bit budget exceeded: %v", table.Bits)
	}
	if table.Bits[0] <= table.Bits[1] {
		t.Errorf("bit tuning gave the impactful input %d bits vs noise's %d",
			table.Bits[0], table.Bits[1])
	}
}

func TestBuildMemoErrors(t *testing.T) {
	if _, err := BuildMemo(nil, nil, MemoConfig{}); err == nil {
		t.Error("empty training set should error")
	}
	if _, err := BuildMemo([][]float64{{1}}, []float64{1, 2}, MemoConfig{}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := BuildMemo([][]float64{{}}, []float64{1}, MemoConfig{}); err == nil {
		t.Error("zero-input function should error")
	}
}

func TestMemoIndexWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 500
	in := make([][]float64, n)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		in[i] = []float64{rng.NormFloat64(), rng.NormFloat64() * 5}
		out[i] = in[i][0] + in[i][1]
	}
	table, err := BuildMemo(in, out, MemoConfig{AddressBits: 6, FineBins: 64})
	if err != nil {
		t.Fatal(err)
	}
	check := func(a, b float64) bool {
		idx := table.Index([]float64{a, b})
		return idx >= 0 && idx < len(table.Values)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileEdgesHelper(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	edges := quantileEdges(samples, 4)
	if len(edges) != 4 {
		t.Fatalf("edges = %v", edges)
	}
	if !sort.Float64sAreSorted(edges) {
		t.Errorf("quantile edges not sorted: %v", edges)
	}
}

func TestEncodedInputs(t *testing.T) {
	table := &MemoTable{Bits: []int{3, 0, 2, 0}}
	if table.EncodedInputs() != 2 {
		t.Errorf("EncodedInputs = %d, want 2", table.EncodedInputs())
	}
}

func TestAccuracyEmptyTestSet(t *testing.T) {
	table := &MemoTable{Bits: []int{1}, Quants: []*Quantizer{{Edges: []float64{0}}},
		Values: []float64{0, 0}, Filled: []bool{false, false}}
	if table.Accuracy(nil, nil, 0.1) != 0 {
		t.Error("empty test set accuracy should be 0")
	}
	if v, ok := table.Lookup([]float64{1}); ok || v != 0 {
		t.Error("cold cell must miss")
	}
	_ = math.Pi
}
