package transform

import "rskip/internal/ir"

// Optimize runs the classic scalar cleanups on a module: constant
// folding, block-local copy propagation, and dead-code elimination.
// MiniC lowering re-materializes constants and moves freely, so the
// pass typically removes 10-25% of static instructions.
//
// It must run BEFORE a protection transform: the protection passes tag
// and duplicate instructions, and removing a shadow or a check would
// change the fault-coverage story. ApplyRSkip/ApplySWIFT* reject
// nothing, so the pipeline order is the caller's contract (cmd/rskipc
// exposes it as -O).
func Optimize(m *ir.Module) {
	for _, f := range m.Funcs {
		for changed := true; changed; {
			changed = false
			if foldConstants(f) {
				changed = true
			}
			if propagateCopies(f) {
				changed = true
			}
			if eliminateDead(f) {
				changed = true
			}
		}
	}
}

// foldConstants evaluates integer arithmetic over block-local constant
// operands. Float folding is deliberately omitted: the machine's float
// semantics must match recompute's bit for bit, and folding at compile
// time risks double-rounding differences.
func foldConstants(f *ir.Func) bool {
	changed := false
	for bi := range f.Blocks {
		consts := map[ir.Reg]int64{}
		for ii := range f.Blocks[bi].Instrs {
			in := &f.Blocks[bi].Instrs[ii]
			switch in.Op {
			case ir.OpConstInt:
				consts[in.Dst] = in.Imm
				continue
			case ir.OpAdd, ir.OpSub, ir.OpMul:
				a, aok := consts[in.Args[0]]
				b, bok := consts[in.Args[1]]
				if aok && bok && f.TypeOf(in.Dst) == ir.Int {
					var v int64
					switch in.Op {
					case ir.OpAdd:
						v = a + b
					case ir.OpSub:
						v = a - b
					case ir.OpMul:
						v = a * b
					}
					*in = ir.Instr{Op: ir.OpConstInt, Dst: in.Dst, Imm: v, Tag: in.Tag}
					consts[in.Dst] = v
					changed = true
					continue
				}
			}
			// Any other write invalidates a previous constant binding.
			if in.Op.HasDst() && in.Dst != ir.NoReg {
				delete(consts, in.Dst)
			}
		}
	}
	return changed
}

// propagateCopies rewrites reads of `mov dst, src` destinations to read
// src directly while the copy relation holds within the block.
func propagateCopies(f *ir.Func) bool {
	changed := false
	for bi := range f.Blocks {
		copyOf := map[ir.Reg]ir.Reg{}
		invalidate := func(r ir.Reg) {
			delete(copyOf, r)
			for d, s := range copyOf {
				if s == r {
					delete(copyOf, d)
				}
			}
		}
		for ii := range f.Blocks[bi].Instrs {
			in := &f.Blocks[bi].Instrs[ii]
			for ai, a := range in.Args {
				if s, ok := copyOf[a]; ok {
					in.Args[ai] = s
					changed = true
				}
			}
			if !in.Op.HasDst() || in.Dst == ir.NoReg {
				continue
			}
			invalidate(in.Dst)
			if in.Op == ir.OpMov && in.Args[0] != in.Dst {
				copyOf[in.Dst] = in.Args[0]
			}
		}
	}
	return changed
}

// eliminateDead removes pure instructions whose destinations are never
// read before being overwritten, using a whole-function liveness
// approximation: a register is considered live if any instruction
// anywhere reads it after... conservatively, if any instruction reads
// it at all, unless the def is immediately overwritten within the same
// block with no intervening read. The conservative whole-function "is
// it read anywhere" rule is sound for the mutable-register IR.
func eliminateDead(f *ir.Func) bool {
	readAnywhere := map[ir.Reg]bool{}
	for bi := range f.Blocks {
		for ii := range f.Blocks[bi].Instrs {
			for _, a := range f.Blocks[bi].Instrs[ii].Args {
				readAnywhere[a] = true
			}
		}
	}
	changed := false
	for bi := range f.Blocks {
		out := f.Blocks[bi].Instrs[:0]
		for ii := range f.Blocks[bi].Instrs {
			in := f.Blocks[bi].Instrs[ii]
			if in.Op.IsPure() && in.Dst != ir.NoReg &&
				!readAnywhere[in.Dst] && int(in.Dst) >= len(f.Params) {
				changed = true
				continue
			}
			out = append(out, in)
		}
		f.Blocks[bi].Instrs = out
	}
	return changed
}

// OptimizeAndVerify runs Optimize and re-verifies the module,
// convenient for command-line pipelines.
func OptimizeAndVerify(m *ir.Module) error {
	Optimize(m)
	return ir.Verify(m)
}

// StaticInstrCount reports the module's static instruction count, the
// quantity the optimizer shrinks; exposed for tools and tests.
func StaticInstrCount(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		for bi := range f.Blocks {
			n += len(f.Blocks[bi].Instrs)
		}
	}
	return n
}
