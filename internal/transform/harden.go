package transform

import "rskip/internal/ir"

// ApplySWIFTRHard rewrites every non-internal function with the
// skip-hardened variant of SWIFT-R. Plain SWIFT-R assumes faults
// corrupt values; an instruction-skip fault (Moro et al.) instead
// deletes an effect, which opens two holes TMR voting cannot close:
//
//   - a skipped store loses the update silently (SDC): no later vote
//     inspects memory, so all three register copies agree on a value
//     that never landed;
//   - a skipped address-forming mov leaves one copy of a load address
//     stale (first iteration: the zero a fresh register starts with),
//     so the load itself dereferences garbage (segfault) before any
//     synchronization point votes on its result.
//
// The hard duplicator closes both: load addresses are majority-voted
// immediately before the load consumes them (the vote repairs the
// master and rewrites both shadows), and every store is issued twice —
// idempotent, since both copies write the already-voted value, so a
// single skip always leaves one intact. Combined with control-flow
// checking (the swiftrhard scheme runs the cfc pass after this one) to
// catch skipped terminators, a single instruction-skip of any width-1
// burst is either masked or detected; the exhaustive enumerator in
// internal/fault proves this on the micro-kernels.
func ApplySWIFTRHard(m *ir.Module) {
	for _, f := range m.Funcs {
		if !f.Internal {
			dupFunc(&duplicator{f: f, copies: 2, hard: true})
		}
	}
}
