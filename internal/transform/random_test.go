package transform

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rskip/internal/ir"
	"rskip/internal/machine"
)

// randomProgram builds a random but well-formed module: straight-line
// integer arithmetic over the parameters with a loop around it and a
// store of the final value, exercising the duplicator across arbitrary
// dataflow shapes.
func randomProgram(rng *rand.Rand) *ir.Module {
	b := ir.NewBuilder("kernel", []ir.Param{
		{Name: "out", Type: ir.Ptr},
		{Name: "a", Type: ir.Int},
		{Name: "b", Type: ir.Int},
		{Name: "n", Type: ir.Int},
	}, ir.Int)

	// i = 0
	iv := b.F.NewReg(ir.Int)
	zero := b.ConstInt(0)
	b.Mov(iv, zero)
	cond := b.NewBlock("cond")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(cond)

	b.SetBlock(cond)
	three := b.ConstInt(3)
	c := b.Binop(ir.OpLt, ir.Int, iv, three)
	b.CondBr(c, body, exit)

	b.SetBlock(body)
	// Random arithmetic DAG over {a, b, iv, constants}.
	avail := []ir.Reg{1, 2, iv}
	ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor}
	n := 3 + rng.Intn(12)
	for k := 0; k < n; k++ {
		if rng.Intn(4) == 0 {
			avail = append(avail, b.ConstInt(int64(rng.Intn(64))))
			continue
		}
		op := ops[rng.Intn(len(ops))]
		x := avail[rng.Intn(len(avail))]
		y := avail[rng.Intn(len(avail))]
		avail = append(avail, b.Binop(op, ir.Int, x, y))
	}
	val := avail[len(avail)-1]
	addr := b.Binop(ir.OpAdd, ir.Ptr, 0, iv)
	b.Store(addr, val)
	one := b.ConstInt(1)
	next := b.Binop(ir.OpAdd, ir.Int, iv, one)
	b.Mov(iv, next)
	b.Br(cond)

	b.SetBlock(exit)
	b.Ret(val)
	return &ir.Module{Name: "rand", Funcs: []*ir.Func{b.F}}
}

func runRandom(t *testing.T, mod *ir.Module, a, b int64) (uint64, []int64) {
	t.Helper()
	m := machine.New(mod, machine.Config{TraceFn: -1})
	out := m.Mem.Alloc(8)
	res, err := m.Run(0, []uint64{uint64(out), uint64(a), uint64(b), 3})
	if err != nil {
		t.Fatalf("random program failed: %v\n%s", err, mod)
	}
	return res.Ret, m.Mem.ReadInts(out, 3)
}

// TestDuplicationEquivalenceOnRandomPrograms is the transform's core
// property: SWIFT and SWIFT-R never change fault-free semantics, for
// arbitrary dataflow.
func TestDuplicationEquivalenceOnRandomPrograms(t *testing.T) {
	check := func(seed int64, rawA, rawB int32) bool {
		rng := rand.New(rand.NewSource(seed))
		mod := randomProgram(rng)
		if err := ir.Verify(mod); err != nil {
			t.Fatalf("generator produced invalid IR: %v", err)
		}
		a, bv := int64(rawA), int64(rawB)
		ret0, mem0 := runRandom(t, mod, a, bv)

		sw := mod.Clone()
		ApplySWIFT(sw)
		if err := ir.Verify(sw); err != nil {
			t.Fatalf("SWIFT invalid: %v", err)
		}
		ret1, mem1 := runRandom(t, sw, a, bv)

		tmr := mod.Clone()
		ApplySWIFTR(tmr)
		if err := ir.Verify(tmr); err != nil {
			t.Fatalf("SWIFT-R invalid: %v", err)
		}
		ret2, mem2 := runRandom(t, tmr, a, bv)

		if ret0 != ret1 || ret0 != ret2 {
			return false
		}
		for i := range mem0 {
			if mem0[i] != mem1[i] || mem0[i] != mem2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestOptimizerEquivalenceOnRandomPrograms: the scalar optimizer is
// semantics-preserving on arbitrary dataflow too.
func TestOptimizerEquivalenceOnRandomPrograms(t *testing.T) {
	check := func(seed int64, rawA, rawB int32) bool {
		rng := rand.New(rand.NewSource(seed))
		mod := randomProgram(rng)
		a, bv := int64(rawA), int64(rawB)
		ret0, mem0 := runRandom(t, mod, a, bv)
		opt := mod.Clone()
		Optimize(opt)
		if err := ir.Verify(opt); err != nil {
			t.Fatalf("optimized IR invalid: %v", err)
		}
		ret1, mem1 := runRandom(t, opt, a, bv)
		if ret0 != ret1 {
			return false
		}
		for i := range mem0 {
			if mem0[i] != mem1[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
