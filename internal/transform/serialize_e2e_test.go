package transform

import (
	"bytes"
	"testing"

	"rskip/internal/analysis"
	"rskip/internal/ir"
)

// TestTransformedModuleSurvivesSerialization round-trips a fully
// transformed (PP + SWIFT-R) module through the .rir format and checks
// that the reloaded module behaves identically.
func TestTransformedModuleSurvivesSerialization(t *testing.T) {
	mod := compile(t, kernelSrc)
	rsk, err := ApplyRSkip(mod, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rsk.MarshalText(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := ir.UnmarshalText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(reloaded.Loops) != len(rsk.Loops) {
		t.Fatalf("loop metadata lost: %d vs %d", len(reloaded.Loops), len(rsk.Loops))
	}
	a := runKernel(t, rsk, nil, 12)
	b := runKernel(t, reloaded, nil, 12)
	if !outputsEqual(a, b) {
		t.Fatal("reloaded module computes different outputs")
	}
	// Tags must survive (the fault campaign depends on them).
	countTag := func(m *ir.Module, tag ir.InstrTag) int {
		n := 0
		for _, f := range m.Funcs {
			for bi := range f.Blocks {
				for ii := range f.Blocks[bi].Instrs {
					if f.Blocks[bi].Instrs[ii].Tag == tag {
						n++
					}
				}
			}
		}
		return n
	}
	for _, tag := range []ir.InstrTag{ir.TagValue, ir.TagShadow, ir.TagCheck, ir.TagRuntime} {
		if countTag(rsk, tag) != countTag(reloaded, tag) {
			t.Errorf("tag %v count changed across serialization", tag)
		}
	}
}
