package transform

import (
	"testing"

	"rskip/internal/ir"
)

func TestSWIFTRHardPreservesSemantics(t *testing.T) {
	mod := compile(t, kernelSrc)
	golden := runKernel(t, mod, nil, 12)
	hard := mod.Clone()
	ApplySWIFTRHard(hard)
	if err := ir.Verify(hard); err != nil {
		t.Fatalf("SWIFT-R-HARD output invalid: %v", err)
	}
	got := runKernel(t, hard, nil, 12)
	for i := range golden {
		if got[i] != golden[i] {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], golden[i])
		}
	}
}

// The hard duplicator's two skip counter-measures must be visible in
// the emitted IR: every non-PP store appears twice (the duplicate
// tagged as shadow work), and every load is preceded by a vote on its
// address registers, so the hardened module carries strictly more
// checks than plain SWIFT-R.
func TestSWIFTRHardStructure(t *testing.T) {
	mod := compile(t, kernelSrc)
	tmr := mod.Clone()
	ApplySWIFTR(tmr)
	hard := mod.Clone()
	ApplySWIFTRHard(hard)

	count := func(m *ir.Module, op ir.Op, tag ir.InstrTag, wantTag bool) int {
		n := 0
		for _, f := range m.Funcs {
			for bi := range f.Blocks {
				for _, in := range f.Blocks[bi].Instrs {
					if in.Op == op && (!wantTag || in.Tag == tag) {
						n++
					}
				}
			}
		}
		return n
	}

	tmrStores := count(tmr, ir.OpStore, 0, false)
	hardStores := count(hard, ir.OpStore, 0, false)
	if hardStores != 2*tmrStores {
		t.Errorf("hardened module has %d stores, want exactly double SWIFT-R's %d", hardStores, tmrStores)
	}
	if n := count(hard, ir.OpStore, ir.TagShadow, true); n != tmrStores {
		t.Errorf("%d shadow-tagged duplicate stores, want %d", n, tmrStores)
	}
	tmrVotes := count(tmr, ir.OpVote3, 0, false)
	hardVotes := count(hard, ir.OpVote3, 0, false)
	if hardVotes <= tmrVotes {
		t.Errorf("hardened module has %d votes, want more than SWIFT-R's %d (load addresses must be voted)", hardVotes, tmrVotes)
	}
}

// A single skipped store must not lose the update: deleting either
// copy of a duplicated store from the IR leaves a module that still
// computes the golden output (the duplicate is idempotent).
func TestSWIFTRHardStoreDuplicateIsIdempotent(t *testing.T) {
	mod := compile(t, kernelSrc)
	golden := runKernel(t, mod, nil, 12)
	for drop := 0; drop < 2; drop++ {
		hard := mod.Clone()
		ApplySWIFTRHard(hard)
		// Remove the first or second copy of the first duplicated
		// store pair in the kernel.
		fi := hard.FuncByName("kernel")
		removed := false
	blocks:
		for bi := range hard.Funcs[fi].Blocks {
			instrs := hard.Funcs[fi].Blocks[bi].Instrs
			for ii := 0; ii+1 < len(instrs); ii++ {
				if instrs[ii].Op == ir.OpStore && instrs[ii+1].Op == ir.OpStore {
					cut := ii + drop
					hard.Funcs[fi].Blocks[bi].Instrs = append(instrs[:cut:cut], instrs[cut+1:]...)
					removed = true
					break blocks
				}
			}
		}
		if !removed {
			t.Fatal("no duplicated store pair found in the hardened kernel")
		}
		got := runKernel(t, hard, nil, 12)
		for i := range golden {
			if got[i] != golden[i] {
				t.Fatalf("dropping store copy %d: out[%d] = %d, want %d", drop, i, got[i], golden[i])
			}
		}
	}
}
