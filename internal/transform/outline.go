package transform

import (
	"fmt"

	"rskip/internal/analysis"
	"rskip/internal/ir"
)

// buildRecompute outlines one iteration of a candidate loop's body
// into a standalone function:
//
//	func <kernel>$recompute<loop>(iter int, ivInit int, inv... ) value
//
// The function reconstructs the induction variable as
// ivInit + iter*step, re-executes the body, and returns the value the
// hot store would have written. The run-time management system calls
// it for suspected faults ("further investigation") and again for
// TMR-style recovery. It must be built from the *untransformed* loop,
// before hooks and tags are inserted.
func buildRecompute(m *ir.Module, c *analysis.Candidate, name string) *ir.Func {
	src := m.Funcs[c.Func]
	valType := ir.Int
	if c.ValueFloat {
		valType = ir.Float
	}
	params := make([]ir.Param, 0, 2+len(c.Invariants))
	params = append(params,
		ir.Param{Name: "iter", Type: ir.Int},
		ir.Param{Name: "ivinit", Type: ir.Int})
	for i, r := range c.Invariants {
		params = append(params, ir.Param{
			Name: fmt.Sprintf("inv%d", i), Type: src.TypeOf(r)})
	}
	nf := &ir.Func{Name: name, Params: params, Ret: valType, Internal: true}
	for _, p := range params {
		nf.NewReg(p.Type)
	}

	// Register mapping: IV and invariants come from parameters; every
	// other source register gets a fresh local on first mention.
	regMap := map[ir.Reg]ir.Reg{}
	for i, r := range c.Invariants {
		regMap[r] = ir.Reg(2 + i)
	}
	mapReg := func(r ir.Reg) ir.Reg {
		if r == ir.NoReg {
			return ir.NoReg
		}
		if nr, ok := regMap[r]; ok {
			return nr
		}
		nr := nf.NewReg(src.TypeOf(r))
		regMap[r] = nr
		return nr
	}

	// Block layout: 0 = entry, 1..n = region blocks, last = done stub.
	blockMap := map[int]int{}
	nf.Blocks = append(nf.Blocks, ir.Block{Name: "entry"})
	for _, b := range sortedKeys(c.Region) {
		blockMap[b] = len(nf.Blocks)
		nf.Blocks = append(nf.Blocks, ir.Block{Name: src.Blocks[b].Name})
	}
	done := len(nf.Blocks)
	nf.Blocks = append(nf.Blocks, ir.Block{Name: "done"})

	// Entry: iv = ivInit + iter*step; br body.
	ivReg := nf.NewReg(ir.Int)
	regMap[c.IV] = ivReg
	stepReg := nf.NewReg(ir.Int)
	mulReg := nf.NewReg(ir.Int)
	entry := &nf.Blocks[0]
	entry.Instrs = append(entry.Instrs,
		ir.Instr{Op: ir.OpConstInt, Dst: stepReg, Imm: c.Step},
		ir.Instr{Op: ir.OpMul, Dst: mulReg, Args: []ir.Reg{0, stepReg}},
		ir.Instr{Op: ir.OpAdd, Dst: ivReg, Args: []ir.Reg{1, mulReg}},
		ir.Instr{Op: ir.OpBr, Blocks: []int{blockMap[c.BodyEntry]}},
	)

	mapTarget := func(t int) int {
		if nt, ok := blockMap[t]; ok {
			return nt
		}
		return done // edges to header/latch/exits end the iteration
	}

	for _, ob := range sortedKeys(c.Region) {
		nb := &nf.Blocks[blockMap[ob]]
		for ii := range src.Blocks[ob].Instrs {
			in := src.Blocks[ob].Instrs[ii]
			if ob == c.StoreBlock && ii == c.StoreIdx {
				// The hot store becomes the return.
				nb.Instrs = append(nb.Instrs, ir.Instr{
					Op: ir.OpRet, Args: []ir.Reg{mapReg(in.Args[1])}})
				break // anything after the store is dead in the slice
			}
			clone := in
			clone.Args = make([]ir.Reg, len(in.Args))
			for i, a := range in.Args {
				clone.Args[i] = mapReg(a)
			}
			if in.Op.HasDst() && in.Dst != ir.NoReg {
				clone.Dst = mapReg(in.Dst)
			}
			clone.Blocks = make([]int, len(in.Blocks))
			for i, t := range in.Blocks {
				clone.Blocks[i] = mapTarget(t)
			}
			clone.Tag = ir.TagNone
			nb.Instrs = append(nb.Instrs, clone)
		}
		// Blocks cut short by the return already terminate; others keep
		// their (retargeted) terminators.
	}

	// Done stub: executing it means the iteration ended without hitting
	// the hot store, which cannot happen for a valid candidate (its
	// store block dominates the latch); return a zero to stay total.
	dn := &nf.Blocks[done]
	zero := nf.NewReg(valType)
	if c.ValueFloat {
		dn.Instrs = append(dn.Instrs, ir.Instr{Op: ir.OpConstFloat, Dst: zero})
	} else {
		dn.Instrs = append(dn.Instrs, ir.Instr{Op: ir.OpConstInt, Dst: zero})
	}
	dn.Instrs = append(dn.Instrs, ir.Instr{Op: ir.OpRet, Args: []ir.Reg{zero}})
	return nf
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
