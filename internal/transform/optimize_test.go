package transform

import (
	"testing"

	"rskip/internal/analysis"
	"rskip/internal/ir"
	"rskip/internal/machine"
)

// runKernelWith reuses the transform test harness on a named module.
func outputsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOptimizePreservesSemantics(t *testing.T) {
	srcs := []string{
		kernelSrc,
		`
int helper(int x) { return x * 2 + 3; }
void kernel(int a[], int out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		int s = 0;
		for (int j = 0; j < 5; j = j + 1) {
			s = s + helper(a[i + j]) - a[i] / (j + 1);
		}
		out[i] = s;
	}
}`,
		`
void kernel(int a[], int out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		int x = 3 * 4 + 5;
		int y = x;
		int s = 0;
		for (int j = 0; j < 4; j = j + 1) { s = s + a[i + j] * y; }
		out[i] = s - x;
	}
}`,
	}
	for _, src := range srcs {
		mod := compile(t, src)
		golden := runKernel(t, mod, nil, 10)
		opt := mod.Clone()
		Optimize(opt)
		if err := ir.Verify(opt); err != nil {
			t.Fatalf("optimized module invalid: %v", err)
		}
		got := runKernel(t, opt, nil, 10)
		if !outputsEqual(golden, got) {
			t.Fatalf("optimization changed semantics:\n%v\n%v", golden, got)
		}
	}
}

func TestOptimizeShrinks(t *testing.T) {
	mod := compile(t, `
void kernel(int a[], int out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		int c = 2 + 3;
		int unused = c * 100;
		int s = 0;
		for (int j = 0; j < 4; j = j + 1) { s = s + a[i + j] * c; }
		out[i] = s;
	}
}`)
	before := StaticInstrCount(mod)
	Optimize(mod)
	after := StaticInstrCount(mod)
	if after >= before {
		t.Errorf("optimizer did not shrink: %d -> %d", before, after)
	}
	// The dead `unused` computation must be gone.
	m := machine.New(mod, machine.Config{TraceFn: -1})
	a := m.Mem.Alloc(16)
	out := m.Mem.Alloc(8)
	res, err := m.Run(mod.FuncByName("kernel"), []uint64{uint64(a), uint64(out), 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instrs == 0 {
		t.Fatal("no execution")
	}
}

func TestOptimizeFoldsConstants(t *testing.T) {
	mod := compile(t, `int f() { return (2 + 3) * (4 - 1); }`)
	Optimize(mod)
	// The function should collapse to const + ret (plus possibly a
	// leftover move).
	n := StaticInstrCount(mod)
	if n > 3 {
		t.Errorf("constant expression left %d instructions", n)
	}
	m := machine.New(mod, machine.Config{TraceFn: -1})
	res, err := m.Run(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.Ret) != 15 {
		t.Errorf("folded result = %d, want 15", int64(res.Ret))
	}
}

func TestOptimizeThenProtectStillWorks(t *testing.T) {
	// The intended pipeline: optimize first, protect second.
	mod := compile(t, kernelSrc)
	golden := runKernel(t, mod, nil, 12)
	Optimize(mod)
	tmr := mod.Clone()
	ApplySWIFTR(tmr)
	if err := ir.Verify(tmr); err != nil {
		t.Fatal(err)
	}
	if !outputsEqual(golden, runKernel(t, tmr, nil, 12)) {
		t.Fatal("optimize+SWIFT-R changed semantics")
	}
	// And through the full RSkip transform.
	rsk, err := ApplyRSkip(mod, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rsk.Loops) == 0 {
		t.Fatal("optimization destroyed the candidate loop")
	}
}

func TestOptimizeKeepsCopySemantics(t *testing.T) {
	// x = a; a = a + 1; use x — propagation must not substitute the
	// updated a for x.
	mod := compile(t, `
int f(int a) {
	int x = a;
	a = a + 1;
	return x * 10 + a;
}`)
	Optimize(mod)
	m := machine.New(mod, machine.Config{TraceFn: -1})
	res, err := m.Run(0, []uint64{5})
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.Ret) != 5*10+6 {
		t.Errorf("got %d, want 56", int64(res.Ret))
	}
}
