package transform

import (
	"fmt"

	"rskip/internal/analysis"
	"rskip/internal/ir"
)

// ApplyRSkip transforms the module into its prediction-protected form:
//
//  1. detect candidate loops (analysis.FindCandidates);
//  2. for each, outline a recompute slice, plant run-time management
//     hooks (LoopEnter with invariants, Observe before the hot store,
//     LoopExit on loop exits) and tag the value slice;
//  3. leave value slices and their callees unprotected (prediction
//     validates them), and
//  4. apply SWIFT-R to everything else — induction variables, address
//     computation, loop control, and all non-candidate code.
//
// The returned module carries ir.LoopInfo metadata consumed by the
// run-time management system.
func ApplyRSkip(src *ir.Module, opt analysis.Options) (*ir.Module, error) {
	m := src.Clone()
	if err := RSkipInPlace(m, opt, analysis.NewManager(m)); err != nil {
		return nil, err
	}
	return m, nil
}

// RSkipInPlace is ApplyRSkip without the defensive clone: it rewrites
// m directly, pulling every analysis (candidate detection, CFG,
// dominators, loops, cost) from the supplied Manager. The pass-manager
// pipeline calls it so a candidate set already computed on the
// unprotected module can be seeded into the fixpoint instead of
// recomputed. A nil manager gets a fresh one.
func RSkipInPlace(m *ir.Module, opt analysis.Options, am *analysis.Manager) error {
	if am == nil {
		am = analysis.NewManager(m)
	}
	nextID := 0
	// Re-analyze after each rewrite: insertions shift instruction
	// indexes, and examineLoop rejects already-transformed loops, so
	// the fixpoint terminates. Each rewrite invalidates the mutated
	// function so the next iteration sees fresh indexes; within one
	// rewrite the cached CFG/dominators/loops stay valid because
	// instruction insertion never adds blocks or touches terminators.
	for {
		cands := am.Candidates(opt)
		if len(cands) == 0 {
			break
		}
		c := cands[0]
		if err := transformCandidate(m, am, &c, nextID); err != nil {
			return err
		}
		am.Invalidate(c.Func)
		nextID++
	}
	if err := isolateValueCallees(m); err != nil {
		return err
	}
	if err := checkValueInterface(m); err != nil {
		return err
	}
	ApplySWIFTR(m)
	am.InvalidateAll()
	if err := ir.Verify(m); err != nil {
		return fmt.Errorf("transform: rskip produced invalid IR: %w", err)
	}
	return nil
}

// Candidates reports the candidate loops the transform would protect,
// for diagnostics (cmd/rskipc) and the Table 1 inventory.
func Candidates(m *ir.Module, opt analysis.Options) []analysis.Candidate {
	return analysis.FindCandidates(m, opt)
}

func transformCandidate(m *ir.Module, am *analysis.Manager, c *analysis.Candidate, id int) error {
	f := m.Funcs[c.Func]
	name := fmt.Sprintf("%s$recompute%d", f.Name, id)
	rec := buildRecompute(m, c, name)
	recIdx := len(m.Funcs)
	m.Funcs = append(m.Funcs, rec)

	// Detect the memoizable pattern: the stored value is (a move of)
	// a direct user-call result, i.e. Figure 4a.
	memoFn := findMemoCallee(f, c)

	// Tag the value slice and the hot-store address chain before any
	// instruction insertion shifts indexes.
	tagCandidate(f, am.Func(c.Func), c)

	// Allocate the per-invocation iteration counter.
	iterReg := f.NewReg(ir.Int)
	oneReg := f.NewReg(ir.Int)

	// Preheader: iter = 0; one = 1; rt.enter #id iv, invs...
	pre := &f.Blocks[c.Preheader]
	enterArgs := append([]ir.Reg{c.IV}, c.Invariants...)
	insertBefore(pre, len(pre.Instrs)-1,
		ir.Instr{Op: ir.OpConstInt, Dst: iterReg, Imm: 0},
		ir.Instr{Op: ir.OpConstInt, Dst: oneReg, Imm: 1},
		ir.Instr{Op: ir.OpRTLoopEnter, Imm: int64(id), Args: enterArgs, Tag: ir.TagRuntime},
	)

	// Hot store block: rt.observe #id iter, value, addr — placed just
	// before the store so the hook can buffer the pre-store value of
	// read-modify-write locations.
	sb := &f.Blocks[c.StoreBlock]
	insertBefore(sb, c.StoreIdx,
		ir.Instr{Op: ir.OpRTObserve, Imm: int64(id),
			Args: []ir.Reg{iterReg, c.ValueReg, c.AddrReg}, Tag: ir.TagRuntime},
	)

	// Latch: iter = iter + 1 (protected by duplication like any other
	// induction update).
	la := &f.Blocks[c.Latch]
	insertBefore(la, 0,
		ir.Instr{Op: ir.OpAdd, Dst: iterReg, Args: []ir.Reg{iterReg, oneReg}},
	)

	// Loop exits: rt.exit #id flushes the final phase. The cached loop
	// forest is still valid — the insertions above touched no
	// terminator, so block structure is unchanged.
	loops := am.Func(c.Func).Loops
	for li := range loops {
		if loops[li].Header != c.Header {
			continue
		}
		for _, ex := range loops[li].Exits {
			eb := &f.Blocks[ex]
			insertBefore(eb, 0,
				ir.Instr{Op: ir.OpRTLoopExit, Imm: int64(id), Tag: ir.TagRuntime})
		}
		break
	}

	li := ir.LoopInfo{
		ID:            id,
		Func:          c.Func,
		Name:          c.Name(m),
		RecomputeFn:   recIdx,
		SelfRead:      true, // pre-store values are always buffered
		MemoFn:        memoFn,
		NumInvariants: 1 + len(c.Invariants),
		ValueIsFloat:  c.ValueFloat,
	}
	if ar, ok := m.PragmaFor(c.Func, c.Header); ok {
		li.HasAROverride = true
		li.AROverride = ar
	}
	m.Loops = append(m.Loops, li)
	return nil
}

// insertBefore splices instructions into a block ahead of index idx.
func insertBefore(b *ir.Block, idx int, ins ...ir.Instr) {
	out := make([]ir.Instr, 0, len(b.Instrs)+len(ins))
	out = append(out, b.Instrs[:idx]...)
	out = append(out, ins...)
	out = append(out, b.Instrs[idx:]...)
	b.Instrs = out
}

// tagCandidate marks region instructions: the hot-store address chain
// stays conventionally protected (TagAddress), everything else in the
// region becomes the prediction-covered value slice (TagValue),
// including the hot store itself (whose address operand the duplicator
// still votes).
func tagCandidate(f *ir.Func, fa *analysis.FuncAnalyses, c *analysis.Candidate) {
	// Backward slice of the address register: scan the store block
	// upward, then follow the immediate-dominator chain within the
	// region.
	idom := fa.Idom
	wanted := map[ir.Reg]bool{c.AddrReg: true}
	type mark struct{ b, i int }
	var addr []mark
	scan := func(b, from int) {
		for ii := from; ii >= 0; ii-- {
			in := &f.Blocks[b].Instrs[ii]
			if !in.Op.HasDst() || in.Dst == ir.NoReg || !wanted[in.Dst] {
				continue
			}
			addr = append(addr, mark{b, ii})
			delete(wanted, in.Dst)
			if !in.Op.IsPure() {
				continue
			}
			for _, a := range in.Args {
				if a != c.IV && !isInvariant(c, a) {
					wanted[a] = true
				}
			}
		}
	}
	scan(c.StoreBlock, c.StoreIdx-1)
	for b := idom[c.StoreBlock]; len(wanted) > 0 && c.Region[b]; b = idom[b] {
		scan(b, len(f.Blocks[b].Instrs)-1)
		if b == idom[b] {
			break
		}
	}

	isAddr := map[mark]bool{}
	for _, mk := range addr {
		isAddr[mk] = true
	}
	for b := range c.Region {
		for ii := range f.Blocks[b].Instrs {
			in := &f.Blocks[b].Instrs[ii]
			switch {
			case isAddr[mark{b, ii}]:
				in.Tag = ir.TagAddress
			default:
				in.Tag = ir.TagValue
			}
		}
	}
	// The hot store carries TagValue: the duplicator votes only its
	// address operand.
	f.Blocks[c.StoreBlock].Instrs[c.StoreIdx].Tag = ir.TagValue
}

func isInvariant(c *analysis.Candidate, r ir.Reg) bool {
	for _, inv := range c.Invariants {
		if inv == r {
			return true
		}
	}
	return false
}

// findMemoCallee recognizes Figure 4a (the stored value is a direct
// user-call result) and returns the callee index for the approximate
// memoization table, or -1.
func findMemoCallee(f *ir.Func, c *analysis.Candidate) int {
	target := c.ValueReg
	// Follow at most a few move steps backward through the region.
	for hop := 0; hop < 4; hop++ {
		var def *ir.Instr
		ndefs := 0
		for b := range c.Region {
			for ii := range f.Blocks[b].Instrs {
				in := &f.Blocks[b].Instrs[ii]
				if in.Op.HasDst() && in.Dst == target {
					def = in
					ndefs++
				}
			}
		}
		if ndefs != 1 || def == nil {
			return -1
		}
		switch def.Op {
		case ir.OpCall:
			return def.Callee
		case ir.OpMov:
			target = def.Args[0]
		default:
			return -1
		}
	}
	return -1
}

// isolateValueCallees marks functions reachable only from value slices
// (and recompute slices) as internal so the duplication pass leaves
// them unprotected — their results are prediction-validated. Functions
// called from both protected and value contexts are cloned: the value
// context gets an unprotected copy.
func isolateValueCallees(m *ir.Module) error {
	type ctx struct{ value, protected bool }
	use := map[int]*ctx{}
	record := func(callee int, value bool) {
		c := use[callee]
		if c == nil {
			c = &ctx{}
			use[callee] = c
		}
		if value {
			c.value = true
		} else {
			c.protected = true
		}
	}
	for _, f := range m.Funcs {
		for bi := range f.Blocks {
			for ii := range f.Blocks[bi].Instrs {
				in := &f.Blocks[bi].Instrs[ii]
				if in.Op != ir.OpCall {
					continue
				}
				record(in.Callee, f.Internal || in.Tag == ir.TagValue)
			}
		}
	}
	// Propagate value-context reachability transitively.
	for changed := true; changed; {
		changed = false
		for fi, f := range m.Funcs {
			c := use[fi]
			inValue := f.Internal || (c != nil && c.value)
			if !inValue {
				continue
			}
			for bi := range f.Blocks {
				for ii := range f.Blocks[bi].Instrs {
					in := &f.Blocks[bi].Instrs[ii]
					if in.Op != ir.OpCall {
						continue
					}
					cc := use[in.Callee]
					if cc == nil || !cc.value {
						record(in.Callee, true)
						changed = true
					}
				}
			}
		}
	}
	// Clone shared functions, retargeting value-context call sites.
	cloneOf := map[int]int{}
	for fi, c := range use {
		if !c.value {
			continue
		}
		if c.protected {
			clone := m.Funcs[fi].Clone()
			clone.Name += "$unprot"
			clone.Internal = true
			cloneOf[fi] = len(m.Funcs)
			m.Funcs = append(m.Funcs, clone)
		} else {
			m.Funcs[fi].Internal = true
		}
	}
	if len(cloneOf) == 0 {
		return nil
	}
	for _, f := range m.Funcs {
		for bi := range f.Blocks {
			for ii := range f.Blocks[bi].Instrs {
				in := &f.Blocks[bi].Instrs[ii]
				if in.Op != ir.OpCall {
					continue
				}
				if nc, ok := cloneOf[in.Callee]; ok && (f.Internal || in.Tag == ir.TagValue) {
					in.Callee = nc
				}
			}
		}
	}
	return nil
}

// checkValueInterface verifies the value slices only feed protected
// code through the hot store's value operand and the observe hook; any
// other flow would leave a protected consumer reading an unvalidated
// register. Candidate detection should prevent this — the check guards
// the invariant.
func checkValueInterface(m *ir.Module) error {
	for _, f := range m.Funcs {
		if f.Internal {
			continue
		}
		valueDefs := map[ir.Reg]bool{}
		for bi := range f.Blocks {
			for ii := range f.Blocks[bi].Instrs {
				in := &f.Blocks[bi].Instrs[ii]
				if in.Tag == ir.TagValue && in.Op.HasDst() && in.Dst != ir.NoReg {
					valueDefs[in.Dst] = true
				}
			}
		}
		if len(valueDefs) == 0 {
			continue
		}
		for bi := range f.Blocks {
			for ii := range f.Blocks[bi].Instrs {
				in := &f.Blocks[bi].Instrs[ii]
				if in.Tag == ir.TagValue || in.Tag == ir.TagRuntime {
					continue
				}
				for _, a := range in.Args {
					if valueDefs[a] {
						return fmt.Errorf(
							"transform: %s: protected %s reads prediction-covered register %v",
							f.Name, in.Op, a)
					}
				}
			}
		}
	}
	return nil
}
