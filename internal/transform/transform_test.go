package transform

import (
	"errors"
	"math"
	"testing"

	"rskip/internal/analysis"
	"rskip/internal/ir"
	"rskip/internal/lower"
	"rskip/internal/machine"
)

const kernelSrc = `
void kernel(int a[], int out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		int s = 0;
		for (int j = 0; j < 6; j = j + 1) {
			s = s + a[i + j] * (j + 1);
		}
		out[i] = s;
	}
}
`

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	mod, err := lower.Compile("test", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return mod
}

// runKernel executes kernel(a, out, n) and returns out.
func runKernel(t *testing.T, mod *ir.Module, hooks machine.Hooks, n int) []int64 {
	t.Helper()
	m := machine.New(mod, machine.Config{Hooks: hooks, TraceFn: -1})
	a := m.Mem.Alloc(int64(n + 8))
	for i := 0; i < n+8; i++ {
		m.Mem.SetInt(a+int64(i), int64(10+3*i))
	}
	out := m.Mem.Alloc(int64(n))
	fi := mod.FuncByName("kernel")
	if _, err := m.Run(fi, []uint64{uint64(a), uint64(out), uint64(n)}); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m.Mem.ReadInts(out, n)
}

func TestSWIFTPreservesSemantics(t *testing.T) {
	mod := compile(t, kernelSrc)
	golden := runKernel(t, mod, nil, 12)
	dup := mod.Clone()
	ApplySWIFT(dup)
	if err := ir.Verify(dup); err != nil {
		t.Fatalf("SWIFT output invalid: %v", err)
	}
	got := runKernel(t, dup, nil, 12)
	for i := range golden {
		if got[i] != golden[i] {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], golden[i])
		}
	}
}

func TestSWIFTRPreservesSemantics(t *testing.T) {
	mod := compile(t, kernelSrc)
	golden := runKernel(t, mod, nil, 12)
	tmr := mod.Clone()
	ApplySWIFTR(tmr)
	if err := ir.Verify(tmr); err != nil {
		t.Fatalf("SWIFT-R output invalid: %v", err)
	}
	got := runKernel(t, tmr, nil, 12)
	for i := range golden {
		if got[i] != golden[i] {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], golden[i])
		}
	}
}

func countInstrs(mod *ir.Module) int {
	n := 0
	for _, f := range mod.Funcs {
		for bi := range f.Blocks {
			n += len(f.Blocks[bi].Instrs)
		}
	}
	return n
}

func TestDuplicationGrowth(t *testing.T) {
	mod := compile(t, kernelSrc)
	base := countInstrs(mod)
	sw := mod.Clone()
	ApplySWIFT(sw)
	tmr := mod.Clone()
	ApplySWIFTR(tmr)
	if c := countInstrs(sw); c < base*3/2 {
		t.Errorf("SWIFT grew %d -> %d, expected ~2x", base, c)
	}
	swc, tmrc := countInstrs(sw), countInstrs(tmr)
	if tmrc <= swc {
		t.Errorf("SWIFT-R (%d) must be bigger than SWIFT (%d)", tmrc, swc)
	}
}

func TestSWIFTRRecoversFromShadowCorruption(t *testing.T) {
	// A register-file strike on any single copy must be outvoted:
	// sweep many strike points and demand bit-identical output or a
	// classified abnormal end (never silent corruption of more than
	// the struck element's own vote).
	mod := compile(t, kernelSrc)
	tmr := mod.Clone()
	ApplySWIFTR(tmr)
	golden := runKernel(t, tmr, nil, 10)
	fi := tmr.FuncByName("kernel")
	region := map[int]bool{}
	for bi := range tmr.Funcs[fi].Blocks {
		region[bi] = true
	}
	sdc := 0
	total := 0
	for target := uint64(0); target < 400; target += 7 {
		m := machine.New(tmr, machine.Config{
			RegionBlocks: map[int]map[int]bool{fi: region},
			Fault: &machine.FaultPlan{
				Kind: machine.FaultRegFile, Target: target, Bit: 9, Pick: int(target) * 13,
			},
			MaxInstrs: 1 << 22,
			TraceFn:   -1,
		})
		a := m.Mem.Alloc(18)
		for i := 0; i < 18; i++ {
			m.Mem.SetInt(a+int64(i), int64(10+3*i))
		}
		out := m.Mem.Alloc(10)
		_, err := m.Run(fi, []uint64{uint64(a), uint64(out), 10})
		if err != nil {
			continue // classified (segfault etc.), not silent
		}
		total++
		got := m.Mem.ReadInts(out, 10)
		for i := range golden {
			if got[i] != golden[i] {
				sdc++
				break
			}
		}
	}
	if total == 0 {
		t.Fatal("no fault runs completed")
	}
	if frac := float64(sdc) / float64(total); frac > 0.10 {
		t.Errorf("SWIFT-R silent corruption rate %.2f (%d/%d) too high", frac, sdc, total)
	}
}

func TestSWIFTDetectsInjectedResultFault(t *testing.T) {
	mod := compile(t, kernelSrc)
	sw := mod.Clone()
	ApplySWIFT(sw)
	fi := sw.FuncByName("kernel")
	region := map[int]bool{}
	for bi := range sw.Funcs[fi].Blocks {
		region[bi] = true
	}
	detected := 0
	for target := uint64(0); target < 200; target += 5 {
		m := machine.New(sw, machine.Config{
			RegionBlocks: map[int]map[int]bool{fi: region},
			Fault:        &machine.FaultPlan{Kind: machine.FaultResultBit, Target: target, Bit: 11},
			MaxInstrs:    1 << 22,
			TraceFn:      -1,
		})
		a := m.Mem.Alloc(18)
		out := m.Mem.Alloc(10)
		_, err := m.Run(fi, []uint64{uint64(a), uint64(out), 10})
		var de *machine.DetectError
		if errors.As(err, &de) {
			detected++
		}
	}
	if detected == 0 {
		t.Error("SWIFT never detected a result-bit fault")
	}
}

func TestRSkipTransformStructure(t *testing.T) {
	mod := compile(t, kernelSrc)
	rsk, err := ApplyRSkip(mod, analysis.Options{})
	if err != nil {
		t.Fatalf("ApplyRSkip: %v", err)
	}
	if err := ir.Verify(rsk); err != nil {
		t.Fatalf("rskip output invalid: %v", err)
	}
	if len(rsk.Loops) != 1 {
		t.Fatalf("got %d PP loops, want 1", len(rsk.Loops))
	}
	li := rsk.Loops[0]
	if li.RecomputeFn <= 0 || li.RecomputeFn >= len(rsk.Funcs) {
		t.Fatalf("bad recompute index %d", li.RecomputeFn)
	}
	rec := rsk.Funcs[li.RecomputeFn]
	if !rec.Internal {
		t.Error("recompute function must be internal")
	}
	if len(rec.Params) != li.NumInvariants+1 {
		t.Errorf("recompute has %d params, want %d (iter + invariants)",
			len(rec.Params), li.NumInvariants+1)
	}
	if li.ValueIsFloat {
		t.Error("kernel stores ints")
	}
	// Hooks present exactly once each per loop.
	counts := map[ir.Op]int{}
	for _, f := range rsk.Funcs {
		for bi := range f.Blocks {
			for ii := range f.Blocks[bi].Instrs {
				op := f.Blocks[bi].Instrs[ii].Op
				switch op {
				case ir.OpRTLoopEnter, ir.OpRTObserve, ir.OpRTLoopExit:
					counts[op]++
				}
			}
		}
	}
	for _, op := range []ir.Op{ir.OpRTLoopEnter, ir.OpRTObserve, ir.OpRTLoopExit} {
		if counts[op] != 1 {
			t.Errorf("%v appears %d times, want 1", op, counts[op])
		}
	}
}

// observeRecorder collects hook activity and verifies recompute
// results against the observed values.
type observation struct {
	loop  int
	iter  int64
	value uint64
	addr  int64
	old   uint64
	inv   []uint64 // invariants of the observing invocation
}

type observeRecorder struct {
	mod        *ir.Module
	invariants map[int][]uint64
	observed   []observation
}

func (r *observeRecorder) LoopEnter(m *machine.Machine, id int, inv []uint64) error {
	if r.invariants == nil {
		r.invariants = map[int][]uint64{}
	}
	r.invariants[id] = append([]uint64(nil), inv...)
	return nil
}

func (r *observeRecorder) Observe(m *machine.Machine, id int, iter int64, value uint64, addr int64) error {
	old, err := m.Mem.LoadWord(addr)
	if err != nil {
		return err
	}
	r.observed = append(r.observed, observation{
		loop: id, iter: iter, value: value, addr: addr, old: old,
		inv: append([]uint64(nil), r.invariants[id]...),
	})
	return nil
}

func (r *observeRecorder) LoopExit(m *machine.Machine, id int) error { return nil }

func TestRecomputeMatchesOriginal(t *testing.T) {
	// The outlined recompute slice must reproduce every observed value
	// bit for bit — that is what makes exact validation sound.
	for _, src := range []string{kernelSrc, `
void kernel(float a[], int size) {
	for (int i = 0; i < size; i = i + 1) {
		for (int j = i + 1; j < size; j = j + 1) {
			float sum = a[j * size + i];
			for (int k = 0; k < i; k = k + 1) {
				sum = sum - a[j * size + k] * a[k * size + i];
			}
			a[j * size + i] = sum / a[i * size + i];
		}
	}
}`} {
		mod := compile(t, src)
		rsk, err := ApplyRSkip(mod, analysis.Options{})
		if err != nil {
			t.Fatalf("ApplyRSkip: %v", err)
		}
		rec := &observeRecorder{mod: rsk}
		m := machine.New(rsk, machine.Config{Hooks: rec, TraceFn: -1})
		fi := rsk.FuncByName("kernel")
		var args []uint64
		if len(rsk.Funcs[fi].Params) == 3 { // int kernel(a, out, n)
			a := m.Mem.Alloc(20)
			for i := 0; i < 20; i++ {
				m.Mem.SetInt(a+int64(i), int64(5+2*i))
			}
			out := m.Mem.Alloc(12)
			args = []uint64{uint64(a), uint64(out), 12}
		} else { // lud-like kernel(a, size)
			size := 8
			a := m.Mem.Alloc(int64(size * size))
			for i := 0; i < size*size; i++ {
				m.Mem.SetFloat(a+int64(i), 1+float64(i%7)*0.25)
			}
			for i := 0; i < size; i++ {
				m.Mem.SetFloat(a+int64(i*size+i), float64(size)+1)
			}
			args = []uint64{uint64(a), uint64(size)}
		}
		if _, err := m.Run(fi, args); err != nil {
			t.Fatalf("run: %v", err)
		}
		if len(rec.observed) == 0 {
			t.Fatal("no observations")
		}
		// Validation happens *after* the store; recompute must still
		// reproduce the value via the buffered pre-store word. Note:
		// recompute can only be replayed while the observing
		// invocation's memory state is live; here the loops only write
		// the hot-store locations, so replaying the LAST invocation's
		// observations after the run is sound. Earlier invocations'
		// observations are replayed with their own invariants but may
		// read since-updated memory in read-modify-write kernels, so we
		// check only the final invocation per loop.
		lastInv := map[int][]uint64{}
		for _, ob := range rec.observed {
			lastInv[ob.loop] = ob.inv
		}
		checked := 0
		for _, ob := range rec.observed {
			same := len(ob.inv) == len(lastInv[ob.loop])
			for i := range ob.inv {
				same = same && ob.inv[i] == lastInv[ob.loop][i]
			}
			if !same {
				continue
			}
			li := rsk.LoopByID(ob.loop)
			got, err := m.CallRecompute(li, ob.iter, ob.inv, true, ob.addr, ob.old)
			if err != nil {
				t.Fatalf("recompute iter %d: %v", ob.iter, err)
			}
			if got != ob.value {
				t.Fatalf("recompute loop %d iter %d = %#x, want %#x (float %g vs %g)",
					ob.loop, ob.iter, got, ob.value,
					math.Float64frombits(got), math.Float64frombits(ob.value))
			}
			checked++
		}
		if checked == 0 {
			t.Fatal("nothing checked")
		}
	}
}

func TestRSkipLudTwoLoops(t *testing.T) {
	mod := compile(t, `
void kernel(float a[], int size) {
	for (int i = 0; i < size; i = i + 1) {
		for (int j = i; j < size; j = j + 1) {
			float sum = a[i * size + j];
			for (int k = 0; k < i; k = k + 1) {
				sum = sum - a[i * size + k] * a[k * size + j];
			}
			a[i * size + j] = sum;
		}
		for (int j = i + 1; j < size; j = j + 1) {
			float sum = a[j * size + i];
			for (int k = 0; k < i; k = k + 1) {
				sum = sum - a[j * size + k] * a[k * size + i];
			}
			a[j * size + i] = sum / a[i * size + i];
		}
	}
}`)
	rsk, err := ApplyRSkip(mod, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rsk.Loops) != 2 {
		t.Fatalf("got %d PP loops, want 2", len(rsk.Loops))
	}
	if rsk.Loops[0].RecomputeFn == rsk.Loops[1].RecomputeFn {
		t.Error("loops share a recompute function")
	}
}

func TestValueCalleeIsolation(t *testing.T) {
	mod := compile(t, `
float helper(float x) { return sqrt(x * x + 1.0) * exp(x * 0.1) + log(x + 2.0); }
void kernel(float in[], float out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		out[i] = helper(in[i]);
	}
}
float other(float x) { return helper(x) + 1.0; }
`)
	rsk, err := ApplyRSkip(mod, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// helper is called both from the value slice and from the
	// protected function `other`: it must be cloned, with the original
	// staying protected.
	clone := rsk.FuncByName("helper$unprot")
	if clone == -1 {
		t.Fatal("shared value callee was not cloned")
	}
	if !rsk.Funcs[clone].Internal {
		t.Error("clone must be internal")
	}
	orig := rsk.FuncByName("helper")
	if rsk.Funcs[orig].Internal {
		t.Error("original helper must stay protected (other() calls it)")
	}
	// The protected copy must contain shadow instructions; the clone
	// must not.
	hasShadow := func(fi int) bool {
		for bi := range rsk.Funcs[fi].Blocks {
			for ii := range rsk.Funcs[fi].Blocks[bi].Instrs {
				if rsk.Funcs[fi].Blocks[bi].Instrs[ii].Tag == ir.TagShadow {
					return true
				}
			}
		}
		return false
	}
	if !hasShadow(orig) {
		t.Error("protected helper has no shadow instructions")
	}
	if hasShadow(clone) {
		t.Error("unprotected clone has shadow instructions")
	}
}

func TestMemoCalleeDetected(t *testing.T) {
	mod := compile(t, `
float price(float a, float b) { return sqrt(a) * exp(b) + log(a + b + 1.0); }
void kernel(float x[], float y[], float out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		float p = price(x[i], y[i]);
		out[i] = p;
	}
}`)
	rsk, err := ApplyRSkip(mod, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rsk.Loops) != 1 {
		t.Fatal("no PP loop")
	}
	if rsk.Loops[0].MemoFn < 0 {
		t.Error("Figure 4a pattern not detected as memoizable")
	}
	if got := rsk.Funcs[rsk.Loops[0].MemoFn].Name; got != "price" {
		t.Errorf("memo callee = %q, want price", got)
	}
}

func TestRSkipIdempotentNoCandidates(t *testing.T) {
	mod := compile(t, `void kernel(int a[], int n) { for (int i = 0; i < n; i = i + 1) { a[i] = 0; } }`)
	rsk, err := ApplyRSkip(mod, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rsk.Loops) != 0 {
		t.Errorf("initialization loop became a PP loop")
	}
	if err := ir.Verify(rsk); err != nil {
		t.Fatal(err)
	}
}
