package transform

import "rskip/internal/ir"

// ApplyCFC adds control-flow checking in the style of signature
// schemes (CFCSS / the abstract-control-signature work the paper cites
// as [16]): every basic block gets a static signature, every
// terminator records the signature of its intended target in a
// per-function run-time signature register, and every block entry
// checks that register against its own signature. An illegal control
// transfer — e.g. a fault that turns a branch into a fall-through —
// lands in a block whose signature does not match and is detected
// (fail-stop) instead of silently corrupting data or hanging.
//
// Run it AFTER the data-protection transform: its bookkeeping must not
// be triplicated, and it must see the final block layout. The pass
// skips internal (value-slice/recompute) functions — their control is
// validated by prediction, and a recompute that fail-stops would turn
// recoverable faults into crashes.
//
// Per-block cost: one constant + one 2-μop check at entry; one
// constant per unconditional branch; four instructions per conditional
// branch (signature select without extra control flow:
// gsr = sig(false) ^ (cond * (sig(true)^sig(false)))).
func ApplyCFC(m *ir.Module) {
	for _, f := range m.Funcs {
		if !f.Internal {
			applyCFCFunc(f)
		}
	}
}

// blockSig derives a nonzero static signature for block b. Distinct
// per block index; the exact values are irrelevant, only inequality.
func blockSig(b int) int64 {
	return int64(b)*0x9e37 + 0x51ed + 1
}

func applyCFCFunc(f *ir.Func) {
	gsr := f.NewReg(ir.Int)
	for bi := range f.Blocks {
		blk := &f.Blocks[bi]
		var out []ir.Instr

		// Block entry: initialize (entry block) or check the run-time
		// signature.
		sigC := f.NewReg(ir.Int)
		out = append(out, ir.Instr{
			Op: ir.OpConstInt, Dst: sigC, Imm: blockSig(bi), Tag: ir.TagCheck,
		})
		if bi == 0 {
			out = append(out, ir.Instr{
				Op: ir.OpMov, Dst: gsr, Args: []ir.Reg{sigC}, Tag: ir.TagCheck,
			})
		} else {
			out = append(out, ir.Instr{
				Op: ir.OpCheck2, Args: []ir.Reg{gsr, sigC}, Tag: ir.TagCheck,
			})
		}

		// Body up to the terminator.
		n := len(blk.Instrs)
		out = append(out, blk.Instrs[:n-1]...)

		// Terminator: record the intended successor's signature.
		term := blk.Instrs[n-1]
		switch term.Op {
		case ir.OpBr:
			t := f.NewReg(ir.Int)
			out = append(out,
				ir.Instr{Op: ir.OpConstInt, Dst: t, Imm: blockSig(term.Blocks[0]), Tag: ir.TagCheck},
				ir.Instr{Op: ir.OpMov, Dst: gsr, Args: []ir.Reg{t}, Tag: ir.TagCheck},
			)
		case ir.OpCondBr:
			sigT := blockSig(term.Blocks[0])
			sigF := blockSig(term.Blocks[1])
			zeroC := f.NewReg(ir.Int)
			nz := f.NewReg(ir.Int)
			diffC := f.NewReg(ir.Int)
			baseC := f.NewReg(ir.Int)
			mul := f.NewReg(ir.Int)
			out = append(out,
				// Normalize the condition to 0/1 (MiniC allows any int).
				ir.Instr{Op: ir.OpConstInt, Dst: zeroC, Imm: 0, Tag: ir.TagCheck},
				ir.Instr{Op: ir.OpNe, Dst: nz, Args: []ir.Reg{term.Args[0], zeroC}, Tag: ir.TagCheck},
				ir.Instr{Op: ir.OpConstInt, Dst: diffC, Imm: sigT ^ sigF, Tag: ir.TagCheck},
				ir.Instr{Op: ir.OpConstInt, Dst: baseC, Imm: sigF, Tag: ir.TagCheck},
				ir.Instr{Op: ir.OpMul, Dst: mul, Args: []ir.Reg{nz, diffC}, Tag: ir.TagCheck},
				ir.Instr{Op: ir.OpXor, Dst: gsr, Args: []ir.Reg{baseC, mul}, Tag: ir.TagCheck},
			)
		}
		out = append(out, term)
		blk.Instrs = out
	}
}
