package transform

import (
	"errors"
	"testing"

	"rskip/internal/analysis"
	"rskip/internal/ir"
	"rskip/internal/machine"
)

func TestCFCPreservesSemantics(t *testing.T) {
	mod := compile(t, kernelSrc)
	golden := runKernel(t, mod, nil, 12)
	cfc := mod.Clone()
	ApplySWIFTR(cfc)
	ApplyCFC(cfc)
	if err := ir.Verify(cfc); err != nil {
		t.Fatalf("CFC output invalid: %v", err)
	}
	got := runKernel(t, cfc, nil, 12)
	if !outputsEqual(golden, got) {
		t.Fatal("CFC changed semantics")
	}
}

func TestCFCOnArbitraryConditions(t *testing.T) {
	// Conditions that are not 0/1 must still steer the signature right.
	mod := compile(t, `
int f(int x) {
	int s = 0;
	while (x) {
		s = s + x;
		x = x - 2;
		if (x < 0) { break; }
	}
	return s;
}`)
	run := func(m *ir.Module, x int64) int64 {
		mm := machine.New(m, machine.Config{TraceFn: -1})
		res, err := mm.Run(0, []uint64{uint64(x)})
		if err != nil {
			t.Fatalf("x=%d: %v", x, err)
		}
		return int64(res.Ret)
	}
	cfc := mod.Clone()
	ApplyCFC(cfc)
	for _, x := range []int64{0, 1, 2, 7, 10} {
		if run(mod, x) != run(cfc, x) {
			t.Fatalf("CFC diverged for x=%d", x)
		}
	}
}

func TestCFCDetectsIllegalControlTransfer(t *testing.T) {
	// Opcode faults that skip a terminator fall through to the next
	// block; with CFC the landing block's signature check fires.
	mod := compile(t, kernelSrc)
	plain := mod.Clone()
	ApplySWIFTR(plain)
	cfc := mod.Clone()
	ApplySWIFTR(cfc)
	ApplyCFC(cfc)

	countDetected := func(m *ir.Module) int {
		fi := m.FuncByName("kernel")
		region := map[int]bool{}
		for bi := range m.Funcs[fi].Blocks {
			region[bi] = true
		}
		detected := 0
		for target := uint64(0); target < 600; target += 3 {
			mm := machine.New(m, machine.Config{
				RegionBlocks: map[int]map[int]bool{fi: region},
				// Bit%8==0 selects the skip manifestation.
				Fault:     &machine.FaultPlan{Kind: machine.FaultOpcode, Target: target, Bit: 8},
				MaxInstrs: 1 << 22,
				TraceFn:   -1,
			})
			a := mm.Mem.Alloc(20)
			out := mm.Mem.Alloc(12)
			_, err := mm.Run(fi, []uint64{uint64(a), uint64(out), 12})
			var de *machine.DetectError
			if errors.As(err, &de) {
				detected++
			}
		}
		return detected
	}
	plainDet := countDetected(plain)
	cfcDet := countDetected(cfc)
	if cfcDet <= plainDet {
		t.Errorf("CFC detections (%d) should exceed plain SWIFT-R (%d) under skipped terminators",
			cfcDet, plainDet)
	}
}

func TestCFCSkipsInternalFunctions(t *testing.T) {
	mod := compile(t, kernelSrc)
	rsk, err := ApplyRSkip(mod, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := map[int]int{}
	for fi, f := range rsk.Funcs {
		if f.Internal {
			before[fi] = len(f.Blocks[0].Instrs)
		}
	}
	ApplyCFC(rsk)
	for fi, n := range before {
		if len(rsk.Funcs[fi].Blocks[0].Instrs) != n {
			t.Errorf("internal func %d was CFC-instrumented", fi)
		}
	}
	if err := ir.Verify(rsk); err != nil {
		t.Fatal(err)
	}
}
