// Package transform implements RSkip's protection passes: SWIFT
// (detection-only instruction duplication), SWIFT-R (TMR-based full
// protection, the evaluation baseline), and the prediction-based
// protection transform that versions candidate loops, outlines their
// re-computation slices, and plants run-time management hooks.
package transform

import "rskip/internal/ir"

// ApplySWIFT rewrites every non-internal function with detection-only
// duplication: each value-producing instruction gains one shadow copy
// and synchronization points (stores, branches, calls, returns)
// compare master against shadow, signaling detection on mismatch.
func ApplySWIFT(m *ir.Module) {
	for _, f := range m.Funcs {
		if !f.Internal {
			duplicateFunc(f, 1)
		}
	}
}

// ApplySWIFTR rewrites every non-internal function with TMR-based full
// protection: two shadow copies and majority voting at synchronization
// points, which both detects and repairs a single corrupted copy.
func ApplySWIFTR(m *ir.Module) {
	for _, f := range m.Funcs {
		if !f.Internal {
			duplicateFunc(f, 2)
		}
	}
}

// duplicator carries the shadow register maps for one function.
type duplicator struct {
	f      *ir.Func
	copies int
	// hard enables the skip-hardening extensions (SWIFT-R-HARD): load
	// addresses are voted before the loads consume them, and every
	// store is emitted twice. See harden.go for the threat model.
	hard   bool
	shadow []map[ir.Reg]ir.Reg
	out    []ir.Instr
}

func duplicateFunc(f *ir.Func, copies int) {
	dupFunc(&duplicator{f: f, copies: copies})
}

func dupFunc(d *duplicator) {
	f, copies := d.f, d.copies
	d.shadow = make([]map[ir.Reg]ir.Reg, copies)
	for k := range d.shadow {
		d.shadow[k] = map[ir.Reg]ir.Reg{}
	}
	for bi := range f.Blocks {
		src := f.Blocks[bi].Instrs
		d.out = make([]ir.Instr, 0, len(src)*(copies+1))
		if bi == 0 {
			// Parameters enter through a single (unprotected) copy;
			// materialize their shadows immediately.
			for pi := range f.Params {
				d.refreshShadows(ir.Reg(pi))
			}
		}
		for ii := range src {
			d.instr(&src[ii])
		}
		f.Blocks[bi].Instrs = d.out
	}
}

// shadowDef returns (allocating on demand) the k-th shadow register
// for r, used as a destination.
func (d *duplicator) shadowDef(k int, r ir.Reg) ir.Reg {
	if s, ok := d.shadow[k][r]; ok {
		return s
	}
	s := d.f.NewReg(d.f.TypeOf(r))
	d.shadow[k][r] = s
	return s
}

// shadowUse returns the k-th shadow of r for reading; registers whose
// defining instructions were not duplicated (PP value slices) fall
// back to the master copy.
func (d *duplicator) shadowUse(k int, r ir.Reg) ir.Reg {
	if s, ok := d.shadow[k][r]; ok {
		return s
	}
	return r
}

func (d *duplicator) emit(in ir.Instr) { d.out = append(d.out, in) }

// refreshShadows emits movs copying master r into every shadow,
// re-synchronizing the copies (after calls, allocas, votes).
func (d *duplicator) refreshShadows(r ir.Reg) {
	if r == ir.NoReg {
		return
	}
	for k := 0; k < d.copies; k++ {
		d.emit(ir.Instr{Op: ir.OpMov, Dst: d.shadowDef(k, r),
			Args: []ir.Reg{r}, Tag: ir.TagShadow})
	}
}

// sync validates register r across all copies at a synchronization
// point. With one shadow it emits a Check2 (detection); with two it
// emits a majority vote that repairs the master and re-syncs the
// shadows (recovery).
func (d *duplicator) sync(r ir.Reg) {
	if r == ir.NoReg {
		return
	}
	if d.copies == 1 {
		d.emit(ir.Instr{Op: ir.OpCheck2,
			Args: []ir.Reg{r, d.shadowUse(0, r)}, Tag: ir.TagCheck})
		return
	}
	d.emit(ir.Instr{Op: ir.OpVote3, Dst: r,
		Args: []ir.Reg{r, d.shadowUse(0, r), d.shadowUse(1, r)}, Tag: ir.TagCheck})
	for k := 0; k < d.copies; k++ {
		d.emit(ir.Instr{Op: ir.OpMov, Dst: d.shadowDef(k, r),
			Args: []ir.Reg{r}, Tag: ir.TagCheck})
	}
}

// syncAll validates a deduplicated list of registers.
func (d *duplicator) syncAll(regs ...ir.Reg) {
	seen := map[ir.Reg]bool{}
	for _, r := range regs {
		if r == ir.NoReg || seen[r] {
			continue
		}
		seen[r] = true
		d.sync(r)
	}
}

func (d *duplicator) instr(in *ir.Instr) {
	// PP value slices and runtime hooks pass through unprotected: the
	// prediction mechanism validates their results instead.
	switch in.Op {
	case ir.OpRTLoopEnter, ir.OpRTObserve, ir.OpRTLoopExit:
		d.emit(*in)
		return
	}
	if in.Tag == ir.TagValue && in.Op != ir.OpStore {
		d.emit(*in)
		return
	}

	switch {
	case in.Op.IsPure():
		if d.hard && in.Op == ir.OpLoad {
			// Skip hardening: an instruction-skip that drops the mov
			// feeding an address leaves master and shadows disagreeing
			// on where to load from — or, on the first iteration, leaves
			// a copy holding the zero a fresh register starts with.
			// Voting the address here repairs the master and refreshes
			// both shadows before any copy dereferences it.
			d.syncAll(in.Args...)
		}
		d.emit(*in)
		for k := 0; k < d.copies; k++ {
			clone := *in
			clone.Args = make([]ir.Reg, len(in.Args))
			for i, a := range in.Args {
				clone.Args[i] = d.shadowUse(k, a)
			}
			clone.Dst = d.shadowDef(k, in.Dst)
			clone.Tag = ir.TagShadow
			d.emit(clone)
		}

	case in.Op == ir.OpStore:
		if in.Tag == ir.TagValue {
			// PP hot store: the address is under conventional
			// protection, the value is validated by prediction.
			d.syncAll(in.Args[0])
		} else {
			d.syncAll(in.Args[0], in.Args[1])
		}
		d.emit(*in)
		if d.hard {
			// Skip hardening: stores are the only in-region effect a
			// voter cannot replay, so a skipped store is silent data
			// corruption. Issuing the (idempotent — both copies write
			// the voted value) store twice means a single skip always
			// leaves one standing.
			clone := *in
			clone.Tag = ir.TagShadow
			d.emit(clone)
		}

	case in.Op == ir.OpAlloca:
		d.emit(*in)
		d.refreshShadows(in.Dst)

	case in.Op == ir.OpCondBr:
		d.syncAll(in.Args[0])
		d.emit(*in)

	case in.Op == ir.OpRet:
		if len(in.Args) == 1 {
			d.syncAll(in.Args[0])
		}
		d.emit(*in)

	case in.Op == ir.OpBr:
		d.emit(*in)

	case in.Op == ir.OpCall:
		d.syncAll(in.Args...)
		d.emit(*in)
		if in.Dst != ir.NoReg {
			d.refreshShadows(in.Dst)
		}

	default:
		// Pre-existing protection primitives (re-protection is not
		// supported) and anything unrecognized pass through.
		d.emit(*in)
	}
}
