package result

import (
	"sort"

	"rskip/internal/core"
	"rskip/internal/fault"
	"rskip/internal/machine"
)

// ownerLayout is one region's population: the contiguous global
// in-region index ranges owned by one function, mirroring the fault
// package's per-class intervals but cut along the region (ownership)
// axis instead of the instruction-class axis.
type ownerLayout struct {
	owner  int
	count  uint64   // total population
	starts []uint64 // global start of each interval
	cum    []uint64 // population preceding each interval
	// classes is the region's per-class instruction census — not part
	// of the sampling layout, but reported per region so the advisory
	// prediction layer can learn from instruction mixes.
	classes [machine.NumOpClasses]uint64
}

// pick maps a region-local index (0 <= j < count) to the global
// in-region index of the j-th instruction of the region.
func (l *ownerLayout) pick(j uint64) uint64 {
	k := sort.Search(len(l.cum), func(i int) bool { return l.cum[i] > j }) - 1
	return l.starts[k] + (j - l.cum[k])
}

// locate reports whether global in-region index g falls in this
// region.
func (l *ownerLayout) locate(g uint64) bool {
	k := sort.Search(len(l.starts), func(i int) bool { return l.starts[i] > g }) - 1
	if k < 0 {
		return false
	}
	return g-l.starts[k] < widthOf(l, k)
}

// layoutOwners folds a region trace into per-owner populations,
// ordered by owner function index.
func layoutOwners(trace *machine.RegionTrace) []*ownerLayout {
	byOwner := map[int]*ownerLayout{}
	var owners []int
	var pos uint64
	for _, sp := range trace.Spans() {
		l := byOwner[sp.Owner]
		if l == nil {
			l = &ownerLayout{owner: sp.Owner}
			byOwner[sp.Owner] = l
			owners = append(owners, sp.Owner)
		}
		// Adjacent spans of one owner (differing only by class) merge
		// into one interval so the layout stays compact.
		if n := len(l.starts); n > 0 && l.starts[n-1]+widthOf(l, n-1) == pos {
			// extend the previous interval
			l.count += sp.N
		} else {
			l.cum = append(l.cum, l.count)
			l.starts = append(l.starts, pos)
			l.count += sp.N
		}
		l.classes[sp.Class] += sp.N
		pos += sp.N
	}
	sort.Ints(owners)
	out := make([]*ownerLayout, len(owners))
	for i, o := range owners {
		out[i] = byOwner[o]
	}
	return out
}

// widthOf is the population of interval k of l.
func widthOf(l *ownerLayout, k int) uint64 {
	if k+1 < len(l.cum) {
		return l.cum[k+1] - l.cum[k]
	}
	return l.count - l.cum[k]
}

// ComposeCounts pools per-region campaign results by the
// partition-sum identity: every monolithic-campaign replica lands in
// exactly one region, so summing the per-region counts reproduces the
// monolithic counts exactly. Rate fields on the composed result pool
// replicas (weighting regions by replica count); population-weighted
// figures come from the Report's stratified estimator.
func ComposeCounts(s core.Scheme, parts []fault.Result) fault.Result {
	out := fault.Result{Scheme: s}
	for _, r := range parts {
		out.N += r.N
		out.Requested += r.Requested
		for c := range r.Counts {
			out.Counts[c] += r.Counts[c]
		}
		out.Fired += r.Fired
		out.FalseNeg += r.FalseNeg
		out.Recovered += r.Recovered
		for class, byMsg := range r.Errors {
			if out.Errors == nil {
				out.Errors = map[fault.Class]map[string]int{}
			}
			if out.Errors[class] == nil {
				out.Errors[class] = map[string]int{}
			}
			for msg, n := range byMsg {
				out.Errors[class][msg] += n
			}
		}
	}
	return out
}

// Partition splits a monolithic campaign's plan list along the region
// decomposition of a trace: each plan goes to the region whose
// interval set contains its (global in-region) target. Plan order
// within each part preserves the monolithic order. This is the
// differential-test counterpart of Analyze's per-region drawing — a
// monolithic plan list, partitioned and re-run per region, must
// compose to counts bit-identical to the monolithic campaign.
func Partition(plans []machine.FaultPlan, trace *machine.RegionTrace) map[int][]machine.FaultPlan {
	layouts := layoutOwners(trace)
	out := map[int][]machine.FaultPlan{}
	for _, pl := range plans {
		for _, l := range layouts {
			if l.locate(pl.Target) {
				out[l.owner] = append(out[l.owner], pl)
				break
			}
		}
	}
	return out
}
