package result

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/bits"
	"sort"
	"strings"
	"time"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/fault"
	"rskip/internal/machine"
	"rskip/internal/obs"
	"rskip/internal/stats"
)

// Options parameterizes one compositional analysis.
type Options struct {
	// Cache serves per-region campaign results content-addressed; nil
	// runs every region live (composition still applies, nothing
	// persists).
	Cache *Cache
	// PerRegionN is the number of replicas injected per region
	// (default 200). It is fixed per region — not apportioned from a
	// program-wide total — so an edit that changes one region's size
	// never perturbs another region's sampling plan or cache key.
	PerRegionN int
	// Seed drives per-region sampling. Each region draws from a
	// substream keyed by (Seed, region fingerprint), so plans are
	// edit-stable: an unedited region redraws the identical plans
	// after any edit elsewhere.
	Seed int64
	// InstKey identifies the benchmark instance (input seed and
	// scale) in cache keys. Callers that cache must set it; the
	// instance object itself is opaque.
	InstKey string
	// Mix, SkipWidth, BitWidth select the fault model (defaults
	// mirror fault.Config).
	Mix       fault.Mix
	SkipWidth int
	BitWidth  int
	// HangFactor scales the instruction budget (default 50). The
	// budget is HangFactor times the fault-free instruction count
	// rounded up to a power of two, so small edits leave it — and
	// with it every unedited region's outcome — untouched; when an
	// edit does cross a bucket boundary, every region key misses and
	// the whole campaign re-runs under the new budget.
	HangFactor uint64
	// Workers bounds each region campaign's parallelism.
	Workers int
	// MaxSpans caps the profiling region trace (0 = machine default).
	MaxSpans int
}

// RegionReport is one region's campaign outcome within a Report.
type RegionReport struct {
	// Owner is the function index owning the region; Func its name.
	Owner int    `json:"owner"`
	Func  string `json:"func"`
	// Fingerprint is the region's content identity (the owning
	// function's call closure, plus its outlined recompute slices for
	// the RSkip scheme).
	Fingerprint string `json:"fingerprint"`
	// Population is the region's in-region dynamic instruction count;
	// Weight its share of the whole stream.
	Population uint64  `json:"population"`
	Weight     float64 `json:"weight"`
	// Cached reports the campaign was served from the result cache.
	Cached bool         `json:"cached"`
	Result fault.Result `json:"result"`
	// ClassMix is the region's per-class instruction shares, in
	// machine.OpClass order — deterministic, derived from the same
	// profile trace as Population. The advisory prediction layer
	// learns from it; nothing in the analysis consumes it.
	ClassMix [machine.NumOpClasses]float64 `json:"class_mix"`
	// WallSeconds is the wall-clock cost of this region's campaign
	// when it ran live in this analysis; zero when served from the
	// cache. It lives here — outside fault.Result — so cached and
	// merged results stay bit-identical across runs and backends.
	WallSeconds float64 `json:"wall_seconds,omitempty"`
}

// Report is the composed program-level outcome of one analysis.
type Report struct {
	Scheme  core.Scheme
	Bench   string
	Regions []RegionReport
	// Composed pools every region's counts (partition-sum); its
	// pooled rates weight regions by replica count, not population —
	// use Protection/ProtectionCI for the population-weighted figures.
	Composed fault.Result
	// Protection is the weighted program-level protection rate (in
	// percent): each region's observed rate scaled by the region's
	// share of the in-region instruction stream, with the merged
	// stratified Wilson interval.
	Protection   float64
	ProtectionCI [2]float64
	// CacheHits/CacheMisses count per-region campaigns served from
	// the cache versus run live in this analysis.
	CacheHits   int
	CacheMisses int
	// Budget is the per-run instruction budget every region campaign
	// (cached or live) ran under.
	Budget uint64
}

// regionFP is the cache identity of one region's code under a scheme:
// the owning function's call closure, plus — for RSkip, whose regions
// execute outlined recompute slices the closure cannot see (they are
// invoked through runtime hooks, not calls) — the slices owned by the
// region's loops.
func regionFP(p *core.Program, s core.Scheme, owner int) string {
	code := p.Code(s)
	parts := []string{code.RegionFingerprint(owner)}
	if s == core.RSkip {
		var slices []int
		for rf, o := range p.RegionOwner {
			if o == owner {
				slices = append(slices, rf)
			}
		}
		sort.Ints(slices)
		for _, rf := range slices {
			parts = append(parts, code.RegionFingerprint(rf))
		}
	}
	sum := sha256.Sum256([]byte(strings.Join(parts, "+")))
	return fmt.Sprintf("%x", sum)
}

// regionTrainedHash fingerprints the slice of the trained profile a
// region's campaign actually consumes: the QoS models and memo tables
// of the loops living in the owner function. Hashing per region (not
// the whole profile) is what keeps unedited regions cached after an
// edit — retraining the edited stage regenerates every loop's
// entries, but the unedited stages' entries are value-identical and
// hash the same. Only RSkip feeds the profile into runs; other
// schemes hash empty.
func regionTrainedHash(p *core.Program, s core.Scheme, owner int) string {
	if s != core.RSkip || p.Trained == nil {
		return ""
	}
	mod := p.Module(s)
	type loopSlice struct {
		ID   int         `json:"id"`
		QoS  interface{} `json:"qos,omitempty"`
		Memo interface{} `json:"memo,omitempty"`
	}
	var slices []loopSlice
	for i := range mod.Loops {
		li := &mod.Loops[i]
		if li.Func != owner {
			continue
		}
		slices = append(slices, loopSlice{
			ID: li.ID, QoS: p.Trained.QoS[li.ID], Memo: p.Trained.Memo[li.ID],
		})
	}
	sort.Slice(slices, func(i, j int) bool { return slices[i].ID < slices[j].ID })
	data, err := json.Marshal(slices)
	if err != nil {
		return fmt.Sprintf("unhashable:%v", err)
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x", sum)
}

// specKey assembles the full cache key of one region campaign. The
// golden output hash is deliberately absent: including it would
// invalidate every region on any edit, defeating incrementality. Its
// place is taken by the region fingerprint plus the documented
// independence assumption (see DESIGN.md): composition is sound when
// regions neither share data nor feed each other, so a fault confined
// to one region perturbs only that region's slice of the output.
func specKey(p *core.Program, s core.Scheme, opts Options, owner int, fp string, population uint64, budget uint64) string {
	return fmt.Sprintf(
		"v%d|region=%s|pop=%d|pipe=%s|cfg=%s|trained=%s|bench=%s|inst=%s|scheme=%s|mix=%g/%g/%g/%g/%g/%g|sw=%d|bw=%d|bud=%d|seed=%d|n=%d",
		entryVersion, fp, population,
		core.PipelineSig(s, p.Cfg), p.Cfg.Key(), regionTrainedHash(p, s, owner),
		p.Bench.Name, opts.InstKey, s,
		opts.Mix.RegFile, opts.Mix.Result, opts.Mix.Source, opts.Mix.Opcode, opts.Mix.Skip, opts.Mix.MultiBit,
		opts.SkipWidth, opts.BitWidth, budget, opts.Seed, opts.PerRegionN)
}

// regionSeed derives the per-region sampling substream. Keying by the
// region fingerprint (not the owner index or layout position) is what
// makes plans edit-stable: the substream survives edits elsewhere,
// and an edit to the region itself moves the seed along with the key.
func regionSeed(seed int64, fp string) int64 {
	h := fnv.New64a()
	h.Write([]byte(fp))
	return seed ^ int64(h.Sum64())
}

// budgetFor buckets the fault-free instruction count to the next
// power of two and applies the hang factor.
func budgetFor(hangFactor, faultFreeInstrs uint64) uint64 {
	if faultFreeInstrs == 0 {
		return hangFactor
	}
	bucket := uint64(1) << bits.Len64(faultFreeInstrs-1)
	return hangFactor * bucket
}

// Analyze runs (or serves from cache) one campaign per candidate-loop
// region and composes the program-level figures. The per-region
// campaigns use explicit plan lists drawn from region-keyed seeds, so
// after a source edit only regions whose fingerprint changed miss the
// cache; every other region replays its cached counts and the
// composed rates are bit-identical to a cold full analysis of the
// edited program.
func Analyze(ctx context.Context, p *core.Program, s core.Scheme, inst bench.Instance, opts Options) (*Report, error) {
	if opts.PerRegionN <= 0 {
		opts.PerRegionN = 200
	}
	if opts.HangFactor == 0 {
		opts.HangFactor = 50
	}
	if opts.Mix == (fault.Mix{}) {
		opts.Mix = fault.DefaultMix
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sp := obs.Start(ctx, "result/analyze")
	sp.SetAttr("scheme", s.String())
	sp.SetAttr("bench", p.Bench.Name)
	defer sp.End()

	// Profile with a region trace: the layout gives the region
	// decomposition and each region's population.
	trace := &machine.RegionTrace{MaxSpans: opts.MaxSpans}
	profile := p.Run(s, inst, core.RunOpts{RegionTrace: trace})
	if profile.Err != nil {
		return nil, fmt.Errorf("result: fault-free %s run failed: %w", s, profile.Err)
	}
	if profile.Result.Region == 0 {
		return nil, fmt.Errorf("result: no detected-loop region executed under %s", s)
	}
	if err := trace.Err(); err != nil {
		return nil, fmt.Errorf("result: %w", err)
	}

	layouts := layoutOwners(trace)
	budget := budgetFor(opts.HangFactor, profile.Result.Instrs)
	rep := &Report{Scheme: s, Bench: p.Bench.Name, Budget: budget}
	mod := p.Module(s)

	fcfg := fault.Config{
		Workers:   opts.Workers,
		Mix:       opts.Mix,
		SkipWidth: opts.SkipWidth,
		BitWidth:  opts.BitWidth,
		Budget:    budget,
	}
	for _, lay := range layouts {
		fp := regionFP(p, s, lay.owner)
		key := specKey(p, s, opts, lay.owner, fp, lay.count, budget)
		var wall float64
		res, cached, err := opts.Cache.GetOrRun(key, func() (fault.Result, error) {
			start := time.Now()
			defer func() { wall = time.Since(start).Seconds() }()
			// Draw region-local targets, then map each into the global
			// in-region index space through the current layout.
			plans := fault.DrawPlans(regionSeed(opts.Seed, fp), opts.PerRegionN, fcfg, lay.count)
			for i := range plans {
				plans[i].Target = lay.pick(plans[i].Target)
			}
			return fault.CampaignWithPlans(ctx, p, s, inst, fcfg, plans)
		})
		if err != nil {
			return nil, err
		}
		name := ""
		if lay.owner >= 0 && lay.owner < len(mod.Funcs) {
			name = mod.Funcs[lay.owner].Name
		}
		if cached {
			rep.CacheHits++
		} else {
			rep.CacheMisses++
		}
		var classMix [machine.NumOpClasses]float64
		for i, n := range lay.classes {
			classMix[i] = float64(n) / float64(lay.count)
		}
		rep.Regions = append(rep.Regions, RegionReport{
			Owner: lay.owner, Func: name, Fingerprint: fp,
			Population: lay.count,
			Weight:     float64(lay.count) / float64(trace.Total()),
			Cached:     cached, Result: res,
			ClassMix: classMix, WallSeconds: wall,
		})
	}

	rep.Composed = ComposeCounts(s, regionResults(rep.Regions))
	rep.Protection, rep.ProtectionCI = composeProtection(rep.Regions)
	sp.SetAttr("regions", len(rep.Regions))
	sp.SetAttr("cache_hits", rep.CacheHits)
	return rep, nil
}

func regionResults(regions []RegionReport) []fault.Result {
	out := make([]fault.Result, len(regions))
	for i := range regions {
		out[i] = regions[i].Result
	}
	return out
}

// composeProtection merges per-region protection outcomes with region
// populations as stratum weights.
func composeProtection(regions []RegionReport) (float64, [2]float64) {
	strata := make([]stats.Stratum, len(regions))
	for i, r := range regions {
		strata[i] = stats.Stratum{
			W: r.Weight,
			K: r.Result.Counts[fault.Correct] + r.Result.Counts[fault.Detected],
			N: r.Result.N,
		}
	}
	p, lo, hi := stats.StratifiedWilson(strata, stats.Z95)
	return 100 * p, [2]float64{100 * lo, 100 * hi}
}
