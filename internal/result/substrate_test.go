package result

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/fault"
	"rskip/internal/machine"
)

// The differential test substrate: randomized multi-stage kernels
// whose stages are separate functions over pairwise-disjoint input
// and output arrays — the shape under which FastFlip-style
// composition is exact, because a fault confined to one stage's
// region can only perturb that stage's slice of the output. The
// substrate proves two things bit-for-bit:
//
//  1. Partition-sum: a monolithic campaign's plan list, split along
//     the region decomposition and re-run per region, composes to the
//     monolithic counts exactly (no statistics involved).
//  2. Incrementality: after editing one stage, a warm cached analysis
//     re-runs only the edited region yet reports program-level
//     figures bit-identical to a cold analysis of the edited program.

// stageVariant is one inner-reduction shape a generated stage can take.
type stageVariant int

const (
	varSum stageVariant = iota // acc += input * c
	varAdd                     // acc += input + c
	varMax                     // windowed max against c-scaled input
	numVariants
)

// stageSpec is one generated stage: a reduction over its own arrays.
type stageSpec struct {
	variant stageVariant
	c       int // constant folded into the reduction
	k       int // window size
}

// kernelSpec is one generated multi-stage kernel.
type kernelSpec struct {
	stages []stageSpec
	n      int // per-stage input length
}

// genKernel draws a random kernel: 2–4 stages, each with its own
// variant, constant and window.
func genKernel(rng *rand.Rand) kernelSpec {
	ks := kernelSpec{n: 10 + rng.Intn(6)}
	for s := 0; s < 2+rng.Intn(3); s++ {
		ks.stages = append(ks.stages, stageSpec{
			variant: stageVariant(rng.Intn(int(numVariants))),
			c:       1 + rng.Intn(9),
			k:       2 + rng.Intn(3),
		})
	}
	return ks
}

// source renders the kernel to MiniC: one function per stage (each
// mirroring the micro-kernel shape that candidate detection is known
// to pick up), and a kernel that calls the stages in order on
// disjoint arrays.
func (ks kernelSpec) source() string {
	var b strings.Builder
	for i, st := range ks.stages {
		fmt.Fprintf(&b, "void stage%d(int input[], int output[], int n) {\n", i)
		fmt.Fprintf(&b, "\tfor (int f = 0; f < 2; f = f + 1) {\n")
		fmt.Fprintf(&b, "\t\tfor (int i = 0; i < n - %d + 1; i = i + 1) {\n", st.k)
		switch st.variant {
		case varSum:
			fmt.Fprintf(&b, "\t\t\tint acc = 0;\n")
			fmt.Fprintf(&b, "\t\t\tfor (int j = 0; j < %d; j = j + 1) {\n", st.k)
			fmt.Fprintf(&b, "\t\t\t\tacc = acc + input[i + j] * %d;\n", st.c)
			fmt.Fprintf(&b, "\t\t\t}\n")
		case varAdd:
			fmt.Fprintf(&b, "\t\t\tint acc = 0;\n")
			fmt.Fprintf(&b, "\t\t\tfor (int j = 0; j < %d; j = j + 1) {\n", st.k)
			fmt.Fprintf(&b, "\t\t\t\tacc = acc + input[i + j] + %d;\n", st.c)
			fmt.Fprintf(&b, "\t\t\t}\n")
		case varMax:
			fmt.Fprintf(&b, "\t\t\tint acc = input[i] * %d;\n", st.c)
			fmt.Fprintf(&b, "\t\t\tfor (int j = 1; j < %d; j = j + 1) {\n", st.k)
			fmt.Fprintf(&b, "\t\t\t\tif (input[i + j] * %d > acc) {\n", st.c)
			fmt.Fprintf(&b, "\t\t\t\t\tacc = input[i + j] * %d;\n", st.c)
			fmt.Fprintf(&b, "\t\t\t\t}\n")
			fmt.Fprintf(&b, "\t\t\t}\n")
		}
		fmt.Fprintf(&b, "\t\t\toutput[f * (n - %d + 1) + i] = acc;\n", st.k)
		fmt.Fprintf(&b, "\t\t}\n\t}\n}\n\n")
	}
	b.WriteString("void kernel(")
	for i := range ks.stages {
		fmt.Fprintf(&b, "int in%d[], int out%d[], ", i, i)
	}
	b.WriteString("int n) {\n")
	for i := range ks.stages {
		fmt.Fprintf(&b, "\tstage%d(in%d, out%d, n);\n", i, i, i)
	}
	b.WriteString("}\n")
	return b.String()
}

// outLen is one stage's output length (the f-repeat doubles it).
func (ks kernelSpec) outLen(s int) int { return 2 * (ks.n - ks.stages[s].k + 1) }

// benchmark wraps the kernel as a bench.Benchmark whose Output
// concatenates the per-stage output arrays.
func (ks kernelSpec) benchmark(name string) bench.Benchmark {
	return bench.Benchmark{
		Name:        name,
		Domain:      "Differential substrate",
		Description: "Randomized multi-stage disjoint-array kernel",
		Pattern:     "Per-stage reduction loops",
		Location:    "One per stage function",
		Kernel:      "kernel",
		Source:      ks.source(),
		Gen: func(seed int64, scale bench.Scale) bench.Instance {
			rng := rand.New(rand.NewSource(seed))
			inputs := make([][]int64, len(ks.stages))
			for s := range inputs {
				inputs[s] = make([]int64, ks.n)
				for i := range inputs[s] {
					inputs[s][i] = int64(rng.Intn(200))
				}
			}
			total := 0
			for s := range ks.stages {
				total += ks.outLen(s)
			}
			var outBases []int64
			return bench.Instance{
				Elements: total,
				Setup: func(mem *machine.Memory) []uint64 {
					outBases = outBases[:0]
					var args []uint64
					for s := range ks.stages {
						in := mem.Alloc(int64(ks.n))
						mem.CopyInts(in, inputs[s])
						out := mem.Alloc(int64(ks.outLen(s)))
						outBases = append(outBases, out)
						args = append(args, uint64(in), uint64(out))
					}
					return append(args, uint64(int64(ks.n)))
				},
				Output: func(mem *machine.Memory) []uint64 {
					var all []uint64
					for s, base := range outBases {
						for i := 0; i < ks.outLen(s); i++ {
							w, err := mem.LoadWord(base + int64(i))
							if err != nil {
								panic(err)
							}
							all = append(all, w)
						}
					}
					return all
				},
			}
		},
	}
}

// buildKernel compiles and trains one generated kernel.
func buildKernel(t *testing.T, ks kernelSpec, name string) (*core.Program, bench.Instance) {
	t.Helper()
	b := ks.benchmark(name)
	p, err := core.Build(b, core.DefaultConfig())
	if err != nil {
		t.Fatalf("%s: build: %v\nsource:\n%s", name, err, b.Source)
	}
	if err := p.Train([]int64{bench.TrainSeed(0)}, bench.ScaleTiny); err != nil {
		t.Fatalf("%s: train: %v", name, err)
	}
	return p, b.Gen(bench.TestSeed(0), bench.ScaleTiny)
}

// traceOf profiles one scheme run with a region trace.
func traceOf(t *testing.T, p *core.Program, s core.Scheme, inst bench.Instance) *machine.RegionTrace {
	t.Helper()
	trace := &machine.RegionTrace{}
	o := p.Run(s, inst, core.RunOpts{RegionTrace: trace})
	if o.Err != nil {
		t.Fatalf("fault-free %s run: %v", s, o.Err)
	}
	if err := trace.Err(); err != nil {
		t.Fatal(err)
	}
	if trace.Total() != o.Result.Region {
		t.Fatalf("trace covers %d of %d in-region instructions", trace.Total(), o.Result.Region)
	}
	return trace
}

var allSchemes = []core.Scheme{core.Unsafe, core.SWIFT, core.SWIFTR, core.RSkip, core.SWIFTRHard}

// The partition-sum property over the substrate: for 12 randomized
// kernels and every scheme, a monolithic plan list split along the
// region decomposition and re-run per region composes to counts
// bit-identical to the monolithic campaign.
func TestComposedMatchesMonolithicDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential substrate is not short")
	}
	const perKernelN = 40
	for ki := 0; ki < 12; ki++ {
		ki := ki
		t.Run(fmt.Sprintf("kernel%02d", ki), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(1000 + ki)))
			ks := genKernel(rng)
			p, inst := buildKernel(t, ks, fmt.Sprintf("diffsub%02d", ki))
			for _, s := range allSchemes {
				trace := traceOf(t, p, s, inst)
				cfg := fault.Config{Seed: int64(7 * (ki + 1)), Mix: fault.Mix{
					RegFile: 0.3, Result: 0.3, Source: 0.2, Opcode: 0.1, Skip: 0.1,
				}}
				plans := fault.DrawPlans(cfg.Seed, perKernelN, cfg, trace.Total())

				mono, err := fault.CampaignWithPlans(context.Background(), p, s, inst, cfg, plans)
				if err != nil {
					t.Fatalf("%s: monolithic: %v", s, err)
				}

				parts := Partition(plans, trace)
				plansSeen := 0
				var partRes []fault.Result
				for owner, sub := range parts {
					plansSeen += len(sub)
					r, err := fault.CampaignWithPlans(context.Background(), p, s, inst, cfg, sub)
					if err != nil {
						t.Fatalf("%s: region %d: %v", s, owner, err)
					}
					partRes = append(partRes, r)
				}
				if plansSeen != len(plans) {
					t.Fatalf("%s: partition covers %d of %d plans", s, plansSeen, len(plans))
				}
				if len(parts) < 2 {
					t.Fatalf("%s: only %d regions partitioned; substrate kernels must span several", s, len(parts))
				}

				comp := ComposeCounts(s, partRes)
				if comp.N != mono.N || comp.Counts != mono.Counts ||
					comp.Fired != mono.Fired || comp.FalseNeg != mono.FalseNeg ||
					comp.Recovered != mono.Recovered {
					t.Errorf("%s: composed != monolithic:\n  composed  N=%d counts=%v fired=%d fn=%d rec=%d\n  monolithic N=%d counts=%v fired=%d fn=%d rec=%d",
						s, comp.N, comp.Counts, comp.Fired, comp.FalseNeg, comp.Recovered,
						mono.N, mono.Counts, mono.Fired, mono.FalseNeg, mono.Recovered)
				}
				if !reflect.DeepEqual(normalizeErrors(comp.Errors), normalizeErrors(mono.Errors)) {
					t.Errorf("%s: composed error taxonomy diverges:\n  composed  %v\n  monolithic %v", s, comp.Errors, mono.Errors)
				}
			}
		})
	}
}

// normalizeErrors maps empty maps to nil so DeepEqual compares
// taxonomies structurally.
func normalizeErrors(m map[fault.Class]map[string]int) map[fault.Class]map[string]int {
	if len(m) == 0 {
		return nil
	}
	return m
}

// The stratified estimator against exhaustive ground truth: on a
// micro-kernel whose skip-fault population can be enumerated exactly,
// the stratified campaign's CI must bracket the exact protection rate
// (fixed seed; the interval is 95%, the seed is chosen once).
func TestStratifiedCIBracketsExhaustiveGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive ground truth is not short")
	}
	if raceEnabled {
		// Exhaustive enumeration is a deterministic statistical proof
		// with no concurrency of its own; under the race detector it
		// costs ~2 minutes for zero extra coverage.
		t.Skip("deterministic exhaustive proof; skipped under -race")
	}
	b, err := bench.ByName("musum")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Build(b, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inst := b.Gen(bench.TestSeed(0), bench.ScaleTiny)
	for _, s := range []core.Scheme{core.SWIFT, core.SWIFTRHard} {
		exact, err := fault.Campaign(context.Background(), p, s, inst,
			fault.Config{Mix: fault.Mix{Skip: 1}, Exhaustive: true})
		if err != nil {
			t.Fatalf("%s: exhaustive: %v", s, err)
		}
		truth := exact.ProtectionRate()

		strat, err := fault.Campaign(context.Background(), p, s, inst,
			fault.Config{N: 400, Seed: 21, Stratify: true, Mix: fault.Mix{Skip: 1}})
		if err != nil {
			t.Fatalf("%s: stratified: %v", s, err)
		}
		lo, hi := strat.ProtectionCI()
		if truth < lo || truth > hi {
			t.Errorf("%s: stratified CI [%.2f, %.2f] misses exhaustive rate %.2f",
				s, lo, hi, truth)
		}
		if len(strat.Strata) == 0 {
			t.Errorf("%s: stratified campaign reported no strata", s)
		}
	}
}

// sharedSub caches one substrate kernel build for tests that only
// need a representative program.
var (
	subOnce sync.Once
	subKS   kernelSpec
	subP    *core.Program
	subInst bench.Instance
)

func sharedSub(t *testing.T) (kernelSpec, *core.Program, bench.Instance) {
	t.Helper()
	subOnce.Do(func() {
		rng := rand.New(rand.NewSource(42))
		subKS = genKernel(rng)
		subP, subInst = buildKernel(t, subKS, "diffsub-shared")
	})
	if subP == nil {
		t.Fatal("shared substrate kernel failed to build")
	}
	return subKS, subP, subInst
}
