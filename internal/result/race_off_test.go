//go:build !race

package result

const raceEnabled = false
