// Package result composes program-level fault-injection figures from
// per-region campaigns and caches those campaigns content-addressed on
// disk, so a source edit only re-runs the campaigns of the regions it
// touched (FastFlip's compose-per-section model mapped onto candidate
// loop regions; see DESIGN.md).
//
// The unit of caching is one region's campaign outcome, keyed by
// everything that determines it: the region's code fingerprint (the
// owning function's call closure under the scheme's pipeline), the
// scheme pipeline signature and build config, the trained profile, the
// instance identity, the fault model, and the sampling plan. The unit
// of composition is the partition-sum identity the fault engine
// guarantees — a RunRecord is a pure function of (program, scheme,
// instance, plan, budget) — which the differential tests in this
// package pin bit-for-bit against monolithic campaigns.
package result

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"rskip/internal/fault"
)

// entryVersion guards the on-disk entry format.
const entryVersion = 1

// Entry is the JSON-persisted outcome of one per-region campaign. Key
// holds the full uncompressed spec the filename was hashed from, so a
// hash collision (or a mis-addressed file) is detected on load instead
// of silently serving another campaign's counts.
type Entry struct {
	Version int          `json:"version"`
	Key     string       `json:"key"`
	Result  fault.Result `json:"result"`
}

// CorruptEntryError reports a result-cache entry that exists but
// cannot be used — truncated, undecodable, the wrong version, or
// addressed by a key it does not hold. Callers fall back to a live
// campaign run and overwrite the entry (mirroring the fault package's
// CorruptCheckpointError discipline, except that a result entry is
// always safely reproducible, so the fallback is automatic).
type CorruptEntryError struct {
	Path string
	Err  error
}

func (e *CorruptEntryError) Error() string {
	return fmt.Sprintf("result: cache entry %s is corrupt or mismatched (a live run will replace it): %v", e.Path, e.Err)
}

func (e *CorruptEntryError) Unwrap() error { return e.Err }

// Cache is a content-addressed store of per-region campaign results.
// Entries live as one JSON file per key under the cache directory;
// concurrent computations of the same key within a process are
// coalesced singleflight-style. A nil *Cache is valid and never hits.
type Cache struct {
	dir    string
	hits   atomic.Uint64
	misses atomic.Uint64

	mu       sync.Mutex
	inflight map[string]*flight
}

type flight struct {
	done chan struct{}
	res  fault.Result
	err  error
}

// Open returns a cache rooted at dir, creating it if needed.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("result: opening cache: %w", err)
	}
	return &Cache{dir: dir, inflight: map[string]*flight{}}, nil
}

// Hits and Misses report cumulative lookup counters (hits include
// singleflight coalescing onto a concurrent identical computation).
func (c *Cache) Hits() uint64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

func (c *Cache) Misses() uint64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}

// path addresses a key's entry file: the filename is the key's hash,
// the key itself travels inside the entry for verification.
func (c *Cache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, fmt.Sprintf("%x.json", sum))
}

// Get loads the entry for key. A missing entry returns (nil, nil); a
// damaged or mismatched one returns a *CorruptEntryError.
func (c *Cache) Get(key string) (*fault.Result, error) {
	if c == nil {
		return nil, nil
	}
	path := c.path(key)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, &CorruptEntryError{Path: path, Err: err}
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, &CorruptEntryError{Path: path, Err: err}
	}
	if e.Version != entryVersion {
		return nil, &CorruptEntryError{Path: path,
			Err: fmt.Errorf("entry version %d, want %d", e.Version, entryVersion)}
	}
	if e.Key != key {
		return nil, &CorruptEntryError{Path: path,
			Err: fmt.Errorf("entry holds key %q", e.Key)}
	}
	return &e.Result, nil
}

// Put persists the result for key atomically (temp file + rename).
func (c *Cache) Put(key string, res fault.Result) error {
	if c == nil {
		return nil
	}
	data, err := json.Marshal(Entry{Version: entryVersion, Key: key, Result: res})
	if err != nil {
		return fmt.Errorf("result: encoding cache entry: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, ".entry-*.json")
	if err != nil {
		return fmt.Errorf("result: writing cache entry: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmpName)
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("result: writing cache entry: %w", werr)
	}
	if err := os.Rename(tmpName, c.path(key)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("result: writing cache entry: %w", err)
	}
	return nil
}

// GetOrRun returns the cached result for key, or computes it with run
// and persists it. Concurrent callers with the same key coalesce onto
// one computation. A corrupt entry is replaced by a live run, never
// surfaced as a failure. cached reports whether the result came from
// the cache (disk or coalesced) rather than this call's run.
func (c *Cache) GetOrRun(key string, run func() (fault.Result, error)) (res fault.Result, cached bool, err error) {
	if c == nil {
		res, err = run()
		return res, false, err
	}
	if got, gerr := c.Get(key); got != nil && gerr == nil {
		c.hits.Add(1)
		return *got, true, nil
	}
	// A CorruptEntryError from Get is deliberately swallowed here: the
	// live run below recomputes the same pure function and overwrites
	// the damaged file.

	c.mu.Lock()
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err == nil {
			c.hits.Add(1)
			return f.res, true, nil
		}
		return fault.Result{}, false, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	defer func() {
		f.res, f.err = res, err
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		close(f.done)
	}()

	c.misses.Add(1)
	res, err = run()
	if err != nil {
		return fault.Result{}, false, err
	}
	if perr := c.Put(key, res); perr != nil {
		return fault.Result{}, false, perr
	}
	return res, false, nil
}
