package result

import (
	"encoding/json"
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"rskip/internal/fault"
)

func testResult(n int) fault.Result {
	r := fault.Result{N: n, Requested: n, Fired: n}
	r.Counts[fault.Correct] = n
	return r
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if got, err := c.Get("k1"); got != nil || err != nil {
		t.Fatalf("empty cache returned (%v, %v)", got, err)
	}
	want := testResult(7)
	if err := c.Put("k1", want); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("k1")
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.N != want.N || got.Counts != want.Counts {
		t.Errorf("round trip returned %+v, want %+v", got, want)
	}
	// Distinct keys address distinct entries.
	if got, _ := c.Get("k2"); got != nil {
		t.Error("k2 served k1's entry")
	}
}

// Every damage mode surfaces as *CorruptEntryError from Get — and
// GetOrRun transparently falls back to a live run that overwrites the
// damaged entry.
func TestCorruptEntryTypedErrorAndFallback(t *testing.T) {
	cases := []struct {
		name   string
		damage func(t *testing.T, c *Cache, key string)
	}{
		{"truncated JSON", func(t *testing.T, c *Cache, key string) {
			if err := os.WriteFile(c.path(key), []byte(`{"version":1,"key`), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"wrong version", func(t *testing.T, c *Cache, key string) {
			data, _ := json.Marshal(Entry{Version: 99, Key: key, Result: testResult(1)})
			if err := os.WriteFile(c.path(key), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"key mismatch", func(t *testing.T, c *Cache, key string) {
			data, _ := json.Marshal(Entry{Version: entryVersion, Key: "other", Result: testResult(1)})
			if err := os.WriteFile(c.path(key), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			c, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			const key = "campaign-key"
			tt.damage(t, c, key)

			_, gerr := c.Get(key)
			var ce *CorruptEntryError
			if !errors.As(gerr, &ce) {
				t.Fatalf("Get returned %v, want *CorruptEntryError", gerr)
			}
			if ce.Path != c.path(key) {
				t.Errorf("error names path %q, want %q", ce.Path, c.path(key))
			}

			// The fallback: GetOrRun runs live, reports a miss, and
			// heals the entry.
			ran := false
			res, cached, err := c.GetOrRun(key, func() (fault.Result, error) {
				ran = true
				return testResult(5), nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if !ran || cached {
				t.Errorf("corrupt entry did not fall back to a live run (ran=%v cached=%v)", ran, cached)
			}
			if res.N != 5 {
				t.Errorf("fallback returned %+v", res)
			}
			if got, err := c.Get(key); err != nil || got == nil || got.N != 5 {
				t.Errorf("entry not healed: (%+v, %v)", got, err)
			}
		})
	}
}

func TestGetOrRunCountsAndCoalesces(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int32
	run := func() (fault.Result, error) {
		runs.Add(1)
		return testResult(3), nil
	}
	if _, cached, err := c.GetOrRun("k", run); err != nil || cached {
		t.Fatalf("first lookup: cached=%v err=%v", cached, err)
	}
	if _, cached, err := c.GetOrRun("k", run); err != nil || !cached {
		t.Fatalf("second lookup: cached=%v err=%v", cached, err)
	}
	if n := runs.Load(); n != 1 {
		t.Errorf("run executed %d times, want 1", n)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("counters: %d hits / %d misses, want 1 / 1", c.Hits(), c.Misses())
	}

	// Concurrent identical keys coalesce onto one computation.
	c2, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var c2runs atomic.Int32
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := c2.GetOrRun("shared", func() (fault.Result, error) {
				c2runs.Add(1)
				<-gate
				return testResult(1), nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if n := c2runs.Load(); n != 1 {
		t.Errorf("concurrent lookups ran the computation %d times, want 1", n)
	}
	if c2.Hits()+c2.Misses() != 8 {
		t.Errorf("counters cover %d of 8 lookups", c2.Hits()+c2.Misses())
	}
	if c2.Misses() != 1 {
		t.Errorf("%d misses for one computation", c2.Misses())
	}
}

func TestGetOrRunPropagatesRunError(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("campaign failed")
	_, _, err = c.GetOrRun("k", func() (fault.Result, error) {
		return fault.Result{}, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v, want %v", err, boom)
	}
	// A failed run must not poison the cache: the next lookup runs.
	res, cached, err := c.GetOrRun("k", func() (fault.Result, error) {
		return testResult(2), nil
	})
	if err != nil || cached || res.N != 2 {
		t.Errorf("retry after failure: (%+v, %v, %v)", res, cached, err)
	}
}

func TestNilCacheIsValid(t *testing.T) {
	var c *Cache
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Error("nil cache reports traffic")
	}
	if got, err := c.Get("k"); got != nil || err != nil {
		t.Errorf("nil cache Get returned (%v, %v)", got, err)
	}
	if err := c.Put("k", testResult(1)); err != nil {
		t.Errorf("nil cache Put errored: %v", err)
	}
	res, cached, err := c.GetOrRun("k", func() (fault.Result, error) {
		return testResult(4), nil
	})
	if err != nil || cached || res.N != 4 {
		t.Errorf("nil cache GetOrRun returned (%+v, %v, %v)", res, cached, err)
	}
}
