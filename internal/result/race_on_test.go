//go:build race

package result

// raceEnabled steers a few purely-deterministic (and very slow under
// the race detector) proofs out of -race runs; every test that spawns
// concurrent work stays in.
const raceEnabled = true
