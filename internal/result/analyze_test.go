package result

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"rskip/internal/core"
	"rskip/internal/fault"
)

// reportFigures strips a Report to the fields a second analysis must
// reproduce bit-for-bit: everything except the cache-traffic
// counters.
type reportFigures struct {
	Composed     fault.Result
	Protection   float64
	ProtectionCI [2]float64
	Regions      []RegionReport
	Budget       uint64
}

func figures(rep *Report) reportFigures {
	regions := make([]RegionReport, len(rep.Regions))
	copy(regions, rep.Regions)
	for i := range regions {
		regions[i].Cached = false  // cache traffic is not a figure
		regions[i].WallSeconds = 0 // wall time is advisory, not a figure
	}
	return reportFigures{
		Composed: rep.Composed, Protection: rep.Protection,
		ProtectionCI: rep.ProtectionCI, Regions: regions, Budget: rep.Budget,
	}
}

// A cold analysis misses every region; an immediate warm re-analysis
// hits every region and reproduces the figures bit-for-bit.
func TestAnalyzeColdThenWarm(t *testing.T) {
	_, p, inst := sharedSub(t)
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Cache: cache, PerRegionN: 30, Seed: 3, InstKey: "test0"}

	cold, err := Analyze(context.Background(), p, core.SWIFT, inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Regions) < 2 {
		t.Fatalf("substrate kernel decomposed into %d regions, want >= 2", len(cold.Regions))
	}
	if cold.CacheHits != 0 || cold.CacheMisses != len(cold.Regions) {
		t.Errorf("cold analysis: %d hits / %d misses, want 0 / %d",
			cold.CacheHits, cold.CacheMisses, len(cold.Regions))
	}
	for _, r := range cold.Regions {
		if r.Cached {
			t.Errorf("cold analysis marked region %s cached", r.Func)
		}
	}
	if cold.Composed.N != len(cold.Regions)*opts.PerRegionN {
		t.Errorf("composed N = %d, want %d regions x %d replicas",
			cold.Composed.N, len(cold.Regions), opts.PerRegionN)
	}
	if lo, hi := cold.ProtectionCI[0], cold.ProtectionCI[1]; cold.Protection < lo || cold.Protection > hi {
		t.Errorf("protection %.2f outside its own CI [%.2f, %.2f]", cold.Protection, lo, hi)
	}
	var wsum float64
	for _, r := range cold.Regions {
		wsum += r.Weight
	}
	if wsum < 0.999 || wsum > 1.001 {
		t.Errorf("region weights sum to %v, want 1", wsum)
	}

	warm, err := Analyze(context.Background(), p, core.SWIFT, inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != len(cold.Regions) || warm.CacheMisses != 0 {
		t.Errorf("warm analysis: %d hits / %d misses, want %d / 0",
			warm.CacheHits, warm.CacheMisses, len(cold.Regions))
	}
	if !reflect.DeepEqual(figures(cold), figures(warm)) {
		t.Errorf("warm figures diverge from cold:\n  cold %+v\n  warm %+v", figures(cold), figures(warm))
	}
	if cache.Hits() != uint64(warm.CacheHits) || cache.Misses() != uint64(cold.CacheMisses) {
		t.Errorf("cache counters (%d hits, %d misses) disagree with reports", cache.Hits(), cache.Misses())
	}
}

// The tentpole acceptance criterion: after editing ONE stage
// function, a warm analysis re-runs only the edited region (cache-hit
// counters prove it) and still reports program-level figures
// bit-identical to a cold, fresh-cache analysis of the edited
// program.
func TestAnalyzeIncrementalAfterOneFunctionEdit(t *testing.T) {
	ks, p, inst := sharedSub(t)
	for _, s := range []core.Scheme{core.SWIFT, core.RSkip} {
		t.Run(s.String(), func(t *testing.T) {
			dir := t.TempDir()
			cache, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			opts := Options{Cache: cache, PerRegionN: 30, Seed: 9, InstKey: "test0"}

			base, err := Analyze(context.Background(), p, s, inst, opts)
			if err != nil {
				t.Fatal(err)
			}
			nRegions := len(base.Regions)

			// Edit one stage: change its folded constant. The program
			// text, lowered code and trained profile of that stage
			// change; every other stage is untouched.
			edited := ks
			edited.stages = append([]stageSpec(nil), ks.stages...)
			edited.stages[1].c++
			// Same benchmark name: the edit models a source change to
			// the same program, not a different benchmark.
			p2, inst2 := buildKernel(t, edited, "diffsub-shared")

			warm, err := Analyze(context.Background(), p2, s, inst2, opts)
			if err != nil {
				t.Fatal(err)
			}
			if warm.CacheMisses != 1 || warm.CacheHits != nRegions-1 {
				t.Fatalf("incremental analysis: %d hits / %d misses, want %d / 1",
					warm.CacheHits, warm.CacheMisses, nRegions-1)
			}
			for i, r := range warm.Regions {
				wantCached := r.Func != "stage1"
				if r.Cached != wantCached {
					t.Errorf("region %d (%s): cached = %v, want %v", i, r.Func, r.Cached, wantCached)
				}
				// Fingerprint stability is the key mechanism: only the
				// edited stage's fingerprint moved.
				if r.Func != "stage1" && r.Fingerprint != base.Regions[i].Fingerprint {
					t.Errorf("region %s: fingerprint changed without an edit", r.Func)
				}
				if r.Func == "stage1" && r.Fingerprint == base.Regions[i].Fingerprint {
					t.Errorf("region stage1: fingerprint unchanged by the edit")
				}
			}

			// The composed figures must equal a cold analysis of the
			// edited program — the cached unedited-region entries are
			// exact, not approximations (disjoint stages; see DESIGN.md
			// on the independence assumption).
			coldCache, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			coldOpts := opts
			coldOpts.Cache = coldCache
			cold, err := Analyze(context.Background(), p2, s, inst2, coldOpts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(figures(warm), figures(cold)) {
				t.Errorf("incremental figures diverge from cold re-analysis:\n  warm %+v\n  cold %+v",
					figures(warm), figures(cold))
			}
		})
	}
}

// Without a cache, Analyze still composes (every region runs live).
func TestAnalyzeNilCache(t *testing.T) {
	_, p, inst := sharedSub(t)
	rep, err := Analyze(context.Background(), p, core.Unsafe, inst, Options{PerRegionN: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHits != 0 || rep.CacheMisses != len(rep.Regions) {
		t.Errorf("nil-cache analysis: %d hits / %d misses", rep.CacheHits, rep.CacheMisses)
	}
	if rep.Composed.N == 0 {
		t.Error("nil-cache analysis produced no runs")
	}
}

// Changing the scheme, the fault mix, the skip width, the seed or the
// replica count must change every region's cache key: none of the
// first analysis's entries may be served for the second.
func TestAnalyzeKeySensitivity(t *testing.T) {
	_, p, inst := sharedSub(t)
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Cache: cache, PerRegionN: 20, Seed: 3, InstKey: "test0"}
	if _, err := Analyze(context.Background(), p, core.SWIFT, inst, base); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		scheme core.Scheme
		mut    func(*Options)
	}{
		{"scheme", core.SWIFTR, func(o *Options) {}},
		{"mix", core.SWIFT, func(o *Options) { o.Mix = fault.Mix{Skip: 1} }},
		{"skip width", core.SWIFT, func(o *Options) { o.Mix = fault.Mix{Skip: 1}; o.SkipWidth = 3 }},
		{"seed", core.SWIFT, func(o *Options) { o.Seed = 4 }},
		{"replica count", core.SWIFT, func(o *Options) { o.PerRegionN = 21 }},
		{"instance", core.SWIFT, func(o *Options) { o.InstKey = "test1" }},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			opts := base
			tt.mut(&opts)
			rep, err := Analyze(context.Background(), p, tt.scheme, inst, opts)
			if err != nil {
				t.Fatal(err)
			}
			if rep.CacheHits != 0 {
				t.Errorf("changed %s but %d regions still hit the old entries", tt.name, rep.CacheHits)
			}
		})
	}

	// The unmutated options still hit everything, proving the misses
	// above came from the keys and not cache misbehaviour.
	rep, err := Analyze(context.Background(), p, core.SWIFT, inst, base)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheMisses != 0 {
		t.Errorf("baseline re-analysis missed %d regions", rep.CacheMisses)
	}
}

// Analyze surfaces a typed conflict when its per-region config is
// invalid (regression: the error must carry fault.ConfigConflictError
// through, not wrap it into an opaque string).
func TestAnalyzePropagatesConfigErrors(t *testing.T) {
	_, p, inst := sharedSub(t)
	_, err := Analyze(context.Background(), p, core.SWIFT, inst, Options{
		PerRegionN: 10, Mix: fault.Mix{RegFile: -1},
	})
	if err == nil {
		t.Fatal("negative mix weight accepted")
	}
	if want := "Mix.RegFile"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}

// Per-region seeds differ across regions (a shared stream would
// correlate the samples) yet are derived, not stored: the same
// (Seed, fingerprint) always reproduces them.
func TestRegionSeedsDistinctAndStable(t *testing.T) {
	_, p, inst := sharedSub(t)
	trace := traceOf(t, p, core.Unsafe, inst)
	layouts := layoutOwners(trace)
	seen := map[int64]string{}
	for _, lay := range layouts {
		fp := regionFP(p, core.Unsafe, lay.owner)
		seed := regionSeed(11, fp)
		if prev, dup := seen[seed]; dup {
			t.Errorf("regions %s and %s share sampling seed %d", prev, fp, seed)
		}
		seen[seed] = fp
		if regionSeed(11, fp) != seed {
			t.Errorf("region seed for %s not stable", fp)
		}
	}
	if len(seen) < 2 {
		t.Fatalf("substrate kernel yielded %d regions", len(seen))
	}
}

// Budget buckets are stable under small instruction-count drift and
// included in every key.
func TestBudgetBucketing(t *testing.T) {
	cases := []struct {
		instrs uint64
		want   uint64
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {1000, 1024}, {1024, 1024}, {1025, 2048},
	}
	for _, tt := range cases {
		if got := budgetFor(1, tt.instrs); got != tt.want {
			t.Errorf("budgetFor(1, %d) = %d, want %d", tt.instrs, got, tt.want)
		}
	}
	if got := budgetFor(50, 1000); got != 50*1024 {
		t.Errorf("budgetFor(50, 1000) = %d, want %d", got, 50*1024)
	}
	_, p, _ := sharedSub(t)
	fp := "x"
	k1 := specKey(p, core.SWIFT, Options{}, 0, fp, 10, 1024)
	k2 := specKey(p, core.SWIFT, Options{}, 0, fp, 10, 2048)
	if k1 == k2 {
		t.Error("budget not part of the cache key")
	}
}
