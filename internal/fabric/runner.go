package fabric

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Heartbeat reports intra-shard progress (done runs) back to the
// lease. A non-nil error — usually ErrLeaseLost — tells the runner to
// abandon the shard: someone else owns it now.
type Heartbeat func(done int) error

// ShardRunner executes one shard of a plan and returns its serialized
// result payload. Implementations must be deterministic in the shard
// range — the coordinator freely re-runs shards on other workers
// after a lease expires, and exactness relies on every execution of a
// range producing identical records. The runner should call hb after
// each sub-batch; hb may be nil.
type ShardRunner interface {
	RunShard(ctx context.Context, sh Shard, hb Heartbeat) ([]byte, error)
}

// RunnerFunc adapts a function to ShardRunner.
type RunnerFunc func(ctx context.Context, sh Shard, hb Heartbeat) ([]byte, error)

// RunShard implements ShardRunner.
func (f RunnerFunc) RunShard(ctx context.Context, sh Shard, hb Heartbeat) ([]byte, error) {
	return f(ctx, sh, hb)
}

// localPollInterval is how often an idle local worker re-polls the
// coordinator while other workers hold every remaining shard — short
// enough that an expired straggler lease is stolen promptly.
const localPollInterval = 10 * time.Millisecond

// RunLocal drives workers goroutines that pull leases from c and
// execute them on r until the plan completes or ctx is cancelled —
// the in-process worker pool, rebuilt on the same lease contract the
// remote worker daemons use. Worker IDs are name-0 … name-(n-1).
//
// Cancellation models a crash, deliberately: a cancelled worker
// abandons its lease without releasing it, and the shard comes back
// only when the TTL expires — exactly what the coordinator sees when
// a remote worker is SIGKILLed. A runner error other than
// cancellation releases the lease for immediate reassignment and the
// worker keeps going (the shard may succeed elsewhere, or here,
// later).
func RunLocal(ctx context.Context, c *Coordinator, workers int, name string, r ShardRunner) error {
	if workers <= 0 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		id := fmt.Sprintf("%s-%d", name, w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			runWorkerLoop(ctx, c, id, r)
		}()
	}
	wg.Wait()
	if err := c.Err(); err != nil {
		return err
	}
	return ctx.Err()
}

// runWorkerLoop is one local worker: lease, run, complete, repeat.
func runWorkerLoop(ctx context.Context, c *Coordinator, id string, r ShardRunner) {
	lastFailed, failures := -1, 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.Done():
			return
		default:
		}
		sh, ok := c.Lease(id)
		if !ok {
			// Nothing available right now: either done (the next loop
			// iteration exits) or every remaining shard is leased out —
			// wait for a completion or an expiry to steal.
			select {
			case <-ctx.Done():
				return
			case <-c.Done():
				return
			case <-time.After(localPollInterval):
			}
			continue
		}
		payload, err := r.RunShard(ctx, sh, func(done int) error {
			return c.Heartbeat(id, sh.ID, done)
		})
		switch {
		case err == nil:
			_ = c.Complete(id, sh.ID, payload)
			lastFailed, failures = -1, 0
		case ctx.Err() != nil:
			// Crash semantics: abandon without releasing; the TTL
			// reclaims the lease.
			return
		case errors.Is(err, ErrLeaseLost):
			// Stolen mid-run: drop the work and move on.
		default:
			// Deterministic runner failures (a broken build) would
			// otherwise cycle lease→fail→release forever; give the shard
			// a few chances on this worker, then fail the plan.
			if sh.ID == lastFailed {
				failures++
			} else {
				lastFailed, failures = sh.ID, 1
			}
			c.Release(id, sh.ID)
			if failures >= 3 {
				c.Abort(fmt.Errorf("fabric: shard %d failed %d times on %s: %w", sh.ID, failures, id, err))
				return
			}
		}
	}
}
