package fabric

import "encoding/json"

// The fabric wire protocol: three JSON POST endpoints a coordinator
// daemon exposes and a worker daemon calls. The types live here —
// next to the coordinator whose methods they mirror 1:1 — so the two
// rskipd roles cannot drift apart.
//
//	POST /v1/fabric/lease      WireLeaseRequest  → 200 WireLease | 204 (no work)
//	POST /v1/fabric/heartbeat  WireHeartbeat     → 200 | 409 lease_lost | 410 gone
//	POST /v1/fabric/complete   WireComplete      → 200 | 409 lease_lost | 410 gone
//
// 409 means the coordinator stole the lease (the worker abandons the
// shard and leases again); 410 means the job is gone (finished,
// cancelled, or the daemon restarted) and the worker drops any state
// for it. Payload contents are opaque to the protocol — campaigns put
// a fabric/campaign.ShardPayload there.

// WireLeaseRequest asks for the next available shard of any job the
// coordinator is running.
type WireLeaseRequest struct {
	// Worker is the caller's stable identity across calls — lease
	// ownership, heartbeats and completions are checked against it.
	Worker string `json:"worker"`
}

// WireLease is one granted lease.
type WireLease struct {
	// JobID routes heartbeats and completions back to the campaign.
	JobID string `json:"job_id"`
	// PlanKey is the coordinator's campaign fingerprint. The worker
	// derives the same key from Spec independently and refuses the
	// shard on mismatch — configuration drift must fail loudly.
	PlanKey string `json:"plan_key"`
	// N is the plan's total run count (for progress display).
	N int `json:"n"`
	// Shard is the granted index range.
	Shard Shard `json:"shard"`
	// LeaseTTLMS tells the worker how often it must heartbeat.
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
	// Spec is the job's build/run specification, opaque to the fabric
	// (for campaigns: the campaign request JSON). Identical specs are
	// content-addressed into the worker's build cache, so every shard
	// of a campaign — and every campaign over the same benchmark and
	// config — reuses one build.
	Spec json.RawMessage `json:"spec"`
}

// WireHeartbeat extends a lease and reports intra-shard progress.
type WireHeartbeat struct {
	Worker string `json:"worker"`
	JobID  string `json:"job_id"`
	Shard  int    `json:"shard"`
	// Done is the number of completed runs within the shard.
	Done int `json:"done"`
}

// WireComplete delivers a finished shard's payload.
type WireComplete struct {
	Worker  string          `json:"worker"`
	JobID   string          `json:"job_id"`
	Shard   int             `json:"shard"`
	Payload json.RawMessage `json:"payload"`
}
