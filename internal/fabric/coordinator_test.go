package fabric

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for lease-expiry tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestCoordinator(n, shardSize int, clk *fakeClock, opt Options) *Coordinator {
	opt.Now = clk.now
	if opt.LeaseTTL == 0 {
		opt.LeaseTTL = time.Second
	}
	return NewCoordinator(Plan{Key: "k", N: n, ShardSize: shardSize}, opt)
}

func TestLeaseLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	c := newTestCoordinator(10, 5, clk, Options{})

	sh1, ok := c.Lease("w1")
	if !ok || sh1.Lo != 0 || sh1.Hi != 5 {
		t.Fatalf("first lease = %+v, %v", sh1, ok)
	}
	sh2, ok := c.Lease("w2")
	if !ok || sh2.Lo != 5 || sh2.Hi != 10 {
		t.Fatalf("second lease = %+v, %v", sh2, ok)
	}
	if _, ok := c.Lease("w3"); ok {
		t.Fatal("third lease granted with every shard out")
	}
	if err := c.Complete("w1", sh1.ID, []byte("a")); err != nil {
		t.Fatalf("complete sh1: %v", err)
	}
	if err := c.Complete("w2", sh2.ID, []byte("b")); err != nil {
		t.Fatalf("complete sh2: %v", err)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("plan not done after all completions")
	}
	got, err := c.Payloads()
	if err != nil {
		t.Fatalf("payloads: %v", err)
	}
	if string(got[0]) != "a" || string(got[1]) != "b" {
		t.Fatalf("payloads = %q", got)
	}
	if st := c.Stats(); st.LeasesGranted != 2 || st.ShardsCompleted != 2 || st.Workers != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestExpiredLeaseIsStolen(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	c := newTestCoordinator(4, 4, clk, Options{LeaseTTL: time.Second})

	sh, ok := c.Lease("dead")
	if !ok {
		t.Fatal("no lease")
	}
	// Healthy heartbeats keep the lease alive past the nominal TTL.
	clk.advance(900 * time.Millisecond)
	if err := c.Heartbeat("dead", sh.ID, 1); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	clk.advance(900 * time.Millisecond)
	if _, ok := c.Lease("thief"); ok {
		t.Fatal("lease stolen while heartbeats were current")
	}
	// Silence past the TTL hands the shard to the next caller.
	clk.advance(200 * time.Millisecond)
	stolen, ok := c.Lease("thief")
	if !ok || stolen.ID != sh.ID {
		t.Fatalf("steal = %+v, %v", stolen, ok)
	}
	if err := c.Heartbeat("dead", sh.ID, 2); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("dead worker heartbeat = %v, want ErrLeaseLost", err)
	}
	if st := c.Stats(); st.LeasesExpired != 1 {
		t.Fatalf("stats = %+v, want 1 expired lease", st)
	}
	// First completion wins; the loser's payload is discarded.
	if err := c.Complete("dead", sh.ID, []byte("late-but-first")); err != nil {
		t.Fatalf("deterministic completion from a stolen lease must be accepted: %v", err)
	}
	if err := c.Complete("thief", sh.ID, []byte("second")); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("second completion = %v, want ErrLeaseLost", err)
	}
	got, err := c.Payloads()
	if err != nil {
		t.Fatalf("payloads: %v", err)
	}
	if string(got[0]) != "late-but-first" {
		t.Fatalf("payload = %q, want first completion", got[0])
	}
}

func TestReleaseReassignsImmediately(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	c := newTestCoordinator(4, 4, clk, Options{})
	sh, _ := c.Lease("w1")
	c.Release("w1", sh.ID)
	if got, ok := c.Lease("w2"); !ok || got.ID != sh.ID {
		t.Fatalf("released shard not reassigned: %+v, %v", got, ok)
	}
	// Releasing someone else's lease is a no-op.
	c.Release("w1", sh.ID)
	if err := c.Heartbeat("w2", sh.ID, 0); err != nil {
		t.Fatalf("w2's lease damaged by stale release: %v", err)
	}
}

func TestProgressAndOnComplete(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	var mu sync.Mutex
	var sunk []int
	var last Progress
	c := newTestCoordinator(10, 5, clk, Options{
		OnComplete: func(sh Shard, payload []byte) error {
			mu.Lock()
			sunk = append(sunk, sh.ID)
			mu.Unlock()
			return nil
		},
		OnProgress: func(p Progress) {
			mu.Lock()
			last = p
			mu.Unlock()
		},
	})
	sh, _ := c.Lease("w")
	if err := c.Heartbeat("w", sh.ID, 3); err != nil {
		t.Fatal(err)
	}
	if pr := c.Progress(); pr.Done != 3 || pr.N != 10 {
		t.Fatalf("progress after heartbeat = %+v", pr)
	}
	if err := c.Complete("w", sh.ID, nil); err != nil {
		t.Fatal(err)
	}
	sh2, _ := c.Lease("w")
	if err := c.Complete("w", sh2.ID, nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sunk) != 2 {
		t.Fatalf("OnComplete saw shards %v, want 2", sunk)
	}
	if last.Done != 10 || last.DoneShards != 2 {
		t.Fatalf("final progress = %+v", last)
	}
	if _, err := c.Payloads(); err == nil {
		t.Fatal("Payloads succeeded although OnComplete streamed them away")
	}
}

func TestOnCompleteErrorAbortsPlan(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	c := newTestCoordinator(10, 5, clk, Options{
		OnComplete: func(Shard, []byte) error { return errors.New("corrupt payload") },
	})
	sh, _ := c.Lease("w")
	_ = c.Complete("w", sh.ID, nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := c.Wait(ctx); err == nil || ctx.Err() != nil {
		t.Fatalf("Wait = %v, want abort error", err)
	}
}

func TestRunLocalCompletesPlan(t *testing.T) {
	c := NewCoordinator(Plan{Key: "k", N: 100, ShardSize: 7}, Options{})
	runner := RunnerFunc(func(ctx context.Context, sh Shard, hb Heartbeat) ([]byte, error) {
		if hb != nil {
			if err := hb(sh.Size()); err != nil {
				return nil, err
			}
		}
		return []byte(fmt.Sprintf("%d-%d", sh.Lo, sh.Hi)), nil
	})
	if err := RunLocal(context.Background(), c, 4, "local", runner); err != nil {
		t.Fatalf("RunLocal: %v", err)
	}
	payloads, err := c.Payloads()
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range c.Plan().Shards() {
		if want := fmt.Sprintf("%d-%d", sh.Lo, sh.Hi); string(payloads[i]) != want {
			t.Fatalf("payload[%d] = %q, want %q", i, payloads[i], want)
		}
	}
}

func TestRunLocalAbortsOnPersistentFailure(t *testing.T) {
	c := NewCoordinator(Plan{Key: "k", N: 10, ShardSize: 5}, Options{})
	runner := RunnerFunc(func(ctx context.Context, sh Shard, hb Heartbeat) ([]byte, error) {
		if sh.ID == 1 {
			return nil, errors.New("broken build")
		}
		return []byte("ok"), nil
	})
	err := RunLocal(context.Background(), c, 2, "local", runner)
	if err == nil {
		t.Fatal("RunLocal succeeded with a permanently failing shard")
	}
}

// OnShardDone observes every first completion with the wall time from
// the shard's FIRST lease — a steal does not reset the clock — and is
// never invoked for duplicate completions.
func TestOnShardDoneObservesFirstLeaseToCompletion(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	type obs struct {
		shard  int
		worker string
		leased time.Duration
	}
	var seen []obs
	c := newTestCoordinator(10, 5, clk, Options{
		OnShardDone: func(sh Shard, worker string, leased time.Duration) {
			seen = append(seen, obs{sh.ID, worker, leased})
		},
	})

	sh1, _ := c.Lease("w1")
	clk.advance(300 * time.Millisecond)
	if err := c.Complete("w1", sh1.ID, []byte("a")); err != nil {
		t.Fatal(err)
	}

	// Second shard: w2 leases, dies; w3 steals after expiry and
	// finishes. The observed duration spans from w2's lease.
	sh2, _ := c.Lease("w2")
	clk.advance(2 * time.Second) // past the 1s test TTL
	sh2b, ok := c.Lease("w3")
	if !ok || sh2b.ID != sh2.ID {
		t.Fatalf("steal: got %+v ok=%v, want shard %d", sh2b, ok, sh2.ID)
	}
	clk.advance(500 * time.Millisecond)
	if err := c.Complete("w3", sh2.ID, []byte("b")); err != nil {
		t.Fatal(err)
	}
	// A late duplicate from the dead worker is rejected and unobserved.
	if err := c.Complete("w2", sh2.ID, []byte("stale")); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("duplicate completion: %v", err)
	}

	want := []obs{
		{sh1.ID, "w1", 300 * time.Millisecond},
		{sh2.ID, "w3", 2500 * time.Millisecond},
	}
	if len(seen) != len(want) {
		t.Fatalf("observed %d completions, want %d: %+v", len(seen), len(want), seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("observation %d = %+v, want %+v", i, seen[i], want[i])
		}
	}
}
