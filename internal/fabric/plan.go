// Package fabric is the transport-agnostic campaign execution fabric:
// a deterministic decomposition of one campaign's run indexes into
// shards (Plan), a lease-based Coordinator that hands shards to
// workers and steals them back from stragglers, and the ShardRunner
// contract both the in-process worker pool and remote worker daemons
// implement.
//
// The fabric's exactness argument rests on one invariant inherited
// from the fault engine: a run record is a pure function of its run
// index (every fault plan is pre-drawn from the campaign seed by
// index). A shard is therefore just a half-open index range — it does
// not matter which worker executes it, how often it is re-executed
// after a lease expires, or in what order shards complete: merging
// the per-shard records by index reproduces the single-node record
// array bit for bit, and every aggregate (outcome counts, protection
// CIs) follows.
//
// The package is deliberately dependency-free (stdlib only) so the
// fault engine can build its own batch loop on fabric.Ranges without
// an import cycle; the campaign-specific glue (executing a shard via
// the fault engine, merging record payloads) lives in
// fabric/campaign.
package fabric

import "fmt"

// Shard is one contiguous half-open index range [Lo, Hi) of a
// campaign plan. IDs are dense and ordered: shard i covers the i-th
// range of the plan's split, so a payload array indexed by shard ID
// reassembles in run-index order.
type Shard struct {
	ID int `json:"id"`
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Size is the number of runs the shard covers.
func (s Shard) Size() int { return s.Hi - s.Lo }

// Key fingerprints the shard inside a plan: the plan key (the same
// fingerprint campaign checkpoints use) plus the index range. Two
// workers that derive the same shard key are provably executing the
// same runs of the same campaign, which is what makes reassignment
// and resume-anywhere free.
func (s Shard) Key(planKey string) string {
	return fmt.Sprintf("%s|shard=%d-%d", planKey, s.Lo, s.Hi)
}

// Split decomposes the shard into consecutive sub-ranges of at most
// size runs — the granularity at which a worker heartbeats progress
// and checks for cancellation mid-shard.
func (s Shard) Split(size int) []Shard {
	sub := Ranges(s.Size(), size)
	for i := range sub {
		sub[i].Lo += s.Lo
		sub[i].Hi += s.Lo
	}
	return sub
}

// Plan is the deterministic decomposition of a campaign's N runs into
// shards of at most ShardSize runs. Identical (Key, N, ShardSize)
// triples decompose identically everywhere — the coordinator and
// every worker derive the same shard table independently.
type Plan struct {
	// Key is the campaign identity, fingerprinted the same way the
	// fault engine keys its checkpoints (fault.CampaignKey): benchmark,
	// build config, scheme, N, seed, mix, hang factor. A worker
	// cross-checks its locally derived key against the coordinator's
	// before running a shard, so configuration drift is an error, not
	// a silent divergence.
	Key string `json:"key"`
	// N is the total run count.
	N int `json:"n"`
	// ShardSize caps runs per shard; <= 0 means one shard.
	ShardSize int `json:"shard_size"`
}

// Shards returns the plan's shard table.
func (p Plan) Shards() []Shard { return Ranges(p.N, p.ShardSize) }

// NumShards is len(p.Shards()) without materializing the table.
func (p Plan) NumShards() int {
	if p.N <= 0 {
		return 0
	}
	size := p.ShardSize
	if size <= 0 || size > p.N {
		return 1
	}
	return (p.N + size - 1) / size
}

// Ranges splits [0, n) into consecutive half-open ranges of at most
// size, in order. It is the one range-split in the codebase: the
// fault engine's batch loop, a shard's heartbeat sub-batches and the
// coordinator's shard table all derive from it, so "batch", "shard"
// and "checkpoint interval" can never disagree about boundary
// arithmetic. size <= 0 yields a single range covering everything;
// n <= 0 yields none.
func Ranges(n, size int) []Shard {
	if n <= 0 {
		return nil
	}
	if size <= 0 || size > n {
		return []Shard{{ID: 0, Lo: 0, Hi: n}}
	}
	out := make([]Shard, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Shard{ID: len(out), Lo: lo, Hi: hi})
	}
	return out
}
