package fabric

import "testing"

func TestRangesCoverDisjoint(t *testing.T) {
	for _, tc := range []struct{ n, size, want int }{
		{0, 10, 0}, {-3, 10, 0},
		{1, 1, 1}, {10, 3, 4}, {9, 3, 3}, {10, 100, 1},
		{10, 0, 1}, {10, -1, 1}, {1000, 100, 10},
	} {
		got := Ranges(tc.n, tc.size)
		if len(got) != tc.want {
			t.Fatalf("Ranges(%d, %d): %d shards, want %d", tc.n, tc.size, len(got), tc.want)
		}
		next := 0
		for i, sh := range got {
			if sh.ID != i {
				t.Fatalf("Ranges(%d, %d): shard %d has ID %d", tc.n, tc.size, i, sh.ID)
			}
			if sh.Lo != next {
				t.Fatalf("Ranges(%d, %d): shard %d starts at %d, want %d (gap or overlap)", tc.n, tc.size, i, sh.Lo, next)
			}
			if sh.Size() <= 0 {
				t.Fatalf("Ranges(%d, %d): shard %d is empty", tc.n, tc.size, i)
			}
			if tc.size > 0 && sh.Size() > tc.size {
				t.Fatalf("Ranges(%d, %d): shard %d covers %d > size", tc.n, tc.size, i, sh.Size())
			}
			next = sh.Hi
		}
		if tc.n > 0 && next != tc.n {
			t.Fatalf("Ranges(%d, %d): covers [0, %d), want [0, %d)", tc.n, tc.size, next, tc.n)
		}
	}
}

func TestPlanNumShardsMatchesShards(t *testing.T) {
	for _, p := range []Plan{
		{N: 0, ShardSize: 5}, {N: 7, ShardSize: 0}, {N: 7, ShardSize: 2},
		{N: 100, ShardSize: 100}, {N: 101, ShardSize: 100},
	} {
		if got, want := p.NumShards(), len(p.Shards()); got != want {
			t.Errorf("Plan%+v: NumShards = %d, len(Shards) = %d", p, got, want)
		}
	}
}

func TestShardSplitCoversShard(t *testing.T) {
	sh := Shard{ID: 3, Lo: 250, Hi: 337}
	sub := sh.Split(25)
	next := sh.Lo
	for _, s := range sub {
		if s.Lo != next {
			t.Fatalf("Split: sub-shard starts at %d, want %d", s.Lo, next)
		}
		next = s.Hi
	}
	if next != sh.Hi {
		t.Fatalf("Split: covers to %d, want %d", next, sh.Hi)
	}
}

func TestShardKeyCarriesPlanKeyAndRange(t *testing.T) {
	sh := Shard{ID: 1, Lo: 100, Hi: 200}
	if got, want := sh.Key("bench=x|seed=1"), "bench=x|seed=1|shard=100-200"; got != want {
		t.Fatalf("Shard.Key = %q, want %q", got, want)
	}
}
