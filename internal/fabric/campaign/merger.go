package campaign

import (
	"encoding/json"
	"fmt"
	"sync"

	"rskip/internal/fabric"
	"rskip/internal/fault"
)

// ShardPayload is the wire form of one completed shard: the records
// for [Lo, Hi), tagged with the shard key so a merger can refuse a
// payload from a drifted configuration or a mislabelled range.
type ShardPayload struct {
	// Key is fabric.Shard.Key(planKey) — the campaign key plus the
	// index range, derived independently by the worker.
	Key     string            `json:"key"`
	Lo      int               `json:"lo"`
	Hi      int               `json:"hi"`
	Records []fault.RunRecord `json:"records"`
}

// Merger reassembles shard payloads into the full record array and
// aggregates it through the executor's own fold — the same
// aggregation the single-node path runs, so the merged Result is
// bit-identical to an undistributed campaign by construction. Safe
// for concurrent Add calls.
type Merger struct {
	x  *fault.Executor
	mu sync.Mutex
	// recs is the full-length record array, filled shard by shard.
	recs []fault.RunRecord
	// merged marks shards already accepted, by shard key.
	merged map[string]bool
	done   int
}

// NewMerger builds a merger over the coordinator-side executor (the
// coordinator prepares one anyway to derive the plan key; the merger
// reuses it for aggregation, including stratification tables).
func NewMerger(x *fault.Executor) *Merger {
	return &Merger{
		x:      x,
		recs:   make([]fault.RunRecord, x.N()),
		merged: map[string]bool{},
	}
}

// Add validates and merges one completed shard's payload. It rejects
// payloads whose key does not match the shard slot they arrived for,
// whose range disagrees with the shard, whose record count is wrong,
// or that contain unfinished records — each a symptom of a worker
// bug that must fail loudly rather than skew counts.
func (m *Merger) Add(sh fabric.Shard, payload []byte) error {
	var p ShardPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return fmt.Errorf("campaign: decoding shard %d payload: %w", sh.ID, err)
	}
	if want := sh.Key(m.x.Key()); p.Key != want {
		return fmt.Errorf("campaign: shard %d payload key mismatch (configuration drift):\n  have %s\n  want %s", sh.ID, p.Key, want)
	}
	if p.Lo != sh.Lo || p.Hi != sh.Hi {
		return fmt.Errorf("campaign: shard %d payload covers [%d, %d), lease covers [%d, %d)", sh.ID, p.Lo, p.Hi, sh.Lo, sh.Hi)
	}
	if len(p.Records) != sh.Size() {
		return fmt.Errorf("campaign: shard %d payload holds %d records for %d runs", sh.ID, len(p.Records), sh.Size())
	}
	for i := range p.Records {
		if !p.Records[i].Done {
			return fmt.Errorf("campaign: shard %d payload has unfinished record at index %d", sh.ID, p.Lo+i)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.merged[p.Key] {
		return fmt.Errorf("campaign: shard %d merged twice", sh.ID)
	}
	m.merged[p.Key] = true
	copy(m.recs[p.Lo:p.Hi], p.Records)
	m.done += len(p.Records)
	return nil
}

// Done reports how many runs have been merged.
func (m *Merger) Done() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.done
}

// Partial aggregates whatever has been merged so far — the progress
// view. Unmerged indexes are not-Done records, which the fold skips.
func (m *Merger) Partial() (fault.Result, error) {
	m.mu.Lock()
	recs := make([]fault.RunRecord, len(m.recs))
	copy(recs, m.recs)
	m.mu.Unlock()
	return m.x.Aggregate(recs)
}

// Result aggregates the complete campaign. It is an error to call it
// before every index has been merged — a partial final result would
// silently report a smaller campaign.
func (m *Merger) Result() (fault.Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done != len(m.recs) {
		return fault.Result{}, fmt.Errorf("campaign: result requested with %d/%d runs merged", m.done, len(m.recs))
	}
	return m.x.Aggregate(m.recs)
}
