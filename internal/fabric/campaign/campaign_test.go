package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/fabric"
	"rskip/internal/fault"
	"rskip/internal/result"
)

var (
	progMu sync.Mutex
	progs  = map[string]*core.Program{}
	insts  = map[string]bench.Instance{}
)

func program(t *testing.T, name string) (*core.Program, bench.Instance) {
	t.Helper()
	progMu.Lock()
	defer progMu.Unlock()
	if p, ok := progs[name]; ok {
		return p, insts[name]
	}
	b, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Build(b, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	progs[name] = p
	insts[name] = b.Gen(bench.TestSeed(0), bench.ScaleTiny)
	return p, insts[name]
}

// crashingRunner runs shards on the inner runner until its fuse runs
// out, then simulates a SIGKILL mid-shard: it executes part of the
// shard's range (so the executor holds half-done records), cancels
// its node's context and never completes or releases the lease. The
// coordinator must recover via TTL expiry and work stealing.
type crashingRunner struct {
	inner  *Runner
	x      *fault.Executor
	cancel context.CancelFunc
	fuse   int32
}

func (c *crashingRunner) RunShard(ctx context.Context, sh fabric.Shard, hb fabric.Heartbeat) ([]byte, error) {
	if atomic.AddInt32(&c.fuse, -1) >= 0 {
		return c.inner.RunShard(ctx, sh, hb)
	}
	half := sh.Lo + sh.Size()/2
	if err := c.x.RunRange(ctx, sh.Lo, half); err != nil {
		return nil, err
	}
	c.cancel()
	<-ctx.Done()
	return nil, ctx.Err()
}

// The tentpole acceptance test: N in-process workers across M
// simulated nodes — each node with its own independently prepared
// Executor — plus an injected worker death mid-shard must produce a
// Result bit-identical to the single-node fault.Campaign, across
// three kernels and three schemes.
func TestDistributedMatchesSingleNode(t *testing.T) {
	kernels := []string{"musum", "mudot", "mumax"}
	schemes := []core.Scheme{core.Unsafe, core.SWIFTR, core.RSkip}
	for _, kernel := range kernels {
		for _, s := range schemes {
			t.Run(kernel+"/"+s.String(), func(t *testing.T) {
				t.Parallel()
				p, inst := program(t, kernel)
				cfg := fault.Config{N: 60, Seed: 11, Workers: 2, Batch: 16}

				want, err := fault.Campaign(context.Background(), p, s, inst, cfg)
				if err != nil {
					t.Fatal(err)
				}

				// Coordinator side: its own executor derives the plan
				// key and owns the merge.
				xc, err := fault.NewExecutor(context.Background(), p, s, inst, cfg)
				if err != nil {
					t.Fatal(err)
				}
				merger := NewMerger(xc)
				coord := fabric.NewCoordinator(
					fabric.Plan{Key: xc.Key(), N: xc.N(), ShardSize: 7},
					fabric.Options{LeaseTTL: 30 * time.Millisecond, OnComplete: merger.Add},
				)

				// Node A crashes mid-shard after one clean shard; node
				// B survives and must steal A's abandoned lease.
				xa, err := fault.NewExecutor(context.Background(), p, s, inst, cfg)
				if err != nil {
					t.Fatal(err)
				}
				xb, err := fault.NewExecutor(context.Background(), p, s, inst, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if xa.Key() != xc.Key() || xb.Key() != xc.Key() {
					t.Fatalf("independently prepared executors disagree on the plan key")
				}
				ctxA, cancelA := context.WithCancel(context.Background())
				defer cancelA()
				ra := &crashingRunner{inner: NewRunner(xa, 5), x: xa, cancel: cancelA, fuse: 1}

				var wg sync.WaitGroup
				wg.Add(2)
				go func() {
					defer wg.Done()
					// The crash surfaces as ctx.Err() from node A.
					if err := fabric.RunLocal(ctxA, coord, 2, "nodeA", ra); !errors.Is(err, context.Canceled) {
						t.Errorf("node A exited %v, want context.Canceled", err)
					}
				}()
				go func() {
					defer wg.Done()
					if err := fabric.RunLocal(context.Background(), coord, 2, "nodeB", NewRunner(xb, 5)); err != nil {
						t.Errorf("node B: %v", err)
					}
				}()
				wg.Wait()

				if st := coord.Stats(); st.LeasesExpired < 1 {
					t.Fatalf("stats = %+v, want at least one stolen lease from the crashed node", st)
				}
				got, err := merger.Result()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("distributed result diverged from single-node:\n got %+v\nwant %+v", got, want)
				}

				// Cross-check: per-shard aggregates composed through the
				// partition-sum identity match the merged counts.
				var parts []fault.Result
				for _, sh := range coord.Plan().Shards() {
					recs := make([]fault.RunRecord, xc.N())
					copy(recs[sh.Lo:sh.Hi], merger.recs[sh.Lo:sh.Hi])
					part, err := xc.Aggregate(recs)
					if err != nil {
						t.Fatal(err)
					}
					parts = append(parts, part)
				}
				comp := result.ComposeCounts(s, parts)
				if comp.N != want.N || comp.Counts != want.Counts || comp.Fired != want.Fired {
					t.Fatalf("composed shard counts diverged:\n got %+v\nwant %+v", comp, want)
				}
			})
		}
	}
}

// A payload whose key embeds a different configuration must be
// refused at merge time — configuration drift fails loudly.
func TestMergerRejectsDriftAndDamage(t *testing.T) {
	p, inst := program(t, "musum")
	cfg := fault.Config{N: 20, Seed: 3, Workers: 1}
	x, err := fault.NewExecutor(context.Background(), p, core.RSkip, inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.RunRange(context.Background(), 0, 10); err != nil {
		t.Fatal(err)
	}
	recs, err := x.Records(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	sh := fabric.Shard{ID: 0, Lo: 0, Hi: 10}
	good := ShardPayload{Key: sh.Key(x.Key()), Lo: 0, Hi: 10, Records: recs}

	cases := []struct {
		name   string
		mut    func(p *ShardPayload)
		errHas string
	}{
		{"drifted key", func(p *ShardPayload) { p.Key = "bench=other|" + p.Key }, "key mismatch"},
		// The key embeds the range, so a mislabelled range with an
		// honest key is caught by the key check; the Lo/Hi check below
		// catches a payload whose key was copied from the lease but
		// whose range fields disagree.
		{"wrong range", func(p *ShardPayload) { p.Lo, p.Hi = 5, 15 }, "lease covers"},
		{"short records", func(p *ShardPayload) { p.Records = p.Records[:5] }, "holds 5 records"},
		{"unfinished record", func(p *ShardPayload) {
			rs := make([]fault.RunRecord, len(p.Records))
			copy(rs, p.Records)
			rs[3] = fault.RunRecord{}
			p.Records = rs
		}, "unfinished record"},
	}
	for _, tc := range cases {
		m := NewMerger(x)
		bad := good
		tc.mut(&bad)
		b, err := json.Marshal(bad)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Add(sh, b); err == nil || !strings.Contains(err.Error(), tc.errHas) {
			t.Errorf("%s: Add = %v, want error containing %q", tc.name, err, tc.errHas)
		}
	}

	// Double merge of the same shard is a coordinator bug — refuse.
	m := NewMerger(x)
	b, _ := json.Marshal(good)
	if err := m.Add(sh, b); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(sh, b); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("double Add = %v, want 'merged twice'", err)
	}
	if _, err := m.Result(); err == nil {
		t.Error("Result succeeded with half the campaign merged")
	}
	partial, err := m.Partial()
	if err != nil {
		t.Fatal(err)
	}
	if partial.N != 10 {
		t.Errorf("partial N = %d, want 10", partial.N)
	}
}
