// Package campaign glues the transport-agnostic fabric to the fault
// engine: a Runner executes shard leases on a fault.Executor, and a
// Merger reassembles completed shard payloads into the exact
// single-node Result.
//
// The exactness argument has three links, each pinned by a test:
//
//  1. fault.RunRecord is a pure function of its run index — plans are
//     pre-drawn from Config.Seed by index (executor_test.go).
//  2. fabric.Ranges is the one range decomposition, used by both the
//     single-node batch loop and the shard plan (plan_test.go).
//  3. The Merger aggregates reassembled records through the engine's
//     own fold, fault.Executor.Aggregate (TestDistributedMatches
//     SingleNode in this package).
//
// So a distributed campaign differs from a single-node campaign only
// in which process executed which index — a difference the aggregate
// cannot observe.
package campaign

import (
	"context"
	"encoding/json"
	"fmt"

	"rskip/internal/fabric"
	"rskip/internal/fault"
)

// DefaultSubBatch is the heartbeat granularity: runs executed between
// lease extensions.
const DefaultSubBatch = 100

// Runner executes fabric shards on a fault.Executor. It implements
// fabric.ShardRunner: each leased shard is split into sub-batches so
// the lease is heartbeaten while long shards execute, and the
// finished shard's records are shipped as a JSON ShardPayload.
type Runner struct {
	x *fault.Executor
	// subBatch is the heartbeat granularity in runs.
	subBatch int
}

// NewRunner wraps an executor. subBatch <= 0 selects DefaultSubBatch.
func NewRunner(x *fault.Executor, subBatch int) *Runner {
	if subBatch <= 0 {
		subBatch = DefaultSubBatch
	}
	return &Runner{x: x, subBatch: subBatch}
}

// Key is the executor's campaign key — the plan key a worker
// cross-checks against the coordinator's lease before running.
func (r *Runner) Key() string { return r.x.Key() }

// RunShard executes the shard and returns its payload. A heartbeat
// error (lease lost, job gone) abandons the shard immediately: the
// records already executed stay in the executor, so if the shard
// comes back it completes almost for free.
func (r *Runner) RunShard(ctx context.Context, sh fabric.Shard, hb fabric.Heartbeat) ([]byte, error) {
	done := 0
	for _, sub := range sh.Split(r.subBatch) {
		if err := r.x.RunRange(ctx, sub.Lo, sub.Hi); err != nil {
			return nil, err
		}
		done += sub.Size()
		if hb != nil {
			if err := hb(done); err != nil {
				return nil, err
			}
		}
	}
	recs, err := r.x.Records(sh.Lo, sh.Hi)
	if err != nil {
		return nil, err
	}
	p := ShardPayload{Key: sh.Key(r.x.Key()), Lo: sh.Lo, Hi: sh.Hi, Records: recs}
	b, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("campaign: encoding shard payload: %w", err)
	}
	return b, nil
}
