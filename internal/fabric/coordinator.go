package fabric

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrLeaseLost reports that the worker no longer holds the lease it
// is heartbeating or completing under — the coordinator expired it
// and reassigned (or will reassign) the shard. The worker's correct
// response is to abandon the shard and lease a fresh one; because
// records are pure functions of their indexes, abandoned work is
// never a correctness hazard, only wasted cycles.
var ErrLeaseLost = errors.New("fabric: lease lost (expired and reassigned)")

// ErrUnknownShard reports a shard ID outside the plan.
var ErrUnknownShard = errors.New("fabric: unknown shard")

// shard lifecycle: pending → leased → done. An expired lease moves
// the shard back to pending (work stealing); completion is terminal.
type shardState int

const (
	shardPending shardState = iota
	shardLeased
	shardDone
)

// lease is one worker's claim on one shard.
type lease struct {
	worker  string
	expires time.Time
	done    int // intra-shard progress, from heartbeats
}

// Progress is a coordinator progress snapshot: completed runs
// (completed shards plus heartbeat-reported intra-shard progress)
// over the plan total.
type Progress struct {
	Done        int // runs completed (heartbeat-estimated for leased shards)
	N           int // total runs in the plan
	DoneShards  int
	TotalShards int
}

// Stats are the coordinator's lifetime counters, for metrics and the
// straggler-reassignment assertions in tests.
type Stats struct {
	LeasesGranted   int
	LeasesExpired   int // leases reclaimed from dead or straggling workers
	ShardsCompleted int
	Workers         int // distinct worker IDs seen
}

// Options parameterize a Coordinator.
type Options struct {
	// LeaseTTL is how long a lease lives without a heartbeat before
	// the shard is stolen back (default 10s).
	LeaseTTL time.Duration
	// Now injects a clock for tests (default time.Now).
	Now func() time.Time
	// OnComplete, when set, receives each shard's payload exactly once,
	// in completion order; the coordinator does not retain payloads. A
	// returned error aborts the plan (Wait returns it) — it means the
	// payload was undecodable or inconsistent, which re-running cannot
	// fix. When nil, payloads are retained for Payloads().
	// The callback runs without the coordinator lock held and must not
	// call back into the Coordinator.
	OnComplete func(Shard, []byte) error
	// OnProgress, when set, is notified after every heartbeat and
	// completion. Same re-entrancy rule as OnComplete.
	OnProgress func(Progress)
	// OnShardDone, when set, observes each successful first completion:
	// the shard, the completing worker, and the wall-clock time from
	// the shard's first lease to its completion. Purely observational —
	// coordination decisions (leasing, stealing, retirement) never
	// depend on it; the advisory layer uses it to compare per-shard
	// cost forecasts with actuals. Same re-entrancy rule as OnComplete.
	OnShardDone func(sh Shard, worker string, leased time.Duration)
}

// Coordinator owns one plan's shard lifecycle: it leases shards to
// workers, tracks heartbeats, steals expired leases back for
// reassignment, and collects completed payloads. It is
// transport-agnostic — rskipd exposes its three methods (Lease,
// Heartbeat, Complete) over HTTP JSON, and the in-process pool
// (RunLocal) calls them directly.
type Coordinator struct {
	plan   Plan
	shards []Shard
	opt    Options

	mu          sync.Mutex
	state       []shardState
	leases      map[int]*lease // by shard ID, leased shards only
	firstLeased []time.Time    // by shard ID; zero until first leased
	payloads    [][]byte       // by shard ID (nil when OnComplete is set)
	remaining   int            // shards not yet done
	sunk        int            // shards whose OnComplete/payload store finished
	stats       Stats
	workers     map[string]bool
	abortErr    error
	done        chan struct{}
	closeOnce   sync.Once
}

// NewCoordinator builds a coordinator over the plan's shard table.
func NewCoordinator(plan Plan, opt Options) *Coordinator {
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = 10 * time.Second
	}
	if opt.Now == nil {
		opt.Now = time.Now
	}
	shards := plan.Shards()
	c := &Coordinator{
		plan:        plan,
		shards:      shards,
		opt:         opt,
		state:       make([]shardState, len(shards)),
		leases:      map[int]*lease{},
		firstLeased: make([]time.Time, len(shards)),
		remaining:   len(shards),
		workers:     map[string]bool{},
		done:        make(chan struct{}),
	}
	if opt.OnComplete == nil {
		c.payloads = make([][]byte, len(shards))
	}
	if len(shards) == 0 {
		c.closeOnce.Do(func() { close(c.done) })
	}
	return c
}

// Plan returns the plan the coordinator distributes.
func (c *Coordinator) Plan() Plan { return c.plan }

// Lease claims the next available shard for the worker: a pending
// shard, or a shard whose previous lease expired without a heartbeat
// (work stealing from stragglers and dead workers). ok is false when
// nothing is currently available — either every remaining shard is
// leased and healthy (poll again later) or the plan is complete
// (check Done).
func (c *Coordinator) Lease(worker string) (sh Shard, ok bool) {
	now := c.opt.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[worker] = true
	c.stats.Workers = len(c.workers)
	c.expireLocked(now)
	for id, st := range c.state {
		if st != shardPending {
			continue
		}
		c.state[id] = shardLeased
		c.leases[id] = &lease{worker: worker, expires: now.Add(c.opt.LeaseTTL)}
		if c.firstLeased[id].IsZero() {
			c.firstLeased[id] = now
		}
		c.stats.LeasesGranted++
		return c.shards[id], true
	}
	return Shard{}, false
}

// Heartbeat extends the worker's lease on the shard and records
// intra-shard progress (done runs out of the shard's size). It
// returns ErrLeaseLost when the lease expired and the shard was (or
// is about to be) handed to someone else, and ErrUnknownShard for IDs
// outside the plan.
func (c *Coordinator) Heartbeat(worker string, shardID, done int) error {
	now := c.opt.Now()
	c.mu.Lock()
	if shardID < 0 || shardID >= len(c.shards) {
		c.mu.Unlock()
		return ErrUnknownShard
	}
	c.expireLocked(now)
	l := c.leases[shardID]
	if c.state[shardID] != shardLeased || l == nil || l.worker != worker {
		c.mu.Unlock()
		return ErrLeaseLost
	}
	l.expires = now.Add(c.opt.LeaseTTL)
	if done > l.done {
		l.done = done
	}
	pr, notify := c.progressLocked()
	c.mu.Unlock()
	if notify != nil {
		notify(pr)
	}
	return nil
}

// Complete records the shard's payload and retires it. The first
// completion wins: because shard results are deterministic, a
// completion from a worker whose lease was stolen is accepted as long
// as the shard is still open (the work is identical by construction),
// and once a shard is done later completions get ErrLeaseLost and
// their payloads are discarded.
func (c *Coordinator) Complete(worker string, shardID int, payload []byte) error {
	c.mu.Lock()
	if shardID < 0 || shardID >= len(c.shards) {
		c.mu.Unlock()
		return ErrUnknownShard
	}
	if c.state[shardID] == shardDone {
		c.mu.Unlock()
		return ErrLeaseLost
	}
	c.state[shardID] = shardDone
	delete(c.leases, shardID)
	c.remaining--
	c.stats.ShardsCompleted++
	sh := c.shards[shardID]
	var leased time.Duration
	if first := c.firstLeased[shardID]; !first.IsZero() {
		leased = c.opt.Now().Sub(first)
	}
	pr, notify := c.progressLocked()
	sink := c.opt.OnComplete
	observe := c.opt.OnShardDone
	c.mu.Unlock()

	if observe != nil {
		observe(sh, worker, leased)
	}
	var sinkErr error
	if sink != nil {
		sinkErr = sink(sh, payload)
	} else {
		c.mu.Lock()
		c.payloads[shardID] = payload
		c.mu.Unlock()
	}

	c.mu.Lock()
	if sinkErr != nil && c.abortErr == nil {
		c.abortErr = fmt.Errorf("fabric: shard %d payload rejected: %w", shardID, sinkErr)
	}
	c.sunk++
	finished := c.sunk == len(c.shards) || c.abortErr != nil
	c.mu.Unlock()

	if notify != nil {
		notify(pr)
	}
	if finished {
		c.closeOnce.Do(func() { close(c.done) })
	}
	return nil
}

// Release voluntarily returns a leased shard to the pending pool — a
// worker that fails mid-shard (build error, cancellation) calls it so
// the shard is reassigned immediately instead of after the TTL.
func (c *Coordinator) Release(worker string, shardID int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if shardID < 0 || shardID >= len(c.shards) {
		return
	}
	if l := c.leases[shardID]; c.state[shardID] == shardLeased && l != nil && l.worker == worker {
		delete(c.leases, shardID)
		c.state[shardID] = shardPending
	}
}

// expireLocked reclaims leases whose TTL lapsed without a heartbeat.
func (c *Coordinator) expireLocked(now time.Time) {
	for id, l := range c.leases {
		if now.After(l.expires) {
			delete(c.leases, id)
			c.state[id] = shardPending
			c.stats.LeasesExpired++
		}
	}
}

// progressLocked snapshots progress and the notifier under the lock.
func (c *Coordinator) progressLocked() (Progress, func(Progress)) {
	pr := Progress{N: c.plan.N, TotalShards: len(c.shards)}
	for id, st := range c.state {
		switch st {
		case shardDone:
			pr.Done += c.shards[id].Size()
			pr.DoneShards++
		case shardLeased:
			if l := c.leases[id]; l != nil {
				pr.Done += l.done
			}
		}
	}
	return pr, c.opt.OnProgress
}

// Abort fails the plan: Wait/Err surface err, Done closes, and
// workers observing Done stop leasing. The first abort wins.
func (c *Coordinator) Abort(err error) {
	if err == nil {
		return
	}
	c.mu.Lock()
	if c.abortErr == nil {
		c.abortErr = err
	}
	c.mu.Unlock()
	c.closeOnce.Do(func() { close(c.done) })
}

// Wait blocks until the plan completes, aborts, or ctx expires.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.done:
		return c.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Progress reports the current completion estimate.
func (c *Coordinator) Progress() Progress {
	c.mu.Lock()
	defer c.mu.Unlock()
	pr, _ := c.progressLocked()
	return pr
}

// Stats reports the coordinator's lifetime counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Done is closed once every shard's payload has been accepted (and
// sunk through OnComplete), or the plan aborted.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Err returns the abort error, if any (nil while running or after a
// clean completion).
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.abortErr
}

// Payloads returns every shard's payload in shard order. It errors
// until the plan completes, and when OnComplete streamed the payloads
// away instead of retaining them.
func (c *Coordinator) Payloads() ([][]byte, error) {
	select {
	case <-c.done:
	default:
		return nil, errors.New("fabric: plan not complete")
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.payloads == nil {
		return nil, errors.New("fabric: payloads were streamed to OnComplete, not retained")
	}
	return c.payloads, nil
}
