package obs

import (
	"fmt"
	"io"
	"net/http"
	"os"
)

// CLIConfig mirrors the observability flags every rskip command
// exposes: -trace, -trace-tree, -metrics, -pprof.
type CLIConfig struct {
	// TracePath receives one JSON line per completed span.
	TracePath string
	// TraceTree prints the human span tree to stderr at Close.
	TraceTree bool
	// MetricsPath receives the metrics registry as JSON at Close.
	MetricsPath string
	// PprofAddr serves net/http/pprof when non-empty.
	PprofAddr string
}

// CLI owns the observability resources of one command invocation.
type CLI struct {
	Obs *Obs

	traceFile *os.File
	treeOut   io.Writer
	metrics   string
	pprofSrv  *http.Server
}

// SetupCLI builds the Obs for a command from its flag values. With
// every field empty it returns (nil, nil): the disabled mode, where
// CLI.O() is nil and Close is a no-op.
func SetupCLI(cfg CLIConfig) (*CLI, error) {
	if cfg.TracePath == "" && !cfg.TraceTree && cfg.MetricsPath == "" && cfg.PprofAddr == "" {
		return nil, nil
	}
	c := &CLI{Obs: &Obs{}, metrics: cfg.MetricsPath}
	if cfg.TracePath != "" || cfg.TraceTree {
		c.Obs.Tracer = NewTracer()
		if cfg.TracePath != "" {
			f, err := os.Create(cfg.TracePath)
			if err != nil {
				return nil, fmt.Errorf("obs: trace output: %w", err)
			}
			c.traceFile = f
			c.Obs.Tracer.SetWriter(f)
		}
		if cfg.TraceTree {
			c.treeOut = os.Stderr
		}
	}
	if cfg.MetricsPath != "" {
		c.Obs.Metrics = NewMetrics()
	}
	if cfg.PprofAddr != "" {
		srv, addr, err := ServePprof(cfg.PprofAddr)
		if err != nil {
			return nil, fmt.Errorf("obs: pprof server: %w", err)
		}
		c.pprofSrv = srv
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", addr)
	}
	return c, nil
}

// O returns the command's Obs, nil-safely.
func (c *CLI) O() *Obs {
	if c == nil {
		return nil
	}
	return c.Obs
}

// Close flushes the observability outputs: the metrics JSON file and
// the stderr span tree. The pprof server keeps running (the process
// is about to exit anyway, and profiles may still be downloading).
func (c *CLI) Close() error {
	if c == nil {
		return nil
	}
	var first error
	if c.metrics != "" {
		f, err := os.Create(c.metrics)
		if err == nil {
			err = c.Obs.M().WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil && first == nil {
			first = fmt.Errorf("obs: metrics output: %w", err)
		}
	}
	if c.treeOut != nil {
		fmt.Fprint(c.treeOut, c.Obs.T().Tree())
	}
	if c.traceFile != nil {
		if err := c.traceFile.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
