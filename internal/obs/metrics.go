package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics is a registry of typed instruments. Registration
// (Counter/Gauge/Histogram) takes a lock and is meant to happen once
// per phase — instrumented code caches the returned handles; updates
// on the handles are lock-free atomics. All methods are safe on a nil
// receiver, and the instruments they return are then nil, whose
// update methods are no-ops: disabled mode costs one nil check.
type Metrics struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter is a monotonically increasing uint64 instrument.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Counter registers (or returns the existing) counter under name.
func (m *Metrics) Counter(name, help string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	c := m.counters[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.counters[name]; c == nil {
		c = &Counter{name: name, help: help}
		m.counters[name] = c
	}
	return c
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float64 instrument.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Gauge registers (or returns the existing) gauge under name.
func (m *Metrics) Gauge(name, help string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	g := m.gauges[name]
	m.mu.RUnlock()
	if g != nil {
		return g
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if g = m.gauges[name]; g == nil {
		g = &Gauge{name: name, help: help}
		m.gauges[name] = g
	}
	return g
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last set value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative-style buckets with
// fixed upper bounds (a final +Inf bucket is implicit) and tracks
// count and sum.
type Histogram struct {
	name, help string
	bounds     []float64
	buckets    []atomic.Uint64 // one per bound, plus the +Inf overflow
	count      atomic.Uint64
	sumBits    atomic.Uint64 // float64 bits, CAS-updated
}

// Histogram registers (or returns the existing) histogram under name
// with the given ascending upper bounds; nil bounds get a generic
// exponential ladder.
func (m *Metrics) Histogram(name, help string, bounds []float64) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	h := m.hists[name]
	m.mu.RUnlock()
	if h != nil {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h = m.hists[name]; h == nil {
		if len(bounds) == 0 {
			bounds = ExpBuckets(1, 10, 9)
		}
		h = &Histogram{name: name, help: help,
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Uint64, len(bounds)+1)}
		m.hists[name] = h
	}
	return h
}

// ExpBuckets returns n exponentially growing upper bounds starting at
// start with the given factor — the usual ladder for instruction and
// duration distributions.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// metricJSON is the export schema of one instrument.
type metricJSON struct {
	Type    string            `json:"type"`
	Help    string            `json:"help,omitempty"`
	Value   float64           `json:"value"`
	Count   uint64            `json:"count,omitempty"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// export returns every instrument keyed by name — the stable form
// behind WriteJSON and String.
func (m *Metrics) export() map[string]metricJSON {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]metricJSON, len(m.counters)+len(m.gauges)+len(m.hists))
	for n, c := range m.counters {
		out[n] = metricJSON{Type: "counter", Help: c.help, Value: float64(c.Value())}
	}
	for n, g := range m.gauges {
		out[n] = metricJSON{Type: "gauge", Help: g.help, Value: g.Value()}
	}
	for n, h := range m.hists {
		bk := make(map[string]uint64, len(h.buckets))
		for i := range h.buckets {
			label := "+Inf"
			if i < len(h.bounds) {
				label = boundLabel(h.bounds[i])
			}
			if v := h.buckets[i].Load(); v != 0 {
				bk[label] = v
			}
		}
		out[n] = metricJSON{Type: "histogram", Help: h.help,
			Value: h.Sum(), Count: h.Count(), Buckets: bk}
	}
	return out
}

func boundLabel(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteJSON writes the registry as one indented JSON object keyed by
// metric name.
func (m *Metrics) WriteJSON(w io.Writer) error {
	if m == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.export())
}

// Snapshot returns a flat name→value view: counter counts, gauge
// values, and histogram counts (under name_count) and sums (under
// name_sum). Two snapshots subtract into a per-phase delta.
func (m *Metrics) Snapshot() map[string]float64 {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := map[string]float64{}
	for n, c := range m.counters {
		out[n] = float64(c.Value())
	}
	for n, g := range m.gauges {
		out[n] = g.Value()
	}
	for n, h := range m.hists {
		out[n+"_count"] = float64(h.Count())
		out[n+"_sum"] = h.Sum()
	}
	return out
}

// Delta returns after-minus-before for every key that moved — the
// per-campaign summary rskipfi prints.
func Delta(before, after map[string]float64) map[string]float64 {
	if len(after) == 0 {
		return nil
	}
	out := map[string]float64{}
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// String renders a sorted, aligned text summary of the registry.
func (m *Metrics) String() string {
	ex := m.export()
	names := make([]string, 0, len(ex))
	width := 0
	for n := range ex {
		names = append(names, n)
		if len(n) > width {
			width = len(n)
		}
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		e := ex[n]
		switch e.Type {
		case "histogram":
			mean := 0.0
			if e.Count > 0 {
				mean = e.Value / float64(e.Count)
			}
			fmt.Fprintf(&sb, "%-*s  count=%d sum=%g mean=%.4g\n", width, n, e.Count, e.Value, mean)
		default:
			fmt.Fprintf(&sb, "%-*s  %g\n", width, n, e.Value)
		}
	}
	return sb.String()
}
