package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock makes span durations deterministic: each call advances
// by step.
func fixedClock(step time.Duration) func() time.Time {
	t := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func TestSpanHierarchyAndJSONL(t *testing.T) {
	var buf bytes.Buffer
	o := New()
	o.Tracer.now = fixedClock(time.Millisecond)
	o.Tracer.SetWriter(&buf)
	ctx := Into(context.Background(), o)

	ctx, root := Start(ctx, "pipeline")
	cctx, child := Start(ctx, "pipeline/compile")
	child.SetAttr("bench", "conv1d")
	child.End()
	_, sib := Start(ctx, "pipeline/train")
	sib.End()
	root.End()
	_ = cctx

	// Three JSONL lines, children before the root (export at End).
	var names []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line struct {
			Name   string  `json:"name"`
			ID     uint64  `json:"id"`
			Parent uint64  `json:"parent"`
			DurUS  float64 `json:"dur_us"`
			Attrs  map[string]interface{}
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		names = append(names, line.Name)
		if line.Name == "pipeline/compile" {
			if line.Parent == 0 {
				t.Error("child span lost its parent id")
			}
			if line.Attrs["bench"] != "conv1d" {
				t.Errorf("attrs = %v, want bench=conv1d", line.Attrs)
			}
			if line.DurUS <= 0 {
				t.Errorf("dur_us = %v, want > 0", line.DurUS)
			}
		}
	}
	want := []string{"pipeline/compile", "pipeline/train", "pipeline"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("exported spans = %v, want %v", names, want)
	}

	tree := o.Tracer.Tree()
	for _, s := range []string{"pipeline", "pipeline/compile", "bench=conv1d"} {
		if !strings.Contains(tree, s) {
			t.Errorf("tree missing %q:\n%s", s, tree)
		}
	}
	// The child is indented under the root.
	lines := strings.Split(tree, "\n")
	if !strings.HasPrefix(lines[0], "pipeline") || !strings.HasPrefix(lines[1], "  pipeline/compile") {
		t.Errorf("tree not indented:\n%s", tree)
	}
}

func TestDisabledModeIsNilSafe(t *testing.T) {
	// No Obs in context: spans are nil and every method no-ops.
	ctx, sp := Start(context.Background(), "x")
	if sp != nil {
		t.Fatal("Start without a tracer must return a nil span")
	}
	sp.SetAttr("k", 1)
	sp.End()
	if sp.Duration() != 0 {
		t.Error("nil span duration != 0")
	}
	_, sp2 := Start(ctx, "y")
	sp2.End()

	// Nil registry: instruments are nil and updates no-op.
	var m *Metrics
	c := m.Counter("c", "")
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	g := m.Gauge("g", "")
	g.Set(3)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	h := m.Histogram("h", "", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram recorded")
	}
	if m.Snapshot() != nil {
		t.Error("nil metrics snapshot non-nil")
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	var o *Obs
	if o.T() != nil || o.M() != nil {
		t.Error("nil Obs exposes components")
	}
	var tr *Tracer
	tr.SetWriter(&buf)
	if tr.Tree() != "" {
		t.Error("nil tracer tree non-empty")
	}
	var cli *CLI
	if cli.O() != nil {
		t.Error("nil CLI exposes an Obs")
	}
	if err := cli.Close(); err != nil {
		t.Error(err)
	}
}

func TestMetricsTypesAndExport(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("runs_total", "runs")
	c.Add(41)
	c.Inc()
	if got := m.Counter("runs_total", "runs"); got != c {
		t.Error("re-registration returned a different counter")
	}
	g := m.Gauge("rate", "rate")
	g.Set(0.25)
	h := m.Histogram("instrs", "per-run instructions", []float64{10, 100, 1000})
	for _, v := range []float64{5, 50, 50, 5000} {
		h.Observe(v)
	}

	if c.Value() != 42 {
		t.Errorf("counter = %d, want 42", c.Value())
	}
	if g.Value() != 0.25 {
		t.Errorf("gauge = %v, want 0.25", g.Value())
	}
	if h.Count() != 4 || h.Sum() != 5105 {
		t.Errorf("hist count/sum = %d/%v, want 4/5105", h.Count(), h.Sum())
	}

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]struct {
		Type    string            `json:"type"`
		Value   float64           `json:"value"`
		Count   uint64            `json:"count"`
		Buckets map[string]uint64 `json:"buckets"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, buf.String())
	}
	if out["runs_total"].Type != "counter" || out["runs_total"].Value != 42 {
		t.Errorf("runs_total = %+v", out["runs_total"])
	}
	hj := out["instrs"]
	if hj.Count != 4 || hj.Buckets["10"] != 1 || hj.Buckets["100"] != 2 || hj.Buckets["+Inf"] != 1 {
		t.Errorf("instrs = %+v", hj)
	}

	s := m.String()
	if !strings.Contains(s, "runs_total") || !strings.Contains(s, "42") {
		t.Errorf("summary missing counter:\n%s", s)
	}
}

func TestSnapshotDelta(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("a", "")
	c.Add(10)
	before := m.Snapshot()
	c.Add(7)
	m.Counter("b", "").Inc()
	d := Delta(before, m.Snapshot())
	if d["a"] != 7 || d["b"] != 1 || len(d) != 2 {
		t.Errorf("delta = %v, want a=7 b=1", d)
	}
	if Delta(before, nil) != nil {
		t.Error("delta of empty after must be nil")
	}
}

func TestMetricsConcurrency(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := m.Counter("shared", "")
			h := m.Histogram("h", "", []float64{1, 2, 4})
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 5))
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("shared", "").Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if got := m.Histogram("h", "", nil).Count(); got != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestConcurrentSpans(t *testing.T) {
	o := New()
	ctx := Into(context.Background(), o)
	ctx, root := Start(ctx, "root")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, s := Start(ctx, fmt.Sprintf("worker-%d", i))
			s.SetAttr("i", i)
			s.End()
		}(w)
	}
	wg.Wait()
	root.End()
	tree := o.Tracer.Tree()
	if strings.Count(tree, "worker-") != 8 {
		t.Errorf("tree lost workers:\n%s", tree)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestServePprof(t *testing.T) {
	srv, addr, err := ServePprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr.String() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d", resp.StatusCode)
	}
}

func TestSetupCLI(t *testing.T) {
	// Everything empty: disabled mode.
	c, err := SetupCLI(CLIConfig{})
	if err != nil || c != nil {
		t.Fatalf("empty SetupCLI = (%v, %v), want (nil, nil)", c, err)
	}

	dir := t.TempDir()
	c, err = SetupCLI(CLIConfig{
		TracePath:   dir + "/trace.jsonl",
		MetricsPath: dir + "/metrics.json",
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.O().T() == nil || c.O().M() == nil {
		t.Fatal("SetupCLI did not enable tracer+metrics")
	}
	ctx := Into(context.Background(), c.O())
	_, sp := Start(ctx, "cli-span")
	sp.End()
	c.O().M().Counter("cli_total", "").Inc()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
