package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracer records hierarchical spans. Completed spans are exported as
// one JSON line each (SetWriter) and retained in memory for the
// human-readable Tree rendering. All methods are safe for concurrent
// use and safe on a nil receiver.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	nextID uint64
	roots  []*Span
	now    func() time.Time // injectable clock for tests
}

// NewTracer returns an empty tracer. Attach a JSONL sink with
// SetWriter; read the span tree with Tree.
func NewTracer() *Tracer {
	return &Tracer{now: time.Now}
}

// SetWriter directs one JSON line per completed span to w. The tracer
// serializes writes; w needs no locking of its own.
func (t *Tracer) SetWriter(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.w = w
	t.mu.Unlock()
}

// Span is one timed section of the pipeline. Create with Start, close
// with End, annotate with SetAttr. A nil *Span ignores every call.
type Span struct {
	t        *Tracer
	name     string
	id       uint64
	parentID uint64
	start    time.Time
	dur      time.Duration
	attrs    map[string]interface{}
	children []*Span
	ended    bool
}

type spanKey struct{}

// Start opens a span named name under the context's current span (or
// as a root) and returns a derived context carrying the new span.
// Without a tracer in the context it returns (ctx, nil) — the
// disabled mode — at the cost of two context lookups.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	t := From(ctx).T()
	if t == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	s := t.start(name, parent)
	return context.WithValue(ctx, spanKey{}, s), s
}

func (t *Tracer) start(name string, parent *Span) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	s := &Span{t: t, name: name, id: t.nextID, start: t.now()}
	if parent != nil {
		s.parentID = parent.id
		parent.children = append(parent.children, s)
	} else {
		t.roots = append(t.roots, s)
	}
	return s
}

// SetAttr attaches a key/value annotation to the span.
func (s *Span) SetAttr(key string, value interface{}) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]interface{}{}
	}
	s.attrs[key] = value
	s.t.mu.Unlock()
}

// spanLine is the JSONL export schema of one completed span.
type spanLine struct {
	Name   string                 `json:"name"`
	ID     uint64                 `json:"id"`
	Parent uint64                 `json:"parent,omitempty"`
	Start  string                 `json:"start"`
	DurUS  float64                `json:"dur_us"`
	Attrs  map[string]interface{} `json:"attrs,omitempty"`
}

// End closes the span, fixing its duration and exporting its JSON
// line. Ending a span twice keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	if s.ended {
		t.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = t.now().Sub(s.start)
	w := t.w
	var line []byte
	if w != nil {
		line, _ = json.Marshal(spanLine{
			Name: s.name, ID: s.id, Parent: s.parentID,
			Start: s.start.UTC().Format(time.RFC3339Nano),
			DurUS: float64(s.dur.Nanoseconds()) / 1e3,
			Attrs: s.attrs,
		})
	}
	if line != nil {
		w.Write(append(line, '\n'))
	}
	t.mu.Unlock()
}

// Duration returns the span's recorded duration (zero while open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return s.dur
}

// Tree renders every recorded span as an indented tree with durations
// and attributes — the human view of where the pipeline's wall-clock
// went.
func (t *Tracer) Tree() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var sb strings.Builder
	for _, r := range t.roots {
		writeSpan(&sb, r, 0)
	}
	return sb.String()
}

func writeSpan(sb *strings.Builder, s *Span, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	dur := "open"
	if s.ended {
		dur = formatDur(s.dur)
	}
	fmt.Fprintf(sb, "%-*s %8s", 40-2*depth, s.name, dur)
	if len(s.attrs) > 0 {
		keys := make([]string, 0, len(s.attrs))
		for k := range s.attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(sb, "  %s=%v", k, s.attrs[k])
		}
	}
	sb.WriteByte('\n')
	for _, c := range s.children {
		writeSpan(sb, c, depth+1)
	}
}

// formatDur renders a duration at trace-friendly precision.
func formatDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1e3)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
