// Package obs is the pipeline's observability layer: hierarchical
// spans (tracing), typed counters/gauges/histograms (metrics), and a
// pprof debug server, threaded through compile→train→inject with zero
// third-party dependencies.
//
// The package is built around a nil-safe disabled mode: every method
// on a nil *Tracer, *Metrics, *Span, *Counter, *Gauge or *Histogram
// is a no-op, and obs.Start on a context without an Obs returns a nil
// span. Instrumented code therefore never branches on "is telemetry
// on" — it just calls through, and the disabled cost is a context
// lookup (span creation) or a nil check (metric update). Instrument
// handles are resolved once per phase (machine construction, campaign
// start), never per instruction, so the interpreter hot path keeps
// its pre-decoded performance; internal/bench's BenchmarkObsOverhead
// holds the disabled-mode overhead under 2%.
package obs

import "context"

// Obs bundles the tracer and metrics registry that one pipeline
// invocation shares. A nil *Obs (and nil fields) is the disabled mode.
type Obs struct {
	Tracer  *Tracer
	Metrics *Metrics
}

// New returns an Obs with both a tracer and a metrics registry.
func New() *Obs {
	return &Obs{Tracer: NewTracer(), Metrics: NewMetrics()}
}

// T returns the tracer, nil-safely.
func (o *Obs) T() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// M returns the metrics registry, nil-safely.
func (o *Obs) M() *Metrics {
	if o == nil {
		return nil
	}
	return o.Metrics
}

type obsKey struct{}

// Into attaches the Obs to the context. A nil Obs returns the context
// unchanged.
func Into(ctx context.Context, o *Obs) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, obsKey{}, o)
}

// From extracts the Obs from the context, or nil (disabled mode).
func From(ctx context.Context) *Obs {
	if ctx == nil {
		return nil
	}
	o, _ := ctx.Value(obsKey{}).(*Obs)
	return o
}
