package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// RegisterPprof mounts the standard /debug/pprof/ endpoints on mux.
// Daemons that already own an HTTP listener (rskipd) use it to expose
// profiling on their main mux; ServePprof wraps it for CLIs that need
// a stand-alone debug server.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServePprof starts an HTTP server exposing the standard
// /debug/pprof/ endpoints on addr (e.g. "localhost:6060") and returns
// it along with the bound address (useful with addr ":0"). The server
// runs until the process exits or the caller closes it; it uses its
// own mux so nothing leaks onto http.DefaultServeMux.
func ServePprof(addr string) (*http.Server, net.Addr, error) {
	mux := http.NewServeMux()
	RegisterPprof(mux)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}
