package bench_test

import (
	"testing"

	"rskip/internal/bench"
	"rskip/internal/core"
)

// BenchmarkBuild measures the compile pipeline: cold is a full build
// (compile, candidate detection, all four scheme pipelines in
// parallel, codegen) with the build cache emptied every iteration;
// warm is the same request served from the content-addressed cache.
// The cold/warm ratio is the rebuild speedup the cache buys fault
// campaigns and experiment figures that keep re-requesting the same
// benchmark × config variants.
func BenchmarkBuild(b *testing.B) {
	bm, err := bench.ByName("conv1d")
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.ResetBuildCache()
			if _, err := core.Build(bm, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		core.ResetBuildCache()
		if _, err := core.Build(bm, cfg); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(bm, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
