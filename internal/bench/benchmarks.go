// Package bench defines the nine evaluation benchmarks of the paper's
// Table 1, re-written in MiniC so the whole RSkip pipeline — frontend,
// candidate detection, protection transforms, training, run-time
// management, fault injection — exercises them end to end. Input sizes
// are scaled to the simulated machine (documented in DESIGN.md); the
// computation patterns (reduction loops, nested reductions with
// conditionals, function-call values, varying trip counts) match the
// paper.
package bench

import (
	"fmt"
	"math"

	"rskip/internal/machine"
)

// Scale selects input sizes: perf runs want enough work for stable
// timing shapes; fault-injection campaigns run thousands of times and
// use small inputs.
type Scale int

// Scales.
const (
	ScaleFI Scale = iota
	ScalePerf
	ScaleTiny // unit tests
)

// Instance is one concrete input set for a benchmark.
type Instance struct {
	// Setup copies the input data into a fresh machine memory and
	// returns the kernel's argument list (raw bits).
	Setup func(mem *machine.Memory) []uint64
	// Output reads the program's output words after a run; runs are
	// compared bitwise against a fault-free reference (the paper
	// counts any corruption as bad quality).
	Output func(mem *machine.Memory) []uint64
	// Elements is the expected number of hot-store observations per
	// kernel run (for sanity checks).
	Elements int
}

// Benchmark bundles one Table 1 entry.
type Benchmark struct {
	Name        string
	Domain      string
	Description string
	Pattern     string // computation type of the prediction target
	Location    string // location of detected loops
	Kernel      string // kernel function name
	// MemoEligible marks blackscholes: the only benchmark whose strict
	// requirements (§4.2) admit approximate memoization.
	MemoEligible bool
	Source       string
	// Gen builds a deterministic input instance for a seed.
	Gen func(seed int64, scale Scale) Instance
}

// All returns the nine benchmarks in the paper's Table 1 order.
func All() []Benchmark {
	return []Benchmark{
		Conv1D(), Conv2D(), SGEMM(), KDE(), Blackscholes(),
		LUD(), ForwardProp(), BackProp(), YOLO(),
	}
}

// ByName returns the named benchmark — a Table 1 entry or one of the
// skip-verification micro-kernels (Micros).
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	for _, b := range Micros() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("bench: unknown benchmark %q", name)
}

func fbits(v float64) uint64 { return math.Float64bits(v) }

// readWords pulls n raw words starting at base.
func readWords(mem *machine.Memory, base int64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		w, err := mem.LoadWord(base + int64(i))
		if err != nil {
			panic(err)
		}
		out[i] = w
	}
	return out
}

func allocFloats(mem *machine.Memory, vs []float64) int64 {
	base := mem.Alloc(int64(len(vs)))
	mem.CopyFloats(base, vs)
	return base
}

func allocInts(mem *machine.Memory, vs []int64) int64 {
	base := mem.Alloc(int64(len(vs)))
	mem.CopyInts(base, vs)
	return base
}
