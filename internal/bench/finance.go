package bench

import (
	"math/rand"

	"rskip/internal/machine"
)

const blackscholesSrc = `
// blackscholes: PARSEC's European option pricer. The detected loop's
// value is a direct user-call result (the paper's Figure 4a), which
// qualifies it — uniquely among the benchmarks — for approximate
// memoization as the second-level predictor.
float cndf(float x) {
	float sign = 1.0;
	float xx = x;
	if (xx < 0.0) {
		xx = -xx;
		sign = 0.0;
	}
	float k = 1.0 / (1.0 + 0.2316419 * xx);
	float n = 0.39894228 * exp(-0.5 * xx * xx);
	float poly = k * (0.319381530 + k * (-0.356563782 + k * (1.781477937 +
		k * (-1.821255978 + k * 1.330274429))));
	float val = 1.0 - n * poly;
	if (sign < 0.5) {
		val = 1.0 - val;
	}
	return val;
}

float blkschls(float spt, float strike, float rate, float vol, float t, int otype) {
	float den = vol * sqrt(t);
	float d1 = (log(spt / strike) + (rate + 0.5 * vol * vol) * t) / den;
	float d2 = d1 - den;
	float fut = strike * exp(-rate * t);
	float price = spt * cndf(d1) - fut * cndf(d2);
	if (otype == 1) {
		price = price - spt + fut;
	}
	return price;
}

void kernel(float spt[], float strike[], float rate[], float vol[], float t[],
            int otype[], float prices[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		float price = blkschls(spt[i], strike[i], rate[i], vol[i], t[i], otype[i]);
		prices[i] = price;
	}
}
`

// Blackscholes is the option-pricing benchmark.
func Blackscholes() Benchmark {
	return Benchmark{
		Name:         "blackscholes",
		Domain:       "Finance",
		Description:  "Stock price prediction model",
		Pattern:      "A function call",
		Location:     "Inside an outer loop",
		Kernel:       "kernel",
		MemoEligible: true,
		Source:       blackscholesSrc,
		Gen: func(seed int64, scale Scale) Instance {
			rng := rand.New(rand.NewSource(seed))
			n := 4096
			switch scale {
			case ScaleFI:
				n = 384
			case ScaleTiny:
				n = 64
			}
			// Option parameters cluster at market-conventional values
			// (round strikes, standard tenors and vol levels) with small
			// jitter, mirroring PARSEC's highly repetitive input file.
			// Consecutive options remain independent — no spatial trend —
			// which is why the DI-only skip rate stays low (Fig. 8a)
			// while memoization thrives.
			spt := clusteredFloats(rng, n, []float64{80, 90, 100, 115, 135}, 0.004)
			// Strikes are quoted relative to spot (near-the-money chain),
			// tenors and vols sit at log-spaced market conventions —
			// uneven spacing that uniform min/max quantization handles
			// poorly but histogram quantization captures (§4.2).
			strike := clusteredFloats(rng, n, []float64{0.95, 1.0, 1.05}, 0.002)
			for i := range strike {
				strike[i] *= spt[i]
			}
			rate := clusteredFloats(rng, n, []float64{0.02, 0.05}, 0.01)
			vol := clusteredFloats(rng, n, []float64{0.12, 0.18, 0.28, 0.45}, 0.01)
			tm := clusteredFloats(rng, n, []float64{0.15, 0.4, 1.0, 2.2}, 0.01)
			otype := make([]int64, n)
			for i := range otype {
				otype[i] = int64(rng.Intn(2))
			}
			return Instance{
				Elements: n,
				Setup: func(mem *machine.Memory) []uint64 {
					sb := allocFloats(mem, spt)
					kb := allocFloats(mem, strike)
					rb := allocFloats(mem, rate)
					vb := allocFloats(mem, vol)
					tb := allocFloats(mem, tm)
					ob := allocInts(mem, otype)
					pb := mem.Alloc(int64(n))
					return []uint64{uint64(sb), uint64(kb), uint64(rb), uint64(vb),
						uint64(tb), uint64(ob), uint64(pb), uint64(int64(n))}
				},
				Output: func(mem *machine.Memory) []uint64 {
					return readWords(mem, int64(6*n), n)
				},
			}
		},
	}
}
