package bench

import (
	"testing"

	"math/rand"

	"rskip/internal/analysis"
	"rskip/internal/lang"
	"rskip/internal/lower"
	"rskip/internal/machine"
)

func TestAllBenchmarksCompile(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			mod, err := lower.Compile(b.Name, b.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if mod.FuncByName(b.Kernel) < 0 {
				t.Fatalf("kernel %q missing", b.Kernel)
			}
			cands := analysis.FindCandidates(mod, analysis.Options{})
			if len(cands) == 0 {
				t.Error("no candidate loops detected")
			}
		})
	}
}

func TestAllBenchmarksRunAtEveryScale(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			mod, err := lower.Compile(b.Name, b.Source)
			if err != nil {
				t.Fatal(err)
			}
			fi := mod.FuncByName(b.Kernel)
			for _, scale := range []Scale{ScaleTiny, ScaleFI} {
				inst := b.Gen(TestSeed(0), scale)
				m := machine.New(mod, machine.Config{TraceFn: -1})
				args := inst.Setup(m.Mem)
				res, err := m.Run(fi, args)
				if err != nil {
					t.Fatalf("scale %d: %v", scale, err)
				}
				if res.Instrs == 0 {
					t.Fatalf("scale %d: no instructions executed", scale)
				}
				out := inst.Output(m.Mem)
				if len(out) == 0 {
					t.Fatalf("scale %d: empty output", scale)
				}
				nonzero := false
				for _, w := range out {
					if w != 0 {
						nonzero = true
						break
					}
				}
				// yolo's output is argmax labels; every cell legitimately
				// picking class 0 is possible at tiny scale.
				if !nonzero && b.Name != "yolo" {
					t.Errorf("scale %d: output is all zeros — Output() base address is likely wrong", scale)
				}
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, b := range All() {
		i1 := b.Gen(TestSeed(1), ScaleTiny)
		i2 := b.Gen(TestSeed(1), ScaleTiny)
		mod, err := lower.Compile(b.Name, b.Source)
		if err != nil {
			t.Fatal(err)
		}
		fi := mod.FuncByName(b.Kernel)
		run := func(inst Instance) []uint64 {
			m := machine.New(mod, machine.Config{TraceFn: -1})
			args := inst.Setup(m.Mem)
			if _, err := m.Run(fi, args); err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			return inst.Output(m.Mem)
		}
		o1, o2 := run(i1), run(i2)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("%s: same seed produced different outputs", b.Name)
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	for _, b := range All() {
		mod, err := lower.Compile(b.Name, b.Source)
		if err != nil {
			t.Fatal(err)
		}
		fi := mod.FuncByName(b.Kernel)
		run := func(seed int64) []uint64 {
			inst := b.Gen(seed, ScaleTiny)
			m := machine.New(mod, machine.Config{TraceFn: -1})
			args := inst.Setup(m.Mem)
			if _, err := m.Run(fi, args); err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			return inst.Output(m.Mem)
		}
		a, bOut := run(TrainSeed(0)), run(TestSeed(0))
		same := len(a) == len(bOut)
		if same {
			allEq := true
			for i := range a {
				if a[i] != bOut[i] {
					allEq = false
					break
				}
			}
			same = allEq
		}
		if same && b.Name != "yolo" {
			// yolo outputs argmax labels, which may legitimately collide
			// across seeds at tiny scale.
			t.Errorf("%s: train and test seeds produced identical outputs", b.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("sgemm"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
	if len(All()) != 9 {
		t.Errorf("expected the paper's 9 benchmarks, have %d", len(All()))
	}
}

func TestTableOneMetadata(t *testing.T) {
	for _, b := range All() {
		if b.Domain == "" || b.Description == "" || b.Pattern == "" || b.Kernel == "" {
			t.Errorf("%s: incomplete Table 1 metadata: %+v", b.Name, b)
		}
	}
	bs, _ := ByName("blackscholes")
	if !bs.MemoEligible {
		t.Error("blackscholes must be memo-eligible (§4.2)")
	}
	for _, b := range All() {
		if b.Name != "blackscholes" && b.MemoEligible {
			t.Errorf("%s must not be memo-eligible", b.Name)
		}
	}
}

func TestSmoothFloatsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	vs := smoothFloats(rng, 256, -2, 2, 0.1)
	if len(vs) != 256 {
		t.Fatalf("len = %d", len(vs))
	}
	for _, v := range vs {
		if v < -2.5 || v > 2.5 {
			t.Fatalf("value %g outside padded bounds", v)
		}
	}
	// Clustered values stay near their centers.
	cs := clusteredFloats(rng, 100, []float64{10, 20}, 0.01)
	for _, v := range cs {
		near := (v > 9.8 && v < 10.2) || (v > 19.6 && v < 20.4)
		if !near {
			t.Fatalf("clustered value %g far from centers", v)
		}
	}
}

func TestBenchmarkSourcesRoundTripThroughFormatter(t *testing.T) {
	for _, b := range All() {
		prog, err := lang.Parse(b.Source)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		formatted := lang.Format(prog)
		if _, err := lang.Parse(formatted); err != nil {
			t.Fatalf("%s: formatted source does not re-parse: %v\n%s", b.Name, err, formatted)
		}
		// The formatted source must compile to a module with the same
		// candidate count.
		mod1, err := lower.Compile(b.Name, b.Source)
		if err != nil {
			t.Fatal(err)
		}
		mod2, err := lower.Compile(b.Name, formatted)
		if err != nil {
			t.Fatalf("%s: formatted source does not compile: %v", b.Name, err)
		}
		c1 := analysis.FindCandidates(mod1, analysis.Options{})
		c2 := analysis.FindCandidates(mod2, analysis.Options{})
		if len(c1) != len(c2) {
			t.Errorf("%s: candidates changed after formatting: %d vs %d",
				b.Name, len(c1), len(c2))
		}
	}
}
