package bench

import (
	"math/rand"

	"rskip/internal/machine"
)

// The micro-kernels are not part of the paper's Table 1 set (All()
// keeps returning exactly nine); they exist for the exhaustive
// skip-verification harness. Their detected loops are deliberately
// tiny — a few hundred dynamic in-region instructions — so enumerating
// every single-skip point (and every multi-bit flip site) stays cheap,
// and they avoid the constructs whose skip behavior is out of scope
// for the hardening argument: no division or float-to-int in the
// region (a corrupted operand would trap instead of being voted
// away), and no in-region calls (a skipped callee return is a
// control-flow wormhole CFC cannot sign).

const musumSrc = `
// musum: windowed sums. Structure mirrors conv1d — an outer repeat
// loop, a detected output loop, and an inner reduction — shrunk to
// enumeration size.
void kernel(int input[], int output[], int n, int k) {
	for (int f = 0; f < 2; f = f + 1) {
		for (int i = 0; i < n - k + 1; i = i + 1) {
			int sum = 0;
			for (int j = 0; j < k; j = j + 1) {
				sum = sum + input[i + j];
			}
			output[f * (n - k + 1) + i] = sum;
		}
	}
}
`

const mudotSrc = `
// mudot: sliding dot product against a small weight vector, the
// multiply-accumulate shape of conv1d at enumeration size.
void kernel(int input[], int weight[], int output[], int n, int k) {
	for (int f = 0; f < 2; f = f + 1) {
		for (int i = 0; i < n - k + 1; i = i + 1) {
			int acc = 0;
			for (int j = 0; j < k; j = j + 1) {
				acc = acc + input[i + j] * weight[j];
			}
			output[f * (n - k + 1) + i] = acc;
		}
	}
}
`

const mumaxSrc = `
// mumax: windowed maximum — the inner reduction carries a conditional,
// exercising skip faults on compare-and-branch sequences inside the
// value computation.
void kernel(int input[], int output[], int n, int k) {
	for (int f = 0; f < 2; f = f + 1) {
		for (int i = 0; i < n - k + 1; i = i + 1) {
			int m = input[i];
			for (int j = 1; j < k; j = j + 1) {
				if (input[i + j] > m) {
					m = input[i + j];
				}
			}
			output[f * (n - k + 1) + i] = m;
		}
	}
}
`

// Micros returns the skip-verification micro-kernels. They are
// reachable through ByName (and therefore through every tool and the
// server) but excluded from All(), so the Table 1 experiment set and
// its goldens are unchanged.
func Micros() []Benchmark {
	return []Benchmark{
		microBench("musum", "Windowed sums", musumSrc, nil),
		microBench("mudot", "Sliding dot product", mudotSrc, weightInput),
		microBench("mumax", "Windowed maximum", mumaxSrc, nil),
	}
}

// weightInput marks the micro-kernels that take a second input array.
func weightInput(rng *rand.Rand, k int) []int64 { return smoothInts(rng, k, 1, 6, 0.3) }

func microBench(name, desc, src string, weights func(*rand.Rand, int) []int64) Benchmark {
	return Benchmark{
		Name:        name,
		Domain:      "Skip-verification micro-kernel",
		Description: desc,
		Pattern:     "A reduction loop",
		Location:    "Inside an outer loop",
		Kernel:      "kernel",
		Source:      src,
		Gen: func(seed int64, scale Scale) Instance {
			rng := rand.New(rand.NewSource(seed))
			// One size for every scale: the whole point of a
			// micro-kernel is that exhaustive enumeration stays small.
			n, k := 24, 4
			input := smoothInts(rng, n, 0, 500, 0.1)
			var weight []int64
			if weights != nil {
				weight = weights(rng, k)
			}
			outLen := 2 * (n - k + 1)
			return Instance{
				Elements: outLen,
				Setup: func(mem *machine.Memory) []uint64 {
					in := allocInts(mem, input)
					args := []uint64{uint64(in)}
					if weight != nil {
						args = append(args, uint64(allocInts(mem, weight)))
					}
					out := mem.Alloc(int64(outLen))
					args = append(args, uint64(out),
						uint64(int64(n)), uint64(int64(k)))
					return args
				},
				Output: func(mem *machine.Memory) []uint64 {
					base := int64(n + len(weight))
					return readWords(mem, base, outLen)
				},
			}
		},
	}
}
