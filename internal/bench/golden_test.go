// Golden-counters differential test: the pre-decoded fast interpreter
// and the seed reference interpreter must be indistinguishable — on
// every kernel, under every protection scheme, with and without
// injected faults, the dynamic-instruction counters, per-opcode
// histogram, cycle counts, outputs and fault outcomes are bit for bit
// identical. This is the contract that lets campaigns run on the fast
// path while the reference interpreter stays the spec.
package bench_test

import (
	"fmt"
	"testing"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/machine"
)

// runPair executes the same instance twice — fast and reference — and
// reports any observable divergence.
func runPair(t *testing.T, p *core.Program, s core.Scheme, inst bench.Instance, opts core.RunOpts) {
	t.Helper()
	fast := p.Run(s, inst, opts)
	opts.Reference = true
	ref := p.Run(s, inst, opts)

	if fast.Result != ref.Result {
		t.Errorf("RunResult diverged:\n fast %+v\n  ref %+v", fast.Result, ref.Result)
	}
	if fmt.Sprint(fast.Err) != fmt.Sprint(ref.Err) {
		t.Errorf("error diverged: fast %v, ref %v", fast.Err, ref.Err)
	}
	if fast.FaultFired != ref.FaultFired || fast.FaultTag != ref.FaultTag || fast.FaultOp != ref.FaultOp {
		t.Errorf("fault outcome diverged: fast fired=%v tag=%v op=%v, ref fired=%v tag=%v op=%v",
			fast.FaultFired, fast.FaultTag, fast.FaultOp,
			ref.FaultFired, ref.FaultTag, ref.FaultOp)
	}
	if len(fast.Output) != len(ref.Output) {
		t.Fatalf("output length diverged: fast %d, ref %d", len(fast.Output), len(ref.Output))
	}
	for i := range fast.Output {
		if fast.Output[i] != ref.Output[i] {
			t.Fatalf("output[%d] diverged: fast %#x, ref %#x", i, fast.Output[i], ref.Output[i])
		}
	}
	// The accounting invariant must hold on real runs, not just the
	// unit test: every charged instruction lands in the histogram.
	if got, want := fast.Result.Counter.OpTotal(), fast.Result.Counter.Dyn; got != want {
		t.Errorf("opcode histogram does not reconcile: OpTotal = %d, Dyn = %d", got, want)
	}
}

func TestGoldenCountersFastVsReference(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	// One probe per fault kind, plus burst/multi-bit width variants:
	// the width machinery (skip continuation across blocks, adjacent-bit
	// flips) must behave identically on both interpreter paths too.
	probes := []struct {
		kind  machine.FaultKind
		width uint
	}{
		{machine.FaultResultBit, 0}, {machine.FaultSourceBit, 0},
		{machine.FaultOpcode, 0}, {machine.FaultRegFile, 0},
		{machine.FaultSkip, 1}, {machine.FaultSkip, 3},
		{machine.FaultMultiBit, 2}, {machine.FaultMultiBit, 5},
	}
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			p, err := core.Build(b, core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Train([]int64{bench.TrainSeed(0)}, bench.ScaleTiny); err != nil {
				t.Fatal(err)
			}
			inst := b.Gen(bench.TestSeed(1), bench.ScaleFI)
			for _, s := range []core.Scheme{core.Unsafe, core.SWIFT, core.SWIFTR, core.RSkip, core.SWIFTRHard} {
				clean := p.Run(s, inst, core.RunOpts{Reference: true})
				t.Run(s.String()+"/clean", func(t *testing.T) {
					runPair(t, p, s, b.Gen(bench.TestSeed(1), bench.ScaleFI), core.RunOpts{})
				})
				region := clean.Result.Region
				if region == 0 {
					continue
				}
				budget := 3 * clean.Result.Instrs
				for i, pr := range probes {
					plan := machine.FaultPlan{
						Kind:   pr.kind,
						Target: region * uint64(i) / uint64(len(probes)),
						Bit:    uint(7 * (i + 1) % 64),
						Pick:   i,
						Width:  pr.width,
					}
					t.Run(fmt.Sprintf("%s/%v.w%d@%d", s, pr.kind, pr.width, plan.Target), func(t *testing.T) {
						runPair(t, p, s, b.Gen(bench.TestSeed(1), bench.ScaleFI),
							core.RunOpts{Fault: &plan, MaxInstrs: budget})
					})
				}
			}
		})
	}
}
