// Golden-counters differential test: the pre-decoded fast
// interpreter, the compiled closure-threaded backend and the seed
// reference interpreter must be indistinguishable — on every kernel,
// under every protection scheme, with and without injected faults,
// the dynamic-instruction counters, per-opcode histogram, cycle
// counts, outputs and fault outcomes are bit for bit identical. This
// is the contract that lets campaigns run on the fastest path while
// the reference interpreter stays the spec.
package bench_test

import (
	"fmt"
	"testing"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/machine"
)

// runTriple executes the same instance on all three backends — fast,
// compiled, reference — and reports any observable divergence from
// the reference.
func runTriple(t *testing.T, p *core.Program, s core.Scheme, gen func() bench.Instance, opts core.RunOpts) {
	t.Helper()
	refOpts := opts
	refOpts.Reference = true
	ref := p.Run(s, gen(), refOpts)

	for _, bk := range []machine.Backend{machine.BackendFast, machine.BackendCompiled} {
		opts.Backend = bk
		got := p.Run(s, gen(), opts)
		if got.Result != ref.Result {
			t.Errorf("%v RunResult diverged:\n  %v %+v\n  ref %+v", bk, bk, got.Result, ref.Result)
		}
		if fmt.Sprint(got.Err) != fmt.Sprint(ref.Err) {
			t.Errorf("%v error diverged: got %v, ref %v", bk, got.Err, ref.Err)
		}
		if got.FaultFired != ref.FaultFired || got.FaultTag != ref.FaultTag || got.FaultOp != ref.FaultOp {
			t.Errorf("%v fault outcome diverged: got fired=%v tag=%v op=%v, ref fired=%v tag=%v op=%v",
				bk, got.FaultFired, got.FaultTag, got.FaultOp,
				ref.FaultFired, ref.FaultTag, ref.FaultOp)
		}
		if len(got.Output) != len(ref.Output) {
			t.Fatalf("%v output length diverged: got %d, ref %d", bk, len(got.Output), len(ref.Output))
		}
		for i := range got.Output {
			if got.Output[i] != ref.Output[i] {
				t.Fatalf("%v output[%d] diverged: got %#x, ref %#x", bk, i, got.Output[i], ref.Output[i])
			}
		}
		// The accounting invariant must hold on real runs, not just the
		// unit test: every charged instruction lands in the histogram.
		if got, want := got.Result.Counter.OpTotal(), got.Result.Counter.Dyn; got != want {
			t.Errorf("%v opcode histogram does not reconcile: OpTotal = %d, Dyn = %d", bk, got, want)
		}
	}
}

func TestGoldenCountersThreeWay(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	// One probe per fault kind, plus burst/multi-bit width variants:
	// the width machinery (skip continuation across blocks, adjacent-bit
	// flips) must behave identically on all execution paths too.
	probes := []struct {
		kind  machine.FaultKind
		width uint
	}{
		{machine.FaultResultBit, 0}, {machine.FaultSourceBit, 0},
		{machine.FaultOpcode, 0}, {machine.FaultRegFile, 0},
		{machine.FaultSkip, 1}, {machine.FaultSkip, 3},
		{machine.FaultMultiBit, 2}, {machine.FaultMultiBit, 5},
	}
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			p, err := core.Build(b, core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Train([]int64{bench.TrainSeed(0)}, bench.ScaleTiny); err != nil {
				t.Fatal(err)
			}
			inst := b.Gen(bench.TestSeed(1), bench.ScaleFI)
			for _, s := range []core.Scheme{core.Unsafe, core.SWIFT, core.SWIFTR, core.RSkip, core.SWIFTRHard} {
				clean := p.Run(s, inst, core.RunOpts{Reference: true})
				gen := func() bench.Instance { return b.Gen(bench.TestSeed(1), bench.ScaleFI) }
				t.Run(s.String()+"/clean", func(t *testing.T) {
					runTriple(t, p, s, gen, core.RunOpts{})
				})
				region := clean.Result.Region
				if region == 0 {
					continue
				}
				budget := 3 * clean.Result.Instrs
				for i, pr := range probes {
					plan := machine.FaultPlan{
						Kind:   pr.kind,
						Target: region * uint64(i) / uint64(len(probes)),
						Bit:    uint(7 * (i + 1) % 64),
						Pick:   i,
						Width:  pr.width,
					}
					t.Run(fmt.Sprintf("%s/%v.w%d@%d", s, pr.kind, pr.width, plan.Target), func(t *testing.T) {
						runTriple(t, p, s, gen,
							core.RunOpts{Fault: &plan, MaxInstrs: budget})
					})
				}
			}
		})
	}
}
