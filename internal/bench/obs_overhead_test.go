package bench_test

import (
	"context"
	"testing"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/obs"
)

// BenchmarkObsOverhead measures what the observability layer costs the
// interpreter, in ns per simulated dynamic instruction, across three
// modes:
//
//	disabled — no Obs anywhere (the default for library users and any
//	           CLI run without -trace/-metrics). The acceptance bar is
//	           that this stays within 2% of the pre-obs interpreter:
//	           all per-run instrument feeding sits behind one nil
//	           check, and nothing touches the per-instruction path.
//	metrics  — a live metric registry fed once per run (atomic adds on
//	           pre-resolved handles).
//	tracing  — metrics plus a Tracer recording spans (builds happen
//	           outside the timed loop, so this prices the per-run
//	           span-free steady state).
//
// Compare against BenchmarkStep/<bench>/fast from the same machine to
// get the disabled-mode overhead figure recorded in EXPERIMENTS.md.
func BenchmarkObsOverhead(b *testing.B) {
	for _, name := range []string{"conv1d", "sgemm"} {
		bm, err := bench.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		inst := bm.Gen(bench.TestSeed(0), bench.ScaleFI)
		modes := []struct {
			label string
			o     *obs.Obs
		}{
			{"disabled", nil},
			{"metrics", &obs.Obs{Metrics: obs.NewMetrics()}},
			{"tracing", obs.New()},
		}
		for _, mode := range modes {
			ctx := obs.Into(context.Background(), mode.o)
			p, err := core.BuildContext(ctx, bm, core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			b.Run(name+"/"+mode.label, func(b *testing.B) {
				var instrs uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					o := p.Run(core.Unsafe, inst, core.RunOpts{})
					if o.Err != nil {
						b.Fatal(o.Err)
					}
					instrs += o.Result.Instrs
				}
				b.StopTimer()
				if instrs > 0 {
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instrs), "ns/instr")
				}
			})
		}
	}
}
