package bench

import (
	"math/rand"

	"rskip/internal/machine"
)

const sgemmSrc = `
// sgemm: general matrix multiplication (Parboil). The detected loop is
// the column loop: each iteration reduces one dot product and stores
// one output element (Table 1: nested reduction loops inside an outer
// loop).
void kernel(int a[], int b[], int c[], int n, int m, int p) {
	for (int i = 0; i < n; i = i + 1) {
		for (int j = 0; j < p; j = j + 1) {
			int sum = 0;
			for (int k = 0; k < m; k = k + 1) {
				sum = sum + a[i * m + k] * b[k * p + j];
			}
			c[i * p + j] = sum;
		}
	}
}
`

// SGEMM is the linear-algebra matrix-multiplication benchmark.
func SGEMM() Benchmark {
	return Benchmark{
		Name:        "sgemm",
		Domain:      "Linear algebra",
		Description: "General matrix multiplication",
		Pattern:     "Nested reduction loops",
		Location:    "Inside an outer loop",
		Kernel:      "kernel",
		Source:      sgemmSrc,
		Gen: func(seed int64, scale Scale) Instance {
			rng := rand.New(rand.NewSource(seed))
			n, m, p := 48, 48, 48
			switch scale {
			case ScaleFI:
				n, m, p = 14, 14, 14
			case ScaleTiny:
				n, m, p = 6, 6, 6
			}
			a := make([]int64, n*m)
			b := make([]int64, m*p)
			ar := smoothInts(rng, n*m, 0, 120, 0.03)
			br := smoothInts(rng, m*p, 0, 120, 0.03)
			copy(a, ar)
			copy(b, br)
			return Instance{
				Elements: n * p,
				Setup: func(mem *machine.Memory) []uint64 {
					ab := allocInts(mem, a)
					bb := allocInts(mem, b)
					cb := mem.Alloc(int64(n * p))
					return []uint64{uint64(ab), uint64(bb), uint64(cb),
						uint64(int64(n)), uint64(int64(m)), uint64(int64(p))}
				},
				Output: func(mem *machine.Memory) []uint64 {
					return readWords(mem, int64(n*m+m*p), n*p)
				},
			}
		},
	}
}

const ludSrc = `
// lud: LU decomposition (Rodinia). Both inner j-loops are detected:
// reduction loops with trip counts that vary across the outer i loop
// (Table 1). The second loop is the paper's Figure 4b example,
// including the read-modify-write of a[j*size+i] that exercises the
// pre-store temporary-space buffering.
void kernel(float a[], int size) {
	for (int i = 0; i < size; i = i + 1) {
		for (int j = i; j < size; j = j + 1) {
			float sum = a[i * size + j];
			for (int k = 0; k < i; k = k + 1) {
				sum = sum - a[i * size + k] * a[k * size + j];
			}
			a[i * size + j] = sum;
		}
		for (int j = i + 1; j < size; j = j + 1) {
			float sum = a[j * size + i];
			for (int k = 0; k < i; k = k + 1) {
				sum = sum - a[j * size + k] * a[k * size + i];
			}
			a[j * size + i] = sum / a[i * size + i];
		}
	}
}
`

// LUD is the LU-decomposition benchmark.
func LUD() Benchmark {
	return Benchmark{
		Name:        "lud",
		Domain:      "Linear algebra",
		Description: "LU decomposition",
		Pattern:     "A reduction loop with a varying trip count",
		Location:    "Inside an outer loop",
		Kernel:      "kernel",
		Source:      ludSrc,
		Gen: func(seed int64, scale Scale) Instance {
			rng := rand.New(rand.NewSource(seed))
			size := 56
			switch scale {
			case ScaleFI:
				size = 18
			case ScaleTiny:
				size = 8
			}
			a := make([]float64, size*size)
			rows := smoothFloats(rng, size, 0.5, 2.0, 0.02)
			cols := smoothFloats(rng, size, 0.5, 2.0, 0.02)
			for i := 0; i < size; i++ {
				for j := 0; j < size; j++ {
					a[i*size+j] = rows[i] * cols[j]
				}
			}
			// Diagonal dominance keeps the factorization stable.
			for i := 0; i < size; i++ {
				a[i*size+i] += float64(size)
			}
			return Instance{
				Elements: size * size, // both loop families combined, roughly
				Setup: func(mem *machine.Memory) []uint64 {
					ab := allocFloats(mem, a)
					return []uint64{uint64(ab), uint64(int64(size))}
				},
				Output: func(mem *machine.Memory) []uint64 {
					return readWords(mem, 0, size*size)
				},
			}
		},
	}
}
