package bench

import (
	"math/rand"

	"rskip/internal/machine"
)

const conv1dSrc = `
// conv1d: 1D convolution. The detected loop is the output loop; each
// iteration's value is a reduction over the kernel window (Table 1:
// "a reduction loop inside an outer loop").
void kernel(int input[], int kern[], int output[], int n, int k) {
	for (int f = 0; f < 4; f = f + 1) {
		for (int i = 0; i < n - k + 1; i = i + 1) {
			int sum = 0;
			for (int j = 0; j < k; j = j + 1) {
				sum = sum + input[i + j] * kern[j];
			}
			output[f * (n - k + 1) + i] = sum;
		}
	}
}
`

// Conv1D is the signal-processing 1D convolution benchmark.
func Conv1D() Benchmark {
	return Benchmark{
		Name:        "conv1d",
		Domain:      "Signal processing, Machine learning",
		Description: "1D convolution",
		Pattern:     "A reduction loop",
		Location:    "Inside an outer loop",
		Kernel:      "kernel",
		Source:      conv1dSrc,
		Gen: func(seed int64, scale Scale) Instance {
			rng := rand.New(rand.NewSource(seed))
			n, k := 1024, 12
			switch scale {
			case ScaleFI:
				n, k = 160, 6
			case ScaleTiny:
				n, k = 40, 4
			}
			// Blur-like positive kernels keep conv outputs on the input's
			// smooth trend (edge-detector kernels would differentiate it).
			input := smoothInts(rng, n, 0, 4000, 0.03)
			kern := smoothInts(rng, k, 1, 8, 0.2)
			outLen := 4 * (n - k + 1)
			return Instance{
				Elements: outLen,
				Setup: func(mem *machine.Memory) []uint64 {
					in := allocInts(mem, input)
					kb := allocInts(mem, kern)
					out := mem.Alloc(int64(outLen))
					return []uint64{uint64(in), uint64(kb), uint64(out),
						uint64(int64(n)), uint64(int64(k))}
				},
				Output: func(mem *machine.Memory) []uint64 {
					// The output array is the third allocation.
					return readWords(mem, int64(n+k), outLen)
				},
			}
		},
	}
}

const conv2dSrc = `
// conv2d: 2D convolution with boundary conditionals. The detected loop
// runs over output pixels; its value computation is a nested reduction
// with conditional statements (Table 1), which is where SWIFT-R's
// recurring synchronization points hurt the most (§7.1).
void kernel(int input[], int kern[], int output[], int h, int w, int kh, int kw) {
	for (int idx = 0; idx < h * w; idx = idx + 1) {
		int y = idx / w;
		int x = idx - y * w;
		int sum = 0;
		for (int ky = 0; ky < kh; ky = ky + 1) {
			for (int kx = 0; kx < kw; kx = kx + 1) {
				int yy = y + ky - kh / 2;
				int xx = x + kx - kw / 2;
				if (yy >= 0 && yy < h && xx >= 0 && xx < w) {
					sum = sum + input[yy * w + xx] * kern[ky * kw + kx];
				}
			}
		}
		output[idx] = sum;
	}
}
`

// Conv2D is the 2D convolution benchmark.
func Conv2D() Benchmark {
	return Benchmark{
		Name:        "conv2d",
		Domain:      "Signal processing, Machine learning",
		Description: "2D convolution",
		Pattern:     "Nested reduction loops with conditional statement",
		Location:    "Inside an outer loop",
		Kernel:      "kernel",
		Source:      conv2dSrc,
		Gen: func(seed int64, scale Scale) Instance {
			rng := rand.New(rand.NewSource(seed))
			h, w, kh, kw := 40, 40, 9, 9
			switch scale {
			case ScaleFI:
				h, w, kh, kw = 14, 14, 5, 5
			case ScaleTiny:
				h, w, kh, kw = 8, 8, 3, 3
			}
			input := make([]int64, h*w)
			rows := smoothInts(rng, h, 50, 250, 0.05)
			cols := smoothInts(rng, w, 50, 250, 0.05)
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					input[y*w+x] = (rows[y] + cols[x]) / 2
				}
			}
			kern := smoothInts(rng, kh*kw, 1, 4, 0.3)
			return Instance{
				Elements: h * w,
				Setup: func(mem *machine.Memory) []uint64 {
					in := allocInts(mem, input)
					kb := allocInts(mem, kern)
					out := mem.Alloc(int64(h * w))
					return []uint64{uint64(in), uint64(kb), uint64(out),
						uint64(int64(h)), uint64(int64(w)),
						uint64(int64(kh)), uint64(int64(kw))}
				},
				Output: func(mem *machine.Memory) []uint64 {
					return readWords(mem, int64(h*w+kh*kw), h*w)
				},
			}
		},
	}
}
