package bench

import (
	"math/rand"

	"rskip/internal/machine"
)

const kdeSrc = `
// kde: Gaussian kernel density estimation. The detected loop evaluates
// the density at each query point by a reduction over the data set
// (Table 1: nested reduction loops inside an outer loop).
void kernel(float data[], float query[], float density[], int n, int m, float h) {
	for (int i = 0; i < m; i = i + 1) {
		float sum = 0.0;
		for (int j = 0; j < n; j = j + 1) {
			float d = (query[i] - data[j]) / h;
			sum = sum + exp(-0.5 * d * d);
		}
		density[i] = sum / (float(n) * h);
	}
}
`

// KDE is the kernel-density-estimation benchmark.
func KDE() Benchmark {
	return Benchmark{
		Name:        "kde",
		Domain:      "Machine learning",
		Description: "Kernel Density Estimation",
		Pattern:     "Nested reduction loops",
		Location:    "Inside an outer loop",
		Kernel:      "kernel",
		Source:      kdeSrc,
		Gen: func(seed int64, scale Scale) Instance {
			rng := rand.New(rand.NewSource(seed))
			n, m := 384, 256
			switch scale {
			case ScaleFI:
				n, m = 48, 32
			case ScaleTiny:
				n, m = 16, 8
			}
			data := smoothFloats(rng, n, -3, 3, 0.3)
			// Queries sweep the domain smoothly: consecutive densities
			// share a trend.
			query := make([]float64, m)
			for i := range query {
				query[i] = -4 + 8*float64(i)/float64(m)
			}
			h := 0.4 + rng.Float64()*0.2
			return Instance{
				Elements: m,
				Setup: func(mem *machine.Memory) []uint64 {
					db := allocFloats(mem, data)
					qb := allocFloats(mem, query)
					ob := mem.Alloc(int64(m))
					return []uint64{uint64(db), uint64(qb), uint64(ob),
						uint64(int64(n)), uint64(int64(m)), fbits(h)}
				},
				Output: func(mem *machine.Memory) []uint64 {
					return readWords(mem, int64(n+m), m)
				},
			}
		},
	}
}

const forwardpropSrc = `
// forwardprop: fully connected layer forward pass with a sigmoid
// activation (Rodinia backprop's forward phase). The detected loop
// computes one output neuron per iteration via a reduction over the
// inputs (Table 1: a reduction loop).
void kernel(float input[], float weights[], float output[], int nin, int nout) {
	for (int j = 0; j < nout; j = j + 1) {
		float sum = 0.0;
		for (int i = 0; i < nin; i = i + 1) {
			sum = sum + weights[j * nin + i] * input[i];
		}
		output[j] = 1.0 / (1.0 + exp(-sum));
	}
}
`

// ForwardProp is the neural-network forward-propagation benchmark.
func ForwardProp() Benchmark {
	return Benchmark{
		Name:        "forwardprop",
		Domain:      "Machine learning",
		Description: "Forward propagation for the fully connected neural network",
		Pattern:     "A reduction loop",
		Location:    "Top level",
		Kernel:      "kernel",
		Source:      forwardpropSrc,
		Gen: func(seed int64, scale Scale) Instance {
			rng := rand.New(rand.NewSource(seed))
			nin, nout := 512, 256
			switch scale {
			case ScaleFI:
				nin, nout = 64, 40
			case ScaleTiny:
				nin, nout = 16, 8
			}
			input := smoothFloats(rng, nin, 0, 1, 0.05)
			weights := make([]float64, nout*nin)
			// Weight rows small enough that the pre-activation stays in
			// the sigmoid's responsive range (a saturated network would
			// produce 0/1 plateaus with no trend to interpolate).
			wr := smoothFloats(rng, nout, -0.004, 0.004, 0.02)
			wc := smoothFloats(rng, nin, 0.5, 1.5, 0.02)
			for j := 0; j < nout; j++ {
				for i := 0; i < nin; i++ {
					weights[j*nin+i] = wr[j] * wc[i]
				}
			}
			return Instance{
				Elements: nout,
				Setup: func(mem *machine.Memory) []uint64 {
					ib := allocFloats(mem, input)
					wb := allocFloats(mem, weights)
					ob := mem.Alloc(int64(nout))
					return []uint64{uint64(ib), uint64(wb), uint64(ob),
						uint64(int64(nin)), uint64(int64(nout))}
				},
				Output: func(mem *machine.Memory) []uint64 {
					return readWords(mem, int64(nin+nout*nin), nout)
				},
			}
		},
	}
}

const backpropSrc = `
// backprop: hidden-layer delta computation of backpropagation
// (Rodinia). The detected loop reduces the output deltas through the
// transposed weights and scales by the sigmoid derivative.
void kernel(float deltao[], float weights[], float hidden[], float deltah[], int nh, int no) {
	for (int j = 0; j < nh; j = j + 1) {
		float sum = 0.0;
		for (int k = 0; k < no; k = k + 1) {
			sum = sum + deltao[k] * weights[k * nh + j];
		}
		deltah[j] = sum * hidden[j] * (1.0 - hidden[j]);
	}
}
`

// BackProp is the neural-network backward-propagation benchmark.
func BackProp() Benchmark {
	return Benchmark{
		Name:        "backprop",
		Domain:      "Machine learning",
		Description: "Backward propagation for the fully connected neural network",
		Pattern:     "A reduction loop",
		Location:    "Top level",
		Kernel:      "kernel",
		Source:      backpropSrc,
		Gen: func(seed int64, scale Scale) Instance {
			rng := rand.New(rand.NewSource(seed))
			nh, no := 512, 256
			switch scale {
			case ScaleFI:
				nh, no = 64, 40
			case ScaleTiny:
				nh, no = 16, 8
			}
			deltao := smoothFloats(rng, no, -0.5, 0.5, 0.02)
			hidden := smoothFloats(rng, nh, 0.2, 0.8, 0.02)
			weights := make([]float64, no*nh)
			wr := smoothFloats(rng, no, -0.5, 0.5, 0.02)
			wc := smoothFloats(rng, nh, 0.5, 1.5, 0.02)
			for k := 0; k < no; k++ {
				for j := 0; j < nh; j++ {
					weights[k*nh+j] = wr[k] * wc[j]
				}
			}
			return Instance{
				Elements: nh,
				Setup: func(mem *machine.Memory) []uint64 {
					db := allocFloats(mem, deltao)
					wb := allocFloats(mem, weights)
					hb := allocFloats(mem, hidden)
					ob := mem.Alloc(int64(nh))
					return []uint64{uint64(db), uint64(wb), uint64(hb), uint64(ob),
						uint64(int64(nh)), uint64(int64(no))}
				},
				Output: func(mem *machine.Memory) []uint64 {
					return readWords(mem, int64(no+no*nh+nh), nh)
				},
			}
		},
	}
}
