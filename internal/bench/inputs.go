package bench

import (
	"math"
	"math/rand"
)

// Input generation. Training and test inputs are drawn from disjoint
// seed ranges (the harness uses TrainSeed/TestSeed); each seed fully
// determines the instance, so every scheme of a campaign replays the
// identical input. Real workloads carry the spatio-value similarity
// the paper's predictors exploit, so the generators synthesize
// smooth signals (sums of low-frequency waves) plus bounded noise
// rather than white noise.

// TrainSeed returns the i-th training seed for a benchmark.
func TrainSeed(i int) int64 { return 1000 + int64(i) }

// TestSeed returns the i-th test seed; disjoint from training.
func TestSeed(i int) int64 { return 900000 + int64(i) }

// smoothFloats synthesizes a piecewise-linear trend signal of n
// samples in [lo, hi] with relative noise: a handful of segments with
// distinct slopes, joined continuously, plus bounded jitter. This is
// the spatio-value similarity (§2) real workload data exhibits and the
// shape Figure 5 sketches — local linear trends separated by slope
// breaks, with occasional outliers.
func smoothFloats(rng *rand.Rand, n int, lo, hi, noise float64) []float64 {
	out := make([]float64, n)
	segs := 4 + rng.Intn(6)
	if segs > n {
		segs = n
	}
	// Breakpoint positions and values.
	xs := make([]int, segs+1)
	ys := make([]float64, segs+1)
	xs[0], xs[segs] = 0, n-1
	for k := 1; k < segs; k++ {
		xs[k] = k * (n - 1) / segs
		if span := (n - 1) / (2 * segs); span > 0 {
			xs[k] += rng.Intn(2*span+1) - span
		}
	}
	sortInts(xs)
	for k := range ys {
		ys[k] = lo + rng.Float64()*(hi-lo)
	}
	// Each segment bows slightly (real trends are rarely perfectly
	// straight): the interior of a long phase then deviates from its
	// chord by a bounded relative amount, which is what makes wider
	// acceptable ranges accept more elements (Fig. 7a's AR gradient).
	bows := make([]float64, segs)
	for k := range bows {
		bows[k] = (rng.Float64()*2 - 1) * 0.35
	}
	amp := (hi - lo) / 2
	seg := 0
	for i := 0; i < n; i++ {
		for seg+1 < len(xs) && i > xs[seg+1] {
			seg++
		}
		x0, x1 := xs[seg], xs[seg+1]
		t := 0.0
		if x1 > x0 {
			t = float64(i-x0) / float64(x1-x0)
		}
		v := ys[seg] + (ys[seg+1]-ys[seg])*t
		v += (ys[seg+1] - ys[seg]) * bows[seg] * 4 * t * (1 - t)
		v += amp * noise * (rng.Float64()*2 - 1)
		// Occasional outliers (§2: "sometimes, a few outliers irritate
		// the trend-based prediction"): spikes whose downstream effect
		// lands between the narrow and wide acceptable ranges.
		if rng.Float64() < 0.04 {
			v += amp * (0.3 + 0.9*rng.Float64()) * sign(rng)
		}
		out[i] = v
	}
	return out
}

func sign(rng *rand.Rand) float64 {
	if rng.Intn(2) == 0 {
		return -1
	}
	return 1
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// clusteredFloats draws samples concentrated around a fixed set of
// domain cluster centers (e.g. option strikes at round numbers) with
// small jitter. The concentration is what lets a quantized lookup
// table generalize to unseen inputs drawn from the same market
// structure, and what makes uniform min/max quantization wasteful
// compared to histogram quantization (§4.2).
func clusteredFloats(rng *rand.Rand, n int, centers []float64, jitter float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		out[i] = c * (1 + jitter*(rng.Float64()*2-1))
	}
	return out
}

// smoothInts synthesizes a smooth integer signal in [lo, hi].
func smoothInts(rng *rand.Rand, n int, lo, hi int64, noise float64) []int64 {
	fs := smoothFloats(rng, n, float64(lo), float64(hi), noise)
	out := make([]int64, n)
	for i, v := range fs {
		out[i] = int64(math.Round(v))
	}
	return out
}

// uniformFloats draws independent uniform samples (blackscholes'
// option parameters have no spatial trend, which is exactly why its
// DI-only skip rate is low and memoization matters).
func uniformFloats(rng *rand.Rand, n int, lo, hi float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + rng.Float64()*(hi-lo)
	}
	return out
}
