package bench_test

import (
	"context"
	"testing"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/fault"
	"rskip/internal/machine"
)

// buildFor compiles one benchmark for the speed benchmarks, failing
// the benchmark on any build error.
func buildFor(b *testing.B, name string) (*core.Program, bench.Instance) {
	b.Helper()
	bm, err := bench.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.Build(bm, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return p, bm.Gen(bench.TestSeed(0), bench.ScaleFI)
}

// BenchmarkStep measures interpreter throughput as ns per simulated
// dynamic instruction: one full kernel run per iteration (machine
// construction, setup and teardown included — that is what a campaign
// pays per injection). The compiled/fast/reference triple is the
// speedup each execution backend buys over the seed per-instruction
// interpreter.
//
// Profile the hot path with:
//
//	go test -bench BenchmarkStep/conv1d/compiled -benchtime 3s \
//	    -cpuprofile cpu.out ./internal/bench/ && go tool pprof cpu.out
func BenchmarkStep(b *testing.B) {
	for _, name := range []string{"conv1d", "sgemm", "blackscholes", "lud"} {
		p, inst := buildFor(b, name)
		for _, mode := range []struct {
			label string
			opts  core.RunOpts
		}{
			{"compiled", core.RunOpts{Backend: machine.BackendCompiled}},
			{"fast", core.RunOpts{Backend: machine.BackendFast}},
			{"reference", core.RunOpts{Reference: true}},
		} {
			b.Run(name+"/"+mode.label, func(b *testing.B) {
				var instrs uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					o := p.Run(core.Unsafe, inst, mode.opts)
					if o.Err != nil {
						b.Fatal(o.Err)
					}
					instrs += o.Result.Instrs
				}
				b.StopTimer()
				if instrs > 0 {
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instrs), "ns/instr")
				}
			})
		}
	}
}

// BenchmarkCampaign measures end-to-end fault-injection throughput —
// plans drawn, machines built, faults injected, outcomes classified —
// in runs per second. This is the number that decides whether a
// million-run campaign is an overnight job or a coffee break.
func BenchmarkCampaign(b *testing.B) {
	p, inst := buildFor(b, "conv1d")
	b.ResetTimer()
	var runs int
	for i := 0; i < b.N; i++ {
		r, err := fault.Campaign(context.Background(), p, core.SWIFTR, inst,
			fault.Config{N: 50, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		runs += r.N
	}
	b.StopTimer()
	if runs > 0 {
		b.ReportMetric(float64(runs)/b.Elapsed().Seconds(), "runs/s")
	}
}
