package bench_test

import (
	"testing"
	"time"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/machine"
)

// TestCompiledBackendFaster is the CI performance bar for the
// closure-threaded backend: over interleaved min-of-N kernel runs in
// one process, compiled must beat the pre-decoded fast interpreter by
// a coarse margin. The bar is deliberately loose — the measured gap
// is ~1.3-1.5× but shared CI machines are noisy, so the test takes
// the minimum of several interleaved rounds (immune to machine-wide
// drift during the test) and only demands 1.05×. A regression that
// makes the compiled backend pointless (at or below fast) fails; a
// few percent of erosion does not flake the build.
func TestCompiledBackendFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("timing bar skipped in -short")
	}
	bm, err := bench.ByName("sgemm")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Build(bm, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inst := bm.Gen(bench.TestSeed(0), bench.ScaleFI)

	run := func(be machine.Backend) time.Duration {
		start := time.Now()
		o := p.Run(core.Unsafe, inst, core.RunOpts{Backend: be})
		if o.Err != nil {
			t.Fatal(o.Err)
		}
		return time.Since(start)
	}
	// Warm both engines: the decoded and compiled code objects are
	// built lazily and cached on the Program.
	run(machine.BackendFast)
	run(machine.BackendCompiled)

	const rounds = 7
	minFast, minComp := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < rounds; i++ {
		if d := run(machine.BackendFast); d < minFast {
			minFast = d
		}
		if d := run(machine.BackendCompiled); d < minComp {
			minComp = d
		}
	}
	ratio := float64(minFast) / float64(minComp)
	t.Logf("sgemm min-of-%d: fast %v, compiled %v (%.2fx)", rounds, minFast, minComp, ratio)
	if ratio < 1.05 {
		t.Errorf("compiled backend is not meaningfully faster than fast: %.2fx (want >= 1.05x)", ratio)
	}
}
