package bench

import (
	"math/rand"

	"rskip/internal/machine"
)

const yoloSrc = `
// yolo: a scaled-down object-detection head standing in for YOLOv2
// (see DESIGN.md's substitution table). Per detection cell, the
// detected loop computes a convolutional feature map with a leaky-ReLU
// (a reduction loop inside an outer loop); class scores and the argmax
// label follow. The program's output is the label per cell, so small
// value errors that slip past fuzzy validation tend to be logically
// masked — the benign-false-negative behaviour §7.2 reports for
// YOLOv2.
void kernel(float img[], float cw[], float clsw[], float feat[], float score[],
            int labels[], int ncells, int patch, int nf, int nc) {
	for (int cell = 0; cell < ncells; cell = cell + 1) {
		for (int f = 0; f < nf; f = f + 1) {
			float sum = 0.0;
			for (int p = 0; p < patch; p = p + 1) {
				sum = sum + img[cell * patch + p] * cw[f * patch + p];
			}
			if (sum < 0.0) {
				sum = 0.1 * sum;
			}
			feat[f] = sum;
		}
		int best = 0;
		float bestv = -1000000.0;
		for (int c = 0; c < nc; c = c + 1) {
			float s = 0.0;
			for (int i = 0; i < nf; i = i + 1) {
				s = s + feat[i] * clsw[c * nf + i];
			}
			score[c] = s;
			if (s > bestv) {
				bestv = s;
				best = c;
			}
		}
		labels[cell] = best;
	}
}
`

// YOLO is the object-detection benchmark.
func YOLO() Benchmark {
	return Benchmark{
		Name:        "yolo",
		Domain:      "Machine learning, Computer vision",
		Description: "Real time object detection (scaled-down YOLOv2 head)",
		Pattern:     "A reduction loop",
		Location:    "Inside an outer loop",
		Kernel:      "kernel",
		Source:      yoloSrc,
		Gen: func(seed int64, scale Scale) Instance {
			rng := rand.New(rand.NewSource(seed))
			ncells, patch, nf, nc := 40, 64, 32, 16
			switch scale {
			case ScaleFI:
				ncells, patch, nf, nc = 8, 24, 12, 8
			case ScaleTiny:
				ncells, patch, nf, nc = 4, 8, 4, 4
			}
			img := smoothFloats(rng, ncells*patch, 0, 1, 0.03)
			cwr := smoothFloats(rng, nf, -0.4, 0.4, 0.02)
			cwc := smoothFloats(rng, patch, 0.5, 1.5, 0.02)
			cw := make([]float64, nf*patch)
			for f := 0; f < nf; f++ {
				for p := 0; p < patch; p++ {
					cw[f*patch+p] = cwr[f] * cwc[p]
				}
			}
			clsw := smoothFloats(rng, nc*nf, -0.5, 0.5, 0.4)
			return Instance{
				Elements: ncells * nf,
				Setup: func(mem *machine.Memory) []uint64 {
					ib := allocFloats(mem, img)
					cb := allocFloats(mem, cw)
					wb := allocFloats(mem, clsw)
					fb := mem.Alloc(int64(nf))
					sb := mem.Alloc(int64(nc))
					lb := mem.Alloc(int64(ncells))
					return []uint64{uint64(ib), uint64(cb), uint64(wb),
						uint64(fb), uint64(sb), uint64(lb),
						uint64(int64(ncells)), uint64(int64(patch)),
						uint64(int64(nf)), uint64(int64(nc))}
				},
				Output: func(mem *machine.Memory) []uint64 {
					base := int64(ncells*patch + nf*patch + nc*nf + nf + nc)
					return readWords(mem, base, ncells)
				},
			}
		},
	}
}
