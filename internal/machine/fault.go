package machine

import (
	"fmt"

	"rskip/internal/ir"
)

// FaultKind selects where in the simulated core a single event upset
// lands. The campaign mixes the kinds so the residual vulnerabilities
// the paper attributes to software-only schemes (opcode-field flips,
// post-validation register strikes) occur at realistic rates.
type FaultKind uint8

// Fault kinds.
const (
	// FaultResultBit flips one bit of the target instruction's result
	// register right after it executes (a strike on a functional unit
	// output or the register file write).
	FaultResultBit FaultKind = iota
	// FaultSourceBit flips one bit of a source register right before
	// the instruction executes (a strike on an operand that may have
	// already been validated — SWIFT-R's "examined register before its
	// actual usage" residual case).
	FaultSourceBit
	// FaultOpcode flips a bit in the instruction's opcode field. The
	// machine models the three representative corruptions: the
	// instruction becomes a no-op, writes a corrupted result, or turns
	// into an illegal encoding that traps.
	FaultOpcode
	// FaultRegFile flips one bit of a uniformly chosen architectural
	// register of the executing frame — the dominant strike class in
	// gem5-style register-file injection. Most registers are dead or
	// stale at any instant, which is where the high masking rates of
	// §7.2 (UNSAFE ≈77% Correct) come from.
	FaultRegFile
	// FaultSkip suppresses the target instruction entirely — the
	// instruction-skip attack model of Moro et al. (a glitched fetch or
	// corrupted program counter). With Width > 1 it suppresses that many
	// consecutive dynamic instructions (multi-skip), continuing across
	// block and region boundaries like a real glitch burst would.
	FaultSkip
	// FaultMultiBit flips Width adjacent bits of the struck register (a
	// multi-bit upset from one particle hitting neighboring cells). It
	// lands like FaultResultBit — on the destination right after the
	// instruction executes, falling back to a source strike for
	// dst-less instructions.
	FaultMultiBit

	// NumFaultKinds bounds dense per-kind tables.
	NumFaultKinds = int(FaultMultiBit) + 1
)

var faultKindNames = [NumFaultKinds]string{
	FaultResultBit: "result-bit",
	FaultSourceBit: "source-bit",
	FaultOpcode:    "opcode",
	FaultRegFile:   "regfile",
	FaultSkip:      "skip",
	FaultMultiBit:  "multibit",
}

func (k FaultKind) String() string {
	if int(k) < len(faultKindNames) && faultKindNames[k] != "" {
		return faultKindNames[k]
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// FaultPlan describes one single-event upset to inject.
type FaultPlan struct {
	Kind FaultKind
	// Target fires the fault at the Target-th dynamic IR instruction
	// executed inside the detected-loop region (0-based).
	Target uint64
	// Bit selects the flipped bit (0..63).
	Bit uint
	// Pick selects among multiple source operands.
	Pick int
	// Width widens the event: consecutive instructions suppressed for
	// FaultSkip, adjacent bits flipped for FaultMultiBit. 0 and 1 both
	// mean a single-instruction / single-bit event; other kinds ignore
	// it.
	Width uint
}

type faultState struct {
	plan     FaultPlan
	armed    bool
	fired    bool
	firedTag ir.InstrTag
	firedOp  ir.Op
	firedFn  int
	// skipsLeft counts the remaining instructions of a multi-skip burst
	// after the first one fired; the burst continues unconditionally
	// (across blocks, frames and region boundaries).
	skipsLeft uint
}

// FaultFired reports whether the armed fault was injected during the
// run; faults that never fire (the region finished early) count as
// masked.
func (m *Machine) FaultFired() bool { return m.fault.fired }

// FaultSite reports the protection tag, opcode and function index of
// the fault's landing site. Campaigns use it to attribute outcomes:
// hits on TagValue instructions/registers, or anywhere inside an
// internal (unprotected value-slice) function, are covered by fuzzy
// validation and are false-negative candidates; everything else is
// covered by conventional duplication.
func (m *Machine) FaultSite() (ir.InstrTag, ir.Op, int) {
	return m.fault.firedTag, m.fault.firedOp, m.fault.firedFn
}

type faultAction uint8

const (
	faultNone    faultAction = iota
	faultPre                 // flip a source bit, then execute normally
	faultPost                // execute, then flip the destination bit
	faultSkip                // the instruction becomes a no-op
	faultGarbage             // destination receives a corrupted value
	faultTrap                // illegal encoding: trap
	faultRegFile             // flip a bit of a random architectural register
)

// decideFault checks whether the armed fault fires on this dynamic
// instruction and, if so, how it manifests. Must be called after the
// region counter is updated for this instruction.
func (m *Machine) decideFault(inRegion bool, in *ir.Instr) faultAction {
	// An in-flight multi-skip burst suppresses instructions
	// unconditionally until it drains — the glitch does not respect
	// region or block boundaries.
	if m.fault.skipsLeft > 0 {
		m.fault.skipsLeft--
		return faultSkip
	}
	if !m.fault.armed || m.fault.fired || !inRegion {
		return faultNone
	}
	if m.C.Region-1 != m.fault.plan.Target {
		return faultNone
	}
	m.fault.fired = true
	m.fault.firedTag = in.Tag
	m.fault.firedOp = in.Op
	m.fault.firedFn = m.faultFrameFn
	// Careful: Dst is only meaningful when the opcode writes one; the
	// zero value of an absent Dst is register 0, not NoReg.
	hasDst := in.Op.HasDst() && in.Dst != ir.NoReg
	switch m.fault.plan.Kind {
	case FaultResultBit:
		if hasDst {
			return faultPost
		}
		if len(in.Args) > 0 {
			return faultPre
		}
		return faultSkip
	case FaultSourceBit:
		if len(in.Args) > 0 {
			return faultPre
		}
		if hasDst {
			return faultPost
		}
		return faultSkip
	case FaultOpcode:
		// Most opcode-field flips turn the instruction into some other
		// valid operation (no-op or wrong result); a small share hits
		// an illegal encoding and traps — Core dump and Hang stay rare
		// (<0.3%) as in the paper.
		switch m.fault.plan.Bit % 8 {
		case 0, 1, 2:
			return faultSkip
		case 7:
			return faultTrap
		default:
			if hasDst {
				return faultGarbage
			}
			return faultSkip
		}
	case FaultRegFile:
		return faultRegFile
	case FaultSkip:
		if m.fault.plan.Width > 1 {
			m.fault.skipsLeft = m.fault.plan.Width - 1
		}
		return faultSkip
	case FaultMultiBit:
		// Same landing rules as a result strike; flipBit widens the
		// upset to the planned number of adjacent bits.
		if hasDst {
			return faultPost
		}
		if len(in.Args) > 0 {
			return faultPre
		}
		return faultSkip
	}
	return faultNone
}

// regWidth is the architectural register width of the modeled target
// (the paper's ARMv7-A setup): every strike lands within a 32-bit
// register, whatever the interpreter's host word size.
const regWidth = 32

// flipBit flips the planned bit(s) in the given register of frame f.
// The fault model follows the paper's ARMv7-A setup: registers are
// regWidth (32) bits wide, so each planned bit is reduced modulo 32
// and, for float-typed registers, mapped onto the float64
// representation so the *relative* perturbation matches an FP32 strike
// (mantissa bit k of 23 → mantissa bit k+29 of 52; exponent and sign
// bits likewise). A FaultMultiBit plan flips Width adjacent
// architectural bits through the same mapping, and adjacency wraps
// modulo regWidth: a width-2 upset at bit 31 strikes bits {31, 0} —
// the event stays inside the 32-bit register, it never escapes into
// bit 32 of the host word. Every execution backend fires faults
// through this one function (the careful-step path), so the wrap
// semantics cannot diverge between interpreters.
func (m *Machine) flipBit(f *frame, r ir.Reg) {
	if r == ir.NoReg || int(r) >= len(f.regs) {
		return
	}
	width := uint(1)
	if m.fault.plan.Kind == FaultMultiBit && m.fault.plan.Width > 1 {
		width = m.fault.plan.Width
		if width > regWidth {
			width = regWidth
		}
	}
	isFloat := f.fn.RegType[r] == ir.Float
	for i := uint(0); i < width; i++ {
		b := (uint(m.fault.plan.Bit) + i) % regWidth
		if isFloat {
			switch {
			case b == 31: // sign
				b = 63
			case b >= 23: // exponent bit (b-23) of 8 → fp64 exponent bit
				b = 52 + (b - 23)
			default: // mantissa bit b of 23 → same relative weight in fp64
				b = 29 + b
			}
		}
		f.regs[r] ^= 1 << b
	}
}

// garbage derives a deterministic corrupted value from the plan.
func (m *Machine) garbage(orig uint64) uint64 {
	// Rotate and xor: far from the original, deterministic per plan.
	b := uint64(m.fault.plan.Bit&63) + 1
	return (orig << b) ^ (orig >> (64 - b)) ^ 0x9e3779b97f4a7c15
}

// regTagOf classifies a register by the protection tags of its
// defining instructions, so register-file strikes are attributed to
// the protection domain that covers the corrupted value (a flip in a
// prediction-covered value register that slips through fuzzy
// validation is a false negative). Computed lazily per function.
func (m *Machine) regTagOf(fi int, r ir.Reg) ir.InstrTag {
	if m.regTags == nil {
		m.regTags = make(map[int][]ir.InstrTag)
	}
	tags, ok := m.regTags[fi]
	if !ok {
		fn := m.Mod.Funcs[fi]
		tags = make([]ir.InstrTag, fn.NumRegs)
		for bi := range fn.Blocks {
			for ii := range fn.Blocks[bi].Instrs {
				in := &fn.Blocks[bi].Instrs[ii]
				if !in.Op.HasDst() || in.Dst == ir.NoReg {
					continue
				}
				// Value-slice defs dominate the classification: if any
				// def of the register is prediction-covered, a strike
				// on it is a prediction-domain strike.
				if in.Tag == ir.TagValue || tags[in.Dst] == ir.TagNone {
					tags[in.Dst] = in.Tag
				}
			}
		}
		m.regTags[fi] = tags
	}
	if int(r) < len(tags) {
		return tags[r]
	}
	return ir.TagNone
}
