package machine

import (
	"fmt"

	"rskip/internal/ir"
)

// Region tracing records the layout of the in-region dynamic
// instruction stream — which candidate-loop region owns each in-region
// dynamic instruction, and what instruction class it is — during one
// profiling run. The compositional result cache (internal/result) uses
// the owner layout to split one program-level fault-injection campaign
// into independent per-region campaigns, and the stratified sampler
// (internal/fault) uses the class layout to allocate replicas across
// instruction-class strata.
//
// Tracing is a profiling concern, not a campaign-hot-path one: it is
// implemented in the reference interpreter only (the executable spec
// the other backends are differentially tested against), and callers
// that request a trace must run with Config.Reference set — core's
// RunOpts plumbing does this automatically. Since all backends count
// Region bit-identically, the layout recorded by the reference
// interpreter is exact for every backend.

// OpClass is the coarse instruction-class taxonomy used for stratified
// fault sampling: strata group dynamic instructions whose fault
// responses are alike (memory traffic segfaults, branches derail
// control flow, ALU results feed silent corruption).
type OpClass uint8

// Instruction classes.
const (
	ClassALU     OpClass = iota // int arithmetic/logic/moves/constants/compares/converts
	ClassFloat                  // floating-point arithmetic and intrinsics
	ClassMem                    // loads, stores, allocas
	ClassBranch                 // branches and returns
	ClassCall                   // calls
	ClassCheck                  // protection ops (check2, vote3)
	ClassRuntime                // run-time management hooks
	NumOpClasses
)

var opClassNames = [NumOpClasses]string{
	ClassALU:     "alu",
	ClassFloat:   "float",
	ClassMem:     "mem",
	ClassBranch:  "branch",
	ClassCall:    "call",
	ClassCheck:   "check",
	ClassRuntime: "runtime",
}

func (c OpClass) String() string {
	if int(c) < len(opClassNames) {
		return opClassNames[c]
	}
	return fmt.Sprintf("OpClass(%d)", uint8(c))
}

// ClassOf maps an opcode to its stratification class.
func ClassOf(op ir.Op) OpClass {
	switch op {
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFNeg,
		ir.OpFEq, ir.OpFNe, ir.OpFLt, ir.OpFLe, ir.OpFGt, ir.OpFGe,
		ir.OpSqrt, ir.OpExp, ir.OpLog, ir.OpFAbs, ir.OpPow,
		ir.OpFloor, ir.OpFMin, ir.OpFMax, ir.OpIToF, ir.OpFToI:
		return ClassFloat
	case ir.OpLoad, ir.OpStore, ir.OpAlloca:
		return ClassMem
	case ir.OpBr, ir.OpCondBr, ir.OpRet:
		return ClassBranch
	case ir.OpCall:
		return ClassCall
	case ir.OpCheck2, ir.OpVote3:
		return ClassCheck
	case ir.OpRTLoopEnter, ir.OpRTObserve, ir.OpRTLoopExit:
		return ClassRuntime
	}
	return ClassALU
}

// RegionSpan is one run of consecutive in-region dynamic instructions
// sharing an owner function and an instruction class. Because the
// in-region counter increments by exactly one per recorded
// instruction, the spans tile the in-region index space [0, Total) in
// order: span i covers the N indices following the spans before it.
type RegionSpan struct {
	Owner int     // function index owning the region the instruction ran in
	Class OpClass // instruction class
	N     uint64  // consecutive in-region dynamic instructions
}

// defaultMaxSpans bounds trace memory (~24 bytes/span). Class changes
// every few instructions, so span count is within a small factor of
// the region size; the default covers multi-million-instruction
// regions while keeping a runaway trace under ~100 MB.
const defaultMaxSpans = 4 << 20

// TraceOverflowError reports a region whose layout exceeded the trace
// span budget — the region is too large to analyze compositionally
// under the configured cap.
type TraceOverflowError struct{ Cap int }

func (e *TraceOverflowError) Error() string {
	return fmt.Sprintf("machine: region trace exceeded %d spans; the region is too large for compositional analysis (raise RegionTrace.MaxSpans)", e.Cap)
}

// RegionTrace collects the in-region instruction layout of one run.
// Attach it to Config.RegionTrace (reference backend only) and read
// Spans afterwards.
type RegionTrace struct {
	// MaxSpans caps trace growth (0 = defaultMaxSpans). When the cap is
	// hit, recording stops and Overflowed reports it; the run itself is
	// unaffected.
	MaxSpans int

	spans      []RegionSpan
	total      uint64
	overflowed bool
}

// note appends one in-region dynamic instruction to the trace.
func (t *RegionTrace) note(owner int, class OpClass) {
	if t.overflowed {
		return
	}
	if n := len(t.spans); n > 0 {
		last := &t.spans[n-1]
		if last.Owner == owner && last.Class == class {
			last.N++
			t.total++
			return
		}
	}
	cap := t.MaxSpans
	if cap == 0 {
		cap = defaultMaxSpans
	}
	if len(t.spans) >= cap {
		t.overflowed = true
		return
	}
	t.spans = append(t.spans, RegionSpan{Owner: owner, Class: class, N: 1})
	t.total++
}

// Spans returns the recorded layout in execution order.
func (t *RegionTrace) Spans() []RegionSpan { return t.spans }

// Total returns the number of in-region dynamic instructions recorded;
// it equals the run's Region counter unless the trace overflowed.
func (t *RegionTrace) Total() uint64 { return t.total }

// Overflowed reports that the trace hit MaxSpans and stopped
// recording. Callers must treat the trace as unusable.
func (t *RegionTrace) Overflowed() bool { return t.overflowed }

// Err returns the typed overflow error, or nil for a complete trace.
func (t *RegionTrace) Err() error {
	if t.overflowed {
		cap := t.MaxSpans
		if cap == 0 {
			cap = defaultMaxSpans
		}
		return &TraceOverflowError{Cap: cap}
	}
	return nil
}

// regionOwnerNow attributes the currently executing in-region
// instruction to the function owning the region it runs in: the
// innermost frame positioned in a detected-loop region block. Code
// reached by calls from region blocks (helpers, value slices) is
// attributed to the calling loop's function — an edit to the callee
// changes the owner's region fingerprint through the call closure, so
// the attribution and the cache key invalidate together. Frames inside
// forced-region functions (outlined recompute slices) that are not
// under any region block fall back to Config.RegionOwner, then to the
// forced function itself.
func (m *Machine) regionOwnerNow() int {
	for i := len(m.fr) - 1; i >= 0; i-- {
		fr := &m.fr[i]
		if rb := m.cfg.RegionBlocks[fr.fi]; rb != nil && rb[fr.block] {
			return fr.fi
		}
	}
	for i := len(m.fr) - 1; i >= 0; i-- {
		fr := &m.fr[i]
		if m.cfg.RegionFuncs[fr.fi] {
			if o, ok := m.cfg.RegionOwner[fr.fi]; ok {
				return o
			}
			return fr.fi
		}
	}
	return m.fr[len(m.fr)-1].fi
}
