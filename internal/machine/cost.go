package machine

import "rskip/internal/ir"

// latency returns the completion latency in cycles for an op, modeling
// a conventional out-of-order core's functional units (integer ALU 1,
// multiplier 3, divider 12+, FP adder 3, FP multiplier 4, cache-hit
// load 3, long-latency math 20-32). The paper's Xeon E31230 numbers
// motivate the ratios; only relative shapes matter for the evaluation.
func latency(op ir.Op) uint64 {
	switch op {
	case ir.OpMul:
		return 3
	case ir.OpDiv, ir.OpRem:
		return 12
	case ir.OpFAdd, ir.OpFSub:
		return 3
	case ir.OpFMul:
		return 4
	case ir.OpFDiv:
		return 12
	case ir.OpSqrt:
		return 20
	case ir.OpExp, ir.OpLog:
		return 28
	case ir.OpPow:
		return 32
	case ir.OpLoad:
		return 3
	case ir.OpIToF, ir.OpFToI, ir.OpFloor, ir.OpFMin, ir.OpFMax, ir.OpFAbs, ir.OpFNeg:
		return 2
	}
	return 1
}

// uops returns how many dynamic instructions the op stands for. The
// protection primitives expand to the short sequences a backend would
// inline: Check2 is compare+branch, Vote3 is two compares, a branch
// and a conditional move.
func uops(op ir.Op) uint64 {
	switch op {
	case ir.OpCheck2:
		return 2
	case ir.OpVote3:
		return 4
	case ir.OpCall, ir.OpRet:
		return 1
	case ir.OpRTLoopEnter, ir.OpRTObserve, ir.OpRTLoopExit:
		// Runtime hooks charge their own cost through the bridge.
		return 0
	}
	return 1
}

// Cost describes work performed by the run-time management library on
// behalf of a hook; the machine converts it to dynamic instructions
// and pipeline issue slots so predictor overhead shows up in both the
// instruction counts (Fig. 7c) and the execution time (Fig. 7b).
type Cost struct {
	IntOps   int // 1-cycle ALU operations
	FpOps    int // 3-cycle FP operations
	MemOps   int // 3-cycle loads/stores
	Branches int // 1-cycle compare/branches
}

// Instrs returns the total dynamic instructions the cost represents.
func (c Cost) Instrs() uint64 {
	return uint64(c.IntOps + c.FpOps + c.MemOps + c.Branches)
}

// Add accumulates another cost.
func (c Cost) Add(o Cost) Cost {
	return Cost{
		IntOps:   c.IntOps + o.IntOps,
		FpOps:    c.FpOps + o.FpOps,
		MemOps:   c.MemOps + o.MemOps,
		Branches: c.Branches + o.Branches,
	}
}

// pipeline models out-of-order superscalar issue: a μop issues at the
// first cycle with a free slot (width per cycle) at or after both its
// operands' ready cycles and the reorder-window floor (at most
// robWindow μops in flight). Long-latency operations therefore overlap
// across loop iterations the way they do on the paper's Xeon, while
// true dependence chains (reduction recurrences, vote-before-store)
// still serialize. Duplicated (shadow) instruction streams are
// independent of their masters, so they fill otherwise idle issue
// slots — the mechanism behind SWIFT-R's IPC boost in Fig. 7d, which
// hides part but not all of its extra instructions.
type pipeline struct {
	width uint16

	floor   uint64 // no μop issues before this cycle
	maxDone uint64 // completion cycle of the latest-finishing μop
	last    uint64 // issue cycle of the most recent μop
	head    uint32 // ring cursor (masked by robWindow-1)

	// Fixed-size arrays keep the per-μop slot probes free of slice
	// headers and bounds checks (all indices are masked by a
	// power-of-two size): issue runs once per simulated instruction,
	// so its code shape is a first-order term of interpreter speed.
	ring [robWindow]uint64 // issue cycles of the last robWindow μops
	used [slotSpan]uint16  // slot counts for cycles [floor, floor+slotSpan)
}

// robWindow approximates the reorder-buffer capacity (power of two).
const robWindow = 64

// slotSpan is the modeled horizon of schedulable cycles past floor
// (power of two).
const slotSpan = 8192

func (p *pipeline) init(width int) {
	p.width = uint16(width)
	p.floor = 0
	p.maxDone = 0
	p.last = 0
	p.head = 0
	clear(p.ring[:])
	clear(p.used[:])
}

// advanceFloor raises the window floor, recycling slot entries.
func (p *pipeline) advanceFloor(to uint64) {
	if to <= p.floor {
		return
	}
	if to-p.floor >= slotSpan {
		clear(p.used[:])
	} else {
		for c := p.floor; c < to; c++ {
			p.used[c&(slotSpan-1)] = 0
		}
	}
	p.floor = to
}

// issue schedules one μop whose operands are ready at readyAt and
// returns its completion cycle.
func (p *pipeline) issue(readyAt uint64, lat uint64) uint64 {
	// In-flight window: this μop cannot issue before the μop robWindow
	// back did (monotone floor keeps the slot array consistent).
	ri := p.head & (robWindow - 1)
	if to := p.ring[ri]; to > p.floor {
		p.advanceFloor(to)
	}
	c := p.floor
	if readyAt > c {
		c = readyAt
		if c-p.floor >= slotSpan {
			// Far-future issue (very long dependence chain): everything
			// in between is idle anyway.
			p.advanceFloor(c - slotSpan/2)
		}
	}
	width := p.width
	ui := c & (slotSpan - 1)
	u := p.used[ui]
	for u >= width {
		c++
		if c-p.floor >= slotSpan {
			p.advanceFloor(c - slotSpan/2)
		}
		ui = c & (slotSpan - 1)
		u = p.used[ui]
	}
	p.used[ui] = u + 1
	p.ring[ri] = c
	p.head++
	p.last = c
	done := c + lat
	if done > p.maxDone {
		p.maxDone = done
	}
	return done
}

// now returns the issue cycle of the most recent μop — the point new
// runtime-library work is appended at.
func (p *pipeline) now() uint64 { return p.last }

// total returns the cycle the last μop completes.
func (p *pipeline) total() uint64 { return p.maxDone }
