package machine

import (
	"errors"
	"strings"
	"testing"

	"rskip/internal/analysis"
	"rskip/internal/ir"
	"rskip/internal/transform"
)

func TestStackOverflowFaults(t *testing.T) {
	// Recursive allocas eventually collide with the heap.
	mod := compile(t, `
int f(int depth) {
	int t[512];
	t[0] = depth;
	if (depth == 0) { return t[0]; }
	return f(depth - 1) + t[0];
}`)
	m := New(mod, Config{MemWords: 1 << 12, TraceFn: -1})
	_, err := m.Run(0, []uint64{1 << 20})
	var se *SegfaultError
	if !errors.As(err, &se) {
		t.Fatalf("want stack-collision SegfaultError, got %v", err)
	}
	if !strings.Contains(err.Error(), "stack-alloc") {
		t.Errorf("error should identify stack allocation: %v", err)
	}
}

func TestArgumentCountMismatch(t *testing.T) {
	mod := compile(t, `int f(int a, int b) { return a + b; }`)
	m := New(mod, Config{TraceFn: -1})
	if _, err := m.Run(0, []uint64{1}); err == nil {
		t.Error("wrong argument count should error")
	}
}

func TestLoadOverrideScoping(t *testing.T) {
	// The recompute load-override must apply only to the given address
	// and be restored afterwards.
	mod := compile(t, `
void kernel(float a[], float out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		float s = 0.0;
		for (int j = 0; j < 2; j = j + 1) { s = s + a[i + j]; }
		out[i] = s;
	}
}`)
	// Build the PP form to get a recompute function.
	rsk := buildPPModule(t, mod)
	m := New(rsk, Config{TraceFn: -1})
	n := int64(8)
	a := m.Mem.Alloc(n + 2)
	for i := int64(0); i < n+2; i++ {
		m.Mem.SetFloat(a+i, float64(i))
	}
	out := m.Mem.Alloc(n)
	fi := rsk.FuncByName("kernel")
	rec := &captureHooks{}
	m.cfg.Hooks = rec
	if _, err := m.Run(fi, []uint64{uint64(a), uint64(out), uint64(n)}); err != nil {
		t.Fatal(err)
	}
	li := rsk.Loops[0]
	// Recompute iteration 3 with an override placing 100 at a+3: the
	// slice sums a[3]+a[4] = 100 + 4.
	got, err := m.CallRecompute(&li, 3, rec.inv, true, a+3, f2b(100))
	if err != nil {
		t.Fatal(err)
	}
	if b2f(got) != 104 {
		t.Errorf("override recompute = %g, want 104", b2f(got))
	}
	if m.overrideActive {
		t.Error("override leaked past CallRecompute")
	}
	// Without override, normal memory is read: 3 + 4.
	got, err = m.CallRecompute(&li, 3, rec.inv, false, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b2f(got) != 7 {
		t.Errorf("plain recompute = %g, want 7", b2f(got))
	}
}

type captureHooks struct{ inv []uint64 }

func (c *captureHooks) LoopEnter(m *Machine, id int, inv []uint64) error {
	c.inv = append([]uint64(nil), inv...)
	return nil
}
func (c *captureHooks) Observe(m *Machine, id int, iter int64, value uint64, addr int64) error {
	return nil
}
func (c *captureHooks) LoopExit(m *Machine, id int) error { return nil }

func buildPPModule(t *testing.T, mod *ir.Module) *ir.Module {
	t.Helper()
	rsk, err := transform.ApplyRSkip(mod, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rsk.Loops) == 0 {
		t.Fatal("no PP loop")
	}
	return rsk
}
