package machine

import (
	"strings"
	"testing"
)

func TestExecutionTrace(t *testing.T) {
	mod := compile(t, `
int f(int n) {
	int s = 0;
	for (int i = 0; i < n; i = i + 1) { s = s + i; }
	return s;
}`)
	var sb strings.Builder
	m := New(mod, Config{Trace: &sb, TraceFn: -1})
	if _, err := m.Run(0, []uint64{3}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"f b0#0", "condbr", "add", "ret"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines < 20 {
		t.Errorf("suspiciously short trace: %d lines", lines)
	}
}

func TestTraceLimit(t *testing.T) {
	mod := compile(t, `
int f(int n) {
	int s = 0;
	for (int i = 0; i < n; i = i + 1) { s = s + i; }
	return s;
}`)
	var sb strings.Builder
	m := New(mod, Config{Trace: &sb, TraceLimit: 10, TraceFn: -1})
	if _, err := m.Run(0, []uint64{1000}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "trace truncated") {
		t.Error("long trace was not truncated")
	}
	if n := strings.Count(out, "\n"); n > 12 {
		t.Errorf("truncated trace still has %d lines", n)
	}
}
