package machine

import (
	"fmt"
	"io"

	"rskip/internal/ir"
	"rskip/internal/obs"
)

// Hooks is the run-time management bridge. The rskip transform plants
// OpRTLoopEnter/OpRTObserve/OpRTLoopExit in PP loop versions; the
// machine forwards them here. Implementations live in internal/rtm.
type Hooks interface {
	// LoopEnter announces entry into PP loop id with its invariant
	// live-in register values (raw bits).
	LoopEnter(m *Machine, id int, invariants []uint64) error
	// Observe delivers one loop iteration's produced value and its
	// destination address. iter is the iteration ordinal starting at 0.
	Observe(m *Machine, id int, iter int64, value uint64, addr int64) error
	// LoopExit flushes the final (possibly uncut) phase.
	LoopExit(m *Machine, id int) error
}

// TrapError reports an abnormal termination (illegal instruction,
// divide by zero, bad conversion) — the paper's "Core dump" class.
type TrapError struct{ Reason string }

func (e *TrapError) Error() string { return "machine: trap: " + e.Reason }

// HangError reports that execution exceeded the instruction budget —
// the paper's "Hang" class.
type HangError struct{ Limit uint64 }

func (e *HangError) Error() string {
	return fmt.Sprintf("machine: execution exceeded %d instructions", e.Limit)
}

// DetectError reports a SWIFT Check2 mismatch: the detection-only
// scheme signals the fault instead of recovering.
type DetectError struct{ Func string }

func (e *DetectError) Error() string {
	return "machine: fault detected by check in " + e.Func
}

// CancelError reports that the run was stopped from outside through
// Config.Cancel — a campaign cancellation or a per-run wall-clock
// deadline. It is not one of the paper's outcome classes; callers
// decide whether the run counts as a Hang (deadline) or is discarded
// (cancellation).
type CancelError struct{}

func (e *CancelError) Error() string { return "machine: run cancelled" }

// Counters aggregates execution statistics. The struct holds only
// value types, so two Counters compare with == (the golden-counters
// differential test relies on this) and copying a RunResult never
// shares state with the machine.
//
// Accounting invariant: every dynamic instruction is attributed to
// exactly one opcode row, including runtime-library work (charged
// against the runtime-hook opcode that triggered it), so
//
//	OpTotal() == Dyn   and   sum(RT-hook rows) == Runtime
//
// hold at all times — the per-opcode breakdown reconciles with Dyn
// without out-of-band knowledge.
type Counters struct {
	Dyn      uint64            // dynamic instructions, including runtime-library charges
	Region   uint64            // dynamic IR instructions inside the detected-loop region
	ByTag    [6]uint64         // per protection-role tag
	Runtime  uint64            // instructions charged by runtime hooks
	Internal uint64            // instructions executed inside internal (value-slice) functions
	ops      [ir.NumOps]uint64 // per-opcode dynamic counts, indexed by opcode
}

// OpCount returns the dynamic instruction count attributed to op.
func (c *Counters) OpCount(op ir.Op) uint64 {
	if int(op) >= ir.NumOps {
		return 0
	}
	return c.ops[op]
}

// OpTotal returns the sum of all per-opcode counts; it always equals
// Dyn.
func (c *Counters) OpTotal() uint64 {
	var sum uint64
	for _, n := range c.ops {
		sum += n
	}
	return sum
}

// OpsMap returns the non-zero per-opcode counts as a map, for callers
// that iterate the opcode breakdown (reports, tooling).
func (c *Counters) OpsMap() map[ir.Op]uint64 {
	out := make(map[ir.Op]uint64)
	for op, n := range c.ops {
		if n != 0 {
			out[ir.Op(op)] = n
		}
	}
	return out
}

// Config parameterizes a machine.
type Config struct {
	MemWords   int64 // memory size in words (default 1<<22)
	IssueWidth int   // superscalar width (default 4)
	MaxInstrs  uint64
	Hooks      Hooks
	// RegionFuncs marks function indexes whose execution counts
	// entirely as "inside the detected loops" for fault injection and
	// region accounting (value-slice callees, recompute slices).
	RegionFuncs map[int]bool
	// RegionBlocks marks individual blocks (per function index) as
	// detected-loop region — the candidate loops inside kernels whose
	// other code stays outside the region. Calls made from region
	// blocks execute in-region transitively.
	RegionBlocks map[int]map[int]bool
	// RegionOwner maps forced-region function indexes (RegionFuncs) to
	// the kernel function owning the loop they were outlined from, so
	// region traces attribute recompute-slice execution to the loop's
	// region rather than to the outlined helper.
	RegionOwner map[int]int
	// RegionTrace, when non-nil, records the owner/class layout of the
	// in-region dynamic instruction stream (reference backend only; see
	// regiontrace.go). Other backends ignore it.
	RegionTrace *RegionTrace
	Fault       *FaultPlan
	// Cancel, when non-nil, stops the run with a CancelError once the
	// channel closes. It is polled every cancelPollInterval dynamic
	// instructions (and once at Run entry), so cancellation latency is
	// bounded without a per-instruction select on the hot path.
	Cancel <-chan struct{}
	// TraceFn, when >= 0 with a non-nil CallTracer, reports every
	// completed call to that function index — the trainer uses it to
	// sample memo-function input/output pairs. Set TraceFn to -1 when
	// unused.
	TraceFn    int
	CallTracer func(args []uint64, ret uint64)
	// Code, when non-nil, supplies the pre-decoded form of the module
	// (CompileCode). Campaign-style callers that build one machine per
	// run pass a shared Code so the decode cost is paid once; when nil
	// (or built for a different module), New decodes on the spot.
	Code *Code
	// Backend selects the execution engine: the pre-decoded fast
	// interpreter (default), the compiled closure-threaded backend, or
	// the seed reference interpreter. All three are bit-identical in
	// counters, cycles, outputs and fault outcomes; they differ only
	// in speed. BackendAuto (the zero value) means BackendFast.
	Backend Backend
	// Reference selects the seed per-instruction interpreter instead
	// of the pre-decoded fast path. Semantics are identical — the
	// golden-counters differential test proves counters, outputs and
	// fault outcomes match bit for bit — so the only reason to set it
	// is that comparison itself (or benchmarking the speedup). It
	// predates Backend and overrides it when set.
	Reference bool
	// Trace, when non-nil, receives one line per executed instruction
	// (capped by TraceLimit, default 10000) — the compiler-debugging
	// view of a run.
	Trace      io.Writer
	TraceLimit uint64
	// Metrics, when non-nil, receives per-run execution counters
	// (instructions, cycles, region work, arena pool traffic). The
	// instruments are resolved once at New and fed once per Run, so
	// the per-instruction hot path is untouched; nil keeps the machine
	// metric-free at the cost of one pointer test per run.
	Metrics *obs.Metrics
}

// machineMetrics caches the instrument handles one machine feeds, so
// Run pays atomic adds instead of registry lookups.
type machineMetrics struct {
	runs      *obs.Counter
	instrs    *obs.Counter
	cycles    *obs.Counter
	region    *obs.Counter
	runtime   *obs.Counter
	runInstrs *obs.Histogram
}

func newMachineMetrics(m *obs.Metrics) *machineMetrics {
	if m == nil {
		return nil
	}
	return &machineMetrics{
		runs:    m.Counter("machine_runs_total", "kernel executions"),
		instrs:  m.Counter("machine_instrs_total", "dynamic instructions executed"),
		cycles:  m.Counter("machine_cycles_total", "simulated cycles"),
		region:  m.Counter("machine_region_instrs_total", "dynamic instructions inside detected-loop regions"),
		runtime: m.Counter("machine_runtime_charge_total", "instructions charged by runtime hooks"),
		runInstrs: m.Histogram("machine_run_instrs", "dynamic instructions per run",
			obs.ExpBuckets(1e3, 4, 12)),
	}
}

// DefaultMaxInstrs bounds runaway executions (corrupted branches).
const DefaultMaxInstrs = 4 << 30

// Machine executes one module instance.
type Machine struct {
	Mod *ir.Module
	Mem *Memory
	C   Counters
	cfg Config
	fr  []frame
	// loadOverride redirects loads of a single address during
	// re-computation of read-modify-write loops (the paper's
	// "temporary space" for loops like lud's a[j*size+i]).
	overrideActive bool
	overrideAddr   int64
	overrideVal    uint64

	fault        faultState
	regTags      map[int][]ir.InstrTag // per-function register-tag cache for fault attribution
	faultFrameFn int                   // function index of the currently executing frame
	traced       uint64                // trace lines emitted
	lastRet      uint64                // return value of the most recently returned frame
	cancelAt     uint64                // Dyn threshold for the next Cancel poll

	code    *Code    // pre-decoded module (shared, immutable)
	ccode   *ccode   // closure-threaded form (BackendCompiled only; shared, immutable)
	backend Backend  // resolved execution engine
	region  [][]bool // per-function per-block in-region flags (from cfg.RegionBlocks)
	hookOp  ir.Op    // runtime-hook opcode whose dispatch is in progress (Charge attribution)
	met     *machineMetrics

	// Compiled-backend state: lazy per-segment execution counts
	// (folded into C once per Run) and the conservative block-entry
	// trigger thresholds — see compiled.go.
	segHits       []uint64
	dynTrigger    uint64
	regionTrigger uint64

	// pl sits last: its fixed slot/ring arrays span several pages, and
	// keeping them past the scalar fields keeps every other hot field
	// of the struct within the first cache lines.
	pl pipeline
}

// cancelPollInterval bounds how many dynamic instructions execute
// between polls of Config.Cancel.
const cancelPollInterval = 1024

// cancelled polls Config.Cancel without blocking.
func (m *Machine) cancelled() bool {
	if m.cfg.Cancel == nil {
		return false
	}
	select {
	case <-m.cfg.Cancel:
		return true
	default:
		return false
	}
}

// inRegionNow reports whether the frame currently executes inside the
// detected-loop region: inherited from its call site, forced by its
// function, or positioned in a region block.
func (m *Machine) inRegionNow(f *frame) bool {
	if f.inRegion {
		return true
	}
	if rb := m.cfg.RegionBlocks[f.fi]; rb != nil && rb[f.block] {
		return true
	}
	return false
}

type frame struct {
	fn        *ir.Func
	fi        int
	regs      []uint64
	ready     []uint64
	block, ip int
	stackMark int64
	retDst    ir.Reg
	// nseg is the compiled backend's next-segment hint: -1 or exactly
	// the global segment starting at (block, ip) when this frame is on
	// top — see runBlockC. Other backends leave it at -1.
	nseg      int32
	inRegion  bool
	savedArgs []uint64 // captured for CallTracer when this is the traced fn
}

// New creates a machine for the module.
func New(mod *ir.Module, cfg Config) *Machine {
	if cfg.MemWords == 0 {
		cfg.MemWords = 1 << 22
	}
	if cfg.IssueWidth == 0 {
		cfg.IssueWidth = 4
	}
	if cfg.MaxInstrs == 0 {
		cfg.MaxInstrs = DefaultMaxInstrs
	}
	mem, pooled := newPooledMemory(cfg.MemWords)
	m := &Machine{
		Mod: mod,
		Mem: mem,
		cfg: cfg,
	}
	if cfg.Metrics != nil {
		m.met = newMachineMetrics(cfg.Metrics)
		if pooled {
			cfg.Metrics.Counter("machine_arena_pool_hits_total", "memory arenas recycled from the pool").Inc()
		} else {
			cfg.Metrics.Counter("machine_arena_pool_misses_total", "memory arenas freshly allocated").Inc()
		}
	}
	m.pl.init(cfg.IssueWidth)
	code := cfg.Code
	if code == nil || code.mod != mod {
		code = CompileCode(mod)
	}
	m.code = code
	m.backend = cfg.resolveBackend()
	if m.backend == BackendCompiled {
		m.ccode = code.compiledForm()
	}
	m.region = code.regionFlags(&m.cfg)
	m.hookOp = ir.OpRTObserve
	if cfg.Fault != nil {
		m.fault = faultState{plan: *cfg.Fault, armed: true}
	}
	if m.backend == BackendCompiled {
		m.segHits = make([]uint64, len(m.ccode.segs))
		m.recalcTriggers()
	}
	return m
}

// Reset restores the machine to its just-constructed state for
// another run of the same module, replacing the per-run configuration
// (fault plan, cancel channel, hooks, budget, tracing) with cfg while
// keeping every pooled allocation: the memory arena (watermark-
// cleared), the frame stack's register slabs, the shared decoded and
// compiled code, and the register-tag cache. Campaign workers reset
// one machine per replica instead of building one machine per run.
//
// The build-affecting fields — Code, Backend/Reference, IssueWidth,
// MemWords, RegionBlocks — must match the config the machine was
// created with; Reset does not re-derive the decoded code, region
// flags or backend. Callers that need a different module or backend
// create a new machine.
func (m *Machine) Reset(cfg Config) {
	if cfg.MemWords == 0 {
		cfg.MemWords = 1 << 22
	}
	if cfg.IssueWidth == 0 {
		cfg.IssueWidth = 4
	}
	if cfg.MaxInstrs == 0 {
		cfg.MaxInstrs = DefaultMaxInstrs
	}
	m.cfg = cfg
	m.C = Counters{}
	m.pl.init(cfg.IssueWidth)
	m.fr = m.fr[:0]
	m.Mem.reset()
	m.overrideActive = false
	m.overrideAddr = 0
	m.overrideVal = 0
	m.fault = faultState{}
	if cfg.Fault != nil {
		m.fault = faultState{plan: *cfg.Fault, armed: true}
	}
	m.faultFrameFn = 0
	m.traced = 0
	m.lastRet = 0
	m.cancelAt = 0
	m.hookOp = ir.OpRTObserve
	if m.backend == BackendCompiled {
		// Run folds-and-clears segHits on every exit, so the counts are
		// already zero unless the previous run died in a contained panic
		// — clear defensively so a reused machine never inherits them.
		clear(m.segHits)
		m.recalcTriggers()
	}
}

// Release returns the machine's pooled resources (its memory arena)
// for reuse by a future New. The machine and its Mem must not be used
// afterwards. Calling Release is optional — an unreleased machine is
// simply collected — but campaign-style callers that build one machine
// per run save a full arena allocation and clear per run.
func (m *Machine) Release() {
	mem := m.Mem
	m.Mem = nil
	releaseMemory(mem)
}

// RunResult reports one execution.
type RunResult struct {
	Ret     uint64
	Instrs  uint64
	Cycles  uint64
	Region  uint64
	Counter Counters
}

// IPC returns instructions per cycle.
func (r RunResult) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instrs) / float64(r.Cycles)
}

// Run executes function fnIdx with raw-bits arguments until it
// returns. Errors are SegfaultError, TrapError, HangError or
// DetectError; callers classify them into the paper's outcome classes.
func (m *Machine) Run(fnIdx int, args []uint64) (RunResult, error) {
	if m.cancelled() {
		return RunResult{}, &CancelError{}
	}
	if err := m.pushFrame(fnIdx, args, ir.NoReg); err != nil {
		return RunResult{}, err
	}
	err := m.runToDepth(0)
	if m.segHits != nil {
		m.foldSegCounters()
	}
	res := RunResult{
		Ret:     m.lastRet,
		Instrs:  m.C.Dyn,
		Cycles:  m.pl.total(),
		Region:  m.C.Region,
		Counter: m.C,
	}
	if mm := m.met; mm != nil {
		mm.runs.Inc()
		mm.instrs.Add(res.Instrs)
		mm.cycles.Add(res.Cycles)
		mm.region.Add(res.Region)
		mm.runtime.Add(m.C.Runtime)
		mm.runInstrs.Observe(float64(res.Instrs))
	}
	return res, err
}

func (m *Machine) pushFrame(fnIdx int, args []uint64, retDst ir.Reg) error {
	fn := m.Mod.Funcs[fnIdx]
	if len(args) != len(fn.Params) {
		return fmt.Errorf("machine: calling %s with %d args, want %d",
			fn.Name, len(args), len(fn.Params))
	}
	// Frames are pooled across calls: popFrame only shrinks len(m.fr),
	// leaving the slot's register arrays in the backing array, so a
	// push at the same depth reuses them (cleared — a fresh frame must
	// observe zeroed registers) instead of allocating. Invoke-heavy
	// runs — every suspected iteration calls an outlined recompute
	// slice — would otherwise allocate two slices per call.
	var f *frame
	if cap(m.fr) > len(m.fr) {
		m.fr = m.fr[:len(m.fr)+1]
		f = &m.fr[len(m.fr)-1]
	} else {
		m.fr = append(m.fr, frame{})
		f = &m.fr[len(m.fr)-1]
	}
	nr := fn.NumRegs
	if cap(f.regs) >= nr && cap(f.ready) >= nr {
		f.regs = f.regs[:nr]
		f.ready = f.ready[:nr]
		for i := range f.regs {
			f.regs[i] = 0
			f.ready[i] = 0
		}
	} else {
		// One struct-of-arrays slab per frame: the register values and
		// their ready cycles sit adjacent, so the value/ready pair an
		// instruction touches shares cache lines across the whole file.
		s := make([]uint64, 2*nr)
		f.regs = s[:nr:nr]
		f.ready = s[nr:]
	}
	f.fn = fn
	f.fi = fnIdx
	f.block = 0
	f.ip = 0
	f.nseg = -1
	if m.ccode != nil {
		f.nseg = m.ccode.entrySeg[fnIdx]
	}
	f.stackMark = m.Mem.StackMark()
	f.retDst = retDst
	f.savedArgs = nil
	copy(f.regs, args)
	if m.cfg.CallTracer != nil && fnIdx == m.cfg.TraceFn {
		f.savedArgs = append([]uint64(nil), args...)
	}
	// Parameters become ready when the call issues; approximate with
	// the current cycle.
	now := m.pl.now()
	for i := range args {
		f.ready[i] = now
	}
	f.inRegion = m.cfg.RegionFuncs[fnIdx]
	if !f.inRegion && len(m.fr) > 1 {
		f.inRegion = m.inRegionNow(&m.fr[len(m.fr)-2])
	}
	return nil
}

func (m *Machine) popFrame() {
	f := &m.fr[len(m.fr)-1]
	m.Mem.popStackTo(f.stackMark)
	m.fr = m.fr[:len(m.fr)-1]
}

// runToDepth steps until the frame stack shrinks to the given depth,
// using whichever execution engine the config selected.
func (m *Machine) runToDepth(depth int) error {
	switch m.backend {
	case BackendReference:
		for len(m.fr) > depth {
			if err := m.step(); err != nil {
				// Unwind so nested invocations leave a consistent stack.
				for len(m.fr) > depth {
					m.popFrame()
				}
				return err
			}
		}
		return nil
	case BackendCompiled:
		return m.runCompiled(depth)
	}
	return m.runFast(depth)
}

// Charge accounts runtime-library work against the instruction and
// cycle counters. Hooks call it for every predictor operation so the
// cost of prediction is fully visible in Fig. 7b/7c. The charge is
// attributed to the runtime-hook opcode whose dispatch is in progress,
// so the per-opcode histogram reconciles with Dyn (the RT-hook
// instructions themselves carry zero μops — see uops — and runtime
// work was previously invisible in the opcode breakdown).
func (m *Machine) Charge(c Cost) {
	n := c.Instrs()
	m.C.Dyn += n
	m.C.Runtime += n
	m.C.ops[m.hookOp] += n
	m.C.ByTag[ir.TagRuntime] += n
	now := m.pl.now()
	for i := 0; i < c.IntOps; i++ {
		m.pl.issue(now, 1)
	}
	for i := 0; i < c.Branches; i++ {
		m.pl.issue(now, 1)
	}
	for i := 0; i < c.MemOps; i++ {
		m.pl.issue(now, 3)
	}
	for i := 0; i < c.FpOps; i++ {
		m.pl.issue(now, 3)
	}
}

// CallRecompute re-executes a PP loop's outlined value slice for one
// iteration: the paper's "further investigation" after a suspected
// fault (and the recovery path's re-computation). When useOverride is
// set, loads of overrideAddr observe overrideVal — the buffered
// pre-store value of read-modify-write loops.
func (m *Machine) CallRecompute(loop *ir.LoopInfo, iter int64, invariants []uint64,
	useOverride bool, overrideAddr int64, overrideVal uint64) (uint64, error) {

	args := make([]uint64, 0, 1+len(invariants))
	args = append(args, uint64(iter))
	args = append(args, invariants...)
	savedActive, savedAddr, savedVal := m.overrideActive, m.overrideAddr, m.overrideVal
	if useOverride {
		m.overrideActive, m.overrideAddr, m.overrideVal = true, overrideAddr, overrideVal
	}
	depth := len(m.fr)
	if err := m.pushFrame(loop.RecomputeFn, args, ir.NoReg); err != nil {
		return 0, err
	}
	err := m.runToDepth(depth)
	m.overrideActive, m.overrideAddr, m.overrideVal = savedActive, savedAddr, savedVal
	if err != nil {
		return 0, err
	}
	return m.lastRet, nil
}
