package machine

import (
	"testing"

	"rskip/internal/ir"
)

func TestParseBackend(t *testing.T) {
	cases := []struct {
		in   string
		want Backend
		ok   bool
	}{
		{"", BackendAuto, true},
		{"auto", BackendAuto, true},
		{"fast", BackendFast, true},
		{"compiled", BackendCompiled, true},
		{"reference", BackendReference, true},
		{"native", BackendAuto, false},
		{"Fast", BackendAuto, false},
	}
	for _, c := range cases {
		got, err := ParseBackend(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseBackend(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseBackend(%q) = %v, want %v", c.in, got, c.want)
		}
		if c.ok && got.String() != c.in && c.in != "" {
			t.Errorf("round trip: %v.String() = %q, want %q", got, got.String(), c.in)
		}
	}
}

// TestFlipBitBit31Wrap pins the multi-bit adjacency wrap: a width-2
// upset at bit 31 strikes architectural bits {31, 0}, never bit 32 of
// the host word.
func TestFlipBitBit31Wrap(t *testing.T) {
	f := &frame{
		fn:   &ir.Func{NumRegs: 1, RegType: []ir.Type{ir.Int}},
		regs: []uint64{0},
	}
	m := &Machine{fault: faultState{plan: FaultPlan{
		Kind: FaultMultiBit, Bit: 31, Width: 2,
	}}}
	m.flipBit(f, 0)
	if want := uint64(1<<31 | 1<<0); f.regs[0] != want {
		t.Errorf("int width-2 at bit 31: got %#x, want %#x (wrap to bit 0)", f.regs[0], want)
	}

	// Float registers apply the same wrap before the FP32→FP64 bit
	// mapping: bit 31 → sign (63), wrapped bit 0 → mantissa (29).
	f.fn.RegType[0] = ir.Float
	f.regs[0] = f2b(1.5)
	m.flipBit(f, 0)
	if want := f2b(1.5) ^ (1<<63 | 1<<29); f.regs[0] != want {
		t.Errorf("float width-2 at bit 31: got %#x, want %#x", f.regs[0], want)
	}

	// Width clamps to the 32-bit architectural register: an absurd
	// width flips exactly the low 32 bits, once each.
	f.fn.RegType[0] = ir.Int
	f.regs[0] = 0
	m.fault.plan.Width = 40
	m.flipBit(f, 0)
	if want := uint64(0xFFFFFFFF); f.regs[0] != want {
		t.Errorf("clamped width: got %#x, want %#x", f.regs[0], want)
	}
}

// runFaultOn is runWithFault with an explicit execution backend.
func runFaultOn(t *testing.T, mod *ir.Module, fi int, plan *FaultPlan, be Backend) (RunResult, []int64, error) {
	t.Helper()
	region := map[int]bool{}
	for bi := range mod.Funcs[fi].Blocks {
		region[bi] = true
	}
	m := New(mod, Config{
		RegionBlocks: map[int]map[int]bool{fi: region},
		Fault:        plan,
		MaxInstrs:    1 << 22,
		TraceFn:      -1,
		Backend:      be,
	})
	n := int64(16)
	a := m.Mem.Alloc(n + 4)
	for i := int64(0); i < n+4; i++ {
		m.Mem.SetInt(a+i, 100+i)
	}
	out := m.Mem.Alloc(n)
	res, err := m.Run(fi, []uint64{uint64(a), uint64(out), uint64(n)})
	var vals []int64
	if err == nil {
		vals = m.Mem.ReadInts(out, int(n))
	}
	return res, vals, err
}

var allBackends = []Backend{BackendFast, BackendCompiled, BackendReference}

// TestMultiBitWrapBackendsAgree injects width-2 upsets at bit 31 (the
// wrap case) across a sweep of targets and demands bit-identical
// outcomes from all three execution backends.
func TestMultiBitWrapBackendsAgree(t *testing.T) {
	mod, fi := faultHarness(t)
	for target := uint64(0); target < 48; target += 5 {
		plan := &FaultPlan{Kind: FaultMultiBit, Target: target, Bit: 31, Width: 2}
		ref, refVals, refErr := runFaultOn(t, mod, fi, plan, BackendReference)
		for _, be := range []Backend{BackendFast, BackendCompiled} {
			res, vals, err := runFaultOn(t, mod, fi, plan, be)
			if (err == nil) != (refErr == nil) ||
				(err != nil && err.Error() != refErr.Error()) {
				t.Fatalf("target %d backend %v: err %v, reference err %v", target, be, err, refErr)
			}
			if res != ref {
				t.Fatalf("target %d backend %v: result %+v, reference %+v", target, be, res, ref)
			}
			for i := range refVals {
				if vals[i] != refVals[i] {
					t.Fatalf("target %d backend %v: out[%d] = %d, reference %d",
						target, be, i, vals[i], refVals[i])
				}
			}
		}
	}
}

// TestSkipFinalTerminatorWrapsToBlockZero pins the semantics of
// skipping the terminator of a function's final block: control falls
// through to (block+1) mod len(blocks) — block 0 — so the body runs a
// second time and the Ret executes on the second pass. All three
// backends must implement the wrap identically.
func TestSkipFinalTerminatorWrapsToBlockZero(t *testing.T) {
	b := ir.NewBuilder("k", nil, ir.Int)
	c := b.ConstInt(42)
	body := b.NewBlock("body")
	b.Br(body)
	b.SetBlock(body)
	b.Ret(c)
	mod := &ir.Module{Name: "t", Funcs: []*ir.Func{b.F}}
	if err := ir.Verify(mod); err != nil {
		t.Fatal(err)
	}

	region := map[int]bool{0: true, 1: true}
	run := func(plan *FaultPlan, be Backend) (RunResult, bool, error) {
		m := New(mod, Config{
			RegionBlocks: map[int]map[int]bool{0: region},
			Fault:        plan,
			MaxInstrs:    1 << 16,
			TraceFn:      -1,
			Backend:      be,
		})
		res, err := m.Run(0, nil)
		return res, m.FaultFired(), err
	}

	clean, _, err := run(nil, BackendFast)
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic region order: ConstInt(0), Br(1), Ret(2). Skip the Ret.
	plan := &FaultPlan{Kind: FaultSkip, Target: 2}
	ref, refFired, refErr := run(plan, BackendReference)
	if refErr != nil {
		t.Fatalf("reference: %v", refErr)
	}
	if !refFired {
		t.Fatal("fault did not fire on the final terminator")
	}
	if ref.Ret != 42 {
		t.Fatalf("ret after wrap = %d, want 42 (Ret executes on second pass)", ref.Ret)
	}
	// The wrap re-executes the whole two-block body exactly once: the
	// skipped Ret is still charged, so the dynamic count doubles.
	if ref.Instrs != 2*clean.Instrs {
		t.Fatalf("instrs after wrap = %d, want %d (clean %d doubled)",
			ref.Instrs, 2*clean.Instrs, clean.Instrs)
	}
	for _, be := range []Backend{BackendFast, BackendCompiled} {
		res, fired, err := run(plan, be)
		if err != nil {
			t.Fatalf("backend %v: %v", be, err)
		}
		if !fired {
			t.Fatalf("backend %v: fault did not fire", be)
		}
		if res != ref {
			t.Fatalf("backend %v: result %+v, reference %+v", be, res, ref)
		}
	}
}

// TestBackendsAgreeCleanRun is the cheap always-on slice of the
// golden three-way sweep: one clean kernel run per backend must agree
// exactly (the full fault-probe sweep lives in internal/bench and is
// skipped under -short).
func TestBackendsAgreeCleanRun(t *testing.T) {
	mod, fi := faultHarness(t)
	ref, refVals, refErr := runFaultOn(t, mod, fi, nil, BackendReference)
	if refErr != nil {
		t.Fatal(refErr)
	}
	for _, be := range []Backend{BackendFast, BackendCompiled} {
		res, vals, err := runFaultOn(t, mod, fi, nil, be)
		if err != nil {
			t.Fatalf("backend %v: %v", be, err)
		}
		if res != ref {
			t.Fatalf("backend %v: result %+v, reference %+v", be, res, ref)
		}
		for i := range refVals {
			if vals[i] != refVals[i] {
				t.Fatalf("backend %v: out[%d] = %d, reference %d", be, i, vals[i], refVals[i])
			}
		}
	}
}
