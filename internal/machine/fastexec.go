package machine

import (
	"math"

	"rskip/internal/ir"
)

// The fast interpreter executes pre-decoded code (Config.Code /
// CompileCode) a basic block at a time. Per-instruction work is the
// accounting (array counters instead of the seed's map writes, a
// precomputed in-region flag instead of a map probe) plus the exec
// switch; the hang, cancel and fault-injection checks the seed paid on
// every dynamic instruction are hoisted to block boundaries and only
// fall back to exact per-instruction "careful" stepping for the rare
// block where one of them could actually trigger:
//
//   - HangError: a block runs check-free only when the remaining
//     instruction budget covers the whole block's μops, so the error
//     still fires at the identical dynamic-instruction count.
//   - Fault injection: a block runs check-free only when the armed
//     fault's region-instruction target provably lies beyond the
//     block's end.
//   - Cancellation: polled at block boundaries once the poll
//     threshold passes (cancellation latency stays bounded; its exact
//     instruction is not part of the deterministic contract).
//
// Config.Reference selects the seed interpreter (step in exec.go)
// instead; the golden-counters differential test proves both produce
// bit-identical counters, outputs and fault outcomes.

// runFast steps pre-decoded blocks until the frame stack shrinks to
// the given depth.
func (m *Machine) runFast(depth int) error {
	for len(m.fr) > depth {
		if err := m.runBlock(); err != nil {
			for len(m.fr) > depth {
				m.popFrame()
			}
			return err
		}
	}
	return nil
}

// runBlock executes the top frame from its current position to the end
// of its basic block (or to a call, runtime hook, or error — anything
// that can switch frames or reallocate the frame stack).
func (m *Machine) runBlock() error {
	f := &m.fr[len(m.fr)-1]
	blk := &m.code.fns[f.fi].blocks[f.block]
	inRegion := f.inRegion
	if !inRegion && m.region != nil {
		if fb := m.region[f.fi]; fb != nil {
			inRegion = fb[f.block]
		}
	}

	// Block-boundary checks: decide whether any per-instruction check
	// could trigger inside this block.
	if m.cfg.Cancel != nil && m.C.Dyn >= m.cancelAt {
		m.cancelAt = m.C.Dyn + cancelPollInterval
		if m.cancelled() {
			return &CancelError{}
		}
	}
	careful := m.cfg.Trace != nil ||
		m.C.Dyn+blk.uops > m.cfg.MaxInstrs ||
		// An in-flight multi-skip burst suppresses every instruction
		// until it drains, so the whole block must step exactly.
		m.fault.skipsLeft > 0
	if !careful && m.fault.armed && !m.fault.fired && inRegion &&
		m.C.Region+uint64(len(blk.ins)-f.ip) > m.fault.plan.Target {
		// The armed fault's target falls inside this block: take the
		// exact path so it fires on the precise region instruction.
		careful = true
	}
	if careful {
		return m.stepCareful(f, blk, inRegion)
	}
	return m.runPlain(f, blk, inRegion)
}

// runPlain executes from f.ip to the block's next break instruction
// with per-instruction accounting but no per-instruction checks (the
// caller's block-boundary checks proved none can trigger). It is also
// the compiled backend's mid-segment entry path: resuming inside a
// segment after careful stepping charges the remaining instructions
// one at a time, which lands on the identical counter totals.
func (m *Machine) runPlain(f *frame, blk *dblock, inRegion bool) error {
	regionInc := uint64(0)
	if inRegion {
		regionInc = 1
	}
	internal := f.fn.Internal
	ins := blk.ins
	for {
		d := &ins[f.ip]
		f.ip++
		n := uint64(d.n)
		m.C.Dyn += n
		m.C.ops[d.op] += n
		m.C.ByTag[d.tag] += n
		m.C.Region += regionInc
		if internal {
			m.C.Internal += n
		}
		if err := m.execD(f, d); err != nil {
			return err
		}
		if d.brk {
			// Terminator, call or runtime hook: the current block ended
			// or m.fr may have changed (calls and hook recomputation
			// push frames, possibly reallocating the frame stack), so
			// the cached pointers are no longer trustworthy.
			return nil
		}
	}
}

// stepCareful executes one instruction with the seed interpreter's
// exact per-instruction semantics (hang check, cancel poll, trace,
// fault decision) over the pre-decoded stream. The caller re-enters
// runBlock afterwards, so a run leaves careful mode as soon as the
// block-boundary conditions clear again.
func (m *Machine) stepCareful(f *frame, blk *dblock, inRegion bool) error {
	d := &blk.ins[f.ip]
	f.ip++

	n := uint64(d.n)
	m.C.Dyn += n
	m.C.ops[d.op] += n
	m.C.ByTag[d.tag] += n
	if inRegion {
		m.C.Region++
	}
	m.faultFrameFn = f.fi
	if f.fn.Internal {
		m.C.Internal += n
	}
	if m.C.Dyn > m.cfg.MaxInstrs {
		return &HangError{Limit: m.cfg.MaxInstrs}
	}
	if m.cfg.Cancel != nil && m.C.Dyn >= m.cancelAt {
		m.cancelAt = m.C.Dyn + cancelPollInterval
		if m.cancelled() {
			return &CancelError{}
		}
	}
	if m.cfg.Trace != nil {
		m.traceStep(f, d.src)
	}

	switch m.decideFault(inRegion, d.src) {
	case faultRegFile:
		// A function with no registers gives the strike nowhere to
		// land: the fault is recorded as fired but masked (equivalent
		// to hitting a dead register), instead of the seed's
		// divide-by-zero panic.
		if f.fn.NumRegs > 0 {
			hit := ir.Reg(m.fault.plan.Pick % f.fn.NumRegs)
			m.fault.firedTag = m.regTagOf(f.fi, hit)
			m.flipBit(f, hit)
		}
		return m.execD(f, d)
	case faultPre:
		if d.nargs > 0 {
			m.flipBit(f, d.src.Args[m.fault.plan.Pick%int(d.nargs)])
		}
		return m.execD(f, d)
	case faultPost:
		dst := d.dst
		if err := m.execD(f, d); err != nil {
			return err
		}
		// As in the seed: f.regs still aliases the same backing array
		// even if the frame was popped or m.fr reallocated.
		m.flipBit(f, dst)
		return nil
	case faultSkip:
		m.pl.issue(readyD(f, d), 1)
		if d.op.IsTerminator() {
			f.block = (f.block + 1) % len(f.fn.Blocks)
			f.ip = 0
		}
		return nil
	case faultGarbage:
		if d.dst != ir.NoReg {
			f.regs[d.dst] = m.garbage(f.regs[d.dst])
			f.ready[d.dst] = m.pl.issue(readyD(f, d), 1)
		}
		return nil
	case faultTrap:
		return &TrapError{Reason: "illegal instruction encoding (injected opcode fault)"}
	}
	return m.execD(f, d)
}

// readyD returns the cycle all source operands are ready.
func readyD(f *frame, d *dinstr) uint64 {
	switch d.nargs {
	case 0:
		return 0
	case 1:
		return f.ready[d.a0]
	case 2:
		r := f.ready[d.a0]
		if b := f.ready[d.a1]; b > r {
			r = b
		}
		return r
	case 3:
		r := f.ready[d.a0]
		if b := f.ready[d.a1]; b > r {
			r = b
		}
		if c := f.ready[d.a2]; c > r {
			r = c
		}
		return r
	}
	var r uint64
	for _, a := range d.src.Args {
		if f.ready[a] > r {
			r = f.ready[a]
		}
	}
	return r
}

// execD performs one pre-decoded operation: the fast-path twin of exec
// in exec.go, with operands, latency and branch targets read from the
// decoded form instead of re-derived per retire. Timing-model calls
// are issued in the identical order, so cycles stay bit-identical to
// the reference interpreter.
func (m *Machine) execD(f *frame, d *dinstr) error {
	done := m.pl.issue(readyD(f, d), uint64(d.lat))

	switch d.op {
	case ir.OpConstInt:
		if d.dst != ir.NoReg {
			f.regs[d.dst] = uint64(d.imm)
			f.ready[d.dst] = done
		}
	case ir.OpConstFloat:
		if d.dst != ir.NoReg {
			f.regs[d.dst] = f2b(d.fimm)
			f.ready[d.dst] = done
		}
	case ir.OpMov:
		if d.dst != ir.NoReg {
			f.regs[d.dst] = f.regs[d.a0]
			f.ready[d.dst] = done
		}

	case ir.OpAdd:
		setD(f, d, uint64(int64(f.regs[d.a0])+int64(f.regs[d.a1])), done)
	case ir.OpSub:
		setD(f, d, uint64(int64(f.regs[d.a0])-int64(f.regs[d.a1])), done)
	case ir.OpMul:
		setD(f, d, uint64(int64(f.regs[d.a0])*int64(f.regs[d.a1])), done)
	case ir.OpDiv:
		dv := int64(f.regs[d.a1])
		if dv == 0 {
			return &TrapError{Reason: "integer divide by zero"}
		}
		setD(f, d, uint64(int64(f.regs[d.a0])/dv), done)
	case ir.OpRem:
		dv := int64(f.regs[d.a1])
		if dv == 0 {
			return &TrapError{Reason: "integer remainder by zero"}
		}
		setD(f, d, uint64(int64(f.regs[d.a0])%dv), done)
	case ir.OpAnd:
		setD(f, d, f.regs[d.a0]&f.regs[d.a1], done)
	case ir.OpOr:
		setD(f, d, f.regs[d.a0]|f.regs[d.a1], done)
	case ir.OpXor:
		setD(f, d, f.regs[d.a0]^f.regs[d.a1], done)
	case ir.OpShl:
		setD(f, d, f.regs[d.a0]<<(f.regs[d.a1]&63), done)
	case ir.OpShr:
		setD(f, d, f.regs[d.a0]>>(f.regs[d.a1]&63), done)
	case ir.OpNeg:
		setD(f, d, uint64(-int64(f.regs[d.a0])), done)

	case ir.OpFAdd:
		setD(f, d, f2b(b2f(f.regs[d.a0])+b2f(f.regs[d.a1])), done)
	case ir.OpFSub:
		setD(f, d, f2b(b2f(f.regs[d.a0])-b2f(f.regs[d.a1])), done)
	case ir.OpFMul:
		setD(f, d, f2b(b2f(f.regs[d.a0])*b2f(f.regs[d.a1])), done)
	case ir.OpFDiv:
		setD(f, d, f2b(b2f(f.regs[d.a0])/b2f(f.regs[d.a1])), done)
	case ir.OpFNeg:
		setD(f, d, f2b(-b2f(f.regs[d.a0])), done)

	case ir.OpEq:
		setD(f, d, boolBits(int64(f.regs[d.a0]) == int64(f.regs[d.a1])), done)
	case ir.OpNe:
		setD(f, d, boolBits(int64(f.regs[d.a0]) != int64(f.regs[d.a1])), done)
	case ir.OpLt:
		setD(f, d, boolBits(int64(f.regs[d.a0]) < int64(f.regs[d.a1])), done)
	case ir.OpLe:
		setD(f, d, boolBits(int64(f.regs[d.a0]) <= int64(f.regs[d.a1])), done)
	case ir.OpGt:
		setD(f, d, boolBits(int64(f.regs[d.a0]) > int64(f.regs[d.a1])), done)
	case ir.OpGe:
		setD(f, d, boolBits(int64(f.regs[d.a0]) >= int64(f.regs[d.a1])), done)
	case ir.OpFEq:
		setD(f, d, boolBits(b2f(f.regs[d.a0]) == b2f(f.regs[d.a1])), done)
	case ir.OpFNe:
		setD(f, d, boolBits(b2f(f.regs[d.a0]) != b2f(f.regs[d.a1])), done)
	case ir.OpFLt:
		setD(f, d, boolBits(b2f(f.regs[d.a0]) < b2f(f.regs[d.a1])), done)
	case ir.OpFLe:
		setD(f, d, boolBits(b2f(f.regs[d.a0]) <= b2f(f.regs[d.a1])), done)
	case ir.OpFGt:
		setD(f, d, boolBits(b2f(f.regs[d.a0]) > b2f(f.regs[d.a1])), done)
	case ir.OpFGe:
		setD(f, d, boolBits(b2f(f.regs[d.a0]) >= b2f(f.regs[d.a1])), done)

	case ir.OpIToF:
		setD(f, d, f2b(float64(int64(f.regs[d.a0]))), done)
	case ir.OpFToI:
		v := b2f(f.regs[d.a0])
		if math.IsNaN(v) || v > math.MaxInt64 || v < math.MinInt64 {
			return &TrapError{Reason: "float to int conversion out of range"}
		}
		setD(f, d, uint64(int64(v)), done)

	case ir.OpLoad:
		addr := int64(f.regs[d.a0])
		var w uint64
		if m.overrideActive && addr == m.overrideAddr {
			w = m.overrideVal
		} else {
			var err error
			w, err = m.Mem.LoadWord(addr)
			if err != nil {
				return err
			}
		}
		setD(f, d, w, done)
	case ir.OpStore:
		if err := m.Mem.StoreWord(int64(f.regs[d.a0]), f.regs[d.a1]); err != nil {
			return err
		}
	case ir.OpAlloca:
		base, err := m.Mem.pushStack(d.imm)
		if err != nil {
			return err
		}
		setD(f, d, uint64(base), done)

	case ir.OpSqrt:
		setD(f, d, f2b(math.Sqrt(b2f(f.regs[d.a0]))), done)
	case ir.OpExp:
		setD(f, d, f2b(math.Exp(b2f(f.regs[d.a0]))), done)
	case ir.OpLog:
		setD(f, d, f2b(math.Log(b2f(f.regs[d.a0]))), done)
	case ir.OpFAbs:
		setD(f, d, f2b(math.Abs(b2f(f.regs[d.a0]))), done)
	case ir.OpPow:
		setD(f, d, f2b(math.Pow(b2f(f.regs[d.a0]), b2f(f.regs[d.a1]))), done)
	case ir.OpFloor:
		setD(f, d, f2b(math.Floor(b2f(f.regs[d.a0]))), done)
	case ir.OpFMin:
		setD(f, d, f2b(math.Min(b2f(f.regs[d.a0]), b2f(f.regs[d.a1]))), done)
	case ir.OpFMax:
		setD(f, d, f2b(math.Max(b2f(f.regs[d.a0]), b2f(f.regs[d.a1]))), done)

	case ir.OpBr:
		f.block = int(d.b0)
		f.ip = 0
	case ir.OpCondBr:
		if f.regs[d.a0] != 0 {
			f.block = int(d.b0)
		} else {
			f.block = int(d.b1)
		}
		f.ip = 0
	case ir.OpRet:
		var ret uint64
		if d.nargs == 1 {
			ret = f.regs[d.a0]
		}
		retDst := f.retDst
		if f.savedArgs != nil {
			m.cfg.CallTracer(f.savedArgs, ret)
		}
		m.popFrame()
		m.lastRet = ret
		if retDst != ir.NoReg && len(m.fr) > 0 {
			caller := &m.fr[len(m.fr)-1]
			caller.regs[retDst] = ret
			caller.ready[retDst] = done
		}

	case ir.OpCall:
		srcArgs := d.src.Args
		args := make([]uint64, len(srcArgs))
		for i, a := range srcArgs {
			args[i] = f.regs[a]
		}
		return m.pushFrame(int(d.callee), args, d.dst)

	case ir.OpCheck2:
		if f.regs[d.a0] != f.regs[d.a1] {
			return &DetectError{Func: f.fn.Name}
		}
	case ir.OpVote3:
		a, b, c := f.regs[d.a0], f.regs[d.a1], f.regs[d.a2]
		maj := a
		switch {
		case a == b || a == c:
			maj = a
		case b == c:
			maj = b
		}
		setD(f, d, maj, done)

	case ir.OpRTLoopEnter:
		if m.cfg.Hooks != nil {
			srcArgs := d.src.Args
			inv := make([]uint64, len(srcArgs))
			for i, a := range srcArgs {
				inv[i] = f.regs[a]
			}
			m.hookOp = d.op
			return m.cfg.Hooks.LoopEnter(m, int(d.imm), inv)
		}
	case ir.OpRTObserve:
		if m.cfg.Hooks != nil {
			m.hookOp = d.op
			return m.cfg.Hooks.Observe(m, int(d.imm),
				int64(f.regs[d.a0]), f.regs[d.a1], int64(f.regs[d.a2]))
		}
	case ir.OpRTLoopExit:
		if m.cfg.Hooks != nil {
			m.hookOp = d.op
			return m.cfg.Hooks.LoopExit(m, int(d.imm))
		}

	default:
		return &TrapError{Reason: "illegal instruction " + d.op.String()}
	}
	return nil
}

// setD writes a destination register and its ready cycle.
func setD(f *frame, d *dinstr, bits uint64, done uint64) {
	if d.dst != ir.NoReg {
		f.regs[d.dst] = bits
		f.ready[d.dst] = done
	}
}
