package machine

import (
	"testing"

	"rskip/internal/lower"
)

const fpSrc = `
void kernel(int a[], int out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		out[i] = a[i] * 3;
	}
}
`

// Fingerprint must hash decoded content, not identity: re-decoding
// the same module (distinct dinstr arrays, distinct src pointers)
// yields the same fingerprint, and any content change yields a
// different one.
func TestFingerprintIsContentAddressed(t *testing.T) {
	mod, err := lower.Compile("fp", fpSrc)
	if err != nil {
		t.Fatal(err)
	}
	c1 := CompileCode(mod)
	c2 := CompileCode(mod)
	if c1 == c2 {
		t.Fatal("CompileCode returned a shared value; test needs distinct decodes")
	}
	if c1.Fingerprint() != c2.Fingerprint() {
		t.Error("two decodes of one module fingerprint differently")
	}
	clone := mod.Clone()
	if CompileCode(clone).Fingerprint() != c1.Fingerprint() {
		t.Error("a clone's decode fingerprints differently")
	}

	clone.Funcs[0].Blocks[0].Instrs[0].Imm++
	if CompileCode(clone).Fingerprint() == c1.Fingerprint() {
		t.Error("changed immediate did not change the fingerprint")
	}
}
