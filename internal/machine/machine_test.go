package machine

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"rskip/internal/ir"
	"rskip/internal/lower"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	mod, err := lower.Compile("test", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return mod
}

func TestMemorySegments(t *testing.T) {
	m := NewMemory(1 << 12)
	a := m.Alloc(16)
	b := m.Alloc(16)
	if a == b {
		t.Fatal("allocations overlap")
	}
	m.SetInt(a, 42)
	if m.GetInt(a) != 42 {
		t.Error("round trip failed")
	}
	m.SetFloat(b, 3.5)
	if m.GetFloat(b) != 3.5 {
		t.Error("float round trip failed")
	}
	// Negative and beyond-mapped addresses fault.
	if _, err := m.LoadWord(-1); err == nil {
		t.Error("negative load should fault")
	}
	if err := m.StoreWord(MappedLimit, 1); err == nil {
		t.Error("store past MappedLimit should fault")
	}
	var se *SegfaultError
	_, err := m.LoadWord(MappedLimit + 5)
	if !errors.As(err, &se) {
		t.Errorf("want SegfaultError, got %v", err)
	}
}

func TestMemorySparsePages(t *testing.T) {
	m := NewMemory(1 << 10)
	wild := int64(1<<20 + 37) // beyond dense arena, below MappedLimit
	w, err := m.LoadWord(wild)
	if err != nil || w != 0 {
		t.Fatalf("wilderness read = %d, %v; want 0, nil", w, err)
	}
	if err := m.StoreWord(wild, 99); err != nil {
		t.Fatalf("wilderness store: %v", err)
	}
	if w, _ := m.LoadWord(wild); w != 99 {
		t.Errorf("wilderness readback = %d, want 99", w)
	}
	// A neighboring page stays zero.
	if w, _ := m.LoadWord(wild + pageSize); w != 0 {
		t.Errorf("neighbor page = %d, want 0", w)
	}
}

func TestStackAllocaDiscipline(t *testing.T) {
	mod := compile(t, `
int leaf(int x) {
	int t[8];
	t[0] = x * 2;
	return t[0];
}
int f(int x) {
	int t[8];
	t[0] = x;
	int r = leaf(x);
	return t[0] + r;
}`)
	m := New(mod, Config{TraceFn: -1})
	res, err := m.Run(mod.FuncByName("f"), []uint64{7})
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.Ret) != 7+14 {
		t.Errorf("got %d, want 21", int64(res.Ret))
	}
	if m.Mem.StackMark() != int64(1<<22) {
		t.Errorf("stack not fully popped: %d", m.Mem.StackMark())
	}
}

func TestTraps(t *testing.T) {
	cases := []struct {
		name, src string
		args      []uint64
	}{
		{"div by zero", `int f(int x) { return 1 / x; }`, []uint64{0}},
		{"rem by zero", `int f(int x) { return 1 % x; }`, []uint64{0}},
		{"bad conversion", `int f(float x) { return int(x); }`,
			[]uint64{math.Float64bits(math.NaN())}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			mod := compile(t, tt.src)
			m := New(mod, Config{TraceFn: -1})
			_, err := m.Run(0, tt.args)
			var te *TrapError
			if !errors.As(err, &te) {
				t.Errorf("want TrapError, got %v", err)
			}
		})
	}
}

func TestHangDetection(t *testing.T) {
	mod := compile(t, `int f() { while (1) { } return 0; }`)
	m := New(mod, Config{MaxInstrs: 10000, TraceFn: -1})
	_, err := m.Run(0, nil)
	var he *HangError
	if !errors.As(err, &he) {
		t.Fatalf("want HangError, got %v", err)
	}
}

func TestCancelBeforeRun(t *testing.T) {
	mod := compile(t, `int f() { return 1; }`)
	done := make(chan struct{})
	close(done)
	m := New(mod, Config{TraceFn: -1, Cancel: done})
	_, err := m.Run(0, nil)
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("want CancelError, got %v", err)
	}
}

func TestCancelMidRun(t *testing.T) {
	mod := compile(t, `int f() { while (1) { } return 0; }`)
	done := make(chan struct{})
	m := New(mod, Config{TraceFn: -1, Cancel: done})
	go close(done)
	_, err := m.Run(0, nil)
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("want CancelError, got %v", err)
	}
	// The run stopped close to a poll boundary, not at the hang limit.
	if m.C.Dyn >= DefaultMaxInstrs {
		t.Errorf("run consumed the whole budget despite cancellation")
	}
}

func TestDeterminism(t *testing.T) {
	mod := compile(t, `
float f(float x, int n) {
	float s = 0.0;
	for (int i = 0; i < n; i = i + 1) { s = s + sqrt(x + float(i)); }
	return s;
}`)
	run := func() RunResult {
		m := New(mod, Config{TraceFn: -1})
		res, err := m.Run(0, []uint64{math.Float64bits(2.0), 100})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Ret != b.Ret || a.Instrs != b.Instrs || a.Cycles != b.Cycles {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestCountersAndTiming(t *testing.T) {
	mod := compile(t, `
int f(int n) {
	int s = 0;
	for (int i = 0; i < n; i = i + 1) { s = s + i; }
	return s;
}`)
	small := New(mod, Config{TraceFn: -1})
	rs, _ := small.Run(0, []uint64{10})
	big := New(mod, Config{TraceFn: -1})
	rb, _ := big.Run(0, []uint64{100})
	if rb.Instrs <= rs.Instrs || rb.Cycles <= rs.Cycles {
		t.Errorf("counters not monotone in work: %+v vs %+v", rs, rb)
	}
	if rs.IPC() <= 0 || rs.IPC() > float64(4) {
		t.Errorf("IPC out of range: %f", rs.IPC())
	}
	if rb.Counter.OpCount(ir.OpAdd) == 0 {
		t.Error("per-op counters empty")
	}
}

func TestIssueWidthMatters(t *testing.T) {
	mod := compile(t, `
int f(int n) {
	int a = 0;
	int b = 0;
	int c = 0;
	int d = 0;
	for (int i = 0; i < n; i = i + 1) {
		a = a + 1;
		b = b + 2;
		c = c + 3;
		d = d + 4;
	}
	return a + b + c + d;
}`)
	wide := New(mod, Config{IssueWidth: 8, TraceFn: -1})
	rw, _ := wide.Run(0, []uint64{1000})
	narrow := New(mod, Config{IssueWidth: 1, TraceFn: -1})
	rn, _ := narrow.Run(0, []uint64{1000})
	if rn.Cycles <= rw.Cycles {
		t.Errorf("narrower issue must be slower: width1=%d width8=%d", rn.Cycles, rw.Cycles)
	}
	if rw.Ret != rn.Ret {
		t.Error("issue width changed semantics")
	}
}

func TestChargeAccountsInstructions(t *testing.T) {
	mod := compile(t, `int f() { return 0; }`)
	m := New(mod, Config{TraceFn: -1})
	before := m.C.Dyn
	m.Charge(Cost{IntOps: 3, FpOps: 2, MemOps: 1, Branches: 1})
	if m.C.Dyn != before+7 {
		t.Errorf("Charge added %d, want 7", m.C.Dyn-before)
	}
	if m.C.Runtime != 7 {
		t.Errorf("Runtime counter = %d, want 7", m.C.Runtime)
	}
}

func TestCallTracer(t *testing.T) {
	mod := compile(t, `
float g(float x, float y) { return x * y; }
float f(float x) { return g(x, 2.0) + g(x, 3.0); }`)
	var traced [][]uint64
	var rets []uint64
	m := New(mod, Config{
		TraceFn: mod.FuncByName("g"),
		CallTracer: func(args []uint64, ret uint64) {
			traced = append(traced, append([]uint64(nil), args...))
			rets = append(rets, ret)
		},
	})
	_, err := m.Run(mod.FuncByName("f"), []uint64{math.Float64bits(5.0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(traced) != 2 {
		t.Fatalf("traced %d calls, want 2", len(traced))
	}
	if math.Float64frombits(rets[0]) != 10 || math.Float64frombits(rets[1]) != 15 {
		t.Errorf("traced returns: %g, %g", math.Float64frombits(rets[0]), math.Float64frombits(rets[1]))
	}
}

func TestRegionCounting(t *testing.T) {
	mod := compile(t, `
int helper(int x) { return x * 2; }
int f(int n) {
	int s = 0;
	for (int i = 0; i < n; i = i + 1) { s = s + helper(i); }
	return s;
}`)
	// Mark the loop blocks as region; the helper inherits via its call
	// site.
	all := map[int]bool{}
	fi := mod.FuncByName("f")
	for bi := range mod.Funcs[fi].Blocks {
		all[bi] = true
	}
	m := New(mod, Config{RegionBlocks: map[int]map[int]bool{fi: all}, TraceFn: -1})
	res, err := m.Run(fi, []uint64{10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Region == 0 {
		t.Fatal("no region instructions counted")
	}
	// Without region marks, zero.
	m2 := New(mod, Config{TraceFn: -1})
	res2, _ := m2.Run(fi, []uint64{10})
	if res2.Region != 0 {
		t.Errorf("unmarked run counted %d region instrs", res2.Region)
	}
}

func TestPipelineProperties(t *testing.T) {
	// Issue cycles are bounded below by operand readiness and the
	// completion cycle includes the latency.
	check := func(ready uint16, lat uint8) bool {
		var p pipeline
		p.init(2)
		done := p.issue(uint64(ready), uint64(lat))
		return done >= uint64(ready)+uint64(lat)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineWidthLimit(t *testing.T) {
	var p pipeline
	p.init(2)
	// Six zero-latency ops all ready at cycle 0 need >= 3 cycles.
	var last uint64
	for i := 0; i < 6; i++ {
		last = p.issue(0, 0)
	}
	if last < 2 {
		t.Errorf("six μops at width 2 finished at cycle %d, want >= 2", last)
	}
}

func TestMemoryTypedHelpers(t *testing.T) {
	m := NewMemory(1 << 10)
	base := m.Alloc(8)
	m.CopyInts(base, []int64{1, -2, 3})
	got := m.ReadInts(base, 3)
	if got[0] != 1 || got[1] != -2 || got[2] != 3 {
		t.Errorf("ReadInts = %v", got)
	}
	m.CopyFloats(base+4, []float64{0.5, -1.5})
	fs := m.ReadFloats(base+4, 2)
	if fs[0] != 0.5 || fs[1] != -1.5 {
		t.Errorf("ReadFloats = %v", fs)
	}
}
