package machine

import (
	"fmt"
	"math"

	"rskip/internal/ir"
)

func f2b(v float64) uint64 { return math.Float64bits(v) }
func b2f(b uint64) float64 { return math.Float64frombits(b) }
func boolBits(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// step executes one IR instruction of the top frame.
func (m *Machine) step() error {
	f := &m.fr[len(m.fr)-1]
	in := &f.fn.Blocks[f.block].Instrs[f.ip]
	f.ip++

	// Accounting. Region instructions are counted against the block
	// the instruction belongs to, before any branch retargets f.block.
	n := uops(in.Op)
	m.C.Dyn += n
	m.C.ops[in.Op] += n
	m.C.ByTag[in.Tag] += n
	inRegion := m.inRegionNow(f)
	if inRegion {
		m.C.Region++
		if m.cfg.RegionTrace != nil {
			m.cfg.RegionTrace.note(m.regionOwnerNow(), ClassOf(in.Op))
		}
	}
	m.faultFrameFn = f.fi
	if f.fn.Internal {
		m.C.Internal += n
	}
	if m.C.Dyn > m.cfg.MaxInstrs {
		return &HangError{Limit: m.cfg.MaxInstrs}
	}
	if m.cfg.Cancel != nil && m.C.Dyn >= m.cancelAt {
		m.cancelAt = m.C.Dyn + cancelPollInterval
		if m.cancelled() {
			return &CancelError{}
		}
	}
	if m.cfg.Trace != nil {
		m.traceStep(f, in)
	}

	// Fault injection: the campaign arms a plan that fires at a chosen
	// in-region dynamic instruction.
	switch m.decideFault(inRegion, in) {
	case faultRegFile:
		// A function with no registers (a bare-return helper reached
		// from a region call site) gives the strike nowhere to land:
		// record the fault as fired but masked, like a hit on a dead
		// register, instead of panicking on Pick % 0.
		if f.fn.NumRegs > 0 {
			hit := ir.Reg(m.fault.plan.Pick % f.fn.NumRegs)
			m.fault.firedTag = m.regTagOf(f.fi, hit)
			m.flipBit(f, hit)
		}
		return m.exec(f, in)
	case faultPre:
		if len(in.Args) > 0 {
			m.flipBit(f, in.Args[m.fault.plan.Pick%len(in.Args)])
		}
		return m.exec(f, in)
	case faultPost:
		dst := in.Dst
		if err := m.exec(f, in); err != nil {
			return err
		}
		// The frame may have been popped (OpRet) or m.fr reallocated
		// (OpCall); f.regs still aliases the same backing array, so the
		// flip lands on the intended architectural register.
		m.flipBit(f, dst)
		return nil
	case faultSkip:
		m.pl.issue(readyOf(f, in), 1)
		if in.Op.IsTerminator() {
			// A skipped terminator falls through to the next block.
			f.block = (f.block + 1) % len(f.fn.Blocks)
			f.ip = 0
		}
		return nil
	case faultGarbage:
		if in.Dst != ir.NoReg {
			f.regs[in.Dst] = m.garbage(f.regs[in.Dst])
			f.ready[in.Dst] = m.pl.issue(readyOf(f, in), 1)
		}
		return nil
	case faultTrap:
		return &TrapError{Reason: "illegal instruction encoding (injected opcode fault)"}
	}

	return m.exec(f, in)
}

// readyOf returns the cycle all source operands are ready.
func readyOf(f *frame, in *ir.Instr) uint64 {
	var r uint64
	for _, a := range in.Args {
		if f.ready[a] > r {
			r = f.ready[a]
		}
	}
	return r
}

// exec performs the operation, updates the timing model, and writes
// results.
func (m *Machine) exec(f *frame, in *ir.Instr) error {
	argI := func(i int) int64 { return int64(f.regs[in.Args[i]]) }
	argF := func(i int) float64 { return b2f(f.regs[in.Args[i]]) }
	setDst := func(bits uint64, done uint64) {
		if in.Dst != ir.NoReg {
			f.regs[in.Dst] = bits
			f.ready[in.Dst] = done
		}
	}
	done := m.pl.issue(readyOf(f, in), latency(in.Op))

	switch in.Op {
	case ir.OpConstInt:
		setDst(uint64(in.Imm), done)
	case ir.OpConstFloat:
		setDst(f2b(in.FImm), done)
	case ir.OpMov:
		setDst(f.regs[in.Args[0]], done)

	case ir.OpAdd:
		setDst(uint64(argI(0)+argI(1)), done)
	case ir.OpSub:
		setDst(uint64(argI(0)-argI(1)), done)
	case ir.OpMul:
		setDst(uint64(argI(0)*argI(1)), done)
	case ir.OpDiv:
		d := argI(1)
		if d == 0 {
			return &TrapError{Reason: "integer divide by zero"}
		}
		setDst(uint64(argI(0)/d), done)
	case ir.OpRem:
		d := argI(1)
		if d == 0 {
			return &TrapError{Reason: "integer remainder by zero"}
		}
		setDst(uint64(argI(0)%d), done)
	case ir.OpAnd:
		setDst(f.regs[in.Args[0]]&f.regs[in.Args[1]], done)
	case ir.OpOr:
		setDst(f.regs[in.Args[0]]|f.regs[in.Args[1]], done)
	case ir.OpXor:
		setDst(f.regs[in.Args[0]]^f.regs[in.Args[1]], done)
	case ir.OpShl:
		setDst(uint64(argI(0))<<(uint64(argI(1))&63), done)
	case ir.OpShr:
		setDst(uint64(argI(0))>>(uint64(argI(1))&63), done)
	case ir.OpNeg:
		setDst(uint64(-argI(0)), done)

	case ir.OpFAdd:
		setDst(f2b(argF(0)+argF(1)), done)
	case ir.OpFSub:
		setDst(f2b(argF(0)-argF(1)), done)
	case ir.OpFMul:
		setDst(f2b(argF(0)*argF(1)), done)
	case ir.OpFDiv:
		setDst(f2b(argF(0)/argF(1)), done)
	case ir.OpFNeg:
		setDst(f2b(-argF(0)), done)

	case ir.OpEq:
		setDst(boolBits(argI(0) == argI(1)), done)
	case ir.OpNe:
		setDst(boolBits(argI(0) != argI(1)), done)
	case ir.OpLt:
		setDst(boolBits(argI(0) < argI(1)), done)
	case ir.OpLe:
		setDst(boolBits(argI(0) <= argI(1)), done)
	case ir.OpGt:
		setDst(boolBits(argI(0) > argI(1)), done)
	case ir.OpGe:
		setDst(boolBits(argI(0) >= argI(1)), done)
	case ir.OpFEq:
		setDst(boolBits(argF(0) == argF(1)), done)
	case ir.OpFNe:
		setDst(boolBits(argF(0) != argF(1)), done)
	case ir.OpFLt:
		setDst(boolBits(argF(0) < argF(1)), done)
	case ir.OpFLe:
		setDst(boolBits(argF(0) <= argF(1)), done)
	case ir.OpFGt:
		setDst(boolBits(argF(0) > argF(1)), done)
	case ir.OpFGe:
		setDst(boolBits(argF(0) >= argF(1)), done)

	case ir.OpIToF:
		setDst(f2b(float64(argI(0))), done)
	case ir.OpFToI:
		v := argF(0)
		if math.IsNaN(v) || v > math.MaxInt64 || v < math.MinInt64 {
			return &TrapError{Reason: "float to int conversion out of range"}
		}
		setDst(uint64(int64(v)), done)

	case ir.OpLoad:
		addr := argI(0)
		var w uint64
		if m.overrideActive && addr == m.overrideAddr {
			w = m.overrideVal
		} else {
			var err error
			w, err = m.Mem.LoadWord(addr)
			if err != nil {
				return err
			}
		}
		setDst(w, done)
	case ir.OpStore:
		if err := m.Mem.StoreWord(argI(0), f.regs[in.Args[1]]); err != nil {
			return err
		}
	case ir.OpAlloca:
		base, err := m.Mem.pushStack(in.Imm)
		if err != nil {
			return err
		}
		setDst(uint64(base), done)

	case ir.OpSqrt:
		setDst(f2b(math.Sqrt(argF(0))), done)
	case ir.OpExp:
		setDst(f2b(math.Exp(argF(0))), done)
	case ir.OpLog:
		setDst(f2b(math.Log(argF(0))), done)
	case ir.OpFAbs:
		setDst(f2b(math.Abs(argF(0))), done)
	case ir.OpPow:
		setDst(f2b(math.Pow(argF(0), argF(1))), done)
	case ir.OpFloor:
		setDst(f2b(math.Floor(argF(0))), done)
	case ir.OpFMin:
		setDst(f2b(math.Min(argF(0), argF(1))), done)
	case ir.OpFMax:
		setDst(f2b(math.Max(argF(0), argF(1))), done)

	case ir.OpBr:
		f.block = in.Blocks[0]
		f.ip = 0
	case ir.OpCondBr:
		if f.regs[in.Args[0]] != 0 {
			f.block = in.Blocks[0]
		} else {
			f.block = in.Blocks[1]
		}
		f.ip = 0
	case ir.OpRet:
		var ret uint64
		if len(in.Args) == 1 {
			ret = f.regs[in.Args[0]]
		}
		retDst := f.retDst
		if f.savedArgs != nil {
			m.cfg.CallTracer(f.savedArgs, ret)
		}
		m.popFrame()
		m.lastRet = ret
		if retDst != ir.NoReg && len(m.fr) > 0 {
			caller := &m.fr[len(m.fr)-1]
			caller.regs[retDst] = ret
			caller.ready[retDst] = done
		}

	case ir.OpCall:
		args := make([]uint64, len(in.Args))
		for i, a := range in.Args {
			args[i] = f.regs[a]
		}
		return m.pushFrame(in.Callee, args, in.Dst)

	case ir.OpCheck2:
		if f.regs[in.Args[0]] != f.regs[in.Args[1]] {
			return &DetectError{Func: f.fn.Name}
		}
	case ir.OpVote3:
		a, b, c := f.regs[in.Args[0]], f.regs[in.Args[1]], f.regs[in.Args[2]]
		maj := a
		switch {
		case a == b || a == c:
			maj = a
		case b == c:
			maj = b
		}
		setDst(maj, done)

	case ir.OpRTLoopEnter:
		if m.cfg.Hooks != nil {
			inv := make([]uint64, len(in.Args))
			for i, a := range in.Args {
				inv[i] = f.regs[a]
			}
			m.hookOp = in.Op
			return m.cfg.Hooks.LoopEnter(m, int(in.Imm), inv)
		}
	case ir.OpRTObserve:
		if m.cfg.Hooks != nil {
			m.hookOp = in.Op
			return m.cfg.Hooks.Observe(m, int(in.Imm),
				int64(f.regs[in.Args[0]]), f.regs[in.Args[1]], int64(f.regs[in.Args[2]]))
		}
	case ir.OpRTLoopExit:
		if m.cfg.Hooks != nil {
			m.hookOp = in.Op
			return m.cfg.Hooks.LoopExit(m, int(in.Imm))
		}

	default:
		return &TrapError{Reason: "illegal instruction " + in.Op.String()}
	}
	return nil
}

// traceStep emits one trace line: function, block, opcode, operand
// values (pre-execution) — enough to replay a bug by eye.
func (m *Machine) traceStep(f *frame, in *ir.Instr) {
	limit := m.cfg.TraceLimit
	if limit == 0 {
		limit = 10000
	}
	if m.traced >= limit {
		if m.traced == limit {
			fmt.Fprintf(m.cfg.Trace, "... trace truncated at %d instructions\n", limit)
			m.traced++
		}
		return
	}
	m.traced++
	fmt.Fprintf(m.cfg.Trace, "%s b%d#%d %s", f.fn.Name, f.block, f.ip-1, in.Op)
	if in.Op.HasDst() && in.Dst != ir.NoReg {
		fmt.Fprintf(m.cfg.Trace, " %v<-", in.Dst)
	}
	for _, a := range in.Args {
		if f.fn.TypeOf(a) == ir.Float {
			fmt.Fprintf(m.cfg.Trace, " %v=%g", a, b2f(f.regs[a]))
		} else {
			fmt.Fprintf(m.cfg.Trace, " %v=%d", a, int64(f.regs[a]))
		}
	}
	if in.Tag != ir.TagNone {
		fmt.Fprintf(m.cfg.Trace, " ;%s", in.Tag)
	}
	fmt.Fprintln(m.cfg.Trace)
}
