package machine

import (
	"errors"
	"testing"

	"rskip/internal/ir"
)

// stagedSrc has two independent loop regions in separate functions,
// both invoked from a kernel whose own code stays out of region —
// the shape compositional analysis decomposes.
const stagedSrc = `
void stage1(int a[], int out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		out[i] = a[i] * 3 + 1;
	}
}
void stage2(int a[], int out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		int s = 0;
		for (int j = 0; j < 3; j = j + 1) { s = s + a[i + j]; }
		out[i] = s;
	}
}
void kernel(int a[], int tmp[], int out[], int n) {
	stage1(a, tmp, n);
	stage2(tmp, out, n);
}
`

func runStagedTrace(t *testing.T, trace *RegionTrace) RunResult {
	t.Helper()
	mod := compile(t, stagedSrc)
	s1, s2, kfi := mod.FuncByName("stage1"), mod.FuncByName("stage2"), mod.FuncByName("kernel")
	region := map[int]map[int]bool{s1: {}, s2: {}}
	for _, fi := range []int{s1, s2} {
		for bi := range mod.Funcs[fi].Blocks {
			region[fi][bi] = true
		}
	}
	m := New(mod, Config{
		RegionBlocks: region,
		RegionTrace:  trace,
		Reference:    true,
		MaxInstrs:    1 << 22,
		TraceFn:      -1,
	})
	n := int64(16)
	a := m.Mem.Alloc(n + 4)
	for i := int64(0); i < n+4; i++ {
		m.Mem.SetInt(a+i, 10+i)
	}
	tmp := m.Mem.Alloc(n + 4)
	out := m.Mem.Alloc(n)
	res, err := m.Run(kfi, []uint64{uint64(a), uint64(tmp), uint64(out), uint64(n)})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The trace must tile the in-region index space exactly — its total is
// the run's Region counter — and attribute each stage's instructions
// to that stage's function, in execution order.
func TestRegionTraceTilesRegionCounter(t *testing.T) {
	var trace RegionTrace
	res := runStagedTrace(t, &trace)
	if trace.Overflowed() || trace.Err() != nil {
		t.Fatal("trace overflowed on a small run")
	}
	if trace.Total() != res.Region {
		t.Fatalf("trace total %d != region counter %d", trace.Total(), res.Region)
	}
	if res.Region == 0 {
		t.Fatal("no in-region instructions recorded")
	}
	mod := compile(t, stagedSrc)
	s1, s2 := mod.FuncByName("stage1"), mod.FuncByName("stage2")
	perOwner := map[int]uint64{}
	perClass := [NumOpClasses]uint64{}
	lastOwner := -1
	switches := 0
	for _, sp := range trace.Spans() {
		if sp.N == 0 {
			t.Fatal("empty span")
		}
		if sp.Owner != s1 && sp.Owner != s2 {
			t.Fatalf("span attributed to function %d, want stage1=%d or stage2=%d", sp.Owner, s1, s2)
		}
		perOwner[sp.Owner] += sp.N
		perClass[sp.Class] += sp.N
		if sp.Owner != lastOwner {
			switches++
			lastOwner = sp.Owner
		}
	}
	if perOwner[s1] == 0 || perOwner[s2] == 0 {
		t.Fatalf("per-owner totals %v: both stages must appear", perOwner)
	}
	// The kernel calls stage1 then stage2 once each: exactly one
	// owner transition.
	if switches != 2 {
		t.Fatalf("owner switches = %d, want 2 (stage1 then stage2)", switches)
	}
	// Loops guarantee every major class shows up.
	for _, c := range []OpClass{ClassALU, ClassMem, ClassBranch} {
		if perClass[c] == 0 {
			t.Errorf("class %v absent from trace", c)
		}
	}
}

func TestRegionTraceOverflowIsTyped(t *testing.T) {
	trace := RegionTrace{MaxSpans: 2}
	runStagedTrace(t, &trace)
	if !trace.Overflowed() {
		t.Fatal("2-span cap did not overflow")
	}
	var oe *TraceOverflowError
	if err := trace.Err(); !errors.As(err, &oe) {
		t.Fatalf("Err() = %v, want *TraceOverflowError", err)
	} else if oe.Cap != 2 {
		t.Fatalf("overflow cap = %d, want 2", oe.Cap)
	}
}

// Non-reference backends must ignore the trace rather than record a
// partial or double-counted layout.
func TestRegionTraceReferenceOnly(t *testing.T) {
	for _, b := range []Backend{BackendFast, BackendCompiled} {
		mod := compile(t, stagedSrc)
		s1 := mod.FuncByName("stage1")
		region := map[int]bool{}
		for bi := range mod.Funcs[s1].Blocks {
			region[bi] = true
		}
		var trace RegionTrace
		m := New(mod, Config{
			RegionBlocks: map[int]map[int]bool{s1: region},
			RegionTrace:  &trace,
			Backend:      b,
			MaxInstrs:    1 << 22,
			TraceFn:      -1,
		})
		n := int64(8)
		a := m.Mem.Alloc(n)
		out := m.Mem.Alloc(n)
		if _, err := m.Run(s1, []uint64{uint64(a), uint64(out), uint64(n)}); err != nil {
			t.Fatal(err)
		}
		if trace.Total() != 0 {
			t.Fatalf("backend %v recorded %d trace entries; tracing is reference-only", b, trace.Total())
		}
	}
}

func TestClassOfTaxonomy(t *testing.T) {
	want := map[ir.Op]OpClass{
		ir.OpAdd:         ClassALU,
		ir.OpConstInt:    ClassALU,
		ir.OpEq:          ClassALU,
		ir.OpFMul:        ClassFloat,
		ir.OpSqrt:        ClassFloat,
		ir.OpIToF:        ClassFloat,
		ir.OpLoad:        ClassMem,
		ir.OpStore:       ClassMem,
		ir.OpAlloca:      ClassMem,
		ir.OpCondBr:      ClassBranch,
		ir.OpRet:         ClassBranch,
		ir.OpCall:        ClassCall,
		ir.OpCheck2:      ClassCheck,
		ir.OpVote3:       ClassCheck,
		ir.OpRTObserve:   ClassRuntime,
		ir.OpRTLoopEnter: ClassRuntime,
	}
	for op, cls := range want {
		if got := ClassOf(op); got != cls {
			t.Errorf("ClassOf(%v) = %v, want %v", op, got, cls)
		}
	}
	for op := ir.Op(0); op < ir.Op(ir.NumOps); op++ {
		if c := ClassOf(op); c >= NumOpClasses {
			t.Errorf("ClassOf(%v) = %d out of range", op, c)
		}
	}
}

// FuncFingerprint isolates one function; RegionFingerprint covers the
// call closure. Editing a helper must change its caller's region
// fingerprint but not an unrelated function's.
func TestRegionFingerprintClosure(t *testing.T) {
	src := `
int helper(int x) { return x * 3; }
void stage1(int a[], int out[], int n) {
	for (int i = 0; i < n; i = i + 1) { out[i] = helper(a[i]); }
}
void stage2(int a[], int out[], int n) {
	for (int i = 0; i < n; i = i + 1) { out[i] = a[i] + 7; }
}
void kernel(int a[], int tmp[], int out[], int n) {
	stage1(a, tmp, n);
	stage2(tmp, out, n);
}
`
	mod := compile(t, src)
	hfi, s1, s2 := mod.FuncByName("helper"), mod.FuncByName("stage1"), mod.FuncByName("stage2")
	base := CompileCode(mod)

	clone := mod.Clone()
	// Edit helper's body only.
	edited := false
	for bi := range clone.Funcs[hfi].Blocks {
		for k := range clone.Funcs[hfi].Blocks[bi].Instrs {
			in := &clone.Funcs[hfi].Blocks[bi].Instrs[k]
			if in.Op == ir.OpConstInt {
				in.Imm++
				edited = true
			}
		}
	}
	if !edited {
		t.Fatal("no editable constant in helper")
	}
	ec := CompileCode(clone)

	if base.FuncFingerprint(s1) != ec.FuncFingerprint(s1) {
		t.Error("stage1's own fingerprint changed on a helper edit")
	}
	if base.FuncFingerprint(hfi) == ec.FuncFingerprint(hfi) {
		t.Error("helper edit did not change helper's fingerprint")
	}
	if base.RegionFingerprint(s1) == ec.RegionFingerprint(s1) {
		t.Error("stage1's region fingerprint must cover its callee helper")
	}
	if base.RegionFingerprint(s2) != ec.RegionFingerprint(s2) {
		t.Error("stage2's region fingerprint changed though its closure is untouched")
	}
}
