// Package machine executes RSkip IR directly: a word-addressable
// segmented memory, a register-file interpreter, an in-order
// superscalar timing model that yields cycles and IPC, exact dynamic
// instruction counting, a runtime bridge that services the
// prediction-based-protection hooks, and single-event-upset fault
// injection. It is this repository's stand-in for the paper's native
// x86 execution (performance) and gem5/ARMv7 simulation (reliability).
package machine

import (
	"fmt"
	"math"
	"sync"
)

// Memory is a flat word-addressable memory (one 64-bit word per
// address). The heap grows upward from zero via Alloc; the stack
// segment for local arrays grows downward from the top of the dense
// arena. Addresses beyond the dense arena but below MappedLimit model
// the large mapped-but-unrelated address space of a real process
// (lazily paged): corrupted pointers usually land there and read
// zeros or scribble harmlessly instead of faulting, matching the low
// Segfault rates of the paper's gem5/ARMv7 campaigns. Only accesses
// past MappedLimit (or negative) raise a segmentation fault.
// Memory contents are assumed ECC-protected (faults are never injected
// here), matching the paper's fault model.
type Memory struct {
	words    []uint64
	pages    map[int64][]uint64
	heapEnd  int64 // heap occupies [0, heapEnd)
	stackPtr int64 // stack occupies [stackPtr, len(words))

	// Write watermarks for cheap arena recycling: every dense-arena
	// store lands in [0, dirtyLoEnd) or [dirtyHiStart, len(words)) —
	// the heap grows up from zero and the stack down from the top, so
	// tracking the two halves separately keeps the union tight. reset
	// clears only those spans instead of the whole arena (the default
	// arena is 32 MiB; campaign runs touch a few KiB), which is what
	// makes pooling memories across millions of runs worthwhile.
	dirtyLoEnd   int64
	dirtyHiStart int64
}

// MappedLimit bounds the simulated process's mapped address space in
// words; accesses at or beyond it fault.
const MappedLimit = int64(1) << 28

// pageSize is the sparse-page granule in words.
const pageSize = int64(4096)

// SegfaultError reports an out-of-segment memory access.
type SegfaultError struct {
	Addr int64
	Op   string
}

func (e *SegfaultError) Error() string {
	return fmt.Sprintf("machine: segmentation fault: %s at address %d", e.Op, e.Addr)
}

// NewMemory returns a memory of the given size in words.
func NewMemory(words int64) *Memory {
	m := &Memory{words: make([]uint64, words)}
	m.stackPtr = words
	m.dirtyHiStart = words
	return m
}

// defaultMemWords is Config.MemWords' default; only arenas of exactly
// this size are pooled.
const defaultMemWords = int64(1) << 22

// memPool recycles default-sized memories between machines (campaign
// runs build one machine per injection). Pooled memories are fully
// reset — a Get behaves exactly like NewMemory(defaultMemWords).
var memPool = sync.Pool{}

func newPooledMemory(words int64) (mem *Memory, pooled bool) {
	if words == defaultMemWords {
		if v := memPool.Get(); v != nil {
			return v.(*Memory), true
		}
	}
	return NewMemory(words), false
}

func releaseMemory(m *Memory) {
	if m == nil || int64(len(m.words)) != defaultMemWords {
		return
	}
	m.reset()
	memPool.Put(m)
}

// reset restores the memory to its freshly-allocated state, zeroing
// only the spans the watermarks prove were written.
func (m *Memory) reset() {
	for i := range m.words[:m.dirtyLoEnd] {
		m.words[i] = 0
	}
	hi := m.words[m.dirtyHiStart:]
	for i := range hi {
		hi[i] = 0
	}
	m.dirtyLoEnd = 0
	m.dirtyHiStart = int64(len(m.words))
	m.pages = nil
	m.heapEnd = 0
	m.stackPtr = int64(len(m.words))
}

// Alloc reserves n words on the heap and returns the base address.
func (m *Memory) Alloc(n int64) int64 {
	if n < 0 || m.heapEnd+n > m.stackPtr {
		panic(fmt.Sprintf("machine: heap allocation of %d words exceeds memory", n))
	}
	base := m.heapEnd
	m.heapEnd += n
	return base
}

// LoadWord reads the raw word at addr.
func (m *Memory) LoadWord(addr int64) (uint64, error) {
	if addr >= 0 && addr < int64(len(m.words)) {
		return m.words[addr], nil
	}
	if addr < 0 || addr >= MappedLimit {
		return 0, &SegfaultError{Addr: addr, Op: "load"}
	}
	if pg, ok := m.pages[addr/pageSize]; ok {
		return pg[addr%pageSize], nil
	}
	return 0, nil
}

// StoreWord writes the raw word at addr.
func (m *Memory) StoreWord(addr int64, v uint64) error {
	if addr >= 0 && addr < int64(len(m.words)) {
		// Watermarks move before the write so a panicking run still
		// leaves them covering every written word.
		if addr < int64(len(m.words))/2 {
			if addr >= m.dirtyLoEnd {
				m.dirtyLoEnd = addr + 1
			}
		} else if addr < m.dirtyHiStart {
			m.dirtyHiStart = addr
		}
		m.words[addr] = v
		return nil
	}
	if addr < 0 || addr >= MappedLimit {
		return &SegfaultError{Addr: addr, Op: "store"}
	}
	if m.pages == nil {
		m.pages = make(map[int64][]uint64)
	}
	pg, ok := m.pages[addr/pageSize]
	if !ok {
		pg = make([]uint64, pageSize)
		m.pages[addr/pageSize] = pg
	}
	pg[addr%pageSize] = v
	return nil
}

// pushStack reserves n words of stack and returns the new base; used
// by alloca. Returns an error when the stack would collide with the
// heap.
func (m *Memory) pushStack(n int64) (int64, error) {
	if m.stackPtr-n < m.heapEnd {
		return 0, &SegfaultError{Addr: m.stackPtr - n, Op: "stack-alloc"}
	}
	m.stackPtr -= n
	return m.stackPtr, nil
}

// popStackTo restores the stack pointer to a previously saved mark.
func (m *Memory) popStackTo(mark int64) { m.stackPtr = mark }

// StackMark returns the current stack pointer for later restoration.
func (m *Memory) StackMark() int64 { return m.stackPtr }

// Convenience typed accessors for hosts (input generators, checkers).

// SetFloat stores a float at addr.
func (m *Memory) SetFloat(addr int64, v float64) {
	if err := m.StoreWord(addr, math.Float64bits(v)); err != nil {
		panic(err)
	}
}

// GetFloat loads a float from addr.
func (m *Memory) GetFloat(addr int64) float64 {
	w, err := m.LoadWord(addr)
	if err != nil {
		panic(err)
	}
	return math.Float64frombits(w)
}

// SetInt stores an integer at addr.
func (m *Memory) SetInt(addr int64, v int64) {
	if err := m.StoreWord(addr, uint64(v)); err != nil {
		panic(err)
	}
}

// GetInt loads an integer from addr.
func (m *Memory) GetInt(addr int64) int64 {
	w, err := m.LoadWord(addr)
	if err != nil {
		panic(err)
	}
	return int64(w)
}

// CopyFloats bulk-stores a float slice starting at base.
func (m *Memory) CopyFloats(base int64, vs []float64) {
	for i, v := range vs {
		m.SetFloat(base+int64(i), v)
	}
}

// CopyInts bulk-stores an int slice starting at base.
func (m *Memory) CopyInts(base int64, vs []int64) {
	for i, v := range vs {
		m.SetInt(base+int64(i), v)
	}
}

// ReadFloats bulk-loads n floats starting at base.
func (m *Memory) ReadFloats(base int64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = m.GetFloat(base + int64(i))
	}
	return out
}

// ReadInts bulk-loads n ints starting at base.
func (m *Memory) ReadInts(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = m.GetInt(base + int64(i))
	}
	return out
}
