package machine

import (
	"math"
	"testing"

	"rskip/internal/ir"
)

// evalBinop builds `func f(a, b T) T { return a <op> b }` directly in
// IR and executes it.
func evalBinop(t *testing.T, op ir.Op, typ ir.Type, a, b uint64) uint64 {
	t.Helper()
	bld := ir.NewBuilder("f", []ir.Param{{Name: "a", Type: typ}, {Name: "b", Type: typ}}, typ)
	r := bld.Binop(op, typ, 0, 1)
	bld.Ret(r)
	mod := &ir.Module{Name: "t", Funcs: []*ir.Func{bld.F}}
	if err := ir.Verify(mod); err != nil {
		t.Fatal(err)
	}
	m := New(mod, Config{TraceFn: -1})
	res, err := m.Run(0, []uint64{a, b})
	if err != nil {
		t.Fatalf("%v: %v", op, err)
	}
	return res.Ret
}

func evalUnop(t *testing.T, op ir.Op, in, out ir.Type, a uint64) uint64 {
	t.Helper()
	bld := ir.NewBuilder("f", []ir.Param{{Name: "a", Type: in}}, out)
	r := bld.Unop(op, out, 0)
	bld.Ret(r)
	mod := &ir.Module{Name: "t", Funcs: []*ir.Func{bld.F}}
	if err := ir.Verify(mod); err != nil {
		t.Fatal(err)
	}
	m := New(mod, Config{TraceFn: -1})
	res, err := m.Run(0, []uint64{a})
	if err != nil {
		t.Fatalf("%v: %v", op, err)
	}
	return res.Ret
}

func TestIntegerOps(t *testing.T) {
	i := func(v int64) uint64 { return uint64(v) }
	cases := []struct {
		op      ir.Op
		a, b, w int64
	}{
		{ir.OpAdd, 7, -3, 4},
		{ir.OpSub, 7, 10, -3},
		{ir.OpMul, -4, 6, -24},
		{ir.OpDiv, -13, 4, -3},
		{ir.OpRem, -13, 4, -1},
		{ir.OpAnd, 0b1100, 0b1010, 0b1000},
		{ir.OpOr, 0b1100, 0b1010, 0b1110},
		{ir.OpXor, 0b1100, 0b1010, 0b0110},
		{ir.OpShl, 3, 4, 48},
		{ir.OpShr, 48, 4, 3},
		{ir.OpEq, 5, 5, 1},
		{ir.OpNe, 5, 5, 0},
		{ir.OpLt, -2, 1, 1},
		{ir.OpLe, 1, 1, 1},
		{ir.OpGt, 1, 2, 0},
		{ir.OpGe, 2, 2, 1},
	}
	for _, tt := range cases {
		if got := evalBinop(t, tt.op, ir.Int, i(tt.a), i(tt.b)); got != i(tt.w) {
			t.Errorf("%v(%d, %d) = %d, want %d", tt.op, tt.a, tt.b, int64(got), tt.w)
		}
	}
	if got := evalUnop(t, ir.OpNeg, ir.Int, ir.Int, i(9)); int64(got) != -9 {
		t.Errorf("neg(9) = %d", int64(got))
	}
}

func TestFloatOps(t *testing.T) {
	f := func(v float64) uint64 { return math.Float64bits(v) }
	fv := func(b uint64) float64 { return math.Float64frombits(b) }
	cases := []struct {
		op      ir.Op
		a, b, w float64
	}{
		{ir.OpFAdd, 1.5, 2.25, 3.75},
		{ir.OpFSub, 1.5, 2.0, -0.5},
		{ir.OpFMul, -2, 3.5, -7},
		{ir.OpFDiv, 7, 2, 3.5},
		{ir.OpPow, 2, 10, 1024},
		{ir.OpFMin, 2, -1, -1},
		{ir.OpFMax, 2, -1, 2},
	}
	for _, tt := range cases {
		if got := fv(evalBinop(t, tt.op, ir.Float, f(tt.a), f(tt.b))); got != tt.w {
			t.Errorf("%v(%g, %g) = %g, want %g", tt.op, tt.a, tt.b, got, tt.w)
		}
	}
	cmp := []struct {
		op   ir.Op
		a, b float64
		w    uint64
	}{
		{ir.OpFEq, 1, 1, 1},
		{ir.OpFNe, 1, 2, 1},
		{ir.OpFLt, 1, 2, 1},
		{ir.OpFLe, 2, 2, 1},
		{ir.OpFGt, 1, 2, 0},
		{ir.OpFGe, 2, 3, 0},
	}
	for _, tt := range cmp {
		// Comparisons produce Int; evalBinop declares the result type
		// as the operand type, so build by hand.
		bld := ir.NewBuilder("f", []ir.Param{{Name: "a", Type: ir.Float}, {Name: "b", Type: ir.Float}}, ir.Int)
		r := bld.Binop(tt.op, ir.Int, 0, 1)
		bld.Ret(r)
		mod := &ir.Module{Name: "t", Funcs: []*ir.Func{bld.F}}
		m := New(mod, Config{TraceFn: -1})
		res, err := m.Run(0, []uint64{f(tt.a), f(tt.b)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ret != tt.w {
			t.Errorf("%v(%g, %g) = %d, want %d", tt.op, tt.a, tt.b, res.Ret, tt.w)
		}
	}
	unary := []struct {
		op   ir.Op
		a, w float64
	}{
		{ir.OpFNeg, 2.5, -2.5},
		{ir.OpSqrt, 16, 4},
		{ir.OpFAbs, -3.25, 3.25},
		{ir.OpFloor, 2.9, 2},
		{ir.OpExp, 0, 1},
		{ir.OpLog, 1, 0},
	}
	for _, tt := range unary {
		if got := fv(evalUnop(t, tt.op, ir.Float, ir.Float, f(tt.a))); got != tt.w {
			t.Errorf("%v(%g) = %g, want %g", tt.op, tt.a, got, tt.w)
		}
	}
}

func TestConversions(t *testing.T) {
	minus7 := int64(-7)
	if got := evalUnop(t, ir.OpIToF, ir.Int, ir.Float, uint64(minus7)); math.Float64frombits(got) != -7 {
		t.Errorf("itof(-7) = %g", math.Float64frombits(got))
	}
	if got := evalUnop(t, ir.OpFToI, ir.Float, ir.Int, math.Float64bits(-7.9)); int64(got) != -7 {
		t.Errorf("ftoi(-7.9) = %d (truncation toward zero expected)", int64(got))
	}
}

func TestVote3Semantics(t *testing.T) {
	build := func() *ir.Module {
		bld := ir.NewBuilder("f", []ir.Param{
			{Name: "a", Type: ir.Int}, {Name: "b", Type: ir.Int}, {Name: "c", Type: ir.Int},
		}, ir.Int)
		dst := bld.F.NewReg(ir.Int)
		bld.Raw(ir.Instr{Op: ir.OpVote3, Dst: dst, Args: []ir.Reg{0, 1, 2}})
		bld.Ret(dst)
		return &ir.Module{Name: "t", Funcs: []*ir.Func{bld.F}}
	}
	mod := build()
	run := func(a, b, c uint64) uint64 {
		m := New(mod, Config{TraceFn: -1})
		res, err := m.Run(0, []uint64{a, b, c})
		if err != nil {
			t.Fatal(err)
		}
		return res.Ret
	}
	if run(5, 5, 5) != 5 {
		t.Error("unanimous vote failed")
	}
	if run(9, 5, 5) != 5 {
		t.Error("corrupted master not outvoted")
	}
	if run(5, 9, 5) != 5 {
		t.Error("corrupted first shadow not outvoted")
	}
	if run(5, 5, 9) != 5 {
		t.Error("corrupted second shadow not outvoted")
	}
	// Three-way disagreement keeps the master (no majority exists).
	if run(1, 2, 3) != 1 {
		t.Error("three-way disagreement should keep the first copy")
	}
}

func TestCheck2Semantics(t *testing.T) {
	bld := ir.NewBuilder("f", []ir.Param{
		{Name: "a", Type: ir.Int}, {Name: "b", Type: ir.Int},
	}, ir.Int)
	bld.Raw(ir.Instr{Op: ir.OpCheck2, Args: []ir.Reg{0, 1}})
	bld.Ret(0)
	mod := &ir.Module{Name: "t", Funcs: []*ir.Func{bld.F}}
	m := New(mod, Config{TraceFn: -1})
	if _, err := m.Run(0, []uint64{4, 4}); err != nil {
		t.Errorf("matching check raised %v", err)
	}
	m2 := New(mod, Config{TraceFn: -1})
	if _, err := m2.Run(0, []uint64{4, 5}); err == nil {
		t.Error("mismatching check did not signal detection")
	}
}
