package machine

import (
	"errors"
	"testing"

	"rskip/internal/ir"
)

// faultHarness builds a module whose kernel stores a computed value so
// faults have somewhere visible to land, with every block in-region.
func faultHarness(t *testing.T) (*ir.Module, int) {
	t.Helper()
	mod := compile(t, `
void kernel(int a[], int out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		int s = 0;
		for (int j = 0; j < 4; j = j + 1) { s = s + a[i + j] * 3; }
		out[i] = s;
	}
}`)
	return mod, mod.FuncByName("kernel")
}

func runWithFault(t *testing.T, mod *ir.Module, fi int, plan *FaultPlan) (RunResult, []int64, error) {
	t.Helper()
	region := map[int]bool{}
	for bi := range mod.Funcs[fi].Blocks {
		region[bi] = true
	}
	m := New(mod, Config{
		RegionBlocks: map[int]map[int]bool{fi: region},
		Fault:        plan,
		MaxInstrs:    1 << 22,
		TraceFn:      -1,
	})
	n := int64(16)
	a := m.Mem.Alloc(n + 4)
	for i := int64(0); i < n+4; i++ {
		m.Mem.SetInt(a+i, 100+i)
	}
	out := m.Mem.Alloc(n)
	res, err := m.Run(fi, []uint64{uint64(a), uint64(out), uint64(n)})
	var vals []int64
	if err == nil {
		vals = m.Mem.ReadInts(out, int(n))
	}
	return res, vals, err
}

func TestFaultFreeBaseline(t *testing.T) {
	mod, fi := faultHarness(t)
	res, vals, err := runWithFault(t, mod, fi, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Region == 0 {
		t.Fatal("region not counted")
	}
	want := int64((100 + 101 + 102 + 103) * 3)
	if vals[0] != want {
		t.Fatalf("out[0] = %d, want %d", vals[0], want)
	}
}

func TestFaultResultBitCorrupts(t *testing.T) {
	mod, fi := faultHarness(t)
	_, golden, err := runWithFault(t, mod, fi, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sweep a few targets; at least one must corrupt the output (the
	// fault model would be toothless otherwise) and every run must
	// either finish or fail with a classified error.
	corrupted := 0
	for target := uint64(0); target < 60; target += 3 {
		plan := &FaultPlan{Kind: FaultResultBit, Target: target, Bit: 7}
		_, vals, err := runWithFault(t, mod, fi, plan)
		if err != nil {
			var se *SegfaultError
			var te *TrapError
			var he *HangError
			if !errors.As(err, &se) && !errors.As(err, &te) && !errors.As(err, &he) {
				t.Fatalf("unclassified error: %v", err)
			}
			continue
		}
		for i := range golden {
			if vals[i] != golden[i] {
				corrupted++
				break
			}
		}
	}
	if corrupted == 0 {
		t.Error("no injected result-bit fault corrupted the output")
	}
}

func TestFaultFiredReporting(t *testing.T) {
	mod, fi := faultHarness(t)
	res, _, err := runWithFault(t, mod, fi, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Target inside the region: fires.
	region := map[int]bool{}
	for bi := range mod.Funcs[fi].Blocks {
		region[bi] = true
	}
	mk := func(target uint64) *Machine {
		return New(mod, Config{
			RegionBlocks: map[int]map[int]bool{fi: region},
			Fault:        &FaultPlan{Kind: FaultRegFile, Target: target, Bit: 3, Pick: 1},
			TraceFn:      -1,
		})
	}
	m := mk(res.Region / 2)
	a := m.Mem.Alloc(20)
	out := m.Mem.Alloc(16)
	if _, err := m.Run(fi, []uint64{uint64(a), uint64(out), 16}); err != nil {
		t.Fatal(err)
	}
	if !m.FaultFired() {
		t.Error("in-region fault did not fire")
	}
	// Target past the region's end: never fires (masked).
	m2 := mk(res.Region * 10)
	a2 := m2.Mem.Alloc(20)
	out2 := m2.Mem.Alloc(16)
	if _, err := m2.Run(fi, []uint64{uint64(a2), uint64(out2), 16}); err != nil {
		t.Fatal(err)
	}
	if m2.FaultFired() {
		t.Error("past-region fault fired")
	}
}

func TestFaultOpcodeTrap(t *testing.T) {
	mod, fi := faultHarness(t)
	// Bit%8 == 7 selects the illegal-encoding manifestation.
	plan := &FaultPlan{Kind: FaultOpcode, Target: 10, Bit: 7}
	_, _, err := runWithFault(t, mod, fi, plan)
	var te *TrapError
	if !errors.As(err, &te) {
		t.Fatalf("want TrapError from opcode fault, got %v", err)
	}
}

func TestFaultDeterminism(t *testing.T) {
	mod, fi := faultHarness(t)
	plan := &FaultPlan{Kind: FaultSourceBit, Target: 33, Bit: 12, Pick: 1}
	_, v1, e1 := runWithFault(t, mod, fi, plan)
	_, v2, e2 := runWithFault(t, mod, fi, plan)
	if (e1 == nil) != (e2 == nil) {
		t.Fatalf("non-deterministic error: %v vs %v", e1, e2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("non-deterministic fault outcome")
		}
	}
}

func TestFlipBitFloatMapping(t *testing.T) {
	// Float strikes follow the FP32 relative-weight mapping: low
	// mantissa bits produce tiny relative errors, the sign bit flips
	// the sign.
	f := &frame{
		fn:   &ir.Func{NumRegs: 1, RegType: []ir.Type{ir.Float}},
		regs: []uint64{f2b(1.5)},
	}
	m := &Machine{fault: faultState{plan: FaultPlan{Bit: 31}}}
	m.flipBit(f, 0)
	if b2f(f.regs[0]) != -1.5 {
		t.Errorf("sign-bit flip: got %g, want -1.5", b2f(f.regs[0]))
	}
	f.regs[0] = f2b(1.5)
	m.fault.plan.Bit = 0 // lowest FP32 mantissa bit → ~6e-8 relative
	m.flipBit(f, 0)
	rel := (b2f(f.regs[0]) - 1.5) / 1.5
	if rel < 0 {
		rel = -rel
	}
	if rel > 1e-6 || rel == 0 {
		t.Errorf("low mantissa flip relative error %g, want tiny but nonzero", rel)
	}
}

func TestRegTagOfClassification(t *testing.T) {
	b := ir.NewBuilder("k", nil, ir.Void)
	v := b.ConstInt(1)
	b.F.Blocks[0].Instrs[0].Tag = ir.TagValue
	a := b.ConstInt(2)
	b.F.Blocks[0].Instrs[1].Tag = ir.TagAddress
	_ = a
	b.Ret(ir.NoReg)
	mod := &ir.Module{Name: "t", Funcs: []*ir.Func{b.F}}
	m := New(mod, Config{TraceFn: -1})
	if got := m.regTagOf(0, v); got != ir.TagValue {
		t.Errorf("value reg tag = %v", got)
	}
	if got := m.regTagOf(0, a); got != ir.TagAddress {
		t.Errorf("address reg tag = %v", got)
	}
}
