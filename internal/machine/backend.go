package machine

import "fmt"

// Backend selects which of the machine's execution engines runs the
// module. All backends are observationally identical — counters,
// cycles, outputs and fault outcomes match bit for bit (the three-way
// golden-counters differential sweep in internal/bench proves it) —
// they differ only in speed:
//
//   - BackendFast: the pre-decoded block interpreter (runFast). The
//     default; ~5-7× the reference.
//   - BackendCompiled: closure-threaded code compiled per basic block
//     from the pre-decoded form, with per-segment batched accounting.
//     The fastest path; campaigns should use it.
//   - BackendReference: the seed per-instruction interpreter (step).
//     The executable spec the other two are differentially tested
//     against.
type Backend uint8

// Backends. BackendAuto is the zero value so an unset field resolves
// to the surrounding default (the pre-decoded interpreter, or the
// program-level backend in core).
const (
	BackendAuto Backend = iota
	BackendFast
	BackendCompiled
	BackendReference
)

func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendFast:
		return "fast"
	case BackendCompiled:
		return "compiled"
	case BackendReference:
		return "reference"
	}
	return fmt.Sprintf("Backend(%d)", uint8(b))
}

// ParseBackend maps the CLI/wire backend names to the enum. The empty
// string and "auto" mean "whatever the surrounding configuration
// defaults to" (BackendAuto).
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "auto":
		return BackendAuto, nil
	case "fast":
		return BackendFast, nil
	case "compiled":
		return BackendCompiled, nil
	case "reference":
		return BackendReference, nil
	}
	return BackendAuto, fmt.Errorf("machine: unknown backend %q (want fast, compiled or reference)", s)
}

// resolve returns the backend a config selects: the legacy Reference
// bool wins (it predates Backend and the differential tests rely on
// it forcing the spec interpreter), then an explicit Backend, then
// the pre-decoded default.
func (cfg *Config) resolveBackend() Backend {
	if cfg.Reference {
		return BackendReference
	}
	if cfg.Backend == BackendAuto {
		return BackendFast
	}
	return cfg.Backend
}
