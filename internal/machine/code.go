package machine

import (
	"sync"

	"rskip/internal/ir"
)

// Code is a module pre-decoded for fast interpretation: every function
// flattened into contiguous decoded-instruction arrays with the
// per-instruction μop weight, the first three register operands, and
// branch targets resolved out of the ir.Instr indirections. A Code is
// immutable once built and safe to share between machines (campaign
// workers build it once per module and pass it through Config.Code).
type Code struct {
	mod *ir.Module
	fns []fcode

	// compiled is the closure-threaded form (compiled.go), built
	// lazily the first time a BackendCompiled machine uses this Code
	// and shared by every such machine afterwards — the batch-campaign
	// "one compiled code object per module".
	compiledOnce sync.Once
	compiled     *ccode
}

// compiledForm returns the closure-threaded form, compiling it on
// first use. Safe for concurrent machines (campaign workers).
func (c *Code) compiledForm() *ccode {
	c.compiledOnce.Do(func() { c.compiled = compileClosures(c) })
	return c.compiled
}

// fcode is one pre-decoded function.
type fcode struct {
	blocks []dblock
}

// dblock is one pre-decoded basic block.
type dblock struct {
	ins []dinstr
	// uops is the total μop weight of the block — the block-boundary
	// hang/cancel checks compare it against the remaining budget to
	// decide whether the block can run without per-instruction checks.
	uops uint64
}

// dinstr is a pre-decoded instruction. The hot fields (op, μop weight,
// tag, up to three register operands, branch targets) are flat; src
// points back at the original ir.Instr for the slow paths that need
// the full operand list (calls, runtime hooks, fault operand picks,
// tracing).
type dinstr struct {
	op    ir.Op
	tag   ir.InstrTag
	n     uint8 // uops(op)
	lat   uint8 // latency(op)
	nargs uint8
	// brk marks instructions after which the fast block loop must
	// return to the outer dispatch: terminators (the block ended) and
	// calls/runtime hooks (the frame stack may have changed or been
	// reallocated).
	brk    bool
	dst    ir.Reg
	a0     ir.Reg
	a1     ir.Reg
	a2     ir.Reg
	imm    int64
	fimm   float64
	b0     int32 // resolved branch target (OpBr, OpCondBr true arm)
	b1     int32 // resolved branch target (OpCondBr false arm)
	callee int32
	src    *ir.Instr
}

// CompileCode pre-decodes a module. The result may be reused for any
// number of machines executing the module; callers that create one
// machine per run (fault campaigns) should build it once and pass it
// via Config.Code so the decode cost is not paid per run.
func CompileCode(mod *ir.Module) *Code {
	c := &Code{mod: mod, fns: make([]fcode, len(mod.Funcs))}
	for fi, fn := range mod.Funcs {
		fc := &c.fns[fi]
		fc.blocks = make([]dblock, len(fn.Blocks))
		// One contiguous array per function keeps the decoded stream
		// cache-dense; block views slice into it.
		total := 0
		for bi := range fn.Blocks {
			total += len(fn.Blocks[bi].Instrs)
		}
		flat := make([]dinstr, 0, total)
		for bi := range fn.Blocks {
			start := len(flat)
			for ii := range fn.Blocks[bi].Instrs {
				flat = append(flat, decode(&fn.Blocks[bi].Instrs[ii]))
			}
			blk := &fc.blocks[bi]
			blk.ins = flat[start:len(flat):len(flat)]
			for k := range blk.ins {
				blk.uops += uint64(blk.ins[k].n)
			}
		}
	}
	return c
}

func decode(in *ir.Instr) dinstr {
	d := dinstr{
		op:     in.Op,
		tag:    in.Tag,
		n:      uint8(uops(in.Op)),
		lat:    uint8(latency(in.Op)),
		nargs:  uint8(len(in.Args)),
		dst:    in.Dst,
		a0:     ir.NoReg,
		a1:     ir.NoReg,
		a2:     ir.NoReg,
		imm:    in.Imm,
		fimm:   in.FImm,
		callee: int32(in.Callee),
		src:    in,
	}
	if !in.Op.HasDst() {
		d.dst = ir.NoReg
	}
	if len(in.Args) > 0 {
		d.a0 = in.Args[0]
	}
	if len(in.Args) > 1 {
		d.a1 = in.Args[1]
	}
	if len(in.Args) > 2 {
		d.a2 = in.Args[2]
	}
	if len(in.Blocks) > 0 {
		d.b0 = int32(in.Blocks[0])
	}
	if len(in.Blocks) > 1 {
		d.b1 = int32(in.Blocks[1])
	}
	switch in.Op {
	case ir.OpBr, ir.OpCondBr, ir.OpRet, ir.OpCall,
		ir.OpRTLoopEnter, ir.OpRTObserve, ir.OpRTLoopExit:
		d.brk = true
	}
	return d
}

// regionFlags materializes the per-block in-region booleans for one
// machine configuration, replacing the RegionBlocks map probe the
// seed interpreter paid on every dynamic instruction.
func (c *Code) regionFlags(cfg *Config) [][]bool {
	if len(cfg.RegionBlocks) == 0 {
		return nil
	}
	flags := make([][]bool, len(c.fns))
	for fi, rb := range cfg.RegionBlocks {
		if fi < 0 || fi >= len(c.fns) || len(rb) == 0 {
			continue
		}
		fb := make([]bool, len(c.fns[fi].blocks))
		for bi, on := range rb {
			if on && bi >= 0 && bi < len(fb) {
				fb[bi] = true
			}
		}
		flags[fi] = fb
	}
	return flags
}
