package machine

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"math"
	"sort"

	"rskip/internal/ir"
)

// Fingerprint returns a deterministic content hash of the pre-decoded
// tables: every dinstr field that affects execution (opcode, tag, μop
// weight, latency, operands, immediates, resolved branch targets,
// callee) plus block μop totals, in function/block/instruction order.
// The src back-pointer is deliberately excluded — it is an address,
// not content. Two Codes with equal fingerprints execute identically,
// which is what the differential build test relies on to prove a
// rebuilt pipeline is bit-identical to a reference build.
func (c *Code) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(len(c.fns)))
	for i := range c.fns {
		c.hashFunc(h, i)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// hashFunc writes the execution-affecting content of one decoded
// function into h, in block/instruction order.
func (c *Code) hashFunc(h hash.Hash, fi int) {
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	fn := &c.fns[fi]
	put(uint64(len(fn.blocks)))
	for bi := range fn.blocks {
		blk := &fn.blocks[bi]
		put(blk.uops)
		put(uint64(len(blk.ins)))
		for k := range blk.ins {
			d := &blk.ins[k]
			put(uint64(d.op))
			put(uint64(d.tag))
			put(uint64(d.n))
			put(uint64(d.lat))
			put(uint64(d.nargs))
			if d.brk {
				put(1)
			} else {
				put(0)
			}
			put(uint64(int64(d.dst)))
			put(uint64(int64(d.a0)))
			put(uint64(int64(d.a1)))
			put(uint64(int64(d.a2)))
			put(uint64(d.imm))
			put(math.Float64bits(d.fimm))
			put(uint64(int64(d.b0)))
			put(uint64(int64(d.b1)))
			put(uint64(int64(d.callee)))
		}
	}
}

// FuncFingerprint hashes one function's decoded content in isolation.
func (c *Code) FuncFingerprint(fi int) string {
	h := sha256.New()
	c.hashFunc(h, fi)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// callees returns the static callee set of one decoded function.
func (c *Code) callees(fi int) []int {
	seen := map[int]bool{}
	fn := &c.fns[fi]
	for bi := range fn.blocks {
		blk := &fn.blocks[bi]
		for k := range blk.ins {
			d := &blk.ins[k]
			if d.op == ir.OpCall && d.callee >= 0 {
				seen[int(d.callee)] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Ints(out)
	return out
}

// RegionFingerprint hashes the full call closure of one function: the
// function itself plus every function statically reachable from it
// through calls, each keyed by index. This is the identity of a
// candidate-loop region for result caching — any edit that can change
// the region's dynamic behavior (its own body or any helper it calls,
// directly or transitively) changes the fingerprint, while edits to
// unrelated functions leave it untouched.
func (c *Code) RegionFingerprint(fi int) string {
	closure := []int{fi}
	seen := map[int]bool{fi: true}
	for i := 0; i < len(closure); i++ {
		for _, ce := range c.callees(closure[i]) {
			if !seen[ce] {
				seen[ce] = true
				closure = append(closure, ce)
			}
		}
	}
	sort.Ints(closure)
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(len(closure)))
	for _, f := range closure {
		put(uint64(f))
		c.hashFunc(h, f)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
