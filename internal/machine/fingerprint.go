package machine

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// Fingerprint returns a deterministic content hash of the pre-decoded
// tables: every dinstr field that affects execution (opcode, tag, μop
// weight, latency, operands, immediates, resolved branch targets,
// callee) plus block μop totals, in function/block/instruction order.
// The src back-pointer is deliberately excluded — it is an address,
// not content. Two Codes with equal fingerprints execute identically,
// which is what the differential build test relies on to prove a
// rebuilt pipeline is bit-identical to a reference build.
func (c *Code) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(len(c.fns)))
	for i := range c.fns {
		fn := &c.fns[i]
		put(uint64(len(fn.blocks)))
		for bi := range fn.blocks {
			blk := &fn.blocks[bi]
			put(blk.uops)
			put(uint64(len(blk.ins)))
			for k := range blk.ins {
				d := &blk.ins[k]
				put(uint64(d.op))
				put(uint64(d.tag))
				put(uint64(d.n))
				put(uint64(d.lat))
				put(uint64(d.nargs))
				if d.brk {
					put(1)
				} else {
					put(0)
				}
				put(uint64(int64(d.dst)))
				put(uint64(int64(d.a0)))
				put(uint64(int64(d.a1)))
				put(uint64(int64(d.a2)))
				put(uint64(d.imm))
				put(math.Float64bits(d.fimm))
				put(uint64(int64(d.b0)))
				put(uint64(int64(d.b1)))
				put(uint64(int64(d.callee)))
			}
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
