package machine

import (
	"math"

	"rskip/internal/ir"
)

// The compiled backend (BackendCompiled) threads each basic block into
// closures: one Go func value per instruction, capturing the decoded
// operands (register indexes, immediates, latency) as locals, so the
// per-instruction dispatch switch and the repeated dinstr field loads
// of the fast interpreter disappear. Two further mechanisms remove the
// per-instruction and per-block bookkeeping that dominates the fast
// interpreter's profile on the short blocks real kernels have:
//
//   - Lazy attribution. Instructions are grouped into *segments* —
//     maximal check-free runs ending at a break instruction
//     (terminator, call, runtime hook). Executing a segment bumps only
//     the counters the machine itself reads mid-run (Dyn for the
//     hang/cancel checks, Region for fault targeting) plus one
//     execution count in segHits; the per-opcode, per-tag and Internal
//     attribution — five adds per instruction on the fast path — is
//     folded in once per Run as Σ hits × precomputed-segment-delta,
//     which is arithmetically the identical total.
//
//   - Trigger thresholds. The fast path's per-block check battery
//     (cancel poll due? budget covers block? fault target inside
//     block? burst in flight?) collapses into two compares against
//     precomputed conservative thresholds: dynTrigger (the earliest
//     Dyn at which the budget, a cancel poll or tracing could matter
//     for *any* block, via the module-wide maximum block weight) and
//     regionTrigger (likewise for the armed fault's target). Until a
//     trigger fires, blocks run check-free; once one fires, the exact
//     per-block logic — kept in lockstep with runBlock — decides, and
//     recomputes the thresholds. Entering the exact path early is
//     always safe: it produces bit-identical counters, cycles and
//     outcomes, just more slowly.
//
// Counter totals, cycles, outputs and fault outcomes are bit-identical
// to the fast and reference backends — the three-way golden sweep in
// internal/bench proves it. (The only deliberate non-contract freedom
// is cancellation polling cadence, which the fast path already hoists
// to block boundaries.)
//
// Closures capture only immutable per-module data, never machine
// state, so one compiled body (Code.compiledForm) is shared by every
// machine — and every pooled campaign replica — running the same Code.

// cop is one compiled instruction.
type cop func(m *Machine, f *frame) error

// opDelta is one opcode's μop contribution to a segment.
type opDelta struct {
	op ir.Op
	n  uint64
}

// cseg is a maximal check-free instruction run: everything up to and
// including the next break instruction.
type cseg struct {
	body  []cop
	start int    // ip of body[0] within the block
	dyn   uint64 // Σ μops — the segment's Dyn delta
	count uint64 // len(body) — the segment's Region delta
	// Lazy-attribution deltas, folded as hits × delta at Run end.
	internalDyn uint64 // dyn when the segment's function is internal, else 0
	tags        [6]uint64
	ops         []opDelta
}

// cblock is one closure-threaded basic block.
type cblock struct {
	segAt []int32 // ip → global index of the segment starting there, else -1
}

// cfunc is one closure-threaded function.
type cfunc struct{ blocks []cblock }

// ccode is the closure-threaded form of a Code. Segments live in one
// flat array so a machine's per-run execution counts (segHits) index
// it directly.
type ccode struct {
	fns      []cfunc
	segs     []cseg
	entrySeg []int32 // per function: first segment of block 0, or -1
	// Module-wide maxima over block μop weight and instruction count,
	// for the conservative trigger thresholds.
	maxBlockUops uint64
	maxBlockIns  uint64
}

// compileClosures threads a pre-decoded module into closures. Two
// passes: the first numbers every segment (so branch targets that
// appear before their block is reached still resolve), the second
// compiles the closure bodies, handing each branch, call and hook its
// statically known successor segment — the frame.nseg hint that lets
// runBlockC dispatch without walking fns→blocks→segAt.
func compileClosures(c *Code) *ccode {
	cc := &ccode{fns: make([]cfunc, len(c.fns))}
	for fi := range c.fns {
		fc := &c.fns[fi]
		internal := c.mod.Funcs[fi].Internal
		cf := &cc.fns[fi]
		cf.blocks = make([]cblock, len(fc.blocks))
		for bi := range fc.blocks {
			blk := &fc.blocks[bi]
			cb := &cf.blocks[bi]
			cb.segAt = make([]int32, len(blk.ins))
			for i := range cb.segAt {
				cb.segAt[i] = -1
			}
			start := 0
			for i := range blk.ins {
				if blk.ins[i].brk {
					cb.segAt[start] = int32(len(cc.segs))
					cc.segs = append(cc.segs, segMeta(blk, start, i+1, internal))
					start = i + 1
				}
			}
			// A well-formed block ends in a terminator (brk), so every
			// instruction is covered; a malformed tail simply keeps
			// segAt == -1 and executes through the per-instruction
			// fallback.
			cc.maxBlockUops = max(cc.maxBlockUops, blk.uops)
			cc.maxBlockIns = max(cc.maxBlockIns, uint64(len(blk.ins)))
		}
	}
	cc.entrySeg = make([]int32, len(cc.fns))
	for fi := range cc.fns {
		cc.entrySeg[fi] = blockEntry(&cc.fns[fi], 0)
	}
	for fi := range c.fns {
		fc := &c.fns[fi]
		cf := &cc.fns[fi]
		for bi := range fc.blocks {
			blk := &fc.blocks[bi]
			cb := &cf.blocks[bi]
			for _, si := range cb.segAt {
				if si < 0 {
					continue
				}
				seg := &cc.segs[si]
				end := seg.start + int(seg.count)
				seg.body = make([]cop, 0, seg.count)
				for i := seg.start; i < end; i++ {
					d := &blk.ins[i]
					n0, n1 := nextHints(cf, cb, d, i)
					seg.body = append(seg.body, compileIns(d, n0, n1))
				}
			}
		}
	}
	return cc
}

// segMeta collects a segment's charge metadata; the closure body is
// filled in by the second compile pass.
func segMeta(blk *dblock, start, end int, internal bool) cseg {
	seg := cseg{
		start: start,
		count: uint64(end - start),
	}
	var ops [ir.NumOps]uint64
	for i := start; i < end; i++ {
		d := &blk.ins[i]
		n := uint64(d.n)
		seg.dyn += n
		seg.tags[d.tag] += n
		ops[d.op] += n
	}
	if internal {
		seg.internalDyn = seg.dyn
	}
	for op, n := range ops {
		if n != 0 {
			seg.ops = append(seg.ops, opDelta{op: ir.Op(op), n: n})
		}
	}
	return seg
}

// blockEntry returns the first segment of a function's block, or -1.
func blockEntry(cf *cfunc, bi int) int32 {
	if bi < 0 || bi >= len(cf.blocks) || len(cf.blocks[bi].segAt) == 0 {
		return -1
	}
	return cf.blocks[bi].segAt[0]
}

// nextHints returns the statically known successor segment(s) for the
// instruction at ip: branch targets' entry segments, or the segment
// following a call/hook in the same block. -1 means unknown.
func nextHints(cf *cfunc, cb *cblock, d *dinstr, ip int) (int32, int32) {
	switch d.op {
	case ir.OpBr:
		return blockEntry(cf, int(d.b0)), -1
	case ir.OpCondBr:
		return blockEntry(cf, int(d.b0)), blockEntry(cf, int(d.b1))
	case ir.OpCall, ir.OpRTLoopEnter, ir.OpRTObserve, ir.OpRTLoopExit:
		if ip+1 < len(cb.segAt) {
			return cb.segAt[ip+1], -1
		}
	}
	return -1, -1
}

// recalcTriggers recomputes the conservative thresholds after any
// event that can change them: machine construction/reset, a cancel
// poll (cancelAt moved), a careful step (fault fired, burst drained).
func (m *Machine) recalcTriggers() {
	const never = ^uint64(0)
	t := never
	if mu := m.ccode.maxBlockUops; m.cfg.MaxInstrs >= mu {
		t = m.cfg.MaxInstrs - mu + 1
	} else {
		t = 0
	}
	if m.cfg.Cancel != nil && m.cancelAt < t {
		t = m.cancelAt
	}
	if m.cfg.Trace != nil || m.fault.skipsLeft > 0 {
		t = 0
	}
	m.dynTrigger = t
	r := never
	if m.fault.armed && !m.fault.fired {
		if mi := m.ccode.maxBlockIns; m.fault.plan.Target >= mi {
			r = m.fault.plan.Target - mi + 1
		} else {
			r = 0
		}
	}
	m.regionTrigger = r
}

// blockInRegion reports whether the frame's current block executes
// inside the detected-loop region.
func (m *Machine) blockInRegion(f *frame) bool {
	if f.inRegion {
		return true
	}
	if m.region != nil {
		if fb := m.region[f.fi]; fb != nil {
			return fb[f.block]
		}
	}
	return false
}

// runCompiled steps closure-threaded blocks until the frame stack
// shrinks to the given depth.
func (m *Machine) runCompiled(depth int) error {
	for len(m.fr) > depth {
		if err := m.runBlockC(); err != nil {
			for len(m.fr) > depth {
				m.popFrame()
			}
			return err
		}
	}
	return nil
}

// runBlockC executes the top frame to the end of its current segment.
// The frame's nseg hint — maintained by pushFrame and the branch,
// call and hook closures, and invalidated whenever any other engine
// moves a frame — is either -1 or exactly the segment starting at the
// frame's current position, so the hot transition needs no
// fns→blocks→segAt pointer chase.
func (m *Machine) runBlockC() error {
	f := &m.fr[len(m.fr)-1]
	if m.C.Dyn >= m.dynTrigger || m.C.Region >= m.regionTrigger {
		return m.runBlockSlow(f)
	}
	if si := f.nseg; si >= 0 {
		return m.runSegAt(f, si)
	}
	cb := &m.ccode.fns[f.fi].blocks[f.block]
	if si := cb.segAt[f.ip]; si >= 0 {
		return m.runSegAt(f, si)
	}
	// Mid-segment resume (careful mode cleared inside a block): finish
	// it through the fast path's per-instruction loop, which charges
	// the identical totals one instruction at a time. The trigger check
	// above proved the rest of the block is safe.
	m.invalidateNseg()
	blk := &m.code.fns[f.fi].blocks[f.block]
	return m.runPlain(f, blk, m.blockInRegion(f))
}

// invalidateNseg clears every live frame's next-segment hint. Called
// before handing frames to an engine that does not maintain the hints
// (stepCareful, runPlain): a frame they move would otherwise carry a
// stale hint back into the closure dispatch.
func (m *Machine) invalidateNseg() {
	for i := range m.fr {
		m.fr[i].nseg = -1
	}
}

// runBlockSlow is the exact block-entry path, taken while a trigger
// threshold is met. Its checks are kept in lockstep with runBlock
// (fastexec.go) — any divergence breaks the bit-identity contract.
func (m *Machine) runBlockSlow(f *frame) error {
	blk := &m.code.fns[f.fi].blocks[f.block]
	inRegion := m.blockInRegion(f)
	if m.cfg.Cancel != nil && m.C.Dyn >= m.cancelAt {
		m.cancelAt = m.C.Dyn + cancelPollInterval
		if m.cancelled() {
			return &CancelError{}
		}
	}
	careful := m.cfg.Trace != nil ||
		m.C.Dyn+blk.uops > m.cfg.MaxInstrs ||
		m.fault.skipsLeft > 0
	if !careful && m.fault.armed && !m.fault.fired && inRegion &&
		m.C.Region+uint64(len(blk.ins)-f.ip) > m.fault.plan.Target {
		careful = true
	}
	if careful {
		m.invalidateNseg()
		err := m.stepCareful(f, blk, inRegion)
		m.recalcTriggers()
		return err
	}
	m.recalcTriggers()
	if si := m.ccode.fns[f.fi].blocks[f.block].segAt[f.ip]; si >= 0 {
		return m.runSegAt(f, si)
	}
	m.invalidateNseg()
	return m.runPlain(f, blk, inRegion)
}

// runSegAt executes one whole segment: charge, then the closure run.
func (m *Machine) runSegAt(f *frame, si int32) error {
	seg := &m.ccode.segs[si]
	m.C.Dyn += seg.dyn
	if m.blockInRegion(f) {
		m.C.Region += seg.count
	}
	m.segHits[si]++
	body := seg.body
	last := len(body) - 1
	for i := 0; i < last; i++ {
		if err := body[i](m, f); err != nil {
			m.unwindSegCharge(f, seg, si, i)
			f.ip = seg.start + i + 1
			f.nseg = -1
			return err
		}
	}
	f.ip = seg.start + last + 1
	return body[last](m, f)
	// If the final (break) instruction errors, the full-segment charge
	// stands: every instruction was charged and executed, the last one
	// trapping after its charge — the reference's order.
}

// unwindSegCharge replaces the whole-segment charge with the exact
// charge for the executed prefix after instruction erroring (0-based)
// erred: the erroring instruction keeps its charge (the reference
// charges before executing), the unexecuted tail loses its.
func (m *Machine) unwindSegCharge(f *frame, seg *cseg, si int32, erroring int) {
	m.segHits[si]--
	m.C.Dyn -= seg.dyn
	inRegion := m.blockInRegion(f)
	if inRegion {
		m.C.Region -= seg.count
	}
	blk := &m.code.fns[f.fi].blocks[f.block]
	internal := f.fn.Internal
	for k := 0; k <= erroring; k++ {
		d := &blk.ins[seg.start+k]
		n := uint64(d.n)
		m.C.Dyn += n
		m.C.ops[d.op] += n
		m.C.ByTag[d.tag] += n
		if inRegion {
			m.C.Region++
		}
		if internal {
			m.C.Internal += n
		}
	}
}

// foldSegCounters folds the lazy per-segment execution counts into the
// counter struct — hits × precomputed delta lands on the identical
// totals the fast path accumulates per instruction — and clears them
// for the next run. Called once per top-level Run, so Counters is
// fully consistent whenever a caller can observe it.
func (m *Machine) foldSegCounters() {
	for si := range m.segHits {
		h := m.segHits[si]
		if h == 0 {
			continue
		}
		m.segHits[si] = 0
		seg := &m.ccode.segs[si]
		m.C.Internal += h * seg.internalDyn
		for t, n := range seg.tags {
			if n != 0 {
				m.C.ByTag[t] += h * n
			}
		}
		for _, od := range seg.ops {
			m.C.ops[od.op] += h * od.n
		}
	}
}

// pureOp reports ops with no side effects beyond their destination
// write: when the destination is NoReg these compile to an issue-only
// closure. Trapping ops (Div, Rem, FToI), memory ops and control flow
// are excluded — they keep their effects even without a destination.
func pureOp(op ir.Op) bool {
	switch op {
	case ir.OpConstInt, ir.OpConstFloat, ir.OpMov,
		ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr, ir.OpNeg,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFNeg,
		ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe,
		ir.OpFEq, ir.OpFNe, ir.OpFLt, ir.OpFLe, ir.OpFGt, ir.OpFGe,
		ir.OpIToF, ir.OpSqrt, ir.OpExp, ir.OpLog, ir.OpFAbs,
		ir.OpPow, ir.OpFloor, ir.OpFMin, ir.OpFMax, ir.OpVote3:
		return true
	}
	return false
}

func issue0(lat uint64) cop {
	return func(m *Machine, f *frame) error {
		m.pl.issue(0, lat)
		return nil
	}
}

func issue1(a0 ir.Reg, lat uint64) cop {
	return func(m *Machine, f *frame) error {
		m.pl.issue(f.ready[a0], lat)
		return nil
	}
}

func issue2(a0, a1 ir.Reg, lat uint64) cop {
	return func(m *Machine, f *frame) error {
		m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
		return nil
	}
}

func issue3(a0, a1, a2 ir.Reg, lat uint64) cop {
	return func(m *Machine, f *frame) error {
		m.pl.issue(max(f.ready[a0], f.ready[a1], f.ready[a2]), lat)
		return nil
	}
}

// compileIns compiles one pre-decoded instruction to a closure. Every
// case mirrors execD (fastexec.go) exactly: the timing-model issue
// happens first with the same operand-ready cycle, then the operation,
// in the identical order — cycles and traps stay bit-identical. n0/n1
// are the nextHints successor segments for branches, calls and hooks.
func compileIns(d *dinstr, n0, n1 int32) cop {
	dst, a0, a1, a2 := d.dst, d.a0, d.a1, d.a2
	lat := uint64(d.lat)

	if dst == ir.NoReg && pureOp(d.op) {
		switch d.nargs {
		case 0:
			return issue0(lat)
		case 1:
			return issue1(a0, lat)
		case 2:
			return issue2(a0, a1, lat)
		case 3:
			return issue3(a0, a1, a2, lat)
		}
	}

	switch d.op {
	case ir.OpConstInt:
		bits := uint64(d.imm)
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(0, lat)
			f.regs[dst] = bits
			f.ready[dst] = done
			return nil
		}
	case ir.OpConstFloat:
		bits := f2b(d.fimm)
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(0, lat)
			f.regs[dst] = bits
			f.ready[dst] = done
			return nil
		}
	case ir.OpMov:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(f.ready[a0], lat)
			f.regs[dst] = f.regs[a0]
			f.ready[dst] = done
			return nil
		}

	case ir.OpAdd:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = uint64(int64(f.regs[a0]) + int64(f.regs[a1]))
			f.ready[dst] = done
			return nil
		}
	case ir.OpSub:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = uint64(int64(f.regs[a0]) - int64(f.regs[a1]))
			f.ready[dst] = done
			return nil
		}
	case ir.OpMul:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = uint64(int64(f.regs[a0]) * int64(f.regs[a1]))
			f.ready[dst] = done
			return nil
		}
	case ir.OpDiv:
		if dst == ir.NoReg {
			return func(m *Machine, f *frame) error {
				m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
				if int64(f.regs[a1]) == 0 {
					return &TrapError{Reason: "integer divide by zero"}
				}
				return nil
			}
		}
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			dv := int64(f.regs[a1])
			if dv == 0 {
				return &TrapError{Reason: "integer divide by zero"}
			}
			f.regs[dst] = uint64(int64(f.regs[a0]) / dv)
			f.ready[dst] = done
			return nil
		}
	case ir.OpRem:
		if dst == ir.NoReg {
			return func(m *Machine, f *frame) error {
				m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
				if int64(f.regs[a1]) == 0 {
					return &TrapError{Reason: "integer remainder by zero"}
				}
				return nil
			}
		}
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			dv := int64(f.regs[a1])
			if dv == 0 {
				return &TrapError{Reason: "integer remainder by zero"}
			}
			f.regs[dst] = uint64(int64(f.regs[a0]) % dv)
			f.ready[dst] = done
			return nil
		}
	case ir.OpAnd:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = f.regs[a0] & f.regs[a1]
			f.ready[dst] = done
			return nil
		}
	case ir.OpOr:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = f.regs[a0] | f.regs[a1]
			f.ready[dst] = done
			return nil
		}
	case ir.OpXor:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = f.regs[a0] ^ f.regs[a1]
			f.ready[dst] = done
			return nil
		}
	case ir.OpShl:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = f.regs[a0] << (f.regs[a1] & 63)
			f.ready[dst] = done
			return nil
		}
	case ir.OpShr:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = f.regs[a0] >> (f.regs[a1] & 63)
			f.ready[dst] = done
			return nil
		}
	case ir.OpNeg:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(f.ready[a0], lat)
			f.regs[dst] = uint64(-int64(f.regs[a0]))
			f.ready[dst] = done
			return nil
		}

	case ir.OpFAdd:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = f2b(b2f(f.regs[a0]) + b2f(f.regs[a1]))
			f.ready[dst] = done
			return nil
		}
	case ir.OpFSub:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = f2b(b2f(f.regs[a0]) - b2f(f.regs[a1]))
			f.ready[dst] = done
			return nil
		}
	case ir.OpFMul:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = f2b(b2f(f.regs[a0]) * b2f(f.regs[a1]))
			f.ready[dst] = done
			return nil
		}
	case ir.OpFDiv:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = f2b(b2f(f.regs[a0]) / b2f(f.regs[a1]))
			f.ready[dst] = done
			return nil
		}
	case ir.OpFNeg:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(f.ready[a0], lat)
			f.regs[dst] = f2b(-b2f(f.regs[a0]))
			f.ready[dst] = done
			return nil
		}

	case ir.OpEq:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = boolBits(int64(f.regs[a0]) == int64(f.regs[a1]))
			f.ready[dst] = done
			return nil
		}
	case ir.OpNe:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = boolBits(int64(f.regs[a0]) != int64(f.regs[a1]))
			f.ready[dst] = done
			return nil
		}
	case ir.OpLt:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = boolBits(int64(f.regs[a0]) < int64(f.regs[a1]))
			f.ready[dst] = done
			return nil
		}
	case ir.OpLe:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = boolBits(int64(f.regs[a0]) <= int64(f.regs[a1]))
			f.ready[dst] = done
			return nil
		}
	case ir.OpGt:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = boolBits(int64(f.regs[a0]) > int64(f.regs[a1]))
			f.ready[dst] = done
			return nil
		}
	case ir.OpGe:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = boolBits(int64(f.regs[a0]) >= int64(f.regs[a1]))
			f.ready[dst] = done
			return nil
		}
	case ir.OpFEq:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = boolBits(b2f(f.regs[a0]) == b2f(f.regs[a1]))
			f.ready[dst] = done
			return nil
		}
	case ir.OpFNe:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = boolBits(b2f(f.regs[a0]) != b2f(f.regs[a1]))
			f.ready[dst] = done
			return nil
		}
	case ir.OpFLt:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = boolBits(b2f(f.regs[a0]) < b2f(f.regs[a1]))
			f.ready[dst] = done
			return nil
		}
	case ir.OpFLe:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = boolBits(b2f(f.regs[a0]) <= b2f(f.regs[a1]))
			f.ready[dst] = done
			return nil
		}
	case ir.OpFGt:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = boolBits(b2f(f.regs[a0]) > b2f(f.regs[a1]))
			f.ready[dst] = done
			return nil
		}
	case ir.OpFGe:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = boolBits(b2f(f.regs[a0]) >= b2f(f.regs[a1]))
			f.ready[dst] = done
			return nil
		}

	case ir.OpIToF:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(f.ready[a0], lat)
			f.regs[dst] = f2b(float64(int64(f.regs[a0])))
			f.ready[dst] = done
			return nil
		}
	case ir.OpFToI:
		if dst == ir.NoReg {
			return func(m *Machine, f *frame) error {
				m.pl.issue(f.ready[a0], lat)
				v := b2f(f.regs[a0])
				if math.IsNaN(v) || v > math.MaxInt64 || v < math.MinInt64 {
					return &TrapError{Reason: "float to int conversion out of range"}
				}
				return nil
			}
		}
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(f.ready[a0], lat)
			v := b2f(f.regs[a0])
			if math.IsNaN(v) || v > math.MaxInt64 || v < math.MinInt64 {
				return &TrapError{Reason: "float to int conversion out of range"}
			}
			f.regs[dst] = uint64(int64(v))
			f.ready[dst] = done
			return nil
		}

	case ir.OpLoad:
		if dst == ir.NoReg {
			return func(m *Machine, f *frame) error {
				m.pl.issue(f.ready[a0], lat)
				addr := int64(f.regs[a0])
				if !(m.overrideActive && addr == m.overrideAddr) {
					if _, err := m.Mem.LoadWord(addr); err != nil {
						return err
					}
				}
				return nil
			}
		}
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(f.ready[a0], lat)
			addr := int64(f.regs[a0])
			var w uint64
			if m.overrideActive && addr == m.overrideAddr {
				w = m.overrideVal
			} else {
				var err error
				w, err = m.Mem.LoadWord(addr)
				if err != nil {
					return err
				}
			}
			f.regs[dst] = w
			f.ready[dst] = done
			return nil
		}
	case ir.OpStore:
		return func(m *Machine, f *frame) error {
			m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			return m.Mem.StoreWord(int64(f.regs[a0]), f.regs[a1])
		}
	case ir.OpAlloca:
		size := d.imm
		if dst == ir.NoReg {
			return func(m *Machine, f *frame) error {
				m.pl.issue(0, lat)
				_, err := m.Mem.pushStack(size)
				return err
			}
		}
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(0, lat)
			base, err := m.Mem.pushStack(size)
			if err != nil {
				return err
			}
			f.regs[dst] = uint64(base)
			f.ready[dst] = done
			return nil
		}

	case ir.OpSqrt:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(f.ready[a0], lat)
			f.regs[dst] = f2b(math.Sqrt(b2f(f.regs[a0])))
			f.ready[dst] = done
			return nil
		}
	case ir.OpExp:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(f.ready[a0], lat)
			f.regs[dst] = f2b(math.Exp(b2f(f.regs[a0])))
			f.ready[dst] = done
			return nil
		}
	case ir.OpLog:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(f.ready[a0], lat)
			f.regs[dst] = f2b(math.Log(b2f(f.regs[a0])))
			f.ready[dst] = done
			return nil
		}
	case ir.OpFAbs:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(f.ready[a0], lat)
			f.regs[dst] = f2b(math.Abs(b2f(f.regs[a0])))
			f.ready[dst] = done
			return nil
		}
	case ir.OpPow:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = f2b(math.Pow(b2f(f.regs[a0]), b2f(f.regs[a1])))
			f.ready[dst] = done
			return nil
		}
	case ir.OpFloor:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(f.ready[a0], lat)
			f.regs[dst] = f2b(math.Floor(b2f(f.regs[a0])))
			f.ready[dst] = done
			return nil
		}
	case ir.OpFMin:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = f2b(math.Min(b2f(f.regs[a0]), b2f(f.regs[a1])))
			f.ready[dst] = done
			return nil
		}
	case ir.OpFMax:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			f.regs[dst] = f2b(math.Max(b2f(f.regs[a0]), b2f(f.regs[a1])))
			f.ready[dst] = done
			return nil
		}

	case ir.OpBr:
		b0 := int(d.b0)
		return func(m *Machine, f *frame) error {
			m.pl.issue(0, lat)
			f.block = b0
			f.ip = 0
			f.nseg = n0
			return nil
		}
	case ir.OpCondBr:
		b0, b1 := int(d.b0), int(d.b1)
		return func(m *Machine, f *frame) error {
			m.pl.issue(f.ready[a0], lat)
			if f.regs[a0] != 0 {
				f.block = b0
				f.nseg = n0
			} else {
				f.block = b1
				f.nseg = n1
			}
			f.ip = 0
			return nil
		}
	case ir.OpRet:
		hasArg := d.nargs == 1
		return func(m *Machine, f *frame) error {
			var rdy uint64
			if hasArg {
				rdy = f.ready[a0]
			}
			done := m.pl.issue(rdy, lat)
			var ret uint64
			if hasArg {
				ret = f.regs[a0]
			}
			retDst := f.retDst
			if f.savedArgs != nil {
				m.cfg.CallTracer(f.savedArgs, ret)
			}
			m.popFrame()
			m.lastRet = ret
			if retDst != ir.NoReg && len(m.fr) > 0 {
				caller := &m.fr[len(m.fr)-1]
				caller.regs[retDst] = ret
				caller.ready[retDst] = done
			}
			return nil
		}
	case ir.OpCall:
		srcArgs := d.src.Args
		callee := int(d.callee)
		return func(m *Machine, f *frame) error {
			var r uint64
			for _, a := range srcArgs {
				if f.ready[a] > r {
					r = f.ready[a]
				}
			}
			m.pl.issue(r, lat)
			args := make([]uint64, len(srcArgs))
			for i, a := range srcArgs {
				args[i] = f.regs[a]
			}
			// The caller resumes at the segment after the call; record it
			// before pushFrame, which may grow m.fr and move the frame.
			f.nseg = n0
			return m.pushFrame(callee, args, dst)
		}

	case ir.OpCheck2:
		return func(m *Machine, f *frame) error {
			m.pl.issue(max(f.ready[a0], f.ready[a1]), lat)
			if f.regs[a0] != f.regs[a1] {
				return &DetectError{Func: f.fn.Name}
			}
			return nil
		}
	case ir.OpVote3:
		return func(m *Machine, f *frame) error {
			done := m.pl.issue(max(f.ready[a0], f.ready[a1], f.ready[a2]), lat)
			a, b, c := f.regs[a0], f.regs[a1], f.regs[a2]
			maj := a
			switch {
			case a == b || a == c:
				maj = a
			case b == c:
				maj = b
			}
			f.regs[dst] = maj
			f.ready[dst] = done
			return nil
		}

	case ir.OpRTLoopEnter:
		srcArgs := d.src.Args
		id := int(d.imm)
		return func(m *Machine, f *frame) error {
			var r uint64
			for _, a := range srcArgs {
				if f.ready[a] > r {
					r = f.ready[a]
				}
			}
			m.pl.issue(r, lat)
			f.nseg = n0
			if m.cfg.Hooks != nil {
				inv := make([]uint64, len(srcArgs))
				for i, a := range srcArgs {
					inv[i] = f.regs[a]
				}
				m.hookOp = ir.OpRTLoopEnter
				return m.cfg.Hooks.LoopEnter(m, id, inv)
			}
			return nil
		}
	case ir.OpRTObserve:
		id := int(d.imm)
		return func(m *Machine, f *frame) error {
			m.pl.issue(max(f.ready[a0], f.ready[a1], f.ready[a2]), lat)
			f.nseg = n0
			if m.cfg.Hooks != nil {
				m.hookOp = ir.OpRTObserve
				return m.cfg.Hooks.Observe(m, id,
					int64(f.regs[a0]), f.regs[a1], int64(f.regs[a2]))
			}
			return nil
		}
	case ir.OpRTLoopExit:
		id := int(d.imm)
		return func(m *Machine, f *frame) error {
			m.pl.issue(0, lat)
			f.nseg = n0
			if m.cfg.Hooks != nil {
				m.hookOp = ir.OpRTLoopExit
				return m.cfg.Hooks.LoopExit(m, id)
			}
			return nil
		}
	}

	// Unknown opcode: issue with the generic operand-ready cycle, then
	// trap — the reference's charge-then-trap order.
	msg := "illegal instruction " + d.op.String()
	srcArgs := d.src.Args
	return func(m *Machine, f *frame) error {
		var r uint64
		for _, a := range srcArgs {
			if f.ready[a] > r {
				r = f.ready[a]
			}
		}
		m.pl.issue(r, lat)
		return &TrapError{Reason: msg}
	}
}
