package machine

import (
	"testing"

	"rskip/internal/ir"
)

// buildZeroRegCallee returns a module whose function 1 has no
// registers at all: a void helper that only returns. Real modules grow
// such functions from outlining (a recompute slice whose body was
// entirely hoisted); the fault injector must survive striking the
// register file of a frame with nothing to strike.
func buildZeroRegCallee(t *testing.T) *ir.Module {
	t.Helper()
	kb := ir.NewBuilder("kern", nil, ir.Int)
	kb.Call(1, ir.Void)
	kb.Ret(kb.ConstInt(0))

	zb := ir.NewBuilder("empty", nil, ir.Void)
	zb.Ret(ir.NoReg)
	if zb.F.NumRegs != 0 {
		t.Fatalf("helper has %d registers, want 0", zb.F.NumRegs)
	}

	mod := &ir.Module{Name: "zeroreg", Funcs: []*ir.Func{kb.F, zb.F}}
	if err := ir.Verify(mod); err != nil {
		t.Fatal(err)
	}
	return mod
}

// A FaultRegFile strike while a zero-register function executes used
// to panic with an integer divide by zero (Pick % NumRegs); it must
// instead count as fired-but-masked — the strike had no register to
// land on.
func TestFaultRegFileZeroRegisterFunction(t *testing.T) {
	for _, ref := range []bool{false, true} {
		mod := buildZeroRegCallee(t)
		m := New(mod, Config{
			TraceFn:     -1,
			Reference:   ref,
			RegionFuncs: map[int]bool{1: true},
			Fault:       &FaultPlan{Kind: FaultRegFile, Target: 0, Bit: 3, Pick: 7},
		})
		res, err := m.Run(0, nil)
		if err != nil {
			t.Fatalf("reference=%v: %v", ref, err)
		}
		if !m.FaultFired() {
			t.Errorf("reference=%v: fault did not fire", ref)
		}
		if res.Ret != 0 {
			t.Errorf("reference=%v: ret = %d, want 0", ref, res.Ret)
		}
	}
}

type chargingHooks struct{ cost Cost }

func (h *chargingHooks) LoopEnter(m *Machine, id int, inv []uint64) error {
	m.Charge(h.cost)
	return nil
}
func (h *chargingHooks) Observe(m *Machine, id int, iter int64, value uint64, addr int64) error {
	return nil
}
func (h *chargingHooks) LoopExit(m *Machine, id int) error { return nil }

// Runtime-hook charges must land in the per-opcode histogram, not just
// Dyn/Runtime/ByTag: the accounting invariant is OpTotal() == Dyn, so
// the opcode breakdown reconciles without out-of-band knowledge. The
// seed accounting dropped charges from the histogram, leaving OpTotal
// short of Dyn by exactly Runtime.
func TestChargeOpcodeAttribution(t *testing.T) {
	b := ir.NewBuilder("kern", nil, ir.Int)
	x := b.ConstInt(2)
	y := b.Binop(ir.OpAdd, ir.Int, x, x)
	b.Raw(ir.Instr{Op: ir.OpRTLoopEnter, Imm: 9})
	b.Ret(y)
	mod := &ir.Module{Name: "charge", Funcs: []*ir.Func{b.F}}
	if err := ir.Verify(mod); err != nil {
		t.Fatal(err)
	}

	for _, ref := range []bool{false, true} {
		m := New(mod, Config{
			TraceFn:   -1,
			Reference: ref,
			Hooks:     &chargingHooks{cost: Cost{IntOps: 4, MemOps: 2, Branches: 1}},
		})
		res, err := m.Run(0, nil)
		if err != nil {
			t.Fatalf("reference=%v: %v", ref, err)
		}
		c := &res.Counter
		if c.Runtime != 7 {
			t.Fatalf("reference=%v: Runtime = %d, want 7", ref, c.Runtime)
		}
		if got := c.OpCount(ir.OpRTLoopEnter); got != 7 {
			t.Errorf("reference=%v: hook opcode row = %d, want the 7 charged instructions", ref, got)
		}
		if c.OpTotal() != c.Dyn {
			t.Errorf("reference=%v: OpTotal = %d, Dyn = %d; histogram does not reconcile",
				ref, c.OpTotal(), c.Dyn)
		}
	}
}
