package httpx

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSleeper records requested delays instead of waiting — the fake
// clock that makes the retry schedule assertable.
type fakeSleeper struct {
	delays []time.Duration
}

func (f *fakeSleeper) sleep(ctx context.Context, d time.Duration) error {
	f.delays = append(f.delays, d)
	return ctx.Err()
}

// noJitter pins the jitter draw to the distribution center so delays
// are exact.
func noJitter() float64 { return 0.5 }

func TestBackoffDelayGrowsAndCaps(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for attempt, w := range want {
		if got := b.Delay(attempt, noJitter); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: time.Second, Max: time.Minute, Jitter: 0.2}
	lo := b.Delay(0, func() float64 { return 0 })
	hi := b.Delay(0, func() float64 { return 0.999999 })
	if lo >= hi {
		t.Fatalf("jitter produced no spread: lo %v, hi %v", lo, hi)
	}
	if lo < 900*time.Millisecond || hi > 1100*time.Millisecond {
		t.Fatalf("jitter outside ±10%%: lo %v, hi %v", lo, hi)
	}
}

func TestPostJSONRetriesTransientStatuses(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()

	fs := &fakeSleeper{}
	c := &Client{Retries: 4, Sleep: fs.sleep, Rand: noJitter,
		Backoff: Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2}}
	var out struct {
		OK bool `json:"ok"`
	}
	status, _, err := c.PostJSON(context.Background(), srv.URL, map[string]int{"x": 1}, &out)
	if err != nil || status != 200 || !out.OK {
		t.Fatalf("PostJSON = %d, %+v, %v", status, out, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	// The two retries backed off exponentially from the fake clock's
	// point of view.
	if len(fs.delays) != 2 || fs.delays[0] != 100*time.Millisecond || fs.delays[1] != 200*time.Millisecond {
		t.Fatalf("delays = %v, want [100ms 200ms]", fs.delays)
	}
}

func TestPostJSONHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	fs := &fakeSleeper{}
	c := &Client{Sleep: fs.sleep, Rand: noJitter,
		Backoff: Backoff{Base: 10 * time.Millisecond}}
	status, _, err := c.PostJSON(context.Background(), srv.URL, nil, nil)
	if err != nil || status != 200 {
		t.Fatalf("PostJSON = %d, %v", status, err)
	}
	// Retry-After overrides the computed backoff.
	if len(fs.delays) != 1 || fs.delays[0] != 3*time.Second {
		t.Fatalf("delays = %v, want [3s]", fs.delays)
	}
}

func TestPostJSONDoesNotRetryCallerErrors(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusConflict)
		w.Write([]byte(`{"error":{"code":"lease_lost"}}`))
	}))
	defer srv.Close()

	fs := &fakeSleeper{}
	c := &Client{Sleep: fs.sleep, Rand: noJitter}
	status, body, err := c.PostJSON(context.Background(), srv.URL, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusConflict || !strings.Contains(string(body), "lease_lost") {
		t.Fatalf("status %d body %q", status, body)
	}
	if calls.Load() != 1 || len(fs.delays) != 0 {
		t.Fatalf("409 was retried: %d calls, delays %v", calls.Load(), fs.delays)
	}
}

func TestPostJSONGivesUpAfterRetries(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadGateway)
	}))
	defer srv.Close()

	fs := &fakeSleeper{}
	c := &Client{Retries: 2, Sleep: fs.sleep, Rand: noJitter,
		Backoff: Backoff{Base: time.Millisecond}}
	status, _, err := c.PostJSON(context.Background(), srv.URL, nil, nil)
	// Exhausting retries on a retryable status surfaces the status, so
	// protocol-aware callers still see what the server last said.
	if err != nil || status != http.StatusBadGateway {
		t.Fatalf("PostJSON = %d, %v; want 502, nil", status, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 + 2 retries)", calls.Load())
	}
}

func TestPostJSONRetriesTransportErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // every dial now fails

	fs := &fakeSleeper{}
	c := &Client{Retries: 2, Sleep: fs.sleep, Rand: noJitter,
		Backoff: Backoff{Base: time.Millisecond}}
	if _, _, err := c.PostJSON(context.Background(), srv.URL, nil, nil); err == nil {
		t.Fatal("PostJSON succeeded against a closed server")
	}
	if len(fs.delays) != 2 {
		t.Fatalf("delays = %v, want 2 transport-error retries", fs.delays)
	}
}
