// Package httpx is the shared HTTP client plumbing for talking to an
// rskipd daemon: JSON POSTs with bounded retries, exponential backoff
// with jitter, and Retry-After awareness. Both the fabric worker loop
// and scripts' curl-replacement paths go through one implementation
// so retry behavior cannot drift between callers.
package httpx

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Backoff shapes the retry delay sequence: Base·Factor^attempt capped
// at Max, with a ±Jitter fraction of randomization so a fleet of
// workers retrying against one coordinator does not thunder in step.
type Backoff struct {
	Base   time.Duration // first delay (default 100ms)
	Max    time.Duration // delay cap (default 5s)
	Factor float64       // growth per attempt (default 2)
	Jitter float64       // randomized fraction of the delay, 0..1 (default 0.2)
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Factor <= 1 {
		b.Factor = 2
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = 0.2
	}
	return b
}

// Delay computes the delay before retry attempt (0-based), using rnd
// in [0, 1) for jitter. The jitter is centered: delay·(1 ± Jitter/2).
func (b Backoff) Delay(attempt int, rnd func() float64) time.Duration {
	b = b.withDefaults()
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 && rnd != nil {
		d *= 1 + b.Jitter*(rnd()-0.5)
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	return time.Duration(d)
}

// Client posts JSON with retries. The zero value is usable.
type Client struct {
	// HTTP is the underlying client (default http.DefaultClient).
	HTTP *http.Client
	// Retries is the number of re-attempts after the first try
	// (default 4). Only transport errors and 429/502/503/504 retry;
	// other statuses are the server speaking, not the network failing.
	Retries int
	// Backoff shapes the delays between attempts. A Retry-After header
	// on a retryable response overrides the computed delay.
	Backoff Backoff
	// Sleep waits between attempts (default: timer + ctx). Injectable
	// so tests drive the retry loop with a fake clock.
	Sleep func(ctx context.Context, d time.Duration) error
	// Rand supplies jitter in [0, 1) (default math/rand).
	Rand func() float64
	// Now anchors Retry-After HTTP-date parsing (default time.Now).
	Now func() time.Time
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 4
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if c.Sleep != nil {
		return c.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryableStatus reports statuses that signal transient server or
// proxy pressure rather than a caller error.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryAfter parses a Retry-After header: delta-seconds or an
// HTTP-date. ok is false when absent or unparseable.
func (c *Client) retryAfter(h http.Header) (time.Duration, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(v); err == nil {
		now := time.Now
		if c.Now != nil {
			now = c.Now
		}
		if d := at.Sub(now()); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// PostJSON posts in as JSON and decodes a 2xx response body into out
// (skipped when out is nil). It returns the final attempt's status
// code; non-2xx statuses are not errors here — protocol handlers
// (409 lease_lost, 410 gone) inspect the code. The body of a non-2xx
// response is returned so callers can surface the server's error.
func (c *Client) PostJSON(ctx context.Context, url string, in, out any) (status int, body []byte, err error) {
	payload, err := json.Marshal(in)
	if err != nil {
		return 0, nil, fmt.Errorf("httpx: encoding request: %w", err)
	}
	rnd := c.Rand
	if rnd == nil {
		rnd = rand.Float64
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
		if err != nil {
			return 0, nil, fmt.Errorf("httpx: building request: %w", err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.http().Do(req)
		var delay time.Duration
		switch {
		case err != nil:
			lastErr = err
			delay = c.Backoff.Delay(attempt, rnd)
		case retryableStatus(resp.StatusCode):
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			lastErr = fmt.Errorf("httpx: %s returned %d", url, resp.StatusCode)
			if ra, ok := c.retryAfter(resp.Header); ok {
				delay = ra
			} else {
				delay = c.Backoff.Delay(attempt, rnd)
			}
			if attempt >= c.retries() {
				return resp.StatusCode, b, nil
			}
		default:
			b, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
			resp.Body.Close()
			if rerr != nil {
				return resp.StatusCode, nil, fmt.Errorf("httpx: reading response: %w", rerr)
			}
			if resp.StatusCode/100 == 2 && out != nil && len(b) > 0 {
				if err := json.Unmarshal(b, out); err != nil {
					return resp.StatusCode, b, fmt.Errorf("httpx: decoding response: %w", err)
				}
			}
			return resp.StatusCode, b, nil
		}
		if attempt >= c.retries() {
			return 0, nil, fmt.Errorf("httpx: %s failed after %d attempts: %w", url, attempt+1, lastErr)
		}
		if err := c.sleep(ctx, delay); err != nil {
			return 0, nil, err
		}
	}
}
