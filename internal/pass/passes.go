package pass

import (
	"rskip/internal/ir"
	"rskip/internal/transform"
)

// The builtin passes mirror the paper's pipeline stages, and the
// builtin schemes are the protection configurations the experiments
// compare. core.BuildContext runs these same pipelines; cmd/rskipc
// exposes them as -passes text.
func init() {
	Register(Pass{Name: "optimize", Run: func(pc *Context, m *ir.Module) error {
		transform.Optimize(m)
		return nil
	}})
	Register(Pass{Name: "swift", Run: func(pc *Context, m *ir.Module) error {
		transform.ApplySWIFT(m)
		return nil
	}})
	Register(Pass{Name: "swiftr", Run: func(pc *Context, m *ir.Module) error {
		transform.ApplySWIFTR(m)
		return nil
	}})
	Register(Pass{Name: "rskip", Run: func(pc *Context, m *ir.Module) error {
		return transform.RSkipInPlace(m, pc.Opt, pc.AM)
	}})
	Register(Pass{Name: "swiftrhard", Run: func(pc *Context, m *ir.Module) error {
		transform.ApplySWIFTRHard(m)
		return nil
	}})
	Register(Pass{Name: "cfc", Run: func(pc *Context, m *ir.Module) error {
		transform.ApplyCFC(m)
		return nil
	}})
	Register(Pass{Name: "verify", Preserves: true, Run: func(pc *Context, m *ir.Module) error {
		return ir.Verify(m)
	}})

	RegisterScheme("unsafe")
	RegisterScheme("swift", "swift")
	RegisterScheme("swiftr", "swiftr")
	RegisterScheme("rskip", "rskip")
	// The hardened variant always carries CFC: skipped terminators are
	// the one hole register-level hardening cannot see.
	RegisterScheme("swiftrhard", "swiftrhard", "cfc")
}
