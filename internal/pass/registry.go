package pass

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The registries: passes by name, and schemes as named pass lists.
// Registration happens at init time (builtins below) but stays open —
// tests and tools can add passes; later registrations of an existing
// name replace it.
var (
	regMu   sync.RWMutex
	passes  = map[string]Pass{}
	schemes = map[string][]string{}
)

// Register adds a pass under its name.
func Register(p Pass) {
	if p.Name == "" || p.Run == nil {
		panic("pass: Register needs a name and a Run function")
	}
	regMu.Lock()
	defer regMu.Unlock()
	passes[p.Name] = p
}

// Lookup finds a registered pass.
func Lookup(name string) (Pass, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := passes[name]
	return p, ok
}

// Names lists registered pass names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(passes))
	for n := range passes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Parse resolves a comma-separated pipeline spec such as
// "optimize,swift,cfc" into its passes. Whitespace around names is
// ignored; empty elements are rejected.
func Parse(spec string) ([]Pass, error) {
	var out []Pass
	for _, raw := range strings.Split(spec, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			return nil, fmt.Errorf("pass: empty pass name in pipeline %q", spec)
		}
		p, ok := Lookup(name)
		if !ok {
			return nil, fmt.Errorf("pass: unknown pass %q (known: %s)",
				name, strings.Join(Names(), ", "))
		}
		out = append(out, p)
	}
	return out, nil
}

// RegisterScheme names a protection scheme as a pass pipeline. The
// pass names are resolved lazily at SchemePipeline time, so schemes
// may be registered before their passes.
func RegisterScheme(name string, passNames ...string) {
	regMu.Lock()
	defer regMu.Unlock()
	schemes[name] = append([]string(nil), passNames...)
}

// SchemeNames lists registered scheme names, sorted.
func SchemeNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(schemes))
	for n := range schemes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SchemePasses returns the pass-name list a scheme was registered
// with.
func SchemePasses(name string) ([]string, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	ns, ok := schemes[name]
	return append([]string(nil), ns...), ok
}

// SchemePipeline resolves a scheme (plus optional extra passes, e.g.
// "cfc") into a ready-to-run pass list.
func SchemePipeline(name string, extra ...string) ([]Pass, error) {
	names, ok := SchemePasses(name)
	if !ok {
		return nil, fmt.Errorf("pass: unknown scheme %q (known: %s)",
			name, strings.Join(SchemeNames(), ", "))
	}
	names = append(names, extra...)
	var out []Pass
	for _, n := range names {
		p, ok := Lookup(n)
		if !ok {
			return nil, fmt.Errorf("pass: scheme %q names unregistered pass %q", name, n)
		}
		out = append(out, p)
	}
	return out, nil
}

// PipelineSignature renders a scheme's resolved pass list as a stable
// string, for build-cache keys: two builds share compiled artifacts
// only if their schemes resolve to the same pipelines.
func PipelineSignature(name string, extra ...string) string {
	names, ok := SchemePasses(name)
	if !ok {
		return name + ":?"
	}
	names = append(names, extra...)
	return name + ":" + strings.Join(names, ",")
}
