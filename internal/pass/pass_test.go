package pass_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"rskip/internal/analysis"
	"rskip/internal/ir"
	"rskip/internal/lower"
	"rskip/internal/pass"
	"rskip/internal/transform"
)

// testSrc is a minimal kernel with one candidate loop (inner-loop
// pattern, single store per iteration), so every builtin pass has
// something to do.
const testSrc = `
void kernel(int a[], int out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		int acc = 0;
		for (int j = 0; j < 4; j = j + 1) {
			acc = acc + a[i + j] * 3;
		}
		out[i] = acc;
	}
}
`

func compile(t *testing.T) *ir.Module {
	t.Helper()
	m, err := lower.Compile("passtest", testSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func marshal(t *testing.T, m *ir.Module) string {
	t.Helper()
	var buf bytes.Buffer
	if err := m.MarshalText(&buf); err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return buf.String()
}

func TestRegistryLookupAndParse(t *testing.T) {
	for _, name := range []string{"optimize", "swift", "swiftr", "rskip", "cfc", "verify"} {
		if _, ok := pass.Lookup(name); !ok {
			t.Errorf("builtin pass %q not registered", name)
		}
	}
	ps, err := pass.Parse("optimize, swift ,cfc")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(ps) != 3 || ps[0].Name != "optimize" || ps[1].Name != "swift" || ps[2].Name != "cfc" {
		t.Fatalf("Parse order wrong: %+v", ps)
	}
	if _, err := pass.Parse("optimize,nosuchpass"); err == nil {
		t.Error("Parse accepted an unknown pass")
	}
	if _, err := pass.Parse("optimize,,swift"); err == nil {
		t.Error("Parse accepted an empty pass name")
	}
	names := pass.Names()
	if len(names) < 6 {
		t.Errorf("Names() = %v, want at least the 6 builtins", names)
	}
}

func TestSchemeRegistry(t *testing.T) {
	for _, name := range []string{"unsafe", "swift", "swiftr", "rskip"} {
		if _, ok := pass.SchemePasses(name); !ok {
			t.Errorf("builtin scheme %q not registered", name)
		}
	}
	if ns, _ := pass.SchemePasses("unsafe"); len(ns) != 0 {
		t.Errorf("unsafe scheme should be the empty pipeline, got %v", ns)
	}
	ps, err := pass.SchemePipeline("rskip", "cfc")
	if err != nil {
		t.Fatalf("SchemePipeline: %v", err)
	}
	if len(ps) != 2 || ps[0].Name != "rskip" || ps[1].Name != "cfc" {
		t.Fatalf("SchemePipeline(rskip, cfc) = %+v", ps)
	}
	if _, err := pass.SchemePipeline("nosuchscheme"); err == nil {
		t.Error("SchemePipeline accepted an unknown scheme")
	}
	if sig := pass.PipelineSignature("swift", "cfc"); sig != "swift:swift,cfc" {
		t.Errorf("PipelineSignature = %q", sig)
	}
	if sig := pass.PipelineSignature("nosuchscheme"); !strings.Contains(sig, "?") {
		t.Errorf("unknown-scheme signature should be marked, got %q", sig)
	}
}

// TestPipelinesMatchLegacyTransforms: running a registered scheme
// pipeline must produce exactly what the direct transform calls
// produce — the pass manager adds structure, not behavior.
func TestPipelinesMatchLegacyTransforms(t *testing.T) {
	base := compile(t)
	opt := analysis.Options{}

	legacy := map[string]func() *ir.Module{
		"unsafe": func() *ir.Module { return base.Clone() },
		"swift": func() *ir.Module {
			m := base.Clone()
			transform.ApplySWIFT(m)
			return m
		},
		"swiftr": func() *ir.Module {
			m := base.Clone()
			transform.ApplySWIFTR(m)
			return m
		},
		"rskip": func() *ir.Module {
			m, err := transform.ApplyRSkip(base, opt)
			if err != nil {
				t.Fatalf("ApplyRSkip: %v", err)
			}
			return m
		},
	}
	for _, scheme := range []string{"unsafe", "swift", "swiftr", "rskip"} {
		ps, err := pass.SchemePipeline(scheme)
		if err != nil {
			t.Fatalf("SchemePipeline(%s): %v", scheme, err)
		}
		got := base.Clone()
		pm := &pass.Manager{Passes: ps, VerifyEach: true}
		if err := pm.Run(context.Background(), got, opt); err != nil {
			t.Fatalf("pipeline %s: %v", scheme, err)
		}
		if g, w := marshal(t, got), marshal(t, legacy[scheme]()); g != w {
			t.Errorf("scheme %s: pipeline output differs from direct transforms", scheme)
		}
	}
}

// TestSeededCandidatesFold: seeding candidates computed on the base
// module into a clone's manager must not change the rskip result, and
// must be visible as a cache hit.
func TestSeededCandidatesFold(t *testing.T) {
	base := compile(t)
	opt := analysis.Options{}
	cands := analysis.FindCandidates(base, opt)
	if len(cands) == 0 {
		t.Fatal("test kernel has no candidates")
	}

	want, err := transform.ApplyRSkip(base, opt)
	if err != nil {
		t.Fatalf("ApplyRSkip: %v", err)
	}

	got := base.Clone()
	am := analysis.NewManager(got)
	am.SeedCandidates(opt, cands)
	ps, _ := pass.SchemePipeline("rskip")
	pm := &pass.Manager{Passes: ps, VerifyEach: true}
	if err := pm.RunWith(context.Background(), got, opt, am); err != nil {
		t.Fatalf("seeded pipeline: %v", err)
	}
	if marshal(t, got) != marshal(t, want) {
		t.Error("seeded candidates changed the rskip result")
	}
	if st := am.Stats(); st.Hits == 0 {
		t.Errorf("expected at least one analysis-cache hit, stats %+v", st)
	}
}

func TestVerifyEachCatchesInvalidIR(t *testing.T) {
	m := compile(t)
	bad := pass.Pass{Name: "truncate", Run: func(pc *pass.Context, m *ir.Module) error {
		blk := &m.Funcs[0].Blocks[0]
		blk.Instrs = blk.Instrs[:len(blk.Instrs)-1] // drop the terminator
		return nil
	}}
	pm := &pass.Manager{Passes: []pass.Pass{bad}, VerifyEach: true}
	err := pm.Run(context.Background(), m, analysis.Options{})
	if err == nil || !strings.Contains(err.Error(), "invalid IR") {
		t.Fatalf("VerifyEach missed the corruption, err=%v", err)
	}

	// Without VerifyEach the same pipeline reports no error.
	m2 := compile(t)
	pm2 := &pass.Manager{Passes: []pass.Pass{bad}}
	if err := pm2.Run(context.Background(), m2, analysis.Options{}); err != nil {
		t.Fatalf("unexpected error without VerifyEach: %v", err)
	}
}

func TestPrintAfterAndTimePasses(t *testing.T) {
	m := compile(t)
	var printed, timed bytes.Buffer
	ps, _ := pass.SchemePipeline("swift")
	pm := &pass.Manager{Passes: ps, PrintAfter: &printed, TimePasses: &timed}
	if err := pm.Run(context.Background(), m, analysis.Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(printed.String(), "module after pass swift") {
		t.Errorf("PrintAfter missing header:\n%s", printed.String())
	}
	if !strings.Contains(timed.String(), "swift") || !strings.Contains(timed.String(), "analysis cache") {
		t.Errorf("TimePasses report incomplete:\n%s", timed.String())
	}
}

func TestPipelineCancellation(t *testing.T) {
	m := compile(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ps, _ := pass.SchemePipeline("swift")
	pm := &pass.Manager{Passes: ps}
	if err := pm.Run(ctx, m, analysis.Options{}); err == nil {
		t.Fatal("canceled pipeline did not report an error")
	}
}

func TestPassErrorIsWrapped(t *testing.T) {
	m := compile(t)
	boom := pass.Pass{Name: "boom", Run: func(pc *pass.Context, m *ir.Module) error {
		return context.DeadlineExceeded
	}}
	pm := &pass.Manager{Passes: []pass.Pass{boom}}
	err := pm.Run(context.Background(), m, analysis.Options{})
	if err == nil || !strings.Contains(err.Error(), "pass boom") {
		t.Fatalf("error not attributed to pass: %v", err)
	}
}

func TestRegisterPanicsOnBadPass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Register accepted a pass with no Run")
		}
	}()
	pass.Register(pass.Pass{Name: "broken"})
}
