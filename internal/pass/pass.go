// Package pass is the compile pipeline's pass manager. The paper
// builds RSkip as a sequence of LLVM module passes (candidate
// detection, slice outlining, run-time hook planting, duplication,
// control-flow checking); this package gives the Go reproduction the
// same shape: named, ordered module passes composed into pipelines,
// with per-pass tracing and timing, optional IR verification after
// every pass, and a shared analysis cache (analysis.Manager) that
// passes consume instead of re-deriving CFGs, loop forests, dataflow
// and costs at every step.
//
// Pipelines are data, not code: passes register themselves by name,
// protection schemes register as named pass lists, and a pipeline can
// be written as text ("optimize,swift,cfc") — which is how cmd/rskipc
// exposes it.
package pass

import (
	"context"
	"fmt"
	"io"
	"time"

	"rskip/internal/analysis"
	"rskip/internal/ir"
	"rskip/internal/obs"
)

// Context carries pipeline-wide state into a pass: the cancellation/
// tracing context, the shared analysis cache, and the candidate
// options the protection passes honor.
type Context struct {
	Ctx context.Context
	AM  *analysis.Manager
	Opt analysis.Options
}

// Pass is one named module transformation.
type Pass struct {
	Name string
	// Preserves marks a pass that leaves the module unchanged
	// (verification, printing); the manager keeps cached analyses
	// across it instead of invalidating everything.
	Preserves bool
	// Run mutates the module. Passes that consume analyses pull them
	// from pc.AM; the manager invalidates after the pass unless
	// Preserves is set, so passes need not invalidate themselves
	// (those doing finer-grained self-invalidation, like rskip's
	// fixpoint, simply leave the cache more precise).
	Run func(pc *Context, m *ir.Module) error
}

// Manager runs a pipeline of passes over a module.
type Manager struct {
	Passes []Pass
	// VerifyEach re-runs ir.Verify after every non-preserving pass, so
	// an invalid module is caught at the pass that produced it rather
	// than at codegen.
	VerifyEach bool
	// PrintAfter, when non-nil, receives the module listing after each
	// pass (the classic -print-after debugging aid).
	PrintAfter io.Writer
	// TimePasses, when non-nil, receives a per-pass wall-time report
	// when the pipeline finishes.
	TimePasses io.Writer
}

// Run executes the pipeline with a fresh analysis manager.
func (pm *Manager) Run(ctx context.Context, m *ir.Module, opt analysis.Options) error {
	return pm.RunWith(ctx, m, opt, analysis.NewManager(m))
}

// RunWith executes the pipeline against a caller-supplied analysis
// manager — the build pipeline uses this to seed analyses computed on
// a structurally identical module (candidates found on the base module
// are valid on its clone).
func (pm *Manager) RunWith(ctx context.Context, m *ir.Module, opt analysis.Options, am *analysis.Manager) error {
	if am == nil {
		am = analysis.NewManager(m)
	}
	pc := &Context{Ctx: ctx, AM: am, Opt: opt}
	var timings []time.Duration
	for _, p := range pm.Passes {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("pass: pipeline canceled before %s: %w", p.Name, err)
		}
		_, sp := obs.Start(ctx, "pass/"+p.Name)
		start := time.Now()
		err := p.Run(pc, m)
		timings = append(timings, time.Since(start))
		sp.End()
		if err != nil {
			return fmt.Errorf("pass %s: %w", p.Name, err)
		}
		if !p.Preserves {
			am.InvalidateAll()
			if pm.VerifyEach {
				if err := ir.Verify(m); err != nil {
					return fmt.Errorf("pass %s produced invalid IR: %w", p.Name, err)
				}
			}
		}
		if pm.PrintAfter != nil {
			fmt.Fprintf(pm.PrintAfter, "; module after pass %s\n%s", p.Name, m.String())
		}
	}
	if pm.TimePasses != nil {
		var total time.Duration
		for _, d := range timings {
			total += d
		}
		fmt.Fprintf(pm.TimePasses, "=== pass timings ===\n")
		for i, p := range pm.Passes {
			fmt.Fprintf(pm.TimePasses, "%10.3fms  %s\n",
				float64(timings[i].Microseconds())/1000, p.Name)
		}
		st := am.Stats()
		fmt.Fprintf(pm.TimePasses, "%10.3fms  total (analysis cache: %d hits, %d misses)\n",
			float64(total.Microseconds())/1000, st.Hits, st.Misses)
	}
	return nil
}
