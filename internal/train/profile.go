package train

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"rskip/internal/predict"
	"rskip/internal/rtm"
)

// The paper's flow is train-once, deploy-many: the QoS model and memo
// tables built by the offline phase ship with the executable. Profiles
// serialize a Result as JSON so cmd/rskiprun and embedders can persist
// a training run and reload it without retraining.

// profileVersion guards against stale files as the format evolves.
const profileVersion = 1

type profileJSON struct {
	Version int                    `json:"version"`
	Loops   map[string]loopProfile `json:"loops"`
}

type loopProfile struct {
	Samples      int                `json:"samples"`
	QoSDefault   float64            `json:"qos_default_tp"`
	QoSBySig     map[string]float64 `json:"qos_by_signature,omitempty"`
	MemoAccuracy float64            `json:"memo_accuracy,omitempty"`
	Memo         *memoProfile       `json:"memo,omitempty"`
}

type memoProfile struct {
	Bits   []int       `json:"bits"`
	Edges  [][]float64 `json:"edges"`
	Values []float64   `json:"values"`
	Filled []bool      `json:"filled"`
}

// Save writes the profile as JSON.
func (r *Result) Save(w io.Writer) error {
	p := profileJSON{Version: profileVersion, Loops: map[string]loopProfile{}}
	for id, q := range r.QoS {
		lp := loopProfile{
			Samples:      r.Samples[id],
			QoSDefault:   q.Default,
			QoSBySig:     q.BySig,
			MemoAccuracy: r.MemoAccuracy[id],
		}
		if t := r.Memo[id]; t != nil {
			mp := &memoProfile{Bits: t.Bits, Values: t.Values, Filled: t.Filled}
			for _, q := range t.Quants {
				mp.Edges = append(mp.Edges, q.Edges)
			}
			lp.Memo = mp
		}
		p.Loops[fmt.Sprint(id)] = lp
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// SaveFile writes the profile to path.
func (r *Result) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return r.Save(f)
}

// Load reads a profile written by Save.
func Load(rd io.Reader) (*Result, error) {
	var p profileJSON
	if err := json.NewDecoder(rd).Decode(&p); err != nil {
		return nil, fmt.Errorf("train: decoding profile: %w", err)
	}
	if p.Version != profileVersion {
		return nil, fmt.Errorf("train: profile version %d, want %d", p.Version, profileVersion)
	}
	res := &Result{
		QoS:          map[int]*rtm.QoSModel{},
		Memo:         map[int]*predict.MemoTable{},
		MemoBuilt:    map[int]*predict.MemoTable{},
		MemoAccuracy: map[int]float64{},
		Samples:      map[int]int{},
	}
	for key, lp := range p.Loops {
		var id int
		if _, err := fmt.Sscanf(key, "%d", &id); err != nil {
			return nil, fmt.Errorf("train: bad loop id %q", key)
		}
		bySig := lp.QoSBySig
		if bySig == nil {
			bySig = map[string]float64{}
		}
		res.QoS[id] = &rtm.QoSModel{Default: lp.QoSDefault, BySig: bySig}
		res.Samples[id] = lp.Samples
		res.MemoAccuracy[id] = lp.MemoAccuracy
		if lp.Memo != nil {
			if len(lp.Memo.Bits) != len(lp.Memo.Edges) {
				return nil, fmt.Errorf("train: memo profile for loop %d is inconsistent", id)
			}
			t := &predict.MemoTable{
				Bits:   lp.Memo.Bits,
				Values: lp.Memo.Values,
				Filled: lp.Memo.Filled,
			}
			want := 1
			for _, b := range lp.Memo.Bits {
				want <<= b
			}
			if len(t.Values) != want || len(t.Filled) != want {
				return nil, fmt.Errorf("train: memo table for loop %d has %d cells, want %d",
					id, len(t.Values), want)
			}
			for _, edges := range lp.Memo.Edges {
				if len(edges) == 0 {
					return nil, fmt.Errorf("train: memo quantizer for loop %d has no edges", id)
				}
				t.Quants = append(t.Quants, &predict.Quantizer{Edges: edges})
			}
			res.Memo[id] = t
			res.MemoBuilt[id] = t
		}
	}
	return res, nil
}

// LoadFile reads a profile from path.
func LoadFile(path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
