// Package train implements RSkip's offline training phase (§6): it
// samples loop outputs on user-provided training inputs, simulates the
// dynamic-interpolation algorithm across a tuning-parameter sweep to
// build the per-signature QoS model, and constructs + validates the
// approximate-memoization lookup tables.
package train

import (
	"context"
	"fmt"
	"math"

	"rskip/internal/ir"
	"rskip/internal/machine"
	"rskip/internal/obs"
	"rskip/internal/predict"
	"rskip/internal/rtm"
)

// Config parameterizes training.
type Config struct {
	// AR is the acceptable range the deployment will use; skip-rate
	// scoring depends on it.
	AR float64
	// TPSweep lists candidate tuning parameters; empty uses defaults.
	TPSweep []float64
	// Window is the observe/adjust period (must match deployment).
	Window int
	// MemoBits is the lookup-table address width (the paper uses 15).
	MemoBits int
	// MemoAccuracyMin gates deployment of a memo table (§4.2: tables
	// with poor training accuracy are not deployed).
	MemoAccuracyMin float64
	// MemoUniform selects prior work's uniform quantization (for the
	// §4.2 comparison experiment).
	MemoUniform bool
}

// DefaultTPSweep covers almost three orders of magnitude of trend
// tolerance; genuine trend breaks read as ratios in the hundreds under
// the Figure 5 formula, so even the large entries still cut on them.
var DefaultTPSweep = []float64{0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}

// Result is a trained deployment profile.
type Result struct {
	QoS  map[int]*rtm.QoSModel
	Memo map[int]*predict.MemoTable
	// MemoBuilt holds every constructed table, including ones whose
	// validation accuracy fell below the deployment gate — the §4.2
	// comparison reports both.
	MemoBuilt map[int]*predict.MemoTable
	// MemoAccuracy records validation accuracy per loop (deployed or
	// not), for the §4.2 experiment.
	MemoAccuracy map[int]float64
	// Samples counts observed elements per loop.
	Samples map[int]int
}

// collector implements machine.Hooks, recording loop outputs without
// validating anything (training inputs are fault-free).
type collector struct {
	mod *ir.Module
	// series[loopID] = one slice of points per loop invocation.
	series map[int][][]predict.Point
	cur    map[int][]predict.Point
}

func newCollector(mod *ir.Module) *collector {
	return &collector{
		mod:    mod,
		series: map[int][][]predict.Point{},
		cur:    map[int][]predict.Point{},
	}
}

// LoopEnter implements machine.Hooks.
func (c *collector) LoopEnter(m *machine.Machine, id int, inv []uint64) error {
	c.cur[id] = nil
	return nil
}

// Observe implements machine.Hooks.
func (c *collector) Observe(m *machine.Machine, id int, iter int64, value uint64, addr int64) error {
	info := c.mod.LoopByID(id)
	v := float64(int64(value))
	if info != nil && info.ValueIsFloat {
		v = math.Float64frombits(value)
	}
	c.cur[id] = append(c.cur[id], predict.Point{Iter: iter, V: v, Bits: value, Addr: addr})
	return nil
}

// LoopExit implements machine.Hooks.
func (c *collector) LoopExit(m *machine.Machine, id int) error {
	if pts := c.cur[id]; len(pts) > 0 {
		c.series[id] = append(c.series[id], pts)
		c.cur[id] = nil
	}
	return nil
}

// memoSample is one traced memo-function invocation.
type memoSample struct {
	in  []float64
	out float64
}

// Collect runs the transformed module once on an instance and returns
// the per-loop output series (one slice per loop invocation) along
// with the run's counters — the sampling primitive behind training and
// the Fig. 2 predictability analysis.
func Collect(mod *ir.Module, kernel int, setup func(mem *machine.Memory) []uint64) (map[int][][]predict.Point, machine.Counters, error) {
	col := newCollector(mod)
	m := machine.New(mod, machine.Config{Hooks: col, TraceFn: -1})
	args := setup(m.Mem)
	res, err := m.Run(kernel, args)
	if err != nil {
		return nil, machine.Counters{}, err
	}
	return col.series, res.Counter, nil
}

// Run executes the offline training phase without telemetry; it is
// RunContext on a background context.
func Run(mod *ir.Module, kernel int, instances []func(mem *machine.Memory) []uint64, cfg Config) (*Result, error) {
	return RunContext(context.Background(), mod, kernel, instances, cfg)
}

// RunContext executes the offline training phase: the transformed
// module is run once per training instance under a collecting hook
// set; the samples then drive TP sweeping and memo-table construction
// without further program runs ("we simulate the algorithm ... to
// minimize training time"). An obs.Obs carried by ctx traces the
// collect runs and per-loop fits and feeds the training counters.
func RunContext(ctx context.Context, mod *ir.Module, kernel int, instances []func(mem *machine.Memory) []uint64, cfg Config) (*Result, error) {
	if len(cfg.TPSweep) == 0 {
		cfg.TPSweep = DefaultTPSweep
	}
	if cfg.Window == 0 {
		cfg.Window = 32
	}
	if cfg.MemoBits == 0 {
		cfg.MemoBits = 15
	}
	if cfg.MemoAccuracyMin == 0 {
		cfg.MemoAccuracyMin = 0.90
	}

	col := newCollector(mod)
	memoFn := -1
	for i := range mod.Loops {
		if mod.Loops[i].MemoFn >= 0 {
			memoFn = mod.Loops[i].MemoFn
		}
	}
	memoParams := []ir.Type(nil)
	if memoFn >= 0 {
		f := mod.Funcs[memoFn]
		for _, p := range f.Params {
			memoParams = append(memoParams, p.Type)
		}
	}
	var memoSamples []memoSample

	// instanceMark[loopID] records how many invocations each training
	// instance contributed, so TP sweeping can score instances
	// separately and prefer parameters that are good on every input
	// (argmax on pooled data happily picks a TP that collapses on the
	// next input — robustness beats raw training skip).
	met := obs.From(ctx).M()
	trainRuns := met.Counter("train_runs_total", "training collection runs")
	trainSamples := met.Counter("train_samples_total", "loop output samples collected")

	instanceMark := map[int][]int{}
	for idx, setup := range instances {
		_, spc := obs.Start(ctx, "train/collect")
		spc.SetAttr("instance", idx)
		mcfg := machine.Config{Hooks: col, TraceFn: -1, Metrics: met}
		if memoFn >= 0 {
			mcfg.TraceFn = memoFn
			mcfg.CallTracer = func(args []uint64, ret uint64) {
				in := make([]float64, len(args))
				for i, a := range args {
					if memoParams[i] == ir.Float {
						in[i] = math.Float64frombits(a)
					} else {
						in[i] = float64(int64(a))
					}
				}
				memoSamples = append(memoSamples,
					memoSample{in: in, out: math.Float64frombits(ret)})
			}
		}
		m := machine.New(mod, mcfg)
		args := setup(m.Mem)
		res, err := m.Run(kernel, args)
		if err != nil {
			spc.End()
			return nil, fmt.Errorf("train: training run failed: %w", err)
		}
		trainRuns.Inc()
		for i := range mod.Loops {
			id := mod.Loops[i].ID
			instanceMark[id] = append(instanceMark[id], len(col.series[id]))
		}
		spc.SetAttr("instrs", res.Instrs)
		spc.End()
	}

	res := &Result{
		QoS:          map[int]*rtm.QoSModel{},
		Memo:         map[int]*predict.MemoTable{},
		MemoBuilt:    map[int]*predict.MemoTable{},
		MemoAccuracy: map[int]float64{},
		Samples:      map[int]int{},
	}
	memoBuilt := met.Counter("train_memo_built_total", "memo tables constructed")
	memoDeployed := met.Counter("train_memo_deployed_total", "memo tables that passed the accuracy gate")
	for li := range mod.Loops {
		info := &mod.Loops[li]
		series := col.series[info.ID]
		n := 0
		for _, s := range series {
			n += len(s)
		}
		res.Samples[info.ID] = n
		trainSamples.Add(uint64(n))
		if n == 0 {
			continue
		}
		_, spf := obs.Start(ctx, "train/fit")
		spf.SetAttr("loop", info.Name)
		spf.SetAttr("samples", n)
		res.QoS[info.ID] = sweepTP(series, instanceMark[info.ID], cfg)
		spf.SetAttr("tp", res.QoS[info.ID].Default)
		spf.End()
		if info.MemoFn >= 0 && len(memoSamples) > 0 {
			_, spm := obs.Start(ctx, "train/memo")
			table, acc := buildMemo(memoSamples, cfg)
			res.MemoAccuracy[info.ID] = acc
			if table != nil {
				res.MemoBuilt[info.ID] = table
				memoBuilt.Inc()
				if acc >= cfg.MemoAccuracyMin {
					res.Memo[info.ID] = table
					memoDeployed.Inc()
				}
			}
			spm.SetAttr("accuracy", acc)
			spm.End()
		}
	}
	return res, nil
}

// sweepTP simulates phase slicing over the sampled series for each
// candidate TP, scoring skip potential per context signature, and
// returns the QoS model of (signature → best TP) pairs.
func sweepTP(series [][]predict.Point, marks []int, cfg Config) *rtm.QoSModel {
	type score struct{ skippable, total int }
	bySig := map[string]map[float64]*score{}
	totals := map[float64]*score{}
	// Per-instance scores for the robust default-TP choice.
	perInstance := map[float64][]*score{}
	instanceOf := func(inv int) int {
		for gi, end := range marks {
			if inv < end {
				return gi
			}
		}
		return 0
	}
	nInstances := len(marks)
	if nInstances == 0 {
		nInstances = 1
	}

	for _, tp := range cfg.TPSweep {
		totals[tp] = &score{}
		perInstance[tp] = make([]*score, nInstances)
		for gi := range perInstance[tp] {
			perInstance[tp][gi] = &score{}
		}
		for invIdx, pts := range series {
			inst := perInstance[tp][instanceOf(invIdx)%nInstances]
			it := predict.NewInterp(tp)
			curSig := ""
			since := 0
			// Each point is attributed to the context signature active
			// when it was observed, so a long phase spanning a regime
			// change credits every regime with exactly its own points.
			sigOf := map[int64]string{}
			bump := func(sig string, skippable bool) {
				t := totals[tp]
				t.total++
				inst.total++
				if skippable {
					inst.skippable++
				}
				m := bySig[sig]
				if m == nil {
					m = map[float64]*score{}
					bySig[sig] = m
				}
				s := m[tp]
				if s == nil {
					s = &score{}
					m[tp] = s
				}
				s.total++
				if skippable {
					t.skippable++
					s.skippable++
				}
			}
			record := func(phase []predict.Point) {
				if len(phase) == 0 {
					return
				}
				first, last := phase[0], phase[len(phase)-1]
				for i, p := range phase {
					if p.Validated {
						continue
					}
					skippable := i > 0 && i < len(phase)-1 &&
						predict.RelDiff(p.V, predict.Predict(first, last, p.Iter)) <= cfg.AR
					bump(sigOf[p.Iter], skippable)
				}
			}
			for _, p := range pts {
				sigOf[p.Iter] = curSig
				phase, cut := it.Observe(p)
				if cut {
					record(phase)
				}
				since++
				if since >= cfg.Window {
					since = 0
					curSig = rtm.Signature(it.Changes)
					it.Changes = it.Changes[:0]
				}
			}
			record(it.Flush())
		}
	}

	q := &rtm.QoSModel{BySig: map[string]float64{}}
	// Default TP: maximize the WORST per-instance skip rate, then take
	// the smallest TP within one point of that optimum. Pooled argmax
	// with largest-wins ties overfits to aggressive parameters that sit
	// on a cliff (a TP that barely holds phases together on the
	// training inputs collapses on the next input); robust-min plus a
	// conservative tie-break avoids the cliff edge.
	robust := func(tp float64) float64 {
		worst := 1.0
		any := false
		for _, s := range perInstance[tp] {
			if s.total == 0 {
				continue
			}
			any = true
			r := float64(s.skippable) / float64(s.total)
			if r < worst {
				worst = r
			}
		}
		if !any {
			return -1
		}
		return worst
	}
	bestRate := -1.0
	for _, tp := range cfg.TPSweep {
		if r := robust(tp); r > bestRate {
			bestRate = r
		}
	}
	// Five points of tolerance: aggressive TPs hold phases together
	// marginally and sit near generalization cliffs, so a slightly
	// worse-on-training but calmer parameter is the better deployment.
	best := cfg.TPSweep[0]
	for _, tp := range cfg.TPSweep {
		if robust(tp) >= bestRate-0.05 {
			best = tp
			break // sweep is ascending: first within tolerance = smallest
		}
	}
	q.Default = best
	// Per-signature entries need enough evidence; thin signatures fall
	// back to the default TP instead of a noisy argmax.
	const minSigSamples = 192
	for sig, m := range bySig {
		bTP, bRate := 0.0, -1.0
		for _, tp := range cfg.TPSweep {
			s := m[tp]
			if s == nil || s.total < minSigSamples {
				continue
			}
			r := float64(s.skippable) / float64(s.total)
			if r >= bRate {
				bTP, bRate = tp, r
			}
		}
		if bTP > 0 {
			q.BySig[sig] = bTP
		}
	}
	return q
}

// buildMemo constructs the lookup table from traced call samples,
// holding out the tail for validation, and reports its accuracy at
// the configured acceptable range.
func buildMemo(samples []memoSample, cfg Config) (*predict.MemoTable, float64) {
	if len(samples) < 16 {
		return nil, 0
	}
	cut := len(samples) * 7 / 10
	trIn, trOut := splitSamples(samples[:cut])
	teIn, teOut := splitSamples(samples[cut:])
	table, err := predict.BuildMemo(trIn, trOut, predict.MemoConfig{
		AddressBits: cfg.MemoBits,
		FineBins:    256,
		Uniform:     cfg.MemoUniform,
	})
	if err != nil {
		return nil, 0
	}
	ar := cfg.AR
	if ar == 0 {
		ar = 0.2
	}
	return table, table.Accuracy(teIn, teOut, ar)
}

func splitSamples(ss []memoSample) ([][]float64, []float64) {
	in := make([][]float64, len(ss))
	out := make([]float64, len(ss))
	for i, s := range ss {
		in[i] = s.in
		out[i] = s.out
	}
	return in, out
}
