package train

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"rskip/internal/predict"
	"rskip/internal/rtm"
)

func sampleResult() *Result {
	table := &predict.MemoTable{
		Bits: []int{1, 2},
		Quants: []*predict.Quantizer{
			{Edges: []float64{0, 5}},
			{Edges: []float64{0, 1, 2, 3}},
		},
		Values: make([]float64, 8),
		Filled: make([]bool, 8),
	}
	idx := table.Index([]float64{7, 3.5})
	table.Values[idx] = 42.5
	table.Filled[idx] = true
	return &Result{
		QoS: map[int]*rtm.QoSModel{
			0: {Default: 0.25, BySig: map[string]float64{"0123": 1.0}},
			1: {Default: 0.5, BySig: map[string]float64{}},
		},
		Memo:         map[int]*predict.MemoTable{0: table},
		MemoAccuracy: map[int]float64{0: 0.97},
		Samples:      map[int]int{0: 1000, 1: 500},
	}
}

func TestProfileRoundTrip(t *testing.T) {
	orig := sampleResult()
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.QoS[0].Default != 0.25 || got.QoS[0].BySig["0123"] != 1.0 {
		t.Errorf("QoS 0 mismatch: %+v", got.QoS[0])
	}
	if got.QoS[1].Default != 0.5 {
		t.Errorf("QoS 1 mismatch: %+v", got.QoS[1])
	}
	if got.Samples[0] != 1000 || got.Samples[1] != 500 {
		t.Errorf("samples mismatch: %+v", got.Samples)
	}
	if got.MemoAccuracy[0] != 0.97 {
		t.Errorf("accuracy mismatch")
	}
	tab := got.Memo[0]
	if tab == nil {
		t.Fatal("memo table lost")
	}
	if v, ok := tab.Lookup([]float64{7, 3.5}); !ok || v != 42.5 {
		t.Errorf("reloaded table Lookup = %g, %v; want 42.5, true", v, ok)
	}
	if _, ok := got.Memo[1]; ok {
		t.Error("phantom memo table appeared")
	}
}

func TestProfileFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := sampleResult().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.QoS[0] == nil {
		t.Fatal("file round trip lost data")
	}
}

func TestProfileLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		``,
		`not json`,
		`{"version": 99, "loops": {}}`,
		`{"version": 1, "loops": {"x": {}}}`,
		// Inconsistent memo: 2 bits declared but 1 quantizer.
		`{"version": 1, "loops": {"0": {"qos_default_tp": 0.2,
		  "memo": {"bits": [1, 1], "edges": [[0]], "values": [0,0,0,0], "filled": [false,false,false,false]}}}}`,
		// Wrong cell count.
		`{"version": 1, "loops": {"0": {"qos_default_tp": 0.2,
		  "memo": {"bits": [1], "edges": [[0,1]], "values": [0], "filled": [false]}}}}`,
		// Empty quantizer edges.
		`{"version": 1, "loops": {"0": {"qos_default_tp": 0.2,
		  "memo": {"bits": [1], "edges": [[]], "values": [0,0], "filled": [false,false]}}}}`,
	}
	for _, src := range cases {
		if _, err := Load(strings.NewReader(src)); err == nil {
			t.Errorf("Load(%q): expected error", src)
		}
	}
}
