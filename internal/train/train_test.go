package train

import (
	"testing"

	"rskip/internal/analysis"
	"rskip/internal/ir"
	"rskip/internal/lower"
	"rskip/internal/machine"
	"rskip/internal/transform"
)

func buildPP(t *testing.T, src string) *ir.Module {
	t.Helper()
	mod, err := lower.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	rsk, err := transform.ApplyRSkip(mod, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rsk
}

const rampSrc = `
void kernel(float a[], float out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		float s = 0.0;
		for (int j = 0; j < 4; j = j + 1) { s = s + a[i + j]; }
		out[i] = s;
	}
}
`

func rampSetup(slope float64) func(mem *machine.Memory) []uint64 {
	return func(mem *machine.Memory) []uint64 {
		n := 96
		a := mem.Alloc(int64(n + 4))
		for i := 0; i < n+4; i++ {
			mem.SetFloat(a+int64(i), 1+slope*float64(i))
		}
		out := mem.Alloc(int64(n))
		return []uint64{uint64(a), uint64(out), uint64(n)}
	}
}

func TestTrainingBuildsQoS(t *testing.T) {
	rsk := buildPP(t, rampSrc)
	kernel := rsk.FuncByName("kernel")
	res, err := Run(rsk, kernel,
		[]func(mem *machine.Memory) []uint64{rampSetup(0.5), rampSetup(1.0)},
		Config{AR: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	id := rsk.Loops[0].ID
	if res.Samples[id] != 192 {
		t.Errorf("sampled %d elements, want 192", res.Samples[id])
	}
	q := res.QoS[id]
	if q == nil {
		t.Fatal("no QoS model")
	}
	if q.Default <= 0 {
		t.Errorf("default TP = %g", q.Default)
	}
	// Memo is not applicable here (no Figure 4a pattern).
	if len(res.Memo) != 0 {
		t.Errorf("unexpected memo tables: %v", res.Memo)
	}
}

func TestTrainingMemoDeployment(t *testing.T) {
	// A pure-call kernel over a small repeating input domain: the memo
	// table must train accurately and be deployed.
	src := `
float price(float a, float b) {
	return sqrt(a) * exp(b * 0.1) + log(a + b + 2.0) * a;
}
void kernel(float x[], float y[], float out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		float p = price(x[i], y[i]);
		out[i] = p;
	}
}`
	rsk := buildPP(t, src)
	kernel := rsk.FuncByName("kernel")
	setup := func(seed int64) func(mem *machine.Memory) []uint64 {
		return func(mem *machine.Memory) []uint64 {
			n := 512
			x := mem.Alloc(int64(n))
			y := mem.Alloc(int64(n))
			for i := 0; i < n; i++ {
				// Clustered domain: a few distinct values.
				mem.SetFloat(x+int64(i), float64(1+(i*7+int(seed))%5))
				mem.SetFloat(y+int64(i), float64(1+(i*3+int(seed))%4))
			}
			out := mem.Alloc(int64(n))
			return []uint64{uint64(x), uint64(y), uint64(out), uint64(n)}
		}
	}
	res, err := Run(rsk, kernel,
		[]func(mem *machine.Memory) []uint64{setup(0), setup(1), setup(2)},
		Config{AR: 0.2, MemoBits: 10})
	if err != nil {
		t.Fatal(err)
	}
	id := rsk.Loops[0].ID
	if rsk.Loops[0].MemoFn < 0 {
		t.Fatal("memo pattern not detected")
	}
	if acc := res.MemoAccuracy[id]; acc < 0.95 {
		t.Errorf("memo accuracy %.3f on a 20-point domain", acc)
	}
	if res.Memo[id] == nil {
		t.Error("accurate table was not deployed")
	}
}

func TestTrainingQoSSweepPicksSensibleTP(t *testing.T) {
	// A bumpy-but-trending input punishes timid TPs (they cut at every
	// bump, drowning in endpoints); the sweep must find a tolerant one.
	rsk := buildPP(t, rampSrc)
	kernel := rsk.FuncByName("kernel")
	bumpy := func(mem *machine.Memory) []uint64 {
		n := 96
		a := mem.Alloc(int64(n + 4))
		for i := 0; i < n+4; i++ {
			// A slow ramp carrying a small period-8 square wave: the
			// windowed sums oscillate a few percent around a large mean,
			// so timid TPs cut at every wavefront (mostly endpoints)
			// while a tolerant TP rides one long phase whose interiors
			// pass AR20 easily.
			v := 100.0 + 0.05*float64(i)
			if (i/4)%2 == 0 {
				v += 3
			} else {
				v -= 3
			}
			mem.SetFloat(a+int64(i), v)
		}
		out := mem.Alloc(int64(n))
		return []uint64{uint64(a), uint64(out), uint64(n)}
	}
	res, err := Run(rsk, kernel,
		[]func(mem *machine.Memory) []uint64{bumpy},
		Config{AR: 0.2, TPSweep: []float64{0.02, 0.25, 2.0}})
	if err != nil {
		t.Fatal(err)
	}
	q := res.QoS[rsk.Loops[0].ID]
	if q.Default == 0.02 {
		t.Errorf("sweep picked the most timid TP %g for a bumpy trend", q.Default)
	}
}

func TestCollect(t *testing.T) {
	rsk := buildPP(t, rampSrc)
	series, counters, err := Collect(rsk, rsk.FuncByName("kernel"), rampSetup(1.0))
	if err != nil {
		t.Fatal(err)
	}
	id := rsk.Loops[0].ID
	if len(series[id]) != 1 {
		t.Fatalf("got %d invocations, want 1", len(series[id]))
	}
	pts := series[id][0]
	if len(pts) != 96 {
		t.Fatalf("got %d points, want 96", len(pts))
	}
	// Values are the 4-element window sums of the ramp.
	for i, p := range pts {
		want := 4 + float64(4*i+6)
		if p.V != want {
			t.Fatalf("point %d = %g, want %g", i, p.V, want)
		}
		if p.Iter != int64(i) {
			t.Fatalf("iter %d recorded as %d", i, p.Iter)
		}
	}
	if counters.Dyn == 0 {
		t.Error("counters not recorded")
	}
}

func TestTrainingFailsOnBrokenRun(t *testing.T) {
	rsk := buildPP(t, rampSrc)
	kernel := rsk.FuncByName("kernel")
	bad := func(mem *machine.Memory) []uint64 {
		// Invalid base address: the run must fail, and training must
		// surface it.
		return []uint64{uint64(machine.MappedLimit), uint64(machine.MappedLimit), 8}
	}
	if _, err := Run(rsk, kernel, []func(mem *machine.Memory) []uint64{bad}, Config{AR: 0.2}); err == nil {
		t.Error("training on a crashing run must error")
	}
}
