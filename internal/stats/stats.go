// Package stats provides the small numeric and text-rendering helpers
// shared by the benchmark harness: aligned tables, ASCII bars for
// figure-style output, and summary statistics.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title string
	Cols  []string
	rows  [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, Cols: cols}
}

// Row appends a row; missing cells render empty.
func (t *Table) Row(cells ...string) {
	t.rows = append(t.rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		width[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i := range t.Cols {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return sb.String()
}

// Bar renders frac (clamped to [0,1]) as an ASCII bar of the given
// width — the harness's stand-in for the paper's bar charts.
func Bar(frac float64, width int) string {
	if math.IsNaN(frac) {
		frac = 0
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// MinMax returns the extremes (zeros for empty input).
func MinMax(xs []float64) (mn, mx float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	mn, mx = xs[0], xs[0]
	for _, x := range xs[1:] {
		mn = math.Min(mn, x)
		mx = math.Max(mx, x)
	}
	return mn, mx
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Z95 is the normal quantile for a two-sided 95% confidence level.
const Z95 = 1.959963984540054

// Wilson returns the Wilson score confidence interval for a binomial
// proportion: k successes out of n trials at normal quantile z (use
// Z95 for the conventional 95% level). Unlike the normal
// approximation, the interval stays inside [0,1] and behaves sensibly
// at k=0 and k=n — exactly the regime fault-injection outcome classes
// live in (rare SDCs, near-100% protection rates). n<=0 returns the
// vacuous interval [0,1].
func Wilson(k, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	p := float64(k) / float64(n)
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := p + z2/(2*nf)
	margin := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = (center - margin) / denom
	hi = (center + margin) / denom
	// Snap the closed ends exactly: at k=0 (k=n) the proportion itself
	// is a bound and rounding must not pull it inside the interval.
	if k == 0 || lo < 0 {
		lo = 0
	}
	if k == n || hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(frac float64) string { return fmt.Sprintf("%.2f%%", 100*frac) }

// X formats a ratio as a multiplier with two decimals.
func X(ratio float64) string { return fmt.Sprintf("%.2fx", ratio) }
