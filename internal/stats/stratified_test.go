package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestStratifiedWilsonSingleStratumEqualsWilson(t *testing.T) {
	cases := []struct{ k, n int }{
		{0, 100}, {100, 100}, {1, 100}, {99, 100}, {37, 100},
		{0, 1}, {1, 1}, {512, 4096}, {3, 7},
	}
	for _, c := range cases {
		wlo, whi := Wilson(c.k, c.n, Z95)
		p, lo, hi := StratifiedWilson([]Stratum{{W: 1, K: c.k, N: c.n}}, Z95)
		if want := float64(c.k) / float64(c.n); math.Abs(p-want) > 1e-12 {
			t.Errorf("k=%d n=%d: p = %g, want %g", c.k, c.n, p, want)
		}
		if math.Abs(lo-wlo) > 1e-12 || math.Abs(hi-whi) > 1e-12 {
			t.Errorf("k=%d n=%d: stratified CI [%g,%g] != Wilson [%g,%g]",
				c.k, c.n, lo, hi, wlo, whi)
		}
	}
}

func TestStratifiedWilsonDegenerateStrata(t *testing.T) {
	// No strata, or none with trials: vacuous interval.
	for _, strata := range [][]Stratum{
		nil,
		{},
		{{W: 1, K: 0, N: 0}},
		{{W: 0.5, N: 0}, {W: 0.5, N: 0}},
		{{W: 0, K: 9, N: 9}},
	} {
		p, lo, hi := StratifiedWilson(strata, Z95)
		if p != 0 || lo != 0 || hi != 1 {
			t.Errorf("strata %v: got (%g,[%g,%g]), want (0,[0,1])", strata, p, lo, hi)
		}
	}

	// An n=0 stratum is dropped with its weight renormalized away; the
	// answer matches the same input without it.
	with := []Stratum{{W: 0.7, K: 3, N: 50}, {W: 0.2, K: 0, N: 0}, {W: 0.1, K: 9, N: 30}}
	without := []Stratum{{W: 0.7, K: 3, N: 50}, {W: 0.1, K: 9, N: 30}}
	p1, lo1, hi1 := StratifiedWilson(with, Z95)
	p2, lo2, hi2 := StratifiedWilson(without, Z95)
	if p1 != p2 || lo1 != lo2 || hi1 != hi2 {
		t.Errorf("n=0 stratum changed the estimate: (%g,[%g,%g]) vs (%g,[%g,%g])",
			p1, lo1, hi1, p2, lo2, hi2)
	}

	// Zero-weight strata likewise contribute nothing.
	p3, _, _ := StratifiedWilson([]Stratum{{W: 0, K: 10, N: 10}, {W: 1, K: 0, N: 10}}, Z95)
	if p3 != 0 {
		t.Errorf("zero-weight stratum leaked into the estimate: p = %g", p3)
	}

	// All strata at the closed ends: p̂ exact, interval snapped like
	// plain Wilson at k=0 / k=n.
	p, lo, hi := StratifiedWilson([]Stratum{{W: 0.5, K: 0, N: 40}, {W: 0.5, K: 0, N: 60}}, Z95)
	if p != 0 || lo != 0 {
		t.Errorf("all-zero strata: p=%g lo=%g, want exact 0", p, lo)
	}
	if hi >= 1 || hi <= 0 {
		t.Errorf("all-zero strata: hi = %g, want a nontrivial upper bound", hi)
	}
	p, lo, hi = StratifiedWilson([]Stratum{{W: 0.3, K: 25, N: 25}, {W: 0.7, K: 75, N: 75}}, Z95)
	if p != 1 || hi != 1 {
		t.Errorf("all-k=n strata: p=%g hi=%g, want exact 1", p, hi)
	}
	if lo <= 0 || lo >= 1 {
		t.Errorf("all-k=n strata: lo = %g, want a nontrivial lower bound", lo)
	}

	// Mixed: one saturated stratum, one empty one — estimate strictly
	// inside (0,1) with a proper interval.
	p, lo, hi = StratifiedWilson([]Stratum{{W: 0.5, K: 20, N: 20}, {W: 0.5, K: 0, N: 20}}, Z95)
	if p != 0.5 {
		t.Errorf("half-saturated: p = %g, want 0.5", p)
	}
	if !(0 < lo && lo < p && p < hi && hi < 1) {
		t.Errorf("half-saturated: CI [%g,%g] does not bracket %g inside (0,1)", lo, hi, p)
	}
}

func TestStratifiedWilsonOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		strata := make([]Stratum, n)
		for i := range strata {
			nn := 1 + rng.Intn(200)
			strata[i] = Stratum{W: rng.Float64() + 0.01, K: rng.Intn(nn + 1), N: nn}
		}
		p0, lo0, hi0 := StratifiedWilson(strata, Z95)
		for shuffle := 0; shuffle < 8; shuffle++ {
			perm := append([]Stratum(nil), strata...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			p, lo, hi := StratifiedWilson(perm, Z95)
			if p != p0 || lo != lo0 || hi != hi0 {
				t.Fatalf("trial %d: permutation changed result: (%v,[%v,%v]) vs (%v,[%v,%v])",
					trial, p, lo, hi, p0, lo0, hi0)
			}
		}
	}
}

// Splitting one stratum into identical halves must not change the
// estimate — the merge is over subpopulations, not sample batches.
func TestStratifiedWilsonSplitInvariance(t *testing.T) {
	whole := []Stratum{{W: 0.6, K: 30, N: 100}, {W: 0.4, K: 2, N: 50}}
	split := []Stratum{
		{W: 0.3, K: 15, N: 50}, {W: 0.3, K: 15, N: 50},
		{W: 0.4, K: 2, N: 50},
	}
	p1, lo1, hi1 := StratifiedWilson(whole, Z95)
	p2, lo2, hi2 := StratifiedWilson(split, Z95)
	if math.Abs(p1-p2) > 1e-12 || math.Abs(lo1-lo2) > 1e-9 || math.Abs(hi1-hi2) > 1e-9 {
		t.Errorf("split halves changed estimate: (%g,[%g,%g]) vs (%g,[%g,%g])",
			p1, lo1, hi1, p2, lo2, hi2)
	}
}

// Stratification must tighten the interval when strata separate a
// rare-event class from a bulk class (the whole point of allocating
// replicas by class weight).
func TestStratifiedWilsonTightensSeparatedStrata(t *testing.T) {
	// 90% of the population never fails, 10% fails half the time;
	// sampled 200 runs each.
	strata := []Stratum{{W: 0.9, K: 0, N: 200}, {W: 0.1, K: 100, N: 200}}
	p, lo, hi := StratifiedWilson(strata, Z95)
	if math.Abs(p-0.05) > 1e-12 {
		t.Fatalf("p = %g, want 0.05", p)
	}
	// A pooled unstratified sample of the same 400 runs would see
	// k=20 (5%) with a wider interval.
	plo, phi := Wilson(20, 400, Z95)
	if hi-lo >= phi-plo {
		t.Errorf("stratified width %g not tighter than pooled %g", hi-lo, phi-plo)
	}
	if !(lo < p && p < hi) {
		t.Errorf("CI [%g,%g] does not contain p=%g", lo, hi, p)
	}
}
