package stats

import (
	"math"
	"sort"
)

// Stratum is one sampling stratum of a stratified binomial estimate: a
// subpopulation of weight W (its share of the population, need not be
// pre-normalized) from which N trials were drawn and K succeeded.
type Stratum struct {
	W float64 // population weight (>= 0; normalized internally)
	K int     // successes observed in this stratum
	N int     // trials drawn from this stratum
}

// wilsonFloat is Wilson with a real-valued success count — needed for
// stratified estimates where the effective success count p̂·n_eff is
// not an integer. It mirrors Wilson exactly on integral k (the
// single-stratum equivalence test pins this).
func wilsonFloat(k, n float64, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	p := k / n
	z2 := z * z
	denom := 1 + z2/n
	center := p + z2/(2*n)
	margin := z * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = (center - margin) / denom
	hi = (center + margin) / denom
	if k == 0 || lo < 0 {
		lo = 0
	}
	if k == n || hi > 1 {
		hi = 1
	}
	return lo, hi
}

// StratifiedWilson merges per-stratum binomial outcomes into one
// program-level estimate with a Wilson-style confidence interval.
//
// The point estimate is the weighted mean p̂ = Σ wₕ·p̂ₕ with weights
// normalized over the strata that have trials (a stratum with N=0
// contributes no information and is dropped; if its weight is
// material the caller should sample it, not hide it here). The
// variance of that estimator is Var = Σ wₕ²·p̂ₕ(1-p̂ₕ)/nₕ, from which
// an effective sample size n_eff = p̂(1-p̂)/Var recovers the size of
// an unstratified sample with the same precision; the interval is
// Wilson on (p̂·n_eff, n_eff). When the variance degenerates — every
// sampled stratum at p̂ₕ∈{0,1}, so Var = 0 — n_eff falls back to the
// pooled trial count Σnₕ, which keeps the familiar Wilson behavior at
// the closed ends (k=0 and k=n snap to exact bounds).
//
// The result is invariant under stratum order and under splitting a
// stratum into identical halves. No strata (or none with trials)
// returns p̂=0 with the vacuous interval [0,1].
func StratifiedWilson(strata []Stratum, z float64) (p, lo, hi float64) {
	// Canonicalize: order must not matter, and float summation is not
	// associative, so sum in a deterministic sorted order.
	s := make([]Stratum, 0, len(strata))
	for _, st := range strata {
		if st.N > 0 && st.W > 0 {
			s = append(s, st)
		}
	}
	if len(s) == 0 {
		return 0, 0, 1
	}
	sort.Slice(s, func(i, j int) bool {
		if s[i].W != s[j].W {
			return s[i].W < s[j].W
		}
		if s[i].N != s[j].N {
			return s[i].N < s[j].N
		}
		return s[i].K < s[j].K
	})
	var wsum float64
	for _, st := range s {
		wsum += st.W
	}
	var pooled int
	p = 0
	va := 0.0
	for _, st := range s {
		w := st.W / wsum
		k := st.K
		if k < 0 {
			k = 0
		}
		if k > st.N {
			k = st.N
		}
		ph := float64(k) / float64(st.N)
		p += w * ph
		va += w * w * ph * (1 - ph) / float64(st.N)
		pooled += st.N
	}
	neff := float64(pooled)
	if va > 0 && p > 0 && p < 1 {
		neff = p * (1 - p) / va
	}
	lo, hi = wilsonFloat(p*neff, neff, z)
	return p, lo, hi
}
