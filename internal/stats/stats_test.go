package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.Row("alpha", "1")
	tb.Row("a-much-longer-name", "2")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: each data line has the value in the same column.
	idx := strings.Index(lines[1], "value")
	for _, ln := range lines[3:] {
		if len(ln) <= idx {
			t.Errorf("row too short for aligned column: %q", ln)
		}
	}
}

func TestTableMissingCells(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.Row("only-one")
	if out := tb.String(); !strings.Contains(out, "only-one") {
		t.Errorf("row lost: %q", out)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 10); got != "#####....." {
		t.Errorf("Bar(0.5,10) = %q", got)
	}
	if got := Bar(0, 4); got != "...." {
		t.Errorf("Bar(0) = %q", got)
	}
	if got := Bar(1, 4); got != "####" {
		t.Errorf("Bar(1) = %q", got)
	}
	if got := Bar(-3, 4); got != "...." {
		t.Errorf("negative clamps: %q", got)
	}
	if got := Bar(7, 4); got != "####" {
		t.Errorf("overflow clamps: %q", got)
	}
	if got := Bar(math.NaN(), 4); got != "...." {
		t.Errorf("NaN clamps: %q", got)
	}
}

func TestSummaries(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if Median(xs) != 2.5 {
		t.Errorf("Median = %g", Median(xs))
	}
	if Median([]float64{1, 2, 9}) != 2 {
		t.Errorf("odd median wrong")
	}
	mn, mx := MinMax(xs)
	if mn != 1 || mx != 4 {
		t.Errorf("MinMax = %g %g", mn, mx)
	}
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean = %g", g)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty inputs should produce 0")
	}
	if GeoMean([]float64{1, -2}) != 0 {
		t.Error("non-positive input should produce 0")
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.5) != "50.00%" {
		t.Errorf("Pct = %q", Pct(0.5))
	}
	if X(1.275) != "1.27x" && X(1.275) != "1.28x" {
		t.Errorf("X = %q", X(1.275))
	}
}

func TestWilsonKnownValues(t *testing.T) {
	// Classic textbook case: 10 successes in 10 trials at 95% gives
	// [0.722, 1.0] (lower bound ≈ z²/(n+z²) complement).
	lo, hi := Wilson(10, 10, Z95)
	if math.Abs(lo-0.7225) > 0.005 || hi != 1 {
		t.Errorf("Wilson(10,10) = [%g,%g], want [~0.722,1]", lo, hi)
	}
	// Symmetric case: k = n/2 centers the interval on 0.5.
	lo, hi = Wilson(50, 100, Z95)
	if math.Abs((lo+hi)/2-0.5) > 1e-9 {
		t.Errorf("Wilson(50,100) not centered: [%g,%g]", lo, hi)
	}
	if math.Abs(lo-0.4038) > 0.005 || math.Abs(hi-0.5962) > 0.005 {
		t.Errorf("Wilson(50,100) = [%g,%g], want ~[0.404,0.596]", lo, hi)
	}
	// Zero successes still excludes only the top of the range.
	lo, hi = Wilson(0, 20, Z95)
	if lo != 0 || hi < 0.1 || hi > 0.2 {
		t.Errorf("Wilson(0,20) = [%g,%g]", lo, hi)
	}
}

func TestWilsonDegenerate(t *testing.T) {
	if lo, hi := Wilson(0, 0, Z95); lo != 0 || hi != 1 {
		t.Errorf("n=0 should be vacuous, got [%g,%g]", lo, hi)
	}
	if lo, hi := Wilson(-5, 10, Z95); lo != 0 || hi >= 0.5 {
		t.Errorf("negative k should clamp, got [%g,%g]", lo, hi)
	}
	if _, hi := Wilson(15, 10, Z95); hi != 1 {
		t.Errorf("k>n should clamp, got hi=%g", hi)
	}
}

// Property: the interval contains the point estimate, stays in [0,1],
// and shrinks as n grows at fixed proportion.
func TestWilsonProperties(t *testing.T) {
	check := func(k8, n8 uint8) bool {
		n := int(n8%200) + 1
		k := int(k8) % (n + 1)
		lo, hi := Wilson(k, n, Z95)
		p := float64(k) / float64(n)
		if lo < 0 || hi > 1 || lo > hi {
			return false
		}
		return lo <= p+1e-12 && p <= hi+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{10, 100, 1000} {
		lo1, hi1 := Wilson(n/2, n, Z95)
		lo2, hi2 := Wilson(n*5, n*10, Z95)
		if hi2-lo2 >= hi1-lo1 {
			t.Errorf("interval did not shrink from n=%d to n=%d", n, n*10)
		}
	}
}

// Property: Mean is bounded by MinMax.
func TestMeanBounded(t *testing.T) {
	check := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e9))
			}
		}
		if len(xs) == 0 {
			return true
		}
		mn, mx := MinMax(xs)
		m := Mean(xs)
		return m >= mn-1e-6 && m <= mx+1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
