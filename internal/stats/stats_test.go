package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.Row("alpha", "1")
	tb.Row("a-much-longer-name", "2")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: each data line has the value in the same column.
	idx := strings.Index(lines[1], "value")
	for _, ln := range lines[3:] {
		if len(ln) <= idx {
			t.Errorf("row too short for aligned column: %q", ln)
		}
	}
}

func TestTableMissingCells(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.Row("only-one")
	if out := tb.String(); !strings.Contains(out, "only-one") {
		t.Errorf("row lost: %q", out)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 10); got != "#####....." {
		t.Errorf("Bar(0.5,10) = %q", got)
	}
	if got := Bar(0, 4); got != "...." {
		t.Errorf("Bar(0) = %q", got)
	}
	if got := Bar(1, 4); got != "####" {
		t.Errorf("Bar(1) = %q", got)
	}
	if got := Bar(-3, 4); got != "...." {
		t.Errorf("negative clamps: %q", got)
	}
	if got := Bar(7, 4); got != "####" {
		t.Errorf("overflow clamps: %q", got)
	}
	if got := Bar(math.NaN(), 4); got != "...." {
		t.Errorf("NaN clamps: %q", got)
	}
}

func TestSummaries(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if Median(xs) != 2.5 {
		t.Errorf("Median = %g", Median(xs))
	}
	if Median([]float64{1, 2, 9}) != 2 {
		t.Errorf("odd median wrong")
	}
	mn, mx := MinMax(xs)
	if mn != 1 || mx != 4 {
		t.Errorf("MinMax = %g %g", mn, mx)
	}
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean = %g", g)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty inputs should produce 0")
	}
	if GeoMean([]float64{1, -2}) != 0 {
		t.Error("non-positive input should produce 0")
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.5) != "50.00%" {
		t.Errorf("Pct = %q", Pct(0.5))
	}
	if X(1.275) != "1.27x" && X(1.275) != "1.28x" {
		t.Errorf("X = %q", X(1.275))
	}
}

func TestWilsonKnownValues(t *testing.T) {
	// Classic textbook case: 10 successes in 10 trials at 95% gives
	// [0.722, 1.0] (lower bound ≈ z²/(n+z²) complement).
	lo, hi := Wilson(10, 10, Z95)
	if math.Abs(lo-0.7225) > 0.005 || hi != 1 {
		t.Errorf("Wilson(10,10) = [%g,%g], want [~0.722,1]", lo, hi)
	}
	// Symmetric case: k = n/2 centers the interval on 0.5.
	lo, hi = Wilson(50, 100, Z95)
	if math.Abs((lo+hi)/2-0.5) > 1e-9 {
		t.Errorf("Wilson(50,100) not centered: [%g,%g]", lo, hi)
	}
	if math.Abs(lo-0.4038) > 0.005 || math.Abs(hi-0.5962) > 0.005 {
		t.Errorf("Wilson(50,100) = [%g,%g], want ~[0.404,0.596]", lo, hi)
	}
	// Zero successes still excludes only the top of the range.
	lo, hi = Wilson(0, 20, Z95)
	if lo != 0 || hi < 0.1 || hi > 0.2 {
		t.Errorf("Wilson(0,20) = [%g,%g]", lo, hi)
	}
}

func TestWilsonDegenerate(t *testing.T) {
	if lo, hi := Wilson(0, 0, Z95); lo != 0 || hi != 1 {
		t.Errorf("n=0 should be vacuous, got [%g,%g]", lo, hi)
	}
	if lo, hi := Wilson(-5, 10, Z95); lo != 0 || hi >= 0.5 {
		t.Errorf("negative k should clamp, got [%g,%g]", lo, hi)
	}
	if _, hi := Wilson(15, 10, Z95); hi != 1 {
		t.Errorf("k>n should clamp, got hi=%g", hi)
	}
}

// Property: the interval contains the point estimate, stays in [0,1],
// and shrinks as n grows at fixed proportion.
func TestWilsonProperties(t *testing.T) {
	check := func(k8, n8 uint8) bool {
		n := int(n8%200) + 1
		k := int(k8) % (n + 1)
		lo, hi := Wilson(k, n, Z95)
		p := float64(k) / float64(n)
		if lo < 0 || hi > 1 || lo > hi {
			return false
		}
		return lo <= p+1e-12 && p <= hi+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{10, 100, 1000} {
		lo1, hi1 := Wilson(n/2, n, Z95)
		lo2, hi2 := Wilson(n*5, n*10, Z95)
		if hi2-lo2 >= hi1-lo1 {
			t.Errorf("interval did not shrink from n=%d to n=%d", n, n*10)
		}
	}
}

// Property: Mean is bounded by MinMax.
func TestMeanBounded(t *testing.T) {
	check := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e9))
			}
		}
		if len(xs) == 0 {
			return true
		}
		mn, mx := MinMax(xs)
		m := Mean(xs)
		return m >= mn-1e-6 && m <= mx+1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestWilsonEdgeCases pins the exact boundary behavior campaign code
// depends on: degenerate sample sizes, exact proportions at both ends,
// and the single-observation intervals.
func TestWilsonEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		k, n    int
		z       float64
		wantLo  float64 // -1 means "just check containment"
		wantHi  float64
		loExact bool
		hiExact bool
	}{
		{name: "n=0 is vacuous", k: 0, n: 0, z: Z95, wantLo: 0, wantHi: 1, loExact: true, hiExact: true},
		{name: "n=0 ignores k", k: 7, n: 0, z: Z95, wantLo: 0, wantHi: 1, loExact: true, hiExact: true},
		{name: "negative n is vacuous", k: 3, n: -2, z: Z95, wantLo: 0, wantHi: 1, loExact: true, hiExact: true},
		{name: "p=0 pins the lower bound", k: 0, n: 100, z: Z95, wantLo: 0, wantHi: -1, loExact: true},
		{name: "p=1 pins the upper bound", k: 100, n: 100, z: Z95, wantLo: -1, wantHi: 1, hiExact: true},
		{name: "n=1 failure", k: 0, n: 1, z: Z95, wantLo: 0, wantHi: -1, loExact: true},
		{name: "n=1 success", k: 1, n: 1, z: Z95, wantLo: -1, wantHi: 1, hiExact: true},
		{name: "z=0 collapses to the point estimate", k: 3, n: 4, z: 0, wantLo: 0.75, wantHi: 0.75, loExact: true, hiExact: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lo, hi := Wilson(tc.k, tc.n, tc.z)
			if lo < 0 || hi > 1 || lo > hi {
				t.Fatalf("interval [%g, %g] not a sub-interval of [0,1]", lo, hi)
			}
			if tc.loExact && lo != tc.wantLo {
				t.Errorf("lo = %g, want exactly %g", lo, tc.wantLo)
			}
			if tc.hiExact && hi != tc.wantHi {
				t.Errorf("hi = %g, want exactly %g", hi, tc.wantHi)
			}
			if tc.n > 0 {
				k := tc.k
				if k < 0 {
					k = 0
				}
				if k > tc.n {
					k = tc.n
				}
				p := float64(k) / float64(tc.n)
				if p < lo-1e-12 || p > hi+1e-12 {
					t.Errorf("point estimate %g outside [%g, %g]", p, lo, hi)
				}
			}
		})
	}

	// The n=1 intervals must be genuinely informative: one success
	// should rule out proportions near zero no better than ~[0.2, 1],
	// and must be strictly tighter than the vacuous [0, 1].
	lo, hi := Wilson(1, 1, Z95)
	if !(lo > 0 && lo < 0.5) || hi != 1 {
		t.Errorf("Wilson(1,1) = [%g, %g], want lower bound in (0, 0.5) and hi = 1", lo, hi)
	}
	lo0, hi0 := Wilson(0, 1, Z95)
	if lo0 != 0 || !(hi0 > 0.5 && hi0 < 1) {
		t.Errorf("Wilson(0,1) = [%g, %g], want [0, hi] with hi in (0.5, 1)", lo0, hi0)
	}
	// Symmetry: the k=0 and k=n intervals mirror each other.
	if math.Abs((1-hi0)-lo) > 1e-9 {
		t.Errorf("Wilson(0,1) and Wilson(1,1) are not mirrored: %g vs %g", 1-hi0, lo)
	}
}
