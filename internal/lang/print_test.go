package lang

import (
	"reflect"
	"strings"
	"testing"
)

// normalize strips positions and checker annotations so structural
// comparison survives a reformat.
func normalizeProgram(p *Program) interface{} {
	var norm func(v reflect.Value) interface{}
	norm = func(v reflect.Value) interface{} {
		switch v.Kind() {
		case reflect.Ptr, reflect.Interface:
			if v.IsNil() {
				return nil
			}
			return norm(v.Elem())
		case reflect.Struct:
			out := map[string]interface{}{"_type": v.Type().Name()}
			for i := 0; i < v.NumField(); i++ {
				name := v.Type().Field(i).Name
				if name == "Pos" || name == "T" || name == "IsArray" ||
					name == "Builtin" || name == "exprType" {
					continue
				}
				out[name] = norm(v.Field(i))
			}
			return out
		case reflect.Slice:
			var out []interface{}
			for i := 0; i < v.Len(); i++ {
				out = append(out, norm(v.Index(i)))
			}
			return out
		default:
			if !v.CanInterface() {
				return nil
			}
			return v.Interface()
		}
	}
	return norm(reflect.ValueOf(p))
}

func roundTrip(t *testing.T, src string) {
	t.Helper()
	p1, err := Parse(src)
	if err != nil {
		t.Fatalf("parse original: %v", err)
	}
	formatted := Format(p1)
	p2, err := Parse(formatted)
	if err != nil {
		t.Fatalf("re-parse formatted source: %v\n--- formatted:\n%s", err, formatted)
	}
	// Structural identity (modulo positions and annotations).
	if !reflect.DeepEqual(normalizeProgram(p1), normalizeProgram(p2)) {
		t.Fatalf("round trip changed the program\n--- formatted:\n%s", formatted)
	}
	// Idempotence: formatting the re-parsed program yields the same text.
	if again := Format(p2); again != formatted {
		t.Fatalf("formatter is not idempotent:\n%s\n---\n%s", formatted, again)
	}
	// The formatted program must still type-check.
	if _, err := Check(p2); err != nil {
		t.Fatalf("formatted program fails checking: %v\n%s", err, formatted)
	}
}

func TestFormatRoundTripBasics(t *testing.T) {
	sources := []string{
		`int f() { return 1 + 2 * 3; }`,
		`int f(int a, int b) { return (a + b) * (a - b); }`,
		`float f(float x) { if (x > 0.0) { return sqrt(x); } else { return -x; } }`,
		`int f(int x) {
			if (x == 0) { return 1; } else if (x == 1) { return 2; } else { return 3; }
		}`,
		`void f(int a[], int n) {
			for (int i = 0; i < n; i++) { a[i] += i * 2; }
			int j = 0;
			while (j < n) { j++; if (j == 3) { break; } continue; }
		}`,
		`void f(float a[], int n) {
			#pragma rskip ar(0.5)
			for (int i = 0; i < n; i = i + 1) {
				float s = 0.0;
				for (int k = 0; k < 4; k = k + 1) { s = s + a[i + k]; }
				a[i] = s;
			}
		}`,
		`int f() { return 1 && 2 || !3; }`,
		`float f() { return 2.0; }`,
		`float f() { return 1e10; }`,
		`int f(int x) { int t[8]; t[x % 8] = x / 2; return t[0]; }`,
		`int f(float x) { return int(x) + int(float(3)); }`,
	}
	for _, src := range sources {
		roundTrip(t, src)
	}
}

func TestFormatRoundTripBenchmarkShapes(t *testing.T) {
	// The full benchmark sources live in internal/bench; importing them
	// here would create a cycle, so the structurally hardest shapes are
	// replicated.
	roundTrip(t, `
float cndf(float x) {
	float sign = 1.0;
	float xx = x;
	if (xx < 0.0) {
		xx = -xx;
		sign = 0.0;
	}
	float k = 1.0 / (1.0 + 0.2316419 * xx);
	float val = 1.0 - 0.39894228 * exp(-0.5 * xx * xx) * k;
	if (sign < 0.5) {
		val = 1.0 - val;
	}
	return val;
}
void kernel(float a[], int size) {
	for (int i = 0; i < size; i = i + 1) {
		for (int j = i + 1; j < size; j = j + 1) {
			float sum = a[j * size + i];
			for (int k = 0; k < i; k = k + 1) {
				sum = sum - a[j * size + k] * a[k * size + i];
			}
			a[j * size + i] = sum / a[i * size + i];
		}
	}
}`)
}

func TestFormatParenthesization(t *testing.T) {
	// (a + b) * c must not round-trip into a + b * c.
	p, err := Parse(`int f(int a, int b, int c) { return (a + b) * c; }`)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(p)
	if !strings.Contains(out, "(a + b) * c") {
		t.Errorf("parenthesization lost:\n%s", out)
	}
	// a + b * c stays unparenthesized (inspect just the return line —
	// the signature's parameter list legitimately has parentheses).
	p2, _ := Parse(`int f(int a, int b, int c) { return a + b * c; }`)
	for _, line := range strings.Split(Format(p2), "\n") {
		if strings.Contains(line, "return") && strings.Contains(line, "(") {
			t.Errorf("gratuitous parentheses: %q", line)
		}
	}
}
