package lang

import (
	"strings"
	"testing"
)

func parseOK(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v\nsource:\n%s", err, src)
	}
	return p
}

func TestParseFunctions(t *testing.T) {
	p := parseOK(t, `
int add(int a, int b) { return a + b; }
float scale(float x[], int n) { return x[0]; }
void nop() { }
`)
	if len(p.Funcs) != 3 {
		t.Fatalf("got %d functions, want 3", len(p.Funcs))
	}
	add := p.Funcs[0]
	if add.Name != "add" || add.Ret != TypeInt || len(add.Params) != 2 {
		t.Errorf("add parsed wrong: %+v", add)
	}
	scale := p.Funcs[1]
	if !scale.Params[0].IsArray || scale.Params[0].Type != TypeFloat {
		t.Errorf("array param parsed wrong: %+v", scale.Params[0])
	}
	if p.Funcs[2].Ret != TypeVoid {
		t.Errorf("void return parsed wrong")
	}
}

func TestParseStatements(t *testing.T) {
	p := parseOK(t, `
void f(int n) {
	int x;
	int y = 2;
	float arr[16];
	x = y;
	arr[x] = 1.0;
	if (x < n) { x = x + 1; } else { x = 0; }
	if (x == 1) { x = 2; } else if (x == 2) { x = 3; }
	for (int i = 0; i < n; i = i + 1) { x = x + i; }
	for (;;) { break; }
	while (x > 0) { x = x - 1; continue; }
	return;
}
`)
	body := p.Funcs[0].Body.Stmts
	wantTypes := []string{"*lang.DeclStmt", "*lang.DeclStmt", "*lang.DeclStmt",
		"*lang.AssignStmt", "*lang.AssignStmt", "*lang.IfStmt", "*lang.IfStmt",
		"*lang.ForStmt", "*lang.ForStmt", "*lang.WhileStmt", "*lang.ReturnStmt"}
	if len(body) != len(wantTypes) {
		t.Fatalf("got %d statements, want %d", len(body), len(wantTypes))
	}
}

func TestParsePrecedence(t *testing.T) {
	p := parseOK(t, `int f(int a, int b, int c) { return a + b * c; }`)
	ret := p.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	top, ok := ret.Value.(*BinaryExpr)
	if !ok || top.Op != Plus {
		t.Fatalf("top operator: %+v", ret.Value)
	}
	if rhs, ok := top.Y.(*BinaryExpr); !ok || rhs.Op != Star {
		t.Fatalf("b*c should bind tighter: %+v", top.Y)
	}
}

func TestParseLogicalPrecedence(t *testing.T) {
	p := parseOK(t, `int f(int a, int b, int c) { return a || b && c; }`)
	ret := p.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	top := ret.Value.(*BinaryExpr)
	if top.Op != OrOr {
		t.Fatalf("|| should be top: %v", top.Op)
	}
	if rhs, ok := top.Y.(*BinaryExpr); !ok || rhs.Op != AndAnd {
		t.Fatalf("&& should bind tighter than ||")
	}
}

func TestParseUnaryAndCalls(t *testing.T) {
	p := parseOK(t, `
float g(float x) { return -x; }
float f(float x) { return sqrt(-x * 2.0) + g(x); }
int h(float x) { return int(x) + !0; }
`)
	if len(p.Funcs) != 3 {
		t.Fatal("parse failure")
	}
	f := p.Funcs[1].Body.Stmts[0].(*ReturnStmt).Value.(*BinaryExpr)
	call, ok := f.X.(*CallExpr)
	if !ok || call.Name != "sqrt" {
		t.Fatalf("sqrt call: %+v", f.X)
	}
}

func TestParseElseIfChain(t *testing.T) {
	p := parseOK(t, `int f(int x) {
	if (x == 0) { return 1; } else if (x == 1) { return 2; } else { return 3; }
}`)
	ifst := p.Funcs[0].Body.Stmts[0].(*IfStmt)
	if ifst.Else == nil || len(ifst.Else.Stmts) != 1 {
		t.Fatal("else-if chain lost")
	}
	if _, ok := ifst.Else.Stmts[0].(*IfStmt); !ok {
		t.Fatal("else-if not nested as IfStmt")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"int f( { }", "expected type"},
		{"int f() { return 1 }", "expected ';'"},
		{"int f() { x = ; }", "unexpected"},
		{"int f() { if x { } }", "expected '('"},
		{"int f() { int a[0]; }", "bad array length"},
		{"int f() { int a[-1]; }", "expected int literal"},
		{"int f() { 1 = 2; }", "not assignable"},
		{"void f(void v) { }", "void parameter"},
		{"int f() { for (int i = 0 i < 2; ) {} }", "expected ';'"},
		{"int f() {", "unterminated block"},
		{"int f() { float t[4] = 0.0; }", "expected"},
	}
	for _, tt := range cases {
		_, err := Parse(tt.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q", tt.src, tt.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tt.wantSub) {
			t.Errorf("Parse(%q): error %q does not contain %q", tt.src, err, tt.wantSub)
		}
	}
}

func TestParseAllBenchmarkShapes(t *testing.T) {
	// The nine benchmark sources stress every construct; parsing them
	// lives in the bench package tests, but the representative shapes
	// are checked here too.
	parseOK(t, `
void kernel(float a[], int size) {
	for (int i = 0; i < size; i = i + 1) {
		for (int j = i + 1; j < size; j = j + 1) {
			float sum = a[j * size + i];
			for (int k = 0; k < i; k = k + 1) {
				sum = sum - a[j * size + k] * a[k * size + i];
			}
			a[j * size + i] = sum / a[i * size + i];
		}
	}
}`)
}
