package lang

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics mutates valid sources by deleting, duplicating
// and swapping tokens; the frontend must return an error or a program,
// never panic.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		`int f(int a, int b) { return a + b * 2; }`,
		`void kernel(float a[], int n) {
			for (int i = 0; i < n; i++) {
				float s = 0.0;
				for (int j = 0; j < 4; j++) { s += a[i + j]; }
				a[i] = s / 4.0;
			}
		}`,
		`float g(float x) { if (x > 0.0) { return sqrt(x); } else { return -x; } }`,
		`int h(int n) {
			#pragma rskip ar(0.5)
			for (int i = 0; i < n; i += 1) { n--; }
			return n;
		}`,
	}
	rng := rand.New(rand.NewSource(99))
	mutate := func(src string) string {
		words := strings.Fields(src)
		if len(words) < 2 {
			return src
		}
		switch rng.Intn(4) {
		case 0: // delete a token
			i := rng.Intn(len(words))
			words = append(words[:i], words[i+1:]...)
		case 1: // duplicate a token
			i := rng.Intn(len(words))
			words = append(words[:i+1], words[i:]...)
		case 2: // swap two tokens
			i, j := rng.Intn(len(words)), rng.Intn(len(words))
			words[i], words[j] = words[j], words[i]
		case 3: // truncate
			words = words[:rng.Intn(len(words))+1]
		}
		return strings.Join(words, " ")
	}
	for i := 0; i < 2000; i++ {
		src := mutate(seeds[rng.Intn(len(seeds))])
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("frontend panicked on %q: %v", src, r)
				}
			}()
			if prog, err := Parse(src); err == nil {
				// Checking a syntactically-valid mutation must not
				// panic either.
				_, _ = Check(prog)
			}
		}()
	}
}

// TestLexerNeverPanics throws byte soup at the lexer.
func TestLexerNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := "abz019 \t\n+-*/%=<>!&|(){}[];,.#\"'\\~^?:e"
	for i := 0; i < 2000; i++ {
		n := rng.Intn(64)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("lexer panicked on %q: %v", sb.String(), r)
				}
			}()
			_, _ = Tokenize(sb.String())
		}()
	}
}
