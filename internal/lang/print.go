package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders a parsed program back to MiniC source. The output
// re-parses to a structurally identical program (round-trip property),
// which makes it usable as a formatter and as the backend of
// source-to-source tooling.
func Format(p *Program) string {
	var pr printer
	for i, fn := range p.Funcs {
		if i > 0 {
			pr.nl()
		}
		pr.funcDecl(fn)
	}
	return pr.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) line(format string, args ...interface{}) {
	p.sb.WriteString(strings.Repeat("\t", p.indent))
	fmt.Fprintf(&p.sb, format, args...)
	p.nl()
}

func (p *printer) nl() { p.sb.WriteByte('\n') }

func (p *printer) funcDecl(fn *FuncDecl) {
	params := make([]string, len(fn.Params))
	for i, pa := range fn.Params {
		suffix := ""
		if pa.IsArray {
			suffix = "[]"
		}
		params[i] = fmt.Sprintf("%s %s%s", pa.Type, pa.Name, suffix)
	}
	p.line("%s %s(%s) {", fn.Ret, fn.Name, strings.Join(params, ", "))
	p.indent++
	for _, s := range fn.Body.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.line("}")
}

func (p *printer) stmt(s Stmt) {
	switch st := s.(type) {
	case *BlockStmt:
		p.line("{")
		p.indent++
		for _, inner := range st.Stmts {
			p.stmt(inner)
		}
		p.indent--
		p.line("}")
	case *DeclStmt:
		switch {
		case st.ArrayLen > 0:
			p.line("%s %s[%d];", st.Type, st.Name, st.ArrayLen)
		case st.Init != nil:
			p.line("%s %s = %s;", st.Type, st.Name, exprString(st.Init))
		default:
			p.line("%s %s;", st.Type, st.Name)
		}
	case *AssignStmt:
		p.line("%s;", simpleStmtString(st))
	case *IfStmt:
		p.ifStmt(st)
	case *ForStmt:
		if st.ARPragma != nil {
			p.line("#pragma rskip ar(%s)", strconv.FormatFloat(*st.ARPragma, 'g', -1, 64))
		}
		init, post := "", ""
		if st.Init != nil {
			init = headerStmtString(st.Init)
		}
		cond := ""
		if st.Cond != nil {
			cond = exprString(st.Cond)
		}
		if st.Post != nil {
			post = headerStmtString(st.Post)
		}
		p.line("for (%s; %s; %s) {", init, cond, post)
		p.indent++
		for _, inner := range st.Body.Stmts {
			p.stmt(inner)
		}
		p.indent--
		p.line("}")
	case *WhileStmt:
		p.line("while (%s) {", exprString(st.Cond))
		p.indent++
		for _, inner := range st.Body.Stmts {
			p.stmt(inner)
		}
		p.indent--
		p.line("}")
	case *ReturnStmt:
		if st.Value == nil {
			p.line("return;")
		} else {
			p.line("return %s;", exprString(st.Value))
		}
	case *ExprStmt:
		p.line("%s;", exprString(st.X))
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	default:
		p.line("/* unknown statement %T */", s)
	}
}

func (p *printer) ifStmt(st *IfStmt) {
	p.line("if (%s) {", exprString(st.Cond))
	p.indent++
	for _, inner := range st.Then.Stmts {
		p.stmt(inner)
	}
	p.indent--
	if st.Else == nil {
		p.line("}")
		return
	}
	// Re-sugar `else { if ... }` chains produced by the parser.
	if len(st.Else.Stmts) == 1 {
		if inner, ok := st.Else.Stmts[0].(*IfStmt); ok {
			p.sb.WriteString(strings.Repeat("\t", p.indent))
			p.sb.WriteString("} else ")
			p.elseIf(inner)
			return
		}
	}
	p.line("} else {")
	p.indent++
	for _, inner := range st.Else.Stmts {
		p.stmt(inner)
	}
	p.indent--
	p.line("}")
}

// elseIf prints an if statement continuing an `} else ` prefix.
func (p *printer) elseIf(st *IfStmt) {
	fmt.Fprintf(&p.sb, "if (%s) {\n", exprString(st.Cond))
	p.indent++
	for _, inner := range st.Then.Stmts {
		p.stmt(inner)
	}
	p.indent--
	if st.Else == nil {
		p.line("}")
		return
	}
	if len(st.Else.Stmts) == 1 {
		if inner, ok := st.Else.Stmts[0].(*IfStmt); ok {
			p.sb.WriteString(strings.Repeat("\t", p.indent))
			p.sb.WriteString("} else ")
			p.elseIf(inner)
			return
		}
	}
	p.line("} else {")
	p.indent++
	for _, inner := range st.Else.Stmts {
		p.stmt(inner)
	}
	p.indent--
	p.line("}")
}

// headerStmtString renders a for-header init/post without semicolon.
func headerStmtString(s Stmt) string {
	switch st := s.(type) {
	case *DeclStmt:
		if st.Init != nil {
			return fmt.Sprintf("%s %s = %s", st.Type, st.Name, exprString(st.Init))
		}
		return fmt.Sprintf("%s %s", st.Type, st.Name)
	case *AssignStmt:
		return simpleStmtString(st)
	case *ExprStmt:
		return exprString(st.X)
	}
	return fmt.Sprintf("/* %T */", s)
}

func simpleStmtString(st *AssignStmt) string {
	lhs := exprString(st.LHS)
	if st.Op == EOF {
		return fmt.Sprintf("%s = %s", lhs, exprString(st.RHS))
	}
	// x += 1 round-trips as the compound form; x++ sugar is not
	// reconstructed (it parses identically).
	opText := map[Kind]string{Plus: "+=", Minus: "-=", Star: "*=", Slash: "/="}[st.Op]
	return fmt.Sprintf("%s %s %s", lhs, opText, exprString(st.RHS))
}

// precedence mirrors the parser's table for minimal parenthesization.
func precedenceOf(op Kind) int {
	if p, ok := precTable[op]; ok {
		return p
	}
	return 7 // primary
}

func exprString(e Expr) string {
	return exprPrec(e, 0)
}

func exprPrec(e Expr, parent int) string {
	switch ex := e.(type) {
	case *IntLitExpr:
		return strconv.FormatInt(ex.Value, 10)
	case *FloatLitExpr:
		s := strconv.FormatFloat(ex.Value, 'g', -1, 64)
		// Float literals must keep their floatness through re-parsing.
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *NameExpr:
		return ex.Name
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", ex.Base, exprString(ex.Idx))
	case *CallExpr:
		args := make([]string, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = exprString(a)
		}
		return fmt.Sprintf("%s(%s)", ex.Name, strings.Join(args, ", "))
	case *UnaryExpr:
		op := "-"
		if ex.Op == Not {
			op = "!"
		}
		return op + exprPrec(ex.X, 7)
	case *BinaryExpr:
		prec := precedenceOf(ex.Op)
		opText := map[Kind]string{
			OrOr: "||", AndAnd: "&&", EqEq: "==", NotEq: "!=",
			Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
			Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
		}[ex.Op]
		s := fmt.Sprintf("%s %s %s",
			exprPrec(ex.X, prec), opText, exprPrec(ex.Y, prec+1))
		if prec < parent {
			return "(" + s + ")"
		}
		return s
	}
	return fmt.Sprintf("/* %T */", e)
}
