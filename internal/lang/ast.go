package lang

// TypeKind is a MiniC source-level type.
type TypeKind uint8

// MiniC types. Arrays only appear as parameter/local declarations; an
// array-typed expression decays to its element type plus an "is array"
// flag on the symbol.
const (
	TypeVoid TypeKind = iota
	TypeInt
	TypeFloat
)

func (t TypeKind) String() string {
	switch t {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	}
	return "?"
}

// Program is a parsed compilation unit.
type Program struct {
	Funcs []*FuncDecl
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    TypeKind
	Params []ParamDecl
	Body   *BlockStmt
	Pos    Pos
}

// ParamDecl is one function parameter; IsArray marks `T name[]`.
type ParamDecl struct {
	Name    string
	Type    TypeKind
	IsArray bool
	Pos     Pos
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// Statements.
type (
	// BlockStmt is `{ ... }`.
	BlockStmt struct {
		Stmts []Stmt
		Pos   Pos
	}
	// DeclStmt declares a scalar (`int x;`, `float y = e;`) or a local
	// array (`float t[256];`).
	DeclStmt struct {
		Name     string
		Type     TypeKind
		ArrayLen int64 // 0 for scalars
		Init     Expr  // nil when absent (scalars only)
		Pos      Pos
	}
	// AssignStmt is `lhs = rhs;` where lhs is a name or an index.
	// Op is EOF for plain assignment, or Plus/Minus/Star/Slash for the
	// compound forms (`x += e`, including `x++` as `x += 1`). The
	// lowerer evaluates a compound target's address exactly once.
	AssignStmt struct {
		LHS Expr // *NameExpr or *IndexExpr
		RHS Expr
		Op  Kind
		Pos Pos
	}
	// IfStmt is `if (cond) then else els`.
	IfStmt struct {
		Cond Expr
		Then *BlockStmt
		Else *BlockStmt // nil when absent
		Pos  Pos
	}
	// ForStmt is `for (init; cond; post) body`; init/post are
	// assignments or declarations and may be nil, cond may be nil.
	// ARPragma, when non-nil, carries a `#pragma rskip ar(x)` override
	// of the acceptable range for this loop's prediction-based
	// protection (§3 footnote 5: ar(0) demands exact validation).
	ForStmt struct {
		Init     Stmt
		Cond     Expr
		Post     Stmt
		Body     *BlockStmt
		ARPragma *float64
		Pos      Pos
	}
	// WhileStmt is `while (cond) body`.
	WhileStmt struct {
		Cond Expr
		Body *BlockStmt
		Pos  Pos
	}
	// ReturnStmt is `return e?;`.
	ReturnStmt struct {
		Value Expr // nil for bare return
		Pos   Pos
	}
	// ExprStmt is an expression evaluated for effect (a call).
	ExprStmt struct {
		X   Expr
		Pos Pos
	}
	// BreakStmt exits the innermost loop.
	BreakStmt struct{ Pos Pos }
	// ContinueStmt jumps to the innermost loop's post/cond.
	ContinueStmt struct{ Pos Pos }
)

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Expr is implemented by all expression nodes. The checker fills in
// each node's type.
type Expr interface {
	exprNode()
	// ResultType returns the checked type (valid after Check).
	ResultType() TypeKind
	ExprPos() Pos
}

type exprType struct{ T TypeKind }

func (e *exprType) ResultType() TypeKind { return e.T }

// Expressions.
type (
	// IntLitExpr is an integer literal.
	IntLitExpr struct {
		exprType
		Value int64
		Pos   Pos
	}
	// FloatLitExpr is a float literal.
	FloatLitExpr struct {
		exprType
		Value float64
		Pos   Pos
	}
	// NameExpr references a variable or parameter.
	NameExpr struct {
		exprType
		Name    string
		Pos     Pos
		IsArray bool // set by the checker
	}
	// IndexExpr is `base[idx]`.
	IndexExpr struct {
		exprType
		Base string // array name (arrays are not first-class)
		Idx  Expr
		Pos  Pos
	}
	// CallExpr calls a user function or builtin.
	CallExpr struct {
		exprType
		Name string
		Args []Expr
		Pos  Pos
		// Builtin is non-empty for math builtins and casts
		// (sqrt/exp/log/fabs/pow/floor/fmin/fmax/int/float).
		Builtin string
	}
	// UnaryExpr is `-x` or `!x`.
	UnaryExpr struct {
		exprType
		Op  Kind // Minus or Not
		X   Expr
		Pos Pos
	}
	// BinaryExpr is a binary operation; for && and || evaluation is
	// short-circuiting.
	BinaryExpr struct {
		exprType
		Op   Kind
		X, Y Expr
		Pos  Pos
	}
)

func (*IntLitExpr) exprNode()   {}
func (*FloatLitExpr) exprNode() {}
func (*NameExpr) exprNode()     {}
func (*IndexExpr) exprNode()    {}
func (*CallExpr) exprNode()     {}
func (*UnaryExpr) exprNode()    {}
func (*BinaryExpr) exprNode()   {}

func (e *IntLitExpr) ExprPos() Pos   { return e.Pos }
func (e *FloatLitExpr) ExprPos() Pos { return e.Pos }
func (e *NameExpr) ExprPos() Pos     { return e.Pos }
func (e *IndexExpr) ExprPos() Pos    { return e.Pos }
func (e *CallExpr) ExprPos() Pos     { return e.Pos }
func (e *UnaryExpr) ExprPos() Pos    { return e.Pos }
func (e *BinaryExpr) ExprPos() Pos   { return e.Pos }
