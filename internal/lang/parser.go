package lang

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser for MiniC.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a full MiniC program.
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog := &Program{}
	for p.cur().Kind != EOF {
		fn, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, fn)
	}
	return prog, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) expect(k Kind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, errf(p.cur().Pos, "expected %s, found %s %q",
			k, p.cur().Kind, p.cur().Text)
	}
	return p.next(), nil
}

func (p *Parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) parseType() (TypeKind, error) {
	switch p.cur().Kind {
	case KwInt:
		p.next()
		return TypeInt, nil
	case KwFloat:
		p.next()
		return TypeFloat, nil
	case KwVoid:
		p.next()
		return TypeVoid, nil
	}
	return TypeVoid, errf(p.cur().Pos, "expected type, found %q", p.cur().Text)
}

func (p *Parser) parseFunc() (*FuncDecl, error) {
	pos := p.cur().Pos
	ret, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name.Text, Ret: ret, Pos: pos}
	if !p.accept(RParen) {
		for {
			ppos := p.cur().Pos
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if pt == TypeVoid {
				return nil, errf(ppos, "void parameter")
			}
			pname, err := p.expect(Ident)
			if err != nil {
				return nil, err
			}
			isArr := false
			if p.accept(LBracket) {
				if _, err := p.expect(RBracket); err != nil {
					return nil, err
				}
				isArr = true
			}
			fn.Params = append(fn.Params, ParamDecl{
				Name: pname.Text, Type: pt, IsArray: isArr, Pos: ppos,
			})
			if p.accept(RParen) {
				break
			}
			if _, err := p.expect(Comma); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: lb.Pos}
	for !p.accept(RBrace) {
		if p.cur().Kind == EOF {
			return nil, errf(lb.Pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case LBrace:
		return p.parseBlock()
	case KwInt, KwFloat:
		s, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return s, nil
	case KwIf:
		return p.parseIf()
	case KwFor:
		return p.parseFor()
	case Pragma:
		return p.parsePragma()
	case KwWhile:
		return p.parseWhile()
	case KwReturn:
		t := p.next()
		rs := &ReturnStmt{Pos: t.Pos}
		if p.cur().Kind != Semi {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.Value = e
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return rs, nil
	case KwBreak:
		t := p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: t.Pos}, nil
	case KwContinue:
		t := p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: t.Pos}, nil
	}
	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return s, nil
}

// parseDecl parses `T name;`, `T name = e;` or `T name[N];` without
// the trailing semicolon.
func (p *Parser) parseDecl() (Stmt, error) {
	pos := p.cur().Pos
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(Ident)
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Name: name.Text, Type: t, Pos: pos}
	if p.accept(LBracket) {
		lit, err := p.expect(IntLit)
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(lit.Text, 10, 64)
		if err != nil || n <= 0 {
			return nil, errf(lit.Pos, "bad array length %q", lit.Text)
		}
		d.ArrayLen = n
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
		return d, nil
	}
	if p.accept(Assign) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	return d, nil
}

// parseSimpleStmt parses an assignment or expression statement without
// the trailing semicolon (shared by for-headers and plain statements).
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	pos := p.cur().Pos
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	assignable := func() error {
		switch e.(type) {
		case *NameExpr, *IndexExpr:
			return nil
		}
		return errf(pos, "left side of assignment is not assignable")
	}
	switch p.cur().Kind {
	case Assign:
		p.next()
		if err := assignable(); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: e, RHS: rhs, Op: EOF, Pos: pos}, nil
	case PlusAssign, MinusAssign, StarAssign, SlashAssign:
		opTok := p.next()
		if err := assignable(); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		op := map[Kind]Kind{
			PlusAssign: Plus, MinusAssign: Minus,
			StarAssign: Star, SlashAssign: Slash,
		}[opTok.Kind]
		return &AssignStmt{LHS: e, RHS: rhs, Op: op, Pos: pos}, nil
	case PlusPlus, MinusMinus:
		opTok := p.next()
		if err := assignable(); err != nil {
			return nil, err
		}
		op := Plus
		if opTok.Kind == MinusMinus {
			op = Minus
		}
		one := &IntLitExpr{Value: 1, Pos: opTok.Pos}
		return &AssignStmt{LHS: e, RHS: one, Op: op, Pos: pos}, nil
	}
	return &ExprStmt{X: e, Pos: pos}, nil
}

// parsePragma handles `#pragma rskip ar(<value>)`, which must precede
// a for statement and overrides that loop's acceptable range.
func (p *Parser) parsePragma() (Stmt, error) {
	t := p.next()
	var ar float64
	if n, err := fmt.Sscanf(t.Text, "rskip ar(%g)", &ar); n != 1 || err != nil {
		return nil, errf(t.Pos, "malformed pragma %q (expected `rskip ar(<value>)`)", t.Text)
	}
	if ar < 0 {
		return nil, errf(t.Pos, "acceptable range must be non-negative, got %g", ar)
	}
	if p.cur().Kind != KwFor {
		return nil, errf(t.Pos, "#pragma rskip must precede a for loop")
	}
	st, err := p.parseFor()
	if err != nil {
		return nil, err
	}
	st.(*ForStmt).ARPragma = &ar
	return st, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	t := p.next() // if
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, Pos: t.Pos}
	if p.accept(KwElse) {
		if p.cur().Kind == KwIf {
			inner, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = &BlockStmt{Stmts: []Stmt{inner}, Pos: inner.(*IfStmt).Pos}
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	t := p.next() // for
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	st := &ForStmt{Pos: t.Pos}
	if p.cur().Kind != Semi {
		var init Stmt
		var err error
		if p.cur().Kind == KwInt || p.cur().Kind == KwFloat {
			init, err = p.parseDecl()
		} else {
			init, err = p.parseSimpleStmt()
		}
		if err != nil {
			return nil, err
		}
		st.Init = init
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if p.cur().Kind != Semi {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if p.cur().Kind != RParen {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	t := p.next() // while
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Pos: t.Pos}, nil
}

// Expression parsing: precedence climbing.
// Levels (low→high): || ; && ; == != ; < <= > >= ; + - ; * / % ; unary.

func (p *Parser) parseExpr() (Expr, error) { return p.parseBinary(0) }

var precTable = map[Kind]int{
	OrOr: 1, AndAnd: 2,
	EqEq: 3, NotEq: 3,
	Lt: 4, Le: 4, Gt: 4, Ge: 4,
	Plus: 5, Minus: 5,
	Star: 6, Slash: 6, Percent: 6,
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().Kind
		prec, ok := precTable[op]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		opTok := p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op, X: lhs, Y: rhs, Pos: opTok.Pos}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case Minus, Not:
		t := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.Kind, X: x, Pos: t.Pos}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case IntLit:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad integer literal %q", t.Text)
		}
		return &IntLitExpr{Value: v, Pos: t.Pos}, nil
	case FloatLit:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad float literal %q", t.Text)
		}
		return &FloatLitExpr{Value: v, Pos: t.Pos}, nil
	case KwInt, KwFloat:
		// Cast syntax: int(expr), float(expr).
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		b := "int"
		if t.Kind == KwFloat {
			b = "float"
		}
		return &CallExpr{Name: b, Builtin: b, Args: []Expr{arg}, Pos: t.Pos}, nil
	case Ident:
		p.next()
		switch p.cur().Kind {
		case LParen:
			p.next()
			call := &CallExpr{Name: t.Text, Pos: t.Pos}
			if !p.accept(RParen) {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.accept(RParen) {
						break
					}
					if _, err := p.expect(Comma); err != nil {
						return nil, err
					}
				}
			}
			return call, nil
		case LBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Base: t.Text, Idx: idx, Pos: t.Pos}, nil
		}
		return &NameExpr{Name: t.Text, Pos: t.Pos}, nil
	case LParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(t.Pos, "unexpected %s %q in expression", t.Kind, t.Text)
}
