package lang

import "testing"

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	out := make([]Kind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	tests := []struct {
		src  string
		want []Kind
	}{
		{"", []Kind{EOF}},
		{"x", []Kind{Ident, EOF}},
		{"int x;", []Kind{KwInt, Ident, Semi, EOF}},
		{"x = 1 + 2;", []Kind{Ident, Assign, IntLit, Plus, IntLit, Semi, EOF}},
		{"a[i] = b[j];", []Kind{Ident, LBracket, Ident, RBracket, Assign,
			Ident, LBracket, Ident, RBracket, Semi, EOF}},
		{"1.5 2. .5 1e3 1.5e-2", []Kind{FloatLit, FloatLit, FloatLit, FloatLit, FloatLit, EOF}},
		{"42 0 123456", []Kind{IntLit, IntLit, IntLit, EOF}},
		{"< <= > >= == != = ! && ||", []Kind{Lt, Le, Gt, Ge, EqEq, NotEq,
			Assign, Not, AndAnd, OrOr, EOF}},
		{"+ - * / %", []Kind{Plus, Minus, Star, Slash, Percent, EOF}},
		{"( ) { } [ ] , ;", []Kind{LParen, RParen, LBrace, RBrace,
			LBracket, RBracket, Comma, Semi, EOF}},
		{"if else for while return break continue", []Kind{KwIf, KwElse,
			KwFor, KwWhile, KwReturn, KwBreak, KwContinue, EOF}},
		{"int float void", []Kind{KwInt, KwFloat, KwVoid, EOF}},
	}
	for _, tt := range tests {
		got := kinds(t, tt.src)
		if len(got) != len(tt.want) {
			t.Errorf("%q: got %v, want %v", tt.src, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("%q token %d: got %v, want %v", tt.src, i, got[i], tt.want[i])
			}
		}
	}
}

func TestLexComments(t *testing.T) {
	got := kinds(t, "a // line comment\nb /* block\ncomment */ c")
	want := []Kind{Ident, Ident, Ident, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestLexIdentifiers(t *testing.T) {
	toks, err := Tokenize("foo _bar baz123 intx")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"foo", "_bar", "baz123", "intx"}
	for i, w := range want {
		if toks[i].Kind != Ident || toks[i].Text != w {
			t.Errorf("token %d: got %v %q, want Ident %q", i, toks[i].Kind, toks[i].Text, w)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("token a at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("token b at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "#", "a & b", "a | b", "/* unterminated", "$"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): expected error", src)
		}
	}
}

func TestLexExponentNotGreedy(t *testing.T) {
	// "1e" followed by a non-digit must not consume the 'e'.
	toks, err := Tokenize("1 end")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != IntLit || toks[1].Kind != Ident || toks[1].Text != "end" {
		t.Errorf("got %v %q / %v %q", toks[0].Kind, toks[0].Text, toks[1].Kind, toks[1].Text)
	}
}
