// Package lang implements the MiniC frontend: a small C-like language
// in which the benchmark kernels are written, so that RSkip genuinely
// "accepts unprotected source code and generates a resilient
// executable" as the paper describes. The package provides a lexer,
// parser, AST and type checker; package lower translates checked ASTs
// into the IR.
package lang

import "fmt"

// Kind identifies a token class.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	Ident
	IntLit
	FloatLit

	// Keywords.
	KwInt
	KwFloat
	KwVoid
	KwIf
	KwElse
	KwFor
	KwWhile
	KwReturn
	KwBreak
	KwContinue

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Comma
	Semi
	Assign
	Plus
	Minus
	Star
	Slash
	Percent
	Not
	Lt
	Le
	Gt
	Ge
	EqEq
	NotEq
	AndAnd
	OrOr
	// Compound assignment and increment/decrement.
	PlusAssign
	MinusAssign
	StarAssign
	SlashAssign
	PlusPlus
	MinusMinus
	// Pragma is a '#pragma ...' directive line; Text carries everything
	// after '#pragma'.
	Pragma
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", IntLit: "int literal", FloatLit: "float literal",
	KwInt: "'int'", KwFloat: "'float'", KwVoid: "'void'", KwIf: "'if'", KwElse: "'else'",
	KwFor: "'for'", KwWhile: "'while'", KwReturn: "'return'", KwBreak: "'break'",
	KwContinue: "'continue'",
	LParen:     "'('", RParen: "')'", LBrace: "'{'", RBrace: "'}'",
	LBracket: "'['", RBracket: "']'", Comma: "','", Semi: "';'", Assign: "'='",
	Plus: "'+'", Minus: "'-'", Star: "'*'", Slash: "'/'", Percent: "'%'",
	Not: "'!'", Lt: "'<'", Le: "'<='", Gt: "'>'", Ge: "'>='",
	EqEq: "'=='", NotEq: "'!='", AndAnd: "'&&'", OrOr: "'||'",
	PlusAssign: "'+='", MinusAssign: "'-='", StarAssign: "'*='", SlashAssign: "'/='",
	PlusPlus: "'++'", MinusMinus: "'--'",
	Pragma: "pragma",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"int": KwInt, "float": KwFloat, "void": KwVoid,
	"if": KwIf, "else": KwElse, "for": KwFor, "while": KwWhile,
	"return": KwReturn, "break": KwBreak, "continue": KwContinue,
}

// Token is one lexical token with its source position.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// Pos is a line/column source position (1-based).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a frontend diagnostic carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
