package lang

import "fmt"

// Builtins maps math builtin names to their arity. All take and return
// float except the int/float casts, which convert.
var Builtins = map[string]int{
	"sqrt": 1, "exp": 1, "log": 1, "fabs": 1, "floor": 1,
	"pow": 2, "fmin": 2, "fmax": 2,
	"int": 1, "float": 1,
}

// Symbol describes a declared name inside a function.
type Symbol struct {
	Name    string
	Type    TypeKind
	IsArray bool
}

// FuncSig is a function signature visible to callers.
type FuncSig struct {
	Name   string
	Ret    TypeKind
	Params []ParamDecl
}

// Check type-checks the program in place, annotating every expression
// with its result type and resolving calls. It returns the table of
// function signatures on success.
func Check(prog *Program) (map[string]*FuncSig, error) {
	sigs := make(map[string]*FuncSig, len(prog.Funcs))
	for _, fn := range prog.Funcs {
		if _, dup := sigs[fn.Name]; dup {
			return nil, errf(fn.Pos, "duplicate function %q", fn.Name)
		}
		if _, isBuiltin := Builtins[fn.Name]; isBuiltin {
			return nil, errf(fn.Pos, "function %q shadows a builtin", fn.Name)
		}
		sigs[fn.Name] = &FuncSig{Name: fn.Name, Ret: fn.Ret, Params: fn.Params}
	}
	for _, fn := range prog.Funcs {
		c := &checker{sigs: sigs, fn: fn}
		c.push()
		for _, p := range fn.Params {
			if err := c.declare(p.Pos, p.Name, p.Type, p.IsArray); err != nil {
				return nil, err
			}
		}
		if err := c.checkBlock(fn.Body, false); err != nil {
			return nil, err
		}
		c.pop()
	}
	return sigs, nil
}

type checker struct {
	sigs   map[string]*FuncSig
	fn     *FuncDecl
	scopes []map[string]*Symbol
	loops  int
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(pos Pos, name string, t TypeKind, isArray bool) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return errf(pos, "%q redeclared in this scope", name)
	}
	top[name] = &Symbol{Name: name, Type: t, IsArray: isArray}
	return nil
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (c *checker) checkBlock(b *BlockStmt, ownScope bool) error {
	if ownScope {
		c.push()
		defer c.pop()
	}
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return c.checkBlock(st, true)
	case *DeclStmt:
		if st.Type == TypeVoid {
			return errf(st.Pos, "void variable %q", st.Name)
		}
		if st.Init != nil {
			if st.ArrayLen > 0 {
				return errf(st.Pos, "array %q cannot have an initializer", st.Name)
			}
			t, err := c.checkExpr(st.Init)
			if err != nil {
				return err
			}
			if err := c.assignable(st.Pos, st.Type, t, st.Init); err != nil {
				return err
			}
		}
		return c.declare(st.Pos, st.Name, st.Type, st.ArrayLen > 0)
	case *AssignStmt:
		lt, err := c.checkExpr(st.LHS)
		if err != nil {
			return err
		}
		if n, ok := st.LHS.(*NameExpr); ok && n.IsArray {
			return errf(st.Pos, "cannot assign to array %q", n.Name)
		}
		rt, err := c.checkExpr(st.RHS)
		if err != nil {
			return err
		}
		if st.Op != EOF {
			if lt == TypeVoid || rt == TypeVoid {
				return errf(st.Pos, "void operand in compound assignment")
			}
			if st.Op == Slash && lt == TypeInt && rt == TypeFloat {
				return errf(st.Pos, "cannot assign float to int (use int()/float() to convert)")
			}
		}
		return c.assignable(st.Pos, lt, rt, st.RHS)
	case *IfStmt:
		t, err := c.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if t != TypeInt {
			return errf(st.Pos, "if condition is %s, want int", t)
		}
		if err := c.checkBlock(st.Then, true); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkBlock(st.Else, true)
		}
		return nil
	case *ForStmt:
		c.push()
		defer c.pop()
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			t, err := c.checkExpr(st.Cond)
			if err != nil {
				return err
			}
			if t != TypeInt {
				return errf(st.Pos, "for condition is %s, want int", t)
			}
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post); err != nil {
				return err
			}
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkBlock(st.Body, true)
	case *WhileStmt:
		t, err := c.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if t != TypeInt {
			return errf(st.Pos, "while condition is %s, want int", t)
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkBlock(st.Body, true)
	case *ReturnStmt:
		if st.Value == nil {
			if c.fn.Ret != TypeVoid {
				return errf(st.Pos, "missing return value in %q", c.fn.Name)
			}
			return nil
		}
		if c.fn.Ret == TypeVoid {
			return errf(st.Pos, "void function %q returns a value", c.fn.Name)
		}
		t, err := c.checkExpr(st.Value)
		if err != nil {
			return err
		}
		return c.assignable(st.Pos, c.fn.Ret, t, st.Value)
	case *ExprStmt:
		_, err := c.checkExpr(st.X)
		if err != nil {
			return err
		}
		if _, ok := st.X.(*CallExpr); !ok {
			return errf(st.Pos, "expression statement must be a call")
		}
		return nil
	case *BreakStmt:
		if c.loops == 0 {
			return errf(st.Pos, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loops == 0 {
			return errf(st.Pos, "continue outside loop")
		}
		return nil
	}
	return fmt.Errorf("lang: unknown statement %T", s)
}

// assignable checks that a value of type 'from' can initialize 'to';
// int widens to float implicitly, float narrows only via int().
// Arrays are not first-class values.
func (c *checker) assignable(pos Pos, to, from TypeKind, rhs Expr) error {
	if n, ok := rhs.(*NameExpr); ok && n.IsArray {
		return errf(pos, "array %q used as a value", n.Name)
	}
	if to == from {
		return nil
	}
	if to == TypeFloat && from == TypeInt {
		return nil // lowering inserts the conversion
	}
	return errf(pos, "cannot assign %s to %s (use int()/float() to convert)", from, to)
}

func (c *checker) checkExpr(e Expr) (TypeKind, error) {
	switch ex := e.(type) {
	case *IntLitExpr:
		ex.T = TypeInt
		return TypeInt, nil
	case *FloatLitExpr:
		ex.T = TypeFloat
		return TypeFloat, nil
	case *NameExpr:
		sym := c.lookup(ex.Name)
		if sym == nil {
			return 0, errf(ex.Pos, "undefined: %q", ex.Name)
		}
		ex.IsArray = sym.IsArray
		ex.T = sym.Type
		return sym.Type, nil
	case *IndexExpr:
		sym := c.lookup(ex.Base)
		if sym == nil {
			return 0, errf(ex.Pos, "undefined: %q", ex.Base)
		}
		if !sym.IsArray {
			return 0, errf(ex.Pos, "%q is not an array", ex.Base)
		}
		it, err := c.checkExpr(ex.Idx)
		if err != nil {
			return 0, err
		}
		if it != TypeInt {
			return 0, errf(ex.Pos, "array index is %s, want int", it)
		}
		ex.T = sym.Type
		return sym.Type, nil
	case *CallExpr:
		return c.checkCall(ex)
	case *UnaryExpr:
		t, err := c.checkExpr(ex.X)
		if err != nil {
			return 0, err
		}
		if ex.Op == Not {
			if t != TypeInt {
				return 0, errf(ex.Pos, "operand of ! is %s, want int", t)
			}
			ex.T = TypeInt
			return TypeInt, nil
		}
		if t == TypeVoid {
			return 0, errf(ex.Pos, "cannot negate void")
		}
		ex.T = t
		return t, nil
	case *BinaryExpr:
		return c.checkBinary(ex)
	}
	return 0, fmt.Errorf("lang: unknown expression %T", e)
}

func (c *checker) checkCall(ex *CallExpr) (TypeKind, error) {
	if arity, ok := Builtins[ex.Name]; ok {
		ex.Builtin = ex.Name
		if len(ex.Args) != arity {
			return 0, errf(ex.Pos, "%s takes %d argument(s), got %d", ex.Name, arity, len(ex.Args))
		}
		for _, a := range ex.Args {
			t, err := c.checkExpr(a)
			if err != nil {
				return 0, err
			}
			if t == TypeVoid {
				return 0, errf(ex.Pos, "void argument to %s", ex.Name)
			}
		}
		switch ex.Name {
		case "int":
			ex.T = TypeInt
		default:
			ex.T = TypeFloat
		}
		return ex.T, nil
	}
	sig, ok := c.sigs[ex.Name]
	if !ok {
		return 0, errf(ex.Pos, "call to undefined function %q", ex.Name)
	}
	if len(ex.Args) != len(sig.Params) {
		return 0, errf(ex.Pos, "%s takes %d argument(s), got %d",
			ex.Name, len(sig.Params), len(ex.Args))
	}
	for i, a := range ex.Args {
		t, err := c.checkExpr(a)
		if err != nil {
			return 0, err
		}
		p := sig.Params[i]
		if p.IsArray {
			n, isName := a.(*NameExpr)
			if !isName || !n.IsArray || n.ResultType() != p.Type {
				return 0, errf(a.ExprPos(), "argument %d of %s must be a %s array name",
					i+1, ex.Name, p.Type)
			}
			continue
		}
		if err := c.assignable(a.ExprPos(), p.Type, t, a); err != nil {
			return 0, err
		}
	}
	ex.T = sig.Ret
	return sig.Ret, nil
}

func (c *checker) checkBinary(ex *BinaryExpr) (TypeKind, error) {
	xt, err := c.checkExpr(ex.X)
	if err != nil {
		return 0, err
	}
	yt, err := c.checkExpr(ex.Y)
	if err != nil {
		return 0, err
	}
	if xn, ok := ex.X.(*NameExpr); ok && xn.IsArray {
		return 0, errf(ex.Pos, "array %q used as a value", xn.Name)
	}
	if yn, ok := ex.Y.(*NameExpr); ok && yn.IsArray {
		return 0, errf(ex.Pos, "array %q used as a value", yn.Name)
	}
	switch ex.Op {
	case AndAnd, OrOr:
		if xt != TypeInt || yt != TypeInt {
			return 0, errf(ex.Pos, "logical operands must be int, got %s and %s", xt, yt)
		}
		ex.T = TypeInt
		return TypeInt, nil
	case EqEq, NotEq, Lt, Le, Gt, Ge:
		if xt == TypeVoid || yt == TypeVoid {
			return 0, errf(ex.Pos, "void operand")
		}
		ex.T = TypeInt
		return TypeInt, nil
	case Percent:
		if xt != TypeInt || yt != TypeInt {
			return 0, errf(ex.Pos, "%% requires int operands, got %s and %s", xt, yt)
		}
		ex.T = TypeInt
		return TypeInt, nil
	case Plus, Minus, Star, Slash:
		if xt == TypeVoid || yt == TypeVoid {
			return 0, errf(ex.Pos, "void operand")
		}
		if xt == TypeFloat || yt == TypeFloat {
			ex.T = TypeFloat
		} else {
			ex.T = TypeInt
		}
		return ex.T, nil
	}
	return 0, errf(ex.Pos, "unknown operator")
}
