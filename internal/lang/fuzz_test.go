package lang

import (
	"testing"
)

// fuzzSeeds are shared starting points for the lexer and parser
// fuzzers: valid kernels, near-miss syntax, and pathological input
// shapes. The checked-in corpora under testdata/fuzz/ extend these.
var fuzzSeeds = []string{
	"",
	"void kernel(int a[], int n) { for (int i = 0; i < n; i++) { a[i] = i; } }",
	"float f(float x) { return sqrt(x) * 2.0; }",
	"int g() { int x = 1; while (x < 10) { x = x + 1; } return x; }",
	"#pragma rskip ar(0.5)\nvoid kernel(float a[], int n) { for (int i = 0; i < n; i++) { a[i] = 0.0; } }",
	"void k() { if (1 < 2) { } else { } }",
	"int h(int a, int b) { return a % b + a / b; }",
	"/* block comment */ // line comment\nint c() { return 0x1f; }",
	"int bad( { }",
	"\"unterminated string",
	"int x = 1e309;",
	"void deep() { return ((((((((((1)))))))))); }",
	"int \xff\xfe() { return 0; }",
	"#pragma rskip ar(",
}

// FuzzTokenize: the lexer must never panic, whatever the bytes.
func FuzzTokenize(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Tokenize(src)
		if err == nil && len(toks) == 0 {
			t.Fatal("Tokenize returned no tokens and no error (missing EOF?)")
		}
	})
}

// FuzzParse: the parser and checker must never panic, and any program
// that parses must survive Format → Parse — the printer may not emit
// syntax the parser rejects.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		_, _ = Check(prog) // must not panic, errors are fine
		out := Format(prog)
		reparsed, err := Parse(out)
		if err != nil {
			t.Fatalf("formatted program does not re-parse: %v\nformatted:\n%s", err, out)
		}
		// Formatting must be a fixed point — otherwise the printer is
		// losing or rewriting structure on every round.
		if again := Format(reparsed); again != out {
			t.Fatalf("Format is not idempotent:\nfirst:\n%s\nsecond:\n%s", out, again)
		}
	})
}
