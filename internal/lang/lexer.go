package lang

import (
	"strings"
)

// Lexer turns MiniC source into a token stream. Comments (// and
// /* */) and whitespace are skipped.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpace() error {
	for lx.off < len(lx.src) {
		switch c := lx.peek(); {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpace(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isLetter(c):
		start := lx.off
		for lx.off < len(lx.src) && (isLetter(lx.peek()) || isDigit(lx.peek())) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
		return Token{Kind: Ident, Text: text, Pos: pos}, nil
	case isDigit(c) || (c == '.' && isDigit(lx.peek2())):
		start := lx.off
		isFloat := false
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		if lx.off < len(lx.src) && lx.peek() == '.' {
			isFloat = true
			lx.advance()
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
		if lx.off < len(lx.src) && (lx.peek() == 'e' || lx.peek() == 'E') {
			save := lx.off
			lx.advance()
			if lx.peek() == '+' || lx.peek() == '-' {
				lx.advance()
			}
			if isDigit(lx.peek()) {
				isFloat = true
				for lx.off < len(lx.src) && isDigit(lx.peek()) {
					lx.advance()
				}
			} else {
				lx.off = save // 'e' belonged to the next token
			}
		}
		text := lx.src[start:lx.off]
		if isFloat || strings.ContainsAny(text, ".eE") {
			return Token{Kind: FloatLit, Text: text, Pos: pos}, nil
		}
		return Token{Kind: IntLit, Text: text, Pos: pos}, nil
	}
	if c == '#' {
		// A pragma directive consumes the rest of the line.
		start := lx.off + 1
		for lx.off < len(lx.src) && lx.peek() != '\n' {
			lx.advance()
		}
		text := strings.TrimSpace(lx.src[start:lx.off])
		const kw = "pragma"
		if !strings.HasPrefix(text, kw) {
			return Token{}, errf(pos, "unknown directive %q (expected #pragma)", text)
		}
		return Token{Kind: Pragma, Text: strings.TrimSpace(text[len(kw):]), Pos: pos}, nil
	}
	lx.advance()
	two := func(next byte, withKind, aloneKind Kind) (Token, error) {
		if lx.peek() == next {
			lx.advance()
			return Token{Kind: withKind, Text: string(c) + string(next), Pos: pos}, nil
		}
		return Token{Kind: aloneKind, Text: string(c), Pos: pos}, nil
	}
	switch c {
	case '(':
		return Token{Kind: LParen, Text: "(", Pos: pos}, nil
	case ')':
		return Token{Kind: RParen, Text: ")", Pos: pos}, nil
	case '{':
		return Token{Kind: LBrace, Text: "{", Pos: pos}, nil
	case '}':
		return Token{Kind: RBrace, Text: "}", Pos: pos}, nil
	case '[':
		return Token{Kind: LBracket, Text: "[", Pos: pos}, nil
	case ']':
		return Token{Kind: RBracket, Text: "]", Pos: pos}, nil
	case ',':
		return Token{Kind: Comma, Text: ",", Pos: pos}, nil
	case ';':
		return Token{Kind: Semi, Text: ";", Pos: pos}, nil
	case '+':
		if lx.peek() == '+' {
			lx.advance()
			return Token{Kind: PlusPlus, Text: "++", Pos: pos}, nil
		}
		return two('=', PlusAssign, Plus)
	case '-':
		if lx.peek() == '-' {
			lx.advance()
			return Token{Kind: MinusMinus, Text: "--", Pos: pos}, nil
		}
		return two('=', MinusAssign, Minus)
	case '*':
		return two('=', StarAssign, Star)
	case '/':
		return two('=', SlashAssign, Slash)
	case '%':
		return Token{Kind: Percent, Text: "%", Pos: pos}, nil
	case '=':
		return two('=', EqEq, Assign)
	case '!':
		return two('=', NotEq, Not)
	case '<':
		return two('=', Le, Lt)
	case '>':
		return two('=', Ge, Gt)
	case '&':
		if lx.peek() == '&' {
			lx.advance()
			return Token{Kind: AndAnd, Text: "&&", Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected character '&'")
	case '|':
		if lx.peek() == '|' {
			lx.advance()
			return Token{Kind: OrOr, Text: "||", Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected character '|'")
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

// Tokenize lexes the entire source.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
