package lang

import (
	"strings"
	"testing"
)

func checkOK(t *testing.T, src string) {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err := Check(p); err != nil {
		t.Fatalf("Check: %v\nsource:\n%s", err, src)
	}
}

func checkErr(t *testing.T, src, wantSub string) {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	_, err = Check(p)
	if err == nil {
		t.Fatalf("Check(%q): expected error containing %q", src, wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("Check(%q): error %q does not contain %q", src, err, wantSub)
	}
}

func TestCheckValidPrograms(t *testing.T) {
	for _, src := range []string{
		`int f() { return 1; }`,
		`float f() { return 1; }`, // int widens to float
		`float f(float x) { return sqrt(x) + exp(x) - log(x) * fabs(x); }`,
		`float f(float x, float y) { return pow(x, y) + fmin(x, y) + fmax(x, y) + floor(x); }`,
		`int f(float x) { return int(x); }`,
		`float f(int x) { return float(x); }`,
		`int g() { return 2; } int f() { return g(); }`,
		`void g(int x) { } void f() { g(3); }`,
		`int f(int a[], int n) { int s = 0; for (int i = 0; i < n; i = i + 1) { s = s + a[i]; } return s; }`,
		`int f(int x) { if (x > 0 && x < 10 || !x) { return 1; } return 0; }`,
		`int f() { int x = 1; { int x = 2; } return x; }`, // shadowing in nested scope
		`void f(float a[]) { float t[8]; t[0] = a[0]; a[1] = t[0]; }`,
		`int f(int x) { while (x > 0) { x = x - 1; if (x == 3) { break; } } return x; }`,
	} {
		checkOK(t, src)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`int f() { return y; }`, "undefined"},
		{`int f() { return g(); }`, "undefined function"},
		{`int f() { return 1.5; }`, "cannot assign float to int"},
		{`int f(float x) { return x; }`, "cannot assign float to int"},
		{`void f() { return 1; }`, "void function"},
		{`int f() { return; }`, "missing return value"},
		{`int f(int x) { if (1.0) { } return x; }`, "if condition"},
		{`int f(int x) { while (1.5) { } return x; }`, "while condition"},
		{`int f(int x, int x) { return x; }`, "redeclared"},
		{`int f() { int x; int x; return x; }`, "redeclared"},
		{`int f() { int x; return x[0]; }`, "not an array"},
		{`int f(int a[]) { return a; }`, "array"},
		{`int f(int a[]) { a = 1; return 0; }`, "cannot assign to array"},
		{`int f(int a[]) { return a[1.5]; }`, "array index"},
		{`int f() { return sqrt(1.0, 2.0); }`, "takes 1 argument"},
		{`int g(int x) { return x; } int f() { return g(); }`, "takes 1 argument"},
		{`int g(int a[]) { return a[0]; } int f() { return g(1); }`, "must be a int array name"},
		{`float g(float a[]) { return a[0]; } int f(int b[]) { return int(g(b)); }`, "must be a float array name"},
		{`int f() { return 1 % 1.5; }`, "requires int operands"},
		{`int f() { return 1.0 && 1; }`, "logical operands"},
		{`int f() { return !1.5; }`, "operand of !"},
		{`int f() { 1 + 2; return 0; }`, "must be a call"},
		{`int sqrt(int x) { return x; }`, "shadows a builtin"},
		{`int f() { return 0; } int f() { return 1; }`, "duplicate function"},
		{`void f() { int x = 1.0; }`, "cannot assign float to int"},
	}
	for _, tt := range cases {
		checkErr(t, tt.src, tt.want)
	}
}

func TestCheckExprTypesAnnotated(t *testing.T) {
	p, err := Parse(`float f(int a, float b) { return a + b; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(p); err != nil {
		t.Fatal(err)
	}
	ret := p.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	if ret.Value.ResultType() != TypeFloat {
		t.Errorf("a + b (int+float) should be float, got %v", ret.Value.ResultType())
	}
	bin := ret.Value.(*BinaryExpr)
	if bin.X.ResultType() != TypeInt || bin.Y.ResultType() != TypeFloat {
		t.Errorf("operand types wrong: %v %v", bin.X.ResultType(), bin.Y.ResultType())
	}
}

func TestCheckComparisonIsInt(t *testing.T) {
	p, err := Parse(`int f(float a, float b) { return a < b; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(p); err != nil {
		t.Fatal(err)
	}
	ret := p.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	if ret.Value.ResultType() != TypeInt {
		t.Errorf("float comparison should produce int, got %v", ret.Value.ResultType())
	}
}

func TestCheckSignatures(t *testing.T) {
	p, err := Parse(`int g(int x, float y) { return x; } void f() { }`)
	if err != nil {
		t.Fatal(err)
	}
	sigs, err := Check(p)
	if err != nil {
		t.Fatal(err)
	}
	g := sigs["g"]
	if g == nil || g.Ret != TypeInt || len(g.Params) != 2 || g.Params[1].Type != TypeFloat {
		t.Errorf("signature table wrong: %+v", g)
	}
}
