package server

import (
	"net/http"

	"rskip/internal/advice"
	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/fault"
	"rskip/internal/obs"
	"rskip/internal/result"
)

// The advisory prediction surface. Everything in this file is
// read-only with respect to the campaign engine: /v1/advise never
// compiles or executes anything (profiled features come from a cache
// populated by past campaigns), and the forecasts it serves are
// stored in a prediction log the engine cannot reach — the advice
// package is imported by the server and the CLIs only, never by
// fault/result/fabric (internal/advice's inert_test pins that).

// adviseRequest is the body of POST /v1/advise: the campaign a client
// is thinking about submitting.
type adviseRequest struct {
	Bench  string `json:"bench"`
	Scheme string `json:"scheme"`
	// N is the injection count the campaign would request (default
	// 1000, like a submission).
	N int `json:"n,omitempty"`
	// FaultModel / SkipWidth / BitWidth select the threat model, with
	// the same defaults and validation as a campaign submission.
	FaultModel string      `json:"fault_model,omitempty"`
	SkipWidth  int         `json:"skip_width,omitempty"`
	BitWidth   int         `json:"bit_width,omitempty"`
	Config     *configJSON `json:"config,omitempty"`
}

// adviseResponse is the forecast — served by POST /v1/advise and
// embedded as the "advice" block of a campaign submission response.
// Advisory is always true: nothing in the engine reads a forecast.
type adviseResponse struct {
	Advisory     bool       `json:"advisory"`
	Protection   float64    `json:"protection_rate"`
	ProtectionCI [2]float64 `json:"protection_ci95"`
	// WallSecondsEst is the wall-clock forecast; absent when no timed
	// neighbor exists in the corpus.
	WallSecondsEst float64 `json:"wall_seconds_est,omitempty"`
	// Source is "corpus" (nearest-neighbor blend over past outcomes)
	// or "priors" (the per-scheme fallback table).
	Source     string `json:"source"`
	Confidence string `json:"confidence"`
	CorpusSize int    `json:"corpus_size"`
	Neighbors  int    `json:"neighbors,omitempty"`
	// PredictionID names the stored prediction that the campaign's
	// eventual outcome will be scored against (submission path only).
	PredictionID string `json:"prediction_id,omitempty"`
}

func toAdviseResponse(fc advice.Forecast) *adviseResponse {
	return &adviseResponse{
		Advisory:       fc.Advisory,
		Protection:     fc.Protection,
		ProtectionCI:   [2]float64{fc.CILo, fc.CIHi},
		WallSecondsEst: fc.WallSeconds,
		Source:         fc.Source,
		Confidence:     fc.Confidence,
		CorpusSize:     fc.CorpusSize,
		Neighbors:      fc.Neighbors,
	}
}

// adviceHealthJSON is the healthz advice block: corpus size plus the
// scoring loop's realized accuracy.
type adviceHealthJSON struct {
	CorpusSize  int     `json:"corpus_size"`
	Predictions int     `json:"predictions"`
	Scored      int     `json:"scored"`
	MAE         float64 `json:"mae_pts"`
	CICoverage  float64 `json:"ci_coverage"`
}

// adviceMetrics are the advice_* instruments.
type adviceMetrics struct {
	queries    *obs.Counter
	forecasts  *obs.Counter
	scored     *obs.Counter
	corpusSize *obs.Gauge
	mae        *obs.Gauge
	ciCov      *obs.Gauge
	shardWall  *obs.Histogram
	shardErr   *obs.Histogram
}

func newAdviceMetrics(m *obs.Metrics) adviceMetrics {
	return adviceMetrics{
		queries:    m.Counter("advice_queries_total", "/v1/advise forecasts served"),
		forecasts:  m.Counter("advice_forecasts_total", "predictions recorded for submitted campaigns"),
		scored:     m.Counter("advice_scored_total", "predictions scored against realized outcomes"),
		corpusSize: m.Gauge("advice_corpus_records", "outcome records in the advice corpus"),
		mae:        m.Gauge("advice_mae_pts", "mean absolute protection-rate forecast error (percentage points)"),
		ciCov:      m.Gauge("advice_ci_coverage", "fraction of scored forecasts whose interval bracketed the outcome"),
		shardWall:  m.Histogram("advice_shard_wall_seconds", "observed distributed-shard wall time (first lease to completion)", obs.ExpBuckets(0.001, 4, 8)),
		shardErr:   m.Histogram("advice_shard_forecast_abs_err_seconds", "absolute error of per-shard wall forecasts", obs.ExpBuckets(0.001, 4, 8)),
	}
}

// publishAdviceGauges refreshes the corpus/calibration gauges after
// any corpus or prediction-log change.
func (s *Server) publishAdviceGauges() {
	s.amet.corpusSize.Set(float64(s.advisor.CorpusSize()))
	c := s.advisor.Calibration()
	s.amet.mae.Set(c.MAE)
	s.amet.ciCov.Set(c.CICoverage)
}

// adviceShape maps validated campaign/advise parameters onto the
// advisory feature shape.
func adviceShape(mix fault.Mix, skipWidth, bitWidth, n int) advice.Shape {
	return advice.Shape{Mix: mix, SkipWidth: skipWidth, BitWidth: bitWidth, Requested: n}
}

// handleAdvise serves POST /v1/advise: an advisory forecast of
// protection rate and campaign cost from the outcome corpus. It never
// executes anything — a cold corpus answers from per-scheme priors
// with confidence "low", still 200.
func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	var req adviseRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Bench == "" {
		writeErr(w, http.StatusBadRequest, "missing_bench", "the request must name a built-in \"bench\"")
		return
	}
	if _, err := bench.ByName(req.Bench); err != nil {
		writeErr(w, http.StatusNotFound, "unknown_bench", "%v", err)
		return
	}
	if req.Scheme == "" {
		writeErr(w, http.StatusBadRequest, "missing_scheme", "the request must name a \"scheme\"")
		return
	}
	scheme, err := parseScheme(req.Scheme)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unknown_scheme", "%v", err)
		return
	}
	mix, err := fault.ModelMix(req.FaultModel)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unknown_fault_model", "%v", err)
		return
	}
	cfg, err := req.Config.toCoreConfig()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unknown_backend", "%v", err)
		return
	}
	n := req.N
	if n <= 0 {
		n = 1000
	}
	f := advice.StaticFeatures(req.Bench, scheme, cfg, adviceShape(mix, req.SkipWidth, req.BitWidth, n))
	fc := s.advisor.Estimate(f)
	s.amet.queries.Inc()
	writeJSON(w, http.StatusOK, toAdviseResponse(fc))
}

// campaignAdvice forecasts a just-validated campaign submission and
// records the prediction for later scoring. Returns nil on prediction
// log trouble — a submission never fails because advice is sick.
func (s *Server) campaignAdvice(req *campaignRequest, scheme core.Scheme) (*adviseResponse, string) {
	fcfg, err := req.faultConfig()
	if err != nil {
		return nil, "" // validation already passed; defensive
	}
	cfg, err := req.Config.toCoreConfig()
	if err != nil {
		return nil, ""
	}
	f := advice.StaticFeatures(req.Bench, scheme, cfg, adviceShape(fcfg.Mix, req.SkipWidth, req.BitWidth, req.N))
	fc, predID, err := s.advisor.Forecast(f)
	if err != nil {
		s.obs.M().Counter("advice_log_errors_total", "prediction-log writes that failed").Inc()
	}
	s.amet.forecasts.Inc()
	s.publishAdviceGauges()
	resp := toAdviseResponse(fc)
	resp.PredictionID = predID
	return resp, predID
}

// observeOutcome feeds a finished campaign back into the advisory
// loop: score the submission-time prediction and append outcome
// records to the corpus. For incremental analyses each region
// contributes its own record (population, class mix, wall time); the
// program-level prediction is scored against the composed figures.
func (s *Server) observeOutcome(j *job, res fault.Result, rep *result.Report, wallSeconds float64) {
	req := j.spec.Request
	scheme := j.scheme
	fcfg, err := req.faultConfig()
	if err != nil {
		return
	}
	cfg, err := req.Config.toCoreConfig()
	if err != nil {
		return
	}
	f := advice.StaticFeatures(req.Bench, scheme, cfg, adviceShape(fcfg.Mix, req.SkipWidth, req.BitWidth, req.N))
	if rep != nil {
		// Program-level labels from the composed report; the CI is the
		// stratified one the client saw.
		lab := advice.Labels{
			Protection: rep.Protection,
			CILo:       rep.ProtectionCI[0], CIHi: rep.ProtectionCI[1],
			Runs: rep.Composed.N, WallSeconds: wallSeconds,
		}
		_, scored, _ := s.advisor.Observe(j.spec.AdviceID, f, lab)
		if scored {
			s.amet.scored.Inc()
		}
		for _, r := range rep.Regions {
			if r.Cached || r.Result.N == 0 {
				continue // a cached region teaches nothing new about cost
			}
			rf := advice.RegionFeatures(f, r.Population, r.ClassMix, r.Result.N)
			_, _, _ = s.advisor.Observe("", rf, advice.ResultLabels(r.Result, r.WallSeconds))
		}
	} else {
		_, scored, _ := s.advisor.Observe(j.spec.AdviceID, f, advice.ResultLabels(res, wallSeconds))
		if scored {
			s.amet.scored.Inc()
		}
	}
	s.publishAdviceGauges()
}
