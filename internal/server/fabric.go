package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"rskip/internal/advice"
	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/fabric"
	"rskip/internal/fabric/campaign"
	"rskip/internal/fault"
	"rskip/internal/obs"
)

// The coordinator side of distributed campaigns: jobs submitted with
// "distributed": true run through a fabric.Coordinator instead of the
// monolithic fault.Campaign loop. Shard leases are served to remote
// workers over /v1/fabric/* (wire types in internal/fabric/wire.go)
// and to the in-process pool via fabric.RunLocal — the same
// Coordinator methods either way, so the two paths cannot diverge.

// fabricJob is one distributed campaign's lease surface.
type fabricJob struct {
	id    string
	coord *fabric.Coordinator
	key   string
	n     int
	spec  json.RawMessage // the campaignRequest, verbatim
	ttl   time.Duration
}

// fabricHub indexes the distributed jobs currently leasing shards.
type fabricHub struct {
	mu    sync.Mutex
	jobs  map[string]*fabricJob
	order []string // lease-scan order: oldest job first
}

func newFabricHub() *fabricHub {
	return &fabricHub{jobs: map[string]*fabricJob{}}
}

func (h *fabricHub) add(fj *fabricJob) {
	h.mu.Lock()
	h.jobs[fj.id] = fj
	h.order = append(h.order, fj.id)
	h.mu.Unlock()
}

func (h *fabricHub) remove(id string) {
	h.mu.Lock()
	delete(h.jobs, id)
	for i, o := range h.order {
		if o == id {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
	h.mu.Unlock()
}

func (h *fabricHub) get(id string) *fabricJob {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.jobs[id]
}

// snapshot returns the active jobs in lease-scan order.
func (h *fabricHub) snapshot() []*fabricJob {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*fabricJob, 0, len(h.order))
	for _, id := range h.order {
		if fj := h.jobs[id]; fj != nil {
			out = append(out, fj)
		}
	}
	return out
}

func (h *fabricHub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.jobs)
}

// fabricMetrics are the fabric_* instruments.
type fabricMetrics struct {
	granted    *obs.Counter
	reassigned *obs.Counter
	completed  *obs.Counter
	jobs       *obs.Gauge
}

func newFabricMetrics(m *obs.Metrics) fabricMetrics {
	return fabricMetrics{
		granted:    m.Counter("fabric_leases_granted_total", "shard leases granted to workers"),
		reassigned: m.Counter("fabric_leases_reassigned_total", "leases reclaimed from dead or straggling workers"),
		completed:  m.Counter("fabric_shards_completed_total", "shards completed and merged"),
		jobs:       m.Gauge("fabric_jobs_active", "distributed campaigns currently leasing shards"),
	}
}

// executeDistributed runs one campaign through the fabric: an
// executor for the plan identity (and local execution), a merger for
// the exact reassembly, a coordinator for the lease lifecycle, and —
// unless the client opted out — an in-process lease loop so the
// coordinator node contributes cycles alongside remote workers.
func (s *Server) executeDistributed(ctx context.Context, j *job, p *core.Program, inst bench.Instance, fcfg fault.Config) (fault.Result, error) {
	req := j.spec.Request
	ctx, sp := obs.Start(ctx, "server/fabric_job")
	sp.SetAttr("id", j.spec.ID)
	defer sp.End()

	x, err := fault.NewExecutor(ctx, p, j.scheme, inst, fcfg)
	if err != nil {
		return fault.Result{}, err
	}
	merger := campaign.NewMerger(x)
	shardSize := req.ShardSize
	if shardSize <= 0 {
		shardSize = defaultShardSize
	}
	// Advisory per-shard cost forecast: the corpus wall-time estimate
	// scaled to shard size, compared against each shard's realized
	// first-lease-to-completion time. Purely observational — leasing,
	// stealing and merging never read these figures.
	var secPerRun float64
	if fc := s.advisor.Estimate(advice.StaticFeatures(
		req.Bench, j.scheme, p.Cfg,
		adviceShape(fcfg.Mix, req.SkipWidth, req.BitWidth, x.N()))); fc.WallKnown && x.N() > 0 {
		secPerRun = fc.WallSeconds / float64(x.N())
	}
	coord := fabric.NewCoordinator(
		fabric.Plan{Key: x.Key(), N: x.N(), ShardSize: shardSize},
		fabric.Options{
			LeaseTTL:   s.cfg.LeaseTTL,
			OnComplete: merger.Add,
			OnShardDone: func(shd fabric.Shard, worker string, leased time.Duration) {
				actual := leased.Seconds()
				s.amet.shardWall.Observe(actual)
				if secPerRun > 0 {
					forecast := secPerRun * float64(shd.Size())
					s.amet.shardErr.Observe(math.Abs(forecast - actual))
				}
			},
			OnProgress: func(pr fabric.Progress) {
				// Progress streams the merged prefix: exact counts for
				// completed shards (heartbeat-estimated Done for leased
				// ones comes from pr, not from the records).
				partial, err := merger.Partial()
				if err != nil {
					return
				}
				j.publishProgress(fault.Progress{Done: pr.Done, N: pr.N, Result: partial})
			},
		})

	spec, err := json.Marshal(&req)
	if err != nil {
		return fault.Result{}, fmt.Errorf("encoding fabric spec: %w", err)
	}
	fj := &fabricJob{id: j.spec.ID, coord: coord, key: x.Key(), n: x.N(),
		spec: spec, ttl: s.cfg.LeaseTTL}
	s.fabric.add(fj)
	s.fmet.jobs.Set(float64(s.fabric.count()))
	defer func() {
		s.fabric.remove(j.spec.ID)
		s.fmet.jobs.Set(float64(s.fabric.count()))
		st := coord.Stats()
		s.fmet.granted.Add(uint64(st.LeasesGranted))
		s.fmet.reassigned.Add(uint64(st.LeasesExpired))
		s.fmet.completed.Add(uint64(st.ShardsCompleted))
	}()

	// The in-process pool: one lease loop per local worker slot, all
	// over this job's executor (RunRange parallelizes internally via
	// Config.Workers). LocalWorkers < 0 makes this node a pure
	// coordinator that only serves remote leases.
	if req.LocalWorkers >= 0 {
		loops := req.LocalWorkers
		if loops == 0 {
			loops = 1
		}
		runner := campaign.NewRunner(x, fcfg.Batch)
		go func() {
			// RunLocal returns when the plan completes or aborts; its
			// error surfaces through coord.Wait below.
			_ = fabric.RunLocal(ctx, coord, loops, "local", runner)
		}()
	}

	if err := coord.Wait(ctx); err != nil {
		if ctx.Err() != nil {
			// Cancelled (client DELETE or drain): report the merged
			// partial result, like the single-node path does.
			partial, perr := merger.Partial()
			if perr != nil {
				return fault.Result{}, err
			}
			return partial, fmt.Errorf("fault: campaign interrupted after %d/%d runs: %w", partial.N, x.N(), ctx.Err())
		}
		return fault.Result{}, err
	}
	return merger.Result()
}

// defaultShardSize balances lease-protocol overhead against work-
// stealing granularity: a dead worker forfeits at most this many runs
// per held lease.
const defaultShardSize = 250

// handleFabricLease grants the next available shard of any active
// distributed job: 200 with a WireLease, or 204 when nothing needs a
// worker right now (the worker polls again later).
func (s *Server) handleFabricLease(w http.ResponseWriter, r *http.Request) {
	var req fabric.WireLeaseRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Worker == "" {
		writeErr(w, http.StatusBadRequest, "missing_worker", "the lease request must carry a stable \"worker\" identity")
		return
	}
	for _, fj := range s.fabric.snapshot() {
		sh, ok := fj.coord.Lease(req.Worker)
		if !ok {
			continue
		}
		writeJSON(w, http.StatusOK, fabric.WireLease{
			JobID: fj.id, PlanKey: fj.key, N: fj.n, Shard: sh,
			LeaseTTLMS: fj.ttl.Milliseconds(), Spec: fj.spec,
		})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// fabricCall resolves the job and maps coordinator errors onto the
// wire: 409 lease_lost tells the worker to abandon the shard, 410
// gone tells it the whole job has finished or vanished.
func (s *Server) fabricCall(w http.ResponseWriter, jobID string, call func(fj *fabricJob) error) {
	fj := s.fabric.get(jobID)
	if fj == nil {
		writeErr(w, http.StatusGone, "gone", "no active distributed campaign %q (finished, cancelled, or the daemon restarted)", jobID)
		return
	}
	if err := call(fj); err != nil {
		if errors.Is(err, fabric.ErrLeaseLost) || errors.Is(err, fabric.ErrUnknownShard) {
			writeErr(w, http.StatusConflict, "lease_lost", "%v", err)
			return
		}
		writeErr(w, http.StatusInternalServerError, "fabric_error", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleFabricHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb fabric.WireHeartbeat
	if !decodeJSON(w, r, &hb) {
		return
	}
	s.fabricCall(w, hb.JobID, func(fj *fabricJob) error {
		return fj.coord.Heartbeat(hb.Worker, hb.Shard, hb.Done)
	})
}

func (s *Server) handleFabricComplete(w http.ResponseWriter, r *http.Request) {
	var cp fabric.WireComplete
	if !decodeJSON(w, r, &cp) {
		return
	}
	s.fabricCall(w, cp.JobID, func(fj *fabricJob) error {
		return fj.coord.Complete(cp.Worker, cp.Shard, cp.Payload)
	})
}
