// Package server is the rskipd service daemon: the RSkip pipeline —
// compile, protect, execute, inject — exposed as a long-running HTTP
// JSON service, the way the paper frames RSkip as a compilation
// service that "accepts unprotected source code" and returns a
// protected, profiled binary. One process serves many clients from a
// single warm build cache (identical submissions compile once, via
// the core cache's singleflight) and a bounded campaign worker pool
// with queue-depth backpressure.
//
// Endpoints:
//
//	POST   /v1/compile              MiniC → per-scheme .rir + static stats
//	POST   /v1/run                  execute a kernel under a scheme (wall-clock bounded)
//	POST   /v1/campaigns            submit an async fault-injection job (202)
//	GET    /v1/campaigns            list jobs
//	GET    /v1/campaigns/{id}       job status / terminal result
//	GET    /v1/campaigns/{id}/stream  JSONL progress (application/x-ndjson)
//	DELETE /v1/campaigns/{id}       cancel (partial results retained)
//	GET    /healthz                 liveness + queue depths
//	GET    /metrics                 the obs metrics registry as JSON
//	GET    /debug/pprof/...         standard pprof handlers
//
// Production plumbing: request bodies are size-limited, synchronous
// endpoints carry per-request timeouts and concurrency limits (429
// when saturated), the campaign queue is bounded (429 when full), and
// Drain stops the world gracefully — in-flight campaigns checkpoint
// to disk and a new daemon on the same checkpoint dir resumes them to
// bit-identical results.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rskip/internal/advice"
	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/fault"
	"rskip/internal/obs"
	"rskip/internal/result"
)

// Config parameterizes a daemon instance.
type Config struct {
	// Workers is the campaign worker pool size (default 2).
	Workers int
	// QueueDepth bounds pending campaign jobs; submissions beyond it
	// get 429 (default 16).
	QueueDepth int
	// SyncLimit bounds concurrent synchronous compile/run requests;
	// excess requests get 429 (default 2×Workers).
	SyncLimit int
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// CompileTimeout bounds one /v1/compile build (default 30s).
	CompileTimeout time.Duration
	// DefaultRunTimeout applies to /v1/run requests that set no
	// timeout_ms (default 30s).
	DefaultRunTimeout time.Duration
	// MaxRunTimeout caps client-requested run and per-injection
	// timeouts (default 2m).
	MaxRunTimeout time.Duration
	// CheckpointDir persists job specs, campaign checkpoints and
	// terminal results, making jobs resumable across restarts. Empty
	// disables persistence (jobs die with the process).
	CheckpointDir string
	// ResultCacheDir backs incremental campaigns with a content-
	// addressed per-region result cache. Empty rejects incremental
	// submissions (code incremental_unavailable).
	ResultCacheDir string
	// AdviceDir persists the advisory prediction layer's outcome
	// corpus and prediction log. Empty keeps the advisor memory-only:
	// /v1/advise still answers, nothing survives a restart. The
	// advisor is observational either way — no engine path reads it.
	AdviceDir string
	// LeaseTTL is how long a distributed campaign's shard lease lives
	// without a heartbeat before the shard is reassigned to another
	// worker (default 10s).
	LeaseTTL time.Duration
	// Obs is the daemon's telemetry handle. Nil gets a metrics-only
	// registry: a Tracer retains every span for tree rendering, which
	// a long-running daemon must opt into deliberately.
	Obs *obs.Obs
}

func (c *Config) setDefaults() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.SyncLimit <= 0 {
		c.SyncLimit = 2 * c.Workers
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.CompileTimeout <= 0 {
		c.CompileTimeout = 30 * time.Second
	}
	if c.DefaultRunTimeout <= 0 {
		c.DefaultRunTimeout = 30 * time.Second
	}
	if c.MaxRunTimeout <= 0 {
		c.MaxRunTimeout = 2 * time.Minute
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.Obs == nil {
		c.Obs = &obs.Obs{Metrics: obs.NewMetrics()}
	}
}

// serverMetrics are the server_* instruments, resolved once.
type serverMetrics struct {
	requests        *obs.Counter
	rejected        *obs.Counter
	errors5xx       *obs.Counter
	errors4xx       *obs.Counter
	inflight        *obs.Gauge
	reqSeconds      *obs.Histogram
	jobsSubmitted   *obs.Counter
	jobsStarted     *obs.Counter
	jobsDone        *obs.Counter
	jobsFailed      *obs.Counter
	jobsCancelled   *obs.Counter
	jobsInterrupted *obs.Counter
	jobsResumed     *obs.Counter
	orphansSwept    *obs.Counter
}

func newServerMetrics(m *obs.Metrics) serverMetrics {
	return serverMetrics{
		requests:        m.Counter("server_requests_total", "HTTP requests received"),
		rejected:        m.Counter("server_rejected_total", "requests rejected with 429 (queue full or sync limit)"),
		errors5xx:       m.Counter("server_errors_5xx_total", "responses with a 5xx status"),
		errors4xx:       m.Counter("server_errors_4xx_total", "responses with a 4xx status"),
		inflight:        m.Gauge("server_inflight_requests", "requests currently being served"),
		reqSeconds:      m.Histogram("server_request_seconds", "request wall time", obs.ExpBuckets(0.001, 4, 8)),
		jobsSubmitted:   m.Counter("server_campaign_jobs_submitted_total", "campaign jobs accepted"),
		jobsStarted:     m.Counter("server_campaign_jobs_started_total", "campaign jobs started on a worker"),
		jobsDone:        m.Counter("server_campaign_jobs_done_total", "campaign jobs completed"),
		jobsFailed:      m.Counter("server_campaign_jobs_failed_total", "campaign jobs failed"),
		jobsCancelled:   m.Counter("server_campaign_jobs_cancelled_total", "campaign jobs cancelled by clients"),
		jobsInterrupted: m.Counter("server_campaign_jobs_interrupted_total", "campaign jobs interrupted by drain (resumable)"),
		jobsResumed:     m.Counter("server_campaign_jobs_resumed_total", "campaign jobs re-enqueued from a previous daemon's checkpoints"),
		orphansSwept:    m.Counter("server_orphan_files_swept_total", "dead checkpoint-dir files removed at startup"),
	}
}

// Server is one rskipd instance. Create with New, mount Handler on an
// http.Server, stop with Drain.
type Server struct {
	cfg         Config
	obs         *obs.Obs
	met         serverMetrics
	mux         *http.ServeMux
	store       *jobStore
	resultCache *result.Cache
	advisor     *advice.Advisor
	amet        adviceMetrics
	fabric      *fabricHub
	fmet        fabricMetrics

	queue   chan *job
	syncSem chan struct{}

	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   chan struct{}
	drainOnce  sync.Once
	workerWG   sync.WaitGroup
	inflightN  atomic.Int64
	started    time.Time
}

// New builds a Server: it creates the checkpoint dir, re-enqueues any
// unfinished jobs a previous daemon left there, and starts the worker
// pool.
func New(cfg Config) (*Server, error) {
	cfg.setDefaults()
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: checkpoint dir: %w", err)
		}
	}
	s := &Server{
		cfg:      cfg,
		obs:      cfg.Obs,
		met:      newServerMetrics(cfg.Obs.M()),
		fmet:     newFabricMetrics(cfg.Obs.M()),
		store:    newJobStore(cfg.CheckpointDir),
		fabric:   newFabricHub(),
		syncSem:  make(chan struct{}, cfg.SyncLimit),
		draining: make(chan struct{}),
		started:  time.Now(),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	if cfg.ResultCacheDir != "" {
		cache, err := result.Open(cfg.ResultCacheDir)
		if err != nil {
			return nil, fmt.Errorf("server: result cache dir: %w", err)
		}
		s.resultCache = cache
	}
	s.amet = newAdviceMetrics(cfg.Obs.M())
	advisor, err := advice.New(cfg.AdviceDir)
	if advisor == nil {
		return nil, fmt.Errorf("server: advice dir: %w", err)
	}
	if err != nil {
		// Corrupt records were dropped and the corpus healed; the
		// advisor is usable. Warn and carry on — advice is advisory.
		fmt.Fprintf(os.Stderr, "server: advice corpus: %v\n", err)
	}
	s.advisor = advisor
	s.publishAdviceGauges()

	if swept, err := s.store.sweepOrphans(); err != nil {
		return nil, fmt.Errorf("server: sweeping orphaned files: %w", err)
	} else if swept > 0 {
		s.met.orphansSwept.Add(uint64(swept))
		fmt.Fprintf(os.Stderr, "server: swept %d orphaned checkpoint-dir file(s)\n", swept)
	}
	resumable, err := s.store.loadPersisted()
	if err != nil {
		return nil, fmt.Errorf("server: loading persisted jobs: %w", err)
	}
	// The queue must hold every resumed job plus the configured depth,
	// so resumption never blocks construction.
	s.queue = make(chan *job, cfg.QueueDepth+len(resumable))
	for _, j := range resumable {
		s.queue <- j
		s.met.jobsResumed.Inc()
	}

	for w := 0; w < cfg.Workers; w++ {
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			for {
				select {
				case <-s.draining:
					return
				case j := <-s.queue:
					s.runJob(j)
				}
			}
		}()
	}

	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// Drain stops the daemon gracefully: new submissions are refused,
// workers stop picking up queued jobs, and running campaigns are
// interrupted — their latest batch checkpoint is already durable, so
// a new daemon on the same checkpoint dir resumes them. Drain returns
// once the workers have exited or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		close(s.draining)
		s.baseCancel()
	})
	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain timed out: %w", ctx.Err())
	}
}

func (s *Server) routes() {
	s.handle("GET /healthz", "healthz", s.handleHealthz)
	s.handle("GET /metrics", "metrics", s.handleMetrics)
	s.handle("POST /v1/compile", "compile", s.handleCompile)
	s.handle("POST /v1/run", "run", s.handleRun)
	s.handle("POST /v1/advise", "advise", s.handleAdvise)
	s.handle("POST /v1/campaigns", "campaign_submit", s.handleCampaignSubmit)
	s.handle("GET /v1/campaigns", "campaign_list", s.handleCampaignList)
	s.handle("GET /v1/campaigns/{id}", "campaign_status", s.handleCampaignStatus)
	s.handle("GET /v1/campaigns/{id}/stream", "campaign_stream", s.handleCampaignStream)
	s.handle("DELETE /v1/campaigns/{id}", "campaign_cancel", s.handleCampaignCancel)
	s.handle("POST /v1/fabric/lease", "fabric_lease", s.handleFabricLease)
	s.handle("POST /v1/fabric/heartbeat", "fabric_heartbeat", s.handleFabricHeartbeat)
	s.handle("POST /v1/fabric/complete", "fabric_complete", s.handleFabricComplete)
	obs.RegisterPprof(s.mux)
}

// handle mounts a handler wrapped with the per-request plumbing every
// endpoint shares: a span named after the route, request counters and
// wall-time histogram, an inflight gauge, and the body size limit.
func (s *Server) handle(pattern, name string, h http.HandlerFunc) {
	reqs := s.obs.M().Counter("server_requests_"+name+"_total", "requests to "+name)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.met.requests.Inc()
		reqs.Inc()
		s.met.inflight.Set(float64(s.inflightN.Add(1)))
		defer func() {
			s.met.inflight.Set(float64(s.inflightN.Add(-1)))
			s.met.reqSeconds.Observe(time.Since(start).Seconds())
		}()

		ctx := obs.Into(r.Context(), s.obs)
		ctx, sp := obs.Start(ctx, "server/"+name)
		sp.SetAttr("method", r.Method)
		sp.SetAttr("path", r.URL.Path)
		defer sp.End()

		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(ctx))
		sp.SetAttr("status", sw.status())
		switch {
		case sw.status() == http.StatusTooManyRequests:
			s.met.rejected.Inc()
			s.met.errors4xx.Inc()
		case sw.status() >= 500:
			s.met.errors5xx.Inc()
		case sw.status() >= 400:
			s.met.errors4xx.Inc()
		}
	})
}

// statusWriter records the response status for metrics and spans.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the wrapped writer so streaming endpoints work
// through the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: apiError{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// decodeJSON parses a request body, translating oversized bodies to
// 413 and malformed JSON to 400. It reports whether decoding
// succeeded; on failure the response has been written.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil {
		return true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeErr(w, http.StatusRequestEntityTooLarge, "body_too_large",
			"request body exceeds the %d-byte limit", tooBig.Limit)
		return false
	}
	writeErr(w, http.StatusBadRequest, "bad_request", "malformed JSON body: %v", err)
	return false
}

// acquireSync claims a synchronous-work slot, or writes 429.
func (s *Server) acquireSync(w http.ResponseWriter) bool {
	select {
	case s.syncSem <- struct{}{}:
		return true
	default:
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "saturated",
			"all %d synchronous work slots are busy; retry shortly", s.cfg.SyncLimit)
		return false
	}
}

func (s *Server) releaseSync() { <-s.syncSem }

// capRunTimeout clamps a client-requested timeout into (0, MaxRunTimeout].
func (s *Server) capRunTimeout(d time.Duration) time.Duration {
	if d <= 0 || d > s.cfg.MaxRunTimeout {
		return s.cfg.MaxRunTimeout
	}
	return d
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued, running := s.store.counts()
	cal := s.advisor.Calibration()
	writeJSON(w, http.StatusOK, healthResponse{
		Status:   "ok",
		UptimeMS: time.Since(s.started).Milliseconds(),
		Queued:   queued, Running: running,
		FabricJobs: s.fabric.count(),
		Draining:   s.isDraining(),
		Advice: &adviceHealthJSON{
			CorpusSize:  s.advisor.CorpusSize(),
			Predictions: cal.Predictions, Scored: cal.Scored,
			MAE: cal.MAE, CICoverage: cal.CICoverage,
		},
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.obs.M().WriteJSON(w)
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req compileRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	var b bench.Benchmark
	switch {
	case req.Bench != "":
		var err error
		b, err = bench.ByName(req.Bench)
		if err != nil {
			writeErr(w, http.StatusNotFound, "unknown_bench", "%v", err)
			return
		}
	case req.Source != "":
		name := req.Name
		if name == "" {
			name = "input.mc"
		}
		kernel := req.Kernel
		if kernel == "" {
			kernel = "main"
		}
		b = bench.Benchmark{Name: name, Kernel: kernel, Source: req.Source}
	default:
		writeErr(w, http.StatusBadRequest, "missing_source",
			"the request must carry MiniC \"source\" or a built-in \"bench\" name")
		return
	}
	schemes, err := resolveSchemes(req.Schemes)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unknown_scheme", "%v", err)
		return
	}
	if !s.acquireSync(w) {
		return
	}
	defer s.releaseSync()

	cfg, err := req.Config.toCoreConfig()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unknown_backend", "%v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.CompileTimeout)
	defer cancel()
	p, cached, err := core.BuildContextCached(ctx, b, cfg)
	if err != nil {
		switch {
		case ctx.Err() != nil:
			writeErr(w, http.StatusGatewayTimeout, "compile_timeout",
				"build exceeded the %v compile timeout", s.cfg.CompileTimeout)
		case strings.Contains(err.Error(), "no kernel function"):
			writeErr(w, http.StatusBadRequest, "unknown_kernel", "%v", err)
		default:
			writeErr(w, http.StatusBadRequest, "compile_error", "%v", err)
		}
		return
	}

	resp := compileResponse{
		Name: b.Name, Kernel: b.Kernel, Cached: cached,
		Candidates: []candidateJSON{},
		Schemes:    map[string]schemeStatsJSON{},
	}
	mod := p.Module(core.Unsafe)
	for i := range p.Candidates {
		c := &p.Candidates[i]
		resp.Candidates = append(resp.Candidates, candidateJSON{
			Name: c.Name(mod), Header: c.Header, Latch: c.Latch,
			Cost: c.Cost, ValueFloat: c.ValueFloat, HasCall: c.HasCall,
			Invariants: len(c.Invariants),
		})
	}
	for _, sc := range schemes {
		m := p.Module(sc)
		st := schemeStatsJSON{PPLoops: len(m.Loops)}
		for fi := range m.Funcs {
			st.Functions++
			for bi := range m.Funcs[fi].Blocks {
				st.Instructions += len(m.Funcs[fi].Blocks[bi].Instrs)
			}
		}
		if req.IncludeRIR {
			var sb strings.Builder
			if err := m.MarshalText(&sb); err != nil {
				writeErr(w, http.StatusInternalServerError, "serialize_error", "%v", err)
				return
			}
			st.RIR = sb.String()
		}
		resp.Schemes[sc.String()] = st
	}
	writeJSON(w, http.StatusOK, resp)
}

// resolveSchemes parses the requested scheme list (default: the
// paper's four variants; swiftrhard is reported only on request).
func resolveSchemes(names []string) ([]core.Scheme, error) {
	if len(names) == 0 {
		return []core.Scheme{core.Unsafe, core.SWIFT, core.SWIFTR, core.RSkip}, nil
	}
	out := make([]core.Scheme, 0, len(names))
	for _, n := range names {
		sc, err := parseScheme(n)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Bench == "" {
		writeErr(w, http.StatusBadRequest, "missing_bench", "the request must name a built-in \"bench\"")
		return
	}
	b, err := bench.ByName(req.Bench)
	if err != nil {
		writeErr(w, http.StatusNotFound, "unknown_bench", "%v", err)
		return
	}
	scheme, err := parseScheme(req.Scheme)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unknown_scheme", "%v", err)
		return
	}
	scale := bench.ScaleFI
	switch strings.ToLower(req.Scale) {
	case "", "fi":
	case "tiny":
		scale = bench.ScaleTiny
	case "perf":
		scale = bench.ScalePerf
	default:
		writeErr(w, http.StatusBadRequest, "unknown_scale", "unknown scale %q (want tiny, fi or perf)", req.Scale)
		return
	}
	if !s.acquireSync(w) {
		return
	}
	defer s.releaseSync()

	cfg, err := req.Config.toCoreConfig()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unknown_backend", "%v", err)
		return
	}
	// The build is bounded by the compile budget; the client's run
	// timeout only starts ticking once execution begins, so a cold
	// cache never converts a short run budget into a compile failure.
	buildCtx, buildCancel := context.WithTimeout(r.Context(), s.cfg.CompileTimeout)
	p, cached, err := core.BuildContextCached(buildCtx, b, cfg)
	buildCancel()
	if err != nil {
		if buildCtx.Err() != nil {
			writeErr(w, http.StatusGatewayTimeout, "compile_timeout",
				"build exceeded the %v budget", s.cfg.CompileTimeout)
			return
		}
		writeErr(w, http.StatusBadRequest, "compile_error", "%v", err)
		return
	}

	timeout := s.cfg.DefaultRunTimeout
	if req.TimeoutMS > 0 {
		timeout = s.capRunTimeout(time.Duration(req.TimeoutMS) * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	if scheme == core.RSkip {
		train := req.Train
		if train <= 0 {
			train = 2
		}
		seeds := make([]int64, train)
		for i := range seeds {
			seeds[i] = bench.TrainSeed(i)
		}
		if err := p.Train(seeds, scale); err != nil {
			writeErr(w, http.StatusInternalServerError, "train_error", "%v", err)
			return
		}
	}
	inst := b.Gen(bench.TestSeed(req.Seed), scale)
	golden := p.Run(core.Unsafe, inst, core.RunOpts{Cancel: ctx.Done()})
	if golden.Err != nil {
		s.writeRunErr(w, ctx, timeout, "golden run", golden.Err)
		return
	}
	o := p.Run(scheme, inst, core.RunOpts{Cancel: ctx.Done()})
	if o.Err != nil {
		s.writeRunErr(w, ctx, timeout, scheme.String()+" run", o.Err)
		return
	}
	matches := len(o.Output) == len(golden.Output)
	if matches {
		for i := range o.Output {
			if o.Output[i] != golden.Output[i] {
				matches = false
				break
			}
		}
	}
	writeJSON(w, http.StatusOK, runResponse{
		Bench: b.Name, Scheme: scheme.String(), Cached: cached,
		Instrs: o.Result.Instrs, Cycles: o.Result.Cycles, IPC: o.Result.IPC(),
		GoldenInstrs: golden.Result.Instrs, GoldenCycles: golden.Result.Cycles,
		Overhead:      float64(o.Result.Cycles) / float64(golden.Result.Cycles),
		OutputMatches: matches,
		SkipRate:      o.SkipRate(), DISkipRate: o.DISkipRate(),
	})
}

// writeRunErr distinguishes a wall-clock timeout (504) from an
// abnormal simulated execution (422: the program, not the server,
// misbehaved).
func (s *Server) writeRunErr(w http.ResponseWriter, ctx context.Context, timeout time.Duration, what string, err error) {
	if ctx.Err() != nil {
		writeErr(w, http.StatusGatewayTimeout, "run_timeout",
			"%s exceeded the %v wall-clock timeout", what, timeout)
		return
	}
	writeErr(w, http.StatusUnprocessableEntity, "run_error", "%s failed: %v", what, err)
}

func (s *Server) handleCampaignSubmit(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeErr(w, http.StatusServiceUnavailable, "draining", "the server is draining; resubmit to its successor")
		return
	}
	var req campaignRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	scheme, err := validateCampaignRequest(&req, s.resultCache != nil)
	if err != nil {
		status, code := http.StatusBadRequest, "bad_campaign"
		var unknownModel *fault.UnknownModelError
		var conflict *fault.ConfigConflictError
		if strings.Contains(err.Error(), "unknown benchmark") {
			status, code = http.StatusNotFound, "unknown_bench"
		} else if errors.As(err, &unknownModel) {
			code = "unknown_fault_model"
		} else if errors.As(err, &conflict) {
			code = "config_conflict"
		} else if errors.Is(err, errIncrementalUnavailable) {
			code = "incremental_unavailable"
		}
		writeErr(w, status, code, "%v", err)
		return
	}
	// Forecast before queueing so the prediction provably predates the
	// outcome; the advice block is labeled advisory and nothing below
	// this call reads it.
	adviceResp, adviceID := s.campaignAdvice(&req, scheme)
	j := &job{
		spec: jobSpec{
			ID: newJobID(), Request: req,
			SubmittedAt: time.Now().UTC().Format(time.RFC3339Nano),
			AdviceID:    adviceID,
		},
		scheme: scheme,
		state:  jobQueued,
		doneCh: make(chan struct{}),
	}
	select {
	case s.queue <- j:
	default:
		w.Header().Set("Retry-After", "5")
		writeErr(w, http.StatusTooManyRequests, "queue_full",
			"the campaign queue is full (%d pending); retry later", cap(s.queue))
		return
	}
	if err := s.store.persistSpec(j); err != nil {
		// The job is already queued; it will run, but won't survive a
		// restart. Surface the degraded durability as a 500 would be a
		// lie (the work is accepted) — log-through-metrics instead.
		s.obs.M().Counter("server_persist_errors_total", "job specs that failed to persist").Inc()
	}
	s.store.add(j)
	s.met.jobsSubmitted.Inc()
	writeJSON(w, http.StatusAccepted, campaignSubmitResponse{
		ID: j.spec.ID, State: jobQueued,
		StatusURL: "/v1/campaigns/" + j.spec.ID,
		StreamURL: "/v1/campaigns/" + j.spec.ID + "/stream",
		Advice:    adviceResp,
	})
}

func (s *Server) handleCampaignList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.list())
}

func (s *Server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "unknown_job", "no campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleCampaignCancel(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "unknown_job", "no campaign %q", r.PathValue("id"))
		return
	}
	j.mu.Lock()
	switch {
	case terminalState(j.state):
		// Idempotent: cancelling a finished job reports its state.
		j.mu.Unlock()
	case j.state == jobRunning:
		j.userCancel = true
		if j.cancel != nil {
			j.cancel()
		}
		j.mu.Unlock()
	default: // queued: cancel in place; the worker will skip it
		j.userCancel = true
		j.state = jobCancelled
		j.errMsg = "cancelled by client"
		ev := j.eventLocked()
		for ch := range j.subs {
			select {
			case ch <- ev:
			default:
			}
		}
		close(j.doneCh)
		j.mu.Unlock()
		s.met.jobsCancelled.Inc()
		s.store.persistOutcome(j)
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleCampaignStream serves application/x-ndjson: one JSON line per
// progress snapshot, ending with a terminal snapshot that carries the
// result. The stream also ends (without a terminal line) when the
// client disconnects or the server drains.
func (s *Server) handleCampaignStream(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "unknown_job", "no campaign %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "no_flush", "response writer cannot stream")
		return
	}
	ch := j.subscribe()
	defer j.unsubscribe(ch)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	writeEv := func(ev progressEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	first := j.event()
	if !writeEv(first) || terminalState(first.State) {
		return
	}
	for {
		select {
		case ev := <-ch:
			if !writeEv(ev) {
				return
			}
			if terminalState(ev.State) {
				return
			}
		case <-j.doneCh:
			writeEv(j.event())
			return
		case <-s.draining:
			writeEv(j.event())
			return
		case <-r.Context().Done():
			return
		}
	}
}
