package server

import (
	"fmt"
	"strings"

	"rskip/internal/core"
	"rskip/internal/fault"
	"rskip/internal/machine"
	"rskip/internal/result"
)

// Wire types of the rskipd JSON API (version v1). Field names are the
// contract clients build against; changing one is a breaking change.

// apiError is the structured error body every non-2xx response
// carries: {"error":{"code":"...","message":"..."}}. Codes are stable
// machine-readable slugs; messages are human diagnostics.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorBody struct {
	Error apiError `json:"error"`
}

// configJSON mirrors core.Config on the wire. AR is a pointer so an
// absent field means "the paper's AR20 default" while an explicit 0
// means a zero acceptable range.
type configJSON struct {
	AR            *float64 `json:"ar,omitempty"`
	CostThreshold int      `json:"cost_threshold,omitempty"`
	Window        int      `json:"window,omitempty"`
	MemoBits      int      `json:"memo_bits,omitempty"`
	DisableMemo   bool     `json:"disable_memo,omitempty"`
	DisableDI     bool     `json:"disable_di,omitempty"`
	ForceCP       bool     `json:"force_cp,omitempty"`
	MemoUniform   bool     `json:"memo_uniform,omitempty"`
	FixedStride   int      `json:"fixed_stride,omitempty"`
	IssueWidth    int      `json:"issue_width,omitempty"`
	EnableCFC     bool     `json:"enable_cfc,omitempty"`
	// Backend selects the execution engine ("fast", "compiled" or
	// "reference"; absent or "auto" means the server default). All
	// backends are bit-identical, so it never affects the build cache.
	Backend string `json:"backend,omitempty"`
}

// toCoreConfig overlays the request config on the default deployment.
func (c *configJSON) toCoreConfig() (core.Config, error) {
	cfg := core.DefaultConfig()
	if c == nil {
		return cfg, nil
	}
	if c.AR != nil {
		cfg.AR = *c.AR
	}
	cfg.CostThreshold = c.CostThreshold
	cfg.Window = c.Window
	cfg.MemoBits = c.MemoBits
	cfg.DisableMemo = c.DisableMemo
	cfg.DisableDI = c.DisableDI
	cfg.ForceCP = c.ForceCP
	cfg.MemoUniform = c.MemoUniform
	cfg.FixedStride = c.FixedStride
	cfg.IssueWidth = c.IssueWidth
	cfg.EnableCFC = c.EnableCFC
	var err error
	if cfg.Backend, err = machine.ParseBackend(c.Backend); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// parseScheme maps the wire scheme slug to the core enum.
func parseScheme(name string) (core.Scheme, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "unsafe":
		return core.Unsafe, nil
	case "swift":
		return core.SWIFT, nil
	case "swiftr", "swift-r":
		return core.SWIFTR, nil
	case "rskip":
		return core.RSkip, nil
	case "swiftrhard", "swift-r-hard":
		return core.SWIFTRHard, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (want unsafe, swift, swiftr, rskip or swiftrhard)", name)
}

// compileRequest is the body of POST /v1/compile. Exactly one of
// Source (arbitrary MiniC, with Kernel naming the entry function) or
// Bench (a built-in benchmark) must be set.
type compileRequest struct {
	// Name labels the compilation unit in diagnostics (default "input.mc").
	Name string `json:"name,omitempty"`
	// Source is MiniC source text.
	Source string `json:"source,omitempty"`
	// Kernel is the entry function protected and profiled (default "main").
	Kernel string `json:"kernel,omitempty"`
	// Bench selects a built-in benchmark instead of Source.
	Bench string `json:"bench,omitempty"`
	// Schemes restricts the reported variants (default: all four).
	Schemes []string `json:"schemes,omitempty"`
	// Config tunes the build (acceptable range, CFC, ...).
	Config *configJSON `json:"config,omitempty"`
	// IncludeRIR embeds each variant's .rir text in the response.
	IncludeRIR bool `json:"include_rir,omitempty"`
}

// candidateJSON is one detected prediction-eligible loop.
type candidateJSON struct {
	Name       string `json:"name"`
	Header     int    `json:"header"`
	Latch      int    `json:"latch"`
	Cost       int    `json:"cost"`
	ValueFloat bool   `json:"value_float"`
	HasCall    bool   `json:"has_call"`
	Invariants int    `json:"invariants"`
}

// schemeStatsJSON is the static shape of one protected variant.
type schemeStatsJSON struct {
	Functions    int `json:"functions"`
	Instructions int `json:"instructions"` // static instruction count
	PPLoops      int `json:"pp_loops"`
	// RIR is the serialized module (include_rir only).
	RIR string `json:"rir,omitempty"`
}

type compileResponse struct {
	Name   string `json:"name"`
	Kernel string `json:"kernel"`
	// Cached reports whether the build was served from the shared
	// content-addressed build cache (or coalesced onto a concurrent
	// identical build) instead of compiled for this request.
	Cached     bool                       `json:"cached"`
	Candidates []candidateJSON            `json:"candidates"`
	Schemes    map[string]schemeStatsJSON `json:"schemes"`
}

// runRequest is the body of POST /v1/run: execute one built-in
// benchmark kernel under a scheme, bounded by a wall-clock timeout.
type runRequest struct {
	Bench  string `json:"bench"`
	Scheme string `json:"scheme"`
	// Seed indexes the test input (default 0).
	Seed int `json:"seed,omitempty"`
	// Scale is the input scale: "tiny", "fi" (default) or "perf".
	Scale string `json:"scale,omitempty"`
	// Train is the number of training inputs for the rskip scheme
	// (default 2; ignored for other schemes).
	Train  int         `json:"train,omitempty"`
	Config *configJSON `json:"config,omitempty"`
	// TimeoutMS bounds the execution (capped by the server's
	// max-run-timeout; 0 = the server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

type runResponse struct {
	Bench         string  `json:"bench"`
	Scheme        string  `json:"scheme"`
	Cached        bool    `json:"cached"`
	Instrs        uint64  `json:"instrs"`
	Cycles        uint64  `json:"cycles"`
	IPC           float64 `json:"ipc"`
	GoldenInstrs  uint64  `json:"golden_instrs"`
	GoldenCycles  uint64  `json:"golden_cycles"`
	Overhead      float64 `json:"overhead"` // cycles / golden cycles
	OutputMatches bool    `json:"output_matches"`
	SkipRate      float64 `json:"skip_rate,omitempty"`
	DISkipRate    float64 `json:"di_skip_rate,omitempty"`
}

// campaignRequest is the body of POST /v1/campaigns: an asynchronous
// fault-injection job over a built-in benchmark.
type campaignRequest struct {
	Bench  string `json:"bench"`
	Scheme string `json:"scheme"`
	// N is the injection count (default 1000).
	N int `json:"n,omitempty"`
	// Seed drives fault-plan sampling (default 20200222, rskipfi's).
	Seed int64 `json:"seed,omitempty"`
	// Train is the number of training inputs for rskip (default 2).
	Train   int         `json:"train,omitempty"`
	Config  *configJSON `json:"config,omitempty"`
	Workers int         `json:"workers,omitempty"`
	Batch   int         `json:"batch,omitempty"`
	// TargetCI enables adaptive sampling (percentage points).
	TargetCI float64 `json:"target_ci,omitempty"`
	// RunTimeoutMS bounds each injected run by wall-clock time
	// (capped by the server's max-run-timeout).
	RunTimeoutMS int64 `json:"run_timeout_ms,omitempty"`
	// FaultModel selects the threat model: "seu" (default), "skip"
	// (instruction-skip bursts) or "multibit" (adjacent-bit upsets).
	// Unknown models are rejected with code unknown_fault_model.
	FaultModel string `json:"fault_model,omitempty"`
	// SkipWidth is the skip burst length (default 1).
	SkipWidth int `json:"skip_width,omitempty"`
	// BitWidth is the adjacent-bit flip width (default 2).
	BitWidth int `json:"bit_width,omitempty"`
	// Exhaustive enumerates every fault site of the model instead of
	// sampling N faults; N must be omitted (the region derives it).
	Exhaustive bool `json:"exhaustive,omitempty"`
	// Stratify allocates the N replicas across instruction-class
	// strata in proportion to the profiled stream; conflicts with
	// Exhaustive and TargetCI (code config_conflict).
	Stratify bool `json:"stratify,omitempty"`
	// Incremental runs the compositional per-region analyzer instead
	// of one monolithic campaign: N replicas per candidate-loop
	// region, served from the server's result cache when the region is
	// unchanged. Requires the server to run with -result-cache-dir;
	// conflicts with Exhaustive, TargetCI and Stratify.
	Incremental bool `json:"incremental,omitempty"`
	// Distributed runs the campaign through the fabric coordinator:
	// shards are leased to remote workers (rskipd -worker -join) over
	// /v1/fabric/* and to the in-process pool, and merged to a result
	// bit-identical to the single-node campaign. Conflicts with
	// Incremental, TargetCI and RunTimeoutMS (code config_conflict).
	Distributed bool `json:"distributed,omitempty"`
	// ShardSize is the runs-per-lease granularity of a distributed
	// campaign (default 250).
	ShardSize int `json:"shard_size,omitempty"`
	// LocalWorkers is the number of in-process lease loops the
	// coordinator node contributes to its own distributed campaign:
	// 0 = one loop (default), < 0 = none (pure coordinator, remote
	// workers do all the work).
	LocalWorkers int `json:"local_workers,omitempty"`
}

// campaignSubmitResponse acknowledges an accepted job (202).
type campaignSubmitResponse struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	StatusURL string `json:"status_url"`
	StreamURL string `json:"stream_url"`
	// Advice is the advisory forecast recorded for this submission —
	// informational only; the job runs identically with or without it.
	Advice *adviseResponse `json:"advice,omitempty"`
}

// campaignResultJSON is the terminal (or partial, for cancelled jobs)
// outcome distribution of one campaign.
type campaignResultJSON struct {
	Scheme       string         `json:"scheme"`
	N            int            `json:"n"`
	Requested    int            `json:"requested"`
	EarlyStopped bool           `json:"early_stopped,omitempty"`
	Exhaustive   bool           `json:"exhaustive,omitempty"`
	Counts       map[string]int `json:"counts"`
	Protection   float64        `json:"protection_rate"`
	ProtectionCI [2]float64     `json:"protection_ci95"`
	Fired        int            `json:"fired"`
	FalseNeg     int            `json:"false_neg"`
	Recovered    int            `json:"recovered"`
	// Strata is the per-instruction-class breakdown of a stratified
	// campaign.
	Strata []stratumJSON `json:"strata,omitempty"`
	// Incremental marks a compositional per-region analysis; Regions
	// counts its campaign units and CacheHits/CacheMisses its result-
	// cache traffic (a fully warm re-submission hits every region).
	Incremental bool `json:"incremental,omitempty"`
	Regions     int  `json:"regions,omitempty"`
	CacheHits   int  `json:"cache_hits,omitempty"`
	CacheMisses int  `json:"cache_misses,omitempty"`
}

// stratumJSON is one instruction-class stratum.
type stratumJSON struct {
	Class     string  `json:"class"`
	Weight    float64 `json:"weight"`
	N         int     `json:"n"`
	Protected int     `json:"protected"`
}

func toCampaignResult(r fault.Result) *campaignResultJSON {
	j := &campaignResultJSON{
		Scheme: r.Scheme.String(), N: r.N, Requested: r.Requested,
		EarlyStopped: r.EarlyStopped, Exhaustive: r.Exhaustive,
		Counts:     map[string]int{},
		Protection: r.ProtectionRate(),
		Fired:      r.Fired, FalseNeg: r.FalseNeg, Recovered: r.Recovered,
	}
	lo, hi := r.ProtectionCI()
	j.ProtectionCI = [2]float64{lo, hi}
	for c := fault.Correct; c < fault.NumClasses; c++ {
		j.Counts[c.String()] = r.Counts[c]
	}
	for _, st := range r.Strata {
		j.Strata = append(j.Strata, stratumJSON{
			Class: st.Class.String(), Weight: st.Weight,
			N: st.N, Protected: st.Protected,
		})
	}
	return j
}

// toIncrementalResult renders a compositional analysis: pooled counts
// from the composed result, weighted program-level protection, and
// the cache traffic that proves (or disproves) incrementality.
func toIncrementalResult(rep *result.Report) *campaignResultJSON {
	j := toCampaignResult(rep.Composed)
	j.Scheme = rep.Scheme.String()
	j.Protection = rep.Protection
	j.ProtectionCI = rep.ProtectionCI
	j.Incremental = true
	j.Regions = len(rep.Regions)
	j.CacheHits, j.CacheMisses = rep.CacheHits, rep.CacheMisses
	return j
}

// campaignStatus is the body of GET /v1/campaigns/{id}, and the
// per-job element of GET /v1/campaigns.
type campaignStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Bench string `json:"bench"`
	// Done/N track progress: completed runs out of requested.
	Done int `json:"done"`
	N    int `json:"n"`
	// Result is present once the job reaches a terminal state (for
	// cancelled jobs it holds the partial outcome distribution).
	Result *campaignResultJSON `json:"result,omitempty"`
	Error  string              `json:"error,omitempty"`
}

// progressEvent is one line of the application/x-ndjson stream served
// by GET /v1/campaigns/{id}/stream.
type progressEvent struct {
	ID         string              `json:"id"`
	State      string              `json:"state"`
	Done       int                 `json:"done"`
	N          int                 `json:"n"`
	Protection float64             `json:"protection_rate"`
	Result     *campaignResultJSON `json:"result,omitempty"`
	Error      string              `json:"error,omitempty"`
}

// healthResponse is the body of GET /healthz.
type healthResponse struct {
	Status   string `json:"status"`
	UptimeMS int64  `json:"uptime_ms"`
	Queued   int    `json:"jobs_queued"`
	Running  int    `json:"jobs_running"`
	// FabricJobs counts distributed campaigns currently leasing shards
	// to workers.
	FabricJobs int  `json:"fabric_jobs,omitempty"`
	Draining   bool `json:"draining"`
	// Advice reports the advisory prediction layer's corpus size and
	// realized forecast accuracy.
	Advice *adviceHealthJSON `json:"advice,omitempty"`
}
