package server_test

import (
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"rskip/internal/server"
)

type adviseResp struct {
	Advisory     bool       `json:"advisory"`
	Protection   float64    `json:"protection_rate"`
	ProtectionCI [2]float64 `json:"protection_ci95"`
	WallEst      float64    `json:"wall_seconds_est"`
	Source       string     `json:"source"`
	Confidence   string     `json:"confidence"`
	CorpusSize   int        `json:"corpus_size"`
	Neighbors    int        `json:"neighbors"`
	PredictionID string     `json:"prediction_id"`
}

type adviceHealth struct {
	Advice *struct {
		CorpusSize  int     `json:"corpus_size"`
		Predictions int     `json:"predictions"`
		Scored      int     `json:"scored"`
		MAE         float64 `json:"mae_pts"`
		CICoverage  float64 `json:"ci_coverage"`
	} `json:"advice"`
}

// A cold corpus still answers — from per-scheme priors, labeled
// advisory with low confidence, never an error.
func TestAdviseColdCorpus(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	var fc adviseResp
	code := postJSON(t, ts.URL+"/v1/advise", map[string]any{
		"bench": "conv1d", "scheme": "rskip",
	}, &fc)
	if code != http.StatusOK {
		t.Fatalf("cold-corpus advise status %d, want 200", code)
	}
	if !fc.Advisory {
		t.Error("forecast not labeled advisory")
	}
	if fc.Source != "priors" || fc.Confidence != "low" || fc.CorpusSize != 0 {
		t.Errorf("cold forecast = %+v, want priors/low/0", fc)
	}
	if fc.ProtectionCI[0] > fc.Protection || fc.Protection > fc.ProtectionCI[1] {
		t.Errorf("forecast point %v outside its interval %v", fc.Protection, fc.ProtectionCI)
	}
}

func TestAdviseStructuredErrors(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	cases := []struct {
		name     string
		body     map[string]any
		wantCode int
		wantSlug string
	}{
		{"missing bench", map[string]any{"scheme": "rskip"}, 400, "missing_bench"},
		{"unknown bench", map[string]any{"bench": "no-such", "scheme": "rskip"}, 404, "unknown_bench"},
		{"missing scheme", map[string]any{"bench": "conv1d"}, 400, "missing_scheme"},
		{"unknown scheme", map[string]any{"bench": "conv1d", "scheme": "tmr"}, 400, "unknown_scheme"},
		{"unknown fault model", map[string]any{"bench": "conv1d", "scheme": "rskip", "fault_model": "rowhammer"}, 400, "unknown_fault_model"},
		{"unknown backend", map[string]any{"bench": "conv1d", "scheme": "rskip", "config": map[string]any{"backend": "fpga"}}, 400, "unknown_backend"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var raw map[string]any
			code := postJSON(t, ts.URL+"/v1/advise", tc.body, &raw)
			if code != tc.wantCode {
				t.Fatalf("status %d, want %d (%v)", code, tc.wantCode, raw)
			}
			if got := errCode(t, raw); got != tc.wantSlug {
				t.Errorf("error code %q, want %q", got, tc.wantSlug)
			}
		})
	}
}

// The full advisory loop: a submission carries a forecast with a
// prediction ID; its outcome lands in the corpus and scores the
// prediction; a later query for the same campaign is corpus-sourced.
func TestAdviseScoringLoopAcrossCampaign(t *testing.T) {
	adviceDir := t.TempDir()
	_, ts := newTestServer(t, server.Config{AdviceDir: adviceDir})

	spec := map[string]any{"bench": "musum", "scheme": "swift", "fault_model": "skip", "n": 60, "seed": 5, "batch": 20}
	var sub struct {
		ID     string      `json:"id"`
		Advice *adviseResp `json:"advice"`
	}
	if code := postJSON(t, ts.URL+"/v1/campaigns", spec, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if sub.Advice == nil || !sub.Advice.Advisory {
		t.Fatalf("submission carries no advisory forecast: %+v", sub.Advice)
	}
	if sub.Advice.PredictionID == "" {
		t.Error("submission forecast has no prediction ID to score against")
	}
	if sub.Advice.Source != "priors" {
		t.Errorf("first-ever forecast source %q, want priors", sub.Advice.Source)
	}
	st := waitFor(t, ts, sub.ID, 120*time.Second, terminal)
	if st.State != "done" {
		t.Fatalf("job finished %q (%s)", st.State, st.Error)
	}

	// The outcome was observed: corpus grew, the prediction was scored.
	deadline := time.Now().Add(10 * time.Second)
	var h adviceHealth
	for {
		if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &h); code != 200 {
			t.Fatalf("healthz status %d", code)
		}
		if h.Advice != nil && h.Advice.Scored >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prediction never scored; healthz advice block %+v", h.Advice)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if h.Advice.CorpusSize < 1 || h.Advice.Predictions < 1 {
		t.Errorf("advice health %+v, want corpus and predictions >= 1", h.Advice)
	}

	// A fresh advise query for the same campaign now blends neighbors.
	var fc adviseResp
	if code := postJSON(t, ts.URL+"/v1/advise", map[string]any{
		"bench": "musum", "scheme": "swift", "fault_model": "skip", "n": 60,
	}, &fc); code != http.StatusOK {
		t.Fatalf("advise status %d", code)
	}
	if fc.Source != "corpus" || fc.CorpusSize < 1 || fc.Neighbors < 1 {
		t.Errorf("post-campaign forecast = %+v, want corpus-sourced with neighbors", fc)
	}
	if fc.WallEst <= 0 {
		t.Errorf("post-campaign forecast has no wall estimate: %+v", fc)
	}

	// Predictions persist separately from the corpus, and the scored
	// prediction's outcome label is durable.
	predData, err := os.ReadFile(filepath.Join(adviceDir, "predictions.jsonl"))
	if err != nil {
		t.Fatalf("predictions file: %v", err)
	}
	if !strings.Contains(string(predData), `"outcome"`) {
		t.Error("predictions.jsonl has no outcome-labeled line after scoring")
	}
	corpusData, err := os.ReadFile(filepath.Join(adviceDir, "corpus.jsonl"))
	if err != nil {
		t.Fatalf("corpus file: %v", err)
	}
	if strings.Contains(string(corpusData), `"prediction"`) || strings.Contains(string(corpusData), `"forecast"`) {
		t.Error("corpus.jsonl contains prediction records; the two stores must stay separate")
	}
}

// Inertness at the service boundary: the same campaign on a server
// with a warm persisted corpus and on a memory-only one produces
// bit-identical outcome distributions, and hammering /v1/advise while
// the campaign runs changes nothing (this is the -race stress for the
// advise path).
func TestAdviseInertAcrossServers(t *testing.T) {
	spec := map[string]any{"bench": "musum", "scheme": "swiftrhard", "fault_model": "skip", "n": 80, "seed": 9, "batch": 20}

	// Server A: persisted advice corpus, warmed by a first campaign,
	// with concurrent advisory load during the second.
	_, tsA := newTestServer(t, server.Config{AdviceDir: t.TempDir(), Workers: 2})
	warm := submitCampaign(t, tsA, spec)
	if st := waitFor(t, tsA, warm, 120*time.Second, terminal); st.State != "done" {
		t.Fatalf("warmup finished %q (%s)", st.State, st.Error)
	}
	idA := submitCampaign(t, tsA, spec)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					var fc adviseResp
					if code := postJSON(t, tsA.URL+"/v1/advise", map[string]any{
						"bench": "musum", "scheme": "swiftrhard", "fault_model": "skip", "n": 80,
					}, &fc); code != http.StatusOK || !fc.Advisory {
						t.Errorf("concurrent advise: status %d, %+v", code, fc)
						return
					}
				}
			}
		}()
	}
	stA := waitFor(t, tsA, idA, 120*time.Second, terminal)
	close(stop)
	wg.Wait()
	if stA.State != "done" {
		t.Fatalf("advised campaign finished %q (%s)", stA.State, stA.Error)
	}

	// Server B: memory-only advisor, no prior corpus, no query load.
	_, tsB := newTestServer(t, server.Config{Workers: 2})
	idB := submitCampaign(t, tsB, spec)
	stB := waitFor(t, tsB, idB, 120*time.Second, terminal)
	if stB.State != "done" {
		t.Fatalf("quiet campaign finished %q (%s)", stB.State, stB.Error)
	}

	if stA.Result == nil || stB.Result == nil {
		t.Fatal("missing terminal results")
	}
	if !reflect.DeepEqual(stA.Result.Counts, stB.Result.Counts) ||
		stA.Result.N != stB.Result.N ||
		stA.Result.Protection != stB.Result.Protection {
		t.Errorf("advisor state changed campaign outcomes:\n  warm+load: %+v\n  quiet:     %+v",
			stA.Result, stB.Result)
	}
}
