package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/fabric"
	"rskip/internal/fabric/campaign"
	"rskip/internal/fault"
	"rskip/internal/httpx"
	"rskip/internal/obs"
)

// WorkerConfig parameterizes one fabric worker daemon (rskipd -worker).
type WorkerConfig struct {
	// Join is the coordinator daemon's base URL (e.g. http://host:8321).
	Join string
	// Name is the worker's stable identity across leases (default
	// "<hostname>-<pid>").
	Name string
	// Poll is the idle re-poll interval when the coordinator has no
	// work (default 2s).
	Poll time.Duration
	// Workers overrides the within-shard injection parallelism
	// (default: the spec's value, then GOMAXPROCS).
	Workers int
	// Client is the retrying HTTP client (default: a zero httpx.Client).
	Client *httpx.Client
	// Obs is the worker's telemetry handle (nil = metrics-only).
	Obs *obs.Obs
	// Log receives human progress lines (default os.Stderr).
	Log func(format string, args ...any)
}

// Worker is a fabric worker: it pulls shard leases from a coordinator
// daemon, executes them on locally built executors, and streams
// heartbeats and completed payloads back. Executors are cached by
// plan key, so every shard of a campaign — across leases, including
// shards stolen back after this worker was presumed dead — shares one
// build, one profile run and one record array.
type Worker struct {
	cfg  WorkerConfig
	ctx  context.Context
	name string
	cli  *httpx.Client

	mu    sync.Mutex
	execs map[string]*fault.Executor // by plan key
}

// NewWorker validates the config and builds a worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Join == "" {
		return nil, fmt.Errorf("worker: -join must name the coordinator's base URL")
	}
	if cfg.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		cfg.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &httpx.Client{}
	}
	if cfg.Obs == nil {
		cfg.Obs = &obs.Obs{Metrics: obs.NewMetrics()}
	}
	if cfg.Log == nil {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "rskipd worker: "+format+"\n", args...)
		}
	}
	return &Worker{cfg: cfg, name: cfg.Name, cli: cfg.Client, execs: map[string]*fault.Executor{}}, nil
}

// Run is the worker loop: lease, execute, complete, repeat until ctx
// is cancelled. Transient coordinator failures back off through the
// retrying client and never kill the loop — the coordinator's lease
// TTL already treats a silent worker as dead, so the worker's only
// job is to keep trying.
func (w *Worker) Run(ctx context.Context) error {
	w.ctx = obs.Into(ctx, w.cfg.Obs)
	w.cfg.Log("%s joining %s", w.name, w.cfg.Join)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, ok, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.cfg.Log("lease: %v (retrying in %v)", err, w.cfg.Poll)
			ok = false
		}
		if !ok {
			if serr := w.sleep(ctx); serr != nil {
				return serr
			}
			continue
		}
		if err := w.runLease(ctx, lease); err != nil && ctx.Err() == nil {
			w.cfg.Log("shard %d of %s: %v", lease.Shard.ID, lease.JobID, err)
		}
	}
}

func (w *Worker) sleep(ctx context.Context) error {
	t := time.NewTimer(w.cfg.Poll)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (w *Worker) lease(ctx context.Context) (fabric.WireLease, bool, error) {
	var lease fabric.WireLease
	status, body, err := w.cli.PostJSON(ctx, w.cfg.Join+"/v1/fabric/lease",
		fabric.WireLeaseRequest{Worker: w.name}, &lease)
	switch {
	case err != nil:
		return lease, false, err
	case status == http.StatusNoContent:
		return lease, false, nil
	case status != http.StatusOK:
		return lease, false, fmt.Errorf("coordinator returned %d: %s", status, body)
	}
	return lease, true, nil
}

// runLease executes one leased shard: resolve (or build) the plan's
// executor, cross-check the plan key, run sub-batches with heartbeats
// between them, and deliver the payload.
func (w *Worker) runLease(ctx context.Context, lease fabric.WireLease) error {
	x, err := w.executor(lease)
	if err != nil {
		return err
	}
	// Heartbeat cadence: at least a few beats per TTL, even when the
	// spec's batch is large relative to the lease.
	runner := campaign.NewRunner(x, 0)
	hb := func(done int) error {
		return w.post("/v1/fabric/heartbeat", fabric.WireHeartbeat{
			Worker: w.name, JobID: lease.JobID, Shard: lease.Shard.ID, Done: done,
		})
	}
	payload, err := runner.RunShard(ctx, lease.Shard, hb)
	if err != nil {
		return err
	}
	return w.post("/v1/fabric/complete", fabric.WireComplete{
		Worker: w.name, JobID: lease.JobID, Shard: lease.Shard.ID, Payload: payload,
	})
}

// errLeaseLost and errJobGone map the protocol's 409/410 onto errors
// the shard loop treats as "drop this shard and lease again".
var (
	errLeaseLost = fmt.Errorf("worker: lease lost (shard reassigned)")
	errJobGone   = fmt.Errorf("worker: job gone (finished or cancelled)")
)

func (w *Worker) post(path string, body any) error {
	status, respBody, err := w.cli.PostJSON(w.ctx, w.cfg.Join+path, body, nil)
	switch {
	case err != nil:
		return err
	case status == http.StatusConflict:
		return errLeaseLost
	case status == http.StatusGone:
		return errJobGone
	case status != http.StatusOK:
		return fmt.Errorf("worker: coordinator returned %d for %s: %s", status, path, respBody)
	}
	return nil
}

// executor resolves the lease's plan to a cached executor, building
// one from the spec on first sight. The locally derived campaign key
// must equal the coordinator's plan key — a mismatch means the two
// processes disagree about the build or the fault model, and running
// anyway would merge wrong records into a right-looking result.
func (w *Worker) executor(lease fabric.WireLease) (*fault.Executor, error) {
	w.mu.Lock()
	x := w.execs[lease.PlanKey]
	w.mu.Unlock()
	if x != nil {
		return x, nil
	}
	var req campaignRequest
	if err := json.Unmarshal(lease.Spec, &req); err != nil {
		return nil, fmt.Errorf("worker: decoding job spec: %w", err)
	}
	x, err := w.buildExecutor(&req)
	if err != nil {
		return nil, err
	}
	if x.Key() != lease.PlanKey {
		return nil, fmt.Errorf("worker: plan key mismatch (configuration drift; refusing the shard):\n  local %s\n  coord %s", x.Key(), lease.PlanKey)
	}
	w.mu.Lock()
	w.execs[lease.PlanKey] = x
	w.mu.Unlock()
	w.cfg.Log("prepared %s n=%d for %s", req.Bench, x.N(), lease.JobID)
	return x, nil
}

// buildExecutor mirrors the coordinator's executeCampaign build path:
// same benchmark, same config, same training seeds, same instance —
// every input to the campaign key. Builds come from the shared
// content-addressed cache, so concurrent campaigns over one benchmark
// × config compile once per worker process.
func (w *Worker) buildExecutor(req *campaignRequest) (*fault.Executor, error) {
	scheme, err := parseScheme(req.Scheme)
	if err != nil {
		return nil, err
	}
	b, err := bench.ByName(req.Bench)
	if err != nil {
		return nil, err
	}
	cfg, err := req.Config.toCoreConfig()
	if err != nil {
		return nil, err
	}
	p, _, err := core.BuildContextCached(w.ctx, b, cfg)
	if err != nil {
		return nil, err
	}
	if scheme == core.RSkip {
		train := req.Train
		if train <= 0 {
			train = 2
		}
		seeds := make([]int64, train)
		for i := range seeds {
			seeds[i] = bench.TrainSeed(i)
		}
		if err := p.Train(seeds, bench.ScaleFI); err != nil {
			return nil, err
		}
	}
	inst := b.Gen(bench.TestSeed(0), bench.ScaleFI)
	fcfg, err := req.faultConfig()
	if err != nil {
		return nil, err
	}
	// Defense in depth: these are rejected at submit, and NewExecutor
	// rejects them again; zeroing here keeps a drifted coordinator from
	// wedging the worker in a reject loop.
	fcfg.RunTimeout = 0
	fcfg.TargetCI = 0
	fcfg.CheckpointPath = ""
	if w.cfg.Workers > 0 {
		fcfg.Workers = w.cfg.Workers
	}
	return fault.NewExecutor(w.ctx, p, scheme, inst, fcfg)
}
