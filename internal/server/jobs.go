package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"rskip/internal/advice"
	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/fault"
	"rskip/internal/obs"
	"rskip/internal/result"
)

// Job states. queued → running → {done, failed, cancelled}. A drain
// interrupts running jobs back to queued-on-disk: the job file stays,
// no result file is written, and the next daemon on the same
// checkpoint dir re-enqueues it — fault checkpoints make the re-run
// bit-identical to an uninterrupted campaign.
const (
	jobQueued    = "queued"
	jobRunning   = "running"
	jobDone      = "done"
	jobFailed    = "failed"
	jobCancelled = "cancelled"
)

// jobSpec is the durable identity of one campaign job: everything
// needed to (re)start it. Persisted as <id>.job.json at submit time.
type jobSpec struct {
	ID          string          `json:"id"`
	Request     campaignRequest `json:"request"`
	SubmittedAt string          `json:"submitted_at"`
	// AdviceID names the submission-time advisory prediction this
	// job's outcome will be scored against ("" = none recorded). The
	// campaign itself never reads it.
	AdviceID string `json:"advice_id,omitempty"`
}

// jobOutcome is the durable terminal state, persisted as
// <id>.result.json. Its absence marks a job as resumable.
type jobOutcome struct {
	State      string              `json:"state"`
	Done       int                 `json:"done"`
	Result     *campaignResultJSON `json:"result,omitempty"`
	Error      string              `json:"error,omitempty"`
	FinishedAt string              `json:"finished_at"`
}

// job is the in-memory state of one campaign.
type job struct {
	mu     sync.Mutex
	spec   jobSpec
	scheme core.Scheme
	state  string
	done   int
	// n is the resolved run count. Exhaustive jobs submit with N = 0
	// (the enumerator derives the count from the region), so the first
	// progress snapshot fills this in; sampled jobs echo the request.
	n      int
	result *campaignResultJSON
	errMsg string
	// cancel interrupts the running campaign; userCancel distinguishes
	// a client DELETE (terminal: cancelled) from a server drain
	// (non-terminal: resumable on restart).
	cancel     context.CancelFunc
	userCancel bool
	// doneCh closes when the job reaches a terminal state.
	doneCh chan struct{}
	subs   map[chan progressEvent]struct{}
}

func (j *job) status() campaignStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return campaignStatus{
		ID: j.spec.ID, State: j.state, Bench: j.spec.Request.Bench,
		Done: j.done, N: j.nLocked(),
		Result: j.result, Error: j.errMsg,
	}
}

func (j *job) nLocked() int {
	if j.n > 0 {
		return j.n
	}
	return j.spec.Request.N
}

// event renders the current state as one stream line.
func (j *job) event() progressEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.eventLocked()
}

func (j *job) eventLocked() progressEvent {
	ev := progressEvent{
		ID: j.spec.ID, State: j.state, Done: j.done, N: j.nLocked(),
		Error: j.errMsg,
	}
	if j.result != nil {
		ev.Protection = j.result.Protection
	}
	if terminalState(j.state) {
		ev.Result = j.result
	}
	return ev
}

func terminalState(s string) bool {
	return s == jobDone || s == jobFailed || s == jobCancelled
}

// subscribe registers a progress listener. The channel is buffered;
// intermediate events may be dropped for slow readers, but the
// terminal snapshot is always delivered via doneCh.
func (j *job) subscribe() chan progressEvent {
	ch := make(chan progressEvent, 32)
	j.mu.Lock()
	if j.subs == nil {
		j.subs = map[chan progressEvent]struct{}{}
	}
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch
}

func (j *job) unsubscribe(ch chan progressEvent) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// publishProgress folds a campaign progress snapshot into the job and
// fans it out to stream subscribers.
func (j *job) publishProgress(pr fault.Progress) {
	j.mu.Lock()
	j.done = pr.Done
	j.n = pr.N
	j.result = toCampaignResult(pr.Result)
	ev := j.eventLocked()
	for ch := range j.subs {
		select {
		case ch <- ev:
		default: // slow reader: drop; the final snapshot is authoritative
		}
	}
	j.mu.Unlock()
}

// jobStore indexes jobs by ID and owns their on-disk mirror.
type jobStore struct {
	mu   sync.Mutex
	jobs map[string]*job
	dir  string // "" = no persistence
}

func newJobStore(dir string) *jobStore {
	return &jobStore{jobs: map[string]*job{}, dir: dir}
}

func (st *jobStore) get(id string) *job {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.jobs[id]
}

func (st *jobStore) add(j *job) {
	st.mu.Lock()
	st.jobs[j.spec.ID] = j
	st.mu.Unlock()
}

// list returns every job's status, newest submission first.
func (st *jobStore) list() []campaignStatus {
	st.mu.Lock()
	jobs := make([]*job, 0, len(st.jobs))
	for _, j := range st.jobs {
		jobs = append(jobs, j)
	}
	st.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].spec.SubmittedAt != jobs[b].spec.SubmittedAt {
			return jobs[a].spec.SubmittedAt > jobs[b].spec.SubmittedAt
		}
		return jobs[a].spec.ID > jobs[b].spec.ID
	})
	out := make([]campaignStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

func (st *jobStore) counts() (queued, running int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, j := range st.jobs {
		j.mu.Lock()
		switch j.state {
		case jobQueued:
			queued++
		case jobRunning:
			running++
		}
		j.mu.Unlock()
	}
	return queued, running
}

func newJobID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fallback: time-derived; collisions are rejected at add time.
		return fmt.Sprintf("c-%012x", time.Now().UnixNano())
	}
	return "c-" + hex.EncodeToString(b[:])
}

// Persistence file layout under the checkpoint dir:
//
//	<id>.job.json     the job spec (written at submit)
//	<id>.ck.json      the fault engine's campaign checkpoint
//	<id>.result.json  the terminal outcome (written at completion)

func (st *jobStore) specPath(id string) string   { return filepath.Join(st.dir, id+".job.json") }
func (st *jobStore) ckPath(id string) string     { return filepath.Join(st.dir, id+".ck.json") }
func (st *jobStore) resultPath(id string) string { return filepath.Join(st.dir, id+".result.json") }

// persistSpec writes the job spec; a failure is returned so submit can
// refuse jobs it could not make durable (they would silently vanish on
// restart otherwise).
func (st *jobStore) persistSpec(j *job) error {
	if st.dir == "" {
		return nil
	}
	data, err := json.MarshalIndent(&j.spec, "", "  ")
	if err == nil {
		err = os.WriteFile(st.specPath(j.spec.ID), data, 0o644)
	}
	if err != nil {
		return fmt.Errorf("persisting job spec: %w", err)
	}
	return nil
}

// persistOutcome mirrors a terminal state to disk (best effort: the
// in-memory state is already authoritative for this process).
func (st *jobStore) persistOutcome(j *job) {
	if st.dir == "" {
		return
	}
	j.mu.Lock()
	oc := jobOutcome{State: j.state, Done: j.done, Result: j.result, Error: j.errMsg,
		FinishedAt: time.Now().UTC().Format(time.RFC3339)}
	id := j.spec.ID
	j.mu.Unlock()
	if data, err := json.MarshalIndent(&oc, "", "  "); err == nil {
		_ = os.WriteFile(st.resultPath(id), data, 0o644)
	}
	// A terminal job never resumes, so its campaign checkpoint is dead
	// weight from here on; the startup sweep catches the ones a crash
	// leaves behind.
	if terminalState(oc.State) {
		_ = os.Remove(st.ckPath(id))
	}
}

// sweepOrphans removes checkpoint-dir files no future daemon will
// ever read again:
//
//   - .ck-*.json temp files (a crash between the checkpoint writer's
//     temp write and its atomic rename)
//   - <id>.job.json (+ result) of jobs cancelled before their first
//     checkpoint — the record holds no runs and nothing resumable, so
//     it only accumulates across restarts
//   - <id>.ck.json of jobs already terminal — the campaign will never
//     resume, so the checkpoint is dead weight
//   - <id>.ck.json / <id>.result.json whose job spec is gone
//
// It runs before loadPersisted so restored state never references a
// removed file. Returns the number of files removed.
func (st *jobStore) sweepOrphans() (int, error) {
	if st.dir == "" {
		return 0, nil
	}
	swept := 0
	remove := func(path string) {
		if err := os.Remove(path); err == nil {
			swept++
		}
	}
	if tmps, _ := filepath.Glob(filepath.Join(st.dir, ".ck-*.json")); tmps != nil {
		for _, t := range tmps {
			remove(t)
		}
	}
	specs, err := filepath.Glob(filepath.Join(st.dir, "*.job.json"))
	if err != nil {
		return swept, err
	}
	live := map[string]bool{}
	for _, name := range specs {
		id := strings.TrimSuffix(filepath.Base(name), ".job.json")
		live[id] = true
		ocData, err := os.ReadFile(st.resultPath(id))
		if err != nil {
			continue // no outcome: queued or drained, resumable — keep
		}
		var oc jobOutcome
		if err := json.Unmarshal(ocData, &oc); err != nil || !terminalState(oc.State) {
			continue
		}
		_, ckErr := os.Stat(st.ckPath(id))
		switch {
		case oc.State == jobCancelled && oc.Done == 0 && ckErr != nil:
			// Spec first: a leftover result without a spec is caught by
			// the unmatched-file pass below, while a leftover spec
			// without a result would re-enqueue a cancelled job.
			remove(st.specPath(id))
			remove(st.resultPath(id))
			live[id] = false
		case ckErr == nil:
			remove(st.ckPath(id))
		}
	}
	for _, suffix := range []string{".ck.json", ".result.json"} {
		names, _ := filepath.Glob(filepath.Join(st.dir, "*"+suffix))
		for _, name := range names {
			if !live[strings.TrimSuffix(filepath.Base(name), suffix)] {
				remove(name)
			}
		}
	}
	return swept, nil
}

// loadPersisted scans the checkpoint dir: jobs with a result file are
// restored as terminal records (so clients can still GET them after a
// restart); jobs without one are returned for re-enqueueing — their
// campaign checkpoints resume where the previous daemon drained.
func (st *jobStore) loadPersisted() (resumable []*job, err error) {
	if st.dir == "" {
		return nil, nil
	}
	names, err := filepath.Glob(filepath.Join(st.dir, "*.job.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		var spec jobSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return nil, fmt.Errorf("corrupt job file %s: %w", name, err)
		}
		if spec.ID == "" || spec.ID != strings.TrimSuffix(filepath.Base(name), ".job.json") {
			return nil, fmt.Errorf("job file %s does not match its ID %q", name, spec.ID)
		}
		scheme, err := parseScheme(spec.Request.Scheme)
		if err != nil {
			return nil, fmt.Errorf("job file %s: %w", name, err)
		}
		j := &job{spec: spec, scheme: scheme, state: jobQueued, doneCh: make(chan struct{})}
		if ocData, err := os.ReadFile(st.resultPath(spec.ID)); err == nil {
			var oc jobOutcome
			if err := json.Unmarshal(ocData, &oc); err == nil && terminalState(oc.State) {
				j.state, j.done, j.result, j.errMsg = oc.State, oc.Done, oc.Result, oc.Error
				close(j.doneCh)
				st.add(j)
				continue
			}
		}
		st.add(j)
		resumable = append(resumable, j)
	}
	return resumable, nil
}

// runJob executes one campaign job to a terminal state (or back to a
// resumable one if the server is draining). It runs on a pool worker.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.state != jobQueued { // cancelled while waiting in the queue
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.state = jobRunning
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()
	s.met.jobsStarted.Inc()

	wallStart := time.Now()
	res, rep, err := s.executeCampaign(ctx, j)
	wallSeconds := time.Since(wallStart).Seconds()
	// An incremental analysis reports through its composed Report; the
	// monolithic path reports the raw campaign result.
	render := func() *campaignResultJSON {
		if rep != nil {
			return toIncrementalResult(rep)
		}
		return toCampaignResult(res)
	}
	if rep != nil {
		res = rep.Composed
	}

	j.mu.Lock()
	j.cancel = nil
	switch {
	case err == nil:
		j.state = jobDone
		j.result = render()
		j.done = res.N
		s.met.jobsDone.Inc()
	case ctx.Err() != nil && !j.userCancel && s.isDraining():
		// Drain interruption: leave the job resumable. The last batch's
		// checkpoint is already on disk; a restarted daemon on the same
		// checkpoint dir completes the campaign bit-identically.
		j.state = jobQueued
		j.result = render()
		j.done = res.N
		j.mu.Unlock()
		s.met.jobsInterrupted.Inc()
		return
	case j.userCancel:
		j.state = jobCancelled
		j.result = render()
		j.done = res.N
		j.errMsg = "cancelled by client"
		s.met.jobsCancelled.Inc()
	default:
		j.state = jobFailed
		j.errMsg = err.Error()
		if res.N > 0 {
			j.result = render()
			j.done = res.N
		}
		s.met.jobsFailed.Inc()
	}
	finished := j.state == jobDone
	ev := j.eventLocked()
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	close(j.doneCh)
	j.mu.Unlock()
	s.store.persistOutcome(j)
	// Feed the realized outcome back into the advisory scoring loop —
	// after the terminal state is published, so a slow corpus write can
	// never delay a client, and only for completed campaigns (partial
	// counts would poison the corpus labels).
	if finished {
		s.observeOutcome(j, res, rep, wallSeconds)
	}
}

// executeCampaign builds, trains and injects. Build artifacts come
// from the shared content-addressed cache, so concurrent jobs over the
// same benchmark × config compile once.
func (s *Server) executeCampaign(ctx context.Context, j *job) (fault.Result, *result.Report, error) {
	req := j.spec.Request
	ctx = obs.Into(ctx, s.obs)
	ctx, sp := obs.Start(ctx, "server/job")
	sp.SetAttr("id", j.spec.ID)
	defer sp.End()

	b, err := bench.ByName(req.Bench)
	if err != nil {
		return fault.Result{}, nil, err
	}
	cfg, err := req.Config.toCoreConfig()
	if err != nil {
		return fault.Result{}, nil, err
	}
	p, err := core.BuildContext(ctx, b, cfg)
	if err != nil {
		return fault.Result{}, nil, err
	}
	if j.scheme == core.RSkip {
		train := req.Train
		if train <= 0 {
			train = 2
		}
		seeds := make([]int64, train)
		for i := range seeds {
			seeds[i] = bench.TrainSeed(i)
		}
		if err := p.Train(seeds, bench.ScaleFI); err != nil {
			return fault.Result{}, nil, err
		}
	}
	inst := b.Gen(bench.TestSeed(0), bench.ScaleFI)
	fcfg, err := req.faultConfig()
	if err != nil {
		return fault.Result{}, nil, err
	}
	// Warm the advisor's profile cache (region cost, instruction mix)
	// with one traced fault-free run, once per bench × config × scheme.
	// Executions are pure functions of their inputs, so this cannot
	// perturb the campaign below — the advice package's inertness
	// property test pins it. Failures are ignored: advice is advisory.
	sh := adviceShape(fcfg.Mix, req.SkipWidth, req.BitWidth, req.N)
	if pf := s.advisor.Enrich(advice.StaticFeatures(req.Bench, j.scheme, cfg, sh)); !pf.Profiled {
		if f, err := advice.ExtractFeatures(ctx, p, j.scheme, inst, sh); err == nil {
			s.advisor.Enrich(f)
		}
	}
	if req.Incremental {
		// Compositional analysis: per-region campaigns served from the
		// content-addressed result cache, composed into program-level
		// figures. Region granularity replaces checkpoint/progress
		// streaming for these jobs.
		rep, err := result.Analyze(ctx, p, j.scheme, inst, result.Options{
			Cache:      s.resultCache,
			PerRegionN: req.N,
			Seed:       req.Seed,
			InstKey:    "test0/fi",
			Mix:        fcfg.Mix,
			SkipWidth:  req.SkipWidth,
			BitWidth:   req.BitWidth,
			Workers:    req.Workers,
		})
		if err != nil {
			return fault.Result{}, nil, err
		}
		return rep.Composed, rep, nil
	}
	if req.Distributed {
		// Distributed campaigns publish progress through the fabric
		// coordinator's merge callbacks; RunTimeout and CheckpointPath
		// are rejected at submit (the executor enforces it again).
		res, err := s.executeDistributed(ctx, j, p, inst, fcfg)
		return res, nil, err
	}
	fcfg.OnProgress = j.publishProgress
	// Campaigns default to the deterministic instruction budget only:
	// a wall-clock per-run timeout makes outcomes timing-dependent,
	// which would break bit-identical resume. Clients opt in.
	fcfg.RunTimeout = 0
	if req.RunTimeoutMS > 0 {
		fcfg.RunTimeout = s.capRunTimeout(time.Duration(req.RunTimeoutMS) * time.Millisecond)
	}
	if s.store.dir != "" {
		fcfg.CheckpointPath = s.store.ckPath(j.spec.ID)
	}
	res, err := fault.Campaign(ctx, p, j.scheme, inst, fcfg)
	return res, nil, err
}

// errIncrementalUnavailable rejects incremental submissions on a
// server that has no result cache to back them.
var errIncrementalUnavailable = fmt.Errorf("incremental campaigns require the server to run with -result-cache-dir")

// validateCampaignRequest normalizes and rejects bad submissions
// before they consume a queue slot.
func validateCampaignRequest(req *campaignRequest, hasResultCache bool) (core.Scheme, error) {
	if req.Bench == "" {
		return 0, fmt.Errorf("missing \"bench\"")
	}
	if _, err := bench.ByName(req.Bench); err != nil {
		return 0, err
	}
	if req.Scheme == "" {
		return 0, fmt.Errorf("missing \"scheme\"")
	}
	scheme, err := parseScheme(req.Scheme)
	if err != nil {
		return 0, err
	}
	if req.Incremental {
		if !hasResultCache {
			return 0, errIncrementalUnavailable
		}
		switch {
		case req.Exhaustive:
			return 0, &fault.ConfigConflictError{Options: "incremental and exhaustive",
				Reason: "exhaustive enumeration is already per-site; there is nothing to compose or cache"}
		case req.TargetCI > 0:
			return 0, &fault.ConfigConflictError{Options: "incremental and target_ci",
				Reason: "early stopping would make cached per-region counts depend on when a previous run stopped"}
		case req.Stratify:
			return 0, &fault.ConfigConflictError{Options: "incremental and stratify",
				Reason: "the incremental analyzer already stratifies by region; per-class strata inside a region are not cacheable yet"}
		}
	}
	if req.Distributed {
		switch {
		case req.Incremental:
			return 0, &fault.ConfigConflictError{Options: "distributed and incremental",
				Reason: "the compositional analyzer shards by region through the result cache; fabric sharding by index would nest the two decompositions"}
		case req.TargetCI > 0:
			return 0, &fault.ConfigConflictError{Options: "distributed and target_ci",
				Reason: "adaptive early stop needs the global run prefix, which no shard executor sees"}
		case req.RunTimeoutMS > 0:
			return 0, &fault.ConfigConflictError{Options: "distributed and run_timeout_ms",
				Reason: "wall-clock deadlines classify by elapsed time, which varies across nodes and would break bit-identical merges"}
		}
	}
	if req.N == 0 && !req.Exhaustive {
		req.N = 1000
	}
	if req.Seed == 0 {
		req.Seed = 20200222
	}
	fcfg, err := req.faultConfig()
	if err != nil {
		return 0, err
	}
	if err := fcfg.Validate(); err != nil {
		return 0, err
	}
	// Reject an unknown backend at submit time, not when the queued
	// job finally builds.
	if _, err := req.Config.toCoreConfig(); err != nil {
		return 0, err
	}
	return scheme, nil
}

// faultConfig maps the wire request to the engine config. ModelMix
// rejection surfaces as *fault.UnknownModelError so the HTTP layer can
// give it a dedicated error code.
func (req *campaignRequest) faultConfig() (fault.Config, error) {
	mix, err := fault.ModelMix(req.FaultModel)
	if err != nil {
		return fault.Config{}, err
	}
	return fault.Config{
		N: req.N, Seed: req.Seed, Workers: req.Workers, Batch: req.Batch,
		TargetCI: req.TargetCI, RunTimeout: time.Duration(req.RunTimeoutMS) * time.Millisecond,
		Mix: mix, SkipWidth: req.SkipWidth, BitWidth: req.BitWidth,
		Exhaustive: req.Exhaustive, Stratify: req.Stratify,
	}, nil
}
