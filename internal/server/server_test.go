package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/fault"
	"rskip/internal/server"
)

// newTestServer boots a daemon with test-friendly limits and an
// httptest listener, and tears both down (drain first, so streams and
// jobs end before the listener closes).
func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	if cfg.CheckpointDir == "" {
		cfg.CheckpointDir = t.TempDir()
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		ts.Close()
	})
	return s, ts
}

// postJSON posts a JSON body and decodes the JSON response into out
// (when out is non-nil), returning the status code.
func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	return doJSON(t, http.MethodPost, url, body, out)
}

func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %s %s response (status %d): %v\n%s", method, url, resp.StatusCode, err, data)
		}
	}
	return resp.StatusCode
}

// errCode extracts the structured error code of a non-2xx response.
func errCode(t *testing.T, raw map[string]any) string {
	t.Helper()
	e, ok := raw["error"].(map[string]any)
	if !ok {
		t.Fatalf("response has no structured error body: %v", raw)
	}
	code, _ := e["code"].(string)
	if msg, _ := e["message"].(string); msg == "" {
		t.Errorf("error body has empty message: %v", raw)
	}
	return code
}

const testKernelSource = `
void kernel(int a[], int out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		int acc = 0;
		for (int j = 0; j < 4; j = j + 1) {
			acc = acc + a[i + j] * 3;
		}
		out[i] = acc;
	}
}
`

func TestHealthzMetricsPprof(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})

	var health struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &health); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	if health.Status != "ok" || health.Draining {
		t.Errorf("healthz = %+v, want ok and not draining", health)
	}

	var metrics map[string]any
	if code := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &metrics); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if _, ok := metrics["server_requests_total"]; !ok {
		t.Errorf("metrics registry lacks server_requests_total: have %d metrics", len(metrics))
	}

	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof cmdline status %d", resp.StatusCode)
	}
}

func TestCompileSourceHappyPath(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})

	req := map[string]any{
		"name": "e2e.mc", "source": testKernelSource, "kernel": "kernel",
		"include_rir": true,
	}
	var resp struct {
		Name       string `json:"name"`
		Kernel     string `json:"kernel"`
		Cached     bool   `json:"cached"`
		Candidates []any  `json:"candidates"`
		Schemes    map[string]struct {
			Functions    int    `json:"functions"`
			Instructions int    `json:"instructions"`
			PPLoops      int    `json:"pp_loops"`
			RIR          string `json:"rir"`
		} `json:"schemes"`
	}
	if code := postJSON(t, ts.URL+"/v1/compile", req, &resp); code != 200 {
		t.Fatalf("compile status %d", code)
	}
	if resp.Cached {
		t.Error("first compile reported cached")
	}
	if len(resp.Candidates) == 0 {
		t.Error("no candidate loops reported")
	}
	if len(resp.Schemes) != 4 {
		t.Fatalf("got %d scheme variants, want 4: %v", len(resp.Schemes), resp.Schemes)
	}
	unsafe, swift := resp.Schemes["UNSAFE"], resp.Schemes["SWIFT"]
	if unsafe.Instructions == 0 || swift.Instructions <= unsafe.Instructions {
		t.Errorf("static sizes look wrong: UNSAFE=%d SWIFT=%d", unsafe.Instructions, swift.Instructions)
	}
	if rskip := resp.Schemes["RSkip"]; rskip.PPLoops == 0 {
		t.Error("RSkip variant has no PP loops")
	}
	for name, sc := range resp.Schemes {
		if sc.RIR == "" {
			t.Errorf("scheme %s: include_rir requested but RIR empty", name)
		} else if !strings.Contains(sc.RIR, "func") {
			t.Errorf("scheme %s: RIR does not look like a module", name)
		}
	}

	// An identical second submission must be served from the shared
	// build cache.
	if code := postJSON(t, ts.URL+"/v1/compile", req, &resp); code != 200 {
		t.Fatalf("second compile status %d", code)
	}
	if !resp.Cached {
		t.Error("identical recompile was not served from the build cache")
	}
}

func TestCompileBuiltinBench(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	var resp struct {
		Kernel  string         `json:"kernel"`
		Schemes map[string]any `json:"schemes"`
	}
	code := postJSON(t, ts.URL+"/v1/compile",
		map[string]any{"bench": "conv1d", "schemes": []string{"unsafe", "rskip"}}, &resp)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Kernel != "kernel" {
		t.Errorf("kernel = %q", resp.Kernel)
	}
	if len(resp.Schemes) != 2 {
		t.Errorf("got %d schemes, want the 2 requested", len(resp.Schemes))
	}
}

// Malformed submissions must produce structured 4xx error bodies, not
// 500s or empty responses.
func TestCompileErrors(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	cases := []struct {
		name     string
		body     any
		wantCode int
		wantSlug string
	}{
		{"malformed MiniC", map[string]any{"source": "void kernel( {"}, 400, "compile_error"},
		{"lexer garbage", map[string]any{"source": "\x01\x02???"}, 400, "compile_error"},
		{"missing kernel fn", map[string]any{"source": testKernelSource, "kernel": "nope"}, 400, "unknown_kernel"},
		{"no source or bench", map[string]any{"name": "x.mc"}, 400, "missing_source"},
		{"unknown bench", map[string]any{"bench": "definitely-not-a-bench"}, 404, "unknown_bench"},
		{"unknown scheme", map[string]any{"source": testKernelSource, "kernel": "kernel", "schemes": []string{"tmr9"}}, 400, "unknown_scheme"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var raw map[string]any
			code := postJSON(t, ts.URL+"/v1/compile", tc.body, &raw)
			if code != tc.wantCode {
				t.Fatalf("status %d, want %d (%v)", code, tc.wantCode, raw)
			}
			if got := errCode(t, raw); got != tc.wantSlug {
				t.Errorf("error code %q, want %q", got, tc.wantSlug)
			}
		})
	}

	// Non-JSON body.
	resp, err := http.Post(ts.URL+"/v1/compile", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 || errCode(t, raw) != "bad_request" {
		t.Errorf("non-JSON body: status %d code %v", resp.StatusCode, raw)
	}
}

func TestBodySizeLimit(t *testing.T) {
	_, ts := newTestServer(t, server.Config{MaxBodyBytes: 256})
	big := map[string]any{"source": strings.Repeat("// padding\n", 200) + testKernelSource, "kernel": "kernel"}
	var raw map[string]any
	code := postJSON(t, ts.URL+"/v1/compile", big, &raw)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (%v)", code, raw)
	}
	if got := errCode(t, raw); got != "body_too_large" {
		t.Errorf("error code %q, want body_too_large", got)
	}
}

func TestRunHappyPath(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	var resp struct {
		Scheme        string  `json:"scheme"`
		Instrs        uint64  `json:"instrs"`
		GoldenInstrs  uint64  `json:"golden_instrs"`
		Overhead      float64 `json:"overhead"`
		OutputMatches bool    `json:"output_matches"`
		SkipRate      float64 `json:"skip_rate"`
	}
	code := postJSON(t, ts.URL+"/v1/run",
		map[string]any{"bench": "conv1d", "scheme": "rskip", "scale": "tiny", "train": 1}, &resp)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !resp.OutputMatches {
		t.Error("fault-free RSkip output does not match the unprotected run")
	}
	if resp.Instrs <= resp.GoldenInstrs {
		t.Errorf("protected run executed %d instrs, golden %d — protection overhead missing", resp.Instrs, resp.GoldenInstrs)
	}
	if resp.SkipRate <= 0 {
		t.Errorf("skip rate %v, want > 0 for rskip", resp.SkipRate)
	}

	var raw map[string]any
	if code := postJSON(t, ts.URL+"/v1/run", map[string]any{"bench": "conv1d", "scheme": "rskip", "scale": "huge"}, &raw); code != 400 {
		t.Fatalf("unknown scale: status %d", code)
	} else if errCode(t, raw) != "unknown_scale" {
		t.Errorf("unknown scale: code %v", raw)
	}
}

// A run that exceeds its wall-clock budget must come back as a
// structured 504, not hang the handler.
func TestRunTimeout(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	var raw map[string]any
	code := postJSON(t, ts.URL+"/v1/run",
		map[string]any{"bench": "sgemm", "scheme": "unsafe", "scale": "perf", "timeout_ms": 1}, &raw)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%v)", code, raw)
	}
	if got := errCode(t, raw); got != "run_timeout" {
		t.Errorf("error code %q, want run_timeout", got)
	}
}

// submitCampaign posts a campaign and returns the job ID.
func submitCampaign(t *testing.T, ts *httptest.Server, body map[string]any) string {
	t.Helper()
	var resp struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if code := postJSON(t, ts.URL+"/v1/campaigns", body, &resp); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if resp.ID == "" || resp.State != "queued" {
		t.Fatalf("submit response %+v", resp)
	}
	return resp.ID
}

type statusResp struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Done   int    `json:"done"`
	N      int    `json:"n"`
	Error  string `json:"error"`
	Result *struct {
		N           int            `json:"n"`
		Counts      map[string]int `json:"counts"`
		Exhaustive  bool           `json:"exhaustive"`
		Protection  float64        `json:"protection_rate"`
		Incremental bool           `json:"incremental"`
		Regions     int            `json:"regions"`
		CacheHits   int            `json:"cache_hits"`
		CacheMisses int            `json:"cache_misses"`
	} `json:"result"`
}

func getStatus(t *testing.T, ts *httptest.Server, id string) statusResp {
	t.Helper()
	var st statusResp
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns/"+id, nil, &st); code != 200 {
		t.Fatalf("status endpoint returned %d", code)
	}
	return st
}

// waitFor polls the job status until pred is satisfied or the
// deadline passes.
func waitFor(t *testing.T, ts *httptest.Server, id string, timeout time.Duration, pred func(statusResp) bool) statusResp {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getStatus(t, ts, id)
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for job %s; last status %+v", id, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func terminal(st statusResp) bool {
	return st.State == "done" || st.State == "failed" || st.State == "cancelled"
}

// TestCampaignLifecycle submits a campaign, waits for completion, and
// checks the outcome distribution is bit-identical to running the
// same campaign directly through the fault engine.
func TestCampaignLifecycle(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	const n, seed = 120, 777
	id := submitCampaign(t, ts, map[string]any{
		"bench": "conv1d", "scheme": "unsafe", "n": n, "seed": seed, "batch": 30,
	})
	st := waitFor(t, ts, id, 120*time.Second, terminal)
	if st.State != "done" {
		t.Fatalf("job finished %q (%s), want done", st.State, st.Error)
	}
	if st.Result == nil || st.Result.N != n || st.Done != n {
		t.Fatalf("result %+v done=%d, want %d completed runs", st.Result, st.Done, n)
	}
	sum := 0
	for _, c := range st.Result.Counts {
		sum += c
	}
	if sum != n {
		t.Errorf("class counts sum to %d, want %d", sum, n)
	}

	// Reference: the same campaign, run directly.
	b, err := bench.ByName("conv1d")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Build(b, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := fault.Campaign(context.Background(), p, core.Unsafe,
		b.Gen(bench.TestSeed(0), bench.ScaleFI), fault.Config{N: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for c := fault.Correct; c < fault.NumClasses; c++ {
		if st.Result.Counts[c.String()] != ref.Counts[c] {
			t.Errorf("class %s: server %d, direct %d — server campaign not bit-identical",
				c, st.Result.Counts[c.String()], ref.Counts[c])
		}
	}

	// The listing includes the finished job.
	var list []statusResp
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns", nil, &list); code != 200 {
		t.Fatalf("list status %d", code)
	}
	found := false
	for _, item := range list {
		found = found || item.ID == id
	}
	if !found {
		t.Errorf("job %s missing from the listing", id)
	}

	// Unknown IDs are structured 404s.
	var raw map[string]any
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns/nope", nil, &raw); code != 404 {
		t.Errorf("unknown job status %d, want 404", code)
	} else if errCode(t, raw) != "unknown_job" {
		t.Errorf("unknown job code %v", raw)
	}
}

// TestCampaignStreamAndCancel follows the JSONL progress stream of a
// long campaign, cancels it mid-run, and checks the partial result
// survives.
func TestCampaignStreamAndCancel(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	id := submitCampaign(t, ts, map[string]any{
		"bench": "conv1d", "scheme": "unsafe", "n": 200000, "batch": 25, "workers": 1,
	})

	resp, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	type ev struct {
		State string `json:"state"`
		Done  int    `json:"done"`
		N     int    `json:"n"`
	}
	var events []ev
	cancelled := false
	for sc.Scan() {
		var e ev
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
		if e.Done > 0 && !cancelled {
			cancelled = true
			if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/campaigns/"+id, nil, nil); code != http.StatusAccepted {
				t.Fatalf("cancel status %d", code)
			}
		}
		if e.State == "cancelled" {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("stream produced no events")
	}
	last := events[len(events)-1]
	if last.State != "cancelled" {
		t.Fatalf("final stream state %q, want cancelled (events: %d)", last.State, len(events))
	}
	if last.Done <= 0 || last.Done >= 200000 {
		t.Errorf("cancelled campaign completed %d runs, want a mid-run partial", last.Done)
	}
	prev := 0
	for i, e := range events {
		if e.Done < prev {
			t.Errorf("event %d: done regressed %d -> %d", i, prev, e.Done)
		}
		prev = e.Done
	}

	st := waitFor(t, ts, id, 30*time.Second, terminal)
	if st.State != "cancelled" {
		t.Fatalf("status after cancel %q", st.State)
	}
	if st.Result == nil || st.Result.N != st.Done || st.Done == 0 {
		t.Errorf("cancelled job lost its partial result: %+v", st)
	}

	// Cancelling again is idempotent.
	var again statusResp
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/campaigns/"+id, nil, &again); code != http.StatusAccepted {
		t.Errorf("re-cancel status %d", code)
	}
	if again.State != "cancelled" {
		t.Errorf("re-cancel state %q", again.State)
	}

	// Streaming a finished job yields exactly one terminal line.
	resp2, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	lines, err := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(bytes.TrimSpace(lines), []byte("\n")) + 1; n != 1 {
		t.Errorf("stream of a finished job wrote %d lines, want 1", n)
	}
}

// TestQueueBackpressure saturates a 1-worker, 1-slot queue and checks
// the structured 429.
func TestQueueBackpressure(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1, QueueDepth: 1})
	long := map[string]any{"bench": "conv1d", "scheme": "unsafe", "n": 500000, "batch": 25, "workers": 1}

	idA := submitCampaign(t, ts, long)
	waitFor(t, ts, idA, 60*time.Second, func(st statusResp) bool { return st.State == "running" })
	idB := submitCampaign(t, ts, long) // fills the queue slot

	var raw map[string]any
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/campaigns", bytes.NewReader(mustJSON(t, long)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit status %d, want 429 (%v)", resp.StatusCode, raw)
	}
	if got := errCode(t, raw); got != "queue_full" {
		t.Errorf("error code %q, want queue_full", got)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response lacks Retry-After")
	}

	// Cancel both; the queued job must cancel without ever running.
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/campaigns/"+idB, nil, nil); code != http.StatusAccepted {
		t.Fatalf("cancel queued job: status %d", code)
	}
	stB := getStatus(t, ts, idB)
	if stB.State != "cancelled" {
		t.Errorf("queued job state %q after cancel, want cancelled", stB.State)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/campaigns/"+idA, nil, nil); code != http.StatusAccepted {
		t.Fatalf("cancel running job: status %d", code)
	}
	waitFor(t, ts, idA, 30*time.Second, terminal)
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSyncSaturation429 exhausts the synchronous work slots.
func TestSyncSaturation429(t *testing.T) {
	s, ts := newTestServer(t, server.Config{SyncLimit: 1})
	_ = s
	// Hold the only slot with a slow perf run in the background.
	started := make(chan struct{})
	done := make(chan int)
	go func() {
		close(started)
		code := postJSON(t, ts.URL+"/v1/run",
			map[string]any{"bench": "sgemm", "scheme": "unsafe", "scale": "perf", "timeout_ms": 5000}, nil)
		done <- code
	}()
	<-started
	// Poll until the slot is actually held, then expect 429.
	deadline := time.Now().Add(20 * time.Second)
	for {
		var raw map[string]any
		code := postJSON(t, ts.URL+"/v1/compile", map[string]any{"bench": "conv1d"}, &raw)
		if code == http.StatusTooManyRequests {
			if got := errCode(t, raw); got != "saturated" {
				t.Errorf("error code %q, want saturated", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never observed a 429 while the only sync slot was busy")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code := <-done; code != 200 && code != http.StatusGatewayTimeout {
		t.Errorf("background run finished with status %d", code)
	}
}

// TestDrainRejectsSubmissions checks the drain path refuses new work
// with a structured 503 while still serving reads.
func TestDrainRejectsSubmissions(t *testing.T) {
	s, ts := newTestServer(t, server.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	code := postJSON(t, ts.URL+"/v1/campaigns", map[string]any{"bench": "conv1d", "scheme": "unsafe"}, &raw)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", code)
	}
	if got := errCode(t, raw); got != "draining" {
		t.Errorf("error code %q, want draining", got)
	}
	var health struct {
		Draining bool `json:"draining"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &health); code != 200 || !health.Draining {
		t.Errorf("healthz during drain: status %d draining %v", code, health.Draining)
	}
}

// campaignCounts compares two count maps.
func countsEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestDrainAndResume is the acceptance scenario: SIGTERM-style drain
// interrupts a running campaign mid-flight, the checkpoint it left is
// resumable, and a fresh daemon on the same checkpoint dir completes
// the job to counts bit-identical to an uninterrupted campaign.
func TestDrainAndResume(t *testing.T) {
	dir := t.TempDir()
	const n, seed = 400, 4242

	s1, err := server.New(server.Config{Workers: 1, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	id := submitCampaign(t, ts1, map[string]any{
		"bench": "conv1d", "scheme": "unsafe", "n": n, "seed": seed, "batch": 25, "workers": 2,
	})
	// Let it make real progress, then drain mid-campaign.
	waitFor(t, ts1, id, 120*time.Second, func(st statusResp) bool { return st.Done >= 25 })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	st := getStatus(t, ts1, id)
	if st.State != "queued" {
		t.Fatalf("drained job state %q, want queued (resumable)", st.State)
	}
	if st.Done == 0 || st.Done >= n {
		t.Fatalf("drained job done=%d, want a mid-campaign partial", st.Done)
	}
	interrupted := st.Done
	ts1.Close()

	// A new daemon on the same dir resumes and completes the job.
	s2, ts2 := newTestServer(t, server.Config{Workers: 1, CheckpointDir: dir})
	_ = s2
	final := waitFor(t, ts2, id, 180*time.Second, terminal)
	if final.State != "done" {
		t.Fatalf("resumed job finished %q (%s), want done", final.State, final.Error)
	}
	if final.Result == nil || final.Result.N != n {
		t.Fatalf("resumed job result %+v, want %d runs", final.Result, n)
	}
	t.Logf("drained at %d/%d completed runs, resumed to completion", interrupted, n)

	// Bit-identity with an uninterrupted campaign.
	b, err := bench.ByName("conv1d")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Build(b, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := fault.Campaign(context.Background(), p, core.Unsafe,
		b.Gen(bench.TestSeed(0), bench.ScaleFI), fault.Config{N: n, Seed: seed, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{}
	for c := fault.Correct; c < fault.NumClasses; c++ {
		want[c.String()] = ref.Counts[c]
	}
	if !countsEqual(final.Result.Counts, want) {
		t.Errorf("resumed counts %v != uninterrupted counts %v", final.Result.Counts, want)
	}
}

// TestRestartServesFinishedJobs checks terminal results survive a
// daemon restart.
func TestRestartServesFinishedJobs(t *testing.T) {
	dir := t.TempDir()
	s1, err := server.New(server.Config{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	id := submitCampaign(t, ts1, map[string]any{"bench": "conv1d", "scheme": "unsafe", "n": 60, "seed": 9})
	first := waitFor(t, ts1, id, 120*time.Second, terminal)
	if first.State != "done" {
		t.Fatalf("job finished %q", first.State)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	_, ts2 := newTestServer(t, server.Config{CheckpointDir: dir})
	st := getStatus(t, ts2, id)
	if st.State != "done" || st.Result == nil || !countsEqual(st.Result.Counts, firstCounts(first)) {
		t.Errorf("restarted daemon serves %+v, want the original done result", st)
	}
}

func firstCounts(st statusResp) map[string]int {
	if st.Result == nil {
		return nil
	}
	return st.Result.Counts
}

// TestCampaignFaultModels exercises the fault_model field end to end:
// structured 400s for unknown models and bad exhaustive requests, a
// sampled skip campaign bit-identical to the direct engine, and an
// exhaustive skip job on a micro-kernel proving the hardened scheme.
func TestCampaignFaultModels(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})

	// Unknown model: structured 400 with a dedicated code.
	var raw map[string]any
	code := postJSON(t, ts.URL+"/v1/campaigns", map[string]any{
		"bench": "conv1d", "scheme": "unsafe", "fault_model": "cosmic-ray",
	}, &raw)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown fault model status %d, want 400", code)
	}
	if got := errCode(t, raw); got != "unknown_fault_model" {
		t.Errorf("unknown fault model code %q, want unknown_fault_model", got)
	}

	// Exhaustive with an explicit n: rejected at validation, before a
	// queue slot is consumed.
	raw = nil
	code = postJSON(t, ts.URL+"/v1/campaigns", map[string]any{
		"bench": "musum", "scheme": "swiftrhard", "fault_model": "skip",
		"exhaustive": true, "n": 50,
	}, &raw)
	if code != http.StatusBadRequest {
		t.Fatalf("exhaustive+n status %d, want 400", code)
	}
	if got := errCode(t, raw); got != "bad_campaign" {
		t.Errorf("exhaustive+n code %q, want bad_campaign", got)
	}

	// Sampled skip campaign: bit-identical to the direct engine with
	// the same seed and mix.
	const n, seed = 80, 4242
	id := submitCampaign(t, ts, map[string]any{
		"bench": "conv1d", "scheme": "swiftr", "fault_model": "skip",
		"n": n, "seed": seed,
	})
	st := waitFor(t, ts, id, 120*time.Second, terminal)
	if st.State != "done" || st.Result == nil {
		t.Fatalf("skip job finished %q (%s)", st.State, st.Error)
	}
	b, err := bench.ByName("conv1d")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Build(b, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := fault.Campaign(context.Background(), p, core.SWIFTR,
		b.Gen(bench.TestSeed(0), bench.ScaleFI),
		fault.Config{N: n, Seed: seed, Mix: fault.Mix{Skip: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for c := fault.Correct; c < fault.NumClasses; c++ {
		if st.Result.Counts[c.String()] != ref.Counts[c] {
			t.Errorf("class %s: server %d, direct %d — skip campaign not bit-identical",
				c, st.Result.Counts[c.String()], ref.Counts[c])
		}
	}

	// Exhaustive skip enumeration on a micro-kernel under the hardened
	// scheme: the run count is derived from the region, surfaces in the
	// status, and the protection rate is exactly 100%.
	id = submitCampaign(t, ts, map[string]any{
		"bench": "musum", "scheme": "swiftrhard", "fault_model": "skip",
		"exhaustive": true,
	})
	st = waitFor(t, ts, id, 300*time.Second, terminal)
	if st.State != "done" || st.Result == nil {
		t.Fatalf("exhaustive job finished %q (%s)", st.State, st.Error)
	}
	if !st.Result.Exhaustive || st.Result.N == 0 {
		t.Fatalf("exhaustive result %+v, want exhaustive with a derived run count", st.Result)
	}
	if st.N != st.Result.N || st.Done != st.Result.N {
		t.Errorf("status n=%d done=%d, want both equal to the derived count %d", st.N, st.Done, st.Result.N)
	}
	if st.Result.Protection != 100 {
		t.Errorf("swiftrhard protection %.2f%% under exhaustive single skips, want exactly 100%%", st.Result.Protection)
	}
}

// TestRunBackendField exercises the wire backend selector: every
// backend must produce identical simulated counters for the same
// request (they are bit-identical engines), and an unknown name is a
// structured 400 at submit time.
func TestRunBackendField(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	type counts struct {
		Instrs uint64 `json:"instrs"`
		Cycles uint64 `json:"cycles"`
	}
	var ref counts
	for i, be := range []string{"reference", "fast", "compiled"} {
		var resp counts
		code := postJSON(t, ts.URL+"/v1/run", map[string]any{
			"bench": "conv1d", "scheme": "swiftr", "scale": "tiny",
			"config": map[string]any{"backend": be},
		}, &resp)
		if code != 200 {
			t.Fatalf("backend %q: status %d", be, code)
		}
		if i == 0 {
			ref = resp
			continue
		}
		if resp != ref {
			t.Errorf("backend %q: instrs/cycles %+v, reference %+v", be, resp, ref)
		}
	}

	var raw map[string]any
	if code := postJSON(t, ts.URL+"/v1/run", map[string]any{
		"bench": "conv1d", "scheme": "swiftr", "scale": "tiny",
		"config": map[string]any{"backend": "turbo"},
	}, &raw); code != 400 {
		t.Fatalf("unknown backend: status %d", code)
	} else if errCode(t, raw) != "unknown_backend" {
		t.Errorf("unknown backend: code %v", raw)
	}

	// Campaign submissions reject bad backends before queueing.
	if code := postJSON(t, ts.URL+"/v1/campaigns", map[string]any{
		"bench": "conv1d", "scheme": "unsafe", "n": 1,
		"config": map[string]any{"backend": "turbo"},
	}, &raw); code != 400 {
		t.Fatalf("campaign unknown backend: status %d", code)
	}
}

// TestIncrementalCampaignValidation covers the submit-time rejections
// for incremental and stratified campaigns: without a result cache the
// server refuses incremental jobs with a dedicated code, and option
// conflicts are structured 400s before a queue slot is consumed.
func TestIncrementalCampaignValidation(t *testing.T) {
	// No -result-cache-dir: incremental submissions are refused.
	_, bare := newTestServer(t, server.Config{})
	var raw map[string]any
	code := postJSON(t, bare.URL+"/v1/campaigns", map[string]any{
		"bench": "conv1d", "scheme": "unsafe", "incremental": true,
	}, &raw)
	if code != http.StatusBadRequest {
		t.Fatalf("incremental without cache dir: status %d, want 400", code)
	}
	if got := errCode(t, raw); got != "incremental_unavailable" {
		t.Errorf("incremental without cache dir: code %q, want incremental_unavailable", got)
	}

	// With a cache dir, conflicting options are config_conflict.
	_, ts := newTestServer(t, server.Config{ResultCacheDir: t.TempDir()})
	conflicts := []map[string]any{
		{"bench": "musum", "scheme": "swift", "fault_model": "skip",
			"incremental": true, "exhaustive": true},
		{"bench": "conv1d", "scheme": "swift", "incremental": true, "target_ci": 0.05},
		{"bench": "conv1d", "scheme": "swift", "incremental": true, "stratify": true},
		{"bench": "musum", "scheme": "swift", "fault_model": "skip",
			"stratify": true, "exhaustive": true},
		{"bench": "conv1d", "scheme": "swift", "stratify": true, "target_ci": 0.05},
	}
	for _, body := range conflicts {
		raw = nil
		if code := postJSON(t, ts.URL+"/v1/campaigns", body, &raw); code != http.StatusBadRequest {
			t.Fatalf("conflict %v: status %d, want 400", body, code)
		}
		if got := errCode(t, raw); got != "config_conflict" {
			t.Errorf("conflict %v: code %q, want config_conflict", body, got)
		}
	}
}

// TestIncrementalCampaignCacheHit submits the same incremental
// campaign twice against one result cache: the first run populates it
// (all misses), the second is served entirely from it (all hits) with
// figures identical to the cold run.
func TestIncrementalCampaignCacheHit(t *testing.T) {
	_, ts := newTestServer(t, server.Config{ResultCacheDir: t.TempDir()})
	body := map[string]any{
		"bench": "conv1d", "scheme": "swift", "n": 60, "seed": 99,
		"incremental": true,
	}

	cold := waitFor(t, ts, submitCampaign(t, ts, body), 120*time.Second, terminal)
	if cold.State != "done" || cold.Result == nil {
		t.Fatalf("cold job finished %q (%s)", cold.State, cold.Error)
	}
	if !cold.Result.Incremental || cold.Result.Regions < 1 {
		t.Fatalf("cold result not incremental: %+v", cold.Result)
	}
	if cold.Result.CacheMisses != cold.Result.Regions || cold.Result.CacheHits != 0 {
		t.Errorf("cold cache traffic hits=%d misses=%d, want 0/%d",
			cold.Result.CacheHits, cold.Result.CacheMisses, cold.Result.Regions)
	}

	warm := waitFor(t, ts, submitCampaign(t, ts, body), 120*time.Second, terminal)
	if warm.State != "done" || warm.Result == nil {
		t.Fatalf("warm job finished %q (%s)", warm.State, warm.Error)
	}
	if warm.Result.CacheHits != warm.Result.Regions || warm.Result.CacheMisses != 0 {
		t.Errorf("warm cache traffic hits=%d misses=%d, want %d/0",
			warm.Result.CacheHits, warm.Result.CacheMisses, warm.Result.Regions)
	}

	// The served-from-cache figures are bit-identical to the cold run.
	if warm.Result.N != cold.Result.N || warm.Result.Regions != cold.Result.Regions {
		t.Errorf("warm n=%d regions=%d, cold n=%d regions=%d",
			warm.Result.N, warm.Result.Regions, cold.Result.N, cold.Result.Regions)
	}
	for class, n := range cold.Result.Counts {
		if warm.Result.Counts[class] != n {
			t.Errorf("class %s: warm %d, cold %d", class, warm.Result.Counts[class], n)
		}
	}
	if warm.Result.Protection != cold.Result.Protection {
		t.Errorf("warm protection %.4f, cold %.4f", warm.Result.Protection, cold.Result.Protection)
	}
}

// TestStratifiedCampaign runs a stratified campaign end to end and
// checks the per-class strata surface on the wire result.
func TestStratifiedCampaign(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	id := submitCampaign(t, ts, map[string]any{
		"bench": "conv1d", "scheme": "unsafe", "n": 80, "seed": 7, "stratify": true,
	})
	st := waitFor(t, ts, id, 120*time.Second, terminal)
	if st.State != "done" || st.Result == nil {
		t.Fatalf("stratified job finished %q (%s)", st.State, st.Error)
	}
	var full struct {
		Result struct {
			Strata []struct {
				Class  string  `json:"class"`
				Weight float64 `json:"weight"`
				N      int     `json:"n"`
			} `json:"strata"`
		} `json:"result"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns/"+id, nil, &full); code != 200 {
		t.Fatalf("status endpoint returned %d", code)
	}
	if len(full.Result.Strata) == 0 {
		t.Fatal("stratified result carries no strata")
	}
	total, weight := 0, 0.0
	for _, s := range full.Result.Strata {
		if s.Class == "" {
			t.Error("stratum with empty class name")
		}
		total += s.N
		weight += s.Weight
	}
	if total != st.Result.N {
		t.Errorf("strata replica counts sum to %d, want %d", total, st.Result.N)
	}
	if weight < 0.999 || weight > 1.001 {
		t.Errorf("strata weights sum to %.4f, want 1", weight)
	}
}

// TestOrphanSweepOnRestart: a campaign cancelled before its first
// checkpoint used to leave its <id>.job.json and <id>.result.json in
// the checkpoint dir forever. A restarted daemon now sweeps those —
// along with stray checkpoint temp files and checkpoint/result files
// whose job spec is gone — while leaving resumable jobs untouched.
func TestOrphanSweepOnRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := server.New(server.Config{Workers: 1, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())

	// Occupy the single worker so the victim stays queued: a queued
	// job is by construction cancelled before its first checkpoint.
	blocker := submitCampaign(t, ts1, map[string]any{
		"bench": "conv1d", "scheme": "unsafe", "n": 400, "seed": 1, "batch": 25, "workers": 2,
	})
	victim := submitCampaign(t, ts1, map[string]any{
		"bench": "conv1d", "scheme": "unsafe", "n": 200, "seed": 2,
	})
	if code := doJSON(t, http.MethodDelete, ts1.URL+"/v1/campaigns/"+victim, nil, nil); code != http.StatusAccepted {
		t.Fatalf("cancel status %d", code)
	}
	if st := getStatus(t, ts1, victim); st.State != "cancelled" || st.Done != 0 {
		t.Fatalf("victim state %q done=%d, want cancelled with no runs", st.State, st.Done)
	}
	for _, f := range []string{victim + ".job.json", victim + ".result.json"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("cancelled job should persist %s until the sweep: %v", f, err)
		}
	}
	// Simulate crash debris: a checkpoint temp from a torn atomic save,
	// and checkpoint/result files whose job spec no longer exists.
	for _, f := range []string{".ck-123abc.json", "c-deadbeef0000.ck.json", "c-deadbeef0000.result.json"} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Drain mid-campaign so the blocker is left resumable (job spec +
	// campaign checkpoint, no result) — the sweep must not touch it.
	waitFor(t, ts1, blocker, 120*time.Second, func(st statusResp) bool { return st.Done >= 25 })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	_, ts2 := newTestServer(t, server.Config{Workers: 1, CheckpointDir: dir})
	orphans := []string{
		victim + ".job.json", victim + ".result.json",
		".ck-123abc.json", "c-deadbeef0000.ck.json", "c-deadbeef0000.result.json",
	}
	for _, f := range orphans {
		if _, err := os.Stat(filepath.Join(dir, f)); !os.IsNotExist(err) {
			t.Errorf("orphan %s survived the startup sweep (stat err: %v)", f, err)
		}
	}
	if code := doJSON(t, http.MethodGet, ts2.URL+"/v1/campaigns/"+victim, nil, nil); code != http.StatusNotFound {
		t.Errorf("swept job still served: GET returned %d, want 404", code)
	}
	// The resumable blocker survived the sweep and runs to completion.
	final := waitFor(t, ts2, blocker, 180*time.Second, terminal)
	if final.State != "done" || final.Result == nil || final.Result.N != 400 {
		t.Fatalf("resumed blocker finished %+v, want done with 400 runs", final)
	}
}

// TestDistributedCampaignOverHTTP runs a distributed campaign end to
// end over the real wire: the daemon is a pure coordinator
// (local_workers: -1) and every shard is pulled, executed and
// delivered by a Worker speaking the HTTP fabric protocol. The merged
// counts must be bit-identical to a plain single-node submission of
// the same campaign.
func TestDistributedCampaignOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 2, LeaseTTL: 2 * time.Second})
	const n, seed = 120, 321
	spec := map[string]any{"bench": "conv1d", "scheme": "swiftr", "n": n, "seed": seed}
	ref := submitCampaign(t, ts, spec)

	dist := map[string]any{"distributed": true, "shard_size": 30, "local_workers": -1}
	for k, v := range spec {
		dist[k] = v
	}
	distID := submitCampaign(t, ts, dist)

	wk, err := server.NewWorker(server.WorkerConfig{
		Join: ts.URL, Name: "test-worker", Poll: 25 * time.Millisecond,
		Log: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() { defer close(workerDone); _ = wk.Run(wctx) }()
	defer func() { wcancel(); <-workerDone }()

	refSt := waitFor(t, ts, ref, 120*time.Second, terminal)
	distSt := waitFor(t, ts, distID, 120*time.Second, terminal)
	if refSt.State != "done" || distSt.State != "done" {
		t.Fatalf("states ref=%q dist=%q (%s / %s), want done/done",
			refSt.State, distSt.State, refSt.Error, distSt.Error)
	}
	if distSt.Result == nil || distSt.Result.N != n {
		t.Fatalf("distributed result %+v, want %d runs", distSt.Result, n)
	}
	if !countsEqual(distSt.Result.Counts, refSt.Result.Counts) {
		t.Errorf("distributed counts %v != single-node counts %v",
			distSt.Result.Counts, refSt.Result.Counts)
	}
}

// TestDistributedRejectsConflictingOptions: the options that need a
// global view of the run sequence are refused at submit time.
func TestDistributedRejectsConflictingOptions(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	for _, extra := range []map[string]any{
		{"target_ci": 0.05},
		{"run_timeout_ms": 100},
		{"incremental": true},
	} {
		body := map[string]any{"bench": "conv1d", "scheme": "unsafe", "n": 50, "distributed": true}
		for k, v := range extra {
			body[k] = v
		}
		var raw map[string]any
		code := postJSON(t, ts.URL+"/v1/campaigns", body, &raw)
		if code != http.StatusBadRequest {
			t.Errorf("%v: status %d, want 400", extra, code)
			continue
		}
		if got := errCode(t, raw); got != "config_conflict" && got != "incremental_unavailable" {
			t.Errorf("%v: error code %q", extra, got)
		}
	}
}
