package server_test

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"rskip/internal/core"
	"rskip/internal/server"
)

// A source nothing else in the test binary compiles, so the cache-miss
// accounting below is attributable to this test alone.
const stressKernelSource = `
void kernel(int a[], int out[], int n) {
	for (int i = 0; i < n; i = i + 1) {
		int acc = 424242;
		for (int j = 0; j < 3; j = j + 1) {
			acc = acc + a[i + j] * 7;
		}
		out[i] = acc - 424242;
	}
}
`

// TestConcurrentCompileSingleflight hammers /v1/compile with identical
// bodies from many goroutines (run under -race in CI) and checks the
// build-cache singleflight: exactly one build happens, every other
// request coalesces onto it or hits the cache afterwards.
func TestConcurrentCompileSingleflight(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 2, SyncLimit: 64})

	hitsBefore, missesBefore, _ := core.BuildCacheStats()
	const callers = 16
	body := map[string]any{"name": "stress.mc", "source": stressKernelSource, "kernel": "kernel"}

	var (
		start    = make(chan struct{})
		wg       sync.WaitGroup
		mu       sync.Mutex
		uncached int
		statuses []int
	)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			var resp struct {
				Cached  bool           `json:"cached"`
				Schemes map[string]any `json:"schemes"`
			}
			code := postJSON(t, ts.URL+"/v1/compile", body, &resp)
			mu.Lock()
			statuses = append(statuses, code)
			if code == http.StatusOK {
				if !resp.Cached {
					uncached++
				}
				if len(resp.Schemes) != 4 {
					t.Errorf("concurrent compile returned %d schemes", len(resp.Schemes))
				}
			}
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()

	for _, code := range statuses {
		if code != http.StatusOK {
			t.Fatalf("concurrent compile returned status %d", code)
		}
	}
	hitsAfter, missesAfter, _ := core.BuildCacheStats()
	if misses := missesAfter - missesBefore; misses != 1 {
		t.Errorf("%d concurrent identical compiles caused %d cache misses, want exactly 1 (duplicate builds)", callers, misses)
	}
	if hits := hitsAfter - hitsBefore; hits < callers-1 {
		t.Errorf("cache hits rose by %d, want >= %d (coalesced waiters count as hits)", hits, callers-1)
	}
	if uncached != 1 {
		t.Errorf("%d responses reported cached=false, want exactly 1 (the leader)", uncached)
	}
}

// TestConcurrentCampaignsShareBuild submits several campaigns over the
// same benchmark × config burst-style and checks (a) the program is
// built once — campaign workers coalesce on the in-flight build — and
// (b) every job lands on identical counts (same plan seed).
func TestConcurrentCampaignsShareBuild(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 4, QueueDepth: 16})

	_, missesBefore, _ := core.BuildCacheStats()
	// An AR value no other test uses keys a fresh cache entry.
	body := map[string]any{
		"bench": "conv1d", "scheme": "rskip", "n": 40, "seed": 31337, "batch": 20,
		"config": map[string]any{"ar": 0.37},
	}
	const jobs = 5
	ids := make([]string, jobs)
	for i := range ids {
		ids[i] = submitCampaign(t, ts, body)
	}

	counts := make([]map[string]int, jobs)
	for i, id := range ids {
		st := waitFor(t, ts, id, 300*time.Second, terminal)
		if st.State != "done" {
			t.Fatalf("job %s finished %q (%s)", id, st.State, st.Error)
		}
		if st.Result == nil || st.Result.N != 40 {
			t.Fatalf("job %s result %+v", id, st.Result)
		}
		counts[i] = st.Result.Counts
	}
	for i := 1; i < jobs; i++ {
		if !countsEqual(counts[0], counts[i]) {
			t.Errorf("job %d counts %v differ from job 0 %v — identical campaigns must agree", i, counts[i], counts[0])
		}
	}
	_, missesAfter, _ := core.BuildCacheStats()
	if misses := missesAfter - missesBefore; misses != 1 {
		t.Errorf("%d identical campaigns caused %d builds, want 1 (singleflight + cache)", jobs, misses)
	}
}
