package fault

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"rskip/internal/core"
	"rskip/internal/machine"
)

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// RunRecord is the classified outcome of one injection. Because every
// fault plan is pre-drawn from Config.Seed by run index, a record is a
// pure function of its index — which is what makes a campaign
// resumable: aggregating saved records with freshly executed ones
// yields counts bit-identical to an uninterrupted run.
type RunRecord struct {
	Done      bool  `json:"done,omitempty"`
	Class     Class `json:"class,omitempty"`
	Fired     bool  `json:"fired,omitempty"`
	FalseNeg  bool  `json:"false_neg,omitempty"`
	Recovered bool  `json:"recovered,omitempty"`
	// Err is the abnormal-termination message (empty for Correct and
	// SDC); contained panics record "panic: <value>".
	Err string `json:"err,omitempty"`
}

// Checkpoint is the JSON-persisted progress of one campaign.
type Checkpoint struct {
	Version int `json:"version"`
	// Key fingerprints the campaign identity (benchmark, scheme, N,
	// seed, mix, hang factor); a checkpoint only resumes a campaign
	// with the same key.
	Key string `json:"key"`
	N   int    `json:"n"`
	// Done is the number of completed records (redundant with Records
	// but convenient for humans inspecting the file).
	Done    int         `json:"done"`
	Records []RunRecord `json:"records"`
}

// CampaignKey fingerprints everything that determines the fault
// plans and their outcomes (modulo wall-clock effects): benchmark,
// build config, scheme, N, seed, mix, hang factor. It is the
// checkpoint identity — a checkpoint only resumes a campaign with the
// same key — and, verbatim, the fabric plan key: two nodes that
// derive the same CampaignKey are provably drawing the same plan list
// and will produce bit-identical records for any index range. The
// skip / multibit extension only appends to the key when one of the
// new models is in play, so checkpoints of plain SEU campaigns
// written before the extension keep resuming.
func CampaignKey(p *core.Program, s core.Scheme, cfg Config) string {
	key := fmt.Sprintf("bench=%s|cfg=%s|scheme=%s|n=%d|seed=%d|mix=%g/%g/%g/%g|hang=%d",
		p.Bench.Name, p.Cfg.Key(), s, cfg.N, cfg.Seed,
		cfg.Mix.RegFile, cfg.Mix.Result, cfg.Mix.Source, cfg.Mix.Opcode,
		cfg.HangFactor)
	if cfg.Mix.Skip != 0 || cfg.Mix.MultiBit != 0 || cfg.Exhaustive {
		key += fmt.Sprintf("|xmix=%g/%g|sw=%d|bw=%d|ex=%v",
			cfg.Mix.Skip, cfg.Mix.MultiBit, cfg.SkipWidth, cfg.BitWidth, cfg.Exhaustive)
	}
	// Same conditional-suffix discipline: stratified campaigns draw a
	// different plan list from the same seed, so they must never resume
	// a uniform campaign's checkpoint (or vice versa), while uniform
	// checkpoints written before stratification keep their keys.
	if cfg.Stratify {
		key += "|strat=1"
	}
	if cfg.Budget > 0 {
		key += fmt.Sprintf("|bud=%d", cfg.Budget)
	}
	return key
}

// plansHash fingerprints an explicit plan list for checkpoint
// identity: every field that selects the fault each run injects.
func plansHash(plans []machine.FaultPlan) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(len(plans)))
	for i := range plans {
		pl := &plans[i]
		put(uint64(pl.Kind))
		put(pl.Target)
		put(uint64(pl.Bit))
		put(uint64(pl.Pick))
		put(uint64(pl.Width))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// CorruptCheckpointError reports a checkpoint file that exists but
// cannot be decoded — truncated by a crash mid-write outside the
// atomic rename path, or damaged on disk. Callers distinguish it from
// key mismatches (a healthy checkpoint of a different campaign) to
// decide whether deleting the file is safe.
type CorruptCheckpointError struct {
	Path string
	Err  error
}

func (e *CorruptCheckpointError) Error() string {
	return fmt.Sprintf("fault: checkpoint %s is corrupt or truncated (delete it to restart the campaign): %v", e.Path, e.Err)
}

func (e *CorruptCheckpointError) Unwrap() error { return e.Err }

// LoadCheckpoint reads a campaign checkpoint. A missing file is not an
// error — it returns (nil, nil) so callers can treat it as a fresh
// start.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fault: reading checkpoint: %w", err)
	}
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, &CorruptCheckpointError{Path: path, Err: err}
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("fault: checkpoint %s has version %d, want %d", path, ck.Version, checkpointVersion)
	}
	if len(ck.Records) != ck.N {
		return nil, &CorruptCheckpointError{Path: path,
			Err: fmt.Errorf("holds %d records for n = %d", len(ck.Records), ck.N)}
	}
	return &ck, nil
}

// Save writes the checkpoint atomically (temp file + rename) so a
// crash mid-save never corrupts resumable progress.
func (ck *Checkpoint) Save(path string) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("fault: encoding checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ck-*.json")
	if err != nil {
		return fmt.Errorf("fault: writing checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmpName)
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("fault: writing checkpoint: %w", werr)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fault: writing checkpoint: %w", err)
	}
	return nil
}

// validateFor checks that the checkpoint belongs to this campaign.
func (ck *Checkpoint) validateFor(key string, n int) error {
	if ck.Key != key {
		return fmt.Errorf("fault: checkpoint was recorded for a different campaign:\n  have %s\n  want %s", ck.Key, key)
	}
	if ck.N != n || len(ck.Records) != n {
		return fmt.Errorf("fault: checkpoint covers %d runs (%d records), want %d", ck.N, len(ck.Records), n)
	}
	return nil
}
