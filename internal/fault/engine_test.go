package fault

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"rskip/internal/bench"
	"rskip/internal/core"
)

// sharedProgram caches one trained conv1d build for the engine tests,
// which only exercise campaign mechanics and don't need per-test
// configurations.
var (
	sharedOnce sync.Once
	sharedP    *core.Program
	sharedInst bench.Instance
)

func sharedConv1d(t *testing.T) (*core.Program, bench.Instance) {
	t.Helper()
	sharedOnce.Do(func() {
		b, err := bench.ByName("conv1d")
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.Build(b, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Train([]int64{bench.TrainSeed(0)}, bench.ScaleTiny); err != nil {
			t.Fatal(err)
		}
		sharedP, sharedInst = p, b.Gen(bench.TestSeed(0), bench.ScaleTiny)
	})
	if sharedP == nil {
		t.Fatal("shared program failed to build")
	}
	return sharedP, sharedInst
}

// Regression: a fault that truncates or lengthens the output must
// classify as SDC, not crash the classifier with an index panic.
func TestClassifyLengthMismatch(t *testing.T) {
	golden := []uint64{1, 2, 3, 4}
	short := &core.Outcome{Output: []uint64{1, 2}}
	if cls, _, _ := classify(short, golden); cls != SDC {
		t.Errorf("truncated output classified %v, want SDC", cls)
	}
	long := &core.Outcome{Output: []uint64{1, 2, 3, 4, 5}}
	if cls, _, _ := classify(long, golden); cls != SDC {
		t.Errorf("lengthened output classified %v, want SDC", cls)
	}
	// Matching prefix must not mask the mismatch, and an equal slice
	// still classifies Correct.
	equal := &core.Outcome{Output: []uint64{1, 2, 3, 4}}
	if cls, _, _ := classify(equal, golden); cls != Correct {
		t.Errorf("equal output classified %v, want Correct", cls)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"negative N", Config{N: -5}, "N = -5"},
		{"negative workers", Config{Workers: -1}, "Workers"},
		{"negative batch", Config{Batch: -2}, "Batch"},
		{"negative timeout", Config{RunTimeout: -time.Second}, "RunTimeout"},
		{"negative target CI", Config{TargetCI: -1}, "TargetCI"},
		{"negative mix weight", Config{Mix: Mix{RegFile: 0.5, Result: -0.1}}, "Mix.Result"},
		{"cancelling mix weights", Config{Mix: Mix{RegFile: 1, Result: -1}}, "Mix.Result"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if err == nil {
				t.Fatalf("config %+v validated", tt.cfg)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
	good := Config{N: 10, Mix: Mix{Opcode: 1}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestCampaignRejectsInvalidConfig(t *testing.T) {
	p, inst := sharedConv1d(t)
	_, err := Campaign(context.Background(), p, core.Unsafe, inst, Config{N: -1})
	if err == nil {
		t.Fatal("campaign accepted N = -1")
	}
}

// A panic inside a worker run must be contained and classified
// CoreDump with the panic value in the taxonomy; the campaign reports
// all N runs.
func TestPanicIsolation(t *testing.T) {
	p, inst := sharedConv1d(t)
	cfg := Config{N: 60, Seed: 11, runHook: func(i int) {
		if i%10 == 3 {
			panic("synthetic interpreter fault")
		}
	}}
	r, err := Campaign(context.Background(), p, core.Unsafe, inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 60 {
		t.Errorf("campaign completed %d/60 runs", r.N)
	}
	if r.Counts[CoreDump] < 6 {
		t.Errorf("CoreDump = %d, want >= 6 contained panics", r.Counts[CoreDump])
	}
	msgs := r.Errors[CoreDump]
	found := false
	for msg, n := range msgs {
		if strings.Contains(msg, "panic: synthetic interpreter fault") && n == 6 {
			found = true
		}
	}
	if !found {
		t.Errorf("panic value not recorded in taxonomy: %v", msgs)
	}
	total := 0
	for c := Correct; c < NumClasses; c++ {
		total += r.Counts[c]
	}
	if total != r.N {
		t.Errorf("classes sum to %d, want %d", total, r.N)
	}
}

// Same seed, different worker counts — identical results (and the
// taxonomy, which is aggregated from per-index records, matches too).
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	p, inst := sharedConv1d(t)
	run := func(workers int) Result {
		r, err := Campaign(context.Background(), p, core.SWIFTR, inst,
			Config{N: 90, Seed: 77, Workers: workers, Batch: 32})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ref := run(1)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := run(w); !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d diverged:\n%+v\n%+v", w, got, ref)
		}
	}
}

// Kill a campaign mid-flight, resume it from the checkpoint, and
// require bit-identical final counts versus an uninterrupted run.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	p, inst := sharedConv1d(t)
	ckPath := filepath.Join(t.TempDir(), "campaign.ck.json")
	base := Config{N: 120, Seed: 5, Batch: 25, CheckpointPath: ckPath}

	// Uninterrupted reference (no checkpoint involved).
	want, err := Campaign(context.Background(), p, core.SWIFTR, inst,
		Config{N: base.N, Seed: base.Seed, Batch: base.Batch})
	if err != nil {
		t.Fatal(err)
	}

	// First attempt: cancel once run 60 starts.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := base
	cfg.runHook = func(i int) {
		if i == 60 {
			cancel()
		}
	}
	partial, err := Campaign(ctx, p, core.SWIFTR, inst, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if partial.N == 0 || partial.N >= base.N {
		t.Fatalf("partial campaign completed %d runs, want a strict subset", partial.N)
	}
	ck, err := LoadCheckpoint(ckPath)
	if err != nil || ck == nil {
		t.Fatalf("no checkpoint after cancellation: %v", err)
	}
	if ck.Done != partial.N {
		t.Errorf("checkpoint records %d done, partial result says %d", ck.Done, partial.N)
	}

	// Resume with a fresh context.
	got, err := Campaign(context.Background(), p, core.SWIFTR, inst, base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed campaign diverged from uninterrupted run:\n%+v\n%+v", got, want)
	}

	// Resuming a complete checkpoint re-executes nothing and still
	// reproduces the result.
	again, err := Campaign(context.Background(), p, core.SWIFTR, inst, base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Errorf("re-resumed campaign diverged:\n%+v\n%+v", again, want)
	}
}

func TestCheckpointRejectsForeignCampaign(t *testing.T) {
	p, inst := sharedConv1d(t)
	ckPath := filepath.Join(t.TempDir(), "campaign.ck.json")
	cfg := Config{N: 30, Seed: 1, CheckpointPath: ckPath}
	if _, err := Campaign(context.Background(), p, core.Unsafe, inst, cfg); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed = 2
	_, err := Campaign(context.Background(), p, core.Unsafe, inst, other)
	if err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("checkpoint from another seed accepted: %v", err)
	}
}

// TargetCI stops the campaign at a batch boundary once the
// protection-rate interval is tight enough.
func TestAdaptiveSamplingEarlyStop(t *testing.T) {
	p, inst := sharedConv1d(t)
	r, err := Campaign(context.Background(), p, core.Unsafe, inst,
		Config{N: 400, Seed: 21, Batch: 50, TargetCI: 30})
	if err != nil {
		t.Fatal(err)
	}
	if !r.EarlyStopped {
		t.Fatalf("campaign ran all %d runs despite a 30-point target: %+v", r.N, r)
	}
	if r.N >= 400 || r.N%50 != 0 {
		t.Errorf("early stop at %d runs, want a batch multiple < 400", r.N)
	}
	if r.Requested != 400 {
		t.Errorf("Requested = %d, want 400", r.Requested)
	}
	lo, hi := r.ProtectionCI()
	if hi-lo > 30 {
		t.Errorf("stopped with CI width %.1f > target 30", hi-lo)
	}
	// A tight target the cap cannot reach runs to completion.
	full, err := Campaign(context.Background(), p, core.Unsafe, inst,
		Config{N: 100, Seed: 21, Batch: 50, TargetCI: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if full.EarlyStopped || full.N != 100 {
		t.Errorf("unreachable target should cap at N: %+v", full)
	}
}

// A per-run wall-clock deadline classifies the run as Hang instead of
// stalling the campaign. The hook sleeps past the deadline before the
// interpreter starts, so the cancellation is observed deterministically
// at run entry.
func TestRunTimeoutClassifiesHang(t *testing.T) {
	p, inst := sharedConv1d(t)
	cfg := Config{N: 6, Seed: 3, RunTimeout: time.Microsecond,
		runHook: func(i int) { time.Sleep(5 * time.Millisecond) }}
	r, err := Campaign(context.Background(), p, core.Unsafe, inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Counts[Hang] != 6 {
		t.Errorf("Hang = %d, want all 6 deadline-bounded runs: %+v", r.Counts[Hang], r)
	}
	found := false
	for msg := range r.Errors[Hang] {
		if strings.Contains(msg, "deadline") {
			found = true
		}
	}
	if !found {
		t.Errorf("deadline not recorded in taxonomy: %v", r.Errors)
	}
}

// Cancelling before any work yields an empty partial result, not a
// crash or a hang.
func TestCancelledBeforeStart(t *testing.T) {
	p, inst := sharedConv1d(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := Campaign(ctx, p, core.Unsafe, inst, Config{N: 40, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if r.N != 0 {
		t.Errorf("cancelled-at-start campaign completed %d runs", r.N)
	}
	if r.Requested != 40 {
		t.Errorf("Requested = %d, want 40", r.Requested)
	}
}
