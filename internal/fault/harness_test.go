package fault

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/machine"
)

// The skip-verification harness: exhaustive enumeration over the
// micro-kernels, proving the hardened scheme's single-skip claim and
// the enumerator's own correctness against a brute-force oracle.

var (
	microMu    sync.Mutex
	microProgs = map[string]*core.Program{}
	microInsts = map[string]bench.Instance{}
)

func microProgram(t *testing.T, name string) (*core.Program, bench.Instance) {
	t.Helper()
	microMu.Lock()
	defer microMu.Unlock()
	if p, ok := microProgs[name]; ok {
		return p, microInsts[name]
	}
	b, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Build(b, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	microProgs[name] = p
	microInsts[name] = b.Gen(bench.TestSeed(0), bench.ScaleTiny)
	return p, microInsts[name]
}

func microNames() []string {
	var names []string
	for _, b := range bench.Micros() {
		names = append(names, b.Name)
	}
	return names
}

// The tentpole acceptance check: over every micro-kernel, exhaustive
// single-skip enumeration shows the hardened scheme detecting or
// masking 100% of skips while plain SWIFT demonstrably misses some.
func TestExhaustiveSingleSkipHardening(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration is not short")
	}
	swiftMisses := 0
	for _, name := range microNames() {
		p, inst := microProgram(t, name)
		cfg := Config{Mix: Mix{Skip: 1}, Exhaustive: true}

		hard, err := Campaign(context.Background(), p, core.SWIFTRHard, inst, cfg)
		if err != nil {
			t.Fatalf("%s/SWIFT-R-HARD: %v", name, err)
		}
		if hard.N == 0 || !hard.Exhaustive {
			t.Fatalf("%s/SWIFT-R-HARD: degenerate exhaustive result %+v", name, hard)
		}
		if got := hard.Counts[Correct] + hard.Counts[Detected]; got != hard.N {
			t.Errorf("%s/SWIFT-R-HARD: %d/%d skips masked or detected; counts %v errors %v",
				name, got, hard.N, hard.Counts, hard.Errors)
		}
		if hard.Fired != hard.N {
			t.Errorf("%s/SWIFT-R-HARD: only %d/%d enumerated skips fired", name, hard.Fired, hard.N)
		}

		plain, err := Campaign(context.Background(), p, core.SWIFT, inst, cfg)
		if err != nil {
			t.Fatalf("%s/SWIFT: %v", name, err)
		}
		swiftMisses += plain.N - plain.Counts[Correct] - plain.Counts[Detected]
	}
	if swiftMisses == 0 {
		t.Error("plain SWIFT survived every enumerated skip; the hardened variant is not being tested against anything")
	}
}

// The enumerator against a brute-force oracle: running every
// single-skip plan by hand, one at a time, must classify identically
// to the parallel exhaustive campaign.
func TestExhaustiveSkipMatchesBruteForce(t *testing.T) {
	if testing.Short() {
		t.Skip("brute-force oracle is not short")
	}
	name := microNames()[0]
	p, inst := microProgram(t, name)
	scheme := core.SWIFT

	res, err := Campaign(context.Background(), p, scheme, inst, Config{
		Mix: Mix{Skip: 1}, Exhaustive: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	profile, err := runProfile(p, scheme, inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	region := profile.Result.Region
	if res.N != int(region) {
		t.Fatalf("exhaustive campaign ran %d injections for a region of %d", res.N, region)
	}
	budget := profile.Result.Instrs * 50
	var counts [NumClasses]int
	for target := uint64(0); target < region; target++ {
		plan := machine.FaultPlan{Kind: machine.FaultSkip, Target: target, Width: 1}
		o := p.Run(scheme, inst, core.RunOpts{Fault: &plan, MaxInstrs: budget})
		if !o.FaultFired {
			t.Fatalf("oracle plan at target %d did not fire", target)
		}
		cls, _, _ := classify(&o, profile.Output)
		counts[cls]++
	}
	if counts != res.Counts {
		t.Errorf("oracle classified %v, exhaustive campaign %v", counts, res.Counts)
	}
}

// An exhaustive campaign interrupted mid-enumeration and resumed from
// its checkpoint must aggregate bit-identically to an uninterrupted
// one.
func TestExhaustiveResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration is not short")
	}
	name := microNames()[0]
	p, inst := microProgram(t, name)
	ckPath := filepath.Join(t.TempDir(), "micro.ck.json")
	cfg := Config{Mix: Mix{Skip: 1}, Exhaustive: true, Batch: 50, Workers: 2}

	uncut, err := Campaign(context.Background(), p, core.SWIFTRHard, inst, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cut := cfg
	cut.CheckpointPath = ckPath
	cut.runHook = func(i int) {
		if i == 120 {
			cancel()
		}
	}
	partial, err := Campaign(ctx, p, core.SWIFTRHard, inst, cut)
	if err == nil {
		t.Fatal("interrupted campaign reported no error")
	}
	if partial.N >= uncut.N {
		t.Fatalf("interruption did not interrupt: %d of %d runs completed", partial.N, uncut.N)
	}

	cut.runHook = nil
	resumed, err := Campaign(context.Background(), p, core.SWIFTRHard, inst, cut)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !reflect.DeepEqual(resumed, uncut) {
		t.Errorf("resumed result diverged from uninterrupted run:\nresumed  %+v\nuncut    %+v", resumed, uncut)
	}
}

// A corrupt or truncated checkpoint file must surface as a typed error
// naming the offending path — both from LoadCheckpoint directly and
// through Campaign.
func TestCorruptCheckpointTypedError(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		data string
	}{
		{"truncated json", `{"version":1,"key":"k","n":100,"done":40,"records":[{"done":tru`},
		{"record count mismatch", `{"version":1,"key":"k","n":100,"done":2,"records":[{"done":true},{"done":true}]}`},
		{"binary garbage", "\x00\x01\x02\xff not json"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			path := filepath.Join(dir, strings.ReplaceAll(tt.name, " ", "_")+".ck.json")
			if err := os.WriteFile(path, []byte(tt.data), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadCheckpoint(path)
			var ce *CorruptCheckpointError
			if !errors.As(err, &ce) {
				t.Fatalf("LoadCheckpoint returned %v (%T), want CorruptCheckpointError", err, err)
			}
			if ce.Path != path {
				t.Errorf("error names path %q, want %q", ce.Path, path)
			}
			if !strings.Contains(err.Error(), path) {
				t.Errorf("error text %q omits the offending path", err)
			}
		})
	}

	// End to end: a campaign pointed at the corrupt file refuses to
	// run rather than silently restarting over it.
	p, inst := sharedConv1d(t)
	path := filepath.Join(dir, "campaign.ck.json")
	if err := os.WriteFile(path, []byte("{oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Campaign(context.Background(), p, core.Unsafe, inst, Config{N: 10, CheckpointPath: path})
	var ce *CorruptCheckpointError
	if !errors.As(err, &ce) {
		t.Fatalf("Campaign returned %v (%T), want CorruptCheckpointError", err, err)
	}
	// A missing file stays a clean fresh start, not an error.
	if ck, err := LoadCheckpoint(filepath.Join(dir, "nope.ck.json")); ck != nil || err != nil {
		t.Errorf("missing checkpoint returned (%v, %v), want (nil, nil)", ck, err)
	}
}

// Validation of the extended mix and the exhaustive-mode constraints.
func TestConfigValidationExtensions(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"NaN mix weight", Config{Mix: Mix{Skip: math.NaN()}}, "Mix.Skip"},
		{"infinite mix weight", Config{Mix: Mix{MultiBit: math.Inf(1)}}, "Mix.MultiBit"},
		{"negative skip weight", Config{Mix: Mix{Skip: -1, RegFile: 2}}, "Mix.Skip"},
		{"zero-sum mix", Config{Mix: Mix{Skip: 0, MultiBit: 0, RegFile: 0}, N: 1, SkipWidth: 1}, ""},
		{"negative skip width", Config{SkipWidth: -1}, "SkipWidth"},
		{"negative bit width", Config{BitWidth: -3}, "BitWidth"},
		{"negative budget", Config{ExhaustiveBudget: -1}, "ExhaustiveBudget"},
		{"exhaustive mixed kinds", Config{Exhaustive: true, Mix: Mix{Skip: 1, RegFile: 1}}, "pure single-kind"},
		{"exhaustive default mix", Config{Exhaustive: true}, "pure single-kind"},
		{"exhaustive with N", Config{Exhaustive: true, Mix: Mix{Skip: 1}, N: 50}, "leave N = 0"},
		{"exhaustive with CI", Config{Exhaustive: true, Mix: Mix{MultiBit: 1}, TargetCI: 2}, "TargetCI"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if tt.want == "" {
				return // reserved row: all-zero Mix means DefaultMix, checked below
			}
			if err == nil {
				t.Fatalf("config %+v validated", tt.cfg)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
	good := Config{Mix: Mix{Skip: 1}, Exhaustive: true}
	if err := good.Validate(); err != nil {
		t.Errorf("valid exhaustive config rejected: %v", err)
	}
	explicit := Config{Mix: Mix{RegFile: 0, Skip: 0}}
	if err := explicit.Validate(); err != nil {
		t.Errorf("zero Mix (= DefaultMix) rejected: %v", err)
	}
}

func TestModelMix(t *testing.T) {
	for _, tt := range []struct {
		model string
		want  Mix
	}{
		{"", DefaultMix},
		{"seu", DefaultMix},
		{"skip", Mix{Skip: 1}},
		{"multibit", Mix{MultiBit: 1}},
	} {
		got, err := ModelMix(tt.model)
		if err != nil || got != tt.want {
			t.Errorf("ModelMix(%q) = (%v, %v), want (%v, nil)", tt.model, got, err, tt.want)
		}
	}
	_, err := ModelMix("cosmic-ray")
	var ue *UnknownModelError
	if !errors.As(err, &ue) || ue.Model != "cosmic-ray" {
		t.Errorf("ModelMix(cosmic-ray) = %v (%T), want UnknownModelError", err, err)
	}
}

// Enumeration shape and budget enforcement, without running anything.
func TestEnumeratePlans(t *testing.T) {
	skips, err := enumeratePlans(Config{Mix: Mix{Skip: 1}, Exhaustive: true}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(skips) != 7 {
		t.Fatalf("skip enumeration of region 7 produced %d plans", len(skips))
	}
	for i, pl := range skips {
		if pl.Kind != machine.FaultSkip || pl.Target != uint64(i) || pl.Width != 1 {
			t.Errorf("plan %d = %+v, want single-width skip at target %d", i, pl, i)
		}
	}

	mb, err := enumeratePlans(Config{Mix: Mix{MultiBit: 1}, Exhaustive: true, BitWidth: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(mb) != 4*32 {
		t.Fatalf("multibit enumeration of region 4 produced %d plans, want %d", len(mb), 4*32)
	}
	for i, pl := range mb {
		wantTarget, wantBit := uint64(i/32), uint(i%32)
		if pl.Kind != machine.FaultMultiBit || pl.Target != wantTarget || pl.Bit != wantBit || pl.Width != 3 {
			t.Errorf("plan %d = %+v, want width-3 multibit at (%d, %d)", i, pl, wantTarget, wantBit)
		}
	}

	if _, err := enumeratePlans(Config{Mix: Mix{Skip: 1}, Exhaustive: true, ExhaustiveBudget: 5}, 6); err == nil {
		t.Error("over-budget enumeration was not rejected")
	} else if !strings.Contains(err.Error(), "budget") {
		t.Errorf("budget error %q does not mention the budget", err)
	}
}
