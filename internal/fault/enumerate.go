package fault

import (
	"fmt"

	"rskip/internal/machine"
)

// defaultExhaustiveBudget caps enumerated campaigns; micro-kernels sit
// far below it, full benchmarks far above — which is the point: the
// budget turns "I asked for exhaustive on conv2d" into an immediate
// error instead of a day-long run.
const defaultExhaustiveBudget = 200000

// multiBitSites is the number of starting-bit positions enumerated per
// in-region instruction in exhaustive multibit mode — one per
// architectural bit of the 32-bit register model.
const multiBitSites = 32

// planWidth resolves a plan's event width from the config: skip bursts
// default to a single instruction, multi-bit upsets to two adjacent
// bits (the dominant multi-cell upset geometry).
func planWidth(k machine.FaultKind, cfg Config) uint {
	switch k {
	case machine.FaultSkip:
		if cfg.SkipWidth > 1 {
			return uint(cfg.SkipWidth)
		}
	case machine.FaultMultiBit:
		if cfg.BitWidth > 0 {
			return uint(cfg.BitWidth)
		}
		return 2
	}
	return 1
}

// enumeratePlans walks every fault site of the configured pure-kind
// mix instead of sampling: one plan per in-region dynamic instruction
// for skip campaigns, one per (instruction, starting bit) pair for
// multibit campaigns. Plans are ordered by target (then bit), so run
// index i is a pure function of the site — the property checkpointed
// resume relies on. Validate has already guaranteed the mix is pure.
func enumeratePlans(cfg Config, region uint64) ([]machine.FaultPlan, error) {
	budget := cfg.ExhaustiveBudget
	if budget == 0 {
		budget = defaultExhaustiveBudget
	}
	kind := machine.FaultSkip
	sites := region
	if cfg.Mix.MultiBit > 0 {
		kind = machine.FaultMultiBit
		sites = region * multiBitSites
	}
	if sites > uint64(budget) {
		return nil, fmt.Errorf("fault: exhaustive %s enumeration needs %d runs for a region of %d instructions, over the budget of %d; use a smaller kernel or raise ExhaustiveBudget",
			kind, sites, region, budget)
	}
	width := planWidth(kind, cfg)
	plans := make([]machine.FaultPlan, 0, sites)
	for target := uint64(0); target < region; target++ {
		if kind == machine.FaultSkip {
			plans = append(plans, machine.FaultPlan{
				Kind: kind, Target: target, Width: width,
			})
			continue
		}
		for bit := uint(0); bit < multiBitSites; bit++ {
			plans = append(plans, machine.FaultPlan{
				Kind: kind, Target: target, Bit: bit, Width: width,
			})
		}
	}
	return plans, nil
}
