package fault

import (
	"math/rand"
	"sort"

	"rskip/internal/machine"
)

// Stratified sampling (Config.Stratify) draws fault targets per
// instruction class instead of uniformly over the whole region. The
// fault-free profile run records a region trace — the exact layout of
// the in-region dynamic instruction stream — from which each class's
// population (its set of global in-region indexes) is known as a list
// of contiguous intervals. Replicas are allocated to classes by
// largest-remainder apportionment of their population shares, and
// each class draws targets from its own seeded substream, so the plan
// list is a pure function of (seed, layout) — deterministic,
// checkpointable by index, and independent of worker scheduling like
// every other campaign.

// classIntervals is one class's population: the contiguous global
// in-region index ranges occupied by instructions of the class.
type classIntervals struct {
	count  uint64   // total population
	starts []uint64 // global start of each interval
	cum    []uint64 // population preceding each interval (for local->global mapping)
}

// pick maps a class-local index (0 <= j < count) to the global
// in-region index of the j-th instruction of the class.
func (ci *classIntervals) pick(j uint64) uint64 {
	// Binary search the interval containing local index j.
	k := sort.Search(len(ci.cum), func(i int) bool { return ci.cum[i] > j }) - 1
	return ci.starts[k] + (j - ci.cum[k])
}

// layoutClasses folds a region trace into per-class populations.
func layoutClasses(trace *machine.RegionTrace) (byClass [machine.NumOpClasses]classIntervals, total uint64) {
	var pos uint64
	for _, sp := range trace.Spans() {
		ci := &byClass[sp.Class]
		ci.cum = append(ci.cum, ci.count)
		ci.starts = append(ci.starts, pos)
		ci.count += sp.N
		pos += sp.N
	}
	return byClass, pos
}

// allocate apportions n replicas across classes by largest-remainder
// on population shares. Classes with empty populations get zero; the
// remainder goes to the largest fractional parts, ties broken by
// class order, so the allocation is deterministic.
func allocate(byClass *[machine.NumOpClasses]classIntervals, total uint64, n int) [machine.NumOpClasses]int {
	var out [machine.NumOpClasses]int
	if total == 0 || n <= 0 {
		return out
	}
	type frac struct {
		class int
		rem   float64
	}
	var fracs []frac
	used := 0
	for c := range byClass {
		if byClass[c].count == 0 {
			continue
		}
		exact := float64(n) * float64(byClass[c].count) / float64(total)
		out[c] = int(exact)
		used += out[c]
		fracs = append(fracs, frac{class: c, rem: exact - float64(out[c])})
	}
	sort.SliceStable(fracs, func(i, j int) bool { return fracs[i].rem > fracs[j].rem })
	for i := 0; used < n && len(fracs) > 0; i = (i + 1) % len(fracs) {
		out[fracs[i].class]++
		used++
	}
	return out
}

// stratumSeed derives the per-class RNG substream seed. Distinct
// classes must draw independent streams from one campaign seed; the
// odd multiplier keeps the substreams far apart for adjacent seeds.
func stratumSeed(seed int64, class machine.OpClass) int64 {
	return seed ^ (int64(class)+1)*0x5851F42D4C957F2D
}

// stratifiedPlans builds the class-major plan list of a stratified
// campaign from the profiled region layout. It returns the plans, the
// per-plan stratum index (into strata), and the stratum skeletons
// (class + weight; counts are filled at aggregation).
func stratifiedPlans(cfg Config, trace *machine.RegionTrace) (plans []machine.FaultPlan, strataOf []int, strata []StratumResult) {
	byClass, total := layoutClasses(trace)
	alloc := allocate(&byClass, total, cfg.N)
	plans = make([]machine.FaultPlan, 0, cfg.N)
	strataOf = make([]int, 0, cfg.N)
	for c := range byClass {
		if byClass[c].count == 0 {
			continue
		}
		class := machine.OpClass(c)
		si := len(strata)
		strata = append(strata, StratumResult{
			Class:  class,
			Weight: float64(byClass[c].count) / float64(total),
		})
		rng := rand.New(rand.NewSource(stratumSeed(cfg.Seed, class)))
		for i := 0; i < alloc[c]; i++ {
			plan := machine.FaultPlan{
				Kind:   drawKind(rng, cfg.Mix),
				Target: byClass[c].pick(uint64(rng.Int63n(int64(byClass[c].count)))),
				Bit:    uint(rng.Intn(64)),
				Pick:   rng.Intn(1 << 20),
			}
			plan.Width = planWidth(plan.Kind, cfg)
			plans = append(plans, plan)
			strataOf = append(strataOf, si)
		}
	}
	return plans, strataOf, strata
}
