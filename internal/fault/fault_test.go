package fault

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/machine"
)

func buildTrained(t *testing.T, name string, ar float64) (*core.Program, bench.Instance) {
	t.Helper()
	b, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.AR = ar
	p, err := core.Build(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train([]int64{bench.TrainSeed(0)}, bench.ScaleTiny); err != nil {
		t.Fatal(err)
	}
	return p, b.Gen(bench.TestSeed(0), bench.ScaleTiny)
}

func TestCampaignBasics(t *testing.T) {
	p, inst := buildTrained(t, "conv1d", 0.2)
	r, err := Campaign(context.Background(), p, core.Unsafe, inst, Config{N: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 120 {
		t.Errorf("N = %d", r.N)
	}
	total := 0
	for c := Correct; c < NumClasses; c++ {
		total += r.Counts[c]
	}
	if total != r.N {
		t.Errorf("classes sum to %d, want %d", total, r.N)
	}
	if r.Counts[Correct] == 0 {
		t.Error("no masked faults at all — masking model broken")
	}
	if r.Fired == 0 {
		t.Error("no faults fired")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	p, inst := buildTrained(t, "conv1d", 0.2)
	a, err := Campaign(context.Background(), p, core.SWIFTR, inst, Config{N: 80, Seed: 42, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Campaign(context.Background(), p, core.SWIFTR, inst, Config{N: 80, Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts != b.Counts || a.FalseNeg != b.FalseNeg {
		t.Errorf("campaign not deterministic across worker counts:\n%+v\n%+v", a, b)
	}
}

func TestProtectionOrdering(t *testing.T) {
	// SWIFT-R must protect better than UNSAFE; RSkip at AR20 must be in
	// the same league as SWIFT-R (the paper's core claim).
	p, inst := buildTrained(t, "sgemm", 0.2)
	cfg := Config{N: 250, Seed: 3}
	unsafe, err := Campaign(context.Background(), p, core.Unsafe, inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	swiftr, err := Campaign(context.Background(), p, core.SWIFTR, inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rskip, err := Campaign(context.Background(), p, core.RSkip, inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if swiftr.ProtectionRate() <= unsafe.ProtectionRate() {
		t.Errorf("SWIFT-R (%.1f%%) not better than UNSAFE (%.1f%%)",
			swiftr.ProtectionRate(), unsafe.ProtectionRate())
	}
	if rskip.ProtectionRate() < unsafe.ProtectionRate() {
		t.Errorf("RSkip (%.1f%%) worse than UNSAFE (%.1f%%)",
			rskip.ProtectionRate(), unsafe.ProtectionRate())
	}
	if rskip.ProtectionRate() < swiftr.ProtectionRate()-15 {
		t.Errorf("RSkip (%.1f%%) far below SWIFT-R (%.1f%%)",
			rskip.ProtectionRate(), swiftr.ProtectionRate())
	}
	if swiftr.Rate(SDC) > unsafe.Rate(SDC) {
		t.Errorf("SWIFT-R SDC rate %.1f%% above UNSAFE %.1f%%",
			swiftr.Rate(SDC), unsafe.Rate(SDC))
	}
}

func TestFalseNegativesGrowWithAR(t *testing.T) {
	p20, inst := buildTrained(t, "conv1d", 0.2)
	pWide, _ := buildTrained(t, "conv1d", 1.0)
	cfg := Config{N: 300, Seed: 9}
	narrow, err := Campaign(context.Background(), p20, core.RSkip, inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Campaign(context.Background(), pWide, core.RSkip, inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wide.FalseNeg < narrow.FalseNeg {
		t.Errorf("false negatives should not shrink with a wider AR: AR20=%d AR100=%d",
			narrow.FalseNeg, wide.FalseNeg)
	}
}

func TestSWIFTDetectionClass(t *testing.T) {
	p, inst := buildTrained(t, "conv1d", 0.2)
	r, err := Campaign(context.Background(), p, core.SWIFT, inst, Config{N: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Counts[Detected] == 0 {
		t.Error("detection-only scheme never signaled a fault")
	}
}

func TestClassStrings(t *testing.T) {
	want := []string{"Correct", "SDC", "Segfault", "Core dump", "Hang", "Detected"}
	for c := Correct; c < NumClasses; c++ {
		if c.String() != want[c] {
			t.Errorf("class %d = %q, want %q", c, c.String(), want[c])
		}
	}
}

func TestClassStringOutOfRange(t *testing.T) {
	// Out-of-range classes must format, not panic: wire payloads and
	// future checkpoints may carry values this build doesn't know.
	cases := []struct {
		c    Class
		want string
	}{
		{Class(NumClasses), "Class(6)"},
		{Class(17), "Class(17)"},
		{Class(-1), "Class(-1)"},
	}
	for _, c := range cases {
		if got := c.c.String(); got != c.want {
			t.Errorf("Class(%d).String() = %q, want %q", int(c.c), got, c.want)
		}
	}
}

func kindWeight(m Mix, k machine.FaultKind) float64 {
	switch k {
	case machine.FaultRegFile:
		return m.RegFile
	case machine.FaultResultBit:
		return m.Result
	case machine.FaultSourceBit:
		return m.Source
	case machine.FaultOpcode:
		return m.Opcode
	case machine.FaultSkip:
		return m.Skip
	case machine.FaultMultiBit:
		return m.MultiBit
	}
	return 0
}

func TestDrawKindNeverZeroWeight(t *testing.T) {
	// The first mix is rounding-hostile by construction: with a single
	// denormal weight, rng.Float64()*m.sum() rounds to exactly sum()
	// about half the time, pushing the draw past every accumulated
	// threshold into the fallback. The pre-fix fallback returned
	// FaultOpcode even when Opcode had zero weight, corrupting
	// pure-skip campaigns.
	mixes := []Mix{
		{Skip: math.SmallestNonzeroFloat64},
		{Skip: 1},
		{MultiBit: 1},
		{MultiBit: 0.3, Skip: 0.7},
		{RegFile: 0.1, Skip: 0.9},
		{Source: 0.5, Opcode: 0.5},
		DefaultMix,
	}
	rng := rand.New(rand.NewSource(1))
	for _, m := range mixes {
		for i := 0; i < 5000; i++ {
			k := drawKind(rng, m)
			if kindWeight(m, k) <= 0 {
				t.Fatalf("mix %+v drew zero-weighted kind %v", m, k)
			}
		}
	}
}

func TestDrawKindLegacyFallbackUnchanged(t *testing.T) {
	// Legacy SEU mixes (Opcode weighted, Skip = MultiBit = 0) must
	// keep the pre-fix FaultOpcode rounding fallback so seeded draws
	// and old checkpoints replay bit-identically. A denormal-Opcode
	// mix forces the fallback on roughly half the draws.
	m := Mix{Opcode: math.SmallestNonzeroFloat64}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		if k := drawKind(rng, m); k != machine.FaultOpcode {
			t.Fatalf("legacy mix drew %v, want opcode", k)
		}
	}
}
