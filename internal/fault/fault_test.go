package fault

import (
	"context"
	"testing"

	"rskip/internal/bench"
	"rskip/internal/core"
)

func buildTrained(t *testing.T, name string, ar float64) (*core.Program, bench.Instance) {
	t.Helper()
	b, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.AR = ar
	p, err := core.Build(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train([]int64{bench.TrainSeed(0)}, bench.ScaleTiny); err != nil {
		t.Fatal(err)
	}
	return p, b.Gen(bench.TestSeed(0), bench.ScaleTiny)
}

func TestCampaignBasics(t *testing.T) {
	p, inst := buildTrained(t, "conv1d", 0.2)
	r, err := Campaign(context.Background(), p, core.Unsafe, inst, Config{N: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 120 {
		t.Errorf("N = %d", r.N)
	}
	total := 0
	for c := Correct; c < NumClasses; c++ {
		total += r.Counts[c]
	}
	if total != r.N {
		t.Errorf("classes sum to %d, want %d", total, r.N)
	}
	if r.Counts[Correct] == 0 {
		t.Error("no masked faults at all — masking model broken")
	}
	if r.Fired == 0 {
		t.Error("no faults fired")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	p, inst := buildTrained(t, "conv1d", 0.2)
	a, err := Campaign(context.Background(), p, core.SWIFTR, inst, Config{N: 80, Seed: 42, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Campaign(context.Background(), p, core.SWIFTR, inst, Config{N: 80, Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts != b.Counts || a.FalseNeg != b.FalseNeg {
		t.Errorf("campaign not deterministic across worker counts:\n%+v\n%+v", a, b)
	}
}

func TestProtectionOrdering(t *testing.T) {
	// SWIFT-R must protect better than UNSAFE; RSkip at AR20 must be in
	// the same league as SWIFT-R (the paper's core claim).
	p, inst := buildTrained(t, "sgemm", 0.2)
	cfg := Config{N: 250, Seed: 3}
	unsafe, err := Campaign(context.Background(), p, core.Unsafe, inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	swiftr, err := Campaign(context.Background(), p, core.SWIFTR, inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rskip, err := Campaign(context.Background(), p, core.RSkip, inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if swiftr.ProtectionRate() <= unsafe.ProtectionRate() {
		t.Errorf("SWIFT-R (%.1f%%) not better than UNSAFE (%.1f%%)",
			swiftr.ProtectionRate(), unsafe.ProtectionRate())
	}
	if rskip.ProtectionRate() < unsafe.ProtectionRate() {
		t.Errorf("RSkip (%.1f%%) worse than UNSAFE (%.1f%%)",
			rskip.ProtectionRate(), unsafe.ProtectionRate())
	}
	if rskip.ProtectionRate() < swiftr.ProtectionRate()-15 {
		t.Errorf("RSkip (%.1f%%) far below SWIFT-R (%.1f%%)",
			rskip.ProtectionRate(), swiftr.ProtectionRate())
	}
	if swiftr.Rate(SDC) > unsafe.Rate(SDC) {
		t.Errorf("SWIFT-R SDC rate %.1f%% above UNSAFE %.1f%%",
			swiftr.Rate(SDC), unsafe.Rate(SDC))
	}
}

func TestFalseNegativesGrowWithAR(t *testing.T) {
	p20, inst := buildTrained(t, "conv1d", 0.2)
	pWide, _ := buildTrained(t, "conv1d", 1.0)
	cfg := Config{N: 300, Seed: 9}
	narrow, err := Campaign(context.Background(), p20, core.RSkip, inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Campaign(context.Background(), pWide, core.RSkip, inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wide.FalseNeg < narrow.FalseNeg {
		t.Errorf("false negatives should not shrink with a wider AR: AR20=%d AR100=%d",
			narrow.FalseNeg, wide.FalseNeg)
	}
}

func TestSWIFTDetectionClass(t *testing.T) {
	p, inst := buildTrained(t, "conv1d", 0.2)
	r, err := Campaign(context.Background(), p, core.SWIFT, inst, Config{N: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Counts[Detected] == 0 {
		t.Error("detection-only scheme never signaled a fault")
	}
}

func TestClassStrings(t *testing.T) {
	want := []string{"Correct", "SDC", "Segfault", "Core dump", "Hang", "Detected"}
	for c := Correct; c < NumClasses; c++ {
		if c.String() != want[c] {
			t.Errorf("class %d = %q, want %q", c, c.String(), want[c])
		}
	}
}
