// Package fault runs the paper's statistical fault-injection
// experiments (§7.2): for each benchmark and protection scheme it
// executes N runs, each with one single-event upset injected at a
// uniformly random dynamic instruction inside the detected loops, and
// classifies the outcome into the paper's five classes plus the
// detection-only scheme's "Detected". It also measures false
// negatives — faults on prediction-covered value slices that fuzzy
// validation accepted.
//
// Campaigns are built to survive their own experiment: they honor
// context cancellation, bound each run by an optional wall-clock
// deadline, contain interpreter panics as CoreDump outcomes instead
// of killing the process, persist progress as JSON checkpoints that
// resume bit-identically, and can stop early once the protection-rate
// confidence interval is tight enough (adaptive sampling).
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"rskip/internal/core"
	"rskip/internal/machine"
	"rskip/internal/stats"
)

// Class is a fault-injection outcome.
type Class int

// Outcome classes (§7.2).
const (
	Correct  Class = iota // output bitwise equal to the fault-free run
	SDC                   // silent data corruption
	Segfault              // illegal memory access
	CoreDump              // trap / abnormal termination (including contained interpreter panics)
	Hang                  // exceeded the instruction budget or the per-run deadline
	Detected              // SWIFT-only: detection signaled (no recovery)
	NumClasses
)

var classNames = [...]string{"Correct", "SDC", "Segfault", "Core dump", "Hang", "Detected"}

func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		// Out-of-range values (NumClasses, corrupted checkpoints) must
		// format, not panic — String is called from error paths.
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// Config parameterizes a campaign.
type Config struct {
	// N is the number of injected faults (the paper uses 1,000). With
	// TargetCI set it is the cap on adaptive sampling.
	N int
	// Seed drives the fault-plan sampling.
	Seed int64
	// Workers bounds campaign parallelism (0 = GOMAXPROCS).
	Workers int
	// HangFactor sets the instruction budget as a multiple of the
	// scheme's fault-free run (default 50).
	HangFactor uint64
	// Budget, when positive, is the per-run instruction budget
	// directly, overriding the HangFactor derivation. Compositional
	// analysis (internal/result) pins it to a stable bucket so cached
	// per-region results stay comparable across source edits that
	// perturb the fault-free instruction count slightly.
	Budget uint64
	// Mix sets the sampling weights of the fault kinds; zero uses
	// DefaultMix.
	Mix Mix
	// SkipWidth is the number of consecutive instructions a FaultSkip
	// suppresses (default 1; Moro et al.'s multi-skip bursts use more).
	SkipWidth int
	// BitWidth is the number of adjacent bits a FaultMultiBit flips
	// (default 2).
	BitWidth int
	// Exhaustive switches from statistical sampling to exhaustive
	// enumeration: one run per fault site instead of N random draws.
	// It requires a pure single-kind Mix (only Skip or only MultiBit
	// weighted), N = 0 (the count is derived from the region), and no
	// TargetCI. Skip mode enumerates every in-region dynamic
	// instruction; multibit mode enumerates every (instruction,
	// starting bit) pair. Enumerated campaigns stay deterministic,
	// checkpointable by index and parallel like sampled ones.
	Exhaustive bool
	// ExhaustiveBudget caps the enumerated run count (default 200000);
	// a region too large to enumerate under the budget is an error, not
	// a silent truncation.
	ExhaustiveBudget int
	// Stratify allocates the N replicas across instruction-class
	// strata (ALU, float, memory, branch, ...) in proportion to each
	// class's share of the in-region dynamic instruction stream,
	// drawing targets uniformly within each class. Rare classes get
	// dedicated replicas instead of relying on uniform sampling to hit
	// them, and the protection CI becomes the merged stratified
	// interval (stats.StratifiedWilson) — typically tighter at equal N
	// when classes differ in vulnerability. Incompatible with
	// Exhaustive (which already visits every site exactly once) and
	// with TargetCI (early stop would truncate the class-major plan
	// order and silently unbalance the allocation); Validate rejects
	// both combinations with a ConfigConflictError.
	Stratify bool
	// RunTimeout, when positive, bounds each injected run by
	// wall-clock time; a run that exceeds it is classified Hang. Note
	// that wall-clock deadlines make outcomes timing-dependent — leave
	// zero when bit-exact reproducibility matters (the instruction
	// budget already catches runaway executions deterministically).
	RunTimeout time.Duration
	// TargetCI, when positive, enables adaptive sampling: the engine
	// injects in Batch-sized rounds and stops as soon as the width of
	// the 95% Wilson confidence interval on the protection rate drops
	// to TargetCI percentage points or below (capped at N runs).
	TargetCI float64
	// Batch is the number of runs between early-stop checks and
	// checkpoint saves (default 100).
	Batch int
	// CheckpointPath, when non-empty, persists campaign progress to
	// this file after every batch. If the file already holds a
	// checkpoint of the same campaign (same benchmark, scheme, N,
	// seed, mix and hang factor), completed runs are not re-executed —
	// the campaign resumes where it left off and produces final counts
	// bit-identical to an uninterrupted run.
	CheckpointPath string
	// OnProgress, when set, receives a snapshot after every completed
	// batch (after its checkpoint save, so a consumer that observes a
	// snapshot knows the matching checkpoint is durable). It is called
	// on the campaign goroutine between batches — keep it fast; slow
	// consumers belong behind a channel. rskipd's streaming progress
	// endpoint feeds from this hook.
	OnProgress func(Progress)

	// runHook, when set, runs at the start of each injection with the
	// run index — test instrumentation for forcing panics and
	// cancelling campaigns mid-flight.
	runHook func(i int)
}

// Validate rejects configurations that would otherwise degenerate
// silently (negative counts, meaningless mixes). Campaign calls it;
// it is exported so tools can fail fast before building programs.
func (cfg *Config) Validate() error {
	if cfg.N < 0 {
		return fmt.Errorf("fault: config: N = %d, want >= 0", cfg.N)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("fault: config: Workers = %d, want >= 0", cfg.Workers)
	}
	if cfg.Batch < 0 {
		return fmt.Errorf("fault: config: Batch = %d, want >= 0", cfg.Batch)
	}
	if cfg.RunTimeout < 0 {
		return fmt.Errorf("fault: config: RunTimeout = %v, want >= 0", cfg.RunTimeout)
	}
	if cfg.TargetCI < 0 || math.IsNaN(cfg.TargetCI) {
		return fmt.Errorf("fault: config: TargetCI = %v, want >= 0", cfg.TargetCI)
	}
	if cfg.SkipWidth < 0 {
		return fmt.Errorf("fault: config: SkipWidth = %d, want >= 0", cfg.SkipWidth)
	}
	if cfg.BitWidth < 0 {
		return fmt.Errorf("fault: config: BitWidth = %d, want >= 0", cfg.BitWidth)
	}
	if cfg.ExhaustiveBudget < 0 {
		return fmt.Errorf("fault: config: ExhaustiveBudget = %d, want >= 0", cfg.ExhaustiveBudget)
	}
	for _, w := range []struct {
		name string
		v    float64
	}{
		{"RegFile", cfg.Mix.RegFile},
		{"Result", cfg.Mix.Result},
		{"Source", cfg.Mix.Source},
		{"Opcode", cfg.Mix.Opcode},
		{"Skip", cfg.Mix.Skip},
		{"MultiBit", cfg.Mix.MultiBit},
	} {
		if w.v < 0 || math.IsNaN(w.v) || math.IsInf(w.v, 0) {
			return fmt.Errorf("fault: config: Mix.%s = %v, want a finite weight >= 0", w.name, w.v)
		}
	}
	if cfg.Mix != (Mix{}) && cfg.Mix.sum() == 0 {
		return fmt.Errorf("fault: config: Mix weights sum to zero; leave Mix zero for DefaultMix or give at least one positive weight")
	}
	if cfg.Stratify && cfg.Exhaustive {
		return &ConfigConflictError{Options: "Stratify and Exhaustive",
			Reason: "exhaustive enumeration visits every fault site exactly once; a sampling allocation has nothing to decide"}
	}
	if cfg.Stratify && cfg.TargetCI > 0 {
		return &ConfigConflictError{Options: "Stratify and TargetCI",
			Reason: "early stopping truncates the class-major plan order and silently unbalances the per-class allocation"}
	}
	if cfg.Exhaustive {
		seu := cfg.Mix.RegFile + cfg.Mix.Result + cfg.Mix.Source + cfg.Mix.Opcode
		skipOnly := cfg.Mix.Skip > 0 && cfg.Mix.MultiBit == 0 && seu == 0
		mbOnly := cfg.Mix.MultiBit > 0 && cfg.Mix.Skip == 0 && seu == 0
		if !skipOnly && !mbOnly {
			return fmt.Errorf("fault: config: Exhaustive requires a pure single-kind Mix (only Skip or only MultiBit weighted), got %+v", cfg.Mix)
		}
		if cfg.N != 0 {
			return fmt.Errorf("fault: config: Exhaustive derives the run count from the region; leave N = 0 (got %d)", cfg.N)
		}
		if cfg.TargetCI > 0 {
			return fmt.Errorf("fault: config: Exhaustive enumerates every site; adaptive sampling (TargetCI = %v) does not apply", cfg.TargetCI)
		}
	}
	return nil
}

// Progress is one campaign progress snapshot, delivered to
// Config.OnProgress after each batch.
type Progress struct {
	// Done is the number of completed (classified) runs so far,
	// including runs restored from a checkpoint.
	Done int
	// N is the requested injection count (the cap).
	N int
	// Result aggregates every completed run so far; its rates and
	// confidence intervals are valid running estimates.
	Result Result
}

// Mix weights the fault kinds. Register-file strikes dominate real
// SEU profiles (and provide the masking of dead registers); strikes on
// in-flight results/operands and opcode-field flips are the residual
// classes software-only schemes struggle with (§7.2). Skip and
// MultiBit select the adversarial threat models beyond the paper's
// SEU setup: instruction-skip bursts (Moro et al.) and multi-bit
// upsets; both default to zero weight.
type Mix struct {
	RegFile, Result, Source, Opcode float64
	Skip, MultiBit                  float64
}

func (m Mix) sum() float64 {
	return m.RegFile + m.Result + m.Source + m.Opcode + m.Skip + m.MultiBit
}

// Weights returns the kind weights in declaration order (RegFile,
// Result, Source, Opcode, Skip, MultiBit) — the fixed-arity feature
// vector consumers like the advisory prediction layer blend over.
func (m Mix) Weights() [6]float64 {
	return [6]float64{m.RegFile, m.Result, m.Source, m.Opcode, m.Skip, m.MultiBit}
}

// DefaultMix follows the register-file-dominated SEU model of the
// paper's gem5 setup.
var DefaultMix = Mix{RegFile: 0.80, Result: 0.10, Source: 0.05, Opcode: 0.05}

// ConfigConflictError reports two Config options that are
// individually valid but meaningless together. It is a distinct type
// so CLIs and the server can map it to a usage error instead of a
// campaign failure.
type ConfigConflictError struct {
	Options string // the conflicting option pair, e.g. "Stratify and Exhaustive"
	Reason  string
}

func (e *ConfigConflictError) Error() string {
	return fmt.Sprintf("fault: config: %s cannot be combined: %s", e.Options, e.Reason)
}

// UnknownModelError reports a fault-model name ModelMix does not know.
type UnknownModelError struct{ Model string }

func (e *UnknownModelError) Error() string {
	return fmt.Sprintf("fault: unknown fault model %q (want seu, skip or multibit)", e.Model)
}

// ModelMix resolves a named threat model to its sampling mix: "seu"
// (or empty) is the paper's single-event-upset DefaultMix, "skip" is a
// pure instruction-skip campaign, "multibit" a pure multi-bit-upset
// campaign. The names are the wire/CLI vocabulary of rskipfi's
// -fault-kind flag and rskipd's fault_model field.
func ModelMix(model string) (Mix, error) {
	switch model {
	case "", "seu":
		return DefaultMix, nil
	case "skip":
		return Mix{Skip: 1}, nil
	case "multibit":
		return Mix{MultiBit: 1}, nil
	}
	return Mix{}, &UnknownModelError{Model: model}
}

// Result summarizes one campaign.
type Result struct {
	Scheme core.Scheme
	// N is the number of completed (classified) runs. It equals
	// Requested unless the campaign was cancelled mid-flight or
	// adaptive sampling stopped early.
	N int
	// Requested is the configured injection count (the cap).
	Requested int
	Counts    [NumClasses]int
	// Fired counts runs where the fault actually struck (the region
	// was reached); unfired faults are masked by construction.
	Fired int
	// FalseNeg counts SDC runs whose fault hit a prediction-covered
	// value-slice instruction and slipped through fuzzy validation
	// (RSkip schemes only).
	FalseNeg int
	// Recovered counts runs where the run-time management repaired an
	// element (RSkip) — diagnostics beyond the paper's figures.
	Recovered int
	// EarlyStopped reports that TargetCI adaptive sampling reached its
	// precision target before Requested runs.
	EarlyStopped bool
	// Exhaustive reports that the campaign enumerated every fault site
	// instead of sampling: the rates are exact population values, not
	// estimates (the Wilson CIs still describe the finite run set).
	Exhaustive bool
	// Errors is the per-class error taxonomy of abnormal runs: for
	// each class, how many runs terminated with each distinct error
	// string. Contained worker panics appear under CoreDump with a
	// "panic: ..." message.
	Errors map[Class]map[string]int
	// Strata is the per-instruction-class breakdown of a stratified
	// campaign (Config.Stratify), in class order; empty otherwise.
	// When present, ProtectionRate and ProtectionCI use the weighted
	// stratified estimator instead of pooling runs.
	Strata []StratumResult
}

// StratumResult is one instruction-class stratum of a stratified
// campaign.
type StratumResult struct {
	// Class is the instruction class the stratum samples.
	Class machine.OpClass
	// Weight is the class's share of the in-region dynamic
	// instruction stream (weights sum to 1 across Strata).
	Weight float64
	// N is the number of completed runs in the stratum; Protected of
	// them were Correct or Detected.
	N         int
	Protected int
	Counts    [NumClasses]int
}

// Rate returns the percentage of completed runs in the class.
func (r *Result) Rate(c Class) float64 {
	if r.N == 0 {
		return 0
	}
	return 100 * float64(r.Counts[c]) / float64(r.N)
}

// CI returns the 95% Wilson confidence interval (in percent) for the
// class's underlying outcome probability.
func (r *Result) CI(c Class) (lo, hi float64) {
	wl, wh := stats.Wilson(r.Counts[c], r.N, stats.Z95)
	return 100 * wl, 100 * wh
}

// protectionStrata views Strata as stats strata over the protection
// event (Correct or Detected).
func (r *Result) protectionStrata() []stats.Stratum {
	s := make([]stats.Stratum, len(r.Strata))
	for i, st := range r.Strata {
		s[i] = stats.Stratum{W: st.Weight, K: st.Protected, N: st.N}
	}
	return s
}

// ProtectionRate is the paper's headline reliability metric: the
// fraction of injected faults that did not corrupt the program
// (Correct plus, for detection-only schemes, Detected). A stratified
// campaign reports the weighted estimate — each class's observed rate
// scaled by the class's true population share — rather than the
// pooled run count, which would bias toward over-sampled classes.
func (r *Result) ProtectionRate() float64 {
	if len(r.Strata) > 0 {
		p, _, _ := stats.StratifiedWilson(r.protectionStrata(), stats.Z95)
		return 100 * p
	}
	return r.Rate(Correct) + r.Rate(Detected)
}

// ProtectionCI returns the 95% Wilson confidence interval (in
// percent) on the protection rate; for stratified campaigns it is the
// merged interval across class strata.
func (r *Result) ProtectionCI() (lo, hi float64) {
	if len(r.Strata) > 0 {
		_, wl, wh := stats.StratifiedWilson(r.protectionStrata(), stats.Z95)
		return 100 * wl, 100 * wh
	}
	wl, wh := stats.Wilson(r.Counts[Correct]+r.Counts[Detected], r.N, stats.Z95)
	return 100 * wl, 100 * wh
}

// FalseNegRate returns false negatives as a percentage of runs.
func (r *Result) FalseNegRate() float64 {
	if r.N == 0 {
		return 0
	}
	return 100 * float64(r.FalseNeg) / float64(r.N)
}

func drawKind(rng *rand.Rand, m Mix) machine.FaultKind {
	// The thresholds accumulate in declaration order with the same
	// additions the pre-extension code used, so legacy mixes (Skip =
	// MultiBit = 0) draw bit-identical kinds from a given seed and old
	// checkpoints stay resumable.
	t := rng.Float64() * m.sum()
	switch {
	case t < m.RegFile:
		return machine.FaultRegFile
	case t < m.RegFile+m.Result:
		return machine.FaultResultBit
	case t < m.RegFile+m.Result+m.Source:
		return machine.FaultSourceBit
	case t < m.RegFile+m.Result+m.Source+m.Opcode:
		return machine.FaultOpcode
	case t < m.RegFile+m.Result+m.Source+m.Opcode+m.Skip:
		return machine.FaultSkip
	case m.MultiBit > 0:
		return machine.FaultMultiBit
	}
	// Rounding pushed t past every accumulated threshold (the float
	// sums above can land just below t even though their exact values
	// equal m.sum()). Fall back to the last positively weighted kind in
	// declaration order, so a pure-skip mix draws FaultSkip — never a
	// kind whose weight is zero. For the legacy SEU mixes (Opcode
	// weighted, Skip = MultiBit = 0) this is the pre-fix FaultOpcode
	// fallback, so seeded draws and old checkpoints are unchanged.
	switch {
	case m.Skip > 0:
		return machine.FaultSkip
	case m.Opcode > 0:
		return machine.FaultOpcode
	case m.Source > 0:
		return machine.FaultSourceBit
	case m.Result > 0:
		return machine.FaultResultBit
	default:
		return machine.FaultRegFile
	}
}

// classify maps one run outcome to a class, plus false-negative and
// recovery flags.
func classify(o *core.Outcome, golden []uint64) (Class, bool, bool) {
	recovered := false
	detections := 0
	for _, st := range o.Stats {
		recovered = recovered || st.Recovered > 0
		detections += st.Detected
	}
	if o.Err != nil {
		switch o.Err.(type) {
		case *machine.SegfaultError:
			return Segfault, false, recovered
		case *machine.TrapError:
			return CoreDump, false, recovered
		case *machine.HangError:
			return Hang, false, recovered
		case *machine.DetectError:
			return Detected, false, recovered
		}
		return CoreDump, false, recovered
	}
	// A fault that changes the output's length is corruption, not a
	// reason to crash the campaign.
	if len(o.Output) != len(golden) {
		fn := o.FaultFired && o.FaultInValueSlice && detections == 0
		return SDC, fn, recovered
	}
	for i := range golden {
		if o.Output[i] != golden[i] {
			// Corrupted output: a false negative when the fault hit the
			// prediction-covered value slice and detection never fired.
			fn := o.FaultFired && o.FaultInValueSlice && detections == 0
			return SDC, fn, recovered
		}
	}
	return Correct, false, recovered
}
