// Package fault runs the paper's statistical fault-injection
// experiments (§7.2): for each benchmark and protection scheme it
// executes N runs, each with one single-event upset injected at a
// uniformly random dynamic instruction inside the detected loops, and
// classifies the outcome into the paper's five classes plus the
// detection-only scheme's "Detected". It also measures false
// negatives — faults on prediction-covered value slices that fuzzy
// validation accepted.
package fault

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/machine"
)

// Class is a fault-injection outcome.
type Class int

// Outcome classes (§7.2).
const (
	Correct  Class = iota // output bitwise equal to the fault-free run
	SDC                   // silent data corruption
	Segfault              // illegal memory access
	CoreDump              // trap / abnormal termination
	Hang                  // exceeded the instruction budget
	Detected              // SWIFT-only: detection signaled (no recovery)
	NumClasses
)

var classNames = [...]string{"Correct", "SDC", "Segfault", "Core dump", "Hang", "Detected"}

func (c Class) String() string { return classNames[c] }

// Config parameterizes a campaign.
type Config struct {
	// N is the number of injected faults (the paper uses 1,000).
	N int
	// Seed drives the fault-plan sampling.
	Seed int64
	// Workers bounds campaign parallelism (0 = GOMAXPROCS).
	Workers int
	// HangFactor sets the instruction budget as a multiple of the
	// scheme's fault-free run (default 50).
	HangFactor uint64
	// Mix sets the sampling weights of the three fault kinds; zero
	// uses DefaultMix.
	Mix Mix
}

// Mix weights the fault kinds. Register-file strikes dominate real
// SEU profiles (and provide the masking of dead registers); strikes on
// in-flight results/operands and opcode-field flips are the residual
// classes software-only schemes struggle with (§7.2).
type Mix struct {
	RegFile, Result, Source, Opcode float64
}

// DefaultMix follows the register-file-dominated SEU model of the
// paper's gem5 setup.
var DefaultMix = Mix{RegFile: 0.80, Result: 0.10, Source: 0.05, Opcode: 0.05}

// Result summarizes one campaign.
type Result struct {
	Scheme core.Scheme
	N      int
	Counts [NumClasses]int
	// Fired counts runs where the fault actually struck (the region
	// was reached); unfired faults are masked by construction.
	Fired int
	// FalseNeg counts SDC runs whose fault hit a prediction-covered
	// value-slice instruction and slipped through fuzzy validation
	// (RSkip schemes only).
	FalseNeg int
	// Recovered counts runs where the run-time management repaired an
	// element (RSkip) — diagnostics beyond the paper's figures.
	Recovered int
}

// Rate returns the percentage of runs in the class.
func (r *Result) Rate(c Class) float64 {
	if r.N == 0 {
		return 0
	}
	return 100 * float64(r.Counts[c]) / float64(r.N)
}

// ProtectionRate is the paper's headline reliability metric: the
// fraction of injected faults that did not corrupt the program
// (Correct plus, for detection-only schemes, Detected).
func (r *Result) ProtectionRate() float64 {
	return r.Rate(Correct) + r.Rate(Detected)
}

// FalseNegRate returns false negatives as a percentage of runs.
func (r *Result) FalseNegRate() float64 {
	if r.N == 0 {
		return 0
	}
	return 100 * float64(r.FalseNeg) / float64(r.N)
}

// Campaign runs N fault injections of the scheme on the instance.
func Campaign(p *core.Program, s core.Scheme, inst bench.Instance, cfg Config) (Result, error) {
	if cfg.N == 0 {
		cfg.N = 1000
	}
	if cfg.HangFactor == 0 {
		cfg.HangFactor = 50
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = DefaultMix
	}

	// Fault-free profile run of this scheme: golden output, region
	// size, instruction budget.
	profile := p.Run(s, inst, core.RunOpts{})
	if profile.Err != nil {
		return Result{}, fmt.Errorf("fault: fault-free %s run failed: %w", s, profile.Err)
	}
	if profile.Result.Region == 0 {
		return Result{}, fmt.Errorf("fault: no detected-loop region executed under %s", s)
	}
	golden := profile.Output
	budget := profile.Result.Instrs * cfg.HangFactor

	// Pre-draw all fault plans so the campaign is deterministic
	// regardless of worker scheduling.
	rng := rand.New(rand.NewSource(cfg.Seed))
	plans := make([]machine.FaultPlan, cfg.N)
	for i := range plans {
		plans[i] = machine.FaultPlan{
			Kind:   drawKind(rng, cfg.Mix),
			Target: uint64(rng.Int63n(int64(profile.Result.Region))),
			Bit:    uint(rng.Intn(64)),
			Pick:   rng.Intn(1 << 20),
		}
	}

	res := Result{Scheme: s, N: cfg.N}
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for i := 0; i < cfg.N; i++ {
		plan := plans[i]
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			o := p.Run(s, inst, core.RunOpts{Fault: &plan, MaxInstrs: budget})
			cls, fn, rec := classify(&o, golden)
			mu.Lock()
			res.Counts[cls]++
			if o.FaultFired {
				res.Fired++
			}
			if fn {
				res.FalseNeg++
			}
			if rec {
				res.Recovered++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	return res, nil
}

func drawKind(rng *rand.Rand, m Mix) machine.FaultKind {
	t := rng.Float64() * (m.RegFile + m.Result + m.Source + m.Opcode)
	switch {
	case t < m.RegFile:
		return machine.FaultRegFile
	case t < m.RegFile+m.Result:
		return machine.FaultResultBit
	case t < m.RegFile+m.Result+m.Source:
		return machine.FaultSourceBit
	default:
		return machine.FaultOpcode
	}
}

// classify maps one run outcome to a class, plus false-negative and
// recovery flags.
func classify(o *core.Outcome, golden []uint64) (Class, bool, bool) {
	recovered := false
	detections := 0
	for _, st := range o.Stats {
		recovered = recovered || st.Recovered > 0
		detections += st.Detected
	}
	if o.Err != nil {
		switch o.Err.(type) {
		case *machine.SegfaultError:
			return Segfault, false, recovered
		case *machine.TrapError:
			return CoreDump, false, recovered
		case *machine.HangError:
			return Hang, false, recovered
		case *machine.DetectError:
			return Detected, false, recovered
		}
		return CoreDump, false, recovered
	}
	for i := range golden {
		if o.Output[i] != golden[i] {
			// Corrupted output: a false negative when the fault hit the
			// prediction-covered value slice and detection never fired.
			fn := o.FaultFired && o.FaultInValueSlice && detections == 0
			return SDC, fn, recovered
		}
	}
	return Correct, false, recovered
}
