package fault_test

import (
	"context"
	"strings"
	"testing"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/fault"
	"rskip/internal/obs"
)

// TestCampaignObservability drives the whole pipeline — build, train,
// campaign — under an observability handle and checks that the span
// tree and the metric registry reflect what actually ran. This is the
// integration contract of internal/obs: every layer feeds it, and the
// numbers it reports reconcile with the campaign's own result.
func TestCampaignObservability(t *testing.T) {
	o := obs.New()
	ctx := obs.Into(context.Background(), o)

	b, err := bench.ByName("conv1d")
	if err != nil {
		t.Fatal(err)
	}
	// Force a cold build: a cache hit would (correctly) skip the
	// compile/candidates/variant spans this test asserts on.
	core.ResetBuildCache()
	p, err := core.BuildContext(ctx, b, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train([]int64{bench.TrainSeed(0), bench.TrainSeed(1)}, bench.ScaleTiny); err != nil {
		t.Fatal(err)
	}
	inst := b.Gen(bench.TestSeed(0), bench.ScaleTiny)
	const n = 40
	r, err := fault.Campaign(ctx, p, core.RSkip, inst, fault.Config{N: n, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.N != n {
		t.Fatalf("campaign completed %d/%d runs", r.N, n)
	}

	snap := o.Metrics.Snapshot()
	if got := snap["fault_injections_total"]; got != n {
		t.Errorf("fault_injections_total = %v, want %d", got, n)
	}
	// The per-class counters must reconcile with the campaign result.
	classTotal := 0.0
	for k, v := range snap {
		if strings.HasPrefix(k, "fault_class_") {
			classTotal += v
		}
	}
	if classTotal != n {
		t.Errorf("sum of fault_class_* = %v, want %d", classTotal, n)
	}
	if got := snap["fault_fired_total"]; got != float64(r.Fired) {
		t.Errorf("fault_fired_total = %v, want %d", got, r.Fired)
	}
	// Machine counters: n injected runs + the profile run + training
	// and golden runs all feed machine_runs_total.
	if got := snap["machine_runs_total"]; got < n+1 {
		t.Errorf("machine_runs_total = %v, want >= %d", got, n+1)
	}
	if snap["machine_instrs_total"] <= 0 || snap["machine_cycles_total"] <= 0 {
		t.Errorf("machine instr/cycle counters did not move: %v / %v",
			snap["machine_instrs_total"], snap["machine_cycles_total"])
	}
	if snap["train_runs_total"] != 2 {
		t.Errorf("train_runs_total = %v, want 2", snap["train_runs_total"])
	}
	if snap["train_samples_total"] <= 0 {
		t.Error("train_samples_total did not move")
	}
	if snap["rtm_observed_total"] <= 0 {
		t.Error("rtm_observed_total did not move (RSkip runs should observe elements)")
	}
	if snap["machine_arena_pool_hits_total"]+snap["machine_arena_pool_misses_total"] <= 0 {
		t.Error("arena pool counters did not move")
	}

	tree := o.Tracer.Tree()
	for _, want := range []string{
		"core/build", "build/compile", "build/candidates",
		"build/transform", "build/variant", "pass/rskip",
		"core/train", "train/collect", "train/fit",
		"fault/campaign", "campaign/profile", "campaign/batch",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("span tree missing %q:\n%s", want, tree)
		}
	}
}

// TestCampaignDisabledObsIsInert: a campaign without an Obs in its
// context must behave identically (the nil-safe disabled mode).
func TestCampaignDisabledObsIsInert(t *testing.T) {
	b, err := bench.ByName("conv1d")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Build(b, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inst := b.Gen(bench.TestSeed(0), bench.ScaleTiny)
	r, err := fault.Campaign(context.Background(), p, core.SWIFTR, inst,
		fault.Config{N: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 20 {
		t.Fatalf("campaign completed %d/20 runs", r.N)
	}
}
