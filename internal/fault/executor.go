package fault

import (
	"context"
	"fmt"
	"sync"

	"rskip/internal/bench"
	"rskip/internal/core"
	"rskip/internal/obs"
)

// Executor is the fabric-facing view of a campaign: the same prepared
// engine Campaign drives, but with the run loop inverted. Instead of
// executing [0, N) itself, an Executor executes whichever index
// ranges it is handed — shard leases from a fabric coordinator — and
// exposes the records so they can be shipped to wherever the merge
// happens. Because prepare() pre-draws the full plan list
// deterministically, two Executors built from the same (program,
// scheme, instance, config) on different nodes execute identical
// plans for identical indexes; their records can be interleaved
// freely and aggregated to the exact single-node Result.
//
// Executors are long-lived: a worker daemon keeps one per campaign
// key and serves every shard of that campaign (including re-leased
// shards stolen from a dead peer) from it. Records persist across
// RunRange calls, so re-running a range a worker already holds is a
// cheap no-op — the engine skips Done records.
type Executor struct {
	e *engine
	// mu serializes RunRange (and guards Records against a concurrent
	// range). Within-range parallelism comes from Config.Workers; two
	// lease loops sharing one executor — or a stolen lease landing
	// back on the node still running it — must not race on the record
	// array, and with deterministic records, waiting is always
	// correct.
	mu sync.Mutex
}

// NewExecutor prepares a campaign for range-at-a-time execution.
// Options that only make sense when one process owns the whole run
// loop are rejected:
//
//   - TargetCI: early stopping aggregates a prefix; a shard executor
//     sees no global prefix, and stopping mid-plan would break the
//     bit-identity between distributed and single-node results.
//   - CheckpointPath: the fabric's lease/complete protocol is the
//     persistence mechanism; a per-node checkpoint file would alias
//     the coordinator's view of which indexes are done.
//   - RunTimeout: wall-clock deadlines classify runs by elapsed time,
//     which varies across nodes — the one config knob that would make
//     a record not a pure function of its index.
func NewExecutor(ctx context.Context, p *core.Program, s core.Scheme, inst bench.Instance, cfg Config) (*Executor, error) {
	if cfg.TargetCI > 0 {
		return nil, &ConfigConflictError{Options: "fabric execution and TargetCI",
			Reason: "adaptive early stop needs the global run prefix, which no single shard executor sees"}
	}
	if cfg.CheckpointPath != "" {
		return nil, &ConfigConflictError{Options: "fabric execution and CheckpointPath",
			Reason: "shard leases and completions are the persistence mechanism; a local checkpoint would shadow the coordinator"}
	}
	if cfg.RunTimeout > 0 {
		return nil, &ConfigConflictError{Options: "fabric execution and RunTimeout",
			Reason: "wall-clock deadlines classify by elapsed time, so a record would no longer be a pure function of its index across nodes"}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sp := obs.Start(ctx, "fault/executor_prepare")
	sp.SetAttr("scheme", s.String())
	sp.SetAttr("bench", p.Bench.Name)
	defer sp.End()
	e, err := prepare(ctx, p, s, inst, cfg, nil)
	if err != nil {
		return nil, err
	}
	return &Executor{e: e}, nil
}

// Key is the campaign identity — identical to the checkpoint key and,
// by construction, to the fabric plan key the coordinator advertises.
// A worker cross-checks its locally derived Key against the lease's
// PlanKey to catch configuration drift before executing anything.
func (x *Executor) Key() string { return x.e.key }

// N is the total run count of the prepared plan list (after
// exhaustive enumeration or defaulting).
func (x *Executor) N() int { return x.e.cfg.N }

// RunRange executes every not-yet-done run in [lo, hi) on the
// engine's worker pool. Cancelling ctx returns ctx.Err(); records
// completed before the cancellation are kept and will not re-execute
// on a later call.
func (x *Executor) RunRange(ctx context.Context, lo, hi int) error {
	if lo < 0 || hi > x.e.cfg.N || lo > hi {
		return fmt.Errorf("fault: executor range [%d, %d) outside plan [0, %d)", lo, hi, x.e.cfg.N)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sp := obs.Start(ctx, "fault/executor_range")
	sp.SetAttr("lo", lo)
	sp.SetAttr("hi", hi)
	defer sp.End()
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.e.runBatch(ctx, lo, hi)
}

// Records copies out the records for [lo, hi) — a shard's payload.
// Records of runs RunRange has not completed have Done = false; the
// merger rejects those, so a worker only ships ranges it finished.
func (x *Executor) Records(lo, hi int) ([]RunRecord, error) {
	if lo < 0 || hi > x.e.cfg.N || lo > hi {
		return nil, fmt.Errorf("fault: executor range [%d, %d) outside plan [0, %d)", lo, hi, x.e.cfg.N)
	}
	out := make([]RunRecord, hi-lo)
	x.mu.Lock()
	copy(out, x.e.records[lo:hi])
	x.mu.Unlock()
	return out, nil
}

// Aggregate folds a full-length record array — reassembled from shard
// payloads — through the engine's own aggregation, the same fold the
// single-node path uses. len(recs) must equal N: partial aggregation
// is the merger's job (it aggregates the records it has), and
// demanding the full array here keeps the exactness contract visible
// at the call site.
func (x *Executor) Aggregate(recs []RunRecord) (Result, error) {
	if len(recs) != x.e.cfg.N {
		return Result{}, fmt.Errorf("fault: aggregate over %d records, want %d", len(recs), x.e.cfg.N)
	}
	return x.e.aggregateRecords(recs, len(recs)), nil
}

// AggregatePrefix folds recs[:stop] — the merger's partial-progress
// view. recs must still be full-length (indexes are positional).
func (x *Executor) AggregatePrefix(recs []RunRecord, stop int) (Result, error) {
	if len(recs) != x.e.cfg.N {
		return Result{}, fmt.Errorf("fault: aggregate over %d records, want %d", len(recs), x.e.cfg.N)
	}
	if stop < 0 || stop > len(recs) {
		return Result{}, fmt.Errorf("fault: aggregate prefix %d outside [0, %d]", stop, len(recs))
	}
	return x.e.aggregateRecords(recs, stop), nil
}
