package fault

import (
	"context"
	"testing"

	"rskip/internal/core"
)

// OnProgress must fire once per batch with monotonically non-decreasing
// completion counts, and the final snapshot must equal the returned
// result.
func TestOnProgressSnapshots(t *testing.T) {
	p, inst := sharedConv1d(t)
	var snaps []Progress
	cfg := Config{N: 60, Seed: 11, Batch: 20, Workers: 2,
		OnProgress: func(pr Progress) { snaps = append(snaps, pr) }}
	res, err := Campaign(context.Background(), p, core.RSkip, inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 {
		t.Fatalf("got %d progress snapshots for 60 runs in batches of 20, want 3", len(snaps))
	}
	prev := 0
	for i, pr := range snaps {
		if pr.N != 60 {
			t.Errorf("snapshot %d: N = %d, want 60", i, pr.N)
		}
		if pr.Done < prev {
			t.Errorf("snapshot %d: Done regressed %d -> %d", i, prev, pr.Done)
		}
		if pr.Done != pr.Result.N {
			t.Errorf("snapshot %d: Done = %d but aggregate N = %d", i, pr.Done, pr.Result.N)
		}
		prev = pr.Done
	}
	last := snaps[len(snaps)-1]
	if last.Done != 60 {
		t.Errorf("final snapshot Done = %d, want 60", last.Done)
	}
	if last.Result.Counts != res.Counts {
		t.Errorf("final snapshot counts %v != campaign result counts %v", last.Result.Counts, res.Counts)
	}
}

// A cancelled campaign still reports the interrupted batch's partial
// progress, so consumers (the rskipd job store) see what completed.
func TestOnProgressOnCancellation(t *testing.T) {
	p, inst := sharedConv1d(t)
	ctx, cancel := context.WithCancel(context.Background())
	var snaps []Progress
	cfg := Config{N: 200, Seed: 5, Batch: 50, Workers: 1,
		OnProgress: func(pr Progress) { snaps = append(snaps, pr) }}
	cfg.runHook = func(i int) {
		if i == 60 {
			cancel()
		}
	}
	res, err := Campaign(ctx, p, core.RSkip, inst, cfg)
	if err == nil {
		t.Fatal("want cancellation error, got nil")
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots delivered before cancellation")
	}
	last := snaps[len(snaps)-1]
	if last.Done != res.N {
		t.Errorf("last snapshot Done = %d, want the partial result's %d", last.Done, res.N)
	}
}
